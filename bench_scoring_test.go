package adaptiverank_test

// Scoring hot-path benchmarks: the per-strategy trajectory committed in
// BENCH_scoring.json and gated by cmd/benchgate in CI. Each strategy is
// measured three ways — the map-based reference Score, the packed
// single-document fast path, and the batch fast path — so the trajectory
// shows both the absolute cost and the speedup structure. The baseline
// file also carries the end-to-end pipeline benchmarks (see
// bench_pipeline_test.go); regenerate it intentionally with
//
//	go test -run '^$' -bench 'BenchmarkScoring|BenchmarkPipeline' -benchtime 1s -count 3 \
//	    -bench-out BENCH_scoring.json .
//
// (-count 3 because the -bench-out collector keeps the best value per
// metric across repetitions; see README "Performance").

import (
	"runtime"
	"testing"
	"time"

	"adaptiverank/internal/ranking"
	"adaptiverank/internal/vector"
)

// scoringBatch is the number of documents scored per batch op, matching
// the pipeline's score-chunk size order of magnitude.
const scoringBatch = 512

func packedDocs(docs []vector.Sparse) []vector.Packed {
	out := make([]vector.Packed, len(docs))
	for i, d := range docs {
		out[i] = d.Packed()
	}
	return out
}

func trainedRSVM(docs []vector.Sparse) *ranking.RSVMIE {
	rk := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 1})
	for i := 0; i < 2000; i++ {
		rk.Learn(docs[i%len(docs)], i%7 == 0)
	}
	return rk
}

func trainedBAgg(docs []vector.Sparse) *ranking.BAggIE {
	rk := ranking.NewBAggIE(ranking.BAggOptions{})
	for i := 0; i < 2000; i++ {
		rk.Learn(docs[i%len(docs)], i%7 == 0)
	}
	return rk
}

// benchScoring times fn (one op scores docsPerOp documents) and measures
// its steady-state allocation budget from MemStats deltas around the
// timed loop, recording the four gated metrics: ns/score, docs/sec,
// allocs/op, and B/op. fn runs once before measurement so one-time costs
// (building the dense weight mirrors) are excluded — the recorded budget
// is the steady state the zero-alloc contract pins.
func benchScoring(b *testing.B, docsPerOp int, fn func()) {
	b.Helper()
	recordBench(b)
	fn() // warm: dense mirrors build on the first score after training
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	n := float64(b.N)
	recordBenchMetric(b, "allocs/op", float64(m1.Mallocs-m0.Mallocs)/n)
	recordBenchMetric(b, "B/op", float64(m1.TotalAlloc-m0.TotalAlloc)/n)
	// Timing metrics only count from windows long enough to average out
	// timer granularity and scheduling jitter: the collector keeps the
	// best value across invocations, so a spuriously fast tiny-N probe
	// must not enter the pool. (A -benchtime 1x smoke therefore records
	// no timing metrics, which benchgate treats as unmeasured.)
	const minTimingWindow = 25 * time.Millisecond
	if el := b.Elapsed(); el >= minTimingWindow {
		scores := n * float64(docsPerOp)
		recordBenchMetric(b, "ns/score", float64(el.Nanoseconds())/scores)
		recordBenchMetric(b, "docs/sec", scores/el.Seconds())
	}
}

func BenchmarkScoringRSVMIEMap(b *testing.B) {
	docs := benchDocs(scoringBatch)
	rk := trainedRSVM(docs)
	i := 0
	benchScoring(b, 1, func() {
		rk.Score(docs[i%len(docs)])
		i++
	})
}

func BenchmarkScoringRSVMIEPacked(b *testing.B) {
	docs := benchDocs(scoringBatch)
	rk := trainedRSVM(docs)
	xs := packedDocs(docs)
	i := 0
	benchScoring(b, 1, func() {
		rk.ScorePacked(xs[i%len(xs)])
		i++
	})
}

func BenchmarkScoringRSVMIEBatch(b *testing.B) {
	docs := benchDocs(scoringBatch)
	rk := trainedRSVM(docs)
	xs := packedDocs(docs)
	out := make([]float64, len(xs))
	benchScoring(b, len(xs), func() { rk.ScoreBatch(xs, out) })
}

func BenchmarkScoringBAggIEMap(b *testing.B) {
	docs := benchDocs(scoringBatch)
	rk := trainedBAgg(docs)
	i := 0
	benchScoring(b, 1, func() {
		rk.Score(docs[i%len(docs)])
		i++
	})
}

func BenchmarkScoringBAggIEPacked(b *testing.B) {
	docs := benchDocs(scoringBatch)
	rk := trainedBAgg(docs)
	xs := packedDocs(docs)
	i := 0
	benchScoring(b, 1, func() {
		rk.ScorePacked(xs[i%len(xs)])
		i++
	})
}

func BenchmarkScoringBAggIEBatch(b *testing.B) {
	docs := benchDocs(scoringBatch)
	rk := trainedBAgg(docs)
	xs := packedDocs(docs)
	out := make([]float64, len(xs))
	benchScoring(b, len(xs), func() { rk.ScoreBatch(xs, out) })
}
