// Command escapegate compiles the declared hot-path packages with the
// compiler's escape/inlining diagnostics enabled (-gcflags='-m=2') and
// diffs the resulting per-function facts against the committed
// ESCAPE_baseline.json. It is the compile-time half of the hot-path
// performance contract: benchgate catches a regression after the
// benchmark has paid for it; escapegate catches the cause — a value
// boxed to the heap or a kernel function pushed past the inlining
// budget — before a single benchmark runs.
//
// Usage:
//
//	escapegate -baseline ESCAPE_baseline.json [-dir .] [-pkgs ./internal/vector,...]
//	escapegate -update            # regenerate the baseline from the current tree
//	escapegate -report report.txt # also write the findings report to a file
//
// The exit status is 0 when every hot function is within its committed
// budget, 1 when a new heap escape or a newly-uninlinable function was
// found, and 2 when the baseline is missing/malformed or the build
// itself fails. The diagnostics are replayed from the Go build cache
// for unchanged packages, so a gate run after a normal build is close
// to free.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"adaptiverank/internal/escape"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("escapegate", flag.ContinueOnError)
	baseline := fs.String("baseline", "ESCAPE_baseline.json", "committed escape/inline budget file")
	dir := fs.String("dir", ".", "module root to resolve packages in")
	pkgs := fs.String("pkgs", strings.Join(escape.DefaultPackages, ","),
		"comma-separated hot-path package patterns")
	update := fs.Bool("update", false, "regenerate the baseline from the current tree and exit")
	report := fs.String("report", "", "also write the findings report to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := strings.Split(*pkgs, ",")
	for i := range patterns {
		patterns[i] = strings.TrimSpace(patterns[i])
	}

	facts, err := escape.Collect(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "escapegate: %v\n", err)
		return 2
	}

	if *update {
		b := escape.FromFacts(runtime.Version(), facts)
		if err := b.Save(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "escapegate: writing %s: %v\n", *baseline, err)
			return 2
		}
		n := 0
		for _, p := range b.Packages {
			n += len(p.Functions)
		}
		fmt.Fprintf(os.Stdout, "escapegate: wrote %s (%d packages, %d functions, %s)\n",
			*baseline, len(b.Packages), n, b.Go)
		return 0
	}

	base, err := escape.Load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// Toolchain drift shifts inlining costs and escape behaviour; it is
	// worth knowing but never worth failing over — the diff below still
	// gates, and a spurious finding names the version skew in context.
	if base.Go != "" && base.Go != runtime.Version() {
		fmt.Fprintf(os.Stderr, "escapegate: warning: baseline generated with %s, running %s\n",
			base.Go, runtime.Version())
	}

	findings := escape.Diff(base, facts)
	if len(findings) > 0 {
		var b strings.Builder
		for _, f := range findings {
			f.Render(&b)
		}
		fmt.Fprint(os.Stdout, b.String())
		if *report != "" {
			if err := os.WriteFile(*report, []byte(b.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "escapegate: writing %s: %v\n", *report, err)
			}
		}
		fmt.Fprintf(os.Stderr, "escapegate: %d budget violation(s) against %s (run with -update to accept)\n",
			len(findings), *baseline)
		return 1
	}
	n := 0
	for _, p := range base.Packages {
		n += len(p.Functions)
	}
	fmt.Fprintf(os.Stdout, "escapegate: %d package(s), %d function(s) within budget of %s\n",
		len(base.Packages), n, *baseline)
	return 0
}
