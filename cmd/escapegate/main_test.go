package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildEscapegate compiles the escapegate binary into a temp dir,
// mirroring the cmd/benchgate integration-test pattern.
func buildEscapegate(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "escapegate")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building escapegate: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("escapegate did not run: %v", err)
	}
	return ee.ExitCode()
}

func runGate(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), exitCode(t, err)
}

// The fixture module: a miniature hot-path kernel whose trajectory the
// test drives — clean baseline, then a boxing escape, then a broken
// inlining guarantee.
const hotClean = `// Package hot is the escapegate fixture kernel.
package hot

// Dot is the allocation-free kernel under budget.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Scale multiplies in place; small enough to inline.
func Scale(a []float64, k float64) {
	for i := range a {
		a[i] *= k
	}
}

// NewBuf allocates the result buffer; its escape is budgeted.
func NewBuf(n int) []float64 {
	return make([]float64, n)
}
`

// hotEscape boxes the accumulator into a package-level interface: a new
// heap escape inside Dot that the committed budget does not cover.
const hotEscape = `// Package hot is the escapegate fixture kernel.
package hot

var sink interface{}

// Dot now leaks its accumulator to the heap.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	sink = s
	return s
}

// Scale multiplies in place; small enough to inline.
func Scale(a []float64, k float64) {
	for i := range a {
		a[i] *= k
	}
}

// NewBuf allocates the result buffer; its escape is budgeted.
func NewBuf(n int) []float64 {
	return make([]float64, n)
}
`

// hotDefer adds a defer to Scale, which the inliner rejects
// ("unhandled op DEFER"), breaking the recorded can_inline guarantee.
const hotDefer = `// Package hot is the escapegate fixture kernel.
package hot

// Dot is the allocation-free kernel under budget.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Scale multiplies in place, now guarded by a defer.
func Scale(a []float64, k float64) {
	defer cleanup()
	for i := range a {
		a[i] *= k
	}
}

func cleanup() {}

// NewBuf allocates the result buffer; its escape is budgeted.
func NewBuf(n int) []float64 {
	return make([]float64, n)
}
`

// writeHotModule lays out a throwaway module the gate can collect from:
// go.mod plus internal/hot/hot.go with the given source.
func writeHotModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module example.com/hot\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := filepath.Join(dir, "internal", "hot")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	writeHot(t, dir, src)
	return dir
}

func writeHot(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "internal", "hot", "hot.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestEscapegateTrajectory drives the built binary over a fixture
// module's life: -update commits the budget, the clean tree gates green,
// a new boxing escape fails with the function and flow named, a broken
// inlining guarantee fails with the compiler's reason, and missing or
// malformed inputs exit 2.
func TestEscapegateTrajectory(t *testing.T) {
	bin := buildEscapegate(t)
	mod := writeHotModule(t, hotClean)
	baseline := filepath.Join(t.TempDir(), "ESCAPE_baseline.json")
	gateArgs := func(extra ...string) []string {
		return append([]string{"-baseline", baseline, "-dir", mod, "-pkgs", "./internal/hot"}, extra...)
	}

	out, code := runGate(t, bin, gateArgs("-update")...)
	if code != 0 {
		t.Fatalf("-update exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "wrote") || !strings.Contains(out, "1 packages") {
		t.Errorf("-update output missing summary:\n%s", out)
	}
	first, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	// The recorded budget must carry the fixture's one intentional escape
	// and nothing else.
	if !strings.Contains(string(first), `"make([]float64, n)"`) {
		t.Errorf("baseline missing NewBuf's budgeted escape:\n%s", first)
	}

	// -update is byte-deterministic for an unchanged tree.
	out, code = runGate(t, bin, gateArgs("-update")...)
	if code != 0 {
		t.Fatalf("second -update exit = %d, want 0\n%s", code, out)
	}
	second, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("two -update runs over the same tree differ byte-wise")
	}

	out, code = runGate(t, bin, gateArgs()...)
	if code != 0 {
		t.Fatalf("clean gate exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "within budget") {
		t.Errorf("clean gate output missing pass summary:\n%s", out)
	}

	// Introduce the boxing escape: the gate must name the function, the
	// escaping expression, its position, and the compiler's flow trace.
	writeHot(t, mod, hotEscape)
	report := filepath.Join(t.TempDir(), "escape-report.txt")
	out, code = runGate(t, bin, gateArgs("-report", report)...)
	if code != 1 {
		t.Fatalf("boxing-escape gate exit = %d, want 1\n%s", code, out)
	}
	for _, frag := range []string{
		"Dot", "new heap escape", "s (", "internal/hot/hot.go:", "flow:",
		"budget violation(s)", "-update to accept",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("escape finding missing %q:\n%s", frag, out)
		}
	}
	rep, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("-report file not written: %v", err)
	}
	if !strings.Contains(string(rep), "new heap escape") {
		t.Errorf("report file missing the finding:\n%s", rep)
	}

	// Break the inlining guarantee instead: the defer pushes Scale out of
	// the inliner, and the finding carries the compiler's reason. The new
	// helper function is budgetless-and-clean, so it must not be flagged.
	writeHot(t, mod, hotDefer)
	out, code = runGate(t, bin, gateArgs()...)
	if code != 1 {
		t.Fatalf("broken-inline gate exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "Scale: no longer inlinable") {
		t.Errorf("inline finding missing function name:\n%s", out)
	}
	if !strings.Contains(out, "DEFER") {
		t.Errorf("inline finding missing compiler reason:\n%s", out)
	}
	if strings.Contains(out, "cleanup") {
		t.Errorf("clean unknown function was flagged:\n%s", out)
	}

	// Restoring the source restores the green gate.
	writeHot(t, mod, hotClean)
	if out, code = runGate(t, bin, gateArgs()...); code != 0 {
		t.Fatalf("restored tree exit = %d, want 0\n%s", code, out)
	}

	// Missing and malformed baselines, and an unresolvable package
	// pattern, are environment errors: exit 2, never a quiet pass.
	out, code = runGate(t, bin,
		"-baseline", filepath.Join(t.TempDir(), "absent.json"), "-dir", mod, "-pkgs", "./internal/hot")
	if code != 2 {
		t.Errorf("missing baseline exit = %d, want 2\n%s", code, out)
	}
	malformed := filepath.Join(t.TempDir(), "malformed.json")
	if err := os.WriteFile(malformed, []byte(`{"go":`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runGate(t, bin, "-baseline", malformed, "-dir", mod, "-pkgs", "./internal/hot")
	if code != 2 {
		t.Errorf("malformed baseline exit = %d, want 2\n%s", code, out)
	}
	out, code = runGate(t, bin, gateArgs("-pkgs", "./internal/nosuchpkg")...)
	if code != 2 {
		t.Errorf("unresolvable package exit = %d, want 2\n%s", code, out)
	}
}

// TestEscapegateGoVersionDrift rewrites the baseline's toolchain field:
// the gate must warn about the skew yet still pass — drift is context
// for the reader, not a violation.
func TestEscapegateGoVersionDrift(t *testing.T) {
	bin := buildEscapegate(t)
	mod := writeHotModule(t, hotClean)
	baseline := filepath.Join(t.TempDir(), "ESCAPE_baseline.json")
	if out, code := runGate(t, bin,
		"-baseline", baseline, "-dir", mod, "-pkgs", "./internal/hot", "-update"); code != 0 {
		t.Fatalf("-update exit = %d, want 0\n%s", code, out)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["go"] = "go1.99"
	drifted, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, drifted, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runGate(t, bin, "-baseline", baseline, "-dir", mod, "-pkgs", "./internal/hot")
	if code != 0 {
		t.Fatalf("drifted-toolchain gate exit = %d, want 0 (drift warns, never fails)\n%s", code, out)
	}
	if !strings.Contains(out, "warning: baseline generated with go1.99") {
		t.Errorf("missing toolchain drift warning:\n%s", out)
	}
}

// TestEscapegateSelf gates the repository's committed baseline against
// the tree it was committed for, so `go test ./...` catches a stale
// ESCAPE_baseline.json before CI does. A different toolchain shifts
// inlining costs out from under the budget, so the check only bites when
// the versions match.
func TestEscapegateSelf(t *testing.T) {
	baseline, err := filepath.Abs(filepath.Join("..", "..", "ESCAPE_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	var doc struct {
		Go string `json:"go"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("committed baseline malformed: %v", err)
	}
	if doc.Go != runtime.Version() {
		t.Skipf("baseline generated with %s, running %s", doc.Go, runtime.Version())
	}
	bin := buildEscapegate(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	out, code := runGate(t, bin, "-baseline", baseline, "-dir", root)
	if code != 0 {
		t.Fatalf("committed ESCAPE_baseline.json is stale (exit %d); run `go run ./cmd/escapegate -update`\n%s", code, out)
	}
}
