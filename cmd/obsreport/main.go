// Command obsreport analyzes JSONL event traces written by
// cmd/adaptiverank and cmd/experiments (-trace): per-run recall curves,
// detector decision timelines, model-update feature-churn summaries,
// and per-phase CPU-time accounts, in text or JSON, plus side-by-side
// A/B comparison of two traces.
//
// It also converts traces into the Chrome trace-event format, loadable
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing, where the
// pipeline's span tree renders as a per-run flame timeline.
//
// Usage:
//
//	obsreport [-json] [-run N] trace.jsonl
//	obsreport [-json] [-run N] -compare other.jsonl trace.jsonl
//	obsreport -chrome out.json trace.jsonl   (use "-" for stdout)
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptiverank/internal/obs/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit JSON instead of text")
		runIdx  = flag.Int("run", -1, "report only this run index (default: all; -compare defaults to 0)")
		compare = flag.String("compare", "", "second trace: A/B-compare its selected run against the main trace's")
		chrome  = flag.String("chrome", "", "convert the trace to Chrome trace-event JSON (Perfetto-loadable), written to this file (\"-\" for stdout)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: obsreport [-json] [-run N] [-compare other.jsonl] [-chrome out.json] trace.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}

	if *chrome != "" {
		if err := writeChrome(flag.Arg(0), *chrome); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *chrome != "-" {
			fmt.Printf("chrome trace written to %s (load at https://ui.perfetto.dev)\n", *chrome)
		}
		return 0
	}

	rep, err := report.FromFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *compare != "" {
		other, err := report.FromFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		idx := *runIdx
		if idx < 0 {
			idx = 0
		}
		a, err := selectRun(rep, idx, flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		b, err := selectRun(other, idx, *compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		c := report.Compare(a, b)
		if *jsonOut {
			err = c.WriteJSON(os.Stdout)
		} else {
			err = c.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *runIdx >= 0 {
		r, err := selectRun(rep, *runIdx, flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rep = &report.Report{Runs: []report.Run{*r}}
	}
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// writeChrome converts the JSONL trace at in into Chrome trace-event
// JSON at out ("-" = stdout).
func writeChrome(in, out string) error {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := report.ChromeFromFile(in, w); err != nil {
		return err
	}
	if out != "-" {
		return w.Close()
	}
	return nil
}

func selectRun(rep *report.Report, idx int, path string) (*report.Run, error) {
	if idx < 0 || idx >= len(rep.Runs) {
		return nil, fmt.Errorf("obsreport: %s has %d runs, no run %d", path, len(rep.Runs), idx)
	}
	return &rep.Runs[idx], nil
}
