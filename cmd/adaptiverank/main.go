// Command adaptiverank runs one adaptive ranked-extraction session over a
// generated corpus and reports how quickly the useful documents were
// found, compared against a random processing order.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"adaptiverank"
	"adaptiverank/internal/relation"
)

func main() {
	var (
		relCode  = flag.String("relation", "ND", "relation code: PO DO PC ND MD PH EW")
		docs     = flag.Int("docs", 8000, "corpus size to generate")
		seed     = flag.Int64("seed", 42, "corpus and run seed")
		strategy = flag.String("strategy", "rsvm", "ranking strategy: rsvm, bagg, random")
		detector = flag.String("detector", "modc", "update detector: modc, topk, windf, feats, none")
		sample   = flag.Int("sample", 0, "initial sample size (0 = auto)")
		maxDocs  = flag.Int("max", 0, "stop after processing this many ranked documents (0 = all)")
		trace    = flag.String("trace", "", "write a JSONL event trace of the run to this file")
		metrics  = flag.Bool("metrics", false, "dump collected metrics (expvar-style text) to stderr on exit")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	rel, err := relation.Parse(*relCode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := adaptiverank.Options{Seed: *seed, SampleSize: *sample, MaxDocs: *maxDocs}
	switch *strategy {
	case "rsvm":
		opts.Strategy = adaptiverank.RSVMIE
	case "bagg":
		opts.Strategy = adaptiverank.BAggIE
	case "random":
		opts.Strategy = adaptiverank.RandomOrder
	default:
		fmt.Fprintf(os.Stderr, "unknown -strategy %q\n", *strategy)
		os.Exit(2)
	}
	switch *detector {
	case "modc":
		opts.Detector = adaptiverank.ModC
	case "topk":
		opts.Detector = adaptiverank.TopK
	case "windf":
		opts.Detector = adaptiverank.WindF
	case "feats":
		opts.Detector = adaptiverank.FeatS
	case "none":
		opts.Detector = adaptiverank.NoDetector
	default:
		fmt.Fprintf(os.Stderr, "unknown -detector %q\n", *detector)
		os.Exit(2)
	}

	if *metrics {
		opts.Metrics = adaptiverank.NewMetrics()
	}
	var traceRec *adaptiverank.JSONLRecorder
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		traceRec = adaptiverank.NewTraceRecorder(f)
		opts.Recorder = traceRec
	}

	fmt.Printf("generating %d documents (seed %d)...\n", *docs, *seed)
	coll, err := adaptiverank.GenerateCorpus(*seed, *docs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ex := adaptiverank.BuiltinExtractor(rel)
	fmt.Printf("extracting %s with %s + %s...\n", rel.Name(), *strategy, *detector)

	res, err := adaptiverank.Run(coll, ex, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if traceRec != nil {
		if err := traceRec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *trace)
	}
	if opts.Metrics != nil {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		if err := opts.Metrics.Dump(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}

	fmt.Printf("\nprocessed %d documents, %d useful, %d distinct tuples, %d model updates\n",
		res.DocsProcessed, res.UsefulFound, len(res.Tuples), res.Updates)
	fmt.Printf("ranking overhead: %v (%.3f ms/doc)\n", res.RankingOverhead,
		float64(res.RankingOverhead.Microseconds())/1000/float64(max(1, res.DocsProcessed)))
	n := len(res.Tuples)
	if n > 10 {
		n = 10
	}
	fmt.Println("\nfirst tuples:")
	for _, t := range res.Tuples[:n] {
		fmt.Printf("  %v\n", t)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
