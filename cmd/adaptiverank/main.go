// Command adaptiverank runs one adaptive ranked-extraction session over a
// generated corpus and reports how quickly the useful documents were
// found, compared against a random processing order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adaptiverank"
	"adaptiverank/internal/durable"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/blackbox"
	"adaptiverank/internal/obs/prof"
	"adaptiverank/internal/relation"
)

func main() {
	// Arm a chaos kill point when cmd/crashtest asked for one; a no-op
	// in every normal run.
	durable.ArmFromEnv()
	os.Exit(run())
}

// run is the real main; it returns the process exit code so that
// deferred cleanup (trace flush + close) executes on every exit path,
// including pipeline errors — os.Exit in main would skip it.
func run() (code int) {
	var (
		relCode  = flag.String("relation", "ND", "relation code: PO DO PC ND MD PH EW")
		docs     = flag.Int("docs", 8000, "corpus size to generate")
		seed     = flag.Int64("seed", 42, "corpus and run seed")
		strategy = flag.String("strategy", "rsvm", "ranking strategy: rsvm, bagg, random")
		detector = flag.String("detector", "modc", "update detector: modc, topk, windf, feats, none")
		sample   = flag.Int("sample", 0, "initial sample size (0 = auto)")
		maxDocs  = flag.Int("max", 0, "stop after processing this many ranked documents (0 = all)")
		trace    = flag.String("trace", "", "write a JSONL event trace of the run to this file (convert with obsreport -chrome for a Perfetto flame timeline)")
		metrics  = flag.Bool("metrics", false, "dump collected metrics (expvar-style text) to stderr on exit")
		serve    = flag.String("serve", "", "serve /metrics (Prometheus), /events (SSE), /runs, /alerts, /healthz and /debug/pprof on this address during the run (e.g. localhost:6060)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof alone on this address (subsumed by -serve)")
		sloSlope = flag.Float64("slo-min-recall-slope", 0, "SLO watchdog: alert when useful-docs-per-document over the trailing window falls below this floor (0 = rule off)")
		sloFire  = flag.Float64("slo-max-fire-rate", 0, "SLO watchdog: alert when the detector fire rate over the trailing window exceeds this ceiling (0 = rule off)")
		sloP99   = flag.Duration("slo-max-p99", 0, "SLO watchdog: alert when the p99 per-document step latency exceeds this bound (0 = rule off)")
		sloWin   = flag.Int("slo-window", 0, "SLO watchdog: override the rules' trailing-window sizes (0 = per-rule defaults)")
		sloFault = flag.Float64("slo-max-fault-rate", 0, "SLO watchdog: alert when the extraction fault rate over the trailing window exceeds this ceiling (0 = rule off)")

		checkpoint = flag.String("checkpoint", "", "write a crash-safe run journal to this file (resume with -resume)")
		resume     = flag.Bool("resume", false, "resume from the -checkpoint journal: replay recorded outcomes and continue where the interrupted run stopped")
		resultOut  = flag.String("result-out", "", "write the final result (tuples, order, counts) as JSON to this file")

		flakyError   = flag.Float64("flaky-error-rate", 0, "fault injection: probability of a transient extractor error per attempt")
		flakyPanic   = flag.Float64("flaky-panic-rate", 0, "fault injection: probability of an extractor panic per attempt")
		flakyHang    = flag.Float64("flaky-hang-rate", 0, "fault injection: probability of an extractor hang per attempt")
		flakyLatency = flag.Float64("flaky-latency-rate", 0, "fault injection: probability of a latency spike per attempt")
		flakyDelay   = flag.Duration("flaky-latency", 0, "fault injection: latency spike duration (0 = default)")
		flakyPoison  = flag.Float64("flaky-poison-rate", 0, "fault injection: fraction of documents that fail every attempt")
		flakySeed    = flag.Int64("flaky-seed", 0, "fault injection: schedule seed (0 = run seed)")

		extractTimeout = flag.Duration("extract-timeout", 0, "resilience: per-attempt extraction timeout (0 = default)")
		extractRetries = flag.Int("extract-retries", 0, "resilience: max extraction attempts per document (0 = default)")

		profDir    = flag.String("prof-dir", "", "continuous profiling: write phase-scoped CPU windows, heap/goroutine snapshots, runtime-metrics samples and a JSONL manifest under this directory (inspect with profreport -dir)")
		profCPUWin = flag.Duration("prof-cpu-window", 10*time.Second, "continuous profiling: CPU profile window length; phase boundaries rotate windows early (0 disables CPU windows)")
		blackboxD  = flag.String("blackbox", "", "flight recorder: keep a bounded ring of recent events in memory and flush postmortem bundles to this directory on worker panic, SLO alert, or SIGQUIT (inspect with profreport -bundle)")

		explainDir = flag.String("explain-dir", "", "model introspection: write weight-drift snapshots, top-ranked score attributions, and detector decision evidence as a JSONL artifact under this directory (inspect with explainreport -dir; live at /model and /explain with -serve)")
		explainTop = flag.Int("explain-top", 0, "model introspection: attribute this many top-ranked documents per (re-)ranking (0 = default)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context: the pipeline drains
	// gracefully and the deferred trace/checkpoint cleanup below still
	// runs, so a Ctrl-C leaves a valid, resumable journal behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	rel, err := relation.Parse(*relCode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts := adaptiverank.Options{Seed: *seed, SampleSize: *sample, MaxDocs: *maxDocs}
	switch *strategy {
	case "rsvm":
		opts.Strategy = adaptiverank.RSVMIE
	case "bagg":
		opts.Strategy = adaptiverank.BAggIE
	case "random":
		opts.Strategy = adaptiverank.RandomOrder
	default:
		fmt.Fprintf(os.Stderr, "unknown -strategy %q\n", *strategy)
		return 2
	}
	switch *detector {
	case "modc":
		opts.Detector = adaptiverank.ModC
	case "topk":
		opts.Detector = adaptiverank.TopK
	case "windf":
		opts.Detector = adaptiverank.WindF
	case "feats":
		opts.Detector = adaptiverank.FeatS
	case "none":
		opts.Detector = adaptiverank.NoDetector
	default:
		fmt.Fprintf(os.Stderr, "unknown -detector %q\n", *detector)
		return 2
	}

	// The run fingerprint embedded in profiling manifests and postmortem
	// bundles covers every result-affecting option, so the corpus and the
	// fault/resilience configuration must be settled before the
	// observability sinks are assembled.
	if *flakyError > 0 || *flakyPanic > 0 || *flakyHang > 0 || *flakyLatency > 0 || *flakyPoison > 0 {
		fseed := *flakySeed
		if fseed == 0 {
			fseed = *seed
		}
		opts.Flaky = &adaptiverank.FaultInjection{
			Seed: fseed, ErrorRate: *flakyError, PanicRate: *flakyPanic,
			HangRate: *flakyHang, LatencyRate: *flakyLatency, Latency: *flakyDelay,
			PoisonRate: *flakyPoison,
		}
	}
	if *extractTimeout > 0 || *extractRetries > 0 {
		opts.Resilience = &adaptiverank.Resilience{
			AttemptTimeout: *extractTimeout, MaxAttempts: *extractRetries,
		}
	}
	opts.Checkpoint = *checkpoint
	opts.Resume = *resume
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		return 2
	}

	fmt.Printf("generating %d documents (seed %d)...\n", *docs, *seed)
	coll, err := adaptiverank.GenerateCorpus(*seed, *docs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ex := adaptiverank.BuiltinExtractor(rel)
	fingerprint := adaptiverank.Fingerprint(coll, ex, opts)
	runID := fmt.Sprintf("%s-%d", time.Now().UTC().Format("20060102-150405"), os.Getpid())

	var reg *obs.Registry
	if *metrics || *serve != "" || *profDir != "" || *blackboxD != "" || *explainDir != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}

	// Every recorder sink feeds one Tee so the trace file, the live
	// event stream, and the run tracker see identical events.
	var sinks []obs.Recorder
	if *trace != "" {
		ft, err := obs.CreateTrace(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Flush and close on every exit path; a trace write error makes
		// the process exit non-zero even when the run itself succeeded.
		defer func() {
			if err := ft.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				if code == 0 {
					code = 1
				}
			} else if code == 0 {
				fmt.Printf("trace written to %s\n", *trace)
			}
		}()
		sinks = append(sinks, ft)
	}
	var stream *obs.StreamRecorder
	var runs *obs.RunTracker
	if *serve != "" {
		stream = obs.NewStreamRecorder(0)
		runs = &obs.RunTracker{}
		sinks = append(sinks, stream, runs)
	}
	var box *blackbox.Ring
	if *blackboxD != "" {
		box, err = blackbox.New(blackbox.Options{
			Dir: *blackboxD, RunID: runID, Fingerprint: fingerprint, Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		sinks = append(sinks, box)
	}
	var explainer *adaptiverank.Explainer
	if *explainDir != "" {
		explainer, err = adaptiverank.NewExplainer(adaptiverank.ExplainOptions{
			Dir: *explainDir, RunID: runID, Fingerprint: fingerprint,
			Registry: reg, AttribTopN: *explainTop,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		opts.Explain = explainer
		// Flush and fsync the explain artifact on every exit path; a write
		// error surfaces as a non-zero exit like the trace and profiler.
		defer func() {
			if err := explainer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "explain:", err)
				if code == 0 {
					code = 1
				}
			} else {
				fmt.Printf("explain artifact written to %s (inspect with explainreport -dir %s)\n", *explainDir, *explainDir)
			}
		}()
		// The explain sink persists detector-decision evidence from the
		// shared event stream.
		sinks = append(sinks, explainer.Recorder())
	}
	var profiler *prof.Profiler
	if *profDir != "" {
		profiler, err = prof.Start(prof.Options{
			Dir: *profDir, RunID: runID, Fingerprint: fingerprint,
			CPUWindow: *profCPUWin, Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Stop profiling and fsync+close the manifest on every exit path —
		// signal-driven ones included — so a cut-short run still leaves a
		// readable profile directory behind.
		defer func() {
			if err := profiler.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				if code == 0 {
					code = 1
				}
			} else {
				fmt.Printf("profiles written to %s (inspect with profreport -dir %s)\n", *profDir, *profDir)
			}
		}()
		sinks = append(sinks, profiler.Recorder())
	}

	// The SLO watchdog wraps the Tee from above: pipeline events flow
	// through it into the sinks, and any alerts it raises follow the same
	// path, so they show up in the trace file, the SSE stream, and /alerts
	// uniformly.
	wopts := obs.WatchdogOptions{
		MinRecallSlope: *sloSlope, MaxFireRate: *sloFire, MaxStepP99: *sloP99, MaxFaultRate: *sloFault,
		RecallWindow: *sloWin, FireWindow: *sloWin, LatencyWindow: *sloWin, FaultWindow: *sloWin,
	}
	var wd *obs.Watchdog
	if len(sinks) > 0 || wopts.Enabled() {
		var rec obs.Recorder
		if len(sinks) > 0 {
			rec = obs.Tee(sinks...)
		}
		if wopts.Enabled() {
			wd = obs.Watch(rec, wopts)
			rec = wd
		}
		opts.Recorder = rec
	}

	if *serve != "" {
		srvOpts := obs.ServerOptions{Registry: reg, Stream: stream, Runs: runs, Watchdog: wd}
		if box != nil {
			srvOpts.Blackbox = box.Handler()
		}
		if *profDir != "" {
			srvOpts.Profiles = prof.DirHandler(*profDir)
		}
		if explainer != nil {
			srvOpts.Explain = explainer.Handler()
		}
		srv := obs.NewServer(srvOpts)
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Printf("observability server on http://%s (/metrics /events /runs /alerts /healthz /debug/pprof /debug/blackbox /profiles /model /explain)\n", addr)
	}

	// SIGQUIT is the operator's postmortem trigger: flush a black-box
	// bundle (when armed), then cancel the run context so the pipeline
	// drains and every deferred close above — trace fsync, profiling
	// manifest fsync — runs before the process exits through run().
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	defer signal.Stop(sigq)
	go func() {
		for range sigq {
			if box != nil {
				if dir, err := box.Dump(obs.DumpReasonSignal); err != nil {
					fmt.Fprintln(os.Stderr, "blackbox:", err)
				} else {
					fmt.Fprintf(os.Stderr, "SIGQUIT: postmortem bundle written to %s\n", dir)
				}
			}
			cancelRun()
		}
	}()

	fmt.Printf("extracting %s with %s + %s...\n", rel.Name(), *strategy, *detector)

	res, err := adaptiverank.RunContext(runCtx, coll, ex, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if box != nil {
		if bundles, err := blackbox.Bundles(*blackboxD); err == nil && len(bundles) > 0 {
			fmt.Fprintf(os.Stderr, "postmortem: %d bundle(s) in %s (inspect with profreport -bundle %s/%s)\n",
				len(bundles), *blackboxD, *blackboxD, bundles[len(bundles)-1])
		}
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		if err := reg.Dump(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}
	if wd != nil {
		if alerts := wd.Alerts(); len(alerts) > 0 {
			fmt.Fprintf(os.Stderr, "--- SLO alerts (%d) ---\n", len(alerts))
			for _, a := range alerts {
				fmt.Fprintf(os.Stderr, "  doc %d [%s] %s\n", a.Docs, a.Rule, a.Message)
			}
		}
	}

	fmt.Printf("\nprocessed %d documents, %d useful, %d distinct tuples, %d model updates\n",
		res.DocsProcessed, res.UsefulFound, len(res.Tuples), res.Updates)
	if len(res.Skipped) > 0 || res.Requeued > 0 {
		fmt.Printf("fault tolerance: %d documents skipped, %d requeued\n", len(res.Skipped), res.Requeued)
	}
	fmt.Printf("ranking overhead: %v (%.3f ms/doc)\n", res.RankingOverhead,
		float64(res.RankingOverhead.Microseconds())/1000/float64(max(1, res.DocsProcessed)))
	n := len(res.Tuples)
	if n > 10 {
		n = 10
	}
	fmt.Println("\nfirst tuples:")
	for _, t := range res.Tuples[:n] {
		fmt.Printf("  %v\n", t)
	}

	if *resultOut != "" {
		if err := writeResult(*resultOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "result-out:", err)
			return 1
		}
		fmt.Printf("result written to %s\n", *resultOut)
	}
	if res.Interrupted {
		fmt.Printf("\ninterrupted: run stopped early by signal")
		if *checkpoint != "" {
			fmt.Printf("; resume with -checkpoint %s -resume", *checkpoint)
		}
		fmt.Println()
		return 130
	}
	return 0
}

// writeResult dumps the run outcome as deterministic JSON. The CI
// kill-and-resume smoke test diffs these files byte-for-byte between an
// uninterrupted run and a killed-then-resumed one.
func writeResult(path string, res *adaptiverank.Result) error {
	type out struct {
		DocsProcessed int                  `json:"docs_processed"`
		UsefulFound   int                  `json:"useful_found"`
		Updates       int                  `json:"updates"`
		Interrupted   bool                 `json:"interrupted"`
		Requeued      int                  `json:"requeued"`
		Skipped       []adaptiverank.DocID `json:"skipped,omitempty"`
		Order         []adaptiverank.DocID `json:"order"`
		Tuples        []adaptiverank.Tuple `json:"tuples"`
	}
	b, err := json.MarshalIndent(out{
		DocsProcessed: res.DocsProcessed,
		UsefulFound:   res.UsefulFound,
		Updates:       res.Updates,
		Interrupted:   res.Interrupted,
		Requeued:      res.Requeued,
		Skipped:       res.Skipped,
		Order:         res.Order,
		Tuples:        res.Tuples,
	}, "", "  ")
	if err != nil {
		return err
	}
	// Atomic: the CI smoke tests and the crash harness diff result files
	// byte-for-byte, so a half-written result after a kill would read as
	// a spurious mismatch instead of "no result yet".
	return durable.WriteFileAtomic(nil, path, append(b, '\n'), 0o644, "result")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
