// Command crashtest is the crash-consistency chaos harness: it
// enumerates the kill points registered inside internal/durable's write
// paths, runs the real extraction pipeline, kills it at each point, and
// verifies the recovery contract every reader documents:
//
//   - resuming from the journal yields a result byte-identical to an
//     uninterrupted run of the same configuration;
//   - JSONL readers (explain log, profile manifest) drop exactly the
//     torn tail a mid-append death leaves behind;
//   - a black-box bundle without its meta.json completeness marker is
//     ignored by readers;
//   - no reader ever observes a half-written whole-file artifact
//     (result/bench/corpus dumps).
//
// Three attack modes, all run by default:
//
//	panic  in-process writer-level matrix: every (writer shape, site)
//	       pair is armed with KillModePanic and driven directly against
//	       the durable writers, with recovery verified on the survivors;
//	kill   subprocess pipeline matrix: crashtest re-execs itself as a
//	       child (-child) with ADAPTIVERANK_KILL_* set, the child arms
//	       the point via durable.ArmFromEnv and SIGKILLs itself when a
//	       real write reaches it — the closest in-process stand-in for
//	       power loss — and the parent then resumes from the journal;
//	fault  seeded faultfs soak: the writer shapes run against a
//	       deterministic disk-fault schedule (short writes, ENOSPC, EIO
//	       on fsync) and every failure must leave readable state. A
//	       failure prints the fault seed that reproduces it.
//
// Exit status is 0 when every case passes, 1 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"adaptiverank"
	"adaptiverank/internal/durable"
	"adaptiverank/internal/durable/faultfs"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/blackbox"
	"adaptiverank/internal/obs/explain"
	"adaptiverank/internal/obs/prof"
)

func main() {
	// The child arms its kill point from the environment, exactly like
	// the production CLIs do; a no-op in the parent.
	durable.ArmFromEnv()
	os.Exit(run())
}

var (
	docs        = flag.Int("docs", 300, "corpus size for the pipeline kill matrix")
	seed        = flag.Int64("seed", 42, "corpus and run seed")
	strategies  = flag.String("strategies", "rsvm,bagg", "comma-separated ranking strategies for the kill matrix")
	mode        = flag.String("mode", "all", "which matrices to run: all, panic, kill, fault")
	pointFilter = flag.String("points", "", "only run kill-matrix cases whose label:site contains this substring")
	workDir     = flag.String("dir", "", "working directory for artifacts (default: a temp dir)")
	keep        = flag.Bool("keep", false, "keep the working directory after a passing run")
	faultSeed   = flag.Int64("fault-seed", 1, "base seed for the faultfs soak (round i uses fault-seed+i)")
	faultRounds = flag.Int("fault-rounds", 6, "number of faultfs soak rounds")
	verbose     = flag.Bool("v", false, "log every case, not just failures")

	// Child-mode flags, set by the parent on re-exec.
	child         = flag.Bool("child", false, "internal: run one pipeline pass as a kill-target child")
	childStrategy = flag.String("strategy", "rsvm", "internal: child ranking strategy")
	childCkpt     = flag.String("ckpt", "", "internal: child journal path")
	childResume   = flag.Bool("resume", false, "internal: child resumes from -ckpt")
	childResult   = flag.String("result", "", "internal: child result JSON path")
	childExplain  = flag.String("explain-dir", "", "internal: child explain artifact directory")
	childProf     = flag.String("prof-dir", "", "internal: child profile directory")
	childBlackbox = flag.String("blackbox-dir", "", "internal: child black-box directory")
	childDump     = flag.Bool("dump-blackbox", false, "internal: child dumps a postmortem bundle after the run")
)

func run() int {
	flag.Parse()
	if *child {
		return runChild()
	}

	dir := *workDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "crashtest-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			return 1
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		return 1
	}

	h := &harness{dir: dir}
	start := time.Now() //lint:allow detrand elapsed-time telemetry only; never feeds case selection
	if *mode == "all" || *mode == "panic" {
		h.panicMatrix()
	}
	if *mode == "all" || *mode == "kill" {
		h.killMatrix()
	}
	if *mode == "all" || *mode == "fault" {
		h.faultSoak()
	}

	//lint:allow detrand elapsed-time telemetry only; never feeds case selection
	fmt.Printf("crashtest: %d case(s), %d failure(s) in %v\n", h.cases, h.failures, time.Since(start).Round(time.Millisecond))
	if h.failures > 0 {
		fmt.Printf("crashtest: artifacts kept in %s\n", dir)
		return 1
	}
	if !*keep && *workDir == "" {
		os.RemoveAll(dir)
	}
	return 0
}

// harness counts cases and failures and owns the working directory.
type harness struct {
	dir      string
	cases    int
	failures int
}

func (h *harness) failf(format string, args ...any) {
	h.failures++
	fmt.Printf("FAIL: "+format+"\n", args...)
}

func (h *harness) logf(format string, args ...any) {
	if *verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// ---------------------------------------------------------------------
// Panic matrix: writer-level, in-process.

// killAt runs fn with point armed in panic mode and reports whether the
// injected death fired; any other panic propagates.
func killAt(point string, skip int, fn func()) (killed bool) {
	durable.Arm(point, durable.KillModePanic, skip)
	defer durable.Disarm()
	defer func() {
		if r := recover(); r != nil {
			var k *durable.Killed
			if err, ok := r.(error); ok && errors.As(err, &k) {
				killed = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}

type soakRec struct {
	Seq int `json:"seq"`
}

// panicMatrix drives every (writer shape, site) pair directly against
// the durable writers and verifies the documented recovery contract on
// what the death left behind.
func (h *harness) panicMatrix() {
	fmt.Println("crashtest: panic matrix (writer-level, in-process)")
	h.panicJSONL()
	h.panicAtomic()
	h.panicDir()
}

func (h *harness) panicJSONL() {
	const label = "crash-jsonl"
	for _, site := range durable.JSONLSites {
		for _, skip := range []int{0, 2} {
			h.cases++
			point := durable.Point(label, site)
			dir, err := os.MkdirTemp(h.dir, "panic-jsonl-")
			if err != nil {
				h.failf("%s skip=%d: %v", point, skip, err)
				continue
			}
			path := filepath.Join(dir, "records.jsonl")

			// Seed the file with complete records, unarmed.
			jl, err := durable.CreateJSONL(nil, path, label)
			if err != nil {
				h.failf("%s: create: %v", point, err)
				continue
			}
			const preexisting = 4
			for i := 0; i < preexisting; i++ {
				if err := jl.Append(soakRec{Seq: i}); err != nil {
					h.failf("%s: seed append: %v", point, err)
				}
			}
			if err := jl.Close(); err != nil {
				h.failf("%s: seed close: %v", point, err)
				continue
			}

			// Reopen and append under fire until the armed point kills us.
			jl, err = durable.AppendJSONL(nil, path, label)
			if err != nil {
				h.failf("%s: reopen: %v", point, err)
				continue
			}
			appended := 0
			killed := killAt(point, skip, func() {
				for i := 0; i < skip+2; i++ {
					if err := jl.Append(soakRec{Seq: preexisting + i}); err != nil {
						panic(err)
					}
					appended++
				}
			})
			if !killed {
				h.failf("%s skip=%d: kill point never fired", point, skip)
				continue
			}
			// Records committed after reopening: every fully appended one,
			// plus the in-flight record when the death struck after its
			// final flush (append-full) rather than mid-write (append-torn).
			committed := appended
			if site == durable.SiteAppendFull {
				committed++
			}

			// The reader must see exactly the committed records...
			want := preexisting + committed
			if got := h.countRecords(point, path); got != want {
				h.failf("%s skip=%d: reader saw %d records, want %d", point, skip, got, want)
				continue
			}
			// ...and the append-side repair must preserve them and accept
			// a new record after the torn tail is truncated away.
			jl, err = durable.AppendJSONL(nil, path, label)
			if err != nil {
				h.failf("%s skip=%d: repair reopen: %v", point, skip, err)
				continue
			}
			if err := jl.Append(soakRec{Seq: 999}); err != nil {
				h.failf("%s skip=%d: append after repair: %v", point, skip, err)
			}
			if err := jl.Close(); err != nil {
				h.failf("%s skip=%d: close after repair: %v", point, skip, err)
			}
			if got := h.countRecords(point, path); got != want+1 {
				h.failf("%s skip=%d: after repair+append reader saw %d records, want %d", point, skip, got, want+1)
				continue
			}
			h.logf("  ok %s skip=%d (%d committed + repair)", point, skip, want)
		}
	}
}

// countRecords reads a JSONL file under the torn-tail contract and
// returns the number of accepted records (-1 on corruption).
func (h *harness) countRecords(point, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		h.failf("%s: read back: %v", point, err)
		return -1
	}
	n := 0
	if _, err := durable.ScanTornTail(data, func(line int, raw []byte) error {
		var r soakRec
		if err := json.Unmarshal(raw, &r); err != nil {
			return err
		}
		n++
		return nil
	}); err != nil {
		h.failf("%s: corrupt survivor file: %v", point, err)
		return -1
	}
	return n
}

func (h *harness) panicAtomic() {
	const label = "crash-atomic"
	oldData := []byte(`{"gen":1}` + "\n")
	newData := []byte(`{"gen":2,"pad":"` + strings.Repeat("x", 256) + `"}` + "\n")
	for _, site := range durable.AtomicSites {
		h.cases++
		point := durable.Point(label, site)
		dir, err := os.MkdirTemp(h.dir, "panic-atomic-")
		if err != nil {
			h.failf("%s: %v", point, err)
			continue
		}
		path := filepath.Join(dir, "artifact.json")
		if err := durable.WriteFileAtomic(nil, path, oldData, 0o644, label); err != nil {
			h.failf("%s: seed write: %v", point, err)
			continue
		}
		killed := killAt(point, 0, func() {
			if err := durable.WriteFileAtomic(nil, path, newData, 0o644, label); err != nil {
				panic(err)
			}
		})
		if !killed {
			h.failf("%s: kill point never fired", point)
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			h.failf("%s: target unreadable after death: %v", point, err)
			continue
		}
		// Before the rename the target must hold the old contents intact;
		// at or after it, the new. Never anything in between.
		want := oldData
		if site == durable.SiteRenamed {
			want = newData
		}
		if !bytes.Equal(got, want) {
			h.failf("%s: target torn: %d bytes, want %d (old=%d new=%d)", point, len(got), len(want), len(oldData), len(newData))
			continue
		}
		// The retry after recovery must land the new contents and clean
		// up the temp debris.
		if err := durable.WriteFileAtomic(nil, path, newData, 0o644, label); err != nil {
			h.failf("%s: rewrite after death: %v", point, err)
			continue
		}
		if got, _ := os.ReadFile(path); !bytes.Equal(got, newData) {
			h.failf("%s: rewrite did not land", point)
			continue
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			h.failf("%s: temp debris left after successful rewrite", point)
			continue
		}
		h.logf("  ok %s", point)
	}
}

func (h *harness) panicDir() {
	const label = "crash-dir"
	for _, site := range durable.DirSites {
		h.cases++
		point := durable.Point(label, site)
		parent, err := os.MkdirTemp(h.dir, "panic-dir-")
		if err != nil {
			h.failf("%s: %v", point, err)
			continue
		}
		bundleDir := filepath.Join(parent, "bundle-0001-crash")
		killed := killAt(point, 0, func() {
			b, err := durable.CreateDir(nil, bundleDir, label)
			if err != nil {
				panic(err)
			}
			if err := b.WriteFile("data.json", []byte(`{"ok":true}`+"\n")); err != nil {
				panic(err)
			}
			if err := b.Commit("meta.json", []byte(`{"complete":true}`+"\n")); err != nil {
				panic(err)
			}
		})
		if !killed {
			h.failf("%s: kill point never fired", point)
			continue
		}
		_, err = os.Stat(filepath.Join(bundleDir, "meta.json"))
		markerPresent := err == nil
		wantMarker := site == durable.SiteMarkerWritten
		if markerPresent != wantMarker {
			h.failf("%s: marker present=%v, want %v", point, markerPresent, wantMarker)
			continue
		}
		// The reader contract: a directory without the marker is a partial
		// bundle and is skipped.
		complete, err := blackbox.Bundles(parent)
		if err != nil {
			h.failf("%s: Bundles: %v", point, err)
			continue
		}
		if wantMarker && len(complete) != 1 {
			h.failf("%s: complete bundle not listed", point)
			continue
		}
		if !wantMarker && len(complete) != 0 {
			h.failf("%s: partial bundle (no marker) listed as complete", point)
			continue
		}
		h.logf("  ok %s (marker=%v)", point, markerPresent)
	}
}

// ---------------------------------------------------------------------
// Kill matrix: real pipeline, SIGKILL subprocess.

// killCase is one (artifact, site, skip) cell of the pipeline matrix.
type killCase struct {
	label string
	site  string
	skip  int
}

// matrix returns the pipeline kill matrix: every durable write site the
// child process deterministically reaches. prof-metrics is exercised by
// the panic matrix instead (its sampler is timer-driven, so aiming a
// subprocess kill at it would race the run's end).
func matrix() []killCase {
	var cases []killCase
	for _, site := range durable.JSONLSites {
		for _, skip := range []int{0, 5} {
			cases = append(cases, killCase{"journal", site, skip})
		}
		for _, skip := range []int{0, 3} {
			cases = append(cases, killCase{"explain", site, skip})
		}
		cases = append(cases, killCase{"prof-manifest", site, 0})
	}
	for _, site := range durable.AtomicSites {
		cases = append(cases, killCase{"result", site, 0})
	}
	for _, site := range durable.DirSites {
		cases = append(cases, killCase{"blackbox", site, 0})
	}
	return cases
}

func (h *harness) killMatrix() {
	exe, err := os.Executable()
	if err != nil {
		h.failf("kill matrix: %v", err)
		return
	}
	for _, strat := range strings.Split(*strategies, ",") {
		strat = strings.TrimSpace(strat)
		if strat == "" {
			continue
		}
		h.killMatrixStrategy(exe, strat)
	}
}

func (h *harness) killMatrixStrategy(exe, strat string) {
	fmt.Printf("crashtest: kill matrix (SIGKILL subprocess, strategy %s, %d docs)\n", strat, *docs)
	stratDir := filepath.Join(h.dir, "kill-"+strat)
	if err := os.MkdirAll(stratDir, 0o755); err != nil {
		h.failf("%s: %v", strat, err)
		return
	}

	// Reference: an uninterrupted run of the same configuration.
	refPath := filepath.Join(stratDir, "ref.json")
	refCkpt := filepath.Join(stratDir, "ref.ckpt")
	if out, err := h.runChildProc(exe, nil, "-strategy", strat, "-ckpt", refCkpt, "-result", refPath); err != nil {
		h.failf("%s: reference run: %v\n%s", strat, err, out)
		return
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		h.failf("%s: reference result: %v", strat, err)
		return
	}

	for _, kc := range matrix() {
		point := durable.Point(kc.label, kc.site)
		if *pointFilter != "" && !strings.Contains(point, *pointFilter) {
			continue
		}
		h.cases++
		name := fmt.Sprintf("%s-%s-skip%d", kc.label, kc.site, kc.skip)
		caseDir := filepath.Join(stratDir, name)
		if err := os.MkdirAll(caseDir, 0o755); err != nil {
			h.failf("%s/%s: %v", strat, name, err)
			continue
		}
		ckpt := filepath.Join(caseDir, "run.ckpt")
		resultPath := filepath.Join(caseDir, "result.json")

		args := []string{"-strategy", strat, "-ckpt", ckpt, "-result", resultPath}
		switch kc.label {
		case "explain":
			args = append(args, "-explain-dir", filepath.Join(caseDir, "explain"))
		case "prof-manifest":
			args = append(args, "-prof-dir", filepath.Join(caseDir, "prof"))
		case "blackbox":
			args = append(args, "-blackbox-dir", filepath.Join(caseDir, "blackbox"), "-dump-blackbox")
		}
		env := []string{
			durable.EnvKillPoint + "=" + point,
			durable.EnvKillMode + "=" + durable.KillModeKill,
			durable.EnvKillSkip + "=" + fmt.Sprint(kc.skip),
		}
		out, err := h.runChildProc(exe, env, args...)
		if !diedBySIGKILL(err) {
			h.failf("%s/%s: child did not die at the armed point (err=%v)\n%s", strat, name, err, out)
			continue
		}

		if !h.verifyArtifacts(strat, name, kc, caseDir, resultPath, ref) {
			continue
		}
		if !h.verifyResume(exe, strat, name, kc, ckpt, caseDir, ref) {
			continue
		}
		h.logf("  ok %s skip=%d", point, kc.skip)
	}
}

// runChildProc re-execs this binary in child mode with extra env and
// returns combined output.
func (h *harness) runChildProc(exe string, env []string, args ...string) (string, error) {
	cmd := exec.Command(exe, append([]string{"-child", "-docs", fmt.Sprint(*docs), "-seed", fmt.Sprint(*seed)}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// diedBySIGKILL reports whether the child was torn down by the
// self-delivered SIGKILL of an armed kill point.
func diedBySIGKILL(err error) bool {
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		return false
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL
}

// verifyArtifacts checks the artifact the kill targeted against its
// reader's recovery contract.
func (h *harness) verifyArtifacts(strat, name string, kc killCase, caseDir, resultPath string, ref []byte) bool {
	switch kc.label {
	case "explain":
		_, err := explain.ReadLog(filepath.Join(caseDir, "explain"))
		// The only acceptable error is a torn-away header: the death hit
		// the very first append. Every other partial log must read clean.
		headerTorn := kc.site == durable.SiteAppendTorn && kc.skip == 0
		if err != nil && !(headerTorn && strings.Contains(err.Error(), "no header")) {
			h.failf("%s/%s: partial explain log unreadable: %v", strat, name, err)
			return false
		}
	case "prof-manifest":
		_, err := prof.ReadManifest(filepath.Join(caseDir, "prof"))
		headerTorn := kc.site == durable.SiteAppendTorn && kc.skip == 0
		if err != nil && !(headerTorn && strings.Contains(err.Error(), "no header")) {
			h.failf("%s/%s: partial profile manifest unreadable: %v", strat, name, err)
			return false
		}
	case "result":
		data, err := os.ReadFile(resultPath)
		switch {
		case kc.site == durable.SiteRenamed:
			// The rename landed before the death: the target must hold the
			// complete new contents — byte-identical to the reference.
			if err != nil || !bytes.Equal(data, ref) {
				h.failf("%s/%s: post-rename result not the complete reference (err=%v)", strat, name, err)
				return false
			}
		case err == nil:
			// Before the rename no target may exist at all: a visible
			// half-written result is exactly what atomic writes preclude.
			h.failf("%s/%s: result file visible before rename (%d bytes)", strat, name, len(data))
			return false
		case !os.IsNotExist(err):
			h.failf("%s/%s: result stat: %v", strat, name, err)
			return false
		}
	case "blackbox":
		bdir := filepath.Join(caseDir, "blackbox")
		complete, err := blackbox.Bundles(bdir)
		if err != nil {
			h.failf("%s/%s: Bundles: %v", strat, name, err)
			return false
		}
		if kc.site == durable.SiteMarkerWritten {
			if len(complete) != 1 {
				h.failf("%s/%s: bundle with marker not listed (got %d)", strat, name, len(complete))
				return false
			}
			if _, err := blackbox.ReadMeta(filepath.Join(bdir, complete[0])); err != nil {
				h.failf("%s/%s: complete bundle meta unreadable: %v", strat, name, err)
				return false
			}
		} else {
			if len(complete) != 0 {
				h.failf("%s/%s: marker-less partial bundle listed as complete", strat, name)
				return false
			}
			// The partial bundle directory itself must exist — the death
			// struck mid-dump, after the directory was created.
			entries, err := os.ReadDir(bdir)
			if err != nil || len(entries) == 0 {
				h.failf("%s/%s: expected a partial bundle directory (err=%v)", strat, name, err)
				return false
			}
		}
	}
	return true
}

// verifyResume resumes the killed run from its journal and requires the
// result to be byte-identical to the uninterrupted reference.
func (h *harness) verifyResume(exe, strat, name string, kc killCase, ckpt, caseDir string, ref []byte) bool {
	resumedPath := filepath.Join(caseDir, "resumed.json")
	out, err := h.runChildProc(exe, nil, "-strategy", strat, "-ckpt", ckpt, "-resume", "-result", resumedPath)
	if err != nil {
		// One documented failure: the death tore the journal's very first
		// append, so not even the header committed. The journal tells the
		// operator to delete the file and start over — do that, and the
		// fresh run must still reproduce the reference.
		if strings.Contains(out, "no complete header") {
			if err := os.Remove(ckpt); err != nil {
				h.failf("%s/%s: removing headerless journal: %v", strat, name, err)
				return false
			}
			out, err = h.runChildProc(exe, nil, "-strategy", strat, "-ckpt", ckpt, "-result", resumedPath)
			if err != nil {
				h.failf("%s/%s: fresh run after headerless journal: %v\n%s", strat, name, err, out)
				return false
			}
		} else {
			h.failf("%s/%s: resume failed: %v\n%s", strat, name, err, out)
			return false
		}
	}
	resumed, err := os.ReadFile(resumedPath)
	if err != nil {
		h.failf("%s/%s: resumed result: %v", strat, name, err)
		return false
	}
	if !bytes.Equal(resumed, ref) {
		h.failf("%s/%s: resumed result differs from uninterrupted reference (%d vs %d bytes)", strat, name, len(resumed), len(ref))
		return false
	}
	return true
}

// ---------------------------------------------------------------------
// Faultfs soak: seeded disk-fault schedules against the writer shapes.

func (h *harness) faultSoak() {
	fmt.Printf("crashtest: faultfs soak (%d rounds, base seed %d)\n", *faultRounds, *faultSeed)
	for i := 0; i < *faultRounds; i++ {
		fseed := *faultSeed + int64(i)
		h.cases++
		if h.soakRound(fseed) {
			h.logf("  ok fault seed %d", fseed)
		}
	}
}

// soakRound drives the atomic and JSONL writers through one seeded fault
// schedule. Any invariant violation prints the seed that reproduces it:
//
//	crashtest -mode fault -fault-seed <seed> -fault-rounds 1
func (h *harness) soakRound(fseed int64) bool {
	dir, err := os.MkdirTemp(h.dir, fmt.Sprintf("fault-%d-", fseed))
	if err != nil {
		h.failf("fault seed %d: %v", fseed, err)
		return false
	}
	ffs := faultfs.New(nil, faultfs.Options{
		Seed:           fseed,
		OpenErrRate:    0.02,
		WriteErrRate:   0.05,
		ShortWriteRate: 0.05,
		SyncErrRate:    0.05,
		RenameErrRate:  0.05,
	})
	ok := true

	// Atomic: across generations of writes with injected faults, the
	// target must always hold one complete generation — the latest
	// success, or (when a fault landed after the rename) the very write
	// that reported the error. Never a torn mix.
	target := filepath.Join(dir, "artifact.json")
	last, wrote := []byte(nil), false
	for gen := 0; gen < 40 && ok; gen++ {
		next := []byte(fmt.Sprintf(`{"gen":%d,"pad":%q}`, gen, strings.Repeat("g", 32+gen)))
		err := durable.WriteFileAtomic(ffs, target, next, 0o644, "soak")
		got, readErr := os.ReadFile(target)
		switch {
		case err == nil:
			if readErr != nil || !bytes.Equal(got, next) {
				h.failf("fault seed %d: atomic gen %d reported success but target does not hold it", fseed, gen)
				ok = false
			}
			last, wrote = next, true
		case readErr == nil && bytes.Equal(got, next):
			// Fault after the rename: the new generation landed anyway.
			last, wrote = next, true
		case !wrote && os.IsNotExist(readErr):
			// No successful write yet; no target is acceptable.
		case readErr == nil && wrote && bytes.Equal(got, last):
			// Old generation intact.
		default:
			h.failf("fault seed %d: atomic gen %d left a torn target (err=%v readErr=%v)", fseed, gen, err, readErr)
			ok = false
		}
	}

	// JSONL: append records under fire, healing with AppendJSONL after
	// every writer error. The surviving file must parse clean under the
	// torn-tail contract and contain a strictly increasing subsequence
	// of the appended sequence numbers.
	path := filepath.Join(dir, "records.jsonl")
	var jl *durable.JSONL
	for seq := 0; seq < 60 && ok; seq++ {
		if jl == nil {
			if jl, err = durable.AppendJSONL(ffs, path, "soak"); err != nil {
				jl = nil
				continue // open fault; try again next round
			}
		}
		if err := jl.Append(soakRec{Seq: seq}); err != nil {
			jl.Close()
			jl = nil
		}
	}
	if jl != nil {
		jl.Close()
	}
	if data, err := os.ReadFile(path); err == nil {
		prev := -1
		if _, err := durable.ScanTornTail(data, func(line int, raw []byte) error {
			var r soakRec
			if err := json.Unmarshal(raw, &r); err != nil {
				return err
			}
			if r.Seq <= prev {
				return durable.Fatal(fmt.Errorf("seq %d after %d", r.Seq, prev))
			}
			prev = r.Seq
			return nil
		}); err != nil {
			h.failf("fault seed %d: surviving JSONL corrupt: %v", fseed, err)
			ok = false
		}
	}
	return ok
}

// ---------------------------------------------------------------------
// Child mode: one real pipeline pass, dying at the armed kill point.

// runChild runs one extraction pass with the flags the parent passed.
// The kill point, if any, was armed from the environment in main; the
// self-SIGKILL fires inside whichever durable write reaches it.
func runChild() (code int) {
	coll, err := adaptiverank.GenerateCorpus(*seed, *docs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCareer)

	opts := adaptiverank.Options{Seed: *seed, Checkpoint: *childCkpt, Resume: *childResume}
	switch *childStrategy {
	case "rsvm":
		opts.Strategy = adaptiverank.RSVMIE
	case "bagg":
		opts.Strategy = adaptiverank.BAggIE
	default:
		fmt.Fprintf(os.Stderr, "child: unknown strategy %q\n", *childStrategy)
		return 2
	}
	fingerprint := adaptiverank.Fingerprint(coll, ex, opts)

	var sinks []adaptiverank.Recorder
	if *childExplain != "" {
		explainer, err := adaptiverank.NewExplainer(adaptiverank.ExplainOptions{
			Dir: *childExplain, RunID: "crashtest", Fingerprint: fingerprint,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			return 1
		}
		opts.Explain = explainer
		defer func() {
			if err := explainer.Close(); err != nil && code == 0 {
				fmt.Fprintln(os.Stderr, "child: explain:", err)
				code = 1
			}
		}()
		sinks = append(sinks, explainer.Recorder())
	}
	if *childProf != "" {
		profiler, err := prof.Start(prof.Options{
			Dir: *childProf, RunID: "crashtest", Fingerprint: fingerprint,
			CPUWindow: 100 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			return 1
		}
		defer func() {
			if err := profiler.Close(); err != nil && code == 0 {
				fmt.Fprintln(os.Stderr, "child: prof:", err)
				code = 1
			}
		}()
		sinks = append(sinks, profiler.Recorder())
	}
	var box *blackbox.Ring
	if *childBlackbox != "" {
		box, err = blackbox.New(blackbox.Options{
			Dir: *childBlackbox, RunID: "crashtest", Fingerprint: fingerprint,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			return 1
		}
		sinks = append(sinks, box)
	}
	if len(sinks) > 0 {
		opts.Recorder = adaptiverank.TeeRecorder(sinks...)
	}

	res, err := adaptiverank.RunContext(context.Background(), coll, ex, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	if *childDump && box != nil {
		if _, err := box.Dump(obs.DumpReasonManual); err != nil {
			fmt.Fprintln(os.Stderr, "child: blackbox:", err)
			return 1
		}
	}
	if *childResult != "" {
		if err := writeChildResult(*childResult, res); err != nil {
			fmt.Fprintln(os.Stderr, "child: result:", err)
			return 1
		}
	}
	return 0
}

// writeChildResult dumps the deterministic fields of the run outcome;
// the parent diffs these bytes between reference, killed, and resumed
// runs.
func writeChildResult(path string, res *adaptiverank.Result) error {
	type out struct {
		DocsProcessed int                  `json:"docs_processed"`
		UsefulFound   int                  `json:"useful_found"`
		Updates       int                  `json:"updates"`
		Order         []adaptiverank.DocID `json:"order"`
		Tuples        []adaptiverank.Tuple `json:"tuples"`
	}
	b, err := json.MarshalIndent(out{
		DocsProcessed: res.DocsProcessed,
		UsefulFound:   res.UsefulFound,
		Updates:       res.Updates,
		Order:         res.Order,
		Tuples:        res.Tuples,
	}, "", "  ")
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(nil, path, append(b, '\n'), 0o644, "result")
}
