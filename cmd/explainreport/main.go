// Command explainreport renders the model-introspection artifact the
// explain substrate (internal/obs/explain) writes: the weight-drift
// timeline across model updates, the structured evidence behind every
// detector fire/no-fire decision, exact per-feature score attributions
// of top-ranked documents, and joined "why did the detector fire here"
// reports — all from one JSONL log, no external tooling required.
//
//	explainreport -dir DIR                 summary: header, drift timeline, decision counts
//	explainreport -dir DIR -provenance     every detector decision with its evidence
//	explainreport -dir DIR -fired          joined why-did-it-fire report per model update
//	explainreport -dir DIR -doc ID         score attribution of one document
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		dir        = flag.String("dir", "", "explain artifact directory to report on (required)")
		provenance = flag.Bool("provenance", false, "list every detector decision with its structured evidence")
		fired      = flag.Bool("fired", false, "join each detector fire with the model update it triggered: evidence, drift, churn, top movers")
		doc        = flag.Int64("doc", -1, "render the score attribution of this document id")
		topN       = flag.Int("n", 10, "rows per table (contributions, movers, decisions)")
	)
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "explainreport: -dir is required")
		flag.Usage()
		return 2
	}
	modes := 0
	for _, set := range []bool{*provenance, *fired, *doc >= 0} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "explainreport: at most one of -provenance, -fired, -doc")
		flag.Usage()
		return 2
	}

	var err error
	switch {
	case *provenance:
		err = reportProvenance(os.Stdout, *dir, *topN)
	case *fired:
		err = reportFired(os.Stdout, *dir, *topN)
	case *doc >= 0:
		err = reportDoc(os.Stdout, *dir, *doc)
	default:
		err = reportSummary(os.Stdout, *dir, *topN)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "explainreport:", err)
		return 1
	}
	return 0
}
