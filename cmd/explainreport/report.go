package main

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"adaptiverank/internal/obs/explain"
)

// featLabel names a feature for display: the featurizer name when the
// artifact carries one, the raw index otherwise.
func featLabel(f explain.Feature) string {
	if f.Name != "" {
		return f.Name
	}
	return "#" + strconv.FormatInt(int64(f.Index), 10)
}

// evidenceString renders a decision's evidence attributes as
// space-separated key=value pairs, in recorded order.
func evidenceString(r explain.Record) string {
	s := ""
	for _, a := range r.Evidence {
		if s != "" {
			s += " "
		}
		if a.Str != "" {
			s += fmt.Sprintf("%s=%s", a.Key, a.Str)
		} else {
			s += fmt.Sprintf("%s=%g", a.Key, a.Num)
		}
	}
	return s
}

func decisionLine(r explain.Record) string {
	verdict := "hold"
	if r.Fired {
		verdict = "FIRE"
	}
	return fmt.Sprintf("pos %-6d %-7s %-5s val=%-10.5g %s",
		r.Pos, r.Detector, verdict, r.Val, evidenceString(r))
}

func printHeader(w io.Writer, l *explain.Log) {
	h := l.Header
	fmt.Fprintf(w, "run %s (%s %s/%s, GOMAXPROCS %d)\n", h.RunID, h.Go, h.GOOS, h.GOARCH, h.GOMAXPROCS)
	if h.Fingerprint != "" {
		fmt.Fprintf(w, "fingerprint: %s\n", h.Fingerprint)
	}
}

// reportSummary renders the artifact overview: the weight-drift
// timeline across model updates and per-detector decision counts.
func reportSummary(w io.Writer, dir string, topN int) error {
	l, err := explain.ReadLog(dir)
	if err != nil {
		return err
	}
	printHeader(w, l)
	fmt.Fprintf(w, "records: %d snapshots, %d attributions, %d decisions\n",
		len(l.Snapshots), len(l.Attributions), len(l.Decisions))

	if len(l.Snapshots) > 0 {
		fmt.Fprintf(w, "\n--- weight-drift timeline ---\n")
		fmt.Fprintf(w, "%-4s %-12s %-7s %-6s %10s %10s %9s %9s %9s %7s\n",
			"upd", "stage", "pos", "nnz", "L1", "L2", "dL1", "dL2", "cos", "churn")
		for _, s := range l.Snapshots {
			dl1, dl2, cos := "-", "-", "-"
			churn := "-"
			if s.DriftPrev != nil {
				dl1 = fmt.Sprintf("%.4g", s.DriftPrev.L1)
				dl2 = fmt.Sprintf("%.4g", s.DriftPrev.L2)
				cos = fmt.Sprintf("%.5f", s.DriftPrev.Cosine)
				churn = fmt.Sprintf("+%d/-%d", s.Added, s.Removed)
			}
			fmt.Fprintf(w, "%-4d %-12s %-7d %-6d %10.4g %10.4g %9s %9s %9s %7s\n",
				s.Update, s.Stage, s.Pos, s.NNZ, s.L1, s.L2, dl1, dl2, cos, churn)
		}
		last := l.Snapshots[len(l.Snapshots)-1]
		if len(last.Top) > 0 {
			fmt.Fprintf(w, "\n--- top model weights (final snapshot) ---\n")
			n := topN
			if n > len(last.Top) {
				n = len(last.Top)
			}
			for _, f := range last.Top[:n] {
				fmt.Fprintf(w, "  %12.5g  %s\n", f.Weight, featLabel(f))
			}
		}
	}

	if len(l.Decisions) > 0 {
		type stats struct {
			total, fires int
		}
		byDet := map[string]*stats{}
		var order []string
		for _, d := range l.Decisions {
			st := byDet[d.Detector]
			if st == nil {
				st = &stats{}
				byDet[d.Detector] = st
				order = append(order, d.Detector)
			}
			st.total++
			if d.Fired {
				st.fires++
			}
		}
		fmt.Fprintf(w, "\n--- detector decisions ---\n")
		for _, det := range order {
			st := byDet[det]
			fmt.Fprintf(w, "  %-8s %6d decisions, %d fired\n", det, st.total, st.fires)
		}
		fmt.Fprintln(w, "(full evidence: explainreport -provenance; joined fire reports: -fired)")
	}
	if len(l.Attributions) > 0 {
		fmt.Fprintf(w, "\n%d score attributions captured (render one with -doc ID)\n", len(l.Attributions))
	}
	return nil
}

// reportProvenance lists every detector decision with its structured
// evidence — the full fire/no-fire audit trail.
func reportProvenance(w io.Writer, dir string, topN int) error {
	l, err := explain.ReadLog(dir)
	if err != nil {
		return err
	}
	if len(l.Decisions) == 0 {
		return fmt.Errorf("no detector decisions in %s (run with a detector and the explain recorder teed in)", dir)
	}
	printHeader(w, l)
	fires := 0
	for _, d := range l.Decisions {
		if d.Fired {
			fires++
		}
	}
	fmt.Fprintf(w, "decision provenance: %d decisions, %d fired\n\n", len(l.Decisions), fires)
	for _, d := range l.Decisions {
		fmt.Fprintln(w, decisionLine(d))
	}
	return nil
}

// snapshotAt returns the first train-update snapshot at or after pos —
// the model update a fire at pos triggered.
func snapshotAt(l *explain.Log, pos int) *explain.Record {
	for i := range l.Snapshots {
		s := &l.Snapshots[i]
		if s.Stage == explain.StageTrainUpdate && s.Pos >= pos {
			return s
		}
	}
	return nil
}

// reportFired answers "why did the detector fire at position k" for
// every fire in the artifact: the decision's evidence joined with the
// model update it triggered — drift vs the previous model, support
// churn, and the top weight movers.
func reportFired(w io.Writer, dir string, topN int) error {
	l, err := explain.ReadLog(dir)
	if err != nil {
		return err
	}
	printHeader(w, l)
	fires := 0
	for _, d := range l.Decisions {
		if !d.Fired {
			continue
		}
		fires++
		fmt.Fprintf(w, "\n=== fire %d: %s at position %d ===\n", fires, d.Detector, d.Pos)
		fmt.Fprintf(w, "decision: val=%g  %s\n", d.Val, evidenceString(d))
		s := snapshotAt(l, d.Pos)
		if s == nil {
			fmt.Fprintln(w, "no model update recorded after this fire (run ended or detector suppressed)")
			continue
		}
		fmt.Fprintf(w, "triggered update %d at pos %d: nnz %d, L1 %.5g, L2 %.5g\n",
			s.Update, s.Pos, s.NNZ, s.L1, s.L2)
		if s.DriftPrev != nil {
			fmt.Fprintf(w, "drift vs previous model: L1 %.5g, L2 %.5g, cosine %.5f; %d features entered, %d left (churn +%d/-%d)\n",
				s.DriftPrev.L1, s.DriftPrev.L2, s.DriftPrev.Cosine,
				s.DriftPrev.Entered, s.DriftPrev.Left, s.Added, s.Removed)
		}
		if s.DriftInit != nil {
			fmt.Fprintf(w, "drift vs initial model:  L1 %.5g, L2 %.5g, cosine %.5f\n",
				s.DriftInit.L1, s.DriftInit.L2, s.DriftInit.Cosine)
		}
		if len(s.Movers) > 0 {
			n := topN
			if n > len(s.Movers) {
				n = len(s.Movers)
			}
			fmt.Fprintln(w, "top weight movers:")
			for _, f := range s.Movers[:n] {
				fmt.Fprintf(w, "  %+12.5g  %s\n", f.Weight, featLabel(f))
			}
		}
	}
	if fires == 0 {
		fmt.Fprintln(w, "no detector fires recorded")
	}
	return nil
}

// reportDoc renders one document's exact score attribution and checks
// the reconstruction invariant (contributions + bias fold back to the
// reported score).
func reportDoc(w io.Writer, dir string, doc int64) error {
	l, err := explain.ReadLog(dir)
	if err != nil {
		return err
	}
	a, ok := l.Attribution(doc)
	if !ok {
		return fmt.Errorf("no attribution for document %d in %s (only top-ranked documents are attributed; see -explain-top)", doc, dir)
	}
	printHeader(w, l)
	fmt.Fprintf(w, "document %d: score %.6g (rank %d at position %d)\n", a.Doc, a.Score, a.Rank, a.Pos)
	recon := 0.0
	for mi, m := range a.Members {
		if len(a.Members) > 1 {
			fmt.Fprintf(w, "\nmember %d (margin %.6g):\n", mi, m.Margin)
		} else {
			fmt.Fprintf(w, "\nmargin %.6g:\n", m.Margin)
		}
		sum := 0.0
		for _, c := range m.Contribs {
			sum += c.Weight
			fmt.Fprintf(w, "  %+12.6g  %s\n", c.Weight, featLabel(c))
		}
		if m.Bias != 0 {
			fmt.Fprintf(w, "  %+12.6g  (bias)\n", m.Bias)
			sum += m.Bias
		}
		if a.Logistic {
			recon += 1 / (1 + math.Exp(-sum))
		} else {
			recon += sum
		}
	}
	fmt.Fprintf(w, "\nreconstructed score: %.6g", recon)
	if recon == a.Score {
		fmt.Fprintln(w, " (exact)")
	} else {
		fmt.Fprintf(w, " (MISMATCH vs reported %.6g)\n", a.Score)
		return fmt.Errorf("attribution of document %d does not reconstruct its score", doc)
	}
	return nil
}
