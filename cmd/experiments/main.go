// Command experiments regenerates every table and figure of the paper's
// evaluation section over the synthetic corpus and prints them in paper
// order. Use -list to see experiment ids, -run to select a subset, and
// -scale test|bench to trade fidelity for speed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaptiverank/internal/durable"
	"adaptiverank/internal/experiments"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/blackbox"
	"adaptiverank/internal/obs/explain"
	"adaptiverank/internal/obs/prof"
)

func main() {
	// Arm a chaos kill point when cmd/crashtest asked for one; a no-op
	// in every normal run.
	durable.ArmFromEnv()
	os.Exit(run())
}

// run returns the process exit code so deferred cleanup (trace flush +
// close, server shutdown) executes on every exit path, including suite
// errors — os.Exit in main would skip it.
func run() (code int) {
	var (
		scale    = flag.String("scale", "bench", "experiment scale: bench (paper-shape) or test (fast smoke)")
		runSel   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		runs     = flag.Int("runs", 0, "override repetitions per configuration")
		seed     = flag.Int64("seed", 0, "override corpus seed")
		trace    = flag.String("trace", "", "write a JSONL event trace of every pipeline run to this file (convert with obsreport -chrome)")
		metrics  = flag.Bool("metrics", false, "dump metrics aggregated across all runs (expvar-style text) to stderr on exit")
		serve    = flag.String("serve", "", "serve /metrics (Prometheus), /events (SSE), /runs, /alerts, /healthz and /debug/pprof on this address during the suite (e.g. localhost:6060)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof alone on this address (subsumed by -serve)")
		sloSlope = flag.Float64("slo-min-recall-slope", 0, "SLO watchdog: alert when useful-docs-per-document over the trailing window falls below this floor (0 = rule off)")
		sloFire  = flag.Float64("slo-max-fire-rate", 0, "SLO watchdog: alert when the detector fire rate over the trailing window exceeds this ceiling (0 = rule off)")
		sloP99   = flag.Duration("slo-max-p99", 0, "SLO watchdog: alert when the p99 per-document step latency exceeds this bound (0 = rule off)")
		sloWin   = flag.Int("slo-window", 0, "SLO watchdog: override the rules' trailing-window sizes (0 = per-rule defaults)")
		sloFault = flag.Float64("slo-max-fault-rate", 0, "SLO watchdog: alert when the extraction fault rate over the trailing window exceeds this ceiling (0 = rule off)")
		labelDir = flag.String("label-cache", "", "checkpoint whole-collection oracle labels as journal files in this directory; a restarted suite reloads them instead of re-extracting")

		profDir    = flag.String("prof-dir", "", "continuous profiling: write phase-scoped CPU windows, heap/goroutine snapshots, runtime-metrics samples and a JSONL manifest under this directory (inspect with profreport -dir)")
		profCPUWin = flag.Duration("prof-cpu-window", 10*time.Second, "continuous profiling: CPU profile window length; phase boundaries rotate windows early (0 disables CPU windows)")
		blackboxD  = flag.String("blackbox", "", "flight recorder: keep a bounded ring of recent events in memory and flush postmortem bundles to this directory on worker panic, SLO alert, or SIGQUIT (inspect with profreport -bundle)")

		explainDir = flag.String("explain-dir", "", "model introspection: write weight-drift snapshots, top-ranked score attributions, and detector decision evidence for every pipeline run as a JSONL artifact under this directory (inspect with explainreport -dir; live at /model and /explain with -serve)")
		explainTop = flag.Int("explain-top", 0, "model introspection: attribute this many top-ranked documents per (re-)ranking (0 = default)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the suite context: the current pipeline run
	// drains and the deferred trace flush below still executes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	if *list {
		for _, item := range experiments.Suite() {
			fmt.Println(item.ID)
		}
		return 0
	}

	var cfg experiments.Config
	switch *scale {
	case "bench":
		cfg = experiments.DefaultConfig()
	case "test":
		cfg = experiments.TestConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (want bench or test)\n", *scale)
		return 2
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *metrics || *serve != "" || *profDir != "" || *blackboxD != "" || *explainDir != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	cfg.LabelCacheDir = *labelDir

	var sinks []obs.Recorder
	if *trace != "" {
		ft, err := obs.CreateTrace(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Flush and close on every exit path; a trace write error makes
		// the process exit non-zero even when the suite succeeded.
		defer func() {
			if err := ft.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
		sinks = append(sinks, ft)
	}
	var stream *obs.StreamRecorder
	var runTracker *obs.RunTracker
	if *serve != "" {
		stream = obs.NewStreamRecorder(0)
		runTracker = &obs.RunTracker{}
		sinks = append(sinks, stream, runTracker)
	}

	// Suite identity for profile manifests and postmortem bundles: there
	// is no single run fingerprint across a suite, so the configuration
	// summary stands in for it.
	suiteID := fmt.Sprintf("%s-%d", time.Now().UTC().Format("20060102-150405"), os.Getpid())
	suiteFP := fmt.Sprintf("experiments/v1 scale=%s runs=%d seed=%d sel=%q", *scale, cfg.Runs, cfg.Seed, *runSel)
	var box *blackbox.Ring
	if *blackboxD != "" {
		var err error
		box, err = blackbox.New(blackbox.Options{
			Dir: *blackboxD, RunID: suiteID, Fingerprint: suiteFP, Registry: cfg.Metrics,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		sinks = append(sinks, box)
	}
	var explainer *explain.Explainer
	if *explainDir != "" {
		var err error
		explainer, err = explain.New(explain.Options{
			Dir: *explainDir, RunID: suiteID, Fingerprint: suiteFP,
			Registry: cfg.Metrics, AttribTopN: *explainTop,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg.Explain = explainer
		// Flush and fsync the explain artifact on every exit path; a write
		// error surfaces as a non-zero exit like the trace and profiler.
		defer func() {
			if err := explainer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "explain:", err)
				if code == 0 {
					code = 1
				}
			} else {
				fmt.Fprintf(os.Stderr, "explain artifact written to %s (inspect with explainreport -dir %s)\n", *explainDir, *explainDir)
			}
		}()
		sinks = append(sinks, explainer.Recorder())
	}
	var profiler *prof.Profiler
	if *profDir != "" {
		var err error
		profiler, err = prof.Start(prof.Options{
			Dir: *profDir, RunID: suiteID, Fingerprint: suiteFP,
			CPUWindow: *profCPUWin, Registry: cfg.Metrics,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Stop profiling and fsync+close the manifest on every exit path —
		// signal-driven ones included.
		defer func() {
			if err := profiler.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				if code == 0 {
					code = 1
				}
			} else {
				fmt.Fprintf(os.Stderr, "profiles written to %s (inspect with profreport -dir %s)\n", *profDir, *profDir)
			}
		}()
		sinks = append(sinks, profiler.Recorder())
	}

	// The SLO watchdog wraps the Tee from above so alerts flow into every
	// sink exactly like pipeline events (see cmd/adaptiverank). Across a
	// suite the watchdog resets its windows at each run-started event, so
	// per-run statistics never bleed between experiment configurations.
	wopts := obs.WatchdogOptions{
		MinRecallSlope: *sloSlope, MaxFireRate: *sloFire, MaxStepP99: *sloP99, MaxFaultRate: *sloFault,
		RecallWindow: *sloWin, FireWindow: *sloWin, LatencyWindow: *sloWin, FaultWindow: *sloWin,
	}
	var wd *obs.Watchdog
	if len(sinks) > 0 || wopts.Enabled() {
		var rec obs.Recorder
		if len(sinks) > 0 {
			rec = obs.Tee(sinks...)
		}
		if wopts.Enabled() {
			wd = obs.Watch(rec, wopts)
			rec = wd
		}
		cfg.Recorder = rec
	}

	if *serve != "" {
		srvOpts := obs.ServerOptions{Registry: cfg.Metrics, Stream: stream, Runs: runTracker, Watchdog: wd}
		if box != nil {
			srvOpts.Blackbox = box.Handler()
		}
		if *profDir != "" {
			srvOpts.Profiles = prof.DirHandler(*profDir)
		}
		if explainer != nil {
			srvOpts.Explain = explainer.Handler()
		}
		srv := obs.NewServer(srvOpts)
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability server on http://%s (/metrics /events /runs /alerts /healthz /debug/pprof /debug/blackbox /profiles)\n", addr)
	}

	// SIGQUIT: flush a black-box bundle (when armed), then cancel the
	// suite so the deferred trace and manifest closes run before exit.
	suiteCtx, cancelSuite := context.WithCancel(ctx)
	defer cancelSuite()
	cfg.Ctx = suiteCtx
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	defer signal.Stop(sigq)
	go func() {
		for range sigq {
			if box != nil {
				if dir, err := box.Dump(obs.DumpReasonSignal); err != nil {
					fmt.Fprintln(os.Stderr, "blackbox:", err)
				} else {
					fmt.Fprintf(os.Stderr, "SIGQUIT: postmortem bundle written to %s\n", dir)
				}
			}
			cancelSuite()
		}
	}()

	var ids []string
	if *runSel != "" {
		ids = strings.Split(*runSel, ",")
	}

	start := time.Now()
	env := experiments.NewEnv(cfg)
	if err := experiments.RunSuite(env, os.Stdout, ids...); err != nil {
		if suiteCtx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted: suite stopped by signal; completed label checkpoints are kept")
			return 130
		}
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		if err := cfg.Metrics.Dump(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}
	if wd != nil {
		if alerts := wd.Alerts(); len(alerts) > 0 {
			fmt.Fprintf(os.Stderr, "--- SLO alerts (%d) ---\n", len(alerts))
			for _, a := range alerts {
				fmt.Fprintf(os.Stderr, "  run %d doc %d [%s] %s\n", a.Run, a.Docs, a.Rule, a.Message)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Second))
	return 0
}
