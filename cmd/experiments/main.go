// Command experiments regenerates every table and figure of the paper's
// evaluation section over the synthetic corpus and prints them in paper
// order. Use -list to see experiment ids, -run to select a subset, and
// -scale test|bench to trade fidelity for speed.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"adaptiverank/internal/experiments"
	"adaptiverank/internal/obs"
)

func main() {
	var (
		scale   = flag.String("scale", "bench", "experiment scale: bench (paper-shape) or test (fast smoke)")
		run     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		runs    = flag.Int("runs", 0, "override repetitions per configuration")
		seed    = flag.Int64("seed", 0, "override corpus seed")
		trace   = flag.String("trace", "", "write a JSONL event trace of every pipeline run to this file")
		metrics = flag.Bool("metrics", false, "dump metrics aggregated across all runs (expvar-style text) to stderr on exit")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	if *list {
		for _, item := range experiments.Suite() {
			fmt.Println(item.ID)
		}
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "bench":
		cfg = experiments.DefaultConfig()
	case "test":
		cfg = experiments.TestConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (want bench or test)\n", *scale)
		os.Exit(2)
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *metrics {
		cfg.Metrics = obs.NewRegistry()
	}
	var traceRec *obs.JSONLRecorder
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		traceRec = obs.NewJSONLRecorder(f)
		cfg.Recorder = traceRec
	}

	var ids []string
	if *run != "" {
		ids = strings.Split(*run, ",")
	}

	start := time.Now()
	env := experiments.NewEnv(cfg)
	if err := experiments.RunSuite(env, os.Stdout, ids...); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if traceRec != nil {
		if err := traceRec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
	}
	if cfg.Metrics != nil {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		if err := cfg.Metrics.Dump(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Second))
}
