// Command experiments regenerates every table and figure of the paper's
// evaluation section over the synthetic corpus and prints them in paper
// order. Use -list to see experiment ids, -run to select a subset, and
// -scale test|bench to trade fidelity for speed.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"adaptiverank/internal/experiments"
	"adaptiverank/internal/obs"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code so deferred cleanup (trace flush +
// close, server shutdown) executes on every exit path, including suite
// errors — os.Exit in main would skip it.
func run() (code int) {
	var (
		scale   = flag.String("scale", "bench", "experiment scale: bench (paper-shape) or test (fast smoke)")
		runSel  = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		runs    = flag.Int("runs", 0, "override repetitions per configuration")
		seed    = flag.Int64("seed", 0, "override corpus seed")
		trace   = flag.String("trace", "", "write a JSONL event trace of every pipeline run to this file")
		metrics = flag.Bool("metrics", false, "dump metrics aggregated across all runs (expvar-style text) to stderr on exit")
		serve   = flag.String("serve", "", "serve /metrics (Prometheus), /events (SSE), /runs, /healthz and /debug/pprof on this address during the suite (e.g. localhost:6060)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof alone on this address (subsumed by -serve)")
	)
	flag.Parse()

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	if *list {
		for _, item := range experiments.Suite() {
			fmt.Println(item.ID)
		}
		return 0
	}

	var cfg experiments.Config
	switch *scale {
	case "bench":
		cfg = experiments.DefaultConfig()
	case "test":
		cfg = experiments.TestConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (want bench or test)\n", *scale)
		return 2
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *metrics || *serve != "" {
		cfg.Metrics = obs.NewRegistry()
	}

	var sinks []obs.Recorder
	if *trace != "" {
		ft, err := obs.CreateTrace(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Flush and close on every exit path; a trace write error makes
		// the process exit non-zero even when the suite succeeded.
		defer func() {
			if err := ft.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
		sinks = append(sinks, ft)
	}
	if *serve != "" {
		stream := obs.NewStreamRecorder(0)
		runTracker := &obs.RunTracker{}
		sinks = append(sinks, stream, runTracker)
		srv := obs.NewServer(obs.ServerOptions{Registry: cfg.Metrics, Stream: stream, Runs: runTracker})
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability server on http://%s (/metrics /events /runs /healthz /debug/pprof)\n", addr)
	}
	if len(sinks) > 0 {
		cfg.Recorder = obs.Tee(sinks...)
	}

	var ids []string
	if *runSel != "" {
		ids = strings.Split(*runSel, ",")
	}

	start := time.Now()
	env := experiments.NewEnv(cfg)
	if err := experiments.RunSuite(env, os.Stdout, ids...); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		if err := cfg.Metrics.Dump(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Second))
	return 0
}
