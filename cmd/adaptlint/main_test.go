package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildAdaptlint compiles the adaptlint binary into a temp dir once per
// test run.
func buildAdaptlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "adaptlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building adaptlint: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errorsAs(err, &ee) {
		t.Fatalf("adaptlint did not run: %v", err)
	}
	return ee.ExitCode()
}

func errorsAs(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

// TestAdaptlintFixtureModule runs the built binary over a tiny separate
// module seeded with one detrand and two errpath violations, asserting
// the exit status and the exact diagnostic positions, then over the
// clean package asserting a zero exit.
func TestAdaptlintFixtureModule(t *testing.T) {
	bin := buildAdaptlint(t)
	modDir, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "fixturemod"))
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = modDir
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("adaptlint ./... exit = %d, want 1\n%s", code, out)
	}
	text := string(out)
	for _, wantFrag := range []string{
		filepath.Join("internal", "ranking", "fold.go") + ":8:2: ",
		"unordered map iteration",
		"(detrand)",
		filepath.Join("cmd", "badcli", "main.go") + ":11:3: ",
		"log.Fatal exits without running deferred flushes",
		filepath.Join("cmd", "badcli", "main.go") + ":13:2: ",
		"os.Exit skips deferred trace/checkpoint flushes",
		"(errpath)",
		"adaptlint: 3 finding(s)",
	} {
		if !strings.Contains(text, wantFrag) {
			t.Errorf("output missing %q:\n%s", wantFrag, text)
		}
	}

	clean := exec.Command(bin, "./internal/clean/...")
	clean.Dir = modDir
	out, err = clean.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("adaptlint ./internal/clean/... exit = %d, want 0\n%s", code, out)
	}
	if len(out) != 0 {
		t.Errorf("clean run should print nothing, got:\n%s", out)
	}
}

// TestAdaptlintSelf runs the binary over this repository: the tree must
// stay lint-clean, which is what CI enforces as a blocking step.
func TestAdaptlintSelf(t *testing.T) {
	bin := buildAdaptlint(t)
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("adaptlint over the repository exit = %d, want 0\n%s", code, out)
	}
}
