// Command adaptlint runs the project's custom static analyzers over Go
// packages. It is this repository's multichecker: the suite in
// internal/lint enforces invariants generic linters cannot know about —
// determinism of the ranking pipeline, the closed observability name
// registry, context propagation through the cancellable core, lock
// hygiene in the recording fan-out, the CLI exit-path discipline, the
// artifact-durability boundary (file creation in artifact packages goes
// through internal/durable), allocation discipline in the scoring hot
// path (hotalloc), and a single protection regime per atomically
// accessed field (atomicsafe). Stale //lint:allow directives that no
// longer suppress anything are reported as lintdirective findings.
//
// Usage:
//
//	adaptlint [packages]
//
// With no arguments it analyzes ./... . The exit status is 0 for a clean
// tree, 1 when findings were reported, and 2 when loading or
// type-checking failed. Findings can be suppressed line-by-line with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it; the reason is
// required.
package main

import (
	"os"

	"adaptiverank/internal/lint"
)

func main() { os.Exit(run()) }

func run() int {
	return lint.Main(os.Stdout, ".", lint.All, os.Args[1:])
}
