// Command corpusgen generates a synthetic news-style corpus with planted
// relations and writes it as JSON lines (one {"title","text"} object per
// line), optionally alongside a ground-truth summary. Useful for
// inspecting the generator's output or feeding the corpus to external
// tools.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code so deferred cleanup (the output-file
// close below) executes on every exit path — os.Exit inside the body
// would skip it and could lose buffered corpus lines.
func run() int {
	var (
		docs  = flag.Int("docs", 5000, "number of documents")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output path (default: stdout)")
		truth = flag.Bool("truth", false, "print a planted-relation summary to stderr")
		pprof = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *docs <= 0 {
		fmt.Fprintf(os.Stderr, "corpusgen: -docs must be positive, got %d\n", *docs)
		return 2
	}

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	coll, gt := textgen.Generate(textgen.DefaultConfig(*seed, *docs))

	if *out != "" {
		// SaveJSONL stages and renames, so an interrupted corpusgen never
		// leaves a half-written corpus at -out.
		if err := corpus.SaveJSONL(*out, coll); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else if err := corpus.WriteJSONL(os.Stdout, coll); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *truth {
		fmt.Fprintf(os.Stderr, "%d documents (seed %d)\n", coll.Len(), *seed)
		for _, r := range relation.All() {
			fmt.Fprintf(os.Stderr, "  %s: %d planted documents (%.2f%%)\n",
				r.Code(), len(gt.Planted[r]),
				100*float64(len(gt.Planted[r]))/float64(coll.Len()))
		}
	}
	return 0
}
