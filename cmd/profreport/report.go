package main

// Rendering for the three report modes. All output is deterministic
// for a given input directory — phases print in canonical pipeline
// order, functions in the stable order TopFuncs defines — which is
// what lets testdata goldens pin the format.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/blackbox"
	"adaptiverank/internal/obs/prof"
)

// phaseOrder is the canonical rendering order; phases outside it sort
// alphabetically after.
var phaseOrder = map[string]int{
	obs.SpanRun:           0,
	obs.SpanSample:        1,
	obs.SpanTrainInit:     2,
	obs.SpanDetectorPrime: 3,
	obs.SpanRank:          4,
	obs.ProfPhaseExtract:  5,
	obs.SpanTrainUpdate:   6,
	obs.ProfPhaseIdle:     7,
}

func sortPhases(phases []string) {
	sort.Slice(phases, func(i, j int) bool {
		oi, iok := phaseOrder[phases[i]]
		oj, jok := phaseOrder[phases[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return phases[i] < phases[j]
		}
	})
}

func formatValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return time.Duration(v).Round(10 * time.Microsecond).String()
	case "bytes":
		switch {
		case v >= 1<<20 || v <= -(1<<20):
			return fmt.Sprintf("%.1fMB", float64(v)/(1<<20))
		case v >= 1<<10 || v <= -(1<<10):
			return fmt.Sprintf("%.1fkB", float64(v)/(1<<10))
		}
		return fmt.Sprintf("%dB", v)
	default:
		return fmt.Sprint(v)
	}
}

func signedValue(v int64, unit string) string {
	if v > 0 {
		return "+" + formatValue(v, unit)
	}
	if v < 0 {
		return "-" + formatValue(-v, unit)
	}
	return "0"
}

// reportProfile prints the top-N functions of a single pprof file.
func reportProfile(w io.Writer, path, valueType string, n int) error {
	p, err := prof.ParseFile(path)
	if err != nil {
		return err
	}
	idx := p.ValueIndex(valueType)
	if idx < 0 {
		return fmt.Errorf("%s: profile has no sample values", path)
	}
	vt := p.SampleTypes[idx]
	fmt.Fprintf(w, "profile: %s\n", filepath.Base(path))
	fmt.Fprintf(w, "samples: %d, dimension %s/%s, total %s\n",
		len(p.Samples), vt.Type, vt.Unit, formatValue(p.Total(idx), vt.Unit))
	writeTop(w, p, idx, vt.Unit, n)
	return nil
}

func writeTop(w io.Writer, p *prof.Profile, idx int, unit string, n int) {
	top := prof.TopFuncs(p, idx)
	total := p.Total(idx)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "flat\tflat%\tcum\tfunction\t")
	for i, fs := range top {
		if i >= n {
			fmt.Fprintf(tw, "...\t\t\t(%d more)\t\n", len(top)-n)
			break
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(fs.Flat) / float64(total)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%s\t%s\t\n",
			formatValue(fs.Flat, unit), pct, formatValue(fs.Cum, unit), fs.Name)
	}
	tw.Flush()
}

// loadPhaseProfiles merges every CPU window of each phase into one
// per-phase profile.
func loadPhaseProfiles(dir string, m *prof.Manifest) (map[string]*prof.Profile, error) {
	byPhase := map[string][]*prof.Profile{}
	for _, r := range m.ByArtifact(obs.ProfArtifactCPU) {
		p, err := prof.ParseFile(filepath.Join(dir, r.File))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.File, err)
		}
		byPhase[r.Phase] = append(byPhase[r.Phase], p)
	}
	out := make(map[string]*prof.Profile, len(byPhase))
	for phase, ps := range byPhase {
		merged, err := prof.Merge(ps...)
		if err != nil {
			return nil, fmt.Errorf("phase %s: %w", phase, err)
		}
		out[phase] = merged
	}
	return out, nil
}

func writeHeader(w io.Writer, dir string, m *prof.Manifest) {
	fmt.Fprintf(w, "profile directory: %s\n", dir)
	h := m.Header
	fmt.Fprintf(w, "run %s", h.RunID)
	if h.Fingerprint != "" {
		fmt.Fprintf(w, "  fingerprint %s", h.Fingerprint)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s %s/%s gomaxprocs %d\n", h.Go, h.GOOS, h.GOARCH, h.GOMAXPROCS)
}

// reportDir prints the per-phase summary of one profile directory:
// wall-clock and CPU totals per phase, then each phase's top functions.
func reportDir(w io.Writer, dir string, n int) error {
	m, err := prof.ReadManifest(dir)
	if err != nil {
		return err
	}
	profiles, err := loadPhaseProfiles(dir, m)
	if err != nil {
		return err
	}
	writeHeader(w, dir, m)
	cpuRecs := m.ByArtifact(obs.ProfArtifactCPU)
	fmt.Fprintf(w, "artifacts: %d (%d cpu windows, %d snapshots)\n\n",
		len(m.Artifacts), len(cpuRecs), len(m.Artifacts)-len(cpuRecs))

	windows := m.PhaseWindows()
	counts := map[string]int{}
	for _, r := range cpuRecs {
		counts[r.Phase]++
	}
	phases := make([]string, 0, len(windows))
	for phase := range windows {
		phases = append(phases, phase)
	}
	sortPhases(phases)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "phase\twindows\twall\tcpu\t")
	for _, phase := range phases {
		var cpu int64
		p := profiles[phase]
		var idx int
		if p != nil {
			idx = p.ValueIndex("cpu")
			cpu = p.Total(idx)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t\n",
			phase, counts[phase],
			formatValue(windows[phase], "nanoseconds"), formatValue(cpu, "nanoseconds"))
	}
	tw.Flush()

	for _, phase := range phases {
		p := profiles[phase]
		if p == nil || len(p.Samples) == 0 {
			continue
		}
		idx := p.ValueIndex("cpu")
		unit := p.SampleTypes[idx].Unit
		fmt.Fprintf(w, "\nphase %s — top %d by flat cpu\n", phase, n)
		writeTop(w, p, idx, unit, n)
	}
	return nil
}

// diffDirs prints what changed from the old run to the new one: header
// environment drift, per-phase wall-clock deltas, and per-phase
// function-level CPU deltas with the biggest regressions first.
func diffDirs(w io.Writer, oldDir, newDir string, n int) error {
	oldM, err := prof.ReadManifest(oldDir)
	if err != nil {
		return err
	}
	newM, err := prof.ReadManifest(newDir)
	if err != nil {
		return err
	}
	oldP, err := loadPhaseProfiles(oldDir, oldM)
	if err != nil {
		return err
	}
	newP, err := loadPhaseProfiles(newDir, newM)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "profile diff: %s -> %s\n", oldDir, newDir)
	fmt.Fprintf(w, "run %s -> %s\n", oldM.Header.RunID, newM.Header.RunID)
	for _, warn := range envDrift(oldM.Header, newM.Header) {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}

	oldW, newW := oldM.PhaseWindows(), newM.PhaseWindows()
	phaseSet := map[string]bool{}
	for phase := range oldW {
		phaseSet[phase] = true
	}
	for phase := range newW {
		phaseSet[phase] = true
	}
	phases := make([]string, 0, len(phaseSet))
	for phase := range phaseSet {
		phases = append(phases, phase)
	}
	sortPhases(phases)

	fmt.Fprintln(w, "\nphase wall-clock (cpu windows)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "phase\told\tnew\tdelta\t")
	for _, phase := range phases {
		o, nw := oldW[phase], newW[phase]
		delta := signedValue(nw-o, "nanoseconds")
		if o > 0 {
			delta += fmt.Sprintf(" (%+.1f%%)", 100*float64(nw-o)/float64(o))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t\n",
			phase, formatValue(o, "nanoseconds"), formatValue(nw, "nanoseconds"), delta)
	}
	tw.Flush()

	for _, phase := range phases {
		rows := diffPhase(oldP[phase], newP[phase])
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "\nphase %s — function cpu deltas (top %d, regressions first)\n", phase, n)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "delta\told\tnew\tfunction\t")
		for i, row := range rows {
			if i >= n {
				fmt.Fprintf(tw, "...\t\t\t(%d more)\t\n", len(rows)-n)
				break
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t\n",
				signedValue(row.delta, "nanoseconds"),
				formatValue(row.old, "nanoseconds"),
				formatValue(row.new, "nanoseconds"), row.name)
		}
		tw.Flush()
	}
	return nil
}

// envDrift lists environment differences between two manifest headers —
// the caveats a profile comparison comes with.
func envDrift(old, new prof.Record) []string {
	var out []string
	if old.Go != new.Go {
		out = append(out, fmt.Sprintf("go version differs: %s -> %s", old.Go, new.Go))
	}
	if old.GOOS != new.GOOS || old.GOARCH != new.GOARCH {
		out = append(out, fmt.Sprintf("platform differs: %s/%s -> %s/%s",
			old.GOOS, old.GOARCH, new.GOOS, new.GOARCH))
	}
	if old.GOMAXPROCS != new.GOMAXPROCS {
		out = append(out, fmt.Sprintf("gomaxprocs differs: %d -> %d", old.GOMAXPROCS, new.GOMAXPROCS))
	}
	return out
}

type diffRow struct {
	name     string
	old, new int64
	delta    int64
}

// diffPhase joins the flat-CPU tables of two per-phase profiles.
// Rows sort by delta descending (worst regression first), ties by name.
func diffPhase(oldP, newP *prof.Profile) []diffRow {
	flat := map[string]*diffRow{}
	add := func(p *prof.Profile, set func(*diffRow, int64)) {
		if p == nil {
			return
		}
		for _, fs := range prof.TopFuncs(p, p.ValueIndex("cpu")) {
			row := flat[fs.Name]
			if row == nil {
				row = &diffRow{name: fs.Name}
				flat[fs.Name] = row
			}
			set(row, fs.Flat)
		}
	}
	add(oldP, func(r *diffRow, v int64) { r.old = v })
	add(newP, func(r *diffRow, v int64) { r.new = v })
	rows := make([]diffRow, 0, len(flat))
	for _, row := range flat {
		row.delta = row.new - row.old
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].delta != rows[j].delta {
			return rows[i].delta > rows[j].delta
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// reportBundle renders a postmortem bundle: what tripped the recorder,
// the process state at dump time, and the tail of the flight-recorder
// ring leading up to the trigger.
func reportBundle(w io.Writer, dir string, n int) error {
	meta, err := blackbox.ReadMeta(dir)
	if err != nil {
		return fmt.Errorf("not a complete bundle (missing %s): %w", blackbox.MetaName, err)
	}
	fmt.Fprintf(w, "postmortem bundle: %s\n", dir)
	fmt.Fprintf(w, "reason: %s\n", meta.Reason)
	if tr := meta.Trigger; tr != nil {
		fmt.Fprintf(w, "trigger: %s", tr.Kind)
		if tr.Name != "" {
			fmt.Fprintf(w, " name=%s", tr.Name)
		}
		if tr.Doc != 0 {
			fmt.Fprintf(w, " doc=%d", tr.Doc)
		}
		if tr.Val != 0 {
			fmt.Fprintf(w, " val=%g", tr.Val)
		}
		if tr.Limit != 0 {
			fmt.Fprintf(w, " limit=%g", tr.Limit)
		}
		fmt.Fprintf(w, " seq=%d\n", tr.Seq)
	}
	if meta.RunID != "" {
		fmt.Fprintf(w, "run: %s\n", meta.RunID)
	}
	if meta.Fingerprint != "" {
		fmt.Fprintf(w, "fingerprint: %s\n", meta.Fingerprint)
	}
	if meta.T != 0 {
		fmt.Fprintf(w, "time: %s\n", time.Unix(0, meta.T).UTC().Format(time.RFC3339Nano))
	}
	fmt.Fprintf(w, "process: %s pid %d\n", meta.Go, meta.PID)
	fmt.Fprintf(w, "ring: %d events recorded, %d dropped\n", meta.Events, meta.Dropped)

	var rt struct {
		Goroutines int    `json:"goroutines"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		HeapAlloc  int64  `json:"heap_alloc_bytes"`
		HeapSys    int64  `json:"heap_sys_bytes"`
		NumGC      uint32 `json:"num_gc"`
	}
	if data, err := os.ReadFile(filepath.Join(dir, "runtime.json")); err == nil {
		if err := json.Unmarshal(data, &rt); err == nil {
			fmt.Fprintf(w, "runtime: %d goroutines, heap %s (%s sys), %d GCs, gomaxprocs %d\n",
				rt.Goroutines, formatValue(rt.HeapAlloc, "bytes"),
				formatValue(rt.HeapSys, "bytes"), rt.NumGC, rt.GOMAXPROCS)
		}
	}

	var spans []struct {
		ID     int64  `json:"id"`
		Parent int64  `json:"parent"`
		Name   string `json:"name"`
	}
	if data, err := os.ReadFile(filepath.Join(dir, "spans.json")); err == nil {
		json.Unmarshal(data, &spans)
	}
	if len(spans) > 0 {
		fmt.Fprintln(w, "\nactive spans at dump:")
		depth := map[int64]int{}
		for _, s := range spans {
			depth[s.ID] = depth[s.Parent] + 1
			fmt.Fprintf(w, "%s%s (span %d)\n", strings.Repeat("  ", depth[s.ID]), s.Name, s.ID)
		}
	}

	if decisions := readEventsFile(filepath.Join(dir, "decisions.jsonl")); len(decisions) > 0 {
		fmt.Fprintf(w, "\nlast %d detector decisions:\n", len(decisions))
		for _, e := range decisions {
			fired := ""
			if e.Fired {
				fired = "  FIRED"
			}
			fmt.Fprintf(w, "  seq %d  %s val=%g%s\n", e.Seq, e.Name, e.Val, fired)
		}
	}

	if events := readEventsFile(filepath.Join(dir, "events.jsonl")); len(events) > 0 {
		tail := events
		if len(tail) > n {
			tail = tail[len(tail)-n:]
		}
		fmt.Fprintf(w, "\nlast %d of %d ring events:\n", len(tail), len(events))
		for _, e := range tail {
			fmt.Fprintf(w, "  seq %d  %s", e.Seq, e.Kind)
			if e.Name != "" {
				fmt.Fprintf(w, " name=%s", e.Name)
			}
			if e.Doc != 0 {
				fmt.Fprintf(w, " doc=%d", e.Doc)
			}
			if e.N != 0 {
				fmt.Fprintf(w, " n=%d", e.N)
			}
			fmt.Fprintln(w)
		}
	}

	if data, err := os.ReadFile(filepath.Join(dir, "goroutines.txt")); err == nil {
		fmt.Fprintf(w, "\ngoroutine dump: %d goroutines (goroutines.txt)\n",
			strings.Count(string(data), "goroutine "))
		// Show the first stanza — the goroutine that triggered the dump.
		if stanza, _, ok := strings.Cut(string(data), "\n\n"); ok {
			fmt.Fprintln(w, stanza)
		}
	}
	return nil
}

func readEventsFile(path string) []obs.Event {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	events, _ := obs.ReadEventsPartial(f)
	return events
}
