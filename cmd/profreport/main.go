// Command profreport reads what the profiling harness and the black
// box write: it renders single profiles, summarizes a profile
// directory phase by phase, diffs two recorded runs (phase wall-clock
// deltas and regressed functions), and turns a postmortem bundle into
// a human-readable report — all on the stdlib pprof/manifest readers
// in internal/obs/prof and internal/obs/blackbox, no external
// tooling required.
//
//	profreport -prof FILE [-n 15] [-value cpu]   top functions of one profile
//	profreport -dir DIR [-n 15]                  per-phase report of a profile dir
//	profreport -dir NEW -against OLD [-n 15]     diff two profile dirs
//	profreport -bundle DIR [-n 15]               render a postmortem bundle
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		profPath = flag.String("prof", "", "print top functions of one pprof profile")
		dir      = flag.String("dir", "", "profile directory to report on")
		against  = flag.String("against", "", "baseline profile directory to diff -dir against")
		bundle   = flag.String("bundle", "", "postmortem bundle directory to render")
		topN     = flag.Int("n", 15, "rows per top-functions table")
		value    = flag.String("value", "cpu", "sample value dimension (falls back to the profile's last)")
	)
	flag.Parse()

	modes := 0
	for _, set := range []bool{*profPath != "", *dir != "", *bundle != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 || (*against != "" && *dir == "") {
		fmt.Fprintln(os.Stderr, "profreport: exactly one of -prof, -dir, -bundle is required (-against needs -dir)")
		flag.Usage()
		return 2
	}

	var err error
	switch {
	case *profPath != "":
		err = reportProfile(os.Stdout, *profPath, *value, *topN)
	case *dir != "" && *against != "":
		err = diffDirs(os.Stdout, *against, *dir, *topN)
	case *dir != "":
		err = reportDir(os.Stdout, *dir, *topN)
	default:
		err = reportBundle(os.Stdout, *bundle, *topN)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "profreport:", err)
		return 1
	}
	return 0
}
