package main

// Golden-fixture tests: the profile directories are built from literal
// profiles through the deterministic encoder and hand-written manifest
// records with fixed timestamps, so the rendered reports are stable
// byte-for-byte. Regenerate with
//
//	go test ./cmd/profreport -run TestGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/prof"
)

var update = flag.Bool("update", false, "rewrite golden files")

const base = int64(1_700_000_000_000_000_000)

// writeFixtureDir builds a profile directory from manifest records and
// per-file profiles.
func writeFixtureDir(t *testing.T, dir string, header prof.Record, artifacts []prof.Record, profiles map[string]*prof.Profile) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var man bytes.Buffer
	header.Kind = prof.RecordHeader
	writeLine := func(r prof.Record) {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		man.Write(line)
		man.WriteByte('\n')
	}
	writeLine(header)
	for _, a := range artifacts {
		a.Kind = prof.RecordArtifact
		writeLine(a)
	}
	if err := os.WriteFile(filepath.Join(dir, prof.ManifestName), man.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, p := range profiles {
		raw, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func cpuProfile(samples ...prof.Sample) *prof.Profile {
	return &prof.Profile{
		SampleTypes: []prof.ValueType{
			{Type: "samples", Unit: "count"},
			{Type: "cpu", Unit: "nanoseconds"},
		},
		Samples:    samples,
		PeriodType: prof.ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:     10_000_000,
	}
}

func sample(ns int64, stack ...string) prof.Sample {
	return prof.Sample{Stack: stack, Values: []int64{ns / 10_000_000, ns}}
}

const (
	fnScore   = "adaptiverank/internal/ranking.(*RSVM).Score"
	fnDot     = "adaptiverank/internal/vector.Dot"
	fnSort    = "sort.Sort"
	fnRank    = "adaptiverank/internal/pipeline.(*Pipeline).rank"
	fnExtract = "adaptiverank/internal/extract.(*Simulated).Extract"
	fnLearn   = "adaptiverank/internal/ranking.(*RSVM).learn"
)

// fixtureOld builds the baseline run's profile directory.
func fixtureOld(t *testing.T, dir string) {
	writeFixtureDir(t, dir,
		prof.Record{RunID: "run-old", Fingerprint: "fp-old", Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8},
		[]prof.Record{
			{Artifact: obs.ProfArtifactCPU, File: "0001-cpu.pb.gz", Phase: obs.SpanSample, Span: 2, T0: base, T1: base + 10e6},
			{Artifact: obs.ProfArtifactHeap, File: "0002-heap.pb.gz", Phase: obs.SpanSample, Span: 2, T0: base + 10e6, T1: base + 10e6},
			{Artifact: obs.ProfArtifactCPU, File: "0003-cpu.pb.gz", Phase: obs.SpanRank, Span: 3, T0: base + 10e6, T1: base + 30e6},
			{Artifact: obs.ProfArtifactCPU, File: "0004-cpu.pb.gz", Phase: obs.SpanRank, Span: 5, T0: base + 40e6, T1: base + 60e6},
			{Artifact: obs.ProfArtifactCPU, File: "0005-cpu.pb.gz", Phase: obs.ProfPhaseExtract, T0: base + 30e6, T1: base + 40e6},
		},
		map[string]*prof.Profile{
			"0001-cpu.pb.gz": cpuProfile(
				sample(4e6, fnScore, fnRank),
				sample(2e6, fnDot, fnScore, fnRank),
			),
			"0002-heap.pb.gz": &prof.Profile{
				SampleTypes: []prof.ValueType{{Type: "inuse_space", Unit: "bytes"}},
				Samples:     []prof.Sample{{Stack: []string{fnScore}, Values: []int64{1 << 20}}},
			},
			"0003-cpu.pb.gz": cpuProfile(
				sample(10e6, fnScore, fnRank),
				sample(6e6, fnDot, fnScore, fnRank),
				sample(2e6, fnSort, fnRank),
			),
			"0004-cpu.pb.gz": cpuProfile(
				sample(8e6, fnScore, fnRank),
				sample(4e6, fnDot, fnScore, fnRank),
			),
			"0005-cpu.pb.gz": cpuProfile(
				sample(9e6, fnExtract),
			),
		})
}

// fixtureNew builds the current run: rank regressed (sort got hot),
// gomaxprocs drifted, and a train-update phase appeared.
func fixtureNew(t *testing.T, dir string) {
	writeFixtureDir(t, dir,
		prof.Record{RunID: "run-new", Fingerprint: "fp-new", Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4},
		[]prof.Record{
			{Artifact: obs.ProfArtifactCPU, File: "0001-cpu.pb.gz", Phase: obs.SpanSample, Span: 2, T0: base, T1: base + 11e6},
			{Artifact: obs.ProfArtifactCPU, File: "0002-cpu.pb.gz", Phase: obs.SpanRank, Span: 3, T0: base + 11e6, T1: base + 71e6},
			{Artifact: obs.ProfArtifactCPU, File: "0003-cpu.pb.gz", Phase: obs.ProfPhaseExtract, T0: base + 71e6, T1: base + 80e6},
			{Artifact: obs.ProfArtifactCPU, File: "0004-cpu.pb.gz", Phase: obs.SpanTrainUpdate, Span: 9, T0: base + 80e6, T1: base + 95e6},
		},
		map[string]*prof.Profile{
			"0001-cpu.pb.gz": cpuProfile(
				sample(4e6, fnScore, fnRank),
				sample(3e6, fnDot, fnScore, fnRank),
			),
			"0002-cpu.pb.gz": cpuProfile(
				sample(18e6, fnScore, fnRank),
				sample(10e6, fnDot, fnScore, fnRank),
				sample(26e6, fnSort, fnRank),
			),
			"0003-cpu.pb.gz": cpuProfile(
				sample(8e6, fnExtract),
			),
			"0004-cpu.pb.gz": cpuProfile(
				sample(12e6, fnLearn),
			),
		})
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenReportDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "old")
	fixtureOld(t, dir)
	var buf bytes.Buffer
	if err := reportDir(&buf, dir, 10); err != nil {
		t.Fatalf("reportDir: %v", err)
	}
	// The temp path varies per run; normalize the first line.
	out := buf.Bytes()
	out = bytes.Replace(out, []byte(dir), []byte("OLD"), 1)
	checkGolden(t, "report_dir.golden", out)
}

func TestGoldenDiff(t *testing.T) {
	oldDir := filepath.Join(t.TempDir(), "old")
	newDir := filepath.Join(t.TempDir(), "new")
	fixtureOld(t, oldDir)
	fixtureNew(t, newDir)
	var buf bytes.Buffer
	if err := diffDirs(&buf, oldDir, newDir, 5); err != nil {
		t.Fatalf("diffDirs: %v", err)
	}
	out := buf.Bytes()
	out = bytes.Replace(out, []byte(oldDir), []byte("OLD"), 1)
	out = bytes.Replace(out, []byte(newDir), []byte("NEW"), 1)
	checkGolden(t, "diff.golden", out)
}

func TestGoldenBundle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle-0001-worker-panic")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("events.jsonl", strings.Join([]string{
		`{"seq":97,"t":1,"kind":"rank-finished","n":120}`,
		`{"seq":98,"t":2,"kind":"doc-extracted","doc":41,"useful":true}`,
		`{"seq":99,"t":3,"kind":"detector-decision","name":"modc","val":12.5}`,
		`{"seq":100,"t":4,"kind":"worker-panic","name":"score","doc":42}`,
	}, "\n")+"\n")
	write("decisions.jsonl", `{"seq":99,"t":3,"kind":"detector-decision","name":"modc","val":12.5,"fired":true}`+"\n")
	write("spans.json", `[{"id":1,"name":"run","t":1},{"id":7,"parent":1,"name":"batch","t":2}]`+"\n")
	write("runtime.json", `{"goroutines":9,"gomaxprocs":8,"heap_alloc_bytes":2097152,"heap_sys_bytes":8388608,"num_gc":3}`+"\n")
	write("goroutines.txt", "goroutine 17 [running]:\nadaptiverank/internal/pipeline.(*run).score.func1()\n\t/repo/internal/pipeline/pipeline.go:389\n\ngoroutine 1 [chan receive]:\nmain.main()\n\t/repo/cmd/adaptiverank/main.go:40\n")
	write("meta.json", `{"run_id":"run-x","fingerprint":"fp-1","reason":"worker-panic",`+
		`"trigger":{"seq":100,"t":4,"kind":"worker-panic","name":"score","doc":42},`+
		`"t":1700000000000000000,"events":240,"dropped":140,"go":"go1.24.0","pid":4242}`+"\n")

	var buf bytes.Buffer
	if err := reportBundle(&buf, dir, 3); err != nil {
		t.Fatalf("reportBundle: %v", err)
	}
	out := bytes.Replace(buf.Bytes(), []byte(dir), []byte("BUNDLE"), 1)
	checkGolden(t, "bundle.golden", out)
}

func TestGoldenSingleProfile(t *testing.T) {
	dir := t.TempDir()
	p := cpuProfile(
		sample(10e6, fnScore, fnRank),
		sample(6e6, fnDot, fnScore, fnRank),
		sample(2e6, fnSort, fnRank),
	)
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cpu.pb.gz")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reportProfile(&buf, path, "cpu", 2); err != nil {
		t.Fatalf("reportProfile: %v", err)
	}
	checkGolden(t, "single_profile.golden", buf.Bytes())
}

func TestRunUsageErrors(t *testing.T) {
	// No mode flags: run() must fail with exit code 2, not crash.
	oldArgs := os.Args
	defer func() { os.Args = oldArgs; flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ExitOnError) }()
	t.Cleanup(func() {})
	os.Args = []string{"profreport"}
	flag.CommandLine = flag.NewFlagSet("profreport", flag.ContinueOnError)
	flag.CommandLine.SetOutput(new(bytes.Buffer))
	if code := run(); code != 2 {
		t.Errorf("run() with no flags = %d, want 2", code)
	}
}
