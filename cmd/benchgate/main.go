// Command benchgate compares a fresh benchmark run against the
// repository's committed performance trajectory and fails when a gated
// metric regressed. It is the enforcement half of the -bench-out harness:
// CI regenerates the scoring benchmarks into a temporary file and this
// command diffs it against BENCH_scoring.json.
//
// Usage:
//
//	benchgate -baseline BENCH_scoring.json -current fresh.json [-threshold 0.15]
//
// The exit status is 0 when every gated metric is within the threshold,
// 1 when a regression (or a benchmark missing from the current run) was
// found, and 2 when either file is missing or malformed. See
// internal/benchgate for the per-metric gating rules and README
// "Performance" for how to refresh the baseline intentionally.
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptiverank/internal/benchgate"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baseline := fs.String("baseline", "BENCH_scoring.json", "committed baseline trajectory file")
	current := fs.String("current", "", "freshly generated trajectory file to gate")
	threshold := fs.Float64("threshold", 0.15, "allowed relative regression per gated metric")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		return 2
	}
	if *threshold <= 0 || *threshold >= 1 {
		fmt.Fprintf(os.Stderr, "benchgate: threshold %g out of range (0, 1)\n", *threshold)
		return 2
	}
	base, err := benchgate.Load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cur, err := benchgate.Load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// Environment drift between the committed baseline and this run is
	// worth knowing but never worth failing over: print it and move on.
	for _, w := range benchgate.EnvMismatch(base, cur) {
		fmt.Fprintf(os.Stderr, "benchgate: warning: %s\n", w)
	}
	findings := benchgate.Compare(base, cur, *threshold)
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stdout, f)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) against %s (threshold %.0f%%)\n",
			len(findings), *baseline, *threshold*100)
		return 1
	}
	fmt.Fprintf(os.Stdout, "benchgate: %d benchmark(s) within %.0f%% of %s\n",
		len(base.Results), *threshold*100, *baseline)
	return 0
}
