package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBenchgate compiles the benchgate binary into a temp dir, mirroring
// the cmd/adaptlint integration-test pattern.
func buildBenchgate(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "benchgate")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building benchgate: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("benchgate did not run: %v", err)
	}
	return ee.ExitCode()
}

func runGate(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), exitCode(t, err)
}

// TestBenchgateExitCodes drives the built binary over the fixture
// trajectory: exit 0 within threshold, exit 1 on regression, exit 2 on
// malformed or missing inputs.
func TestBenchgateExitCodes(t *testing.T) {
	bin := buildBenchgate(t)
	td := func(name string) string { return filepath.Join("testdata", name) }

	out, code := runGate(t, bin,
		"-baseline", td("baseline.json"), "-current", td("current_ok.json"))
	if code != 0 {
		t.Fatalf("within-threshold run exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "within 15%") {
		t.Errorf("clean run output missing summary:\n%s", out)
	}

	out, code = runGate(t, bin,
		"-baseline", td("baseline.json"), "-current", td("current_regressed.json"))
	if code != 1 {
		t.Fatalf("regressed run exit = %d, want 1\n%s", code, out)
	}
	for _, wantFrag := range []string{
		"BenchmarkScoringRSVMIEPacked: ns/score regressed",
		"BenchmarkScoringRSVMIEPacked: docs/sec regressed",
		"BenchmarkScoringRSVMIEPacked: allocs/op regressed",
		"BenchmarkScoringRSVMIEPacked: B/op regressed",
		"BenchmarkScoringBAggIEPacked: benchmark missing from current run",
		"regression(s) against",
	} {
		if !strings.Contains(out, wantFrag) {
			t.Errorf("regression output missing %q:\n%s", wantFrag, out)
		}
	}

	// A generous threshold turns the metric regressions back to green —
	// but the missing benchmark and the 0-alloc budget still fail, since
	// neither is threshold-relative.
	out, code = runGate(t, bin, "-threshold", "0.99",
		"-baseline", td("baseline.json"), "-current", td("current_regressed.json"))
	if code != 1 {
		t.Fatalf("missing-benchmark run exit = %d, want 1\n%s", code, out)
	}
	if strings.Contains(out, "ns/score regressed") {
		t.Errorf("threshold 0.99 still flagged ns/score:\n%s", out)
	}
	if !strings.Contains(out, "allocs/op regressed") {
		t.Errorf("0-alloc budget not enforced at high threshold:\n%s", out)
	}

	for _, tc := range []struct {
		name string
		args []string
	}{
		{"malformed baseline", []string{"-baseline", td("malformed.json"), "-current", td("current_ok.json")}},
		{"malformed current", []string{"-baseline", td("baseline.json"), "-current", td("malformed.json")}},
		{"missing baseline", []string{"-baseline", td("absent.json"), "-current", td("current_ok.json")}},
		{"no -current", []string{"-baseline", td("baseline.json")}},
		{"bad threshold", []string{"-threshold", "7", "-baseline", td("baseline.json"), "-current", td("current_ok.json")}},
	} {
		out, code = runGate(t, bin, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit = %d, want 2\n%s", tc.name, code, out)
		}
	}
}

// TestBenchgateEnvDrift rewrites the within-threshold current file with a
// different environment header: the gate must warn about every drifted
// field on stderr yet still exit 0 — hardware drift is context for the
// reader, not a regression.
func TestBenchgateEnvDrift(t *testing.T) {
	bin := buildBenchgate(t)
	data, err := os.ReadFile(filepath.Join("testdata", "current_ok.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["go"] = "go1.99"
	doc["gomaxprocs"] = 64
	drifted, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(t.TempDir(), "drifted.json")
	if err := os.WriteFile(cur, drifted, 0o644); err != nil {
		t.Fatal(err)
	}

	out, code := runGate(t, bin,
		"-baseline", filepath.Join("testdata", "baseline.json"), "-current", cur)
	if code != 0 {
		t.Fatalf("env-drift run exit = %d, want 0 (drift warns, never fails)\n%s", code, out)
	}
	if !strings.Contains(out, "warning: go version differs") {
		t.Errorf("missing go-version drift warning:\n%s", out)
	}
	// The baseline fixture has no gomaxprocs field, so that drift must be
	// skipped rather than warned about.
	if strings.Contains(out, "GOMAXPROCS") {
		t.Errorf("warned about GOMAXPROCS despite baseline not recording it:\n%s", out)
	}
	if !strings.Contains(out, "within 15%") {
		t.Errorf("drifted run lost its pass summary:\n%s", out)
	}
}

// TestBenchgateSelf gates the repository's committed baseline against
// itself: identical files must always pass, so a bad schema change or an
// accidentally empty BENCH_scoring.json is caught by `go test ./...`
// before CI ever reruns the benches.
func TestBenchgateSelf(t *testing.T) {
	bin := buildBenchgate(t)
	baseline, err := filepath.Abs(filepath.Join("..", "..", "BENCH_scoring.json"))
	if err != nil {
		t.Fatal(err)
	}
	out, code := runGate(t, bin, "-baseline", baseline, "-current", baseline)
	if code != 0 {
		t.Fatalf("self-comparison of BENCH_scoring.json exit = %d, want 0\n%s", code, out)
	}
}
