package adaptiverank_test

import (
	"bytes"
	"math"
	"testing"

	"adaptiverank"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/explain"
)

// The explain substrate's zero-perturbation contract, restated at the
// public API: arming model introspection — weight snapshots, score
// attributions, and the detector-decision sink — must not change what a
// run computes, not by a byte. And the artifact itself must uphold its
// exactness invariants: sampled attributions reconstruct their scores
// bitwise, and every detector decision carries structured evidence.

// runOnceExplained is runOnceJSON with the explain substrate armed: an
// Explainer wired through Options.Explain and its decision sink teed
// into the recorder. It returns the serialized result plus the decoded
// artifact, and fails if the substrate was not demonstrably live.
func runOnceExplained(t *testing.T, opts adaptiverank.Options) ([]byte, *explain.Log) {
	t.Helper()
	dir := t.TempDir()
	ex, err := adaptiverank.NewExplainer(adaptiverank.ExplainOptions{
		Dir: dir, RunID: "determinism", Fingerprint: "explain-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.Explain = ex
	opts.Recorder = adaptiverank.TeeRecorder(ex.Recorder())
	opts.Metrics = adaptiverank.NewMetrics()
	out := runOnceJSON(t, opts)
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := explain.ReadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Snapshots) == 0 {
		t.Fatal("explain log has no model snapshots — introspection was not live")
	}
	if len(l.Attributions) == 0 {
		t.Fatal("explain log has no attributions — introspection was not live")
	}
	if opts.Detector != adaptiverank.NoDetector && len(l.Decisions) == 0 {
		t.Fatal("explain log has no detector decisions — the decision sink was not live")
	}
	return out, l
}

// TestRunByteIdenticalExplained: two explained runs agree byte for
// byte, and both agree with a bare, uninstrumented run — the substrate
// is a passive tee.
func TestRunByteIdenticalExplained(t *testing.T) {
	opts := adaptiverank.Options{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.ModC, Seed: 5, Workers: 4}
	first, _ := runOnceExplained(t, opts)
	second, _ := runOnceExplained(t, opts)
	if !bytes.Equal(first, second) {
		t.Errorf("two explained runs diverged:\nrun1: %.200s\nrun2: %.200s", first, second)
	}
	bare := runOnceJSON(t, opts)
	if !bytes.Equal(first, bare) {
		t.Errorf("explained run diverged from bare run:\nexpl: %.200s\nbare: %.200s", first, bare)
	}
}

// TestRunWorkerCountInvariantExplained: worker-count invariance holds
// with explain armed too.
func TestRunWorkerCountInvariantExplained(t *testing.T) {
	seq, _ := runOnceExplained(t, adaptiverank.Options{Seed: 9, Workers: 1})
	par, _ := runOnceExplained(t, adaptiverank.Options{Seed: 9, Workers: 8})
	if !bytes.Equal(seq, par) {
		t.Errorf("explained 1-worker and 8-worker runs diverged:\nw1: %.200s\nw8: %.200s", seq, par)
	}
}

// reconstruct folds an artifact attribution per the scoring contract:
// per member, contributions in recorded order plus bias give the
// margin; logistic members map through the sigmoid; members sum in
// order. Every operation mirrors the ranker's own fold, so the result
// must be bitwise equal to the recorded score.
func reconstruct(a explain.Record) float64 {
	score := 0.0
	for _, m := range a.Members {
		sum := 0.0
		for _, c := range m.Contribs {
			sum += c.Weight
		}
		sum += m.Bias
		if a.Logistic {
			score += 1 / (1 + math.Exp(-sum))
		} else {
			score += sum
		}
	}
	return score
}

// TestExplainArtifactInvariants drives a full run for both rankers and
// checks the artifact-level exactness contracts: attributions
// reconstruct their scores bitwise and every detector decision carries
// evidence stamped with its span and threshold.
func TestExplainArtifactInvariants(t *testing.T) {
	cases := map[string]adaptiverank.Options{
		"rsvm-modc": {Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.ModC, Seed: 5, Workers: 4},
		"bagg-topk": {Strategy: adaptiverank.BAggIE, Detector: adaptiverank.TopK, Seed: 5, Workers: 4},
	}
	for name, opts := range cases {
		opts := opts
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, l := runOnceExplained(t, opts)

			for _, a := range l.Attributions {
				if got := reconstruct(a); got != a.Score {
					t.Fatalf("doc %d: reconstructed score %v != recorded %v", a.Doc, got, a.Score)
				}
				if opts.Strategy == adaptiverank.BAggIE && !a.Logistic {
					t.Fatalf("doc %d: BAgg attribution must be logistic", a.Doc)
				}
				for _, m := range a.Members {
					for _, c := range m.Contribs {
						if c.Weight == 0 {
							t.Fatalf("doc %d: zero contribution recorded for feature %d", a.Doc, c.Index)
						}
						if c.Name == "" {
							t.Fatalf("doc %d: contribution for feature %d lost its name", a.Doc, c.Index)
						}
					}
				}
			}

			for i, d := range l.Decisions {
				if d.Detector == "" {
					t.Fatalf("decision %d has no detector name", i)
				}
				if len(d.Evidence) == 0 {
					t.Fatalf("decision %d (%s) carries no evidence", i, d.Detector)
				}
				if _, ok := d.EvidenceNum(obs.EvidenceThreshold); !ok {
					t.Fatalf("decision %d (%s) evidence lacks the threshold", i, d.Detector)
				}
				if d.Span == 0 {
					t.Fatalf("decision %d (%s) is not stamped with its span", i, d.Detector)
				}
			}

			// The drift timeline must start at train-init and carry drift
			// stats from the first update on.
			if l.Snapshots[0].Stage != explain.StageTrainInit {
				t.Fatalf("first snapshot stage = %q", l.Snapshots[0].Stage)
			}
			for _, s := range l.Snapshots[1:] {
				if s.Stage != explain.StageTrainUpdate || s.DriftPrev == nil || s.DriftInit == nil {
					t.Fatalf("update snapshot incomplete: %+v", s)
				}
			}
		})
	}
}
