package adaptiverank_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index). Each
// BenchmarkTableN / BenchmarkFigureN runs the corresponding experiment at
// bench scale and reports the regenerated rows/series through the
// benchmark log, plus headline numbers as custom metrics.
//
// Run a single experiment with e.g.
//
//	go test -bench=BenchmarkFigure3 -benchtime=1x
//
// The full suite (go test -bench=. -benchmem) takes tens of minutes at
// paper-shape scale; results are cached within the shared environment, so
// experiments that share configurations (Figure 12 / Table 4) pay once.

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"adaptiverank/internal/experiments"
	"adaptiverank/internal/extract"
	"adaptiverank/internal/learn"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/update"
	"adaptiverank/internal/vector"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the shared bench-scale environment. Set ADAPTIVERANK_BENCH
// to "test" for a fast smoke-scale pass, and ADAPTIVERANK_RUNS to override
// the repetitions per configuration.
func env() *experiments.Env {
	benchEnvOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		if os.Getenv("ADAPTIVERANK_BENCH") == "test" {
			cfg = experiments.TestConfig()
		}
		if r, err := strconv.Atoi(os.Getenv("ADAPTIVERANK_RUNS")); err == nil && r > 0 {
			cfg.Runs = r
		}
		benchEnv = experiments.NewEnv(cfg)
	})
	return benchEnv
}

// runExperiment executes one suite item once per benchmark iteration and
// logs the rendered output. The shared env counts documents processed and
// scoring operations across its uncached pipeline runs; differencing the
// totals around the loop yields the ns/score and docs/sec metrics that
// benchgate gates uniformly across BenchmarkTable/Figure entries. A fully
// cached re-run does no pipeline work, so the deltas are zero and the
// metrics are (correctly) not re-measured.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	recordBench(b)
	docs0, scores0 := env().Totals()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiments.RunSuite(env(), &buf, id); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + buf.String())
		}
	}
	docs1, scores1 := env().Totals()
	if el := b.Elapsed(); el > 0 {
		if d := scores1 - scores0; d > 0 {
			recordBenchMetric(b, "ns/score", float64(el.Nanoseconds())/float64(d))
		}
		if d := docs1 - docs0; d > 0 {
			recordBenchMetric(b, "docs/sec", float64(d)/el.Seconds())
		}
	}
}

func BenchmarkTable1(b *testing.B)          { runExperiment(b, "table1") }
func BenchmarkFigure3(b *testing.B)         { runExperiment(b, "figure3") }
func BenchmarkFigure4(b *testing.B)         { runExperiment(b, "figure4") }
func BenchmarkFigure5(b *testing.B)         { runExperiment(b, "figure5") }
func BenchmarkFigure6(b *testing.B)         { runExperiment(b, "figure6") }
func BenchmarkFigure7(b *testing.B)         { runExperiment(b, "figure7") }
func BenchmarkTable2(b *testing.B)          { runExperiment(b, "table2") }
func BenchmarkFigure8(b *testing.B)         { runExperiment(b, "figure8") }
func BenchmarkFigure9(b *testing.B)         { runExperiment(b, "figure9") }
func BenchmarkTable3(b *testing.B)          { runExperiment(b, "table3") }
func BenchmarkFeatureChurn(b *testing.B)    { runExperiment(b, "churn") }
func BenchmarkFigure10(b *testing.B)        { runExperiment(b, "figure10") }
func BenchmarkFigure11(b *testing.B)        { runExperiment(b, "figure11") }
func BenchmarkTable4(b *testing.B)          { runExperiment(b, "table4") }
func BenchmarkFigure12(b *testing.B)        { runExperiment(b, "figure12") }
func BenchmarkFigure13(b *testing.B)        { runExperiment(b, "figure13") }
func BenchmarkSearchInterface(b *testing.B) { runExperiment(b, "searchiface") }

// --- Component micro-benchmarks -----------------------------------------
// These measure the primitives whose costs Table 3 and Figure 13 are built
// from: per-document ranker scoring and learning, per-document update
// detection, extraction, and corpus generation.

func benchDocs(n int) []vector.Sparse {
	r := rand.New(rand.NewSource(1))
	out := make([]vector.Sparse, n)
	for i := range out {
		m := make(map[int32]float64)
		for k := 0; k < 80; k++ {
			m[int32(r.Intn(20000))] = 1
		}
		out[i] = vector.FromCounts(m).Normalize()
	}
	return out
}

func BenchmarkRSVMIELearn(b *testing.B) {
	recordBench(b)
	docs := benchDocs(512)
	rk := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rk.Learn(docs[i%len(docs)], i%7 == 0)
	}
}

func BenchmarkRSVMIEScore(b *testing.B) {
	recordBench(b)
	docs := benchDocs(512)
	rk := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 1})
	for i := 0; i < 2000; i++ {
		rk.Learn(docs[i%len(docs)], i%7 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rk.Score(docs[i%len(docs)])
	}
}

func BenchmarkBAggIELearn(b *testing.B) {
	recordBench(b)
	docs := benchDocs(512)
	rk := ranking.NewBAggIE(ranking.BAggOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rk.Learn(docs[i%len(docs)], i%7 == 0)
	}
}

func BenchmarkBAggIEScore(b *testing.B) {
	recordBench(b)
	docs := benchDocs(512)
	rk := ranking.NewBAggIE(ranking.BAggOptions{})
	for i := 0; i < 2000; i++ {
		rk.Learn(docs[i%len(docs)], i%7 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rk.Score(docs[i%len(docs)])
	}
}

// Per-detector Observe cost: the microscopic version of Table 3.
func benchDetector(b *testing.B, mk func(live ranking.Ranker) update.Detector) {
	b.Helper()
	recordBench(b)
	docs := benchDocs(512)
	live := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 2})
	for i := 0; i < 1000; i++ {
		live.Learn(docs[i%len(docs)], i%7 == 0)
	}
	det := mk(live)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if det.Observe(docs[i%len(docs)], i%7 == 0) {
			det.Reset()
		}
	}
}

func BenchmarkDetectorWindF(b *testing.B) {
	benchDetector(b, func(ranking.Ranker) update.Detector { return update.NewWindF(200) })
}

func BenchmarkDetectorModC(b *testing.B) {
	benchDetector(b, func(live ranking.Ranker) update.Detector {
		return update.NewModC(live, 0.1, 5, 3)
	})
}

func BenchmarkDetectorTopK(b *testing.B) {
	benchDetector(b, func(ranking.Ranker) update.Detector {
		return update.NewTopK(update.TopKOptions{})
	})
}

func BenchmarkDetectorFeatS(b *testing.B) {
	benchDetector(b, func(ranking.Ranker) update.Detector {
		return update.NewFeatS(update.FeatSOptions{})
	})
}

func BenchmarkExtractionPerDocument(b *testing.B) {
	recordBench(b)
	coll, _ := textgen.Generate(textgen.DefaultConfig(5, 256))
	for _, rel := range []relation.Relation{relation.ND, relation.PH, relation.PO} {
		ex := extract.Get(rel)
		b.Run(rel.Code(), func(b *testing.B) {
			recordBench(b)
			for i := 0; i < b.N; i++ {
				ex.Extract(coll.Docs()[i%coll.Len()])
			}
		})
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	recordBench(b)
	for i := 0; i < b.N; i++ {
		textgen.Generate(textgen.DefaultConfig(int64(i), 1000))
	}
}

func BenchmarkSubseqKernel(b *testing.B) {
	recordBench(b)
	k := learn.NewSubseqKernel(3, 0.75)
	s := []string{"<arg1>", "was", "charged", "with", "<arg2>", "yesterday"}
	t := []string{"prosecutors", "accused", "<arg1>", "of", "<arg2>"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Similarity(s, t)
	}
}
