package adaptiverank_test

// End-to-end pipeline benchmarks: whole adaptiverank.Run invocations —
// featurize, score, rank, detect, retrain — measured in documents per
// second, the unit the paper's scalability claims are stated in. These
// join the scoring microbenches in the gated BENCH_scoring.json
// trajectory, so a regression anywhere in the per-document path (not
// just the scoring kernel) trips benchgate. The Explained variant runs
// the identical configuration with the model-introspection substrate
// armed (internal/obs/explain), putting its overhead on the same gated
// axis as the bare pipeline. Regenerate the baseline intentionally with
//
//	go test -run '^$' -bench 'BenchmarkScoring|BenchmarkPipeline' -benchtime 1s -count 3 \
//	    -bench-out BENCH_scoring.json .
//
// (best-of-repetitions semantics: see recordBenchMetric.)

import (
	"testing"

	"adaptiverank"
)

// pipelineBenchDocs is the corpus size per op — the same scale the
// determinism tests pin byte-identical, so the benchmark measures a
// configuration the test suite already proves correct.
const pipelineBenchDocs = 900

// benchPipeline times full runs over a pre-generated corpus and records
// docs/sec plus ns/doc from the documents the pipeline actually
// processed (early termination means that can be fewer than the corpus
// size).
func benchPipeline(b *testing.B, opts adaptiverank.Options) {
	b.Helper()
	recordBench(b)
	coll, err := adaptiverank.GenerateCorpus(11, pipelineBenchDocs)
	if err != nil {
		b.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCharge)
	docs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := adaptiverank.Run(coll, ex, opts)
		if err != nil {
			b.Fatal(err)
		}
		docs += res.DocsProcessed
	}
	b.StopTimer()
	if el := b.Elapsed(); el > 0 && docs > 0 {
		recordBenchMetric(b, "docs/sec", float64(docs)/el.Seconds())
		recordBenchMetric(b, "ns/doc", float64(el.Nanoseconds())/float64(docs))
	}
}

func BenchmarkPipelineRSVMIEModC(b *testing.B) {
	benchPipeline(b, adaptiverank.Options{
		Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.ModC, Seed: 5, Workers: 4,
	})
}

func BenchmarkPipelineBAggIETopK(b *testing.B) {
	benchPipeline(b, adaptiverank.Options{
		Strategy: adaptiverank.BAggIE, Detector: adaptiverank.TopK, Seed: 5, Workers: 4,
	})
}

// BenchmarkPipelineExplained is BenchmarkPipelineRSVMIEModC with the
// explain substrate armed: weight snapshots, score attributions, and
// the detector-decision sink all writing to a real fsynced artifact.
// The gap to the bare variant is the introspection overhead, gated so
// it cannot silently grow.
func BenchmarkPipelineExplained(b *testing.B) {
	ex, err := adaptiverank.NewExplainer(adaptiverank.ExplainOptions{
		Dir: b.TempDir(), RunID: "bench", Fingerprint: "bench-pipeline",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := ex.Close(); err != nil {
			b.Error(err)
		}
	})
	benchPipeline(b, adaptiverank.Options{
		Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.ModC, Seed: 5, Workers: 4,
		Explain:  ex,
		Recorder: adaptiverank.TeeRecorder(ex.Recorder()),
	})
}
