module adaptiverank

go 1.22
