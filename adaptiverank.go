// Package adaptiverank is an adaptive document-ranking library for
// scalable information extraction, reproducing Barrio, Simões, Galhardas,
// and Gravano, "Learning to Rank Adaptively for Scalable Information
// Extraction" (EDBT 2015).
//
// Given a document collection and an already-trained, black-box
// information extraction system, the library prioritizes the documents
// most likely to yield tuples so that most of the extraction output is
// obtained after processing a small fraction of the collection. The
// ranking model (RSVM-IE, an online pairwise RankSVM with elastic-net
// in-training feature selection, or BAgg-IE, a bagged committee of online
// linear SVMs) learns continuously from extraction outcomes, and an
// update-detection policy (Mod-C, Top-K, Wind-F, or Feat-S) decides when
// re-ranking the remaining documents pays off.
//
// Quick start:
//
//	coll, _ := adaptiverank.GenerateCorpus(42, 5000) // or bring your own documents
//	ex := adaptiverank.BuiltinExtractor(adaptiverank.NaturalDisasterLocation)
//	res, err := adaptiverank.Run(coll, ex, adaptiverank.Options{})
//
// See the examples directory for complete programs.
package adaptiverank

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/extract"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/explain"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/sampling"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/update"
)

// Document is one text document of a collection.
type Document = corpus.Document

// DocID identifies a document within a collection.
type DocID = corpus.DocID

// Collection is an ordered document set.
type Collection = corpus.Collection

// Tuple is one extracted fact.
type Tuple = relation.Tuple

// Relation identifies one of the built-in extraction tasks.
type Relation = relation.Relation

// The built-in extraction tasks of the paper's Table 1.
const (
	PersonOrganization      = relation.PO
	DiseaseOutbreak         = relation.DO
	PersonCareer            = relation.PC
	NaturalDisasterLocation = relation.ND
	ManMadeDisasterLocation = relation.MD
	PersonCharge            = relation.PH
	ElectionWinner          = relation.EW
)

// Extractor is the black-box information extraction system interface: any
// already-trained system that maps a document to tuples can be plugged in.
type Extractor = extract.Extractor

// Observability aliases: the library's observability subsystem lives in
// internal/obs; these aliases expose it through the public API so callers
// can collect metrics and traces without importing internal packages.

// Recorder receives a run's structured event trace (see Options.Recorder).
type Recorder = obs.Recorder

// TraceEvent is one structured trace record; see the internal/obs
// documentation for the event vocabulary.
type TraceEvent = obs.Event

// JSONLRecorder writes trace events as JSON lines; remember to call
// Flush when the run finishes.
type JSONLRecorder = obs.JSONLRecorder

// Metrics is a named registry of atomic counters, gauges, and
// fixed-bucket latency histograms (see Options.Metrics).
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry to pass in Options.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTraceRecorder returns a Recorder that streams JSONL trace events to w.
func NewTraceRecorder(w io.Writer) *JSONLRecorder { return obs.NewJSONLRecorder(w) }

// MetricsSnapshot is a typed, name-sorted, point-in-time view of a
// metrics registry (see Metrics.Snapshot): the shared read path behind
// both the text dump and the Prometheus exposition.
type MetricsSnapshot = obs.Snapshot

// WritePrometheus emits a metrics snapshot in the Prometheus text
// exposition format version 0.0.4 (counters, gauges, and histograms
// with cumulative le-labelled buckets).
func WritePrometheus(w io.Writer, s MetricsSnapshot) error { return obs.WritePrometheus(w, s) }

// TeeRecorder fans every trace event out to all the given recorders
// with one shared sequence numbering (e.g. a JSONL trace file plus an
// in-memory consumer observing the same run).
func TeeRecorder(sinks ...Recorder) Recorder { return obs.Tee(sinks...) }

// ReadTrace parses a JSONL trace back into events.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadEvents(r) }

// Explainer is the model-introspection substrate (see Options.Explain):
// it captures exact per-feature score attributions for top-ranked
// documents, a weight-drift timeline across model updates, and — when
// its Recorder is teed into Options.Recorder — the structured evidence
// behind every detector decision, all into a crash-safe JSONL artifact
// (render it with cmd/explainreport) plus a live HTTP view.
type Explainer = explain.Explainer

// ExplainOptions configures NewExplainer; Dir is required.
type ExplainOptions = explain.Options

// NewExplainer opens a model-introspection artifact directory.
func NewExplainer(opts ExplainOptions) (*Explainer, error) { return explain.New(opts) }

// TracePhaseTotals folds a trace's per-event durations into the paper's
// CPU-time accounts ("extraction", "ranking", "detection", "training",
// plus "total").
func TracePhaseTotals(events []TraceEvent) map[string]time.Duration {
	return obs.PhaseTotals(events)
}

// BuiltinExtractor returns the trained built-in extraction system for one
// of the seven Table 1 relations.
func BuiltinExtractor(rel Relation) Extractor { return extract.Get(rel) }

// FaultInjection configures seeded, deterministic fault injection on the
// extractor — transient errors, panics, hangs, latency spikes, and
// permanently poisoned documents — for resilience testing and demos (see
// Options.Flaky and internal/extract.FlakyOptions).
type FaultInjection = extract.FlakyOptions

// Resilience tunes the fault-tolerance stack around a faulty extractor:
// retry with capped exponential backoff, per-attempt timeout, panic
// recovery, and a circuit breaker (see Options.Resilience and
// internal/pipeline.ResilientOptions). The zero value selects defaults.
type Resilience = pipeline.ResilientOptions

// NewFlakyExtractor wraps an extractor with deterministic fault
// injection, for testing consumers that want the faulty extractor
// directly rather than through Options.Flaky.
func NewFlakyExtractor(ex Extractor, opts FaultInjection) Extractor {
	return extract.NewFlaky(ex, opts)
}

// funcExtractor adapts a plain extraction function to the Extractor
// interface.
type funcExtractor struct {
	rel  Relation
	cost time.Duration
	fn   func(d *Document) []Tuple
}

func (f *funcExtractor) Relation() Relation           { return f.rel }
func (f *funcExtractor) SimulatedCost() time.Duration { return f.cost }
func (f *funcExtractor) Extract(d *Document) []Tuple  { return f.fn(d) }

// NewExtractor wraps a user-supplied extraction function as an Extractor,
// so any black-box IE system can be plugged into the ranking pipeline.
// rel labels the produced tuples (reuse the closest built-in relation or
// any Relation value); cost is the per-document CPU cost used by the
// time-accounting reports.
func NewExtractor(rel Relation, cost time.Duration, fn func(d *Document) []Tuple) Extractor {
	return &funcExtractor{rel: rel, cost: cost, fn: fn}
}

// NewCollection wraps documents (ids are assigned by position).
func NewCollection(docs []*Document) *Collection { return corpus.NewCollection(docs) }

// GenerateCorpus generates a synthetic news-style collection with planted
// relations for all seven built-in tasks (see internal/textgen).
func GenerateCorpus(seed int64, numDocs int) (*Collection, error) {
	if numDocs <= 0 {
		return nil, fmt.Errorf("adaptiverank: numDocs must be positive, got %d", numDocs)
	}
	coll, _ := textgen.Generate(textgen.DefaultConfig(seed, numDocs))
	return coll, nil
}

// Strategy selects the ranking model.
type Strategy int

// Available ranking strategies.
const (
	// RSVMIE is the paper's best performer: online pairwise RankSVM with
	// elastic-net in-training feature selection.
	RSVMIE Strategy = iota
	// BAggIE is the bagged committee of online linear SVM classifiers.
	BAggIE
	// RandomOrder processes documents in random order (baseline).
	RandomOrder
)

// Detector selects the update-detection policy for adaptive runs.
type Detector int

// Available update-detection policies.
const (
	// ModC compares the live model against a shadow model trained on a
	// fraction of recent documents (the paper's best policy).
	ModC Detector = iota
	// TopK compares top-K feature lists with a weighted footrule.
	TopK
	// WindF updates every fixed number of documents.
	WindF
	// FeatS is the kernel one-class-SVM feature-shift baseline.
	FeatS
	// NoDetector disables adaptation (base, non-adaptive ranking).
	NoDetector
)

// Options configures Run. The zero value requests the paper's best
// configuration: adaptive RSVM-IE with Mod-C update detection.
type Options struct {
	// Strategy is the ranking model (default RSVMIE).
	Strategy Strategy
	// Detector is the update policy (default ModC; NoDetector disables
	// adaptation).
	Detector Detector
	// SampleSize is the initial random document sample used to train the
	// first model (default 500, or 10% of the collection if smaller).
	SampleSize int
	// MaxDocs stops after processing this many ranked documents
	// (0 = whole collection).
	MaxDocs int
	// Seed drives sampling and stochastic learning (default 1).
	Seed int64
	// Workers sets the number of goroutines used to score pending
	// documents during (re-)ranking; 0 uses GOMAXPROCS. The resulting
	// ranking is identical to a sequential run.
	Workers int
	// Metrics, when non-nil, receives the run's counters, gauges, and
	// latency histograms; inspect it with Dump after Run returns.
	Metrics *Metrics
	// Recorder, when non-nil, receives the run's structured event trace
	// (e.g. NewTraceRecorder). nil disables tracing at zero cost.
	Recorder Recorder
	// Explain, when non-nil, arms model introspection: weight snapshots
	// at every model update and score attributions for the top-ranked
	// documents flow into the explainer's artifact directory. Tee
	// Explain.Recorder() into Recorder to persist detector decision
	// evidence too. Like Metrics and Recorder it never changes what the
	// run computes.
	Explain *Explainer
	// Flaky, when non-nil, wraps the extractor with seeded deterministic
	// fault injection (transient errors, panics, hangs, latency spikes,
	// poisoned documents). Setting it implies Resilience so injected
	// faults are retried rather than crashing the run.
	Flaky *FaultInjection
	// Resilience, when non-nil, runs extraction through the
	// fault-tolerance stack: per-attempt timeout, capped exponential
	// backoff with jitter, panic recovery, and a circuit breaker whose
	// open state requeues documents instead of hammering a down backend.
	// Zero fields take defaults. Leave nil (with Flaky nil) for the
	// bare-metal path with no retry overhead.
	Resilience *Resilience
	// Checkpoint, when non-empty, is the path of a crash-safe JSONL run
	// journal: every extraction outcome is flushed to it before it can
	// affect the model, so a killed run can be resumed without losing
	// acknowledged work. Without Resume the file is created fresh.
	Checkpoint string
	// Resume reopens an existing Checkpoint journal and replays its
	// outcomes: already-journaled documents skip extraction, and because
	// the rest of the run is deterministic the resumed run reproduces
	// the interrupted one exactly (model snapshots in the journal verify
	// this and fail loudly on divergence). The journal must have been
	// written by an identically configured run over the same corpus.
	Resume bool
}

// Result reports an extraction run.
type Result struct {
	// Tuples are all distinct tuples extracted, in discovery order.
	Tuples []Tuple
	// DocsProcessed counts processed documents (sample + ranked phase).
	DocsProcessed int
	// UsefulFound counts processed documents that yielded tuples.
	UsefulFound int
	// Updates counts model updates performed during the run.
	Updates int
	// RankingOverhead is the measured CPU time spent ranking, training,
	// and detecting updates (everything except extraction itself).
	RankingOverhead time.Duration
	// Order is the ranked-phase processing order.
	Order []DocID
	// Skipped lists documents the resilience policy abandoned (every
	// retry failed, or the requeue limit was hit); empty without faults.
	Skipped []DocID
	// Requeued counts breaker-open fast-fails that sent a document back
	// to the end of the queue.
	Requeued int
	// Interrupted reports that the run was cancelled (RunContext) before
	// completing; the partial result and any Checkpoint journal written
	// so far are valid, and a Resume run picks up where it stopped.
	Interrupted bool
}

// workers resolves the worker-count option.
func workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes adaptive ranked extraction over the collection with the
// given black-box extractor.
func Run(coll *Collection, ex Extractor, opts Options) (*Result, error) {
	return RunContext(context.Background(), coll, ex, opts)
}

// RunContext is Run with cancellation: cancel ctx (e.g. from a SIGINT
// handler via signal.NotifyContext) and the run drains gracefully — the
// in-flight document finishes, the Checkpoint journal and trace stay
// flushed, and the partial Result comes back with Interrupted set.
func RunContext(ctx context.Context, coll *Collection, ex Extractor, opts Options) (*Result, error) {
	if coll == nil || coll.Len() == 0 {
		return nil, fmt.Errorf("adaptiverank: empty collection")
	}
	if ex == nil {
		return nil, fmt.Errorf("adaptiverank: nil extractor")
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.SampleSize == 0 {
		opts.SampleSize = 500
		if tenth := coll.Len() / 10; tenth < opts.SampleSize {
			opts.SampleSize = tenth
		}
		if opts.SampleSize < 1 {
			opts.SampleSize = 1
		}
	}

	feat := ranking.NewFeaturizer()
	var ranker ranking.Ranker
	switch opts.Strategy {
	case RSVMIE:
		ranker = ranking.NewRSVMIE(ranking.RSVMOptions{Seed: opts.Seed})
	case BAggIE:
		ranker = ranking.NewBAggIE(ranking.BAggOptions{})
	case RandomOrder:
		ranker = ranking.NewRandomRanker(opts.Seed)
	default:
		return nil, fmt.Errorf("adaptiverank: unknown strategy %d", opts.Strategy)
	}

	var det update.Detector
	switch opts.Detector {
	case ModC:
		alpha := 5.0
		if opts.Strategy == BAggIE {
			alpha = 30
		}
		det = update.NewModC(ranker, 0.1, alpha, opts.Seed+100)
	case TopK:
		det = update.NewTopK(update.TopKOptions{})
	case WindF:
		det = update.NewWindF(coll.Len() / 50)
	case FeatS:
		det = update.NewFeatS(update.FeatSOptions{})
	case NoDetector:
		det = nil
	default:
		return nil, fmt.Errorf("adaptiverank: unknown detector %d", opts.Detector)
	}
	if opts.Strategy == RandomOrder {
		det = nil // adaptation cannot help a random order
	}

	// Oracle chain: (Resilient?)(ExtractorOracle((Flaky?)(extractor))).
	// The pipeline accumulates tuples itself, so the same chain works
	// whether outcomes come from live extraction or journal replay.
	pex := ex
	if opts.Flaky != nil {
		pex = extract.NewFlaky(ex, *opts.Flaky)
	}
	var oracle pipeline.Oracle = &pipeline.ExtractorOracle{Ex: pex}
	if opts.Resilience != nil || opts.Flaky != nil {
		ropts := Resilience{}
		if opts.Resilience != nil {
			ropts = *opts.Resilience
		}
		oracle = pipeline.NewResilient(oracle, ropts)
	}

	var journal *pipeline.Journal
	if opts.Checkpoint != "" {
		fp := runFingerprint(coll, ex, opts)
		var jerr error
		if opts.Resume {
			journal, jerr = pipeline.OpenJournal(opts.Checkpoint, fp)
		} else {
			journal, jerr = pipeline.CreateJournal(opts.Checkpoint, fp)
		}
		if jerr != nil {
			return nil, jerr
		}
	}

	res, err := pipeline.RunContext(ctx, pipeline.Options{
		Rel:            ex.Relation(),
		ExtractionCost: ex.SimulatedCost(),
		Coll:           coll,
		Labels:         oracle,
		Sample:         sampling.SRS(coll, opts.SampleSize, opts.Seed),
		Strategy:       pipeline.NewLearned(ranker, feat),
		Detector:       det,
		Featurizer:     feat,
		MaxDocs:        opts.MaxDocs,
		Workers:        workers(opts.Workers),
		Metrics:        opts.Metrics,
		Recorder:       opts.Recorder,
		Explain:        opts.Explain,
		Journal:        journal,
	})
	if cerr := journal.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("adaptiverank: closing checkpoint: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	useful := res.SampleUseful
	for _, u := range res.OrderLabels {
		if u {
			useful++
		}
	}
	return &Result{
		Tuples:          res.Tuples,
		DocsProcessed:   res.SampleSize + len(res.Order),
		UsefulFound:     useful,
		Updates:         len(res.UpdatePositions),
		RankingOverhead: res.Time.Overhead(),
		Order:           res.Order,
		Skipped:         res.Skipped,
		Requeued:        res.Requeued,
		Interrupted:     res.Interrupted,
	}, nil
}

// Fingerprint returns the run-configuration digest of a (collection,
// extractor, options) triple — the same string the crash-safe journal
// binds to. The CLIs embed it in profiling manifests and postmortem
// bundles, so every artifact of a run traces back to exactly one
// configuration.
func Fingerprint(coll *Collection, ex Extractor, opts Options) string {
	return runFingerprint(coll, ex, opts)
}

// runFingerprint identifies a run configuration for checkpoint files:
// resuming a journal written by a different configuration (or corpus)
// would replay wrong outcomes, so OpenJournal rejects a mismatch. Only
// result-affecting options participate — Workers, Metrics, Recorder,
// and Explain do not change what a run computes.
func runFingerprint(coll *Collection, ex Extractor, opts Options) string {
	flaky := ""
	if opts.Flaky != nil {
		f := *opts.Flaky
		flaky = fmt.Sprintf("seed=%d,err=%g,panic=%g,hang=%g,lat=%g,poison=%g,mfa=%d",
			f.Seed, f.ErrorRate, f.PanicRate, f.HangRate, f.LatencyRate, f.PoisonRate, f.MaxFaultyAttempts)
	}
	resil := ""
	if opts.Resilience != nil {
		r := *opts.Resilience
		resil = fmt.Sprintf("attempts=%d,breaker=%d/%d", r.MaxAttempts, r.BreakerThreshold, r.BreakerCooldown)
	}
	return fmt.Sprintf("adaptiverank/v1 rel=%s strat=%d det=%d seed=%d sample=%d maxdocs=%d corpus=%016x flaky{%s} resil{%s}",
		ex.Relation().Code(), opts.Strategy, opts.Detector, opts.Seed, opts.SampleSize,
		opts.MaxDocs, coll.Checksum(), flaky, resil)
}

// LoadCorpusJSONL reads a collection from a JSON-lines file with one
// {"title": ..., "text": ...} object per line — the interchange format for
// bringing your own documents.
func LoadCorpusJSONL(path string) (*Collection, error) {
	return corpus.LoadJSONL(path)
}

// SaveCorpusJSONL writes a collection to a JSON-lines file.
func SaveCorpusJSONL(path string, c *Collection) error {
	return corpus.SaveJSONL(path, c)
}
