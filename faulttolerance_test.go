package adaptiverank_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"adaptiverank"
)

// countingCancelExtractor cancels a context after n extraction calls,
// simulating a signal arriving mid-run.
type countingCancelExtractor struct {
	adaptiverank.Extractor
	calls  int
	after  int
	cancel context.CancelFunc
}

func (c *countingCancelExtractor) Extract(d *adaptiverank.Document) []adaptiverank.Tuple {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return c.Extractor.Extract(d)
}

// TestResumeReproducesUninterruptedRun is the ISSUE acceptance test at
// the public API: interrupt a checkpointed run partway, resume it, and
// the final tuple set and processing order must be identical to an
// uninterrupted run of the same configuration.
func TestResumeReproducesUninterruptedRun(t *testing.T) {
	coll, err := adaptiverank.GenerateCorpus(21, 1200)
	if err != nil {
		t.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCharge)
	opts := adaptiverank.Options{Seed: 3}

	ref, err := adaptiverank.Run(coll, ex, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after ~200 extractions, journal on.
	ckpt := filepath.Join(t.TempDir(), "run.checkpoint")
	ctx, cancel := context.WithCancel(context.Background())
	iopts := opts
	iopts.Checkpoint = ckpt
	part, err := adaptiverank.RunContext(ctx,
		coll, &countingCancelExtractor{Extractor: ex, after: 200, cancel: cancel}, iopts)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !part.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if part.DocsProcessed == 0 || part.DocsProcessed >= ref.DocsProcessed {
		t.Fatalf("setup: interrupted run processed %d of %d docs", part.DocsProcessed, ref.DocsProcessed)
	}

	// Resume against the journal with a fresh extractor instance.
	ropts := opts
	ropts.Checkpoint = ckpt
	ropts.Resume = true
	res, err := adaptiverank.Run(coll, ex, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("resumed run reported Interrupted")
	}
	if len(res.Tuples) != len(ref.Tuples) {
		t.Fatalf("tuple sets differ: resumed %d, uninterrupted %d", len(res.Tuples), len(ref.Tuples))
	}
	for i := range res.Tuples {
		if res.Tuples[i] != ref.Tuples[i] {
			t.Fatalf("tuple %d differs: %v vs %v", i, res.Tuples[i], ref.Tuples[i])
		}
	}
	if len(res.Order) != len(ref.Order) {
		t.Fatalf("order lengths differ: %d vs %d", len(res.Order), len(ref.Order))
	}
	for i := range res.Order {
		if res.Order[i] != ref.Order[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, res.Order[i], ref.Order[i])
		}
	}
}

// TestResumeRejectsDifferentConfiguration: a checkpoint written by one
// configuration must not silently resume under another.
func TestResumeRejectsDifferentConfiguration(t *testing.T) {
	coll, err := adaptiverank.GenerateCorpus(22, 400)
	if err != nil {
		t.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.DiseaseOutbreak)
	ckpt := filepath.Join(t.TempDir(), "run.checkpoint")
	if _, err := adaptiverank.Run(coll, ex, adaptiverank.Options{Seed: 5, Checkpoint: ckpt, MaxDocs: 50}); err != nil {
		t.Fatal(err)
	}
	_, err = adaptiverank.Run(coll, ex, adaptiverank.Options{Seed: 6, Checkpoint: ckpt, Resume: true, MaxDocs: 50})
	if err == nil {
		t.Fatal("resume with different seed accepted")
	}
}

// TestFaultScheduleCompletes is the ISSUE acceptance scenario: 10%
// transient errors + 1% panics over the whole run; the run completes
// with zero crashes, every non-poisoned document gets its correct
// label, and fault counters land in the metrics registry.
func TestFaultScheduleCompletes(t *testing.T) {
	coll, err := adaptiverank.GenerateCorpus(23, 1200)
	if err != nil {
		t.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.NaturalDisasterLocation)
	reg := adaptiverank.NewMetrics()
	res, err := adaptiverank.Run(coll, ex, adaptiverank.Options{
		Seed: 9,
		Flaky: &adaptiverank.FaultInjection{
			Seed: 9, ErrorRate: 0.10, PanicRate: 0.01, PoisonRate: 0.005,
		},
		Resilience: &adaptiverank.Resilience{Sleep: func(time.Duration) {}},
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("fault-injected run reported Interrupted")
	}
	if res.DocsProcessed+len(res.Skipped) != coll.Len() {
		t.Fatalf("processed %d + skipped %d != collection %d",
			res.DocsProcessed, len(res.Skipped), coll.Len())
	}
	// Labels along the ranked order must match a clean extraction.
	for _, id := range res.Order {
		for _, tu := range ex.Extract(coll.Doc(id)) {
			found := false
			for _, got := range res.Tuples {
				if got == tu {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("tuple %v from doc %d missing despite successful processing", tu, id)
			}
		}
	}
	if reg.CounterValue("resilience.faults") == 0 {
		t.Fatal("resilience.faults counter empty: fault stack not wired into metrics")
	}
	if reg.CounterValue("resilience.panics_recovered") == 0 {
		t.Fatal("no panics recovered at a 1% panic rate")
	}
}
