// Package estimate implements the recall- and cost-estimation direction
// the paper sketches as future work (Section 6): during extraction,
// calibrate a usefulness probability from the (ranking score, extraction
// outcome) pairs observed so far, project how many useful documents remain
// among the pending ones, and estimate the extraction cost needed to reach
// a target recall — enabling the robust recall/cost trade-off analysis the
// paper envisions.
package estimate

import (
	"errors"
	"math"
	"sort"
	"time"
)

// Estimator calibrates P(useful | ranking score) with a one-dimensional
// logistic model fitted by gradient descent over the observed pairs.
type Estimator struct {
	scores []float64
	labels []bool
	// logistic parameters: P(useful|s) = sigmoid(a*s + b)
	a, b   float64
	fitted bool
}

// New returns an empty estimator.
func New() *Estimator { return &Estimator{} }

// Observe records one processed document's ranking score and outcome.
func (e *Estimator) Observe(score float64, useful bool) {
	e.scores = append(e.scores, score)
	e.labels = append(e.labels, useful)
	e.fitted = false
}

// Observations reports how many pairs have been recorded.
func (e *Estimator) Observations() int { return len(e.scores) }

// ErrInsufficientData is returned when the estimator has not seen both
// outcomes yet.
var ErrInsufficientData = errors.New("estimate: need observations of both outcomes")

// Fit estimates the logistic calibration. It requires at least one useful
// and one useless observation.
func (e *Estimator) Fit() error {
	pos, neg := 0, 0
	for _, u := range e.labels {
		if u {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return ErrInsufficientData
	}
	// Standardize scores for a well-conditioned fit.
	mean, std := moments(e.scores)
	if std == 0 {
		std = 1
	}
	// Gradient descent on the unweighted log-loss: the maximum-likelihood
	// logistic is probability-calibrated (its expected positive count
	// matches the observed count), which is exactly what the downstream
	// remaining-useful projection needs.
	a, b := 1.0, 0.0
	lr := 2.0
	n := float64(len(e.scores))
	for iter := 0; iter < 2000; iter++ {
		var ga, gb float64
		for i, s := range e.scores {
			z := (s - mean) / std
			p := sigmoid(a*z + b)
			y := 0.0
			if e.labels[i] {
				y = 1
			}
			ga += (p - y) * z
			gb += (p - y)
		}
		a -= lr * ga / n
		b -= lr * gb / n
	}
	// Fold the standardization back into the parameters.
	e.a = a / std
	e.b = b - a*mean/std
	e.fitted = true
	return nil
}

// ProbUseful returns the calibrated usefulness probability for a score.
// Fit must have succeeded.
func (e *Estimator) ProbUseful(score float64) float64 {
	return sigmoid(e.a*score + e.b)
}

// ExpectedUseful sums the calibrated probabilities over pending-document
// scores: the expected number of useful documents still unprocessed.
func (e *Estimator) ExpectedUseful(pendingScores []float64) float64 {
	var sum float64
	for _, s := range pendingScores {
		sum += e.ProbUseful(s)
	}
	return sum
}

// Projection is a recall/cost estimate for one target.
type Projection struct {
	// TargetRecall is the requested recall over the projected total.
	TargetRecall float64
	// Docs is the estimated number of pending documents that must still
	// be processed (in ranking order) to reach the target.
	Docs int
	// Cost is Docs × the per-document extraction cost.
	Cost time.Duration
	// Reachable is false when even processing everything falls short of
	// the target under the projection.
	Reachable bool
}

// CostToRecall projects the cost of reaching targetRecall of all useful
// documents (found so far + expected pending), assuming pending documents
// are processed in descending-score order. pendingScores may be unsorted.
func (e *Estimator) CostToRecall(foundUseful int, pendingScores []float64, targetRecall float64, perDoc time.Duration) Projection {
	scores := append([]float64(nil), pendingScores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	expectedRemaining := e.ExpectedUseful(scores)
	total := float64(foundUseful) + expectedRemaining
	proj := Projection{TargetRecall: targetRecall}
	if total <= 0 {
		proj.Reachable = true
		return proj
	}
	goal := targetRecall*total - float64(foundUseful)
	if goal <= 0 {
		proj.Reachable = true
		return proj
	}
	var cum float64
	for i, s := range scores {
		cum += e.ProbUseful(s)
		if cum >= goal {
			proj.Docs = i + 1
			proj.Cost = time.Duration(i+1) * perDoc
			proj.Reachable = true
			return proj
		}
	}
	proj.Docs = len(scores)
	proj.Cost = time.Duration(len(scores)) * perDoc
	proj.Reachable = false
	return proj
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func moments(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}
