package estimate

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// synth draws (score, useful) pairs where usefulness follows a logistic in
// the score.
func synth(rng *rand.Rand, a, b float64) (float64, bool) {
	s := rng.NormFloat64()
	p := 1 / (1 + math.Exp(-(a*s + b)))
	return s, rng.Float64() < p
}

func TestFitRequiresBothLabels(t *testing.T) {
	e := New()
	e.Observe(1, true)
	if err := e.Fit(); err != ErrInsufficientData {
		t.Errorf("Fit = %v, want ErrInsufficientData", err)
	}
	e.Observe(0, false)
	if err := e.Fit(); err != nil {
		t.Errorf("Fit with both labels failed: %v", err)
	}
}

func TestCalibrationRecoversMonotoneProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := New()
	for i := 0; i < 4000; i++ {
		e.Observe(synth(rng, 2, -1))
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	if !(e.ProbUseful(2) > e.ProbUseful(0) && e.ProbUseful(0) > e.ProbUseful(-2)) {
		t.Errorf("calibration not monotone: p(2)=%.3f p(0)=%.3f p(-2)=%.3f",
			e.ProbUseful(2), e.ProbUseful(0), e.ProbUseful(-2))
	}
	// High scores must approach probability 1 and low scores 0.
	if e.ProbUseful(3) < 0.9 {
		t.Errorf("p(3) = %.3f, want near 1", e.ProbUseful(3))
	}
	if e.ProbUseful(-3) > 0.3 {
		t.Errorf("p(-3) = %.3f, want near 0", e.ProbUseful(-3))
	}
}

func TestExpectedUsefulTracksTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := New()
	for i := 0; i < 5000; i++ {
		e.Observe(synth(rng, 1.5, -2))
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	// Pending documents from the same distribution: the MLE logistic is
	// calibrated, so the expected count must track the realized count.
	var pending []float64
	actual := 0
	for i := 0; i < 3000; i++ {
		s, u := synth(rng, 1.5, -2)
		pending = append(pending, s)
		if u {
			actual++
		}
	}
	got := e.ExpectedUseful(pending)
	if got < float64(actual)*0.8 || got > float64(actual)*1.25 {
		t.Errorf("ExpectedUseful = %.1f, actual %d (out of tolerance)", got, actual)
	}
}

func TestCostToRecallOrdersByScore(t *testing.T) {
	e := New()
	// Hand-calibrate: p = sigmoid(s), i.e. a=1, b=0.
	e.a, e.b, e.fitted = 1, 0, true
	pending := []float64{-4, 6, 6, -4, 6} // three near-certain, two near-zero
	proj := e.CostToRecall(0, pending, 0.9, time.Second)
	if !proj.Reachable {
		t.Fatal("projection must be reachable")
	}
	// ~3 useful expected in total; 90% of them are covered by the three
	// high-score docs.
	if proj.Docs != 3 {
		t.Errorf("Docs = %d, want 3 (high scores first)", proj.Docs)
	}
	if proj.Cost != 3*time.Second {
		t.Errorf("Cost = %v, want 3s", proj.Cost)
	}
}

func TestCostToRecallAlreadyReached(t *testing.T) {
	e := New()
	e.a, e.b, e.fitted = 1, -100, true // pending all ~zero probability
	proj := e.CostToRecall(10, []float64{0, 0}, 0.9, time.Second)
	if !proj.Reachable || proj.Docs != 0 {
		t.Errorf("target already met must project zero docs, got %+v", proj)
	}
}

func TestCostToRecallUnreachable(t *testing.T) {
	e := New()
	e.a, e.b, e.fitted = 1, 0, true
	// found=0 and target over the expected pending mass cannot exceed
	// 100% of the projection, so with rounding it ends Reachable at the
	// end; force unreachable with an empty pending set and found>0
	// handled above. Use a target slightly above what the cumulative sum
	// reaches due to ordering: identical scores, target 1.0 is reached
	// exactly at the last document.
	proj := e.CostToRecall(0, []float64{0, 0, 0}, 1.0, time.Second)
	if proj.Docs != 3 {
		t.Errorf("full-recall projection must need all docs, got %+v", proj)
	}
}

func TestObservationsCount(t *testing.T) {
	e := New()
	e.Observe(1, true)
	e.Observe(2, false)
	if e.Observations() != 2 {
		t.Errorf("Observations = %d", e.Observations())
	}
}
