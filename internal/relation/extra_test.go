package relation

import "testing"

func TestTupleEquality(t *testing.T) {
	a := Tuple{Rel: PH, Arg1: "x", Arg2: "y"}
	b := Tuple{Rel: PH, Arg1: "x", Arg2: "y"}
	if a != b {
		t.Error("identical tuples must compare equal (map-key requirement)")
	}
	m := map[Tuple]bool{a: true}
	if !m[b] {
		t.Error("tuples must be usable as map keys")
	}
}

func TestStringIsCode(t *testing.T) {
	if ND.String() != "ND" {
		t.Errorf("String = %q", ND.String())
	}
}
