// Package relation enumerates the seven extraction relations evaluated in
// the paper (Table 1), together with the metadata the experiments need:
// human-readable names, target useful-document densities, sparsity class,
// and the per-document extraction cost of the corresponding information
// extraction system (used by the simulated CPU-time accounting; see
// DESIGN.md §2).
package relation

import (
	"fmt"
	"time"
)

// Relation identifies one extraction task.
type Relation int

// The seven relations of Table 1.
const (
	PO Relation = iota // Person–Organization Affiliation
	DO                 // Disease–Outbreak
	PC                 // Person–Career
	ND                 // Natural Disaster–Location
	MD                 // Man Made Disaster–Location
	PH                 // Person–Charge
	EW                 // Election–Winner
	numRelations
)

// All returns the relations in Table 1 order.
func All() []Relation {
	return []Relation{PO, DO, PC, ND, MD, PH, EW}
}

type info struct {
	code    string
	name    string
	density float64       // fraction of useful documents in the test set (Table 1)
	cost    time.Duration // simulated extraction cost per document (§5, Fig 13)
	arg1    string
	arg2    string
}

var infos = [numRelations]info{
	PO: {"PO", "Person–Organization Affiliation", 0.1695, 10 * time.Millisecond, "Person", "Organization"},
	DO: {"DO", "Disease–Outbreak", 0.0008, 50 * time.Millisecond, "Disease", "Outbreak"},
	PC: {"PC", "Person–Career", 0.4216, 1200 * time.Millisecond, "Person", "Career"},
	ND: {"ND", "Natural Disaster–Location", 0.0169, 6 * time.Second, "NaturalDisaster", "Location"},
	MD: {"MD", "Man Made Disaster–Location", 0.0146, 2 * time.Second, "ManMadeDisaster", "Location"},
	PH: {"PH", "Person–Charge", 0.0177, 2 * time.Second, "Person", "Charge"},
	EW: {"EW", "Election–Winner", 0.0050, 2 * time.Second, "Election", "Winner"},
}

func (r Relation) info() info {
	if r < 0 || r >= numRelations {
		panic(fmt.Sprintf("relation: invalid Relation %d", int(r)))
	}
	return infos[r]
}

// Code returns the two-letter code used throughout the paper ("PO", "DO"...).
func (r Relation) Code() string { return r.info().code }

// Name returns the full relation name from Table 1.
func (r Relation) Name() string { return r.info().name }

// Density returns the fraction of test-set documents that are useful for r
// according to Table 1; the synthetic generator targets this fraction.
func (r Relation) Density() float64 { return r.info().density }

// ExtractionCost returns the simulated per-document CPU cost of the
// information extraction system for r. The paper reports ~6 s/doc for ND
// and ~0.01 s/doc for PO (§5); the remaining values interpolate by system
// complexity (dictionary+regex fast, CRF+kernel slow).
func (r Relation) ExtractionCost() time.Duration { return r.info().cost }

// Sparse reports whether r is a sparse relation (<2% useful documents),
// the classification used in the paper's discussion of Figures 4 and 12.
func (r Relation) Sparse() bool { return r.info().density < 0.02 }

// Arg1Type and Arg2Type name the entity types of the relation arguments.
func (r Relation) Arg1Type() string { return r.info().arg1 }

// Arg2Type names the second argument's entity type.
func (r Relation) Arg2Type() string { return r.info().arg2 }

// String implements fmt.Stringer.
func (r Relation) String() string { return r.Code() }

// Parse maps a two-letter code to a Relation.
func Parse(code string) (Relation, error) {
	for _, r := range All() {
		if r.Code() == code {
			return r, nil
		}
	}
	return 0, fmt.Errorf("relation: unknown code %q", code)
}

// Tuple is one extracted fact: a pair of attribute values for a relation.
type Tuple struct {
	Rel  Relation
	Arg1 string
	Arg2 string
}

// String implements fmt.Stringer.
func (t Tuple) String() string {
	return fmt.Sprintf("%s<%s, %s>", t.Rel.Code(), t.Arg1, t.Arg2)
}
