package relation

import "testing"

func TestAllOrderAndCodes(t *testing.T) {
	want := []string{"PO", "DO", "PC", "ND", "MD", "PH", "EW"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d relations, want %d", len(all), len(want))
	}
	for i, r := range all {
		if r.Code() != want[i] {
			t.Errorf("All()[%d].Code() = %q, want %q", i, r.Code(), want[i])
		}
	}
}

func TestDensitiesMatchTable1(t *testing.T) {
	cases := map[Relation]float64{
		PO: 0.1695, DO: 0.0008, PC: 0.4216, ND: 0.0169,
		MD: 0.0146, PH: 0.0177, EW: 0.0050,
	}
	for r, want := range cases {
		if got := r.Density(); got != want {
			t.Errorf("%s density = %g, want %g", r.Code(), got, want)
		}
	}
}

func TestSparseClassification(t *testing.T) {
	sparse := map[Relation]bool{
		PO: false, DO: true, PC: false, ND: true, MD: true, PH: true, EW: true,
	}
	for r, want := range sparse {
		if r.Sparse() != want {
			t.Errorf("%s Sparse() = %v, want %v", r.Code(), r.Sparse(), want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, r := range All() {
		got, err := Parse(r.Code())
		if err != nil || got != r {
			t.Errorf("Parse(%q) = %v, %v", r.Code(), got, err)
		}
	}
	if _, err := Parse("XX"); err == nil {
		t.Error("Parse of unknown code must fail")
	}
}

func TestArgTypes(t *testing.T) {
	if ND.Arg1Type() != "NaturalDisaster" || ND.Arg2Type() != "Location" {
		t.Error("ND argument types wrong")
	}
}

func TestTupleString(t *testing.T) {
	tu := Tuple{Rel: ND, Arg1: "tsunami", Arg2: "Hawaii"}
	if got := tu.String(); got != "ND<tsunami, Hawaii>" {
		t.Errorf("String = %q", got)
	}
}

func TestCostsPositiveAndOrdered(t *testing.T) {
	for _, r := range All() {
		if r.ExtractionCost() <= 0 {
			t.Errorf("%s cost must be positive", r.Code())
		}
	}
	// The paper's anchors: ND ~6s/doc is the slowest, PO ~0.01s the fastest.
	for _, r := range All() {
		if r != ND && r.ExtractionCost() > ND.ExtractionCost() {
			t.Errorf("%s costs more than ND", r.Code())
		}
		if r != PO && r.ExtractionCost() < PO.ExtractionCost() {
			t.Errorf("%s costs less than PO", r.Code())
		}
	}
}

func TestInvalidRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Relation(99).Code()
}
