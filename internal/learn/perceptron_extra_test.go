package learn

import "testing"

func TestSuffix(t *testing.T) {
	if suffix("earthquake", 3) != "ake" {
		t.Error("suffix of long word")
	}
	if suffix("ab", 3) != "ab" {
		t.Error("suffix of short word must be the word")
	}
}

func TestFeaturesAtBoundaries(t *testing.T) {
	words := []string{"Alpha", "beta"}
	first := featuresAt(words, 0, "<s>")
	last := featuresAt(words, 1, "O")
	has := func(fs []string, f string) bool {
		for _, x := range fs {
			if x == f {
				return true
			}
		}
		return false
	}
	if !has(first, "w-1=<s>") {
		t.Errorf("first position must see the sentence-start marker: %v", first)
	}
	if !has(last, "w+1=</s>") {
		t.Errorf("last position must see the sentence-end marker: %v", last)
	}
	if !has(first, "prevtag=<s>") || !has(last, "prevtag=O") {
		t.Error("previous-tag features missing")
	}
}

func TestPerceptronEmptyInput(t *testing.T) {
	sents, tags := tinyNERData(20, 30)
	p := TrainPerceptron(sents, tags, 1)
	if got := p.Tag(nil); len(got) != 0 {
		t.Errorf("Tag(nil) = %v", got)
	}
}
