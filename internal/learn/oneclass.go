package learn

import (
	"math"

	"adaptiverank/internal/vector"
)

// OneClassSVM is an online kernelized one-class SVM trained with
// Pegasos-style steps, used by the Feat-S update-detection baseline
// (Glazer et al., "Feature shift detection"). It learns the support of the
// training distribution; documents with decision value below the learned
// offset are "outside" the distribution seen so far.
//
// The model keeps a budgeted support set: when the budget is exceeded the
// support vector with the smallest |alpha| is evicted, keeping per-example
// cost bounded.
type OneClassSVM struct {
	// Gamma is the Gaussian kernel bandwidth: k(x,y)=exp(-Gamma*||x-y||^2).
	Gamma float64
	// Nu in (0,1] trades off the fraction of training outliers.
	Nu float64
	// Budget caps the support set size.
	Budget int

	sv    []vector.Sparse
	alpha []float64
	rho   float64
	t     int
}

// NewOneClassSVM returns an untrained model. The paper's Feat-S setting
// uses gamma=0.01; nu=0.1 and a budget of 256 are our implementation
// choices (documented in DESIGN.md).
func NewOneClassSVM(gamma, nu float64, budget int) *OneClassSVM {
	if budget <= 0 {
		budget = 256
	}
	return &OneClassSVM{Gamma: gamma, Nu: nu, Budget: budget}
}

// Kernel evaluates the Gaussian kernel between two sparse vectors.
func (m *OneClassSVM) Kernel(a, b vector.Sparse) float64 {
	// ||a-b||^2 = ||a||^2 + ||b||^2 - 2<a,b>
	d := a.L2()*a.L2() + b.L2()*b.L2() - 2*a.Dot(b)
	if d < 0 {
		d = 0
	}
	return math.Exp(-m.Gamma * d)
}

// Decision returns f(x) = sum_i alpha_i k(sv_i, x) - rho. Non-negative
// values mean x lies inside the learned support region.
func (m *OneClassSVM) Decision(x vector.Sparse) float64 {
	var f float64
	for i, s := range m.sv {
		f += m.alpha[i] * m.Kernel(s, x)
	}
	return f - m.rho
}

// Inside reports whether x falls inside the learned support region.
func (m *OneClassSVM) Inside(x vector.Sparse) bool { return m.Decision(x) >= 0 }

// oneClassLambda is the regularization constant of the Pegasos steps.
const oneClassLambda = 0.1

// Step performs one online training update on example x, following the
// nu-formulation of the one-class SVM objective
//
//	min  lambda/2 ||w||^2 + (1/(nu*n)) sum max(0, rho - <w,phi(x_i)>) - rho
//
// with stochastic sub-gradient steps on both w (the kernel expansion) and
// the offset rho. At equilibrium roughly a nu-fraction of the training
// stream violates the margin, as in the batch formulation.
func (m *OneClassSVM) Step(x vector.Sparse) {
	m.t++
	eta := 1 / (oneClassLambda * float64(m.t))
	if eta > 1 {
		eta = 1
	}
	violation := m.Decision(x) < 0
	// Regularization decay on the expansion coefficients.
	decay := 1 - eta*oneClassLambda
	if decay < 0 {
		decay = 0
	}
	for i := range m.alpha {
		m.alpha[i] *= decay
	}
	if violation {
		m.sv = append(m.sv, x)
		m.alpha = append(m.alpha, eta/m.Nu)
		m.rho += eta * (1 - 1/m.Nu)
	} else {
		m.rho += eta
	}
	if m.rho < 0 {
		m.rho = 0
	}
	m.evict()
}

// evict enforces the support budget by dropping the smallest-|alpha| vector.
func (m *OneClassSVM) evict() {
	for len(m.sv) > m.Budget {
		min := 0
		for i := range m.alpha {
			if math.Abs(m.alpha[i]) < math.Abs(m.alpha[min]) {
				min = i
			}
		}
		m.sv = append(m.sv[:min], m.sv[min+1:]...)
		m.alpha = append(m.alpha[:min], m.alpha[min+1:]...)
	}
}

// SupportSize reports the current number of support vectors.
func (m *OneClassSVM) SupportSize() int { return len(m.sv) }
