package learn

import "math"

// SubseqKernel is the token-level subsequence kernel of Bunescu & Mooney
// ("Subsequence kernels for relation extraction"), computed with the
// classic Lodhi et al. dynamic program over token sequences: it counts
// weighted common subsequences up to length P, with gaps penalized by the
// decay factor Lambda in (0,1].
type SubseqKernel struct {
	// P is the maximum subsequence length counted.
	P int
	// Lambda is the gap decay factor.
	Lambda float64
}

// NewSubseqKernel returns a kernel with the given subsequence length bound
// and decay.
func NewSubseqKernel(p int, lambda float64) *SubseqKernel {
	if p < 1 {
		p = 1
	}
	if lambda <= 0 || lambda > 1 {
		lambda = 0.75
	}
	return &SubseqKernel{P: p, Lambda: lambda}
}

// raw computes the unnormalized kernel K_P(s,t).
func (k *SubseqKernel) raw(s, t []string) float64 {
	n, m := len(s), len(t)
	if n == 0 || m == 0 {
		return 0
	}
	l := k.Lambda
	// kp[i][j] = K'_{p}(s[:i], t[:j]) for the current p.
	kp := make([][]float64, n+1)
	next := make([][]float64, n+1)
	for i := range kp {
		kp[i] = make([]float64, m+1)
		next[i] = make([]float64, m+1)
		for j := range kp[i] {
			kp[i][j] = 1 // K'_0 = 1
		}
	}
	var total float64
	for p := 1; p <= k.P; p++ {
		// kpp[j] = K''_p(s[:i], t[:j]) computed per row.
		for i := range next {
			for j := range next[i] {
				next[i][j] = 0
			}
		}
		var kSum float64
		for i := 1; i <= n; i++ {
			var kpp float64
			for j := 1; j <= m; j++ {
				kpp = l * kpp
				if s[i-1] == t[j-1] {
					kpp += l * l * kp[i-1][j-1]
					// K_p gains lambda^2 * K'_{p-1} for every pair of
					// matching end positions.
					kSum += l * l * kp[i-1][j-1]
				}
				next[i][j] = l*next[i-1][j] + kpp
			}
		}
		total += kSum
		kp, next = next, kp
	}
	return total
}

// Similarity returns the normalized kernel
// K(s,t)/sqrt(K(s,s)*K(t,t)) in [0,1].
func (k *SubseqKernel) Similarity(s, t []string) float64 {
	ss := k.raw(s, s)
	tt := k.raw(t, t)
	if ss == 0 || tt == 0 {
		return 0
	}
	v := k.raw(s, t) / math.Sqrt(ss*tt)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ExemplarScorer scores a token context by its maximum normalized kernel
// similarity to a set of positive exemplar contexts — a nearest-exemplar
// relation classifier on top of the subsequence kernel.
type ExemplarScorer struct {
	Kernel    *SubseqKernel
	Exemplars [][]string
	Threshold float64
}

// Score returns the maximum similarity of ctx to any exemplar.
func (e *ExemplarScorer) Score(ctx []string) float64 {
	var best float64
	for _, ex := range e.Exemplars {
		if s := e.Kernel.Similarity(ctx, ex); s > best {
			best = s
		}
	}
	return best
}

// Match reports whether ctx clears the decision threshold.
func (e *ExemplarScorer) Match(ctx []string) bool {
	return e.Score(ctx) >= e.Threshold
}
