package learn

import (
	"math/rand"
	"reflect"
	"testing"

	"adaptiverank/internal/vector"
)

// tinyNERData builds labelled sequences over a closed vocabulary: NAME
// tokens are persons, everything else is O.
func tinyNERData(n int, seed int64) (sents [][]string, tags [][]string) {
	rng := rand.New(rand.NewSource(seed))
	firsts := []string{"Alice", "Bob", "Carol", "Dave"}
	lasts := []string{"Stone", "Rivers", "Fields"}
	ctx := []string{"the", "meeting", "was", "short", "yesterday", "officials", "spoke"}
	for i := 0; i < n; i++ {
		var s, t []string
		s = append(s, ctx[rng.Intn(len(ctx))], ctx[rng.Intn(len(ctx))])
		t = append(t, "O", "O")
		s = append(s, firsts[rng.Intn(len(firsts))], lasts[rng.Intn(len(lasts))])
		t = append(t, "B-PER", "I-PER")
		s = append(s, ctx[rng.Intn(len(ctx))])
		t = append(t, "O")
		sents = append(sents, s)
		tags = append(tags, t)
	}
	return sents, tags
}

func accuracy(tagFn func([]string) []string, sents [][]string, tags [][]string) float64 {
	var correct, total float64
	for i, s := range sents {
		got := tagFn(s)
		for j := range got {
			total++
			if got[j] == tags[i][j] {
				correct++
			}
		}
	}
	return correct / total
}

func TestHMMLearnsTinyNER(t *testing.T) {
	sents, tags := tinyNERData(300, 1)
	h := TrainHMM(sents, tags)
	test, testTags := tinyNERData(50, 2)
	if acc := accuracy(h.Tag, test, testTags); acc < 0.95 {
		t.Errorf("HMM accuracy = %.3f, want >= 0.95", acc)
	}
	if len(h.States()) != 3 {
		t.Errorf("States = %v, want 3 tags", h.States())
	}
}

func TestHMMUnknownCapitalizedWordBackoff(t *testing.T) {
	sents, tags := tinyNERData(300, 3)
	h := TrainHMM(sents, tags)
	// "Zelda Quorn" never occurs in training; the shape back-off should
	// still favour PER for capitalized tokens in a name position.
	got := h.Tag([]string{"the", "meeting", "Zelda", "Quorn", "spoke"})
	if got[2] != "B-PER" {
		t.Errorf("unknown capitalized token tagged %q, want B-PER (got %v)", got[2], got)
	}
}

func TestHMMEmptyInput(t *testing.T) {
	sents, tags := tinyNERData(10, 4)
	h := TrainHMM(sents, tags)
	if h.Tag(nil) != nil {
		t.Error("Tag(nil) must be nil")
	}
}

func TestPerceptronLearnsTinyNER(t *testing.T) {
	sents, tags := tinyNERData(300, 5)
	p := TrainPerceptron(sents, tags, 3)
	test, testTags := tinyNERData(50, 6)
	if acc := accuracy(p.Tag, test, testTags); acc < 0.95 {
		t.Errorf("perceptron accuracy = %.3f, want >= 0.95", acc)
	}
	if len(p.Tags()) != 3 {
		t.Errorf("Tags = %v, want 3", p.Tags())
	}
}

func TestPerceptronDeterministic(t *testing.T) {
	sents, tags := tinyNERData(100, 7)
	a := TrainPerceptron(sents, tags, 2)
	b := TrainPerceptron(sents, tags, 2)
	in := []string{"officials", "Alice", "Stone", "spoke"}
	if !reflect.DeepEqual(a.Tag(in), b.Tag(in)) {
		t.Error("training must be deterministic")
	}
}

func TestWordShape(t *testing.T) {
	cases := map[string]int{
		"hello": shapeLower,
		"Hello": shapeCap,
		"USA":   shapeUpper,
		"1984":  shapeDigit,
		"":      shapeOther,
		"'":     shapeOther,
	}
	for w, want := range cases {
		if got := wordShape(w); got != want {
			t.Errorf("wordShape(%q) = %d, want %d", w, got, want)
		}
	}
}

func TestOneClassSVMLearnsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inDist := func() vector.Sparse {
		return vector.FromCounts(map[int32]float64{
			int32(rng.Intn(5)): 1, int32(rng.Intn(5)): 1,
		}).Normalize()
	}
	outDist := func() vector.Sparse {
		return vector.FromCounts(map[int32]float64{
			int32(100 + rng.Intn(5)): 1, int32(100 + rng.Intn(5)): 1,
		}).Normalize()
	}
	m := NewOneClassSVM(1.0, 0.1, 128)
	for i := 0; i < 1500; i++ {
		m.Step(inDist())
	}
	if m.SupportSize() == 0 {
		t.Fatal("one-class model learned no support vectors")
	}
	inIn, outIn := 0, 0
	for i := 0; i < 200; i++ {
		if m.Inside(inDist()) {
			inIn++
		}
		if m.Inside(outDist()) {
			outIn++
		}
	}
	if inIn <= outIn {
		t.Errorf("inside rate: in-dist %d/200 vs out-dist %d/200; model does not separate the support",
			inIn, outIn)
	}
}

func TestOneClassSVMBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewOneClassSVM(1.0, 0.5, 16)
	for i := 0; i < 500; i++ {
		m.Step(vector.FromCounts(map[int32]float64{int32(rng.Intn(1000)): 1}))
	}
	if m.SupportSize() > 16 {
		t.Errorf("support size %d exceeds budget 16", m.SupportSize())
	}
}

func TestOneClassKernelBounds(t *testing.T) {
	m := NewOneClassSVM(0.5, 0.1, 8)
	a := vector.FromCounts(map[int32]float64{0: 1})
	b := vector.FromCounts(map[int32]float64{1: 1})
	if k := m.Kernel(a, a); k != 1 {
		t.Errorf("K(a,a) = %g, want 1", k)
	}
	if k := m.Kernel(a, b); k <= 0 || k >= 1 {
		t.Errorf("K(a,b) = %g, want in (0,1)", k)
	}
}
