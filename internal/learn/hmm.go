package learn

import (
	"math"
	"strings"
	"unicode"
)

// HMMTagger is a supervised first-order hidden Markov model sequence tagger
// with add-k smoothed transition and emission probabilities and a
// shape-based back-off for unknown words. It stands in for the HMM named
// entity recognizer of Ekbal & Bandyopadhyay used for Person recognition in
// the paper's PO pipeline.
type HMMTagger struct {
	states     []string
	stateIdx   map[string]int
	trans      [][]float64 // log P(state_j | state_i)
	start      []float64   // log P(state | <s>)
	emit       []map[string]float64
	emitUnk    [][]float64 // log P(shape | state) back-off, indexed by shape
	vocabulary map[string]bool
	smoothing  float64
}

// Word shapes used by the unknown-word back-off.
const (
	shapeLower = iota
	shapeCap
	shapeUpper
	shapeDigit
	shapeOther
	numShapes
)

func wordShape(w string) int {
	if w == "" {
		return shapeOther
	}
	r := []rune(w)
	allUpper, allDigit := true, true
	for _, c := range r {
		if !unicode.IsUpper(c) {
			allUpper = false
		}
		if !unicode.IsDigit(c) {
			allDigit = false
		}
	}
	switch {
	case allDigit:
		return shapeDigit
	case allUpper && len(r) > 1:
		return shapeUpper
	case unicode.IsUpper(r[0]):
		return shapeCap
	case unicode.IsLower(r[0]):
		return shapeLower
	default:
		return shapeOther
	}
}

// TrainHMM estimates an HMM tagger from labelled sequences. sentences[i]
// and tags[i] are parallel slices; tag inventories are discovered from the
// data.
func TrainHMM(sentences [][]string, tags [][]string) *HMMTagger {
	h := &HMMTagger{stateIdx: make(map[string]int), vocabulary: make(map[string]bool), smoothing: 0.1}
	for _, ts := range tags {
		for _, t := range ts {
			if _, ok := h.stateIdx[t]; !ok {
				h.stateIdx[t] = len(h.states)
				h.states = append(h.states, t)
			}
		}
	}
	n := len(h.states)
	transC := make([][]float64, n)
	emitC := make([]map[string]float64, n)
	shapeC := make([][]float64, n)
	startC := make([]float64, n)
	stateC := make([]float64, n)
	for i := 0; i < n; i++ {
		transC[i] = make([]float64, n)
		emitC[i] = make(map[string]float64)
		shapeC[i] = make([]float64, numShapes)
	}
	for si, sent := range sentences {
		prev := -1
		for wi, w := range sent {
			t := h.stateIdx[tags[si][wi]]
			lw := strings.ToLower(w)
			h.vocabulary[lw] = true
			emitC[t][lw]++
			shapeC[t][wordShape(w)]++
			stateC[t]++
			if prev < 0 {
				startC[t]++
			} else {
				transC[prev][t]++
			}
			prev = t
		}
	}
	// Normalize with add-k smoothing into log space.
	h.trans = make([][]float64, n)
	h.start = make([]float64, n)
	h.emit = make([]map[string]float64, n)
	h.emitUnk = make([][]float64, n)
	var startTotal float64
	for i := 0; i < n; i++ {
		startTotal += startC[i]
	}
	k := h.smoothing
	for i := 0; i < n; i++ {
		h.start[i] = math.Log((startC[i] + k) / (startTotal + k*float64(n)))
		h.trans[i] = make([]float64, n)
		var rowTotal float64
		for j := 0; j < n; j++ {
			rowTotal += transC[i][j]
		}
		for j := 0; j < n; j++ {
			h.trans[i][j] = math.Log((transC[i][j] + k) / (rowTotal + k*float64(n)))
		}
		h.emit[i] = make(map[string]float64, len(emitC[i]))
		vocab := float64(len(h.vocabulary))
		for w, c := range emitC[i] {
			h.emit[i][w] = math.Log((c + k) / (stateC[i] + k*vocab))
		}
		h.emitUnk[i] = make([]float64, numShapes)
		for s := 0; s < numShapes; s++ {
			// Reserve one smoothing unit of emission mass for unknown
			// words, distributed by shape.
			pUnk := k / (stateC[i] + k*vocab)
			pShape := (shapeC[i][s] + k) / (stateC[i] + k*numShapes)
			h.emitUnk[i][s] = math.Log(pUnk * pShape)
		}
	}
	return h
}

// States returns the tag inventory in discovery order.
func (h *HMMTagger) States() []string { return h.states }

func (h *HMMTagger) emission(state int, word string) float64 {
	lw := strings.ToLower(word)
	if p, ok := h.emit[state][lw]; ok {
		return p
	}
	return h.emitUnk[state][wordShape(word)]
}

// Tag runs Viterbi decoding and returns the most likely tag sequence.
func (h *HMMTagger) Tag(words []string) []string {
	n := len(h.states)
	if len(words) == 0 || n == 0 {
		return nil
	}
	T := len(words)
	delta := make([][]float64, T)
	back := make([][]int, T)
	for t := 0; t < T; t++ {
		delta[t] = make([]float64, n)
		back[t] = make([]int, n)
	}
	for s := 0; s < n; s++ {
		delta[0][s] = h.start[s] + h.emission(s, words[0])
	}
	for t := 1; t < T; t++ {
		for s := 0; s < n; s++ {
			best, bestPrev := math.Inf(-1), 0
			for p := 0; p < n; p++ {
				if v := delta[t-1][p] + h.trans[p][s]; v > best {
					best, bestPrev = v, p
				}
			}
			delta[t][s] = best + h.emission(s, words[t])
			back[t][s] = bestPrev
		}
	}
	bestLast := 0
	for s := 1; s < n; s++ {
		if delta[T-1][s] > delta[T-1][bestLast] {
			bestLast = s
		}
	}
	tags := make([]string, T)
	cur := bestLast
	for t := T - 1; t >= 0; t-- {
		tags[t] = h.states[cur]
		cur = back[t][cur]
	}
	return tags
}
