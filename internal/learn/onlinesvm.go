// Package learn implements the machine-learning substrate: the online
// linear SVM with elastic-net regularization (Pegasos gradient steps with a
// proximal elastic-net shrinkage that performs the paper's in-training
// feature selection), an online kernelized one-class SVM for the Feat-S
// baseline, a supervised HMM tagger, an averaged structured perceptron
// tagger, and a token subsequence kernel.
package learn

import (
	"math"

	"adaptiverank/internal/vector"
)

// ElasticNet holds the regularization parameters of Sections 3.1 and 4:
// LambdaAll weights the whole regularizer against the loss, and LambdaL2
// in [0,1] splits it between the L2 term (weight LambdaL2) and the L1 term
// (weight 1-LambdaL2).
type ElasticNet struct {
	LambdaAll float64
	LambdaL2  float64
}

// L2Coeff returns the effective L2 regularization constant.
func (e ElasticNet) L2Coeff() float64 { return e.LambdaAll * e.LambdaL2 }

// L1Coeff returns the effective L1 regularization constant.
func (e ElasticNet) L1Coeff() float64 { return e.LambdaAll * (1 - e.LambdaL2) }

// OnlineSVM is a linear model trained with Pegasos-style stochastic
// sub-gradient steps on the hinge loss followed by a proximal elastic-net
// shrinkage. The L1 component clips small weights to exactly zero, so the
// model stays sparse as the feature space grows — the in-training feature
// selection of Section 3.1. With UseBias=false and difference vectors as
// inputs it is the RSVM-IE pair learner; with UseBias=true it is a BAgg-IE
// committee member and the Top-K side classifier.
type OnlineSVM struct {
	Reg     ElasticNet
	UseBias bool

	w    *vector.Weights
	bias float64
	t    int // gradient steps taken
}

// NewOnlineSVM returns an untrained model.
func NewOnlineSVM(reg ElasticNet, useBias bool) *OnlineSVM {
	return &OnlineSVM{Reg: reg, UseBias: useBias, w: vector.NewWeights()}
}

// Clone returns a deep copy (used by the Mod-C shadow model).
func (m *OnlineSVM) Clone() *OnlineSVM {
	return &OnlineSVM{Reg: m.Reg, UseBias: m.UseBias, w: m.w.Clone(), bias: m.bias, t: m.t}
}

// Steps reports how many gradient steps the model has taken.
func (m *OnlineSVM) Steps() int { return m.t }

// Weights exposes the live weight vector; callers must not mutate it.
func (m *OnlineSVM) Weights() *vector.Weights { return m.w }

// Bias returns the bias term (always 0 when UseBias is false).
func (m *OnlineSVM) Bias() float64 { return m.bias }

// Margin returns w·x + b.
func (m *OnlineSVM) Margin(x vector.Sparse) float64 { return m.w.Dot(x) + m.bias }

// Prob returns the logistic-normalized score 1/(1+exp(-(w·x+b))), the
// committee-member score s(d) of BAgg-IE.
func (m *OnlineSVM) Prob(x vector.Sparse) float64 {
	return 1 / (1 + math.Exp(-m.Margin(x)))
}

// MarginPacked returns w·x + b through the weight vector's dense-mirror
// fast path. Bitwise identical to Margin on the Sparse equivalent of x;
// allocation-free once the mirror is built for the current model state.
func (m *OnlineSVM) MarginPacked(x vector.Packed) float64 {
	return m.w.MarginPacked(x, m.bias)
}

// ProbPacked is Prob over the packed fast path, with the same bitwise
// parity and allocation guarantees as MarginPacked.
func (m *OnlineSVM) ProbPacked(x vector.Packed) float64 {
	return 1 / (1 + math.Exp(-m.MarginPacked(x)))
}

// Step performs one online update on example x with label y in {-1,+1}:
// a Pegasos gradient step on the hinge loss with learning rate
// eta_t = 1/(lambda*t), followed by the proximal elastic-net shrinkage
// that decays all weights (L2) and clips them toward zero (L1).
func (m *OnlineSVM) Step(x vector.Sparse, y float64) {
	m.t++
	lambda := m.Reg.L2Coeff()
	if lambda <= 0 {
		// Pure-L1 or unregularized corner: fall back to LambdaAll (or 1)
		// so the learning-rate schedule stays defined.
		lambda = m.Reg.LambdaAll
		if lambda <= 0 {
			lambda = 1
		}
	}
	eta := 1 / (lambda * float64(m.t))
	if eta > 1 {
		eta = 1 // keep the first steps bounded
	}

	if y*m.Margin(x) < 1 { // hinge sub-gradient
		m.w.AddSparse(eta*y, x)
		if m.UseBias {
			m.bias += eta * y
		}
	}

	// Proximal elastic-net shrinkage. Each weight first decays
	// multiplicatively (L2) and is then soft-thresholded (L1); weights
	// that cross zero are removed from the sparse model.
	decay := 1 - eta*m.Reg.L2Coeff()
	if decay < 0 {
		decay = 0
	}
	thresh := eta * m.Reg.L1Coeff()
	m.shrink(decay, thresh)
}

// shrink applies w_i <- sign(w_i) * max(0, |w_i|*decay - thresh) to every
// stored weight.
func (m *OnlineSVM) shrink(decay, thresh float64) {
	if decay == 1 && thresh == 0 {
		return
	}
	var drop []int32
	m.w.Range(func(i int32, v float64) {
		nv := math.Abs(v)*decay - thresh
		if nv <= 0 {
			drop = append(drop, i)
			return
		}
		if v < 0 {
			nv = -nv
		}
		m.w.Set(i, nv)
	})
	for _, i := range drop {
		m.w.Set(i, 0)
	}
}

// StepPair performs one stochastic pairwise descent update (RSVM-IE,
// Section 3.1): a hinge step on w·(useful - useless) >= 1.
func (m *OnlineSVM) StepPair(useful, useless vector.Sparse) {
	m.Step(useful.Sub(useless), 1)
}
