package learn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiverank/internal/vector"
)

// separableExample draws an example from a linearly separable problem:
// features 0/1 positive class, features 2/3 negative class.
func separableExample(r *rand.Rand) (vector.Sparse, float64) {
	m := make(map[int32]float64)
	if r.Intn(2) == 0 {
		m[0] = 1
		m[int32(r.Intn(2))] = 1
		m[int32(10+r.Intn(5))] = 1 // noise feature
		return vector.FromCounts(m), 1
	}
	m[2] = 1
	m[int32(2+r.Intn(2))] = 1
	m[int32(10+r.Intn(5))] = 1
	return vector.FromCounts(m), -1
}

func TestOnlineSVMLearnsSeparableProblem(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := NewOnlineSVM(ElasticNet{LambdaAll: 0.01, LambdaL2: 1}, true)
	for i := 0; i < 3000; i++ {
		x, y := separableExample(r)
		m.Step(x, y)
	}
	correct := 0
	for i := 0; i < 500; i++ {
		x, y := separableExample(r)
		if (m.Margin(x) > 0) == (y > 0) {
			correct++
		}
	}
	if acc := float64(correct) / 500; acc < 0.95 {
		t.Errorf("accuracy = %.3f on separable data, want >= 0.95", acc)
	}
}

func TestOnlineSVMElasticNetSparsifies(t *testing.T) {
	// With a strong L1 component, rarely-informative features must be
	// clipped out of the model (in-training feature selection).
	r := rand.New(rand.NewSource(2))
	dense := NewOnlineSVM(ElasticNet{LambdaAll: 0.05, LambdaL2: 1}, true)    // pure L2
	sparse := NewOnlineSVM(ElasticNet{LambdaAll: 0.05, LambdaL2: 0.5}, true) // heavy L1
	for i := 0; i < 2000; i++ {
		x, y := separableExample(r)
		dense.Step(x, y)
		sparse.Step(x, y)
	}
	if sparse.Weights().NNZ() >= dense.Weights().NNZ() {
		t.Errorf("L1 model has %d features, pure-L2 has %d; want strictly fewer",
			sparse.Weights().NNZ(), dense.Weights().NNZ())
	}
	if sparse.Weights().NNZ() == 0 {
		t.Error("L1 model collapsed to empty; regularization too strong")
	}
}

func TestOnlineSVMBiasOnlyWhenEnabled(t *testing.T) {
	x := vector.FromCounts(map[int32]float64{0: 1})
	noBias := NewOnlineSVM(ElasticNet{LambdaAll: 0.1, LambdaL2: 0.99}, false)
	for i := 0; i < 50; i++ {
		noBias.Step(x, 1)
	}
	if noBias.Bias() != 0 {
		t.Errorf("bias = %g with UseBias=false, want 0", noBias.Bias())
	}
	withBias := NewOnlineSVM(ElasticNet{LambdaAll: 0.1, LambdaL2: 0.99}, true)
	for i := 0; i < 50; i++ {
		withBias.Step(x, 1)
	}
	if withBias.Bias() == 0 {
		t.Error("bias stayed 0 with UseBias=true on all-positive stream")
	}
}

func TestOnlineSVMCloneIndependence(t *testing.T) {
	m := NewOnlineSVM(ElasticNet{LambdaAll: 0.1, LambdaL2: 0.99}, true)
	x := vector.FromCounts(map[int32]float64{1: 1})
	m.Step(x, 1)
	c := m.Clone()
	for i := 0; i < 100; i++ {
		c.Step(x, -1)
	}
	if m.Steps() != 1 {
		t.Errorf("original Steps = %d after training the clone, want 1", m.Steps())
	}
	if m.Weights().At(1) == c.Weights().At(1) && m.Bias() == c.Bias() {
		t.Error("clone training leaked into the original model")
	}
}

func TestOnlineSVMProbMonotoneInMargin(t *testing.T) {
	m := NewOnlineSVM(ElasticNet{LambdaAll: 0.01, LambdaL2: 1}, false)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		x, y := separableExample(r)
		m.Step(x, y)
	}
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, _ := separableExample(rr)
		b, _ := separableExample(rr)
		ma, mb := m.Margin(a), m.Margin(b)
		pa, pb := m.Prob(a), m.Prob(b)
		if ma < mb {
			return pa <= pb
		}
		return pa >= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnlineSVMProbRange(t *testing.T) {
	m := NewOnlineSVM(ElasticNet{LambdaAll: 0.1, LambdaL2: 0.99}, true)
	x := vector.FromCounts(map[int32]float64{0: 100})
	m.Step(x, 1)
	p := m.Prob(x)
	if p < 0 || p > 1 || math.IsNaN(p) {
		t.Errorf("Prob = %g, want in [0,1]", p)
	}
}

func TestStepPairPrefersUseful(t *testing.T) {
	m := NewOnlineSVM(ElasticNet{LambdaAll: 0.1, LambdaL2: 0.99}, false)
	useful := vector.FromCounts(map[int32]float64{0: 1, 1: 1})
	useless := vector.FromCounts(map[int32]float64{2: 1, 3: 1})
	for i := 0; i < 200; i++ {
		m.StepPair(useful, useless)
	}
	if m.Margin(useful) <= m.Margin(useless) {
		t.Errorf("score(useful)=%g <= score(useless)=%g after pairwise training",
			m.Margin(useful), m.Margin(useless))
	}
}

func TestElasticNetCoefficients(t *testing.T) {
	e := ElasticNet{LambdaAll: 0.1, LambdaL2: 0.99}
	if math.Abs(e.L2Coeff()-0.099) > 1e-12 {
		t.Errorf("L2Coeff = %g, want 0.099", e.L2Coeff())
	}
	if math.Abs(e.L1Coeff()-0.001) > 1e-12 {
		t.Errorf("L1Coeff = %g, want 0.001", e.L1Coeff())
	}
}

func TestOnlineSVMZeroRegularizationStillLearns(t *testing.T) {
	m := NewOnlineSVM(ElasticNet{}, true)
	x := vector.FromCounts(map[int32]float64{0: 1})
	for i := 0; i < 10; i++ {
		m.Step(x, 1)
	}
	if m.Margin(x) <= 0 {
		t.Errorf("margin = %g, want positive even with zero regularization", m.Margin(x))
	}
}
