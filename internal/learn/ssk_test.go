package learn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveSSK counts common subsequences of length exactly p by brute-force
// enumeration, weighting each occurrence pair by lambda^(span_s + span_t)
// where span is the gap-inclusive length of the occurrence. This is the
// textbook definition the DP must match.
func naiveSSK(s, t []string, p int, lambda float64) float64 {
	var subseqWeights func(seq []string) map[string]float64
	subseqWeights = func(seq []string) map[string]float64 {
		// Map from subsequence key to the sum of lambda^span over its
		// occurrences.
		out := make(map[string]float64)
		n := len(seq)
		var rec func(start, depth int, first, last int, key string)
		rec = func(start, depth, first, last int, key string) {
			if depth == p {
				out[key] += math.Pow(lambda, float64(last-first+1))
				return
			}
			for i := start; i < n; i++ {
				f := first
				if depth == 0 {
					f = i
				}
				rec(i+1, depth+1, f, i, key+"\x00"+seq[i])
			}
		}
		rec(0, 0, 0, 0, "")
		return out
	}
	ws := subseqWeights(s)
	wt := subseqWeights(t)
	var sum float64
	for k, v := range ws {
		if u, ok := wt[k]; ok {
			sum += v * u
		}
	}
	return sum
}

// rawP exposes the single-length kernel by differencing two blended runs.
func rawP(k *SubseqKernel, s, t []string, p int) float64 {
	kp := &SubseqKernel{P: p, Lambda: k.Lambda}
	if p == 1 {
		return kp.raw(s, t)
	}
	kprev := &SubseqKernel{P: p - 1, Lambda: k.Lambda}
	return kp.raw(s, t) - kprev.raw(s, t)
}

func TestSSKMatchesNaiveEnumeration(t *testing.T) {
	k := NewSubseqKernel(2, 0.5)
	cases := [][2][]string{
		{{"a", "b"}, {"a", "b"}},
		{{"a", "b", "c"}, {"a", "c"}},
		{{"a", "x", "b"}, {"a", "b"}},
		{{"c", "a", "t"}, {"c", "a", "r", "t"}},
	}
	for _, c := range cases {
		for p := 1; p <= 2; p++ {
			got := rawP(k, c[0], c[1], p)
			want := naiveSSK(c[0], c[1], p, 0.5)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("K_%d(%v, %v) = %g, want %g", p, c[0], c[1], got, want)
			}
		}
	}
}

func TestSSKQuickMatchesNaive(t *testing.T) {
	k := NewSubseqKernel(3, 0.7)
	alphabet := []string{"a", "b", "c"}
	gen := func(r *rand.Rand) []string {
		n := 1 + r.Intn(5)
		out := make([]string, n)
		for i := range out {
			out[i] = alphabet[r.Intn(len(alphabet))]
		}
		return out
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, u := gen(r), gen(r)
		for p := 1; p <= 3; p++ {
			if math.Abs(rawP(k, s, u, p)-naiveSSK(s, u, p, 0.7)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSSKSimilarityProperties(t *testing.T) {
	k := NewSubseqKernel(3, 0.75)
	s := []string{"was", "charged", "with"}
	if got := k.Similarity(s, s); math.Abs(got-1) > 1e-9 {
		t.Errorf("self-similarity = %g, want 1", got)
	}
	if got := k.Similarity(s, []string{"zzz"}); got != 0 {
		t.Errorf("similarity with disjoint tokens = %g, want 0", got)
	}
	if got := k.Similarity(nil, s); got != 0 {
		t.Errorf("similarity with empty = %g, want 0", got)
	}
}

func TestSSKSimilarityOrderSensitive(t *testing.T) {
	k := NewSubseqKernel(3, 0.75)
	a := []string{"x", "won", "the", "y"}
	same := []string{"x", "won", "the", "z"}
	reversed := []string{"y", "the", "won", "x"}
	if k.Similarity(a, same) <= k.Similarity(a, reversed) {
		t.Error("kernel must reward shared subsequences in the same order")
	}
}

func TestSSKSymmetry(t *testing.T) {
	k := NewSubseqKernel(3, 0.6)
	a := []string{"a", "b", "c", "a"}
	b := []string{"b", "a", "c"}
	if math.Abs(k.Similarity(a, b)-k.Similarity(b, a)) > 1e-12 {
		t.Error("Similarity must be symmetric")
	}
}

func TestExemplarScorer(t *testing.T) {
	sc := &ExemplarScorer{
		Kernel:    NewSubseqKernel(3, 0.75),
		Threshold: 0.5,
		Exemplars: [][]string{{"<arg1>", "was", "charged", "with", "<arg2>"}},
	}
	if !sc.Match([]string{"<arg1>", "was", "charged", "with", "<arg2>", "yesterday"}) {
		t.Error("near-identical context must match")
	}
	if sc.Match([]string{"<arg1>", "denied", "any", "role", "in", "<arg2>"}) {
		t.Error("unrelated context must not match")
	}
	if sc.Score(nil) != 0 {
		t.Error("empty context must score 0")
	}
}

func TestNewSubseqKernelDefaults(t *testing.T) {
	k := NewSubseqKernel(0, -1)
	if k.P != 1 || k.Lambda != 0.75 {
		t.Errorf("defaults = {P:%d, Lambda:%g}, want {1, 0.75}", k.P, k.Lambda)
	}
}
