package learn

import (
	"strconv"
	"strings"
)

// PerceptronTagger is an averaged structured perceptron sequence tagger
// with greedy left-to-right decoding over lexical, shape, context, and
// previous-tag features. It stands in for the CRF and MEMM entity
// recognizers the paper uses for natural-disaster and other entity types.
type PerceptronTagger struct {
	tags    []string
	tagIdx  map[string]int
	weights map[string][]float64 // feature -> per-tag weights (averaged after training)
}

// featuresAt extracts the feature strings for position i given the
// previous predicted tag.
func featuresAt(words []string, i int, prevTag string) []string {
	w := words[i]
	lw := strings.ToLower(w)
	feats := []string{
		"w=" + lw,
		"shape=" + strconv.Itoa(wordShape(w)),
		"prevtag=" + prevTag,
		"suf3=" + suffix(lw, 3),
	}
	if i > 0 {
		feats = append(feats, "w-1="+strings.ToLower(words[i-1]))
	} else {
		feats = append(feats, "w-1=<s>")
	}
	if i+1 < len(words) {
		feats = append(feats, "w+1="+strings.ToLower(words[i+1]))
	} else {
		feats = append(feats, "w+1=</s>")
	}
	return feats
}

func suffix(w string, n int) string {
	if len(w) <= n {
		return w
	}
	return w[len(w)-n:]
}

// TrainPerceptron trains an averaged perceptron tagger for the given number
// of epochs over the labelled sequences. Training is deterministic: epochs
// iterate the data in order.
func TrainPerceptron(sentences [][]string, tags [][]string, epochs int) *PerceptronTagger {
	p := &PerceptronTagger{tagIdx: make(map[string]int), weights: make(map[string][]float64)}
	for _, ts := range tags {
		for _, t := range ts {
			if _, ok := p.tagIdx[t]; !ok {
				p.tagIdx[t] = len(p.tags)
				p.tags = append(p.tags, t)
			}
		}
	}
	n := len(p.tags)
	totals := make(map[string][]float64) // accumulated weights for averaging
	stamps := make(map[string][]float64) // last step each weight changed
	step := 1.0
	get := func(m map[string][]float64, f string) []float64 {
		v, ok := m[f]
		if !ok {
			v = make([]float64, n)
			m[f] = v
		}
		return v
	}
	updateFeat := func(f string, tag int, delta float64) {
		w := get(p.weights, f)
		tot := get(totals, f)
		st := get(stamps, f)
		tot[tag] += (step - st[tag]) * w[tag]
		st[tag] = step
		w[tag] += delta
	}
	for e := 0; e < epochs; e++ {
		for si, sent := range sentences {
			prev := "<s>"
			for wi := range sent {
				feats := featuresAt(sent, wi, prev)
				pred := p.scoreBest(feats)
				gold := p.tagIdx[tags[si][wi]]
				if pred != gold {
					for _, f := range feats {
						updateFeat(f, gold, 1)
						updateFeat(f, pred, -1)
					}
				}
				step++
				// Teacher forcing: condition on the gold previous tag
				// during training for stability.
				prev = tags[si][wi]
			}
		}
	}
	// Finalize averaging.
	for f, w := range p.weights {
		tot := get(totals, f)
		st := get(stamps, f)
		for t := 0; t < n; t++ {
			tot[t] += (step - st[t]) * w[t]
			w[t] = tot[t] / step
		}
	}
	return p
}

func (p *PerceptronTagger) scoreBest(feats []string) int {
	n := len(p.tags)
	scores := make([]float64, n)
	for _, f := range feats {
		if w, ok := p.weights[f]; ok {
			for t := 0; t < n; t++ {
				scores[t] += w[t]
			}
		}
	}
	best := 0
	for t := 1; t < n; t++ {
		if scores[t] > scores[best] {
			best = t
		}
	}
	return best
}

// Tag decodes greedily left to right.
func (p *PerceptronTagger) Tag(words []string) []string {
	out := make([]string, len(words))
	prev := "<s>"
	for i := range words {
		best := p.scoreBest(featuresAt(words, i, prev))
		out[i] = p.tags[best]
		prev = out[i]
	}
	return out
}

// Tags returns the tag inventory in discovery order.
func (p *PerceptronTagger) Tags() []string { return p.tags }
