package corpus

import (
	"strings"
	"testing"
)

func TestWriteJSONLEscapes(t *testing.T) {
	c := NewCollection([]*Document{{Title: "q\"t", Text: "line\nbreak"}})
	var sb strings.Builder
	if err := WriteJSONL(&sb, c); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 1 {
		t.Errorf("JSONL must keep one document per line, got %q", sb.String())
	}
	back, err := ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Doc(0).Text != "line\nbreak" || back.Doc(0).Title != "q\"t" {
		t.Error("escaping lost content")
	}
}
