package corpus

import "testing"

func docs(n int) []*Document {
	out := make([]*Document, n)
	for i := range out {
		out[i] = &Document{Title: "t", Text: "Some text here."}
	}
	return out
}

func TestNewCollectionAssignsSequentialIDs(t *testing.T) {
	c := NewCollection(docs(3))
	for i, d := range c.Docs() {
		if d.ID != DocID(i) {
			t.Errorf("doc %d has ID %d", i, d.ID)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestDocLookup(t *testing.T) {
	c := NewCollection(docs(2))
	if c.Doc(1) != c.Docs()[1] {
		t.Error("Doc(1) must return the second document")
	}
}

func TestDocOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range DocID")
		}
	}()
	NewCollection(docs(1)).Doc(5)
}

func TestPrefixSharesDocuments(t *testing.T) {
	c := NewCollection(docs(5))
	p := c.Prefix(2)
	if p.Len() != 2 {
		t.Fatalf("prefix Len = %d, want 2", p.Len())
	}
	if p.Doc(0) != c.Doc(0) {
		t.Error("prefix must share documents (and ids) with the parent")
	}
	if c.Prefix(100).Len() != 5 {
		t.Error("oversized prefix must clamp to the collection length")
	}
}

func TestFromDocsKeepsIDs(t *testing.T) {
	c := NewCollection(docs(3))
	view := FromDocs([]*Document{c.Doc(2), c.Doc(0)})
	if view.Docs()[0].ID != 2 || view.Docs()[1].ID != 0 {
		t.Error("FromDocs must not renumber documents")
	}
}

func TestTokenizeCaches(t *testing.T) {
	d := &Document{Text: "Alpha beta."}
	first := d.Tokenize()
	if len(first) != 2 {
		t.Fatalf("Tokenize = %v, want 2 tokens", first)
	}
	d.Text = "changed completely now"
	if got := d.Tokenize(); &got[0] != &first[0] {
		t.Error("Tokenize must return the cached slice")
	}
}

func TestIDs(t *testing.T) {
	c := NewCollection(docs(3))
	ids := c.IDs()
	for i, id := range ids {
		if id != DocID(i) {
			t.Errorf("IDs[%d] = %d", i, id)
		}
	}
}
