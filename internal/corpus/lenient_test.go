package corpus

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadJSONLLenientSkipsAndReports(t *testing.T) {
	input := `{"title":"a","text":"alpha"}` + "\n" +
		`not json` + "\n" +
		`{"title":"no text"}` + "\n" +
		`{"text":"beta"}` + "\n" +
		`{"text":"truncated` // torn final line
	coll, skipped, err := ReadJSONLLenient(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 2 {
		t.Fatalf("Len = %d, want 2 survivors", coll.Len())
	}
	if coll.Doc(0).Text != "alpha" || coll.Doc(1).Text != "beta" {
		t.Fatalf("wrong survivors: %q, %q", coll.Doc(0).Text, coll.Doc(1).Text)
	}
	if len(skipped) != 3 {
		t.Fatalf("skipped %d lines, want 3: %v", len(skipped), skipped)
	}
	wantLines := []int{2, 3, 5}
	for i, re := range skipped {
		if re.Line != wantLines[i] {
			t.Fatalf("skipped[%d].Line = %d, want %d", i, re.Line, wantLines[i])
		}
		if re.Error() == "" {
			t.Fatalf("skipped[%d] has empty error text", i)
		}
	}
	// Survivor ids are sequential, as if the bad lines never existed.
	for i, d := range coll.Docs() {
		if d.ID != DocID(i) {
			t.Fatalf("doc %d has id %d", i, d.ID)
		}
	}
}

func TestReadJSONLLenientCleanInputMatchesStrict(t *testing.T) {
	input := `{"title":"x","text":"one two"}` + "\n" + `{"text":"three"}` + "\n"
	strict, err := ReadJSONL(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	lenient, skipped, err := ReadJSONLLenient(strings.NewReader(input))
	if err != nil || len(skipped) != 0 {
		t.Fatalf("clean input: skipped=%v err=%v", skipped, err)
	}
	if strict.Len() != lenient.Len() {
		t.Fatalf("strict %d docs, lenient %d", strict.Len(), lenient.Len())
	}
	for i := range strict.Docs() {
		s, l := strict.Doc(DocID(i)), lenient.Doc(DocID(i))
		if s.Title != l.Title || s.Text != l.Text {
			t.Fatalf("doc %d differs between strict and lenient", i)
		}
	}
}

func TestCollectionChecksum(t *testing.T) {
	mk := func(texts ...string) *Collection {
		docs := make([]*Document, len(texts))
		for i, s := range texts {
			docs[i] = &Document{Title: "t" + s, Text: s}
		}
		return NewCollection(docs)
	}
	a, b := mk("one", "two"), mk("one", "two")
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical collections hash differently")
	}
	if a.Checksum() == mk("one", "two!").Checksum() {
		t.Fatal("content change not reflected in checksum")
	}
	if a.Checksum() == mk("two", "one").Checksum() {
		t.Fatal("order change not reflected in checksum")
	}
	// Field framing: (title="ab", text="c") must differ from
	// (title="a", text="bc").
	x := NewCollection([]*Document{{Title: "ab", Text: "c"}})
	y := NewCollection([]*Document{{Title: "a", Text: "bc"}})
	if x.Checksum() == y.Checksum() {
		t.Fatal("field boundary not framed into checksum")
	}
}

// FuzzReadJSONLLenient asserts the lenient reader never panics nor
// errors on arbitrary (I/O-error-free) input, that survivors satisfy the
// collection invariants, and that it agrees with the strict reader on
// inputs the strict reader accepts.
func FuzzReadJSONLLenient(f *testing.F) {
	f.Add([]byte(`{"title":"a","text":"alpha"}` + "\n" + `{"text":"beta"}` + "\n"))
	f.Add([]byte(`garbage` + "\n" + `{"text":"keeps going"}` + "\n"))
	f.Add([]byte(`{"title":"no text"}` + "\n"))
	f.Add([]byte(`{"text":"torn`))
	f.Add([]byte(`{"text": 7}` + "\n" + `{"text":"ok"}` + "\r\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte{0x00, 0xff, '\n', '{', '}'})
	f.Add([]byte(`{"text":"` + strings.Repeat("z", 2048) + `"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		coll, skipped, err := ReadJSONLLenient(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("lenient reader failed on in-memory input: %v", err)
		}
		for i, d := range coll.Docs() {
			if d.Text == "" {
				t.Fatalf("doc %d accepted with empty text", i)
			}
			if d.ID != DocID(i) {
				t.Fatalf("doc %d has id %d, want sequential", i, d.ID)
			}
		}
		prev := 0
		for _, re := range skipped {
			if re.Line <= prev {
				t.Fatalf("skip reports out of order: %v", skipped)
			}
			prev = re.Line
		}
		if strict, serr := ReadJSONL(bytes.NewReader(data)); serr == nil {
			if len(skipped) != 0 {
				t.Fatalf("strict accepted input but lenient skipped %v", skipped)
			}
			if strict.Len() != coll.Len() {
				t.Fatalf("strict %d docs, lenient %d", strict.Len(), coll.Len())
			}
			if strict.Checksum() != coll.Checksum() {
				t.Fatal("strict and lenient disagree on checksum")
			}
		}
	})
}
