package corpus

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL asserts ReadJSONL never panics on arbitrary input —
// malformed JSON, truncated objects, binary garbage — and that accepted
// input satisfies the collection invariants and round-trips through
// WriteJSONL. Seed inputs live in testdata/fuzz/FuzzReadJSONL.
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(`{"title":"a","text":"alpha beta"}` + "\n" + `{"text":"gamma"}` + "\n"))
	f.Add([]byte(`{"text":"solo line no trailing newline"}`))
	f.Add([]byte("\n\n" + `{"text":"blank lines around"}` + "\n\n"))
	f.Add([]byte(`{"title":"missing text field"}` + "\n"))
	f.Add([]byte(`{"text": 42}` + "\n"))
	f.Add([]byte(`{"text":"truncated`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0xff, 0xfe, 0x00, '{', '}'})
	f.Add([]byte(`{"text":"` + strings.Repeat("x", 4096) + `"}` + "\n"))
	f.Add([]byte(`{"title":"dup","text":"one"}` + "\r\n" + `{"title":"dup","text":"two"}` + "\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		coll, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			if coll != nil {
				t.Fatal("non-nil collection alongside error")
			}
			return
		}
		for i, d := range coll.Docs() {
			if d.Text == "" {
				t.Fatalf("doc %d accepted with empty text", i)
			}
			if d.ID != DocID(i) {
				t.Fatalf("doc %d has id %d, want sequential", i, d.ID)
			}
			if coll.Doc(d.ID) != d {
				t.Fatalf("doc %d not retrievable by id", i)
			}
		}

		// Round trip: what we write back must parse to the same documents.
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, coll); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Len() != coll.Len() {
			t.Fatalf("round trip changed length: %d -> %d", coll.Len(), again.Len())
		}
		for i, d := range coll.Docs() {
			r := again.Doc(DocID(i))
			if r.Title != d.Title || r.Text != d.Text {
				t.Fatalf("round trip changed doc %d", i)
			}
		}
	})
}

// TestReadJSONLTooLongLine feeds a single line beyond the scanner's 16MB
// cap: the reader must return an error, not panic or truncate silently.
func TestReadJSONLTooLongLine(t *testing.T) {
	huge := `{"text":"` + strings.Repeat("y", 17*1024*1024) + `"}`
	coll, err := ReadJSONL(strings.NewReader(huge))
	if err == nil {
		t.Fatalf("want error for %d-byte line, got collection of %d docs", len(huge), coll.Len())
	}
}
