// Package corpus defines the document collection abstraction shared by the
// generator, the search index, the extractors, and the ranking pipeline.
// It plays the role of the NYT Annotated Corpus in the paper: a large set
// of news-style documents partitioned into training, development, and test
// splits.
package corpus

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"adaptiverank/internal/tokenize"
)

// DocID identifies a document within one Collection.
type DocID int32

// Document is a single news-style text document. The lowercase word
// tokenization of Text (titles are part of Text) is computed lazily and
// cached; see Tokenize.
type Document struct {
	ID    DocID
	Title string
	Text  string

	tokens atomic.Pointer[[]string]
}

// Tokenize returns the cached tokenization, computing it on first use.
// Collections are shared between concurrent pipeline runs, so the cache
// fill races benignly: the first stored slice wins and every caller gets
// the same backing array.
func (d *Document) Tokenize() []string {
	if p := d.tokens.Load(); p != nil {
		return *p
	}
	toks := tokenize.Words(d.Text)
	if d.tokens.CompareAndSwap(nil, &toks) {
		return toks
	}
	return *d.tokens.Load()
}

// Collection is an ordered set of documents with O(1) lookup by id.
type Collection struct {
	docs []*Document
}

// NewCollection builds a collection, assigning sequential DocIDs when the
// documents do not already carry ids matching their position.
func NewCollection(docs []*Document) *Collection {
	for i, d := range docs {
		d.ID = DocID(i)
	}
	return &Collection{docs: docs}
}

// FromDocs wraps an existing document slice as a Collection *without*
// reassigning ids. Lookup by id is unsupported on such views unless the
// documents happen to sit at their id positions; use it for iteration-only
// consumers (e.g. query learning over a subset of another collection).
func FromDocs(docs []*Document) *Collection {
	return &Collection{docs: docs}
}

// Len reports the number of documents.
func (c *Collection) Len() int { return len(c.docs) }

// Doc returns the document with the given id.
func (c *Collection) Doc(id DocID) *Document {
	if int(id) < 0 || int(id) >= len(c.docs) {
		panic(fmt.Sprintf("corpus: DocID %d out of range [0,%d)", id, len(c.docs)))
	}
	return c.docs[id]
}

// Docs returns the underlying document slice; callers must not mutate it.
func (c *Collection) Docs() []*Document { return c.docs }

// Prefix returns a view over the first n documents, used by the scalability
// experiments that evaluate growing subsets of the test collection. The
// returned collection shares documents (and their ids) with c.
func (c *Collection) Prefix(n int) *Collection {
	if n > len(c.docs) {
		n = len(c.docs)
	}
	return &Collection{docs: c.docs[:n]}
}

// Checksum is an FNV-1a fingerprint of the collection's content (titles
// and texts with unambiguous framing, in collection order). Crash-safe
// run journals store it so a -resume against a different or modified
// corpus is rejected instead of silently replaying wrong outcomes.
func (c *Collection) Checksum() uint64 {
	h := fnv.New64a()
	var frame [8]byte
	writeField := func(s string) {
		n := len(s)
		for i := 0; i < 8; i++ {
			frame[i] = byte(n >> (8 * i))
		}
		h.Write(frame[:])
		h.Write([]byte(s))
	}
	for _, d := range c.docs {
		writeField(d.Title)
		writeField(d.Text)
	}
	return h.Sum64()
}

// IDs returns the ids of all documents in collection order.
func (c *Collection) IDs() []DocID {
	ids := make([]DocID, len(c.docs))
	for i, d := range c.docs {
		ids[i] = d.ID
	}
	return ids
}
