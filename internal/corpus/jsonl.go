package corpus

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"adaptiverank/internal/durable"
)

// jsonDoc is the JSONL wire format: one object per line with a title and
// a text body (the id is positional).
type jsonDoc struct {
	Title string `json:"title,omitempty"`
	Text  string `json:"text"`
}

// ReadJSONL reads a collection from JSON-lines input: one
// {"title": ..., "text": ...} object per line. Blank lines are skipped.
// Documents receive sequential ids in input order.
func ReadJSONL(r io.Reader) (*Collection, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var docs []*Document
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jd jsonDoc
		if err := json.Unmarshal(raw, &jd); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		if jd.Text == "" {
			return nil, fmt.Errorf("corpus: line %d: missing \"text\" field", line)
		}
		docs = append(docs, &Document{Title: jd.Title, Text: jd.Text})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return NewCollection(docs), nil
}

// RecordError reports one input line the lenient reader skipped.
type RecordError struct {
	// Line is the 1-based input line number.
	Line int
	// Err describes why the line was rejected.
	Err error
}

func (e RecordError) Error() string {
	return fmt.Sprintf("corpus: line %d: %v", e.Line, e.Err)
}

// ReadJSONLLenient reads JSON-lines input in skip-and-report mode: a
// malformed or text-less line is skipped and reported instead of
// aborting the load, so one corrupt record in a multi-gigabyte corpus
// dump does not cost the whole run. Only I/O failures are fatal.
// Surviving documents receive sequential ids in input order, exactly as
// ReadJSONL would assign them if the bad lines were deleted first.
func ReadJSONLLenient(r io.Reader) (*Collection, []RecordError, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var docs []*Document
	var skipped []RecordError
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jd jsonDoc
		if err := json.Unmarshal(raw, &jd); err != nil {
			skipped = append(skipped, RecordError{Line: line, Err: err})
			continue
		}
		if jd.Text == "" {
			skipped = append(skipped, RecordError{Line: line, Err: fmt.Errorf("missing \"text\" field")})
			continue
		}
		docs = append(docs, &Document{Title: jd.Title, Text: jd.Text})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("corpus: %w", err)
	}
	return NewCollection(docs), skipped, nil
}

// LoadJSONLLenient reads a collection from a JSONL file in
// skip-and-report mode (see ReadJSONLLenient).
func LoadJSONLLenient(path string) (*Collection, []RecordError, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	return ReadJSONLLenient(f)
}

// WriteJSONL writes the collection as JSON lines.
func WriteJSONL(w io.Writer, c *Collection) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range c.Docs() {
		if err := enc.Encode(jsonDoc{Title: d.Title, Text: d.Text}); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	return bw.Flush()
}

// LoadJSONL reads a collection from a JSONL file.
func LoadJSONL(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f)
}

// SaveJSONL writes a collection to a JSONL file atomically: the bytes
// are staged in a temp sibling and renamed over path, so a reader (or a
// rerun after a crash) never sees a half-written corpus.
func SaveJSONL(path string, c *Collection) error {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, c); err != nil {
		return err
	}
	if err := durable.WriteFileAtomic(nil, path, buf.Bytes(), 0o644, "corpus"); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}
