package corpus

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestReadJSONL(t *testing.T) {
	in := `{"title":"A","text":"first body"}

{"text":"second body"}
`
	c, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (blank lines skipped)", c.Len())
	}
	if c.Doc(0).Title != "A" || c.Doc(0).Text != "first body" {
		t.Errorf("doc 0 = %+v", c.Doc(0))
	}
	if c.Doc(1).ID != 1 {
		t.Error("ids must be positional")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("invalid JSON must fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"title":"x"}` + "\n")); err == nil {
		t.Error("missing text field must fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"text":"ok"}` + "\n" + "broken")); err == nil {
		t.Error("error must carry through later lines")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q must name the offending line", err)
	}
}

func TestJSONLRoundTripFile(t *testing.T) {
	docs := []*Document{
		{Title: "t1", Text: "Some text with \"quotes\" and\ttabs."},
		{Text: "Unicode: Galhardas, Simões."},
	}
	c := NewCollection(docs)
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := SaveJSONL(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("round trip lost documents: %d != %d", back.Len(), c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if back.Doc(DocID(i)).Text != c.Doc(DocID(i)).Text ||
			back.Doc(DocID(i)).Title != c.Doc(DocID(i)).Title {
			t.Errorf("doc %d changed in round trip", i)
		}
	}
}

func TestLoadJSONLMissingFile(t *testing.T) {
	if _, err := LoadJSONL("/nonexistent/nope.jsonl"); err == nil {
		t.Error("missing file must fail")
	}
}
