package durable

import (
	"bytes"
	"errors"
)

// Fatal wraps an error so ScanTornTail aborts immediately instead of
// treating it as a possibly-torn record. Parse callbacks use it for
// records that decoded fine but are semantically unacceptable (wrong
// version, wrong fingerprint): those are never truncation debris, so the
// torn-tail tolerance must not swallow them even on the final line.
func Fatal(err error) error { return &fatalError{err} }

type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// ScanTornTail walks JSONL data line by line, invoking parse for each
// non-blank line (with the trailing \r of CRLF input trimmed), under the
// repository-wide torn-tail contract shared by every crash-safe JSONL
// reader:
//
//   - a record is committed only once its trailing newline is on disk:
//     an unterminated final line is truncation debris — even if it
//     happens to parse — and is never handed to parse;
//   - a parse error on the FINAL record is truncation — the signature of
//     a writer killed mid-append — and is swallowed;
//   - a parse error with complete records after it is corruption and is
//     returned;
//   - an error wrapped with Fatal aborts immediately, final line or not.
//
// It returns the byte offset just past the last accepted record — always
// a newline boundary — which append-mode writers use to truncate the
// torn debris before continuing (the repair OpenJournal and AppendJSONL
// perform). Accepting a valid-but-unterminated final record would split
// readers from writers: RepairTail truncates it, and appending after it
// without the repair would weld two records onto one line.
func ScanTornTail(data []byte, parse func(line int, raw []byte) error) (goodEnd int64, err error) {
	var (
		offset     int64
		pendingErr error
		line       int
	)
	for len(data) > 0 {
		line++
		raw := data
		consumed := len(data)
		terminated := false
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw = data[:i]
			consumed = i + 1
			terminated = true
		}
		data = data[consumed:]
		offset += int64(consumed)
		if len(raw) > 0 && raw[len(raw)-1] == '\r' {
			raw = raw[:len(raw)-1]
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			if terminated {
				goodEnd = offset
			}
			continue
		}
		if pendingErr != nil {
			// A further record followed the bad one: real corruption.
			return goodEnd, pendingErr
		}
		if !terminated {
			// Unterminated final line: the newline never reached the
			// disk, so the record was never committed. Truncation.
			break
		}
		if perr := parse(line, raw); perr != nil {
			var fe *fatalError
			if errors.As(perr, &fe) {
				return goodEnd, perr
			}
			pendingErr = perr
			continue
		}
		goodEnd = offset
	}
	// pendingErr on the final line is truncation: drop the partial record.
	return goodEnd, nil
}

// RepairTail returns the prefix length of data ending at the last
// newline: everything after it is, at most, one torn record (a JSON
// record never contains a raw newline, so a torn append can never span
// one). Append-mode writers truncate to this length before continuing.
func RepairTail(data []byte) int64 {
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		return int64(i + 1)
	}
	return 0
}
