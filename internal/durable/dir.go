package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// Dir is a completeness-marker directory bundle: data files are written
// and fsynced one at a time, then Commit writes a marker file last and
// fsyncs the directory. Readers treat a directory without its marker as
// the debris of a dying process and skip it — so a bundle is visible
// either whole or not at all, the black-box postmortem contract.
type Dir struct {
	fsys  FS
	path  string
	label string
}

// CreateDir creates (or reuses) the bundle directory at path. label
// names the artifact in kill points and error messages.
func CreateDir(fsys FS, path, label string) (*Dir, error) {
	fsys = fsOr(fsys)
	if err := fsys.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create %s bundle: %w", label, err)
	}
	return &Dir{fsys: fsys, path: path, label: label}, nil
}

// Path returns the bundle directory path.
func (d *Dir) Path() string { return d.path }

// WriteFile writes one data file into the bundle, fsynced before
// returning.
func (d *Dir) WriteFile(name string, data []byte) error {
	if err := d.writeFile(name, data); err != nil {
		return err
	}
	hit(Point(d.label, SiteFileWritten))
	return nil
}

func (d *Dir) writeFile(name string, data []byte) error {
	f, err := d.fsys.OpenFile(filepath.Join(d.path, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create %s/%s: %w", d.label, name, err)
	}
	err = writeMaybeTorn(f, data, Point(d.label, SiteFileTorn))
	if serr := SyncClose(f); err == nil {
		err = serr
	}
	if err != nil {
		return fmt.Errorf("durable: write %s/%s: %w", d.label, name, err)
	}
	return nil
}

// Create opens one data file inside the bundle for streaming writers
// (profile WriteTo, metrics dumps). The caller finishes it with
// SyncClose so the file is durable before the bundle commits.
func (d *Dir) Create(name string) (File, error) {
	f, err := d.fsys.OpenFile(filepath.Join(d.path, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: create %s/%s: %w", d.label, name, err)
	}
	return f, nil
}

// Commit writes the completeness marker (last) and fsyncs the bundle
// directory. Only after Commit returns may readers consider the bundle
// complete.
func (d *Dir) Commit(markerName string, markerData []byte) error {
	hit(Point(d.label, SiteBeforeMarker))
	if err := d.writeFile(markerName, markerData); err != nil {
		return err
	}
	hit(Point(d.label, SiteMarkerWritten))
	if err := SyncDir(d.fsys, d.path); err != nil {
		return fmt.Errorf("durable: sync %s bundle: %w", d.label, err)
	}
	return nil
}
