package durable

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JSONL is the append-mode JSONL artifact writer: one JSON record per
// line, each Append flushed to the kernel before it returns, the file
// fsynced on Close. A process killed at any instant loses at most the
// record being written, and readers built on ScanTornTail drop exactly
// that torn tail.
//
// The first write error is retained: later records are dropped, and Err
// and Close report it. All methods are safe for concurrent use.
type JSONL struct {
	mu    sync.Mutex
	f     File
	w     *bufio.Writer
	label string
	err   error
}

// CreateJSONL creates (truncating) a fresh JSONL artifact at path. label
// names the artifact in kill points and error messages.
func CreateJSONL(fsys FS, path, label string) (*JSONL, error) {
	f, err := fsOr(fsys).OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: create %s: %w", label, err)
	}
	return Adopt(f, label), nil
}

// AppendJSONL opens path for appending, creating it if absent. A torn
// final line left by a killed writer is truncated away first, so the
// artifact self-heals: the new records always follow a complete one.
func AppendJSONL(fsys FS, path, label string) (*JSONL, error) {
	fsys = fsOr(fsys)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", label, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: read %s: %w", label, err)
	}
	good := RepairTail(data)
	if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: repair %s tail: %w", label, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: seek %s: %w", label, err)
	}
	return Adopt(f, label), nil
}

// Adopt wraps an already-open, already-positioned file (the resume
// journal opens, repairs, and seeks its file itself before handing it
// over). The JSONL takes ownership: Close closes f.
func Adopt(f File, label string) *JSONL {
	return &JSONL{f: f, w: bufio.NewWriter(f), label: label}
}

// Append marshals v and appends it as one line, flushed through to the
// kernel before returning. After a write error every further Append
// returns (and is absorbed into) the first error.
func (j *JSONL) Append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("durable: marshal %s record: %w", j.label, err)
	}
	return j.AppendLine(b)
}

// AppendLine appends one pre-encoded record (no trailing newline).
func (j *JSONL) AppendLine(rec []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.f == nil {
		j.err = fmt.Errorf("durable: %s: append after close", j.label)
		return j.err
	}
	line := make([]byte, 0, len(rec)+1)
	line = append(line, rec...)
	line = append(line, '\n')
	var err error
	if tornSplit() {
		// A kill point is armed: split the record across two flushes so
		// dying at SiteAppendTorn leaves a genuinely torn tail on disk.
		half := len(line) / 2
		if _, err = j.w.Write(line[:half]); err == nil {
			err = j.w.Flush()
		}
		hit(Point(j.label, SiteAppendTorn))
		if err == nil {
			if _, err = j.w.Write(line[half:]); err == nil {
				err = j.w.Flush()
			}
		}
	} else {
		if _, err = j.w.Write(line); err == nil {
			err = j.w.Flush()
		}
	}
	hit(Point(j.label, SiteAppendFull))
	if err != nil {
		j.err = fmt.Errorf("durable: write %s: %w", j.label, err)
	}
	return j.err
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Sync flushes buffered bytes and fsyncs the file without closing it.
func (j *JSONL) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	err := j.err
	if ferr := j.w.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("durable: flush %s: %w", j.label, ferr)
	}
	if serr := j.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("durable: sync %s: %w", j.label, serr)
	}
	if j.err == nil {
		j.err = err
	}
	return err
}

// Close flushes, fsyncs, and closes the artifact, returning the first
// error seen over the writer's lifetime. Repeated calls are no-ops.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	err := j.err
	if ferr := j.w.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("durable: flush %s: %w", j.label, ferr)
	}
	if serr := j.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("durable: sync %s: %w", j.label, serr)
	}
	if cerr := j.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("durable: close %s: %w", j.label, cerr)
	}
	j.f = nil
	if j.err == nil {
		j.err = err
	}
	return err
}
