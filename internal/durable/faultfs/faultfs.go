// Package faultfs wraps a durable.FS with a seeded, deterministic
// schedule of disk faults — short writes, ENOSPC, EIO on fsync, failed
// renames — in the same idiom as extract.Flaky wraps an Extractor: each
// fault decision is a pure function of (seed, path, op, attempt), so two
// runs with the same seed fault identically and any failure a soak run
// surfaces is reproducible from the printed seed alone.
//
// The wrapper injects errors only; it never corrupts data silently. A
// short write reports the truncated byte count exactly as a full disk
// would, and a Sync error leaves whatever subset of the data the kernel
// accepted — the two failure shapes the durable writers must surface,
// never swallow.
package faultfs

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"adaptiverank/internal/durable"
)

// ErrInjected marks every fault this package produces, so callers can
// distinguish injected faults from real disk errors with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// Options configures the deterministic fault schedule. All rates are
// probabilities in [0, 1], evaluated independently per (path, op,
// attempt) from the seed alone.
type Options struct {
	// Seed drives the whole schedule; runs with equal seeds fault
	// identically.
	Seed int64
	// OpenErrRate is the per-attempt probability that OpenFile fails
	// with a wrapped EIO.
	OpenErrRate float64
	// WriteErrRate is the per-attempt probability that a Write fails
	// with a wrapped ENOSPC after writing nothing.
	WriteErrRate float64
	// ShortWriteRate is the per-attempt probability that a Write stores
	// only half its payload before reporting ENOSPC — the torn-record
	// producer.
	ShortWriteRate float64
	// SyncErrRate is the per-attempt probability that Sync fails with a
	// wrapped EIO (the data may or may not have reached the platter —
	// exactly the ambiguity real fsync failures carry).
	SyncErrRate float64
	// RenameErrRate is the per-attempt probability that Rename fails
	// with a wrapped EIO, leaving the temp file in place.
	RenameErrRate float64
}

// Enabled reports whether the schedule can produce any fault.
func (o Options) Enabled() bool {
	return o.OpenErrRate > 0 || o.WriteErrRate > 0 || o.ShortWriteRate > 0 ||
		o.SyncErrRate > 0 || o.RenameErrRate > 0
}

// FS wraps an inner durable.FS with the fault schedule. Attempt counters
// are per (path, op), so a retrying caller walks a fixed fault sequence,
// and Faults reports how many faults fired — a soak harness asserts it is
// non-zero to prove the schedule actually exercised the error paths.
type FS struct {
	inner  durable.FS
	opts   Options
	faults atomic.Int64

	mu       sync.Mutex
	attempts map[string]int
}

// New wraps inner (nil selects the real filesystem) with the schedule.
func New(inner durable.FS, opts Options) *FS {
	if inner == nil {
		inner = durable.OS
	}
	return &FS{inner: inner, opts: opts, attempts: make(map[string]int)}
}

// Faults returns how many injected faults have fired so far.
func (f *FS) Faults() int64 { return f.faults.Load() }

// OpenFile implements durable.FS.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (durable.File, error) {
	if f.roll(name, "open") < f.opts.OpenErrRate {
		f.faults.Add(1)
		return nil, fmt.Errorf("open %s: %w: %w", name, syscall.EIO, ErrInjected)
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: inner, fs: f, name: name}, nil
}

// Rename implements durable.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if f.roll(newpath, "rename") < f.opts.RenameErrRate {
		f.faults.Add(1)
		return fmt.Errorf("rename %s: %w: %w", newpath, syscall.EIO, ErrInjected)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements durable.FS. Removal never faults: cleanup paths
// should stay clean so a test failure always points at the write path.
func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

// MkdirAll implements durable.FS.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// ReadFile implements durable.FS. Reads never fault: the schedule
// attacks durability, not availability.
func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Stat implements durable.FS.
func (f *FS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// roll decides one fault for (path, op), consuming one attempt.
func (f *FS) roll(path, op string) float64 {
	f.mu.Lock()
	key := path + "\x00" + op
	f.attempts[key]++
	attempt := f.attempts[key]
	f.mu.Unlock()
	// Same derivation as extract.Flaky.roll: FNV-64a over the identity
	// tuple, top 53 bits as a uniform float in [0, 1).
	h := fnv.New64a()
	var buf [20]byte
	putInt64(buf[0:8], f.opts.Seed)
	putInt64(buf[8:16], int64(len(path))) // cheap discriminator before the strings
	putInt64(buf[16:20], int64(attempt))
	h.Write(buf[:])
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write([]byte(op))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func putInt64(b []byte, v int64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}

// file wraps a durable.File with the write-side fault schedule.
type file struct {
	durable.File
	fs   *FS
	name string
}

// Write injects full failures (nothing stored, ENOSPC) and short writes
// (half stored, ENOSPC) per the schedule.
func (f *file) Write(p []byte) (int, error) {
	if f.fs.roll(f.name, "write") < f.fs.opts.WriteErrRate {
		f.fs.faults.Add(1)
		return 0, fmt.Errorf("write %s: %w: %w", f.name, syscall.ENOSPC, ErrInjected)
	}
	if f.fs.roll(f.name, "short-write") < f.fs.opts.ShortWriteRate {
		f.fs.faults.Add(1)
		half := len(p) / 2
		n, err := f.File.Write(p[:half])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("write %s: %w: %w", f.name, syscall.ENOSPC, ErrInjected)
	}
	return f.File.Write(p)
}

// Sync injects fsync failures per the schedule.
func (f *file) Sync() error {
	if f.fs.roll(f.name, "sync") < f.fs.opts.SyncErrRate {
		f.fs.faults.Add(1)
		return fmt.Errorf("sync %s: %w: %w", f.name, syscall.EIO, ErrInjected)
	}
	return f.File.Sync()
}
