package faultfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"adaptiverank/internal/durable"
)

// TestDeterministic proves the core property: two FS values with the
// same seed produce the same fault sequence over the same operations.
func TestDeterministic(t *testing.T) {
	opts := Options{Seed: 42, WriteErrRate: 0.3, SyncErrRate: 0.3, ShortWriteRate: 0.2}
	// Faults key on the full path string, so determinism is compared for
	// two FS values over the SAME directory.
	dir := t.TempDir()
	runIn := func() []string {
		fs := New(nil, opts)
		var out []string
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("f%d.jsonl", i%4)
			j, err := durable.CreateJSONL(fs, filepath.Join(dir, name), name)
			if err != nil {
				out = append(out, "create-err")
				continue
			}
			if err := j.Append(map[string]int{"i": i}); err != nil {
				out = append(out, "append-err")
			}
			if err := j.Close(); err != nil {
				out = append(out, "close-err")
			} else {
				out = append(out, "ok")
			}
		}
		return out
	}
	a, b := runIn(), runIn()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q\n%v\n%v", i, a[i], b[i], a, b)
		}
	}
}

func TestFaultsFireAndAreMarked(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Options{Seed: 7, WriteErrRate: 0.5, SyncErrRate: 0.5})
	var sawInjected bool
	for i := 0; i < 30; i++ {
		j, err := durable.CreateJSONL(fs, filepath.Join(dir, "x.jsonl"), "x")
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("non-injected create error: %v", err)
			}
			sawInjected = true
			continue
		}
		if err := j.Append(map[string]int{"i": i}); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("non-injected append error: %v", err)
			}
			sawInjected = true
		}
		if err := j.Close(); err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("non-injected close error: %v", err)
		}
	}
	if !sawInjected {
		t.Fatal("no injected faults at 50% rates over 30 iterations")
	}
	if fs.Faults() == 0 {
		t.Fatal("Faults() = 0 despite observed faults")
	}
}

func TestErrnoWrapping(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Options{Seed: 1, WriteErrRate: 1})
	j, err := durable.CreateJSONL(fs, filepath.Join(dir, "x.jsonl"), "x")
	if err != nil {
		t.Fatal(err)
	}
	werr := j.Append(map[string]int{"i": 1})
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("write fault does not wrap ENOSPC: %v", werr)
	}
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("write fault does not wrap ErrInjected: %v", werr)
	}
}

func TestShortWriteLeavesHalf(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	fs := New(nil, Options{Seed: 3, ShortWriteRate: 1})
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, werr := f.Write(payload)
	if werr == nil {
		t.Fatal("short write did not error")
	}
	if n != len(payload)/2 {
		t.Fatalf("short write stored %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "01234" {
		t.Fatalf("on-disk after short write = %q", data)
	}
}

func TestAtomicWriteNeverTearsTarget(t *testing.T) {
	// Under any fault schedule, WriteFileAtomic either succeeds fully or
	// leaves the previous contents intact — the target is never torn.
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := durable.WriteFileAtomic(nil, path, []byte("v0"), 0o644, "soak"); err != nil {
		t.Fatal(err)
	}
	last := "v0"
	for seed := int64(0); seed < 40; seed++ {
		fs := New(nil, Options{
			Seed: seed, WriteErrRate: 0.2, ShortWriteRate: 0.2,
			SyncErrRate: 0.2, RenameErrRate: 0.2, OpenErrRate: 0.1,
		})
		next := fmt.Sprintf("v%d", seed+1)
		err := durable.WriteFileAtomic(fs, path, []byte(next), 0o644, "soak")
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("seed %d: target unreadable: %v", seed, rerr)
		}
		// On success the target holds the new contents. On failure it
		// holds either the old contents (fault before the rename) or the
		// new ones (the rename landed, only the directory sync failed) —
		// both complete; a torn mix is the one forbidden outcome.
		switch string(got) {
		case next:
			last = next
		case last:
			if err == nil {
				t.Fatalf("seed %d: clean write left old contents %q", seed, got)
			}
		default:
			t.Fatalf("seed %d: target = %q, want %q or %q (err=%v) — torn write observed", seed, got, last, next, err)
		}
	}
}

func TestDisabledScheduleIsTransparent(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Options{Seed: 5})
	if fs.opts.Enabled() {
		t.Fatal("zero options report Enabled")
	}
	j, err := durable.CreateJSONL(fs, filepath.Join(dir, "x.jsonl"), "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := j.Append(map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Faults() != 0 {
		t.Fatalf("disabled schedule fired %d faults", fs.Faults())
	}
}
