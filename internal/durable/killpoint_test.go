package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// killAt runs fn with point armed in panic mode and reports whether the
// injected death fired.
func killAt(t *testing.T, point string, skip int, fn func()) (died bool) {
	t.Helper()
	Arm(point, KillModePanic, skip)
	defer Disarm()
	defer func() {
		if r := recover(); r != nil {
			var k *Killed
			if err, ok := r.(error); ok && errors.As(err, &k) {
				if k.Point != point {
					t.Fatalf("died at %s, armed %s", k.Point, point)
				}
				died = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}

func TestKillPointTornAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	j, err := CreateJSONL(nil, path, "kp")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{N: 0}); err != nil {
		t.Fatal(err)
	}
	died := killAt(t, Point("kp", SiteAppendTorn), 0, func() {
		j.Append(rec{N: 1, S: "this record will be torn"})
	})
	if !died {
		t.Fatal("armed kill point did not fire")
	}
	// The first half of the record was flushed before the kill: the file
	// must end mid-record, and AppendJSONL must repair it back to the
	// last complete record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] == '\n' {
		t.Fatalf("file ends on a record boundary; expected a torn tail: %q", data)
	}
	j2, err := AppendJSONL(nil, path, "kp")
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	repaired, _ := os.ReadFile(path)
	if string(repaired) != "{\"n\":0,\"s\":\"\"}\n" {
		t.Fatalf("repaired file = %q", repaired)
	}
}

func TestKillPointAtomicBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	died := killAt(t, Point("kp2", SiteTmpSynced), 0, func() {
		WriteFileAtomic(nil, path, []byte("payload"), 0o644, "kp2")
	})
	if !died {
		t.Fatal("armed kill point did not fire")
	}
	// Death before rename: no target, complete temp.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("target exists despite dying before rename")
	}
	if got, err := os.ReadFile(path + ".tmp"); err != nil || string(got) != "payload" {
		t.Fatalf("temp = %q, %v", got, err)
	}
}

func TestKillPointDirBeforeMarker(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	d, err := CreateDir(nil, dir, "kp3")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("data.json", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	died := killAt(t, Point("kp3", SiteBeforeMarker), 0, func() {
		d.Commit("meta.json", []byte("{}"))
	})
	if !died {
		t.Fatal("armed kill point did not fire")
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.json")); !os.IsNotExist(err) {
		t.Fatal("marker written despite dying before it")
	}
}

func TestKillSkipCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	j, err := CreateJSONL(nil, path, "kp4")
	if err != nil {
		t.Fatal(err)
	}
	appended := 0
	died := killAt(t, Point("kp4", SiteAppendFull), 2, func() {
		for i := 0; i < 10; i++ {
			if err := j.Append(rec{N: i}); err != nil {
				t.Fatal(err)
			}
			appended++
		}
	})
	if !died {
		t.Fatal("armed kill point did not fire")
	}
	// skip=2 means the third pass dies: two appends returned cleanly.
	if appended != 2 {
		t.Fatalf("completed appends = %d, want 2", appended)
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Setenv(EnvKillPoint, Point("envkp", SiteAppendFull))
	t.Setenv(EnvKillMode, KillModePanic)
	t.Setenv(EnvKillSkip, "1")
	ArmFromEnv()
	defer Disarm()

	path := filepath.Join(t.TempDir(), "a.jsonl")
	j, err := CreateJSONL(nil, path, "envkp")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{N: 0}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second append did not die")
			}
		}()
		j.Append(rec{N: 1})
	}()
}

func TestArmFromEnvNoop(t *testing.T) {
	t.Setenv(EnvKillPoint, "")
	ArmFromEnv()
	if killArmed.Load() {
		t.Fatal("ArmFromEnv armed with no env var set")
	}
}

func TestPointsRecorded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	// Arm an unreachable point so hit() records traffic without dying.
	Arm("never:never", KillModePanic, 0)
	defer Disarm()
	j, err := CreateJSONL(nil, path, "ptrec")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{N: 0}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range Points() {
		if p == Point("ptrec", SiteAppendFull) {
			found = true
		}
	}
	if !found {
		t.Fatalf("Points() = %v, missing ptrec:append-full", Points())
	}
}
