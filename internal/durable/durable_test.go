package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func TestJSONLAppendAndScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	j, err := CreateJSONL(nil, path, "test")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(rec{N: i, S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	end, err := ScanTornTail(data, func(_ int, raw []byte) error {
		var r rec
		if err := json.Unmarshal(raw, &r); err != nil {
			return err
		}
		got = append(got, r.N)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != int64(len(data)) {
		t.Fatalf("goodEnd = %d, want %d", end, len(data))
	}
	if len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Fatalf("records = %v", got)
	}
}

func TestJSONLAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	j, err := CreateJSONL(nil, path, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{N: 1}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestAppendJSONLSelfHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	// Two complete records plus a torn third: exactly what a writer
	// killed mid-append leaves behind.
	torn := "{\"n\":0}\n{\"n\":1}\n{\"n\":2,\"s\":\"trunc"
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := AppendJSONL(nil, path, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{N: 9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "{\"n\":0}\n{\"n\":1}\n{\"n\":9,\"s\":\"\"}\n"
	if string(data) != want {
		t.Fatalf("file after self-heal = %q, want %q", data, want)
	}
}

func TestScanTornTailContract(t *testing.T) {
	parse := func(_ int, raw []byte) error {
		var r rec
		return json.Unmarshal(raw, &r)
	}
	t.Run("torn final line swallowed", func(t *testing.T) {
		data := []byte("{\"n\":0}\n{\"n\":1")
		end, err := ScanTornTail(data, parse)
		if err != nil {
			t.Fatal(err)
		}
		if end != 8 {
			t.Fatalf("goodEnd = %d, want 8", end)
		}
	})
	t.Run("valid but unterminated final line is still truncation", func(t *testing.T) {
		// The newline never reached the disk, so the record was never
		// committed — accepting it would diverge from RepairTail and
		// weld the next append onto the same line.
		data := []byte("{\"n\":0}\n{\"n\":1}")
		seen := 0
		end, err := ScanTornTail(data, func(_ int, raw []byte) error {
			seen++
			var r rec
			return json.Unmarshal(raw, &r)
		})
		if err != nil {
			t.Fatal(err)
		}
		if end != 8 {
			t.Fatalf("goodEnd = %d, want 8 (newline boundary)", end)
		}
		if seen != 1 {
			t.Fatalf("parse saw %d records, want 1: the uncommitted tail must not be handed to parse", seen)
		}
		if end != RepairTail(data) {
			t.Fatalf("ScanTornTail goodEnd %d != RepairTail %d: reader and writer repair disagree", end, RepairTail(data))
		}
	})
	t.Run("mid-file corruption errors", func(t *testing.T) {
		data := []byte("{\"n\":0}\nnot json\n{\"n\":2}\n")
		if _, err := ScanTornTail(data, parse); err == nil {
			t.Fatal("mid-file corruption not reported")
		}
	})
	t.Run("blank lines advance goodEnd", func(t *testing.T) {
		data := []byte("{\"n\":0}\n\n")
		end, err := ScanTornTail(data, parse)
		if err != nil || end != int64(len(data)) {
			t.Fatalf("end=%d err=%v", end, err)
		}
	})
	t.Run("crlf tolerated", func(t *testing.T) {
		data := []byte("{\"n\":0}\r\n{\"n\":1}\r\n")
		n := 0
		_, err := ScanTornTail(data, func(_ int, raw []byte) error {
			n++
			var r rec
			return json.Unmarshal(raw, &r)
		})
		if err != nil || n != 2 {
			t.Fatalf("n=%d err=%v", n, err)
		}
	})
	t.Run("fatal aborts even on final line", func(t *testing.T) {
		sentinel := errors.New("wrong fingerprint")
		data := []byte("{\"n\":0}\n")
		_, err := ScanTornTail(data, func(_ int, _ []byte) error {
			return Fatal(sentinel)
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want wrapped sentinel", err)
		}
	})
}

func TestRepairTail(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"", 0},
		{"{\"n\":0}", 0},
		{"{\"n\":0}\n", 8},
		{"{\"n\":0}\n{\"n\":1", 8},
	}
	for _, c := range cases {
		if got := RepairTail([]byte(c.in)); got != c.want {
			t.Errorf("RepairTail(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(nil, path, []byte("v1"), 0o644, "test"); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("contents = %q", got)
	}
	// Overwrite: the old complete contents are replaced wholesale.
	if err := WriteFileAtomic(nil, path, []byte("version-two"), 0o644, "test"); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "version-two" {
		t.Fatalf("contents = %q", got)
	}
	// No temp debris after success.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stale temp file: %v", err)
	}
}

func TestWriteFileAtomicLeavesOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(nil, path, []byte("old"), 0o644, "test"); err != nil {
		t.Fatal(err)
	}
	failing := &failFS{FS: OS, failSyncOn: path + ".tmp"}
	err := WriteFileAtomic(failing, path, []byte("new"), 0o644, "test")
	if err == nil {
		t.Fatal("write with failing Sync succeeded")
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("target after failed write = %q, want old contents intact", got)
	}
	if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatalf("temp not cleaned up after failure")
	}
}

func TestDirCommitMarkerLast(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	d, err := CreateDir(nil, dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("data.json", []byte(`{"k":1}`)); err != nil {
		t.Fatal(err)
	}
	f, err := d.Create("stream.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("streamed")); err != nil {
		t.Fatal(err)
	}
	if err := SyncClose(f); err != nil {
		t.Fatal(err)
	}
	// Pre-commit: no marker on disk.
	if _, err := os.Stat(filepath.Join(dir, "meta.json")); !os.IsNotExist(err) {
		t.Fatal("marker exists before Commit")
	}
	if err := d.Commit("meta.json", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"data.json", "stream.txt", "meta.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s after Commit: %v", name, err)
		}
	}
}

func TestSyncCloseSurfacesSyncError(t *testing.T) {
	f := &fakeFile{syncErr: errors.New("EIO")}
	err := SyncClose(f)
	if err == nil || !strings.Contains(err.Error(), "EIO") {
		t.Fatalf("SyncClose = %v, want the Sync error", err)
	}
	if !f.closed {
		t.Fatal("file not closed after Sync error")
	}
}

// failFS fails Sync on one specific path, modelling a disk that errors
// while flushing.
type failFS struct {
	FS
	failSyncOn string
}

func (f *failFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if name == f.failSyncOn {
		return &fakeFile{File: inner, syncErr: fmt.Errorf("injected sync error on %s", name)}, nil
	}
	return inner, nil
}

// fakeFile wraps an optional real file, overriding Sync/Close behaviour.
type fakeFile struct {
	File
	syncErr error
	closed  bool
}

func (f *fakeFile) Sync() error {
	if f.syncErr != nil {
		return f.syncErr
	}
	return f.File.Sync()
}

func (f *fakeFile) Close() error {
	f.closed = true
	if f.File != nil {
		return f.File.Close()
	}
	return nil
}
