package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path all-or-nothing: a sibling temp
// file is written and fsynced, renamed over the target, and the
// directory fsynced so the rename itself survives a crash. A reader
// never observes a half-written target — after a crash at any instant
// the path either holds its previous complete contents (or is absent)
// or the new complete contents; at worst a stale "<path>.tmp" sibling
// remains, which no reader looks at.
//
// The temp name is deterministic (path + ".tmp"), which is safe because
// every artifact has a single writer; a leftover temp from a crashed
// predecessor is simply truncated and replaced.
func WriteFileAtomic(fsys FS, path string, data []byte, perm os.FileMode, label string) error {
	fsys = fsOr(fsys)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return fmt.Errorf("durable: create %s temp: %w", label, err)
	}
	err = writeMaybeTorn(f, data, Point(label, SiteTmpTorn))
	hit(Point(label, SiteTmpWritten))
	if err == nil {
		err = f.Sync()
	}
	hit(Point(label, SiteTmpSynced))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: write %s temp: %w", label, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: commit %s: %w", label, err)
	}
	hit(Point(label, SiteRenamed))
	if err := SyncDir(fsys, filepath.Dir(path)); err != nil {
		return fmt.Errorf("durable: sync %s directory: %w", label, err)
	}
	return nil
}

// writeMaybeTorn writes data to f in one call — or, while a kill point
// is armed, in two halves around tornPoint so dying there leaves a
// half-written file on disk.
func writeMaybeTorn(f File, data []byte, tornPoint string) error {
	if !tornSplit() {
		_, err := f.Write(data)
		return err
	}
	half := len(data) / 2
	// The first half reaches the kernel in its own Write syscall, so a
	// SIGKILL at the torn point leaves exactly half the file behind.
	_, err := f.Write(data[:half])
	hit(tornPoint)
	if err == nil {
		_, err = f.Write(data[half:])
	}
	return err
}
