// Package durable is the single artifact-durability layer of the
// repository: every crash-safe file this system writes — the pipeline's
// resume journal, the explain log, the profile manifest, black-box
// postmortem bundles, the event trace, and the result/bench/corpus JSON
// dumps — goes through one of its three writers instead of hand-rolled
// os.Create/fsync sequences.
//
// The three durability shapes, and the recovery contract each one
// guarantees after a crash at ANY instant (power loss, SIGKILL, panic):
//
//   - JSONL append writers (CreateJSONL/AppendJSONL): every record is
//     flushed to the kernel before Append returns and the file is fsynced
//     on Close. A crash loses at most the record being written; readers
//     built on ScanTornTail drop exactly that torn tail, and AppendJSONL
//     truncates it away before appending new records.
//
//   - Atomic whole-file writes (WriteFileAtomic): temp file in the same
//     directory, write, fsync, rename over the target, fsync the
//     directory. A reader never observes a half-written file — the target
//     either holds the old complete contents or the new complete
//     contents, with at most a stale ".tmp" sibling left to ignore.
//
//   - Completeness-marker directory bundles (CreateDir/Dir.Commit): data
//     files are written and fsynced one by one, then a marker file is
//     written last and the directory fsynced. A bundle without its marker
//     is a partial bundle from a dying process; readers skip it.
//
// All writers take an FS so tests can inject deterministic disk faults
// (internal/durable/faultfs) and the crash harness (cmd/crashtest) can
// kill the process at every registered write site; passing a nil FS
// selects the real filesystem.
package durable

import (
	"io"
	"os"
)

// File is the subset of *os.File the durability layer needs. It is the
// write-side seam fault injection wraps.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	// Truncate cuts the file to size (torn-tail repair).
	Truncate(size int64) error
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Close closes the file.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem seam every durable writer goes through. The
// production implementation is OS; internal/durable/faultfs wraps any FS
// with a seeded, deterministic fault schedule.
type FS interface {
	// OpenFile opens a file like os.OpenFile. Opening a directory
	// read-only is supported (SyncDir relies on it).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath, like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file, like os.Remove.
	Remove(name string) error
	// MkdirAll creates a directory tree, like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// ReadFile reads a whole file, like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Stat stats a path, like os.Stat.
	Stat(name string) (os.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)    { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)   { return os.Stat(name) }

// fsOr returns fsys, defaulting a nil FS to the real filesystem, so call
// sites can thread an optional seam without nil checks.
func fsOr(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// OpenTrunc creates (truncating) a file for a streaming writer — profile
// WriteTo, metrics dumps — that the caller finishes with SyncClose. It
// is the durable replacement for bare os.Create at artifact sites whose
// payload is produced incrementally.
func OpenTrunc(fsys FS, path string) (File, error) {
	return fsOr(fsys).OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// SyncClose syncs f to stable storage and closes it, returning the first
// error: a Sync failure is not masked by a successful Close, and a Close
// failure after a clean Sync still surfaces. This is the one place the
// `if serr := f.Sync(); err == nil`-style close choreography lives.
func SyncClose(f File) error {
	err := f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SyncDir fsyncs a directory, making a preceding rename or file creation
// in it durable. POSIX only guarantees the new directory entry survives a
// crash once the directory itself is synced.
func SyncDir(fsys FS, dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := fsOr(fsys).OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	return SyncClose(d)
}
