package durable

// Kill points name the instants inside durable's write paths where a
// crash is most damaging: half a record written, a temp file written but
// not yet renamed, a bundle full of data files with no completeness
// marker. The chaos harness (cmd/crashtest) arms exactly one point and
// runs the real pipeline; when a writer reaches the armed point the
// process dies — by panic in-process, or by delivering itself SIGKILL in
// subprocess mode — and the harness then verifies that every reader
// recovers per the package contract.
//
// A point is "<label>:<site>": the label names the artifact (each writer
// is constructed with one — "journal", "explain", "result", ...) and the
// site names the write-path instant, one of the Site* constants. Arming
// is process-global; the disarmed fast path is a single atomic load, so
// production runs pay nothing.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Write-path sites, grouped by writer shape.
const (
	// JSONL append-writer sites.

	// SiteAppendTorn fires after the first half of a record has reached
	// the kernel and before the rest: dying here leaves a torn tail.
	SiteAppendTorn = "append-torn"
	// SiteAppendFull fires after a record has been fully written and
	// flushed: dying here leaves a complete, unsynced record.
	SiteAppendFull = "append-full"

	// Atomic whole-file-writer sites.

	// SiteTmpTorn fires with half the temp file written.
	SiteTmpTorn = "tmp-torn"
	// SiteTmpWritten fires after the temp file is fully written, before
	// its fsync.
	SiteTmpWritten = "tmp-written"
	// SiteTmpSynced fires after the temp-file fsync, before the rename:
	// dying here leaves a complete .tmp and no target.
	SiteTmpSynced = "tmp-synced"
	// SiteRenamed fires after the rename, before the directory fsync.
	SiteRenamed = "renamed"

	// Marker-bundle directory sites.

	// SiteFileTorn fires with half a bundle data file written.
	SiteFileTorn = "file-torn"
	// SiteFileWritten fires after each bundle data file is written and
	// synced: dying here leaves a markerless partial bundle.
	SiteFileWritten = "file-written"
	// SiteBeforeMarker fires with every data file durable but the
	// completeness marker not yet begun.
	SiteBeforeMarker = "before-marker"
	// SiteMarkerWritten fires after the marker file is written and
	// synced, before the directory fsync.
	SiteMarkerWritten = "marker-written"
)

// Site lists per writer shape, in write order. cmd/crashtest composes
// its kill-point matrix from these and the artifact labels it arms.
var (
	JSONLSites  = []string{SiteAppendTorn, SiteAppendFull}
	AtomicSites = []string{SiteTmpTorn, SiteTmpWritten, SiteTmpSynced, SiteRenamed}
	DirSites    = []string{SiteFileTorn, SiteFileWritten, SiteBeforeMarker, SiteMarkerWritten}
)

// Point composes a kill-point name from an artifact label and a site.
func Point(label, site string) string { return label + ":" + site }

// Kill modes.
const (
	// KillModePanic dies by panicking with a *Killed value; callers that
	// recover can identify the injected death with errors.As.
	KillModePanic = "panic"
	// KillModeKill dies by delivering SIGKILL to the own process: no
	// deferred cleanup, no buffer flushes — the closest in-process stand-in
	// for power loss.
	KillModeKill = "kill"
)

// Environment variables ArmFromEnv reads, set by cmd/crashtest on its
// child processes.
const (
	EnvKillPoint = "ADAPTIVERANK_KILL_POINT"
	EnvKillMode  = "ADAPTIVERANK_KILL_MODE"
	EnvKillSkip  = "ADAPTIVERANK_KILL_SKIP"
)

// Killed is the panic value of a KillModePanic death.
type Killed struct{ Point string }

func (k *Killed) Error() string { return fmt.Sprintf("durable: killed at %s", k.Point) }

var (
	killArmed atomic.Bool // fast-path gate; true only while a point is armed

	killMu    sync.Mutex
	killPoint string
	killMode  string
	killSkip  int

	pointsMu sync.Mutex
	points   = map[string]bool{} // every point passed or registered this process
)

// Arm schedules death at the skip+1-th time the process reaches point.
// mode is KillModePanic or KillModeKill. Only one point is armed at a
// time; Arm replaces any previous arming.
func Arm(point, mode string, skip int) {
	killMu.Lock()
	killPoint, killMode, killSkip = point, mode, skip
	killMu.Unlock()
	killArmed.Store(point != "")
}

// Disarm cancels any armed kill point.
func Disarm() { Arm("", KillModePanic, 0) }

// ArmFromEnv arms a kill point from the ADAPTIVERANK_KILL_* environment
// variables; it is a no-op when ADAPTIVERANK_KILL_POINT is unset. CLIs
// call it at startup so cmd/crashtest can aim at their write sites.
func ArmFromEnv() {
	point := os.Getenv(EnvKillPoint)
	if point == "" {
		return
	}
	mode := os.Getenv(EnvKillMode)
	if mode == "" {
		mode = KillModeKill
	}
	skip, _ := strconv.Atoi(os.Getenv(EnvKillSkip))
	Arm(point, mode, skip)
}

// Points returns every kill point this process has registered or passed,
// sorted. Mostly useful to harness code enumerating what a run exercised.
func Points() []string {
	pointsMu.Lock()
	defer pointsMu.Unlock()
	out := make([]string, 0, len(points))
	//lint:allow detrand collection order is erased by the sort below
	for p := range points {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// hit is called by the writers at each registered site. Disarmed, it is
// a single atomic load. Armed, it records the point and dies when the
// point matches and its skip count is exhausted.
func hit(point string) {
	if !killArmed.Load() {
		return
	}
	pointsMu.Lock()
	points[point] = true
	pointsMu.Unlock()
	killMu.Lock()
	if point != killPoint {
		killMu.Unlock()
		return
	}
	if killSkip > 0 {
		killSkip--
		killMu.Unlock()
		return
	}
	mode := killMode
	killMu.Unlock()
	if mode == KillModeKill {
		// Self-delivered SIGKILL: the kernel tears the process down with
		// no user-space cleanup, exactly like the OOM killer would. The
		// block below never returns.
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			p.Kill()
		}
		select {}
	}
	panic(&Killed{Point: point})
}

// tornSplit reports whether writers should take the two-stage
// (half-write, hit, half-write) path. It is true only while a kill point
// is armed, so production appends stay a single buffered write.
func tornSplit() bool { return killArmed.Load() }
