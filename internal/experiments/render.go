package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Line is one curve of a figure.
type Line struct {
	Name string
	// Y holds the curve values on the X grid.
	Y []float64
}

// Figure is a set of curves on a shared x-grid (the paper's line plots,
// rendered as a values table plus an ASCII sketch).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	// X is the shared grid (e.g. percent processed 0..100).
	X     []float64
	Lines []Line
	Notes []string
}

// At interpolates line li of the figure at x.
func (f *Figure) At(li int, x float64) float64 {
	xs, ys := f.X, f.Lines[li].Y
	if len(xs) == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			frac := (x - xs[i-1]) / (xs[i] - xs[i-1])
			return ys[i-1] + frac*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

// Line returns the curve with the given name, or nil.
func (f *Figure) Line(name string) []float64 {
	for _, l := range f.Lines {
		if l.Name == name {
			return l.Y
		}
	}
	return nil
}

// Render writes the figure as a values table sampled on (at most) 11 grid
// points.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", f.Title)
	fmt.Fprintf(w, "(%s vs %s)\n", f.YLabel, f.XLabel)
	// Sample up to 11 x positions.
	step := 1
	if len(f.X) > 11 {
		step = (len(f.X) + 10) / 11
	}
	var cols []int
	for i := 0; i < len(f.X); i += step {
		cols = append(cols, i)
	}
	if len(cols) == 0 || cols[len(cols)-1] != len(f.X)-1 {
		cols = append(cols, len(f.X)-1)
	}
	header := []string{pad(f.XLabel+":", 24)}
	for _, c := range cols {
		header = append(header, fmt.Sprintf("%8.4g", f.X[c]))
	}
	fmt.Fprintln(w, strings.Join(header, " "))
	for _, l := range f.Lines {
		row := []string{pad(l.Name, 24)}
		for _, c := range cols {
			v := 0.0
			if c < len(l.Y) {
				v = l.Y[c]
			}
			row = append(row, fmt.Sprintf("%8.3f", v))
		}
		fmt.Fprintln(w, strings.Join(row, " "))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
