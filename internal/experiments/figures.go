package experiments

import (
	"fmt"
	"time"

	"adaptiverank/internal/metrics"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/relation"
)

// pctGrid is the 0..100% x-axis of the recall figures.
func pctGrid() []float64 {
	x := make([]float64, 101)
	for i := range x {
		x[i] = float64(i)
	}
	return x
}

// recallFigure runs each spec Runs times and aggregates the recall curves.
func (e *Env) recallFigure(title string, specs []Spec) (*Figure, error) {
	fig := &Figure{
		Title:  title,
		XLabel: "Processed Documents (%)",
		YLabel: "Average Recall",
		X:      pctGrid(),
	}
	for _, spec := range specs {
		results, err := e.RunAll(spec)
		if err != nil {
			return nil, err
		}
		curves := make([][]float64, len(results))
		for i, r := range results {
			curves[i] = r.Curve
		}
		fig.Lines = append(fig.Lines, Line{Name: spec.Name(), Y: metrics.AggregateCurves(curves)})
	}
	return fig, nil
}

// baseRankerSpecs is the Figure 3/4/5 comparison: base (non-adaptive)
// ranking strategies against FC, Random, and Perfect, full access.
func baseRankerSpecs(rel relation.Relation) []Spec {
	return []Spec{
		{Rel: rel, Strategy: "Random"},
		{Rel: rel, Strategy: "Perfect"},
		{Rel: rel, Strategy: "BAgg-IE"},
		{Rel: rel, Strategy: "RSVM-IE"},
		{Rel: rel, Strategy: "FC"},
	}
}

// Figure3 reproduces Figure 3: average recall for Person–Charge under the
// base ranking generation techniques.
func (e *Env) Figure3() (*Figure, error) {
	return e.recallFigure("Figure 3: average recall, Person–Charge, base rankers (dev, full access)",
		baseRankerSpecs(relation.PH))
}

// Figure4 reproduces Figure 4 (Disease–Outbreak, sparse).
func (e *Env) Figure4() (*Figure, error) {
	return e.recallFigure("Figure 4: average recall, Disease–Outbreak, base rankers (dev, full access)",
		baseRankerSpecs(relation.DO))
}

// Figure5 reproduces Figure 5 (Person–Career, dense).
func (e *Env) Figure5() (*Figure, error) {
	return e.recallFigure("Figure 5: average recall, Person–Career, base rankers (dev, full access)",
		baseRankerSpecs(relation.PC))
}

// samplingSpecs is the Figure 6/7 matrix: base vs adaptive × SRS vs CQS.
func samplingSpecs(rel relation.Relation, strategy string) []Spec {
	return []Spec{
		{Rel: rel, Strategy: "Random"},
		{Rel: rel, Strategy: "Perfect"},
		{Rel: rel, Strategy: strategy, Sampling: "SRS"},
		{Rel: rel, Strategy: strategy, Sampling: "CQS"},
		{Rel: rel, Strategy: strategy, Sampling: "SRS", Detector: "Mod-C"},
		{Rel: rel, Strategy: strategy, Sampling: "CQS", Detector: "Mod-C"},
	}
}

// Figure6 reproduces Figure 6: Man Made Disaster–Location, RSVM-IE, base
// and adaptive versions under SRS and CQS sampling.
func (e *Env) Figure6() (*Figure, error) {
	fig, err := e.recallFigure("Figure 6: average recall, Man Made Disaster–Location, sampling × adaptation, RSVM-IE",
		samplingSpecs(relation.MD, "RSVM-IE"))
	if err != nil {
		return nil, err
	}
	relabelSampling(fig)
	return fig, nil
}

// Figure7 is the BAgg-IE companion of Figure 6.
func (e *Env) Figure7() (*Figure, error) {
	fig, err := e.recallFigure("Figure 7: average recall, Man Made Disaster–Location, sampling × adaptation, BAgg-IE",
		samplingSpecs(relation.MD, "BAgg-IE"))
	if err != nil {
		return nil, err
	}
	relabelSampling(fig)
	return fig, nil
}

// relabelSampling renames the sampling-matrix lines to the paper's
// Base/Adaptive nomenclature.
func relabelSampling(fig *Figure) {
	for i := range fig.Lines {
		switch {
		case i == 2:
			fig.Lines[i].Name = "Base SRS"
		case i == 3:
			fig.Lines[i].Name = "Base CQS"
		case i == 4:
			fig.Lines[i].Name = "Adaptive SRS"
		case i == 5:
			fig.Lines[i].Name = "Adaptive CQS"
		}
	}
}

// detectorSpecs is the Figure 8 matrix: update-detection techniques with
// RSVM-IE on Election–Winner, SRS sampling.
func detectorSpecs(rel relation.Relation) []Spec {
	return []Spec{
		{Rel: rel, Strategy: "Random"},
		{Rel: rel, Strategy: "Perfect"},
		{Rel: rel, Strategy: "RSVM-IE", Detector: "Wind-F"},
		{Rel: rel, Strategy: "RSVM-IE", Detector: "Feat-S"},
		{Rel: rel, Strategy: "RSVM-IE", Detector: "Top-K"},
		{Rel: rel, Strategy: "RSVM-IE", Detector: "Mod-C"},
	}
}

// Figure8 reproduces Figure 8: average recall for Election–Winner under
// the different update-detection methods.
func (e *Env) Figure8() (*Figure, error) {
	return e.recallFigure("Figure 8: average recall, Election–Winner, update detection methods, RSVM-IE",
		detectorSpecs(relation.EW))
}

// Figure9 reproduces Figure 9: the distribution of update positions across
// extraction deciles per update-detection technique.
func (e *Env) Figure9() (*Table, error) {
	t := &Table{
		Title: "Figure 9: distribution of updates over extraction deciles, Election–Winner, RSVM-IE",
		Header: []string{"Technique", "0-10%", "10-20%", "20-30%", "30-40%", "40-50%",
			"50-60%", "60-70%", "70-80%", "80-90%", "90-100%", "total"},
	}
	for _, det := range []string{"Wind-F", "Feat-S", "Top-K", "Mod-C"} {
		results, err := e.RunAll(Spec{Rel: relation.EW, Strategy: "RSVM-IE", Detector: det})
		if err != nil {
			return nil, err
		}
		deciles := make([]float64, 10)
		var total float64
		for _, r := range results {
			n := len(r.Order)
			if n == 0 {
				continue
			}
			for _, pos := range r.UpdatePositions {
				d := pos * 10 / (n + 1)
				if d > 9 {
					d = 9
				}
				deciles[d]++
				total++
			}
		}
		row := []string{det}
		for _, c := range deciles {
			row = append(row, fmt.Sprintf("%.1f", c/float64(len(results))))
		}
		row = append(row, fmt.Sprintf("%.1f", total/float64(len(results))))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "cells are average update counts per run in each extraction decile")
	return t, nil
}

// Figure10 reproduces Figure 10: CPU time as a function of collection size
// for different target recall values, Natural Disaster–Location.
func (e *Env) Figure10() (*Figure, error) {
	e.init()
	targets := []float64{0.25, 0.5, 0.75, 1.0}
	strategies := []string{"BAgg-IE", "RSVM-IE"}
	sizes := e.prefixSizes()
	fig := &Figure{
		Title:  "Figure 10: CPU minutes to reach target recall vs collection size, Natural Disaster–Location",
		XLabel: "Collection Size (%)",
		YLabel: "CPU Time (min)",
	}
	for _, n := range sizes {
		fig.X = append(fig.X, 100*float64(n)/float64(e.splits.Test.Len()))
	}
	for _, strat := range strategies {
		curves := make(map[float64][]float64)
		for _, n := range sizes {
			results, err := e.RunAll(Spec{
				Rel: relation.ND, Strategy: strat, Detector: "Mod-C",
				Test: true, Prefix: n,
			})
			if err != nil {
				return nil, err
			}
			for _, target := range targets {
				var mins float64
				for _, r := range results {
					mins += metrics.Minutes(timeToRecall(r, relation.ND, target))
				}
				curves[target] = append(curves[target], mins/float64(len(results)))
			}
		}
		for _, target := range targets {
			fig.Lines = append(fig.Lines, Line{
				Name: fmt.Sprintf("%s r=%.2f", strat, target),
				Y:    curves[target],
			})
		}
	}
	return fig, nil
}

// prefixSizes returns 10%..100% prefixes of the test split.
func (e *Env) prefixSizes() []int {
	n := e.splits.Test.Len()
	out := make([]int, 0, 10)
	for p := 1; p <= 10; p++ {
		out = append(out, n*p/10)
	}
	return out
}

// timeToRecall estimates the CPU time (simulated extraction + measured
// overhead, prorated over the processed prefix) needed to reach the target
// recall within one run.
func timeToRecall(r *pipeline.Result, rel relation.Relation, target float64) time.Duration {
	n := len(r.OrderLabels)
	if n == 0 {
		return 0
	}
	// Find the prefix length reaching the target.
	needed := n
	var seen, total float64
	for _, u := range r.OrderLabels {
		if u {
			total++
		}
	}
	if total == 0 {
		return r.Time.Total()
	}
	goal := target * total
	for i, u := range r.OrderLabels {
		if u {
			seen++
		}
		if seen >= goal {
			needed = i + 1
			break
		}
	}
	frac := float64(needed) / float64(n)
	sim := time.Duration(float64(rel.ExtractionCost()) * float64(needed))
	sampleSim := time.Duration(float64(rel.ExtractionCost()) * float64(r.SampleSize))
	overhead := time.Duration(float64(r.Time.Overhead()) * frac)
	return sim + sampleSim + overhead
}

// Figure11 reproduces Figure 11: CPU time to find a fixed number of useful
// documents (the count in the 10% subset), Person–Organization, as a
// function of collection size.
func (e *Env) Figure11() (*Figure, error) {
	e.init()
	sizes := e.prefixSizes()
	testLabels := e.Labels(relation.PO, e.splits.Test)
	target := testLabels.Restrict(sizes[0]).NumUseful()
	fig := &Figure{
		Title:  fmt.Sprintf("Figure 11: CPU minutes to find %d useful documents vs collection size, Person–Organization", target),
		XLabel: "Collection Size (%)",
		YLabel: "CPU Time (min)",
	}
	for _, n := range sizes {
		fig.X = append(fig.X, 100*float64(n)/float64(e.splits.Test.Len()))
	}
	for _, strat := range []string{"BAgg-IE", "RSVM-IE"} {
		var ys []float64
		for _, n := range sizes {
			results, err := e.RunAll(Spec{
				Rel: relation.PO, Strategy: strat, Detector: "Mod-C",
				Test: true, Prefix: n,
			})
			if err != nil {
				return nil, err
			}
			var mins float64
			for _, r := range results {
				mins += metrics.Minutes(timeToUsefulCount(r, relation.PO, target))
			}
			ys = append(ys, mins/float64(len(results)))
		}
		fig.Lines = append(fig.Lines, Line{Name: strat, Y: ys})
	}
	return fig, nil
}

// timeToUsefulCount estimates CPU time until `target` useful documents have
// been processed (sample included).
func timeToUsefulCount(r *pipeline.Result, rel relation.Relation, target int) time.Duration {
	remaining := target - r.SampleUseful
	needed := len(r.OrderLabels)
	if remaining <= 0 {
		needed = 0
	} else {
		seen := 0
		for i, u := range r.OrderLabels {
			if u {
				seen++
			}
			if seen >= remaining {
				needed = i + 1
				break
			}
		}
	}
	frac := 0.0
	if len(r.OrderLabels) > 0 {
		frac = float64(needed) / float64(len(r.OrderLabels))
	}
	sim := time.Duration(float64(rel.ExtractionCost()) * float64(needed+r.SampleSize))
	return sim + time.Duration(float64(r.Time.Overhead())*frac)
}

// finalSpecs is the Figure 12 / Table 4 comparison on the test split with
// the best configuration (CQS sampling, Mod-C update detection).
func finalSpecs(rel relation.Relation) []Spec {
	return []Spec{
		{Rel: rel, Strategy: "Random", Test: true},
		{Rel: rel, Strategy: "Perfect", Test: true},
		{Rel: rel, Strategy: "BAgg-IE", Sampling: "CQS", Detector: "Mod-C", Test: true},
		{Rel: rel, Strategy: "RSVM-IE", Sampling: "CQS", Detector: "Mod-C", Test: true},
		{Rel: rel, Strategy: "FC", Test: true},
		{Rel: rel, Strategy: "A-FC", Test: true},
	}
}

// Figure12 reproduces Figure 12: test-set recall curves for the sparse
// Disease–Outbreak (a) and dense Person–Career (b) relations.
func (e *Env) Figure12() (*Figure, *Figure, error) {
	a, err := e.recallFigure("Figure 12a: average recall, Disease–Outbreak (test, full access)",
		finalSpecs(relation.DO))
	if err != nil {
		return nil, nil, err
	}
	b, err := e.recallFigure("Figure 12b: average recall, Person–Career (test, full access)",
		finalSpecs(relation.PC))
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// Figure13 reproduces Figure 13: CPU time to reach each recall level for a
// slow extraction task (ND, a) and a fast one (PO, b).
func (e *Env) Figure13() (*Figure, *Figure, error) {
	mk := func(rel relation.Relation, title string) (*Figure, error) {
		fig := &Figure{
			Title:  title,
			XLabel: "Useful Document Recall (%)",
			YLabel: "CPU Time (min)",
		}
		grid := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
		fig.X = grid
		for _, spec := range []Spec{
			{Rel: rel, Strategy: "Random", Test: true},
			{Rel: rel, Strategy: "BAgg-IE", Sampling: "CQS", Detector: "Mod-C", Test: true},
			{Rel: rel, Strategy: "RSVM-IE", Sampling: "CQS", Detector: "Mod-C", Test: true},
			{Rel: rel, Strategy: "FC", Test: true},
			{Rel: rel, Strategy: "A-FC", Test: true},
		} {
			results, err := e.RunAll(spec)
			if err != nil {
				return nil, err
			}
			ys := make([]float64, len(grid))
			for gi, g := range grid {
				var mins float64
				for _, r := range results {
					mins += metrics.Minutes(timeToRecall(r, rel, g/100))
				}
				ys[gi] = mins / float64(len(results))
			}
			fig.Lines = append(fig.Lines, Line{Name: spec.Name(), Y: ys})
		}
		return fig, nil
	}
	a, err := mk(relation.ND, "Figure 13a: CPU minutes to reach recall, Natural Disaster–Location (6 s/doc extractor)")
	if err != nil {
		return nil, nil, err
	}
	b, err := mk(relation.PO, "Figure 13b: CPU minutes to reach recall, Person–Organization (0.01 s/doc extractor)")
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// SearchInterface compares base vs adaptive RSVM-IE recall in the
// search-interface access scenario (Section 4, Document Access), which the
// paper reports as yielding "similar conclusions".
func (e *Env) SearchInterface() (*Figure, error) {
	fig, err := e.recallFigure("Search-interface scenario: average recall, Man Made Disaster–Location, RSVM-IE",
		[]Spec{
			{Rel: relation.MD, Strategy: "RSVM-IE", Sampling: "CQS", SearchIface: true},
			{Rel: relation.MD, Strategy: "RSVM-IE", Sampling: "CQS", Detector: "Mod-C", SearchIface: true},
		})
	if err != nil {
		return nil, err
	}
	fig.Lines[0].Name = "Base CQS (search iface)"
	fig.Lines[1].Name = "Adaptive CQS (search iface)"
	fig.Notes = append(fig.Notes,
		"recall denominators count all useful documents in the collection; the pool only grows via queries")
	return fig, nil
}
