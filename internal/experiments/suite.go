package experiments

import (
	"fmt"
	"io"
)

// Renderable is anything the suite can print.
type Renderable interface {
	Render(w io.Writer)
}

// Item is one named experiment of the suite.
type Item struct {
	ID  string
	Run func(e *Env) (Renderable, error)
}

// wrap adapts the typed experiment functions to Item signatures.
func wrapTable(f func(e *Env) (*Table, error)) func(e *Env) (Renderable, error) {
	return func(e *Env) (Renderable, error) { return f(e) }
}

func wrapFigure(f func(e *Env) (*Figure, error)) func(e *Env) (Renderable, error) {
	return func(e *Env) (Renderable, error) { return f(e) }
}

type pair struct{ a, b Renderable }

func (p pair) Render(w io.Writer) {
	p.a.Render(w)
	p.b.Render(w)
}

// Suite lists every experiment in paper order.
func Suite() []Item {
	return []Item{
		{"table1", wrapTable((*Env).Table1)},
		{"figure3", wrapFigure((*Env).Figure3)},
		{"figure4", wrapFigure((*Env).Figure4)},
		{"figure5", wrapFigure((*Env).Figure5)},
		{"figure6", wrapFigure((*Env).Figure6)},
		{"figure7", wrapFigure((*Env).Figure7)},
		{"table2", wrapTable((*Env).Table2)},
		{"figure8", wrapFigure((*Env).Figure8)},
		{"figure9", wrapTable((*Env).Figure9)},
		{"table3", wrapTable((*Env).Table3)},
		{"churn", wrapTable((*Env).FeatureChurn)},
		{"figure10", wrapFigure((*Env).Figure10)},
		{"figure11", wrapFigure((*Env).Figure11)},
		{"table4", wrapTable((*Env).Table4)},
		{"figure12", func(e *Env) (Renderable, error) {
			a, b, err := e.Figure12()
			if err != nil {
				return nil, err
			}
			return pair{a, b}, nil
		}},
		{"figure13", func(e *Env) (Renderable, error) {
			a, b, err := e.Figure13()
			if err != nil {
				return nil, err
			}
			return pair{a, b}, nil
		}},
		{"searchiface", wrapFigure((*Env).SearchInterface)},
		{"diversity", wrapTable((*Env).Diversity)},
		{"estimate", wrapTable((*Env).Estimation)},
		{"ablation", wrapTable((*Env).Ablations)},
	}
}

// RunSuite executes the named experiments (all when ids is empty) and
// renders them to w.
func RunSuite(e *Env, w io.Writer, ids ...string) error {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	for _, item := range Suite() {
		if len(ids) > 0 && !want[item.ID] {
			continue
		}
		r, err := item.Run(e)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", item.ID, err)
		}
		r.Render(w)
	}
	return nil
}
