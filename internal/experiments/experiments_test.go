package experiments

import (
	"bytes"
	"strings"
	"testing"

	"adaptiverank/internal/relation"
)

// testEnv is shared across the integration tests in this package; the
// environment caches corpora, labels, and run results, so sharing it keeps
// the suite fast.
var testEnv = NewEnv(TestConfig())

func TestRunOneBasicSpecs(t *testing.T) {
	for _, spec := range []Spec{
		{Rel: relation.PH, Strategy: "RSVM-IE"},
		{Rel: relation.PH, Strategy: "BAgg-IE", Detector: "Mod-C"},
		{Rel: relation.PH, Strategy: "FC"},
		{Rel: relation.PH, Strategy: "Random"},
		{Rel: relation.PH, Strategy: "Perfect"},
		{Rel: relation.PH, Strategy: "RSVM-IE", Sampling: "CQS", Detector: "Top-K"},
	} {
		res, err := testEnv.RunOne(spec, 0)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if len(res.Order) == 0 {
			t.Errorf("%v: empty order", spec)
		}
		if res.AUC < 0 || res.AUC > 1 {
			t.Errorf("%v: AUC = %g", spec, res.AUC)
		}
	}
}

func TestRunOneRejectsUnknownSpecs(t *testing.T) {
	if _, err := testEnv.RunOne(Spec{Rel: relation.PH, Strategy: "nope"}, 0); err == nil {
		t.Error("unknown strategy must fail")
	}
	if _, err := testEnv.RunOne(Spec{Rel: relation.PH, Strategy: "RSVM-IE", Detector: "nope"}, 0); err == nil {
		t.Error("unknown detector must fail")
	}
	if _, err := testEnv.RunOne(Spec{Rel: relation.PH, Strategy: "RSVM-IE", Sampling: "nope"}, 0); err == nil {
		t.Error("unknown sampling must fail")
	}
}

func TestRunOneCaches(t *testing.T) {
	spec := Spec{Rel: relation.EW, Strategy: "Random"}
	a, err := testEnv.RunOne(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := testEnv.RunOne(spec, 0)
	if a != b {
		t.Error("identical (spec, run) must return the cached result")
	}
}

func TestPerfectDominatesInAnyExperiment(t *testing.T) {
	perfect, err := testEnv.RunOne(Spec{Rel: relation.PC, Strategy: "Perfect"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	random, err := testEnv.RunOne(Spec{Rel: relation.PC, Strategy: "Random"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.AUC <= random.AUC {
		t.Errorf("perfect AUC %.3f <= random AUC %.3f", perfect.AUC, random.AUC)
	}
}

func TestTable1Renders(t *testing.T) {
	tab, err := testEnv.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(relation.All()) {
		t.Errorf("rows = %d, want %d", len(tab.Rows), len(relation.All()))
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, r := range relation.All() {
		if !strings.Contains(out, r.Code()) {
			t.Errorf("rendered table missing %s", r.Code())
		}
	}
}

func TestFigure3ShapeSane(t *testing.T) {
	fig, err := testEnv.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(fig.Lines))
	}
	perfect := fig.Line("Perfect")
	random := fig.Line("Random")
	if perfect == nil || random == nil {
		t.Fatal("missing reference lines")
	}
	// Perfect must dominate random at 20% processed.
	if fig.At(1, 20) <= fig.At(0, 20) {
		t.Errorf("perfect@20 %.3f <= random@20 %.3f", fig.At(1, 20), fig.At(0, 20))
	}
	// Every curve ends at 1 (full access processes everything).
	for _, l := range fig.Lines {
		if l.Y[100] < 0.999 {
			t.Errorf("%s final recall = %.3f, want 1", l.Name, l.Y[100])
		}
	}
}

func TestFigure9StructureAndWindFTotal(t *testing.T) {
	tab, err := testEnv.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 techniques", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Wind-F" {
		t.Fatalf("first row = %q", tab.Rows[0][0])
	}
}

func TestRenderFigureIncludesAllLines(t *testing.T) {
	fig := &Figure{
		Title: "t", XLabel: "x", YLabel: "y",
		X:     []float64{0, 50, 100},
		Lines: []Line{{Name: "curve-a", Y: []float64{0, 0.5, 1}}},
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	if !strings.Contains(buf.String(), "curve-a") {
		t.Error("rendered figure missing line name")
	}
}

func TestFigureAtInterpolation(t *testing.T) {
	fig := &Figure{X: []float64{0, 100}, Lines: []Line{{Y: []float64{0, 1}}}}
	if got := fig.At(0, 50); got != 0.5 {
		t.Errorf("At(50) = %g, want 0.5", got)
	}
	if fig.At(0, -10) != 0 || fig.At(0, 1000) != 1 {
		t.Error("At must clamp outside the grid")
	}
}

func TestSuiteIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, item := range Suite() {
		if seen[item.ID] {
			t.Errorf("duplicate suite id %q", item.ID)
		}
		seen[item.ID] = true
	}
	if len(seen) < 15 {
		t.Errorf("suite has %d experiments, want >= 15", len(seen))
	}
}

func TestSpecName(t *testing.T) {
	s := Spec{Strategy: "RSVM-IE", Detector: "Mod-C", Sampling: "CQS"}
	if got := s.Name(); got != "RSVM-IE+Mod-C/CQS" {
		t.Errorf("Name = %q", got)
	}
}

func TestFCRetrieveKScaling(t *testing.T) {
	if fcRetrieveK(1000) != 40 {
		t.Errorf("small collections must floor at 40, got %d", fcRetrieveK(1000))
	}
	if fcRetrieveK(12000) != 80 {
		t.Errorf("fcRetrieveK(12000) = %d, want 80", fcRetrieveK(12000))
	}
}

func TestExtensionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"diversity", "estimate", "ablation"} {
		var buf bytes.Buffer
		if err := RunSuite(testEnv, &buf, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", id)
		}
	}
}

func TestDiversityRankedAboveRandom(t *testing.T) {
	tab, err := testEnv.Diversity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// The adaptive ranker must accumulate distinct tuples faster than a
	// random order at the 25% mark (column 2).
	var random, rsvm string
	for _, row := range tab.Rows {
		switch row[0] {
		case "Random":
			random = row[2]
		case "RSVM-IE+Mod-C":
			rsvm = row[2]
		}
	}
	if rsvm <= random {
		t.Errorf("tuple yield @25%%: RSVM %s <= Random %s", rsvm, random)
	}
}
