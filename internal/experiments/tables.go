package experiments

import (
	"fmt"

	"adaptiverank/internal/metrics"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/relation"
)

// Table1 reproduces Table 1: the relations with their useful-document
// counts on the test split, as determined by actually running each
// extraction system over every document.
func (e *Env) Table1() (*Table, error) {
	e.init()
	t := &Table{
		Title:  "Table 1: relations and useful documents (test split)",
		Header: []string{"Relation", "Useful Documents", "Measured %", "Paper %"},
	}
	for _, rel := range relation.All() {
		labels := e.Labels(rel, e.splits.Test)
		pct := 100 * float64(labels.NumUseful()) / float64(e.splits.Test.Len())
		paper := 100 * rel.Density()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", rel.Name(), rel.Code()),
			fmt.Sprintf("%d", labels.NumUseful()),
			fmt.Sprintf("%.2f%%", pct),
			fmt.Sprintf("%.2f%%", paper),
		})
	}
	t.Notes = append(t.Notes,
		"DO is generated at 10x the paper's density (0.8% vs 0.08%): 0.08% of a laptop-scale corpus would be <10 documents (DESIGN.md §2)")
	return t, nil
}

// qualityCell renders "AP / AUC" mean±std over runs, in percent.
func qualityCell(results []*pipeline.Result) (ap, auc metrics.Stat) {
	aps := make([]float64, len(results))
	aucs := make([]float64, len(results))
	for i, r := range results {
		aps[i] = 100 * r.AP
		aucs[i] = 100 * r.AUC
	}
	return metrics.Aggregate(aps), metrics.Aggregate(aucs)
}

// Table2 reproduces Table 2: average precision and AUC for all relations
// with the base and adaptive versions of RSVM-IE under SRS and CQS
// sampling (dev split, full access).
func (e *Env) Table2() (*Table, error) {
	t := &Table{
		Title: "Table 2: sampling × adaptation with RSVM-IE (dev, full access)",
		Header: []string{"Rel",
			"Base SRS AP", "Base SRS AUC", "Base CQS AP", "Base CQS AUC",
			"Adapt SRS AP", "Adapt SRS AUC", "Adapt CQS AP", "Adapt CQS AUC"},
	}
	for _, rel := range relation.All() {
		row := []string{rel.Code()}
		for _, cfg := range []struct {
			sampling, detector string
		}{
			{"SRS", ""}, {"CQS", ""}, {"SRS", "Mod-C"}, {"CQS", "Mod-C"},
		} {
			results, err := e.RunAll(Spec{
				Rel: rel, Strategy: "RSVM-IE",
				Sampling: cfg.sampling, Detector: cfg.detector,
			})
			if err != nil {
				return nil, err
			}
			ap, auc := qualityCell(results)
			row = append(row, ap.String(), auc.String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3 reproduces Table 3: average update-detection CPU time per
// processed document, measured over the Figure 8 configuration.
func (e *Env) Table3() (*Table, error) {
	t := &Table{
		Title:  "Table 3: update detection CPU time per document (Election–Winner, RSVM-IE)",
		Header: []string{"Update Technique", "CPU Time per Document", "Paper"},
	}
	paper := map[string]string{
		"Wind-F": "0.01 ms", "Feat-S": "5.72 ms", "Top-K": "1.89 ms", "Mod-C": "0.32 ms",
	}
	for _, det := range []string{"Wind-F", "Feat-S", "Top-K", "Mod-C"} {
		results, err := e.RunAll(Spec{Rel: relation.EW, Strategy: "RSVM-IE", Detector: det})
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, len(results))
		for _, r := range results {
			if r.DetectorObservations > 0 {
				vals = append(vals,
					float64(r.DetectorTime.Microseconds())/1000/float64(r.DetectorObservations))
			}
		}
		s := metrics.Aggregate(vals)
		t.Rows = append(t.Rows, []string{
			det,
			fmt.Sprintf("%.3f±%.3f ms", s.Mean, s.Std),
			paper[det],
		})
	}
	t.Notes = append(t.Notes,
		"absolute times depend on hardware and model size; the paper's ordering Wind-F < Mod-C < Top-K < Feat-S is the target")
	return t, nil
}

// Table4 reproduces Table 4: the final test-set comparison of BAgg-IE and
// RSVM-IE (best configuration: CQS + Mod-C) against FC and A-FC.
func (e *Env) Table4() (*Table, error) {
	t := &Table{
		Title: "Table 4: final comparison (test, full access)",
		Header: []string{"Rel",
			"BAgg-IE AP", "BAgg-IE AUC", "RSVM-IE AP", "RSVM-IE AUC",
			"FC AP", "FC AUC", "A-FC AP", "A-FC AUC"},
	}
	for _, rel := range relation.All() {
		row := []string{rel.Code()}
		for _, spec := range []Spec{
			{Rel: rel, Strategy: "BAgg-IE", Sampling: "CQS", Detector: "Mod-C", Test: true},
			{Rel: rel, Strategy: "RSVM-IE", Sampling: "CQS", Detector: "Mod-C", Test: true},
			{Rel: rel, Strategy: "FC", Test: true},
			{Rel: rel, Strategy: "A-FC", Test: true},
		} {
			results, err := e.RunAll(spec)
			if err != nil {
				return nil, err
			}
			ap, auc := qualityCell(results)
			row = append(row, ap.String(), auc.String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// FeatureChurn reproduces the Section 5 feature-turnover analysis: the
// fraction of model features added and removed per adaptation step, early
// (first half of updates) versus late (second half).
func (e *Env) FeatureChurn() (*Table, error) {
	t := &Table{
		Title:  "Feature churn per adaptation step (Election–Winner, RSVM-IE)",
		Header: []string{"Detector", "Updates/run", "Early added/step", "Early removed/step", "Late added/step", "Late removed/step"},
	}
	for _, det := range []string{"Wind-F", "Mod-C", "Top-K"} {
		results, err := e.RunAll(Spec{Rel: relation.EW, Strategy: "RSVM-IE", Detector: det})
		if err != nil {
			return nil, err
		}
		var updates, eAdd, eRem, lAdd, lRem, eN, lN float64
		for _, r := range results {
			updates += float64(len(r.Churn))
			half := len(r.Churn) / 2
			for i, c := range r.Churn {
				if i < half || len(r.Churn) == 1 {
					eAdd += float64(c.Added)
					eRem += float64(c.Removed)
					eN++
				} else {
					lAdd += float64(c.Added)
					lRem += float64(c.Removed)
					lN++
				}
			}
		}
		n := float64(len(results))
		div := func(a, b float64) string {
			if b == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", a/b)
		}
		t.Rows = append(t.Rows, []string{
			det, fmt.Sprintf("%.1f", updates/n),
			div(eAdd, eN), div(eRem, eN), div(lAdd, lN), div(lRem, lN),
		})
	}
	t.Notes = append(t.Notes,
		"the paper reports large feature turnover early in the process that settles in later updates")
	return t, nil
}
