package experiments

// This file implements the extension experiments beyond the paper's
// evaluation section: the recall/cost estimation of its future work
// (Section 6), tuple-yield/diversity characterization (also future work),
// and ablations of the design choices DESIGN.md calls out.

import (
	"fmt"
	"time"

	"adaptiverank/internal/estimate"
	"adaptiverank/internal/metrics"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/sampling"
	"adaptiverank/internal/update"
)

// Diversity characterizes the ranking strategies by the tuples they
// produce (future work, Section 6): how fast distinct tuples accumulate
// along the processing order, and the attribute diversity of the early
// yield.
func (e *Env) Diversity() (*Table, error) {
	e.init()
	rel := relation.PH
	labels := e.Labels(rel, e.splits.Dev)
	t := &Table{
		Title: "Extension: tuple yield and diversity by strategy (Person–Charge, dev)",
		Header: []string{"Strategy", "Tuples@10%", "Tuples@25%", "Tuples@50%",
			"Diversity@25%"},
	}
	for _, spec := range []Spec{
		{Rel: rel, Strategy: "Random"},
		{Rel: rel, Strategy: "FC"},
		{Rel: rel, Strategy: "RSVM-IE", Detector: "Mod-C"},
	} {
		results, err := e.RunAll(spec)
		if err != nil {
			return nil, err
		}
		var y10, y25, y50, div float64
		for _, r := range results {
			tuplesPerDoc := make([][]relation.Tuple, len(r.Order))
			var quarter []relation.Tuple
			for i, id := range r.Order {
				tuplesPerDoc[i] = labels.Tuples(id)
				if i < len(r.Order)/4 {
					quarter = append(quarter, tuplesPerDoc[i]...)
				}
			}
			curve := metrics.TupleYieldCurve(tuplesPerDoc)
			y10 += curve[10]
			y25 += curve[25]
			y50 += curve[50]
			div += metrics.TupleDiversity(metrics.DistinctTuples(quarter))
		}
		n := float64(len(results))
		t.Rows = append(t.Rows, []string{
			spec.Name(),
			fmt.Sprintf("%.2f", y10/n), fmt.Sprintf("%.2f", y25/n),
			fmt.Sprintf("%.2f", y50/n), fmt.Sprintf("%.2f", div/n),
		})
	}
	t.Notes = append(t.Notes, "Tuples@x = fraction of all distinct tuples discovered after processing x% of the ranked documents")
	return t, nil
}

// Estimation exercises the future-work recall/cost estimator: after
// processing 25% of the ranked documents, project the documents (and CPU
// cost) needed to reach 75% and 90% recall, and compare against the
// realized numbers from the rest of the run.
func (e *Env) Estimation() (*Table, error) {
	e.init()
	rel := relation.PH
	coll := e.splits.Dev
	labels := e.Labels(rel, coll)
	t := &Table{
		Title:  "Extension: recall/cost estimation (Person–Charge, RSVM-IE, projection at 5% processed)",
		Header: []string{"Run", "Target", "Predicted docs", "Actual docs", "Predicted CPU", "Actual CPU"},
	}
	for run := 0; run < e.Cfg.Runs; run++ {
		seed := e.Cfg.Seed + int64(run)*97 + int64(rel)*11
		feat := ranking.NewFeaturizer()
		ranker := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: seed})
		strat := pipeline.NewLearned(ranker, feat)
		res, err := e.runPipeline(pipeline.Options{
			Rel: rel, Coll: coll, Labels: labels,
			Sample:   sampling.SRS(coll, e.Cfg.SampleSize, seed),
			Strategy: strat, Detector: update.NewModC(ranker, 0.1, 5, seed+5),
			Featurizer: feat,
		})
		if err != nil {
			return nil, err
		}
		// Replay the run: observe the first 5% — early enough that most
		// useful documents are still pending — then project.
		cut := len(res.Order) / 20
		est := estimate.New()
		found := 0
		for i := 0; i < cut; i++ {
			id := res.Order[i]
			score := ranker.Score(feat.Features(coll.Doc(id)))
			est.Observe(score, res.OrderLabels[i])
			if res.OrderLabels[i] {
				found++
			}
		}
		if err := est.Fit(); err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(run), "-", "no useful docs in prefix", "-", "-", "-"})
			continue
		}
		pending := make([]float64, 0, len(res.Order)-cut)
		for _, id := range res.Order[cut:] {
			pending = append(pending, ranker.Score(feat.Features(coll.Doc(id))))
		}
		totalUseful := found
		for _, u := range res.OrderLabels[cut:] {
			if u {
				totalUseful++
			}
		}
		for _, target := range []float64{0.80, 0.95} {
			proj := est.CostToRecall(found, pending, target, rel.ExtractionCost())
			actualDocs := actualDocsToRecall(res.OrderLabels, cut, found, totalUseful, target)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(run),
				fmt.Sprintf("%.0f%%", 100*target),
				fmt.Sprint(proj.Docs),
				fmt.Sprint(actualDocs),
				fmtDur(proj.Cost),
				fmtDur(time.Duration(actualDocs) * rel.ExtractionCost()),
			})
		}
	}
	t.Notes = append(t.Notes, "docs counted from the 5% checkpoint onward; the projection uses only information available at the checkpoint")
	return t, nil
}

// actualDocsToRecall counts the ranked documents after the checkpoint
// needed to reach target recall of the true useful total.
func actualDocsToRecall(labels []bool, cut, found, totalUseful int, target float64) int {
	goal := int(target*float64(totalUseful)+0.999999) - found
	if goal <= 0 {
		return 0
	}
	seen := 0
	for i := cut; i < len(labels); i++ {
		if labels[i] {
			seen++
		}
		if seen >= goal {
			return i - cut + 1
		}
	}
	return len(labels) - cut
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1f min", metrics.Minutes(d))
}

// Ablations quantifies the design choices of Section 3.1 by toggling them
// one at a time on the Person–Charge task: the elastic-net mix (pure L2 vs
// the paper's 0.99 vs heavier L1), the number of stochastic pairs per
// example, the committee size, and the tuple-attribute feature boost.
func (e *Env) Ablations() (*Table, error) {
	e.init()
	rel := relation.PH
	coll := e.splits.Dev
	labels := e.Labels(rel, coll)
	t := &Table{
		Title:  "Extension: ablations of the Section 3.1 design choices (Person–Charge, dev, adaptive Mod-C)",
		Header: []string{"Variant", "AP", "AUC", "Model features", "Train+rank ms/run"},
	}

	type variant struct {
		name  string
		build func(seed int64, feat *ranking.Featurizer) (pipeline.Strategy, ranking.Ranker)
	}
	mkRSVM := func(opts ranking.RSVMOptions, plain bool) func(int64, *ranking.Featurizer) (pipeline.Strategy, ranking.Ranker) {
		return func(seed int64, feat *ranking.Featurizer) (pipeline.Strategy, ranking.Ranker) {
			o := opts
			o.Seed = seed
			r := ranking.NewRSVMIE(o)
			s := pipeline.NewLearned(r, feat)
			s.PlainTraining = plain
			return s, r
		}
	}
	variants := []variant{
		{"RSVM-IE (paper: λL2=0.99, 4 pairs)", mkRSVM(ranking.RSVMOptions{}, false)},
		{"RSVM-IE pure L2 (λL2=1.0)", mkRSVM(ranking.RSVMOptions{LambdaL2: 1.0}, false)},
		{"RSVM-IE heavy L1 (λL2=0.90)", mkRSVM(ranking.RSVMOptions{LambdaL2: 0.90}, false)},
		{"RSVM-IE 1 pair/example", mkRSVM(ranking.RSVMOptions{PairsPerExample: 1}, false)},
		{"RSVM-IE 8 pairs/example", mkRSVM(ranking.RSVMOptions{PairsPerExample: 8}, false)},
		{"RSVM-IE no tuple-attribute boost", mkRSVM(ranking.RSVMOptions{}, true)},
		{"BAgg-IE 3 members (paper)", func(seed int64, feat *ranking.Featurizer) (pipeline.Strategy, ranking.Ranker) {
			r := ranking.NewBAggIE(ranking.BAggOptions{})
			return pipeline.NewLearned(r, feat), r
		}},
		{"BAgg-IE 1 member", func(seed int64, feat *ranking.Featurizer) (pipeline.Strategy, ranking.Ranker) {
			r := ranking.NewBAggIE(ranking.BAggOptions{Members: 1})
			return pipeline.NewLearned(r, feat), r
		}},
		{"BAgg-IE 5 members", func(seed int64, feat *ranking.Featurizer) (pipeline.Strategy, ranking.Ranker) {
			r := ranking.NewBAggIE(ranking.BAggOptions{Members: 5})
			return pipeline.NewLearned(r, feat), r
		}},
	}

	for _, v := range variants {
		var aps, aucs []float64
		var nnz, overheadMS float64
		for run := 0; run < e.Cfg.Runs; run++ {
			seed := e.Cfg.Seed + int64(run)*97 + int64(rel)*11
			feat := ranking.NewFeaturizer()
			strat, ranker := v.build(seed, feat)
			alpha := 5.0
			if ranker.Name() == "BAgg-IE" {
				alpha = 30
			}
			res, err := e.runPipeline(pipeline.Options{
				Rel: rel, Coll: coll, Labels: labels,
				Sample:   sampling.SRS(coll, e.Cfg.SampleSize, seed),
				Strategy: strat, Detector: update.NewModC(ranker, 0.1, alpha, seed+5),
				Featurizer: feat,
			})
			if err != nil {
				return nil, err
			}
			aps = append(aps, 100*res.AP)
			aucs = append(aucs, 100*res.AUC)
			if m := ranker.Model(); m != nil {
				nnz += float64(m.NNZ())
			}
			overheadMS += float64(res.Time.Overhead().Milliseconds())
		}
		n := float64(e.Cfg.Runs)
		ap, auc := metrics.Aggregate(aps), metrics.Aggregate(aucs)
		t.Rows = append(t.Rows, []string{
			v.name, ap.String(), auc.String(),
			fmt.Sprintf("%.0f", nnz/n),
			fmt.Sprintf("%.0f", overheadMS/n),
		})
	}
	return t, nil
}
