package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAlignsColumns(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"A", "LongHeader"},
		Rows:   [][]string{{"x", "1"}, {"longervalue", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
	lines := strings.Split(out, "\n")
	// Header and separator must have the same column start for col 2.
	hIdx := strings.Index(lines[1], "LongHeader")
	sepLine := lines[2]
	if hIdx < 0 || len(sepLine) <= hIdx || sepLine[hIdx] != '-' {
		t.Errorf("separator misaligned:\n%s", out)
	}
}

func TestFigureRenderSamplesWideGrids(t *testing.T) {
	fig := &Figure{Title: "wide", XLabel: "x", YLabel: "y"}
	for i := 0; i <= 100; i++ {
		fig.X = append(fig.X, float64(i))
	}
	ys := make([]float64, 101)
	fig.Lines = []Line{{Name: "l", Y: ys}}
	var buf bytes.Buffer
	fig.Render(&buf)
	// Must not print all 101 columns.
	header := strings.SplitN(buf.String(), "\n", 4)[2]
	if cols := len(strings.Fields(header)); cols > 15 {
		t.Errorf("rendered %d columns, want a sampled grid", cols)
	}
}

func TestPairRendersBoth(t *testing.T) {
	a := &Table{Title: "first", Header: []string{"h"}}
	b := &Table{Title: "second", Header: []string{"h"}}
	var buf bytes.Buffer
	pair{a, b}.Render(&buf)
	if !strings.Contains(buf.String(), "first") || !strings.Contains(buf.String(), "second") {
		t.Error("pair must render both parts")
	}
}
