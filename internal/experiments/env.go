// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) over the synthetic corpus: recall curves per
// ranking strategy, sampling and adaptation comparisons, update-detection
// behaviour, scalability, and the final test-set comparison. Each
// experiment function returns structured data and can render itself as
// text; the bench harness at the repository root exposes one benchmark per
// table/figure, and cmd/experiments runs the whole suite.
package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/factcrawl"
	"adaptiverank/internal/index"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/explain"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/sampling"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/update"
)

// Config scales the experiment suite.
type Config struct {
	// Seed drives corpus generation and all run-level randomness.
	Seed int64
	// Runs is the number of repetitions per configuration (the paper
	// uses 5).
	Runs int
	// Sizes are the corpus split sizes.
	Sizes textgen.SplitSizes
	// SampleSize is the initial document sample size (the paper's 2,000
	// scaled to the corpus size).
	SampleSize int
	// QueriesPerList is the number of QXtract-learned queries per list.
	QueriesPerList int
	// Metrics, when non-nil, aggregates counters/gauges/histograms
	// across every pipeline run of the suite (see internal/obs).
	Metrics *obs.Registry
	// Recorder, when non-nil, receives the concatenated event traces of
	// every pipeline run of the suite.
	Recorder obs.Recorder
	// Explain, when non-nil, arms model introspection on every pipeline
	// run of the suite: all runs share one explain artifact, with
	// records joined to their runs via span ids (see internal/obs/explain).
	Explain *explain.Explainer
	// Ctx, when non-nil, cancels every pipeline run of the suite (the
	// CLI installs a SIGINT/SIGTERM context here). Nil means Background.
	Ctx context.Context
	// LabelCacheDir, when non-empty, persists whole-collection oracle
	// label computations as journal files under this directory and
	// reloads them on later runs, so a restarted suite skips the most
	// expensive precomputation step.
	LabelCacheDir string
}

// DefaultConfig is the bench-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:           7,
		Runs:           5,
		Sizes:          textgen.ScaleBench(),
		SampleSize:     400,
		QueriesPerList: 20,
	}
}

// TestConfig is a reduced configuration for integration tests.
func TestConfig() Config {
	return Config{
		Seed:           7,
		Runs:           2,
		Sizes:          textgen.ScaleTest(),
		SampleSize:     150,
		QueriesPerList: 12,
	}
}

// Env lazily builds and caches the shared experimental environment:
// corpus splits, search indexes, oracle labels, and learned query lists.
type Env struct {
	Cfg Config

	once    sync.Once
	splits  *textgen.Splits
	devIdx  *index.Index
	testIdx *index.Index

	mu      sync.Mutex
	queries map[int64][]sampling.QueryList // per run seed
	results map[resultKey]*pipeline.Result

	// labels has its own lock: Labels is called from inside e.mu
	// critical sections (QueryLists), so it must not take e.mu.
	labelMu sync.Mutex
	labels  map[labelCacheKey]*pipeline.Labels // disk-cache hits (LabelCacheDir)

	// totalDocs/totalScores accumulate work done by uncached pipeline
	// runs; see Totals.
	totalDocs   atomic.Int64
	totalScores atomic.Int64
}

type labelCacheKey struct {
	rel  relation.Relation
	coll *corpus.Collection
}

type resultKey struct {
	spec Spec
	run  int
}

// NewEnv returns an environment for cfg.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:     cfg,
		queries: make(map[int64][]sampling.QueryList),
		results: make(map[resultKey]*pipeline.Result),
		labels:  make(map[labelCacheKey]*pipeline.Labels),
	}
}

// ctx returns the suite context (Background when none was configured).
func (e *Env) ctx() context.Context {
	if e.Cfg.Ctx != nil {
		return e.Cfg.Ctx
	}
	return context.Background()
}

// runPipeline wraps pipeline.RunContext for suite use: an interrupted
// (signal-cancelled) run surfaces as its context error, so experiments
// abort cleanly instead of tabulating partial results.
func (e *Env) runPipeline(opts pipeline.Options) (*pipeline.Result, error) {
	res, err := pipeline.RunContext(e.ctx(), opts)
	if err == nil && res != nil && res.Interrupted {
		if cerr := e.ctx().Err(); cerr != nil {
			return nil, cerr
		}
	}
	return res, err
}

func (e *Env) init() {
	e.once.Do(func() {
		e.splits = textgen.GenerateSplits(e.Cfg.Seed, e.Cfg.Sizes, textgen.DefaultConfig(0, 0))
		e.devIdx = index.Build(e.splits.Dev)
		e.testIdx = index.Build(e.splits.Test)
	})
}

// Splits exposes the corpus splits.
func (e *Env) Splits() *textgen.Splits { e.init(); return e.splits }

// Index returns the search index over coll (dev or test only).
func (e *Env) Index(coll *corpus.Collection) *index.Index {
	e.init()
	switch coll {
	case e.splits.Dev:
		return e.devIdx
	case e.splits.Test:
		return e.testIdx
	}
	panic("experiments: no index for collection")
}

// Labels returns oracle labels for (rel, coll), cached process-wide.
// With Config.LabelCacheDir set, labels are additionally checkpointed to
// disk: a restarted suite reloads them instead of re-extracting the
// whole collection. Cache files are keyed (name and fingerprint) by the
// relation and the collection content checksum, so stale entries from a
// different corpus are rejected, recomputed, and overwritten.
func (e *Env) Labels(rel relation.Relation, coll *corpus.Collection) *pipeline.Labels {
	if e.Cfg.LabelCacheDir == "" {
		return pipeline.LabelsFor(rel, coll)
	}
	key := labelCacheKey{rel, coll}
	e.labelMu.Lock()
	defer e.labelMu.Unlock()
	if l, ok := e.labels[key]; ok {
		return l
	}

	sum := coll.Checksum()
	path := filepath.Join(e.Cfg.LabelCacheDir,
		fmt.Sprintf("labels-%s-%016x.jsonl", rel.Code(), sum))
	fp := fmt.Sprintf("labels/v1 rel=%s corpus=%016x", rel.Code(), sum)
	l, err := pipeline.LoadLabels(path, fp, rel, coll.Len())
	if err != nil {
		l = pipeline.LabelsFor(rel, coll)
		// Best-effort write: a failed checkpoint only costs recompute
		// time on the next restart, so report it via metrics and go on.
		if err := os.MkdirAll(e.Cfg.LabelCacheDir, 0o755); err == nil {
			err = pipeline.SaveLabels(path, fp, l)
		}
		if err != nil {
			e.Cfg.Metrics.Counter(obs.MetricExperimentsLabelCacheErrors).Inc()
		}
	}
	e.labels[key] = l
	return l
}

// QueryLists returns the QXtract-learned query lists for one run,
// mirroring the paper's five query lists learned from the TREC collection.
// Queries are learned per (relation, run) from the TREC-like split.
func (e *Env) QueryLists(rel relation.Relation, run int) []sampling.QueryList {
	e.init()
	key := int64(rel)*1000 + int64(run)
	e.mu.Lock()
	defer e.mu.Unlock()
	if q, ok := e.queries[key]; ok {
		return q
	}
	trecLabels := e.Labels(rel, e.splits.TRECLike)
	// The paper learns several query lists from independently drawn
	// document sets; we learn three lists with different learner seeds,
	// giving FactCrawl's per-method quality averages real variation.
	var lists []sampling.QueryList
	for m := 0; m < 3; m++ {
		queries := sampling.LearnQueries(e.splits.TRECLike,
			func(d *corpus.Document) bool { return trecLabels.Useful(d.ID) },
			e.Cfg.QueriesPerList, e.Cfg.Seed+int64(run)*31+int64(rel)+int64(m)*977)
		lists = append(lists, sampling.QueryList{
			Method:  fmt.Sprintf("qxtract-%d", m+1),
			Queries: queries,
		})
	}
	e.queries[key] = lists
	return lists
}

// Spec describes one pipeline configuration of the evaluation matrix.
type Spec struct {
	Rel      relation.Relation
	Strategy string // "RSVM-IE", "BAgg-IE", "FC", "A-FC", "Random", "Perfect"
	Sampling string // "SRS" (default) or "CQS"
	Detector string // "" (base), "Mod-C", "Top-K", "Wind-F", "Feat-S"
	// Test selects the test split (default: dev split, as the paper
	// tunes on dev and reports final comparisons on test).
	Test bool
	// MaxDocs stops the ranked phase early (0 = all).
	MaxDocs int
	// Prefix restricts the collection to its first n documents
	// (scalability experiments); 0 = whole split.
	Prefix int
	// SearchIface selects the search-interface access scenario.
	SearchIface bool
}

// Name renders a human-readable configuration label.
func (s Spec) Name() string {
	n := s.Strategy
	if s.Detector != "" {
		n += "+" + s.Detector
	}
	if s.Sampling == "CQS" {
		n += "/CQS"
	}
	return n
}

// RunOne executes one repetition (run index r) of a spec. Results are
// deterministic per (spec, run) and cached, since several experiments
// share configurations (e.g. Figure 12 and Table 4).
func (e *Env) RunOne(spec Spec, r int) (*pipeline.Result, error) {
	e.init()
	key := resultKey{spec, r}
	e.mu.Lock()
	if res, ok := e.results[key]; ok {
		e.mu.Unlock()
		return res, nil
	}
	e.mu.Unlock()
	res, err := e.runOne(spec, r)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.results[key] = res
	e.mu.Unlock()
	return res, nil
}

// runOne is the uncached implementation.
func (e *Env) runOne(spec Spec, r int) (*pipeline.Result, error) {
	coll := e.splits.Dev
	if spec.Test {
		coll = e.splits.Test
	}
	labels := e.Labels(spec.Rel, coll)
	fullColl := coll
	if spec.Prefix > 0 {
		coll = coll.Prefix(spec.Prefix)
		labels = labels.Restrict(spec.Prefix)
	}
	// The search index is only needed by query-driven configurations;
	// build it lazily (prefix views get their own index).
	var idxOnce sync.Once
	var lazyIdx *index.Index
	idx := func() *index.Index {
		idxOnce.Do(func() {
			if spec.Prefix > 0 {
				lazyIdx = index.Build(coll)
			} else {
				lazyIdx = e.Index(fullColl)
			}
		})
		return lazyIdx
	}
	seed := e.Cfg.Seed + int64(r)*97 + int64(spec.Rel)*11

	// Initial sample.
	var sample []*corpus.Document
	switch spec.Sampling {
	case "", "SRS":
		sample = sampling.SRS(coll, e.Cfg.SampleSize, seed)
	case "CQS":
		queries := sampling.JoinQueries(e.QueryLists(spec.Rel, r))
		sample = sampling.CQS(idx(), queries, e.Cfg.SampleSize, 20)
	default:
		return nil, fmt.Errorf("experiments: unknown sampling %q", spec.Sampling)
	}

	feat := ranking.NewFeaturizer()
	var strat pipeline.Strategy
	var ranker ranking.Ranker
	switch spec.Strategy {
	case "RSVM-IE":
		ranker = ranking.NewRSVMIE(ranking.RSVMOptions{Seed: seed})
		strat = pipeline.NewLearned(ranker, feat)
	case "BAgg-IE":
		ranker = ranking.NewBAggIE(ranking.BAggOptions{})
		strat = pipeline.NewLearned(ranker, feat)
	case "Random":
		ranker = ranking.NewRandomRanker(seed)
		strat = pipeline.NewLearned(ranker, feat)
	case "Perfect":
		strat = &pipeline.Perfect{L: labels}
	case "FC", "A-FC":
		fc := factcrawl.New(idx(), e.QueryLists(spec.Rel, r), factcrawl.Options{
			RetrieveK: fcRetrieveK(coll.Len()),
			Seed:      seed,
		}, spec.Strategy == "A-FC")
		// A-FC re-ranks after every document in the paper; a full
		// re-sort per document is O(n^2 log n) and infeasible even at
		// laptop scale, so re-ranking is batched proportionally to the
		// collection (~2000 re-ranks per run). Query-quality updates
		// still happen per document.
		strat = pipeline.NewFCStrategy(fc, afcRerankEvery(coll.Len()))
	default:
		return nil, fmt.Errorf("experiments: unknown strategy %q", spec.Strategy)
	}

	var det update.Detector
	switch spec.Detector {
	case "":
	case "Mod-C":
		alpha := 5.0
		if spec.Strategy == "BAgg-IE" {
			alpha = 30
		}
		det = update.NewModC(ranker, 0.1, alpha, seed+5)
	case "Top-K":
		det = update.NewTopK(update.TopKOptions{})
	case "Wind-F":
		det = update.NewWindF(coll.Len() / 50)
	case "Feat-S":
		det = update.NewFeatS(update.FeatSOptions{})
	default:
		return nil, fmt.Errorf("experiments: unknown detector %q", spec.Detector)
	}

	opts := pipeline.Options{
		Rel:        spec.Rel,
		Coll:       coll,
		Labels:     labels,
		Sample:     sample,
		Strategy:   strat,
		Detector:   det,
		Featurizer: feat,
		MaxDocs:    spec.MaxDocs,
		Metrics:    e.Cfg.Metrics,
		Recorder:   e.Cfg.Recorder,
		Explain:    e.Cfg.Explain,
	}
	if spec.SearchIface {
		opts.SearchIface = &pipeline.SearchIfaceOptions{
			Index:          idx(),
			InitialQueries: sampling.JoinQueries(e.QueryLists(spec.Rel, r)),
		}
	}
	res, err := e.runPipeline(opts)
	if err == nil && res != nil {
		e.totalDocs.Add(int64(res.SampleSize + len(res.Order)))
		e.totalScores.Add(int64(res.ScoredDocs))
	}
	return res, err
}

// Totals reports the cumulative number of documents processed and
// individual document-scoring operations across every uncached pipeline
// run of this environment. The bench harness differences these around
// its benchmark loop to derive the docs/sec and ns/score metrics; cached
// repetitions add nothing, so the deltas reflect work actually done.
func (e *Env) Totals() (docs, scores int64) {
	return e.totalDocs.Load(), e.totalScores.Load()
}

// afcRerankEvery batches A-FC's re-ranking: one re-rank per this many
// processed documents.
func afcRerankEvery(collLen int) int {
	n := collLen / 2000
	if n < 1 {
		n = 1
	}
	return n
}

// fcRetrieveK scales FactCrawl's "query retrieves document" result-list
// depth to the collection size (the paper's 300 of 1.09M documents,
// floored at 40 so small dev collections remain meaningful).
func fcRetrieveK(collLen int) int {
	k := collLen / 150
	if k < 40 {
		k = 40
	}
	return k
}

// RunAll executes all repetitions of a spec.
func (e *Env) RunAll(spec Spec) ([]*pipeline.Result, error) {
	out := make([]*pipeline.Result, 0, e.Cfg.Runs)
	for r := 0; r < e.Cfg.Runs; r++ {
		res, err := e.RunOne(spec, r)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
