package index

import "testing"

func TestSearchAllEqualsUncapped(t *testing.T) {
	idx := Build(mkColl("lava a", "lava b", "plain"))
	if len(idx.SearchAll("lava")) != len(idx.Search("lava", 0)) {
		t.Error("SearchAll must equal Search with k=0")
	}
}

func TestBooleanAndEmptyQuery(t *testing.T) {
	idx := Build(mkColl("something"))
	if idx.BooleanAnd("the of") != nil {
		t.Error("stopword-only AND must be empty")
	}
}

func TestBuildEmptyCollection(t *testing.T) {
	idx := Build(mkColl())
	if idx.Terms() != 0 {
		t.Error("empty collection must index no terms")
	}
	if hits := idx.Search("anything", 5); len(hits) != 0 {
		t.Error("search over empty index must be empty")
	}
}
