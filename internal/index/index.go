// Package index implements the keyword-search substrate the paper obtains
// from Lucene: an in-memory inverted index over a document collection with
// BM25-ranked retrieval and Boolean retrieval. The query-based document
// selection baselines (QXtract-style sampling, FactCrawl) and the
// search-interface access scenario are built on it.
package index

import (
	"math"
	"sort"
	"strings"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/tokenize"
)

// Posting is one (document, term frequency) entry of a postings list.
type Posting struct {
	Doc corpus.DocID
	TF  int32
}

// Index is an immutable inverted index over one collection.
type Index struct {
	coll      *corpus.Collection
	postings  map[string][]Posting
	docLen    []int
	avgDocLen float64
	k1, b     float64
}

// Build tokenizes every document and constructs the index. BM25 parameters
// take the standard defaults k1=1.2, b=0.75.
func Build(coll *corpus.Collection) *Index {
	idx := &Index{
		coll:     coll,
		postings: make(map[string][]Posting),
		docLen:   make([]int, coll.Len()),
		k1:       1.2,
		b:        0.75,
	}
	var total int
	for _, d := range coll.Docs() {
		toks := d.Tokenize()
		idx.docLen[d.ID] = len(toks)
		total += len(toks)
		counts := make(map[string]int32, len(toks))
		for _, t := range toks {
			if !tokenize.IsStopword(t) {
				counts[t]++
			}
		}
		for term, tf := range counts {
			idx.postings[term] = append(idx.postings[term], Posting{Doc: d.ID, TF: tf})
		}
	}
	if coll.Len() > 0 {
		idx.avgDocLen = float64(total) / float64(coll.Len())
	}
	return idx
}

// Collection returns the indexed collection.
func (idx *Index) Collection() *corpus.Collection { return idx.coll }

// DocFreq returns the number of documents containing term.
func (idx *Index) DocFreq(term string) int {
	return len(idx.postings[strings.ToLower(term)])
}

// Terms reports the number of distinct indexed terms.
func (idx *Index) Terms() int { return len(idx.postings) }

// idf is the BM25 inverse document frequency with the usual +0.5 smoothing.
func (idx *Index) idf(term string) float64 {
	n := float64(len(idx.postings[term]))
	N := float64(idx.coll.Len())
	return math.Log(1 + (N-n+0.5)/(n+0.5))
}

// Hit is one scored retrieval result.
type Hit struct {
	Doc   corpus.DocID
	Score float64
}

// parseQuery lowercases and tokenizes a free-text query, dropping
// stopwords. Multi-word queries behave as disjunctive keyword queries, as
// with Lucene's default query parser.
func parseQuery(query string) []string {
	return tokenize.ContentWords(query)
}

// Search runs a BM25-ranked disjunctive keyword query and returns the top-k
// hits (all matches when k <= 0), ordered by descending score with DocID as
// the deterministic tiebreaker.
func (idx *Index) Search(query string, k int) []Hit {
	terms := parseQuery(query)
	if len(terms) == 0 {
		return nil
	}
	scores := make(map[corpus.DocID]float64)
	for _, term := range terms {
		posts := idx.postings[term]
		if len(posts) == 0 {
			continue
		}
		idf := idx.idf(term)
		for _, p := range posts {
			tf := float64(p.TF)
			dl := float64(idx.docLen[p.Doc])
			denom := tf + idx.k1*(1-idx.b+idx.b*dl/idx.avgDocLen)
			scores[p.Doc] += idf * tf * (idx.k1 + 1) / denom
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Doc: doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if k > 0 && k < len(hits) {
		hits = hits[:k]
	}
	return hits
}

// SearchAll is Search with no result cap.
func (idx *Index) SearchAll(query string) []Hit { return idx.Search(query, 0) }

// BooleanAnd returns the documents containing every query term, in DocID
// order.
func (idx *Index) BooleanAnd(query string) []corpus.DocID {
	terms := parseQuery(query)
	if len(terms) == 0 {
		return nil
	}
	// Start from the rarest term for efficiency.
	sort.Slice(terms, func(i, j int) bool {
		return len(idx.postings[terms[i]]) < len(idx.postings[terms[j]])
	})
	base := idx.postings[terms[0]]
	if len(base) == 0 {
		return nil
	}
	cur := make([]corpus.DocID, len(base))
	for i, p := range base {
		cur[i] = p.Doc
	}
	for _, term := range terms[1:] {
		posts := idx.postings[term]
		set := make(map[corpus.DocID]bool, len(posts))
		for _, p := range posts {
			set[p.Doc] = true
		}
		w := 0
		for _, d := range cur {
			if set[d] {
				cur[w] = d
				w++
			}
		}
		cur = cur[:w]
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}
