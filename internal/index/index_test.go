package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adaptiverank/internal/corpus"
)

func mkColl(texts ...string) *corpus.Collection {
	docs := make([]*corpus.Document, len(texts))
	for i, t := range texts {
		docs[i] = &corpus.Document{Text: t}
	}
	return corpus.NewCollection(docs)
}

func TestDocFreq(t *testing.T) {
	idx := Build(mkColl(
		"the earthquake struck hawaii",
		"the volcano erupted",
		"earthquake aftershocks continued",
	))
	if got := idx.DocFreq("earthquake"); got != 2 {
		t.Errorf("DocFreq(earthquake) = %d, want 2", got)
	}
	if got := idx.DocFreq("the"); got != 0 {
		t.Errorf("DocFreq(the) = %d, want 0 (stopwords excluded)", got)
	}
	if got := idx.DocFreq("EARTHQUAKE"); got != 2 {
		t.Errorf("DocFreq must be case-insensitive, got %d", got)
	}
}

func TestSearchRanksMatchingDocs(t *testing.T) {
	idx := Build(mkColl(
		"earthquake earthquake earthquake report",                                           // 0: high tf
		"earthquake mentioned once in a long text about gardens flowers trees shrubs lawns", // 1
		"nothing relevant here at all",                                                      // 2
	))
	hits := idx.Search("earthquake", 0)
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0].Doc != 0 {
		t.Errorf("top hit = doc %d, want doc 0 (higher tf, shorter doc)", hits[0].Doc)
	}
	if hits[0].Score <= hits[1].Score {
		t.Error("hits must be sorted by descending score")
	}
}

func TestSearchDisjunctive(t *testing.T) {
	idx := Build(mkColl(
		"lava flows",       // 0
		"ash clouds",       // 1
		"lava and ash mix", // 2
		"unrelated text",   // 3
	))
	hits := idx.Search("lava ash", 0)
	if len(hits) != 3 {
		t.Fatalf("got %d hits, want 3 (disjunctive match)", len(hits))
	}
	if hits[0].Doc != 2 {
		t.Errorf("doc matching both terms must rank first, got doc %d", hits[0].Doc)
	}
}

func TestSearchTopK(t *testing.T) {
	idx := Build(mkColl("x quake", "y quake", "z quake"))
	if got := len(idx.Search("quake", 2)); got != 2 {
		t.Errorf("Search with k=2 returned %d hits", got)
	}
}

func TestSearchUnknownTerm(t *testing.T) {
	idx := Build(mkColl("something"))
	if hits := idx.Search("missingterm", 10); len(hits) != 0 {
		t.Errorf("unknown term returned %v", hits)
	}
	if hits := idx.Search("the of and", 10); len(hits) != 0 {
		t.Errorf("stopword-only query returned %v", hits)
	}
}

func TestBooleanAnd(t *testing.T) {
	idx := Build(mkColl(
		"lava ash crater",
		"lava flows",
		"ash plume lava",
	))
	got := idx.BooleanAnd("lava ash")
	want := []corpus.DocID{0, 2}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("BooleanAnd = %v, want %v", got, want)
	}
	if idx.BooleanAnd("lava missing") != nil {
		t.Error("AND with an unmatched term must be empty")
	}
}

func TestSearchDeterministicTiebreak(t *testing.T) {
	idx := Build(mkColl("same words here", "same words here"))
	hits := idx.Search("words", 0)
	if len(hits) != 2 || hits[0].Doc != 0 || hits[1].Doc != 1 {
		t.Errorf("equal-score hits must order by DocID, got %v", hits)
	}
}

// TestQuickSearchInvariants checks, for random corpora and queries, that
// hits are sorted, unique, and every hit actually contains a query term.
func TestQuickSearchInvariants(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		texts := make([]string, 3+r.Intn(8))
		for i := range texts {
			n := 1 + r.Intn(8)
			words := make([]string, n)
			for j := range words {
				words[j] = vocab[r.Intn(len(vocab))]
			}
			texts[i] = fmt.Sprint(words)
		}
		idx := Build(mkColl(texts...))
		term := vocab[r.Intn(len(vocab))]
		hits := idx.Search(term, 0)
		if !sort.SliceIsSorted(hits, func(i, j int) bool {
			if hits[i].Score != hits[j].Score {
				return hits[i].Score > hits[j].Score
			}
			return hits[i].Doc < hits[j].Doc
		}) {
			return false
		}
		seen := map[corpus.DocID]bool{}
		for _, h := range hits {
			if seen[h.Doc] {
				return false
			}
			seen[h.Doc] = true
			found := false
			for _, tok := range idx.Collection().Doc(h.Doc).Tokenize() {
				if tok == term {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Completeness: DocFreq must equal the number of hits.
		return len(hits) == idx.DocFreq(term)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTermsCount(t *testing.T) {
	idx := Build(mkColl("alpha beta", "beta gamma"))
	if got := idx.Terms(); got != 3 {
		t.Errorf("Terms = %d, want 3", got)
	}
}
