package update

import (
	"fmt"
	"sort"
	"strings"

	"adaptiverank/internal/learn"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/vector"
)

// TopK is the first update-detection technique of Section 3.2: it
// maintains its own SVM-based linear classifier over the same features as
// the ranking model, and triggers an update when the weighted generalized
// Spearman's Footrule between the top-K feature list at the last update
// and the current top-K feature list exceeds tau.
type TopK struct {
	// K is the number of most influential features compared (200 in the
	// paper's configuration).
	K int
	// Tau is the footrule trigger threshold. The paper uses tau=0.5 with
	// its unnormalized footrule; our footrule normalizes weights and
	// positions into [0,1] (see Footrule), for which dev-set calibration
	// gives tau=0.2.
	Tau float64

	side *learn.OnlineSVM
	ref  []vector.WeightedFeature
	// Label-balancing holdback queues: the raw document stream is
	// heavily skewed toward useless documents, under which an
	// L1-regularized classifier collapses to the empty model. The side
	// classifier therefore consumes one positive and one negative at a
	// time, like a BAgg-IE committee member.
	qPos, qNeg []vector.Sparse

	// LastDistance exposes the most recent footrule value for
	// diagnostics, threshold calibration, and tests.
	LastDistance float64

	// Observability hooks, nil/disabled until Instrument is called.
	obsDist *obs.Histogram
	rec     obs.Recorder
	tr      *obs.Tracer
}

// FootruleBuckets are the histogram bounds for the normalized weighted
// footrule, which lives in [0,1].
func FootruleBuckets() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.75, 1}
}

// TopKOptions configures the detector; zero fields take Section 4 defaults.
type TopKOptions struct {
	K   int
	Tau float64
	// LambdaAll/LambdaL2 regularize the side classifier; defaults match
	// the BAgg-IE member setting.
	LambdaAll, LambdaL2 float64
}

// NewTopK builds the detector with its independent side classifier.
func NewTopK(opts TopKOptions) *TopK {
	if opts.K == 0 {
		opts.K = 200
	}
	if opts.Tau == 0 {
		opts.Tau = 0.2
	}
	if opts.LambdaAll == 0 {
		opts.LambdaAll = 0.5
	}
	if opts.LambdaL2 == 0 {
		opts.LambdaL2 = 0.99
	}
	return &TopK{
		K:    opts.K,
		Tau:  opts.Tau,
		side: learn.NewOnlineSVM(learn.ElasticNet{LambdaAll: opts.LambdaAll, LambdaL2: opts.LambdaL2}, true),
	}
}

// Name implements Detector.
func (t *TopK) Name() string { return "Top-K" }

// Instrument implements obs.Instrumentable: every decision records the
// weighted footrule distance into a histogram and, when tracing, emits a
// detector-decision event carrying the distance and the trigger outcome.
func (t *TopK) Instrument(reg *obs.Registry, rec obs.Recorder) {
	t.obsDist = reg.Histogram(obs.MetricUpdateTopKFootrule, FootruleBuckets())
	t.rec = rec
}

// InstrumentTracer implements obs.TraceInstrumentable: decision events
// are stamped with the tracer's current scope (see ModC).
func (t *TopK) InstrumentTracer(tr *obs.Tracer) { t.tr = tr }

// Prime trains the side classifier on the initial labelled sample, then
// baselines the reference feature list.
func (t *TopK) Prime(xs []vector.Sparse, useful []bool) {
	for i, x := range xs {
		t.feed(x, useful[i])
	}
	t.Reset()
}

const topkQueueCap = 2000

// feed enqueues the example and trains the side classifier on balanced
// positive/negative pairs.
func (t *TopK) feed(x vector.Sparse, useful bool) {
	if useful {
		t.qPos = append(t.qPos, x)
		if len(t.qPos) > topkQueueCap {
			t.qPos = t.qPos[1:]
		}
	} else {
		t.qNeg = append(t.qNeg, x)
		if len(t.qNeg) > topkQueueCap {
			t.qNeg = t.qNeg[1:]
		}
	}
	for len(t.qPos) > 0 && len(t.qNeg) > 0 {
		t.side.Step(t.qPos[0], 1)
		t.side.Step(t.qNeg[0], -1)
		t.qPos = t.qPos[1:]
		t.qNeg = t.qNeg[1:]
	}
}

// Observe implements Detector: update the side classifier with the new
// document and compare top-K feature lists.
func (t *TopK) Observe(x vector.Sparse, useful bool) bool {
	t.feed(x, useful)
	cur := t.side.Weights().TopK(t.K)
	t.LastDistance = Footrule(t.ref, cur)
	fired := t.LastDistance > t.Tau
	if t.obsDist != nil {
		t.obsDist.Observe(t.LastDistance)
	}
	if t.rec != nil && t.rec.Enabled() {
		entered, left, displaced := topKEvidence(t.ref, cur)
		t.rec.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: t.Name(),
			Val: t.LastDistance, Fired: fired, Span: t.tr.ScopeID(),
			Attrs: []obs.Attr{
				{Key: obs.EvidenceThreshold, Num: t.Tau},
				{Key: obs.EvidenceK, Num: float64(t.K)},
				{Key: obs.EvidenceEntered, Num: float64(entered)},
				{Key: obs.EvidenceLeft, Num: float64(left)},
				{Key: obs.EvidenceDisplaced, Str: displaced},
			}})
	}
	return fired
}

// topKEvidence compares the reference and current top-K feature lists:
// how many features entered and left the list since the last baseline,
// and the most displaced features as a "index:refRank->curRank" list
// (0-based ranks, -1 for absent). Displacement is ranked by rank delta
// — absences count as a full-list move — with feature index as the
// deterministic tiebreaker.
func topKEvidence(ref, cur []vector.WeightedFeature) (entered, left int, displaced string) {
	refPos := make(map[int32]int, len(ref))
	for p, f := range ref {
		refPos[f.Index] = p
	}
	maxMove := len(ref)
	if len(cur) > maxMove {
		maxMove = len(cur)
	}
	type move struct {
		index    int32
		from, to int
		delta    int
	}
	var moves []move
	for p, f := range cur {
		rp, ok := refPos[f.Index]
		if !ok {
			entered++
			moves = append(moves, move{index: f.Index, from: -1, to: p, delta: maxMove})
			continue
		}
		delete(refPos, f.Index)
		if d := rp - p; d != 0 {
			if d < 0 {
				d = -d
			}
			moves = append(moves, move{index: f.Index, from: rp, to: p, delta: d})
		}
	}
	left = len(refPos)
	//lint:allow detrand collection order is erased by the sort below
	for i, p := range refPos {
		moves = append(moves, move{index: i, from: p, to: -1, delta: maxMove})
	}
	sort.Slice(moves, func(a, b int) bool {
		if moves[a].delta != moves[b].delta {
			return moves[a].delta > moves[b].delta
		}
		return moves[a].index < moves[b].index
	})
	const topMoves = 5
	if len(moves) > topMoves {
		moves = moves[:topMoves]
	}
	parts := make([]string, len(moves))
	for i, m := range moves {
		parts[i] = fmt.Sprintf("%d:%d->%d", m.index, m.from, m.to)
	}
	return entered, left, strings.Join(parts, ",")
}

// Reset implements Detector: re-baseline the reference list.
func (t *TopK) Reset() {
	t.ref = t.side.Weights().TopK(t.K)
}

// SideModel exposes the side classifier (used by the search-interface
// scenario diagnostics and tests).
func (t *TopK) SideModel() *learn.OnlineSVM { return t.side }
