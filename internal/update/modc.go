package update

import (
	"math"
	"math/rand"

	"adaptiverank/internal/obs"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/vector"
)

// ModC is the second update-detection technique of Section 3.2: it keeps a
// shadow copy of the live ranking model, trains the shadow with a fraction
// Rho of the recently processed documents, and triggers an update when the
// angle between the live and shadow weight vectors exceeds AlphaDeg.
type ModC struct {
	// Rho is the fraction of processed documents fed to the shadow model
	// (0.1 in the paper's configuration).
	Rho float64
	// AlphaDeg is the trigger angle in degrees (5 for RSVM-IE, 30 for
	// BAgg-IE in the paper's configuration).
	AlphaDeg float64

	live   ranking.Ranker // the pipeline's live model (not trained here)
	shadow ranking.Ranker
	rng    *rand.Rand

	// The live model only changes at updates (followed by Reset) and the
	// shadow only changes when a rho-sampled document trains it, so the
	// angle is cached and recomputed lazily.
	liveSnap  *vector.Weights
	angle     float64
	dirty     bool
	snapDirty bool
	// shadowNNZ caches the shadow support size alongside the angle, so
	// decision evidence does not rebuild the shadow's summed weight
	// vector (BAgg allocates one per Model call) on every observation.
	shadowNNZ int

	// Observability hooks, nil/disabled until Instrument is called.
	obsAngle *obs.Histogram
	rec      obs.Recorder
	tr       *obs.Tracer
}

// NewModC builds the detector around the live ranker. The live ranker is
// only read (its Model and Clone); the pipeline remains the sole trainer
// of the live model.
func NewModC(live ranking.Ranker, rho, alphaDeg float64, seed int64) *ModC {
	if rho <= 0 {
		rho = 0.1
	}
	if alphaDeg <= 0 {
		alphaDeg = 5
	}
	return &ModC{
		Rho:       rho,
		AlphaDeg:  alphaDeg,
		live:      live,
		shadow:    live.Clone(),
		rng:       rand.New(rand.NewSource(seed)),
		snapDirty: true,
		dirty:     true,
	}
}

// Name implements Detector.
func (m *ModC) Name() string { return "Mod-C" }

// AngleBuckets are the histogram bounds for live/shadow angles, in
// degrees: fine-grained below the usual 5° trigger, coarse above.
func AngleBuckets() []float64 {
	return []float64{0.5, 1, 2, 3, 5, 7.5, 10, 15, 20, 30, 45, 60, 90}
}

// Instrument implements obs.Instrumentable: every decision records the
// live/shadow cosine angle into a histogram and, when tracing, emits a
// detector-decision event carrying the angle and the trigger outcome.
func (m *ModC) Instrument(reg *obs.Registry, rec obs.Recorder) {
	m.obsAngle = reg.Histogram(obs.MetricUpdateModCAngleDegrees, AngleBuckets())
	m.rec = rec
}

// InstrumentTracer implements obs.TraceInstrumentable: decision events
// are stamped with the tracer's current scope (the pipeline's "detect"
// span), tying each decision into the span tree causally.
func (m *ModC) InstrumentTracer(tr *obs.Tracer) { m.tr = tr }

// Angle returns the current angle between live and shadow models, in
// degrees (0 when either model is still empty).
func (m *ModC) Angle() float64 {
	if !m.dirty {
		return m.angle
	}
	if m.snapDirty {
		m.liveSnap = m.live.Model()
		m.snapDirty = false
	}
	sw := m.shadow.Model()
	m.shadowNNZ = 0
	if sw != nil {
		m.shadowNNZ = sw.NNZ()
	}
	m.angle = 0
	switch {
	case m.liveSnap == nil || sw == nil:
		// Non-linear or model-less ranker: nothing to compare.
	case m.liveSnap.NNZ() == 0 && sw.NNZ() > 0:
		// The live model is still empty but the shadow has learned
		// something: maximal divergence — the update is overdue.
		m.angle = 90
	case m.liveSnap.NNZ() == 0 || sw.NNZ() == 0:
		// Both empty (or only the shadow is): no evidence yet.
	default:
		cos := m.liveSnap.Cosine(sw)
		if cos > 1 {
			cos = 1
		}
		if cos < -1 {
			cos = -1
		}
		m.angle = math.Acos(cos) * 180 / math.Pi
	}
	m.dirty = false
	return m.angle
}

// Observe implements Detector: with probability Rho the document trains the
// shadow model; the trigger fires when the live/shadow angle exceeds Alpha.
func (m *ModC) Observe(x vector.Sparse, useful bool) bool {
	trained := false
	if m.rng.Float64() < m.Rho {
		m.shadow.Learn(x, useful)
		m.dirty = true
		trained = true
	}
	angle := m.Angle()
	fired := angle > m.AlphaDeg
	if m.obsAngle != nil {
		m.obsAngle.Observe(angle)
	}
	if m.rec != nil && m.rec.Enabled() {
		liveNNZ := 0
		if m.liveSnap != nil {
			liveNNZ = m.liveSnap.NNZ()
		}
		var shadowTrained float64
		if trained {
			shadowTrained = 1
		}
		m.rec.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: m.Name(),
			Val: angle, Fired: fired, Span: m.tr.ScopeID(),
			Attrs: []obs.Attr{
				{Key: obs.EvidenceThreshold, Num: m.AlphaDeg},
				{Key: obs.EvidenceLiveNNZ, Num: float64(liveNNZ)},
				{Key: obs.EvidenceShadowNNZ, Num: float64(m.shadowNNZ)},
				{Key: obs.EvidenceShadowTrained, Num: shadowTrained},
			}})
	}
	return fired
}

// Reset implements Detector: re-clone the (freshly updated) live model.
func (m *ModC) Reset() {
	m.shadow = m.live.Clone()
	m.snapDirty = true
	m.dirty = true
}
