package update

import (
	"adaptiverank/internal/learn"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/vector"
)

// FeatS is the feature-shifting baseline of Section 4 (after Glazer et
// al.), implemented with an online one-class SVM with a Gaussian kernel
// trained on the documents observed so far. Every CheckEvery documents it
// measures the fraction S of the recent window that falls inside the
// learned support region and triggers an update when the geometrical
// difference F = 1 - S exceeds Tau.
type FeatS struct {
	// Tau is the trigger threshold on F = 1 - S. The paper uses 0.55
	// with its one-class formulation; with our nu=0.1 online one-class
	// SVM the stationary outside-fraction is ~nu, so dev-set calibration
	// gives 0.15.
	Tau float64
	// CheckEvery is the minimum number of documents between checks (700
	// in the paper's configuration).
	CheckEvery int

	model     *learn.OneClassSVM
	window    []bool // inside/outside outcomes since the last check
	sinceLast int

	// Observability hooks, nil/disabled until Instrument is called.
	obsShift *obs.Histogram
	rec      obs.Recorder
	tr       *obs.Tracer
}

// FeatSOptions configures the detector; zero fields take Section 4
// defaults (Gaussian gamma = 0.01, tau = 0.55, check every 700 documents).
type FeatSOptions struct {
	Gamma      float64
	Nu         float64
	Budget     int
	Tau        float64
	CheckEvery int
}

// NewFeatS builds the detector.
func NewFeatS(opts FeatSOptions) *FeatS {
	if opts.Gamma == 0 {
		opts.Gamma = 0.01
	}
	if opts.Nu == 0 {
		opts.Nu = 0.1
	}
	if opts.Tau == 0 {
		opts.Tau = 0.15
	}
	if opts.CheckEvery == 0 {
		opts.CheckEvery = 700
	}
	return &FeatS{
		Tau:        opts.Tau,
		CheckEvery: opts.CheckEvery,
		model:      learn.NewOneClassSVM(opts.Gamma, opts.Nu, opts.Budget),
	}
}

// Name implements Detector.
func (f *FeatS) Name() string { return "Feat-S" }

// Instrument implements obs.Instrumentable: each periodic check records
// the geometrical-difference fraction F = 1 - S into a histogram and,
// when tracing, emits a detector-decision event. Between checks the
// detector makes no decision, so nothing is recorded.
func (f *FeatS) Instrument(reg *obs.Registry, rec obs.Recorder) {
	f.obsShift = reg.Histogram(obs.MetricUpdateFeatSShift, []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1})
	f.rec = rec
}

// InstrumentTracer implements obs.TraceInstrumentable: decision events
// are stamped with the tracer's current scope (see ModC).
func (f *FeatS) InstrumentTracer(tr *obs.Tracer) { f.tr = tr }

// Prime trains the one-class model on the initial sample.
func (f *FeatS) Prime(xs []vector.Sparse) {
	for _, x := range xs {
		f.model.Step(x)
	}
}

// Observe implements Detector.
func (f *FeatS) Observe(x vector.Sparse, _ bool) bool {
	inside := f.model.Inside(x)
	f.model.Step(x)
	f.window = append(f.window, inside)
	f.sinceLast++
	if f.sinceLast < f.CheckEvery {
		return false
	}
	insideCount := 0
	for _, in := range f.window {
		if in {
			insideCount++
		}
	}
	// Window state is evidence: capture it before the cadence reset below
	// erases it.
	windowLen := len(f.window)
	s := float64(insideCount) / float64(windowLen)
	f.window = f.window[:0]
	f.sinceLast = 0
	shift := 1 - s
	fired := shift > f.Tau
	if f.obsShift != nil {
		f.obsShift.Observe(shift)
	}
	if f.rec != nil && f.rec.Enabled() {
		f.rec.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: f.Name(),
			Val: shift, Fired: fired, Span: f.tr.ScopeID(),
			Attrs: []obs.Attr{
				{Key: obs.EvidenceThreshold, Num: f.Tau},
				{Key: obs.EvidenceWindow, Num: float64(windowLen)},
				{Key: obs.EvidenceInside, Num: float64(insideCount)},
				{Key: obs.EvidenceCheckEvery, Num: float64(f.CheckEvery)},
			}})
	}
	return fired
}

// Reset implements Detector: the one-class model keeps learning across
// updates; only the window restarts.
func (f *FeatS) Reset() {
	f.window = f.window[:0]
	f.sinceLast = 0
}
