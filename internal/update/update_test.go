package update

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiverank/internal/ranking"
	"adaptiverank/internal/vector"
)

func feats(pairs ...interface{}) vector.Sparse {
	m := make(map[int32]float64)
	for i := 0; i+1 < len(pairs); i += 2 {
		m[int32(pairs[i].(int))] = float64(pairs[i+1].(int))
	}
	return vector.FromCounts(m).Normalize()
}

func wf(idx int, w float64) vector.WeightedFeature {
	return vector.WeightedFeature{Index: int32(idx), Weight: w}
}

func TestFootruleIdentityIsZero(t *testing.T) {
	a := []vector.WeightedFeature{wf(1, 3), wf(2, 2), wf(3, 1)}
	if d := Footrule(a, a); d != 0 {
		t.Errorf("Footrule(a,a) = %g, want 0", d)
	}
}

func TestFootruleSymmetric(t *testing.T) {
	a := []vector.WeightedFeature{wf(1, 3), wf(2, 2)}
	b := []vector.WeightedFeature{wf(2, 4), wf(5, 1)}
	if math.Abs(Footrule(a, b)-Footrule(b, a)) > 1e-12 {
		t.Error("Footrule must be symmetric")
	}
}

func TestFootruleDisjointListsLarge(t *testing.T) {
	a := []vector.WeightedFeature{wf(1, 1), wf(2, 1)}
	b := []vector.WeightedFeature{wf(8, 1), wf(9, 1)}
	same := Footrule(a, []vector.WeightedFeature{wf(1, 1), wf(2, 1)})
	if d := Footrule(a, b); d <= same {
		t.Errorf("disjoint distance %g must exceed identical distance %g", d, same)
	}
}

func TestFootruleSwapSmallerThanReplacement(t *testing.T) {
	base := []vector.WeightedFeature{wf(1, 5), wf(2, 4), wf(3, 3)}
	swapped := []vector.WeightedFeature{wf(2, 5), wf(1, 4), wf(3, 3)}
	replaced := []vector.WeightedFeature{wf(9, 5), wf(8, 4), wf(7, 3)}
	if Footrule(base, swapped) >= Footrule(base, replaced) {
		t.Error("swapping two features must move the metric less than replacing all of them")
	}
}

func TestFootruleEmptyLists(t *testing.T) {
	if d := Footrule(nil, nil); d != 0 {
		t.Errorf("Footrule(nil,nil) = %g, want 0", d)
	}
}

func TestQuickFootruleBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func() []vector.WeightedFeature {
			n := r.Intn(8)
			out := make([]vector.WeightedFeature, 0, n)
			w := vector.NewWeights()
			for i := 0; i < n; i++ {
				w.Set(int32(r.Intn(20)), float64(1+r.Intn(9)))
			}
			out = append(out, w.TopK(n)...)
			return out
		}
		d := Footrule(gen(), gen())
		return d >= 0 && d <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindFTriggersOnSchedule(t *testing.T) {
	w := NewWindF(3)
	x := feats(0, 1)
	triggers := 0
	for i := 0; i < 9; i++ {
		if w.Observe(x, false) {
			triggers++
			w.Reset()
		}
	}
	if triggers != 3 {
		t.Errorf("triggers = %d over 9 docs with window 3, want 3", triggers)
	}
}

func TestWindFMinimumWindow(t *testing.T) {
	w := NewWindF(0)
	if w.Window != 1 {
		t.Errorf("window = %d, want clamped to 1", w.Window)
	}
}

func TestTopKTriggersOnDistributionShift(t *testing.T) {
	tk := NewTopK(TopKOptions{K: 50, Tau: 0.2})
	r := rand.New(rand.NewSource(1))
	mk := func(base int) vector.Sparse {
		return feats(base+r.Intn(3), 1, base+3+r.Intn(3), 1)
	}
	// Prime on distribution A.
	var xs []vector.Sparse
	var ys []bool
	for i := 0; i < 200; i++ {
		xs = append(xs, mk(0))
		ys = append(ys, i%2 == 0)
	}
	tk.Prime(xs, ys)
	// Stream from a different distribution: useful docs now carry
	// different features, so the top-K list must shift.
	triggered := false
	for i := 0; i < 400 && !triggered; i++ {
		triggered = tk.Observe(mk(100), i%2 == 0)
	}
	if !triggered {
		t.Errorf("Top-K never triggered on a feature shift (last distance %.3f)", tk.LastDistance)
	}
}

func TestTopKStableStreamNoImmediateTrigger(t *testing.T) {
	tk := NewTopK(TopKOptions{K: 50, Tau: 0.5})
	r := rand.New(rand.NewSource(2))
	mk := func() vector.Sparse { return feats(r.Intn(3), 1, 3+r.Intn(3), 1) }
	var xs []vector.Sparse
	var ys []bool
	for i := 0; i < 300; i++ {
		xs = append(xs, mk())
		ys = append(ys, i%2 == 0)
	}
	tk.Prime(xs, ys)
	if tk.Observe(mk(), true) {
		t.Errorf("stationary stream triggered immediately (distance %.3f)", tk.LastDistance)
	}
}

func TestModCTriggersWhenShadowDiverges(t *testing.T) {
	live := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 3})
	// Give the live model some initial shape.
	for i := 0; i < 40; i++ {
		live.Learn(feats(0, 1, 1, 1), true)
		live.Learn(feats(5, 1, 6, 1), false)
	}
	m := NewModC(live, 1.0, 5, 4) // rho=1: every doc trains the shadow
	triggered := false
	for i := 0; i < 300 && !triggered; i++ {
		// New evidence flips the sign of the informative features.
		triggered = m.Observe(feats(5, 1, 6, 1), true)
		if !triggered {
			triggered = m.Observe(feats(0, 1, 1, 1), false)
		}
	}
	if !triggered {
		t.Errorf("Mod-C never triggered on contradictory evidence (angle %.2f)", m.Angle())
	}
}

func TestModCEmptyLiveModelTriggersOnEvidence(t *testing.T) {
	live := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 5})
	m := NewModC(live, 1.0, 5, 6)
	triggered := false
	for i := 0; i < 50 && !triggered; i++ {
		m.Observe(feats(1, 1), false)
		triggered = m.Observe(feats(0, 1, 1, 1), true)
	}
	if !triggered {
		t.Error("Mod-C with an empty live model must trigger once the shadow learns")
	}
}

func TestModCResetClearsAngle(t *testing.T) {
	live := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 7})
	for i := 0; i < 20; i++ {
		live.Learn(feats(0, 1), true)
		live.Learn(feats(5, 1), false)
	}
	m := NewModC(live, 1.0, 5, 8)
	for i := 0; i < 50; i++ {
		m.Observe(feats(5, 1), true)
	}
	m.Reset()
	if a := m.Angle(); a != 0 {
		t.Errorf("angle after Reset = %.2f, want 0 (shadow == live)", a)
	}
}

func TestFeatSCadence(t *testing.T) {
	f := NewFeatS(FeatSOptions{CheckEvery: 10, Tau: 0.01})
	// Prime on one region, then stream from another: after 10 docs the
	// check fires and the outside fraction exceeds tau.
	var xs []vector.Sparse
	for i := 0; i < 50; i++ {
		xs = append(xs, feats(0, 1, 1, 1))
	}
	f.Prime(xs)
	trigAt := -1
	for i := 0; i < 30; i++ {
		if f.Observe(feats(40+i%3, 1), false) {
			trigAt = i
			break
		}
	}
	if trigAt == -1 {
		t.Fatal("Feat-S never triggered on a shifted stream")
	}
	if trigAt < 9 {
		t.Errorf("Feat-S triggered at doc %d, before the %d-doc cadence", trigAt, 10)
	}
}

func TestDetectorNames(t *testing.T) {
	live := ranking.NewRSVMIE(ranking.RSVMOptions{})
	for name, d := range map[string]Detector{
		"Wind-F": NewWindF(5),
		"Top-K":  NewTopK(TopKOptions{}),
		"Mod-C":  NewModC(live, 0.1, 5, 1),
		"Feat-S": NewFeatS(FeatSOptions{}),
	} {
		if d.Name() != name {
			t.Errorf("Name = %q, want %q", d.Name(), name)
		}
	}
}

func TestTopKDefaults(t *testing.T) {
	tk := NewTopK(TopKOptions{})
	if tk.K != 200 || tk.Tau != 0.2 {
		t.Errorf("defaults = {K:%d, Tau:%g}, want {200, 0.2}", tk.K, tk.Tau)
	}
}

func TestTopKQueuesBounded(t *testing.T) {
	tk := NewTopK(TopKOptions{K: 10})
	x := feats(0, 1)
	// A one-sided stream must not grow the holdback queue without bound.
	for i := 0; i < topkQueueCap+500; i++ {
		tk.Observe(x, false)
	}
	if len(tk.qNeg) > topkQueueCap {
		t.Errorf("negative queue grew to %d, cap is %d", len(tk.qNeg), topkQueueCap)
	}
	if len(tk.qPos) != 0 {
		t.Errorf("positive queue has %d entries with no positives", len(tk.qPos))
	}
}

func TestModCRhoZeroDefaultsApplied(t *testing.T) {
	live := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 20})
	m := NewModC(live, 0, 0, 21)
	if m.Rho != 0.1 || m.AlphaDeg != 5 {
		t.Errorf("defaults = {Rho:%g, Alpha:%g}, want {0.1, 5}", m.Rho, m.AlphaDeg)
	}
}

func TestFeatSDefaults(t *testing.T) {
	f := NewFeatS(FeatSOptions{})
	if f.Tau != 0.15 || f.CheckEvery != 700 {
		t.Errorf("defaults = {Tau:%g, CheckEvery:%d}", f.Tau, f.CheckEvery)
	}
}
