package update

import (
	"math"
	"sort"

	"adaptiverank/internal/vector"
)

// Footrule computes the weighted generalized Spearman's Footrule of the
// paper's footnote 7 between two ranked, weighted feature lists:
//
//	F(A,B) = sum_i w_i * | sum_{j: rankA(j) <= rankA(i)} w_j
//	                     - sum_{j: rankB(j) <= rankB(i)} w_j |
//
// Lists are ranked by decreasing |weight|; the per-feature weight w_i is
// the mean absolute weight of the feature across the two lists (0 for a
// list where it is absent). A feature absent from a list is treated as
// ranked past the end of that list, so its prefix sum there is the list's
// total weight — heavily weighted features entering or leaving the top-K
// therefore move the metric most, as intended.
// Both the per-feature weights and the prefix positions are normalized by
// the lists' total weight, so the distance lies in [0,1] and the threshold
// tau is scale-free (the raw SVM weight magnitudes drift as training
// progresses, which would otherwise change what a fixed tau means).
func Footrule(a, b []vector.WeightedFeature) float64 {
	posA, totalA := prefixPositions(a)
	posB, totalB := prefixPositions(b)
	if totalA == 0 && totalB == 0 {
		return 0
	}

	universe := make(map[int32]float64)
	var wTotal float64
	for _, f := range a {
		universe[f.Index] += math.Abs(f.Weight) / 2
		wTotal += math.Abs(f.Weight) / 2
	}
	for _, f := range b {
		universe[f.Index] += math.Abs(f.Weight) / 2
		wTotal += math.Abs(f.Weight) / 2
	}
	if wTotal == 0 {
		return 0
	}

	// Fold in sorted feature order: the distance feeds Top-K's trigger
	// comparison against tau, and float addition over Go's randomized
	// map order would make identical runs disagree in the last ulps.
	idxs := make([]int32, 0, len(universe))
	//lint:allow detrand index collection is sorted immediately below
	for idx := range universe {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var d float64
	for _, idx := range idxs {
		w := universe[idx]
		pa, pb := 1.0, 1.0
		if totalA > 0 {
			if p, ok := posA[idx]; ok {
				pa = p / totalA
			}
		}
		if totalB > 0 {
			if p, ok := posB[idx]; ok {
				pb = p / totalB
			}
		}
		d += (w / wTotal) * math.Abs(pa-pb)
	}
	return d
}

// prefixPositions maps each feature to the cumulative |weight| of all
// features ranked at or before it (lists arrive sorted by decreasing
// |weight| from vector.Weights.TopK), and returns the total weight.
func prefixPositions(list []vector.WeightedFeature) (map[int32]float64, float64) {
	pos := make(map[int32]float64, len(list))
	var cum float64
	for _, f := range list {
		cum += math.Abs(f.Weight)
		pos[f.Index] = cum
	}
	return pos, cum
}
