// Package update implements the update-detection techniques of Section 3.2
// — Top-K and Mod-C — plus the Wind-F and Feat-S baselines of Section 4.
// A detector watches the stream of processed, freshly-labelled documents
// and decides when updating the ranking model (and re-ranking the pending
// documents) is likely to pay off.
package update

import "adaptiverank/internal/vector"

// Detector decides when the ranking model should be updated.
type Detector interface {
	// Name identifies the technique ("Top-K", "Mod-C", ...).
	Name() string
	// Observe is called once per processed document, with the document's
	// feature vector and its extraction outcome; it returns true when a
	// model update should be triggered now.
	Observe(x vector.Sparse, useful bool) bool
	// Reset is called right after the pipeline performs a model update,
	// so the detector can re-baseline against the refreshed model.
	Reset()
}

// WindF is the naive fixed-window baseline: it triggers an update every
// Window processed documents, regardless of content.
type WindF struct {
	Window int
	seen   int
}

// NewWindF returns a fixed-window detector. The paper's configuration
// updates 50 times over the collection, i.e. Window = len(collection)/50.
func NewWindF(window int) *WindF {
	if window < 1 {
		window = 1
	}
	return &WindF{Window: window}
}

// Name implements Detector.
func (w *WindF) Name() string { return "Wind-F" }

// Observe implements Detector.
func (w *WindF) Observe(vector.Sparse, bool) bool {
	w.seen++
	return w.seen >= w.Window
}

// Reset implements Detector.
func (w *WindF) Reset() { w.seen = 0 }
