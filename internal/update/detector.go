// Package update implements the update-detection techniques of Section 3.2
// — Top-K and Mod-C — plus the Wind-F and Feat-S baselines of Section 4.
// A detector watches the stream of processed, freshly-labelled documents
// and decides when updating the ranking model (and re-ranking the pending
// documents) is likely to pay off.
package update

import (
	"adaptiverank/internal/obs"
	"adaptiverank/internal/vector"
)

// Detector decides when the ranking model should be updated.
type Detector interface {
	// Name identifies the technique ("Top-K", "Mod-C", ...).
	Name() string
	// Observe is called once per processed document, with the document's
	// feature vector and its extraction outcome; it returns true when a
	// model update should be triggered now.
	Observe(x vector.Sparse, useful bool) bool
	// Reset is called right after the pipeline performs a model update,
	// so the detector can re-baseline against the refreshed model.
	Reset()
}

// WindF is the naive fixed-window baseline: it triggers an update every
// Window processed documents, regardless of content.
type WindF struct {
	Window int
	seen   int

	// Observability hooks, nil/disabled until Instrument is called.
	obsProg *obs.Histogram
	rec     obs.Recorder
	tr      *obs.Tracer
}

// NewWindF returns a fixed-window detector. The paper's configuration
// updates 50 times over the collection, i.e. Window = len(collection)/50.
func NewWindF(window int) *WindF {
	if window < 1 {
		window = 1
	}
	return &WindF{Window: window}
}

// Name implements Detector.
func (w *WindF) Name() string { return "Wind-F" }

// Instrument implements obs.Instrumentable: every decision records the
// window-progress fraction seen/Window into a histogram and, when
// tracing, emits a detector-decision event — the schedule-driven
// counterpart of the content-driven detectors' statistics, so a trace
// always explains a Wind-F fire as "the window filled".
func (w *WindF) Instrument(reg *obs.Registry, rec obs.Recorder) {
	w.obsProg = reg.Histogram(obs.MetricUpdateWindFProgress,
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
	w.rec = rec
}

// InstrumentTracer implements obs.TraceInstrumentable: decision events
// are stamped with the tracer's current scope (see ModC).
func (w *WindF) InstrumentTracer(tr *obs.Tracer) { w.tr = tr }

// Observe implements Detector.
func (w *WindF) Observe(vector.Sparse, bool) bool {
	w.seen++
	fired := w.seen >= w.Window
	progress := float64(w.seen) / float64(w.Window)
	if w.obsProg != nil {
		w.obsProg.Observe(progress)
	}
	if w.rec != nil && w.rec.Enabled() {
		w.rec.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: w.Name(),
			Val: progress, Fired: fired, Span: w.tr.ScopeID(),
			Attrs: []obs.Attr{
				{Key: obs.EvidenceThreshold, Num: float64(w.Window)},
				{Key: obs.EvidenceSeen, Num: float64(w.seen)},
				{Key: obs.EvidenceWindow, Num: float64(w.Window)},
			}})
	}
	return fired
}

// Reset implements Detector.
func (w *WindF) Reset() { w.seen = 0 }
