// Package benchgate defines the machine-readable benchmark trajectory
// format written by the root test package's -bench-out flag and the
// comparison rules that gate performance regressions in CI. A committed
// baseline file (BENCH_scoring.json) is the repository's perf contract:
// cmd/benchgate re-compares a fresh run against it and fails the build
// when a gated metric regresses beyond the threshold.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result is one benchmark's final (largest-N) measurement.
type Result struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
	// Elapsed is the total measured time of the final run, nanoseconds.
	Elapsed int64 `json:"elapsed_ns"`
	// Metrics holds the gated measurements, reported through
	// testing.B.ReportMetric and mirrored here: ratio metrics such as
	// "ns/score" and "docs/sec" (from the shared experiment env) and the
	// allocation budgets "allocs/op" and "B/op" (from the scoring
	// microbenches). See Compare for the per-name gating rules.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the -bench-out document: one benchmark trajectory snapshot.
// The environment header (Go, GOOS, GOARCH, GOMAXPROCS) records where the
// trajectory was measured; EnvMismatch compares headers so a gate failure
// on different hardware can be read for what it is.
type File struct {
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	Scale      string   `json:"scale,omitempty"` // ADAPTIVERANK_BENCH at write time
	Results    []Result `json:"results"`
}

// Lookup finds a result by benchmark name.
func (f *File) Lookup(name string) (Result, bool) {
	for _, r := range f.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Load reads and validates a trajectory file. Malformed JSON, an empty
// result list, or results without names are errors: a gate that silently
// compares nothing would pass forever.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("benchgate: %s: no benchmark results", path)
	}
	for _, r := range f.Results {
		if r.Name == "" {
			return nil, fmt.Errorf("benchgate: %s: result with empty name", path)
		}
	}
	return &f, nil
}

// EnvMismatch compares the environment headers of two trajectory files
// and describes every difference in human-readable form. Mismatches are
// warnings, never gate failures: a threshold tuned on one machine still
// catches gross regressions on another, but the reader of a borderline
// finding should know the numbers came from different worlds. Fields the
// baseline never recorded (older files predate GOMAXPROCS, for example)
// are skipped rather than reported, so refreshing the toolchain does not
// spam every run.
func EnvMismatch(baseline, current *File) []string {
	var out []string
	diff := func(field, b, c string) {
		if b != "" && c != "" && b != c {
			out = append(out, fmt.Sprintf("%s differs: baseline %s, current %s", field, b, c))
		}
	}
	diff("go version", baseline.Go, current.Go)
	diff("GOOS", baseline.GOOS, current.GOOS)
	diff("GOARCH", baseline.GOARCH, current.GOARCH)
	if baseline.GOMAXPROCS != 0 && current.GOMAXPROCS != 0 && baseline.GOMAXPROCS != current.GOMAXPROCS {
		out = append(out, fmt.Sprintf("GOMAXPROCS differs: baseline %d, current %d",
			baseline.GOMAXPROCS, current.GOMAXPROCS))
	}
	diff("scale", baseline.Scale, current.Scale)
	return out
}

// Finding is one gated-metric regression (or a missing benchmark).
type Finding struct {
	Bench  string
	Metric string
	// Baseline and Current are the compared values; both are zero for a
	// missing-benchmark finding.
	Baseline, Current float64
	// Limit is the value Current crossed.
	Limit float64
}

// MetricMissing is the Finding.Metric value for a benchmark present in
// the baseline but absent from the current run.
const MetricMissing = "missing"

func (f Finding) String() string {
	if f.Metric == MetricMissing {
		return fmt.Sprintf("%s: benchmark missing from current run", f.Bench)
	}
	return fmt.Sprintf("%s: %s regressed: baseline %.4g, current %.4g (limit %.4g)",
		f.Bench, f.Metric, f.Baseline, f.Current, f.Limit)
}

// allocSlack absorbs sub-allocation measurement jitter: an alloc budget
// of 0 still requires 0 (the first whole allocation trips the gate), and
// background fractions below half an allocation per op do not.
const allocSlack = 0.5

// bytesSlack is the absolute B/op headroom added on top of the relative
// threshold, so a 0 B/op baseline tolerates stray sub-op runtime bytes
// without letting a real per-op allocation (16 B+) through.
const bytesSlack = 8.0

// Compare gates current against baseline. For every baseline benchmark:
//
//   - a benchmark absent from current is a finding (the committed
//     trajectory must not silently lose coverage);
//   - each metric recorded in both files is gated by name:
//     "allocs/op" near-exactly (current > baseline + 0.5 fails, so a
//     0-alloc budget stays 0); "B/op" at threshold plus a small absolute
//     slack; names ending "/sec" (docs/sec) regress downward at
//     threshold; everything else (ns/score) regresses upward at
//     threshold.
//
// Raw NsPerOp is deliberately not gated: the ratio metrics cover time
// per unit of real work, while an experiment-suite op spans a whole
// render whose cost moves with cache state and scale knobs. Metrics in
// the baseline but not re-measured in current (a fully cached rerun
// records no ns/score) are skipped, and benchmarks present only in
// current are ignored — adding coverage never fails the gate.
func Compare(baseline, current *File, threshold float64) []Finding {
	var out []Finding
	for _, base := range baseline.Results {
		cur, ok := current.Lookup(base.Name)
		if !ok {
			out = append(out, Finding{Bench: base.Name, Metric: MetricMissing})
			continue
		}
		names := make([]string, 0, len(base.Metrics))
		for name := range base.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bv := base.Metrics[name]
			cv, ok := cur.Metrics[name]
			if !ok {
				continue // not re-measured (e.g. fully cached rerun)
			}
			var limit float64
			regressed := false
			switch {
			case name == "allocs/op":
				limit = bv + allocSlack
				regressed = cv > limit
			case name == "B/op":
				limit = bv*(1+threshold) + bytesSlack
				regressed = cv > limit
			case strings.HasSuffix(name, "/sec"):
				limit = bv * (1 - threshold)
				regressed = bv > 0 && cv < limit
			default:
				limit = bv * (1 + threshold)
				regressed = bv > 0 && cv > limit
			}
			if regressed {
				out = append(out, Finding{Bench: base.Name, Metric: name,
					Baseline: bv, Current: cv, Limit: limit})
			}
		}
	}
	return out
}
