package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkfile(results ...Result) *File {
	return &File{Go: "go1.24", GOOS: "linux", GOARCH: "amd64", Results: results}
}

func res(name string, metrics map[string]float64) Result {
	return Result{Name: name, N: 100, NsPerOp: 1000, Elapsed: 100000, Metrics: metrics}
}

func findingFor(fs []Finding, bench, metric string) (Finding, bool) {
	for _, f := range fs {
		if f.Bench == bench && f.Metric == metric {
			return f, true
		}
	}
	return Finding{}, false
}

func TestEnvMismatch(t *testing.T) {
	base := &File{Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8, Scale: "test"}

	if ws := EnvMismatch(base, &File{Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8, Scale: "test"}); len(ws) != 0 {
		t.Fatalf("identical env produced warnings: %v", ws)
	}

	cur := &File{Go: "go1.25.1", GOOS: "darwin", GOARCH: "arm64", GOMAXPROCS: 4, Scale: "bench"}
	ws := EnvMismatch(base, cur)
	if len(ws) != 5 {
		t.Fatalf("EnvMismatch = %d warnings, want 5: %v", len(ws), ws)
	}
	for i, frag := range []string{
		"go version differs: baseline go1.24.0, current go1.25.1",
		"GOOS differs",
		"GOARCH differs",
		"GOMAXPROCS differs: baseline 8, current 4",
		"scale differs",
	} {
		if !strings.Contains(ws[i], frag) {
			t.Errorf("warning[%d] = %q, want substring %q", i, ws[i], frag)
		}
	}

	// Fields the baseline never recorded are skipped, not reported: old
	// trajectory files predate GOMAXPROCS and Scale.
	old := &File{Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64"}
	if ws := EnvMismatch(old, cur); len(ws) != 3 {
		t.Fatalf("legacy-baseline warnings = %v, want only go/GOOS/GOARCH", ws)
	}
}

func TestCompareClean(t *testing.T) {
	base := mkfile(res("BenchmarkScoring", map[string]float64{
		"ns/score": 100, "docs/sec": 5000, "allocs/op": 0, "B/op": 0,
	}))
	cur := mkfile(res("BenchmarkScoring", map[string]float64{
		"ns/score": 110, "docs/sec": 4500, "allocs/op": 0, "B/op": 2,
	}))
	if fs := Compare(base, cur, 0.15); len(fs) != 0 {
		t.Fatalf("within-threshold run produced findings: %v", fs)
	}
}

func TestCompareRegressions(t *testing.T) {
	base := mkfile(res("BenchmarkScoring", map[string]float64{
		"ns/score": 100, "docs/sec": 5000, "allocs/op": 0, "B/op": 100,
	}))
	cur := mkfile(res("BenchmarkScoring", map[string]float64{
		"ns/score":  120,  // +20% > 15% threshold
		"docs/sec":  4000, // -20% > 15% threshold
		"allocs/op": 1,    // budget was 0
		"B/op":      200,  // double the bytes
	}))
	fs := Compare(base, cur, 0.15)
	for _, metric := range []string{"ns/score", "docs/sec", "allocs/op", "B/op"} {
		f, ok := findingFor(fs, "BenchmarkScoring", metric)
		if !ok {
			t.Errorf("no finding for regressed metric %q (got %v)", metric, fs)
			continue
		}
		if f.String() == "" {
			t.Errorf("empty rendering for %q", metric)
		}
	}
	if len(fs) != 4 {
		t.Errorf("want exactly 4 findings, got %d: %v", len(fs), fs)
	}
}

func TestCompareDirectionality(t *testing.T) {
	// Improvements in either direction are never findings.
	base := mkfile(res("B", map[string]float64{"ns/score": 100, "docs/sec": 5000}))
	cur := mkfile(res("B", map[string]float64{"ns/score": 10, "docs/sec": 50000}))
	if fs := Compare(base, cur, 0.15); len(fs) != 0 {
		t.Fatalf("improvements flagged as regressions: %v", fs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := mkfile(res("BenchmarkGone", nil), res("BenchmarkKept", nil))
	cur := mkfile(res("BenchmarkKept", nil), res("BenchmarkNew", nil))
	fs := Compare(base, cur, 0.15)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	if f := fs[0]; f.Bench != "BenchmarkGone" || f.Metric != MetricMissing {
		t.Fatalf("unexpected finding %+v", f)
	}
}

func TestCompareSkipsUnmeasuredMetrics(t *testing.T) {
	// A cached rerun records no ratio metrics; the gate must not treat
	// absence as a zero measurement.
	base := mkfile(res("B", map[string]float64{"ns/score": 100, "allocs/op": 0}))
	cur := mkfile(res("B", nil))
	if fs := Compare(base, cur, 0.15); len(fs) != 0 {
		t.Fatalf("unmeasured metrics flagged: %v", fs)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	doc := `{"go":"go1.24","goos":"linux","goarch":"amd64","results":[
		{"name":"BenchmarkX","n":5,"ns_per_op":12.5,"elapsed_ns":62,
		 "metrics":{"ns/score":3.5,"docs/sec":100}}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := f.Lookup("BenchmarkX")
	if !ok {
		t.Fatal("BenchmarkX not found")
	}
	if r.Metrics["ns/score"] != 3.5 || r.Metrics["docs/sec"] != 100 {
		t.Fatalf("metrics lost in round trip: %+v", r.Metrics)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"malformed.json": `{"results": [`,
		"empty.json":     `{"results": []}`,
		"unnamed.json":   `{"results": [{"n": 1}]}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("Load(%s) succeeded on invalid input", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("Load succeeded on missing file")
	}
}
