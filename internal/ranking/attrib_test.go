package ranking

import (
	"math/rand"
	"testing"
)

// The attribution contract pinned here: Attribute(x).Score is bitwise
// equal to ScorePacked(x), Reconstruct() rebuilds that same float64
// from the parts, every reported contribution is nonzero, and the
// contributions arrive in ascending feature-index order (the fold order
// that makes the sum exact).

func checkAttribution(t *testing.T, rk Ranker, seed int64) {
	t.Helper()
	at, ok := rk.(Attributor)
	if !ok {
		t.Fatalf("%s does not implement Attributor", rk.Name())
	}
	ps := rk.(PackedScorer)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < 500; i++ {
		x := example(r, i%3 == 0).Packed()
		want := ps.ScorePacked(x)
		a := at.Attribute(x)
		if a.Score != want {
			t.Fatalf("doc %d: Attribute.Score = %v, ScorePacked = %v (bits differ)", i, a.Score, want)
		}
		if got := a.Reconstruct(); got != want {
			t.Fatalf("doc %d: Reconstruct = %v, ScorePacked = %v (bits differ)", i, got, want)
		}
		for mi, m := range a.Members {
			var margin float64
			for j, c := range m.Contribs {
				if c.Value == 0 {
					t.Fatalf("doc %d member %d: zero contribution reported for feature %d", i, mi, c.Index)
				}
				if j > 0 && m.Contribs[j-1].Index >= c.Index {
					t.Fatalf("doc %d member %d: contributions not in ascending index order", i, mi)
				}
				margin += c.Value
			}
			if margin += m.Bias; margin != m.Margin {
				t.Fatalf("doc %d member %d: contribution fold %v != Margin %v", i, mi, margin, m.Margin)
			}
		}
	}
}

func TestRSVMIEAttributionReconstructsScore(t *testing.T) {
	rk := NewRSVMIE(RSVMOptions{Seed: 3})
	trainRanker(t, rk, 2000, 7)
	checkAttribution(t, rk, 11)
}

func TestBAggIEAttributionReconstructsScore(t *testing.T) {
	rk := NewBAggIE(BAggOptions{})
	trainRanker(t, rk, 2000, 7)
	checkAttribution(t, rk, 11)
	a := rk.Attribute(example(rand.New(rand.NewSource(13)), true).Packed())
	if len(a.Members) != rk.Members() {
		t.Fatalf("BAgg attribution has %d members, committee has %d", len(a.Members), rk.Members())
	}
	if !a.Logistic {
		t.Fatal("BAgg attribution must be marked logistic")
	}
}

// Untrained models attribute too: no contributions, but the score still
// reconstructs (0 for RSVM, the members' logistic biases for BAgg).
func TestAttributionUntrained(t *testing.T) {
	for _, rk := range []Ranker{NewRSVMIE(RSVMOptions{}), NewBAggIE(BAggOptions{})} {
		checkAttribution(t, rk, 17)
	}
}
