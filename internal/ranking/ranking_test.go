package ranking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/vector"
)

// synthetic featurized examples: useful docs share features 0..4, useless
// docs share 5..9, both share noise features 100+.
func example(r *rand.Rand, useful bool) vector.Sparse {
	m := make(map[int32]float64)
	base := int32(5)
	if useful {
		base = 0
	}
	m[base+int32(r.Intn(5))] = 1
	m[base+int32(r.Intn(5))] = 1
	m[100+int32(r.Intn(40))] = 1
	return vector.FromCounts(m).Normalize()
}

func trainRanker(t *testing.T, rk Ranker, n int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		useful := r.Intn(10) == 0 // 10% positive rate, like a sparse relation
		rk.Learn(example(r, useful), useful)
	}
}

func rankerSeparates(rk Ranker, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	wins, total := 0, 0
	for i := 0; i < 300; i++ {
		u := rk.Score(example(r, true))
		x := rk.Score(example(r, false))
		total++
		if u > x {
			wins++
		}
	}
	return float64(wins) / float64(total)
}

func TestRSVMIESeparatesUsefulDocs(t *testing.T) {
	rk := NewRSVMIE(RSVMOptions{Seed: 1})
	trainRanker(t, rk, 3000, 2)
	if auc := rankerSeparates(rk, 3); auc < 0.9 {
		t.Errorf("pairwise accuracy = %.3f, want >= 0.9", auc)
	}
}

func TestBAggIESeparatesUsefulDocs(t *testing.T) {
	rk := NewBAggIE(BAggOptions{})
	trainRanker(t, rk, 3000, 4)
	if auc := rankerSeparates(rk, 5); auc < 0.85 {
		t.Errorf("pairwise accuracy = %.3f, want >= 0.85", auc)
	}
}

func TestBAggIEScoreRange(t *testing.T) {
	rk := NewBAggIE(BAggOptions{})
	trainRanker(t, rk, 500, 6)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		s := rk.Score(example(r, i%2 == 0))
		if s < 0 || s > float64(rk.Members()) {
			t.Fatalf("score %g outside [0, members]", s)
		}
	}
}

func TestRSVMCloneIndependence(t *testing.T) {
	rk := NewRSVMIE(RSVMOptions{Seed: 8})
	trainRanker(t, rk, 200, 9)
	before := rk.Model().ToSparse()
	c := rk.Clone()
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		c.Learn(example(r, i%2 == 0), i%2 == 0)
	}
	if !rk.Model().ToSparse().Equal(before) {
		t.Error("training a clone mutated the original RSVM-IE model")
	}
}

func TestBAggCloneIndependence(t *testing.T) {
	rk := NewBAggIE(BAggOptions{})
	trainRanker(t, rk, 200, 11)
	before := rk.Model().ToSparse()
	c := rk.Clone()
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 500; i++ {
		c.Learn(example(r, i%2 == 0), i%2 == 0)
	}
	if !rk.Model().ToSparse().Equal(before) {
		t.Error("training a clone mutated the original BAgg-IE model")
	}
}

func TestRSVMNoPairsWithoutBothLabels(t *testing.T) {
	rk := NewRSVMIE(RSVMOptions{Seed: 13})
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 100; i++ {
		rk.Learn(example(r, false), false) // only negatives: no pairs form
	}
	if rk.Steps() != 0 {
		t.Errorf("Steps = %d with single-label stream, want 0", rk.Steps())
	}
}

func TestRandomRankerIgnoresLearning(t *testing.T) {
	rk := NewRandomRanker(1)
	r := rand.New(rand.NewSource(2))
	rk.Learn(example(r, true), true)
	if rk.Model() != nil {
		t.Error("random ranker must have no model")
	}
}

func TestReservoirBounded(t *testing.T) {
	res := newReservoir(10, 1)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		res.add(example(r, true))
	}
	if res.len() != 10 {
		t.Errorf("reservoir size = %d, want cap 10", res.len())
	}
	if res.seen != 1000 {
		t.Errorf("seen = %d, want 1000", res.seen)
	}
}

func TestReservoirSampleEmpty(t *testing.T) {
	res := newReservoir(4, 3)
	if _, ok := res.sample(); ok {
		t.Error("sample from empty reservoir must report !ok")
	}
}

func TestFeaturizerCachesAndNormalizes(t *testing.T) {
	f := NewFeaturizer()
	d := &corpus.Document{ID: 1, Text: "The lava and ash from the eruption"}
	a := f.Features(d)
	b := f.Features(d)
	if !a.Equal(b) {
		t.Error("cached features must be identical")
	}
	if f.CacheSize() != 1 {
		t.Errorf("CacheSize = %d, want 1", f.CacheSize())
	}
	if l2 := a.L2(); l2 < 0.999 || l2 > 1.001 {
		t.Errorf("features L2 = %g, want 1", l2)
	}
	// Stopwords must not be features.
	if _, ok := f.Vocab.Lookup("w=the"); ok {
		t.Error("stopword leaked into the feature space")
	}
}

func TestTrainingFeaturesBoostTupleAttributes(t *testing.T) {
	f := NewFeaturizer()
	d := &corpus.Document{ID: 2, Text: "A tsunami swept the coast of Hawaii today"}
	plain := f.Features(d)
	boosted := f.TrainingFeatures(d, []relation.Tuple{
		{Rel: relation.ND, Arg1: "tsunami", Arg2: "Hawaii"},
	})
	id, ok := f.Vocab.Lookup("w=tsunami")
	if !ok {
		t.Fatal("w=tsunami missing from vocabulary")
	}
	idOther, _ := f.Vocab.Lookup("w=swept")
	// After normalization, the tuple-attribute feature must carry more
	// relative weight than a plain word in the boosted vector.
	if boosted.At(id) <= boosted.At(idOther) {
		t.Errorf("boosted tsunami=%g <= swept=%g", boosted.At(id), boosted.At(idOther))
	}
	if plain.At(id) != plain.At(idOther) {
		t.Error("plain features must weight all content words equally")
	}
}

func TestTrainingFeaturesNoTuplesEqualsFeatures(t *testing.T) {
	f := NewFeaturizer()
	d := &corpus.Document{ID: 3, Text: "some plain text body"}
	if !f.TrainingFeatures(d, nil).Equal(f.Features(d)) {
		t.Error("TrainingFeatures(nil) must equal Features")
	}
}

func TestQuickRSVMScoreIsLinear(t *testing.T) {
	rk := NewRSVMIE(RSVMOptions{Seed: 20})
	trainRanker(t, rk, 500, 21)
	w := rk.Model()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := example(r, r.Intn(2) == 0)
		diff := rk.Score(x) - w.Dot(x)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNames(t *testing.T) {
	if NewRSVMIE(RSVMOptions{}).Name() != "RSVM-IE" {
		t.Error("RSVM-IE name")
	}
	if NewBAggIE(BAggOptions{}).Name() != "BAgg-IE" {
		t.Error("BAgg-IE name")
	}
	if NewRandomRanker(1).Name() != "Random" {
		t.Error("Random name")
	}
}
