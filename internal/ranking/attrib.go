package ranking

// Score attribution: the exact per-feature decomposition of a ranker's
// score, for the explain substrate (internal/obs/explain). A handful of
// features carry most of a sparse linear LTR model's signal, so listing
// the nonzero contributions w_i·x_i is both cheap (bounded by the
// document's support ∩ the model's support) and a complete explanation:
// the contract, pinned by tests, is that folding an Attribution back
// together reconstructs ScorePacked's float64 bit for bit.

import (
	"math"

	"adaptiverank/internal/learn"
	"adaptiverank/internal/vector"
)

// Contribution is one nonzero per-feature term w_i·x_i of a linear
// margin. Contributions are reported in ascending feature-index order —
// the fold order of MarginPacked — which is what makes the sum exact.
type Contribution struct {
	Index int32   `json:"index"`
	Value float64 `json:"value"`
}

// MemberAttribution decomposes one linear member's margin: summing
// Contribs in slice order and adding Bias reproduces Margin bitwise,
// and Margin is bitwise equal to the member's MarginPacked(x).
type MemberAttribution struct {
	Bias     float64        `json:"bias"`
	Margin   float64        `json:"margin"`
	Contribs []Contribution `json:"contribs,omitempty"`
}

// Attribution is the full decomposition of one document's score.
// RSVM-IE has a single member and Score == Members[0].Margin. BAgg-IE
// has one member per committee classifier and Score is the sum of the
// members' logistic-normalized margins, accumulated in member order —
// exactly the expression ScorePacked evaluates, so Reconstruct returns
// the reported score bit for bit.
type Attribution struct {
	Score    float64             `json:"score"`
	Logistic bool                `json:"logistic,omitempty"`
	Members  []MemberAttribution `json:"members"`
}

// Reconstruct folds the attribution back into the score it explains:
// per member, contributions in order plus bias, logistic-normalized
// when Logistic is set, summed in member order. For an Attribution
// produced by an Attributor the result is bitwise equal to both
// Attribution.Score and the ranker's ScorePacked on the same document.
func (a Attribution) Reconstruct() float64 {
	var s float64
	for _, m := range a.Members {
		var margin float64
		for _, c := range m.Contribs {
			margin += c.Value
		}
		margin += m.Bias
		if a.Logistic {
			s += 1 / (1 + math.Exp(-margin))
		} else {
			s += margin
		}
	}
	return s
}

// Attributor is implemented by rankers whose score decomposes into
// per-feature contributions. The pipeline detects it by type assertion
// (like PackedScorer) and skips attribution capture for rankers without
// a linear structure to explain.
type Attributor interface {
	// Attribute explains ScorePacked(x): the returned Attribution's
	// Score is bitwise equal to ScorePacked(x), and Reconstruct()
	// rebuilds it from the parts.
	Attribute(x vector.Packed) Attribution
}

// attributeMember decomposes one OnlineSVM margin via the weight
// vector's contribution fold; Margin is bitwise equal to
// m.MarginPacked(x).
func attributeMember(m *learn.OnlineSVM, x vector.Packed) MemberAttribution {
	var contribs []Contribution
	margin := m.Weights().ContributionsPacked(x, m.Bias(), func(i int32, c float64) {
		contribs = append(contribs, Contribution{Index: i, Value: c})
	})
	return MemberAttribution{Bias: m.Bias(), Margin: margin, Contribs: contribs}
}

// Attribute implements Attributor: the RankSVM score is a single linear
// margin with no bias term.
func (r *RSVMIE) Attribute(x vector.Packed) Attribution {
	m := attributeMember(r.model, x)
	return Attribution{Score: m.Margin, Members: []MemberAttribution{m}}
}

// Attribute implements Attributor: one member per committee classifier,
// with the score accumulated over the members' logistic margins in
// member order exactly as ScorePacked does.
func (b *BAggIE) Attribute(x vector.Packed) Attribution {
	a := Attribution{Logistic: true, Members: make([]MemberAttribution, 0, len(b.members))}
	for _, m := range b.members {
		ma := attributeMember(m, x)
		a.Members = append(a.Members, ma)
		a.Score += 1 / (1 + math.Exp(-ma.Margin))
	}
	return a
}
