package ranking

import (
	"math"
	"math/rand"
	"sort"

	"adaptiverank/internal/vector"
)

// RandomRanker is the random-ordering reference of the evaluation figures:
// every document gets an i.i.d. pseudo-random score fixed at first sight.
type RandomRanker struct {
	rng *rand.Rand
}

// NewRandomRanker returns a seeded random ranker.
func NewRandomRanker(seed int64) *RandomRanker {
	return &RandomRanker{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Ranker.
func (r *RandomRanker) Name() string { return "Random" }

// Learn implements Ranker (no-op).
func (r *RandomRanker) Learn(vector.Sparse, bool) {}

// Score implements Ranker with a uniform pseudo-random score. Scores are
// drawn per call; the pipeline scores each pending document once per
// (re-)ranking, so the resulting order is a uniform random permutation.
func (r *RandomRanker) Score(vector.Sparse) float64 { return r.rng.Float64() }

// Model implements Ranker (none).
func (r *RandomRanker) Model() *vector.Weights { return nil }

// Clone implements Ranker.
func (r *RandomRanker) Clone() Ranker {
	return &RandomRanker{rng: rand.New(rand.NewSource(r.rng.Int63()))}
}

// The perfect-ordering reference of the evaluation figures is implemented
// in the pipeline package (it needs oracle document labels, which live
// there); Random is a Ranker so it shares the learned-strategy code path.

// ---------------------------------------------------------------------------
// Reference learners. ReferenceRSVMIE and ReferenceBAggIE re-implement the
// paper's two ranking strategies from the formulas alone — dense-map
// weights, explicit Pegasos/elastic-net arithmetic, no shared code with
// internal/learn — as independent oracles for the golden parity test. They
// replicate the production randomness (reservoir seeds and draw order)
// and accumulate in the same index order, so scores agree to floating-
// point tolerance. They are test oracles, not Rankers: intentionally
// slow and minimal.
// ---------------------------------------------------------------------------

// refModel is a naive dense-map online SVM with Pegasos steps and
// proximal elastic-net shrinkage (mirrors learn.OnlineSVM by formula).
type refModel struct {
	lambdaAll, lambdaL2 float64
	useBias             bool

	w    map[int32]float64
	bias float64
	t    int
}

func newRefModel(lambdaAll, lambdaL2 float64, useBias bool) *refModel {
	return &refModel{lambdaAll: lambdaAll, lambdaL2: lambdaL2, useBias: useBias,
		w: make(map[int32]float64)}
}

// sortedEntries flattens a sparse vector into index-sorted pairs so the
// reference accumulates dot products in the same order as the production
// code (vector.Sparse stores entries sorted).
func sortedEntries(x vector.Sparse) ([]int32, []float64) {
	idx := make([]int32, 0, x.NNZ())
	val := make([]float64, 0, x.NNZ())
	x.Range(func(i int32, v float64) {
		idx = append(idx, i)
		val = append(val, v)
	})
	return idx, val
}

func (m *refModel) margin(idx []int32, val []float64) float64 {
	var sum float64
	for k, i := range idx {
		if w, ok := m.w[i]; ok {
			sum += w * val[k]
		}
	}
	return sum + m.bias
}

// step is one Pegasos sub-gradient step on the hinge loss followed by the
// elastic-net proximal shrinkage, written out from Section 3.1:
// eta_t = 1/(lambda_2 t) capped at 1; if y(w·x+b) < 1 then w += eta y x;
// then every weight decays by (1 - eta lambda_2) and is soft-thresholded
// by eta lambda_1, with weights that reach zero deleted.
func (m *refModel) step(idx []int32, val []float64, y float64) {
	m.t++
	lambda := m.lambdaAll * m.lambdaL2
	if lambda <= 0 {
		lambda = m.lambdaAll
		if lambda <= 0 {
			lambda = 1
		}
	}
	eta := 1 / (lambda * float64(m.t))
	if eta > 1 {
		eta = 1
	}

	if y*m.margin(idx, val) < 1 {
		for k, i := range idx {
			nv := m.w[i] + eta*y*val[k]
			if nv == 0 {
				delete(m.w, i)
			} else {
				m.w[i] = nv
			}
		}
		if m.useBias {
			m.bias += eta * y
		}
	}

	// Parenthesization matters: the production code multiplies eta by the
	// precomputed combined coefficients, and a different association here
	// would drift by an ulp per step and eventually flip hinge decisions.
	decay := 1 - eta*(m.lambdaAll*m.lambdaL2)
	if decay < 0 {
		decay = 0
	}
	thresh := eta * (m.lambdaAll * (1 - m.lambdaL2))
	for i, v := range m.w {
		nv := math.Abs(v)*decay - thresh
		if nv <= 0 {
			delete(m.w, i)
			continue
		}
		if v < 0 {
			nv = -nv
		}
		m.w[i] = nv
	}
}

// refDiff computes useful - useless as index-sorted pairs with exact-zero
// differences dropped, mirroring vector.Sparse.Sub.
func refDiff(pos, neg vector.Sparse) ([]int32, []float64) {
	d := make(map[int32]float64)
	pos.Range(func(i int32, v float64) { d[i] += v })
	neg.Range(func(i int32, v float64) { d[i] -= v })
	idx := make([]int32, 0, len(d))
	//lint:allow detrand collection order is erased by the sort below
	for i, v := range d {
		if v != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	val := make([]float64, len(idx))
	for k, i := range idx {
		val[k] = d[i]
	}
	return idx, val
}

// refReservoir is a uniform bounded sample replicating the production
// reservoir's RNG call sequence (one Intn per overflow add, one per draw).
type refReservoir struct {
	cap  int
	seen int
	data []vector.Sparse
	rng  *rand.Rand
}

func (r *refReservoir) add(x vector.Sparse) {
	r.seen++
	if len(r.data) < r.cap {
		r.data = append(r.data, x)
		return
	}
	if k := r.rng.Intn(r.seen); k < r.cap {
		r.data[k] = x
	}
}

func (r *refReservoir) sample() (vector.Sparse, bool) {
	if len(r.data) == 0 {
		return vector.Sparse{}, false
	}
	return r.data[r.rng.Intn(len(r.data))], true
}

// ReferenceRSVMIE is the from-the-formulas RSVM-IE oracle: stochastic
// pairwise hinge steps on (useful - useless) difference vectors with the
// Section 4 defaults (lambda = 0.1, L2 share 0.99, 4 pairs per example,
// 400-slot reservoirs).
type ReferenceRSVMIE struct {
	model   *refModel
	useful  *refReservoir
	useless *refReservoir
	pairs   int
}

// NewReferenceRSVMIE builds the oracle; seed must match the production
// ranker's so both draw identical pairing partners.
func NewReferenceRSVMIE(seed int64) *ReferenceRSVMIE {
	return &ReferenceRSVMIE{
		model:   newRefModel(0.1, 0.99, false),
		useful:  &refReservoir{cap: 400, rng: rand.New(rand.NewSource(seed*2 + 1))},
		useless: &refReservoir{cap: 400, rng: rand.New(rand.NewSource(seed*2 + 2))},
		pairs:   4,
	}
}

// Learn mirrors RSVMIE.Learn.
func (r *ReferenceRSVMIE) Learn(x vector.Sparse, useful bool) {
	if useful {
		r.useful.add(x)
		for i := 0; i < r.pairs; i++ {
			if neg, ok := r.useless.sample(); ok {
				idx, val := refDiff(x, neg)
				r.model.step(idx, val, 1)
			}
		}
		return
	}
	r.useless.add(x)
	for i := 0; i < r.pairs; i++ {
		if pos, ok := r.useful.sample(); ok {
			idx, val := refDiff(pos, x)
			r.model.step(idx, val, 1)
		}
	}
}

// Score mirrors RSVMIE.Score (the linear margin w·x).
func (r *ReferenceRSVMIE) Score(x vector.Sparse) float64 {
	idx, val := sortedEntries(x)
	return r.model.margin(idx, val)
}

// ReferenceBAggIE is the from-the-formulas BAgg-IE oracle: a three-member
// committee of biased online SVMs (lambda = 0.5, L2 share 0.99) fed
// round-robin through label-balanced holdback queues of capacity 2000,
// scoring by summed logistic outputs.
type ReferenceBAggIE struct {
	members []*refModel
	qPos    [][]vector.Sparse
	qNeg    [][]vector.Sparse
	next    int
	qCap    int
}

// NewReferenceBAggIE builds the oracle with the production defaults.
func NewReferenceBAggIE() *ReferenceBAggIE {
	const members = 3
	b := &ReferenceBAggIE{
		members: make([]*refModel, members),
		qPos:    make([][]vector.Sparse, members),
		qNeg:    make([][]vector.Sparse, members),
		qCap:    2000,
	}
	for i := range b.members {
		b.members[i] = newRefModel(0.5, 0.99, true)
	}
	return b
}

// Learn mirrors BAggIE.Learn.
func (b *ReferenceBAggIE) Learn(x vector.Sparse, useful bool) {
	m := b.next
	b.next = (b.next + 1) % len(b.members)
	if useful {
		b.qPos[m] = append(b.qPos[m], x)
		if len(b.qPos[m]) > b.qCap {
			b.qPos[m] = b.qPos[m][1:]
		}
	} else {
		b.qNeg[m] = append(b.qNeg[m], x)
		if len(b.qNeg[m]) > b.qCap {
			b.qNeg[m] = b.qNeg[m][1:]
		}
	}
	for len(b.qPos[m]) > 0 && len(b.qNeg[m]) > 0 {
		pos, neg := b.qPos[m][0], b.qNeg[m][0]
		b.qPos[m] = b.qPos[m][1:]
		b.qNeg[m] = b.qNeg[m][1:]
		pi, pv := sortedEntries(pos)
		b.members[m].step(pi, pv, 1)
		ni, nv := sortedEntries(neg)
		b.members[m].step(ni, nv, -1)
	}
}

// Score mirrors BAggIE.Score (sum of logistic member scores).
func (b *ReferenceBAggIE) Score(x vector.Sparse) float64 {
	idx, val := sortedEntries(x)
	var s float64
	for _, m := range b.members {
		s += 1 / (1 + math.Exp(-m.margin(idx, val)))
	}
	return s
}
