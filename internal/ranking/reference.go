package ranking

import (
	"math/rand"

	"adaptiverank/internal/vector"
)

// RandomRanker is the random-ordering reference of the evaluation figures:
// every document gets an i.i.d. pseudo-random score fixed at first sight.
type RandomRanker struct {
	rng *rand.Rand
}

// NewRandomRanker returns a seeded random ranker.
func NewRandomRanker(seed int64) *RandomRanker {
	return &RandomRanker{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Ranker.
func (r *RandomRanker) Name() string { return "Random" }

// Learn implements Ranker (no-op).
func (r *RandomRanker) Learn(vector.Sparse, bool) {}

// Score implements Ranker with a uniform pseudo-random score. Scores are
// drawn per call; the pipeline scores each pending document once per
// (re-)ranking, so the resulting order is a uniform random permutation.
func (r *RandomRanker) Score(vector.Sparse) float64 { return r.rng.Float64() }

// Model implements Ranker (none).
func (r *RandomRanker) Model() *vector.Weights { return nil }

// Clone implements Ranker.
func (r *RandomRanker) Clone() Ranker {
	return &RandomRanker{rng: rand.New(rand.NewSource(r.rng.Int63()))}
}

// The perfect-ordering reference of the evaluation figures is implemented
// in the pipeline package (it needs oracle document labels, which live
// there); Random is a Ranker so it shares the learned-strategy code path.
