package ranking

import (
	"math/rand"

	"adaptiverank/internal/vector"
)

// Ranker is an online document usefulness model: it learns from labelled
// documents one at a time (the online learning of Section 3.1) and scores
// unprocessed documents; higher scores mean higher predicted usefulness.
type Ranker interface {
	// Name identifies the strategy ("RSVM-IE", "BAgg-IE", ...).
	Name() string
	// Learn performs one online update with a labelled document's
	// feature vector.
	Learn(x vector.Sparse, useful bool)
	// Score predicts the usefulness of an unprocessed document.
	Score(x vector.Sparse) float64
	// Model exposes the linear weight vector that defines the ranking
	// (the concatenation/sum for committee models); update-detection
	// techniques compare these. It may be nil for non-linear rankers.
	Model() *vector.Weights
	// Clone deep-copies the ranker (Mod-C trains a shadow copy).
	Clone() Ranker
}

// reservoir keeps a bounded uniform sample of feature vectors via
// reservoir sampling; RSVM-IE draws pairing partners from it.
type reservoir struct {
	cap  int
	seen int
	data []vector.Sparse
	rng  *rand.Rand
}

func newReservoir(capacity int, seed int64) *reservoir {
	return &reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

func (r *reservoir) add(x vector.Sparse) {
	r.seen++
	if len(r.data) < r.cap {
		r.data = append(r.data, x)
		return
	}
	if k := r.rng.Intn(r.seen); k < r.cap {
		r.data[k] = x
	}
}

func (r *reservoir) sample() (vector.Sparse, bool) {
	if len(r.data) == 0 {
		return vector.Sparse{}, false
	}
	return r.data[r.rng.Intn(len(r.data))], true
}

func (r *reservoir) len() int { return len(r.data) }

func (r *reservoir) clone() *reservoir {
	c := &reservoir{cap: r.cap, seen: r.seen, rng: rand.New(rand.NewSource(r.rng.Int63()))}
	c.data = append([]vector.Sparse(nil), r.data...)
	return c
}
