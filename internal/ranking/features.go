// Package ranking implements the paper's core contribution: the two online
// learning-to-rank strategies with in-training feature selection, BAgg-IE
// and RSVM-IE (Section 3.1), plus the Random and Perfect reference rankers
// used in the evaluation figures.
package ranking

import (
	"sync"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/tokenize"
	"adaptiverank/internal/vector"
)

// Featurizer maps documents to sparse feature vectors over a shared,
// growing vocabulary. Features are the document's content words (binary
// presence, L2-normalized). For labelled training documents, the attribute
// values of extracted tuples contribute extra weight on their word features
// (the paper trains on "words as well as the attribute values of tuples"),
// which transfers to unprocessed documents through the shared word space.
type Featurizer struct {
	Vocab *tokenize.Vocab

	mu    sync.RWMutex
	cache map[corpus.DocID]vector.Sparse
}

// NewFeaturizer returns a featurizer with its own vocabulary.
func NewFeaturizer() *Featurizer {
	return &Featurizer{Vocab: tokenize.NewVocab(), cache: make(map[corpus.DocID]vector.Sparse)}
}

// tupleBoost is the extra count given to each tuple-attribute token in
// training feature vectors.
const tupleBoost = 2.0

// Features returns the (cached) word feature vector of d. It is safe for
// concurrent use; note that documents are identified by DocID, so one
// Featurizer must not be shared across collections with clashing ids.
func (f *Featurizer) Features(d *corpus.Document) vector.Sparse {
	f.mu.RLock()
	x, ok := f.cache[d.ID]
	f.mu.RUnlock()
	if ok {
		return x
	}
	counts := make(map[int32]float64)
	for _, tok := range d.Tokenize() {
		if len(tok) > 1 && !tokenize.IsStopword(tok) {
			counts[f.Vocab.ID("w="+tok)] = 1
		}
	}
	x = vector.FromCounts(counts).Normalize()
	f.mu.Lock()
	f.cache[d.ID] = x
	f.mu.Unlock()
	return x
}

// TrainingFeatures returns the feature vector of a labelled document,
// boosting the word features that appear as attribute values of its
// extracted tuples.
func (f *Featurizer) TrainingFeatures(d *corpus.Document, tuples []relation.Tuple) vector.Sparse {
	if len(tuples) == 0 {
		return f.Features(d)
	}
	counts := make(map[int32]float64)
	for _, tok := range d.Tokenize() {
		if len(tok) > 1 && !tokenize.IsStopword(tok) {
			counts[f.Vocab.ID("w="+tok)] = 1
		}
	}
	for _, t := range tuples {
		for _, attr := range []string{t.Arg1, t.Arg2} {
			for _, tok := range tokenize.Words(attr) {
				if len(tok) > 1 && !tokenize.IsStopword(tok) {
					counts[f.Vocab.ID("w="+tok)] += tupleBoost
				}
			}
		}
	}
	return vector.FromCounts(counts).Normalize()
}

// FeatureName resolves a feature id back to its string (e.g. "w=lava").
func (f *Featurizer) FeatureName(id int32) string { return f.Vocab.Name(id) }

// CacheSize reports how many documents have cached feature vectors.
func (f *Featurizer) CacheSize() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.cache)
}
