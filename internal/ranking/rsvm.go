package ranking

import (
	"math/rand"
	"time"

	"adaptiverank/internal/learn"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/vector"
)

// RSVMIE is the paper's RSVM-IE strategy: an online pairwise RankSVM with
// elastic-net in-training feature selection, trained by stochastic pairwise
// descent over (useful, useless) document pairs observed during extraction.
type RSVMIE struct {
	model   *learn.OnlineSVM
	useful  *reservoir
	useless *reservoir
	pairs   int
	rng     *rand.Rand

	// Observability instruments, nil until Instrument is called. Learn
	// times the Pegasos pair steps only when attached.
	obsLearn   *obs.Histogram
	obsSteps   *obs.Counter
	obsSupport *obs.Gauge
	// tr emits one span per Learn call when span tracing is enabled
	// (nil otherwise); spans nest under the pipeline's current training
	// scope.
	tr *obs.Tracer
}

// RSVMOptions configures RSVM-IE; zero fields take the paper's Section 4
// defaults.
type RSVMOptions struct {
	// LambdaAll and LambdaL2 are the elastic-net parameters
	// (defaults 0.1 and 0.99 per Section 4).
	LambdaAll, LambdaL2 float64
	// PairsPerExample is the number of stochastic pairs formed per
	// incoming labelled document (default 4).
	PairsPerExample int
	// ReservoirSize bounds the per-label document reservoirs (default 400).
	ReservoirSize int
	// Seed drives pair sampling.
	Seed int64
}

func (o *RSVMOptions) defaults() {
	if o.LambdaAll == 0 {
		o.LambdaAll = 0.1
	}
	if o.LambdaL2 == 0 {
		o.LambdaL2 = 0.99
	}
	if o.PairsPerExample == 0 {
		o.PairsPerExample = 4
	}
	if o.ReservoirSize == 0 {
		o.ReservoirSize = 400
	}
}

// NewRSVMIE builds an untrained RSVM-IE ranker.
func NewRSVMIE(opts RSVMOptions) *RSVMIE {
	opts.defaults()
	return &RSVMIE{
		model:   learn.NewOnlineSVM(learn.ElasticNet{LambdaAll: opts.LambdaAll, LambdaL2: opts.LambdaL2}, false),
		useful:  newReservoir(opts.ReservoirSize, opts.Seed*2+1),
		useless: newReservoir(opts.ReservoirSize, opts.Seed*2+2),
		pairs:   opts.PairsPerExample,
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
}

// Name implements Ranker.
func (r *RSVMIE) Name() string { return "RSVM-IE" }

// Instrument implements obs.Instrumentable: Learn calls are timed into a
// latency histogram, Pegasos gradient steps are counted, and the model's
// non-zero support is tracked as a gauge. Clones (the Mod-C shadow model)
// are never instrumented, so the metrics describe the live model only.
func (r *RSVMIE) Instrument(reg *obs.Registry, _ obs.Recorder) {
	r.obsLearn = reg.Histogram(obs.MetricRankingRSVMLearnSeconds, nil)
	r.obsSteps = reg.Counter(obs.MetricRankingRSVMSteps)
	r.obsSupport = reg.Gauge(obs.MetricRankingRSVMSupport)
}

// InstrumentTracer implements obs.TraceInstrumentable: each Learn call
// becomes a "rsvm-learn" span under the tracer's current scope, so the
// flame timeline shows individual train steps inside init-train and
// train-update phases. Clones are never trace-instrumented.
func (r *RSVMIE) InstrumentTracer(tr *obs.Tracer) { r.tr = tr }

// Learn forms stochastic pairs between the incoming document and sampled
// opposite-label documents and performs pairwise hinge updates.
func (r *RSVMIE) Learn(x vector.Sparse, useful bool) {
	sp := r.tr.Start(obs.SpanRSVMLearn)
	if r.obsLearn == nil {
		r.learn(x, useful)
		sp.End()
		return
	}
	t := time.Now() //lint:allow detrand measured telemetry only; never feeds model state
	s0 := r.model.Steps()
	r.learn(x, useful)
	r.obsLearn.ObserveDuration(time.Since(t)) //lint:allow detrand measured telemetry only; never feeds model state
	steps := r.model.Steps() - s0
	r.obsSteps.Add(int64(steps))
	r.obsSupport.Set(float64(r.model.Weights().NNZ()))
	sp.SetNum("steps", float64(steps)).End()
}

func (r *RSVMIE) learn(x vector.Sparse, useful bool) {
	if useful {
		r.useful.add(x)
		for i := 0; i < r.pairs; i++ {
			if neg, ok := r.useless.sample(); ok {
				r.model.StepPair(x, neg)
			}
		}
		return
	}
	r.useless.add(x)
	for i := 0; i < r.pairs; i++ {
		if pos, ok := r.useful.sample(); ok {
			r.model.StepPair(pos, x)
		}
	}
}

// Score implements Ranker: the RankSVM linear score w·x.
func (r *RSVMIE) Score(x vector.Sparse) float64 { return r.model.Margin(x) }

// Model implements Ranker.
func (r *RSVMIE) Model() *vector.Weights { return r.model.Weights() }

// Clone implements Ranker.
func (r *RSVMIE) Clone() Ranker {
	return &RSVMIE{
		model:   r.model.Clone(),
		useful:  r.useful.clone(),
		useless: r.useless.clone(),
		pairs:   r.pairs,
		rng:     rand.New(rand.NewSource(r.rng.Int63())),
	}
}

// Steps reports the number of pairwise gradient steps taken.
func (r *RSVMIE) Steps() int { return r.model.Steps() }
