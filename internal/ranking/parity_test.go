package ranking_test

// Golden parity tests: the production RSVM-IE and BAgg-IE learners are
// trained next to the from-the-formulas reference oracles in
// reference.go on a fixed 200-document corpus, and every document's
// score must agree within tolerance. A divergence means the optimized
// implementation no longer computes the paper's update rule. Lives in an
// external test package because building the corpus labels pulls in
// internal/pipeline, which imports ranking.

import (
	"math"
	"testing"

	"adaptiverank/internal/extract"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/vector"
)

func instrumentRanker(t *testing.T, r obs.Instrumentable) {
	t.Helper()
	r.Instrument(obs.NewRegistry(), obs.Nop())
}

// parityTolerance bounds |production - reference| per score. The
// reference replicates the production arithmetic order, so in practice
// the scores are bitwise equal; the tolerance only absorbs benign
// compiler-level reassociation.
const parityTolerance = 1e-9

// parityCorpus builds the fixed corpus: 200 documents, seed 99, with the
// PH relation boosted so the label stream contains both classes.
func parityCorpus(t *testing.T) (xs []vector.Sparse, ys []bool) {
	t.Helper()
	cfg := textgen.DefaultConfig(99, 200)
	cfg.DensityOverride = map[relation.Relation]float64{relation.PH: 0.2}
	coll, _ := textgen.Generate(cfg)
	labels := pipeline.ComputeLabels(extract.Get(relation.PH), coll)
	feat := ranking.NewFeaturizer()
	useful := 0
	for _, d := range coll.Docs() {
		xs = append(xs, feat.Features(d))
		u := labels.Useful(d.ID)
		ys = append(ys, u)
		if u {
			useful++
		}
	}
	if useful < 10 || useful > len(xs)-10 {
		t.Fatalf("degenerate label balance: %d/%d useful", useful, len(xs))
	}
	return xs, ys
}

func maxScoreDelta(xs []vector.Sparse, score, ref func(vector.Sparse) float64) (float64, int) {
	worst, at := 0.0, -1
	for i, x := range xs {
		if d := math.Abs(score(x) - ref(x)); d > worst {
			worst, at = d, i
		}
	}
	return worst, at
}

func TestRSVMIEMatchesReference(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 99})
	ref := ranking.NewReferenceRSVMIE(99)
	for i, x := range xs {
		prod.Learn(x, ys[i])
		ref.Learn(x, ys[i])
	}
	if prod.Steps() == 0 {
		t.Fatal("production learner took no gradient steps")
	}
	if d, at := maxScoreDelta(xs, prod.Score, ref.Score); d > parityTolerance {
		t.Errorf("RSVM-IE diverged from reference: |Δ| = %g at doc %d (prod %g, ref %g)",
			d, at, prod.Score(xs[at]), ref.Score(xs[at]))
	}
	// The trained model must actually separate something — a parity pass
	// between two all-zero models would be vacuous.
	nonzero := false
	for _, x := range xs {
		if prod.Score(x) != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("trained RSVM-IE scores are all zero")
	}
}

func TestBAggIEMatchesReference(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewBAggIE(ranking.BAggOptions{})
	ref := ranking.NewReferenceBAggIE()
	for i, x := range xs {
		prod.Learn(x, ys[i])
		ref.Learn(x, ys[i])
	}
	if d, at := maxScoreDelta(xs, prod.Score, ref.Score); d > parityTolerance {
		t.Errorf("BAgg-IE diverged from reference: |Δ| = %g at doc %d (prod %g, ref %g)",
			d, at, prod.Score(xs[at]), ref.Score(xs[at]))
	}
	// An untrained committee scores 3*sigmoid(0) = 1.5 everywhere; the
	// trained one must have moved off that point.
	moved := false
	for _, x := range xs {
		if math.Abs(prod.Score(x)-1.5) > 1e-6 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("trained BAgg-IE never moved off the untrained score")
	}
}

// packedParity pins a trained ranker's zero-alloc fast paths: ScorePacked
// must equal the map-based Score bitwise on every document (the pipeline
// mixes the two paths mid-run, so "close" is not good enough), ScoreBatch
// must equal ScorePacked bitwise at every batch position, and the packed
// scores must stay within the golden tolerance of the from-the-formulas
// reference.
func packedParity(t *testing.T, prod interface {
	ranking.Ranker
	ranking.PackedScorer
}, ref interface {
	Score(vector.Sparse) float64
}, xs []vector.Sparse) {
	t.Helper()
	packed := make([]vector.Packed, len(xs))
	for i, x := range xs {
		packed[i] = x.Packed()
	}
	for i, x := range xs {
		if got, want := prod.ScorePacked(packed[i]), prod.Score(x); got != want {
			t.Fatalf("ScorePacked differs from Score at doc %d: %g vs %g", i, got, want)
		}
	}
	out := make([]float64, len(packed))
	prod.ScoreBatch(packed, out)
	for i := range packed {
		if want := prod.ScorePacked(packed[i]); out[i] != want {
			t.Fatalf("ScoreBatch differs from ScorePacked at doc %d: %g vs %g", i, out[i], want)
		}
	}
	if d, at := maxScoreDelta(xs, func(x vector.Sparse) float64 {
		return prod.ScorePacked(x.Packed())
	}, ref.Score); d > parityTolerance {
		t.Errorf("packed score diverged from reference: |Δ| = %g at doc %d", d, at)
	}
}

func TestRSVMIEPackedParity(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 99})
	ref := ranking.NewReferenceRSVMIE(99)
	for i, x := range xs {
		prod.Learn(x, ys[i])
		ref.Learn(x, ys[i])
	}
	packedParity(t, prod, ref, xs)
}

func TestBAggIEPackedParity(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewBAggIE(ranking.BAggOptions{})
	ref := ranking.NewReferenceBAggIE()
	for i, x := range xs {
		prod.Learn(x, ys[i])
		ref.Learn(x, ys[i])
	}
	packedParity(t, prod, ref, xs)
}

// TestPackedParitySurvivesRetraining interleaves scoring and further
// training: every model mutation must invalidate the dense mirror, so the
// packed path tracks the map exactly across update epochs (the pipeline
// re-ranks after every detector-triggered update).
func TestPackedParitySurvivesRetraining(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 99})
	for epoch := 0; epoch < 4; epoch++ {
		lo, hi := epoch*len(xs)/4, (epoch+1)*len(xs)/4
		for i := lo; i < hi; i++ {
			prod.Learn(xs[i], ys[i])
		}
		for i, x := range xs {
			if got, want := prod.ScorePacked(x.Packed()), prod.Score(x); got != want {
				t.Fatalf("epoch %d: packed score stale at doc %d: %g vs %g",
					epoch, i, got, want)
			}
		}
	}
}

// TestReferenceParityUnderInstrumentation re-runs the RSVM parity with
// observability attached to the production learner: instrumentation must
// not change a single score bit.
func TestReferenceParityUnderInstrumentation(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 99})
	plain := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 99})
	instrumentRanker(t, prod)
	for i, x := range xs {
		prod.Learn(x, ys[i])
		plain.Learn(x, ys[i])
	}
	for i, x := range xs {
		if prod.Score(x) != plain.Score(x) {
			t.Fatalf("instrumented score differs at doc %d: %g vs %g",
				i, prod.Score(x), plain.Score(x))
		}
	}
}
