package ranking_test

// Golden parity tests: the production RSVM-IE and BAgg-IE learners are
// trained next to the from-the-formulas reference oracles in
// reference.go on a fixed 200-document corpus, and every document's
// score must agree within tolerance. A divergence means the optimized
// implementation no longer computes the paper's update rule. Lives in an
// external test package because building the corpus labels pulls in
// internal/pipeline, which imports ranking.

import (
	"math"
	"testing"

	"adaptiverank/internal/extract"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/vector"
)

func instrumentRanker(t *testing.T, r obs.Instrumentable) {
	t.Helper()
	r.Instrument(obs.NewRegistry(), obs.Nop())
}

// parityTolerance bounds |production - reference| per score. The
// reference replicates the production arithmetic order, so in practice
// the scores are bitwise equal; the tolerance only absorbs benign
// compiler-level reassociation.
const parityTolerance = 1e-9

// parityCorpus builds the fixed corpus: 200 documents, seed 99, with the
// PH relation boosted so the label stream contains both classes.
func parityCorpus(t *testing.T) (xs []vector.Sparse, ys []bool) {
	t.Helper()
	cfg := textgen.DefaultConfig(99, 200)
	cfg.DensityOverride = map[relation.Relation]float64{relation.PH: 0.2}
	coll, _ := textgen.Generate(cfg)
	labels := pipeline.ComputeLabels(extract.Get(relation.PH), coll)
	feat := ranking.NewFeaturizer()
	useful := 0
	for _, d := range coll.Docs() {
		xs = append(xs, feat.Features(d))
		u := labels.Useful(d.ID)
		ys = append(ys, u)
		if u {
			useful++
		}
	}
	if useful < 10 || useful > len(xs)-10 {
		t.Fatalf("degenerate label balance: %d/%d useful", useful, len(xs))
	}
	return xs, ys
}

func maxScoreDelta(xs []vector.Sparse, score, ref func(vector.Sparse) float64) (float64, int) {
	worst, at := 0.0, -1
	for i, x := range xs {
		if d := math.Abs(score(x) - ref(x)); d > worst {
			worst, at = d, i
		}
	}
	return worst, at
}

func TestRSVMIEMatchesReference(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 99})
	ref := ranking.NewReferenceRSVMIE(99)
	for i, x := range xs {
		prod.Learn(x, ys[i])
		ref.Learn(x, ys[i])
	}
	if prod.Steps() == 0 {
		t.Fatal("production learner took no gradient steps")
	}
	if d, at := maxScoreDelta(xs, prod.Score, ref.Score); d > parityTolerance {
		t.Errorf("RSVM-IE diverged from reference: |Δ| = %g at doc %d (prod %g, ref %g)",
			d, at, prod.Score(xs[at]), ref.Score(xs[at]))
	}
	// The trained model must actually separate something — a parity pass
	// between two all-zero models would be vacuous.
	nonzero := false
	for _, x := range xs {
		if prod.Score(x) != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("trained RSVM-IE scores are all zero")
	}
}

func TestBAggIEMatchesReference(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewBAggIE(ranking.BAggOptions{})
	ref := ranking.NewReferenceBAggIE()
	for i, x := range xs {
		prod.Learn(x, ys[i])
		ref.Learn(x, ys[i])
	}
	if d, at := maxScoreDelta(xs, prod.Score, ref.Score); d > parityTolerance {
		t.Errorf("BAgg-IE diverged from reference: |Δ| = %g at doc %d (prod %g, ref %g)",
			d, at, prod.Score(xs[at]), ref.Score(xs[at]))
	}
	// An untrained committee scores 3*sigmoid(0) = 1.5 everywhere; the
	// trained one must have moved off that point.
	moved := false
	for _, x := range xs {
		if math.Abs(prod.Score(x)-1.5) > 1e-6 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("trained BAgg-IE never moved off the untrained score")
	}
}

// TestReferenceParityUnderInstrumentation re-runs the RSVM parity with
// observability attached to the production learner: instrumentation must
// not change a single score bit.
func TestReferenceParityUnderInstrumentation(t *testing.T) {
	xs, ys := parityCorpus(t)
	prod := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 99})
	plain := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 99})
	instrumentRanker(t, prod)
	for i, x := range xs {
		prod.Learn(x, ys[i])
		plain.Learn(x, ys[i])
	}
	for i, x := range xs {
		if prod.Score(x) != plain.Score(x) {
			t.Fatalf("instrumented score differs at doc %d: %g vs %g",
				i, prod.Score(x), plain.Score(x))
		}
	}
}
