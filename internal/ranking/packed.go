package ranking

import (
	"adaptiverank/internal/corpus"
	"adaptiverank/internal/vector"
)

// PackedScorer is the zero-allocation scoring fast path. Rankers that
// implement it score vector.Packed document views without map probes or
// per-call allocation; the pipeline's score workers detect it by type
// assertion and fall back to Ranker.Score otherwise (RandomRanker, for
// one, has no linear fast path).
//
// Contract: ScorePacked(x) must return bitwise the same float64 as
// Score on the Sparse vector x views — the byte-identical-output and
// worker-count-invariance guarantees of the pipeline depend on the two
// paths being interchangeable mid-run (e.g. after a batch panic
// fallback).
type PackedScorer interface {
	// ScorePacked predicts the usefulness of one packed document vector.
	ScorePacked(x vector.Packed) float64
	// ScoreBatch scores xs[i] into out[i] for every i; len(out) must be
	// at least len(xs). It performs no per-document allocation: callers
	// own and reuse both slices across batches.
	ScoreBatch(xs []vector.Packed, out []float64)
}

// ScorePacked implements PackedScorer: the RankSVM linear score w·x via
// the dense-mirror margin.
func (r *RSVMIE) ScorePacked(x vector.Packed) float64 { return r.model.MarginPacked(x) }

// ScoreBatch implements PackedScorer. The model's dense mirror is built
// at most once per model state (on the first scored document), so the
// steady-state loop is allocation-free.
func (r *RSVMIE) ScoreBatch(xs []vector.Packed, out []float64) {
	for k, x := range xs {
		out[k] = r.model.MarginPacked(x)
	}
}

// ScorePacked implements PackedScorer: the sum of the members' logistic
// scores, accumulated in member order exactly as Score does, so the two
// paths agree bitwise.
func (b *BAggIE) ScorePacked(x vector.Packed) float64 {
	var s float64
	for _, m := range b.members {
		s += m.ProbPacked(x)
	}
	return s
}

// ScoreBatch implements PackedScorer. The committee's 3× pass over the
// batch shares one scratch set: the members' dense weight mirrors (built
// once per model state) and the caller's xs/out buffers — no per-document
// or per-member allocation.
func (b *BAggIE) ScoreBatch(xs []vector.Packed, out []float64) {
	for k, x := range xs {
		var s float64
		for _, m := range b.members {
			s += m.ProbPacked(x)
		}
		out[k] = s
	}
}

// FeaturesPacked returns a zero-copy packed view of d's cached feature
// vector. The view shares the immutable cached storage: callers must
// treat it as read-only (see vector.Packed's ownership contract).
func (f *Featurizer) FeaturesPacked(d *corpus.Document) vector.Packed {
	return f.Features(d).Packed()
}
