package ranking

import (
	"time"

	"adaptiverank/internal/learn"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/vector"
)

// BAggIE is the paper's BAgg-IE strategy: a bagged committee of three
// online linear SVM classifiers with elastic-net in-training feature
// selection. Incoming labelled documents are dealt round-robin to the
// members (disjoint training splits); each member consumes examples with
// balanced labels via per-member holdback queues. The document score is
// the sum of the members' logistic-normalized scores.
type BAggIE struct {
	members []*learn.OnlineSVM
	qPos    [][]vector.Sparse
	qNeg    [][]vector.Sparse
	next    int
	qCap    int

	// Observability instruments, nil until Instrument is called.
	obsLearn *obs.Histogram
	obsSteps *obs.Counter
	// tr emits one span per Learn call when span tracing is enabled
	// (nil otherwise).
	tr *obs.Tracer
}

// BAggOptions configures BAgg-IE; zero fields take the paper's defaults.
type BAggOptions struct {
	// LambdaAll and LambdaL2 are the elastic-net parameters
	// (defaults 0.5 and 0.99 per Section 4).
	LambdaAll, LambdaL2 float64
	// Members is the committee size (default 3 per Section 3.1).
	Members int
	// QueueCap bounds each member's per-label holdback queue
	// (default 2000; for sparse relations the useless queue would
	// otherwise grow without bound).
	QueueCap int
}

func (o *BAggOptions) defaults() {
	if o.LambdaAll == 0 {
		o.LambdaAll = 0.5
	}
	if o.LambdaL2 == 0 {
		o.LambdaL2 = 0.99
	}
	if o.Members == 0 {
		o.Members = 3
	}
	if o.QueueCap == 0 {
		o.QueueCap = 2000
	}
}

// NewBAggIE builds an untrained BAgg-IE ranker.
func NewBAggIE(opts BAggOptions) *BAggIE {
	opts.defaults()
	b := &BAggIE{
		members: make([]*learn.OnlineSVM, opts.Members),
		qPos:    make([][]vector.Sparse, opts.Members),
		qNeg:    make([][]vector.Sparse, opts.Members),
		qCap:    opts.QueueCap,
	}
	for i := range b.members {
		b.members[i] = learn.NewOnlineSVM(
			learn.ElasticNet{LambdaAll: opts.LambdaAll, LambdaL2: opts.LambdaL2}, true)
	}
	return b
}

// Name implements Ranker.
func (b *BAggIE) Name() string { return "BAgg-IE" }

// Instrument implements obs.Instrumentable: Learn calls are timed and
// the committee's combined Pegasos steps counted. Clones are never
// instrumented (see RSVMIE.Instrument).
func (b *BAggIE) Instrument(reg *obs.Registry, _ obs.Recorder) {
	b.obsLearn = reg.Histogram(obs.MetricRankingBAggLearnSeconds, nil)
	b.obsSteps = reg.Counter(obs.MetricRankingBAggSteps)
}

// InstrumentTracer implements obs.TraceInstrumentable: each Learn call
// becomes a "bagg-learn" span under the tracer's current scope. Clones
// are never trace-instrumented.
func (b *BAggIE) InstrumentTracer(tr *obs.Tracer) { b.tr = tr }

// Learn deals the example to the next committee member and drains that
// member's balanced queue.
func (b *BAggIE) Learn(x vector.Sparse, useful bool) {
	sp := b.tr.Start(obs.SpanBAggLearn)
	if b.obsLearn == nil {
		b.learn(x, useful)
		sp.End()
		return
	}
	t := time.Now() //lint:allow detrand measured telemetry only; never feeds model state
	s0 := 0
	for _, m := range b.members {
		s0 += m.Steps()
	}
	b.learn(x, useful)
	s1 := 0
	for _, m := range b.members {
		s1 += m.Steps()
	}
	b.obsLearn.ObserveDuration(time.Since(t)) //lint:allow detrand measured telemetry only; never feeds model state
	b.obsSteps.Add(int64(s1 - s0))
	sp.SetNum("steps", float64(s1-s0)).End()
}

func (b *BAggIE) learn(x vector.Sparse, useful bool) {
	m := b.next
	b.next = (b.next + 1) % len(b.members)
	if useful {
		b.qPos[m] = appendCapped(b.qPos[m], x, b.qCap)
	} else {
		b.qNeg[m] = appendCapped(b.qNeg[m], x, b.qCap)
	}
	// Feed the member one positive and one negative whenever both are
	// available, keeping its training stream label-balanced.
	for len(b.qPos[m]) > 0 && len(b.qNeg[m]) > 0 {
		pos, neg := b.qPos[m][0], b.qNeg[m][0]
		b.qPos[m] = b.qPos[m][1:]
		b.qNeg[m] = b.qNeg[m][1:]
		b.members[m].Step(pos, 1)
		b.members[m].Step(neg, -1)
	}
}

func appendCapped(q []vector.Sparse, x vector.Sparse, cap int) []vector.Sparse {
	q = append(q, x)
	if len(q) > cap {
		q = q[1:]
	}
	return q
}

// Score implements Ranker: the sum of the members' logistic scores.
func (b *BAggIE) Score(x vector.Sparse) float64 {
	var s float64
	for _, m := range b.members {
		s += m.Prob(x)
	}
	return s
}

// Model implements Ranker: the committee's summed weight vector, which is
// the linear direction the (locally monotone) committee score follows and
// what Mod-C/Top-K compare across updates.
func (b *BAggIE) Model() *vector.Weights {
	sum := vector.NewWeights()
	for _, m := range b.members {
		m.Weights().Range(func(i int32, v float64) { sum.Add(i, v) })
	}
	return sum
}

// Clone implements Ranker.
func (b *BAggIE) Clone() Ranker {
	c := &BAggIE{
		members: make([]*learn.OnlineSVM, len(b.members)),
		qPos:    make([][]vector.Sparse, len(b.members)),
		qNeg:    make([][]vector.Sparse, len(b.members)),
		next:    b.next,
		qCap:    b.qCap,
	}
	for i := range b.members {
		c.members[i] = b.members[i].Clone()
		c.qPos[i] = append([]vector.Sparse(nil), b.qPos[i]...)
		c.qNeg[i] = append([]vector.Sparse(nil), b.qNeg[i]...)
	}
	return c
}

// Members exposes the committee size.
func (b *BAggIE) Members() int { return len(b.members) }
