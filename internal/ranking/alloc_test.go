package ranking_test

// Allocation-budget tests: the scoring fast paths must allocate nothing
// in steady state. testing.AllocsPerRun runs the function once as a
// warm-up before measuring, which absorbs the one-time dense-mirror
// build; an explicit warm call keeps that contract visible anyway. A
// non-zero budget here means the zero-alloc hot path regressed — the
// same property cmd/benchgate gates in CI from the committed
// BENCH_scoring.json trajectory.

import (
	"math/rand"
	"testing"

	"adaptiverank/internal/ranking"
	"adaptiverank/internal/vector"
)

// allocDocs builds a small seeded corpus of normalized sparse vectors
// (the bench_test.go benchDocs shape at test scale).
func allocDocs(n int) []vector.Sparse {
	rng := rand.New(rand.NewSource(1))
	out := make([]vector.Sparse, n)
	for i := range out {
		m := make(map[int32]float64)
		for k := 0; k < 80; k++ {
			m[int32(rng.Intn(20000))] = 1
		}
		out[i] = vector.FromCounts(m).Normalize()
	}
	return out
}

func trainRanker(r ranking.Ranker, docs []vector.Sparse) {
	for i := 0; i < 500; i++ {
		r.Learn(docs[i%len(docs)], i%7 == 0)
	}
}

// assertZeroAllocs measures f's steady-state allocation rate after one
// warm call.
func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm: builds dense mirrors, grows any lazily sized buffers
	if n := testing.AllocsPerRun(1000, f); n != 0 {
		t.Errorf("%s allocates %.3f times per run in steady state, want 0", name, n)
	}
}

func TestScoringAllocBudgets(t *testing.T) {
	docs := allocDocs(64)
	packed := make([]vector.Packed, len(docs))
	for i, d := range docs {
		packed[i] = d.Packed()
	}
	out := make([]float64, len(packed))

	rsvm := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 1})
	trainRanker(rsvm, docs)
	bagg := ranking.NewBAggIE(ranking.BAggOptions{})
	trainRanker(bagg, docs)

	i := 0
	assertZeroAllocs(t, "RSVMIE.ScorePacked", func() {
		rsvm.ScorePacked(packed[i%len(packed)])
		i++
	})
	assertZeroAllocs(t, "RSVMIE.ScoreBatch", func() {
		rsvm.ScoreBatch(packed, out)
	})
	assertZeroAllocs(t, "BAggIE.ScorePacked", func() {
		bagg.ScorePacked(packed[i%len(packed)])
		i++
	})
	assertZeroAllocs(t, "BAggIE.ScoreBatch", func() {
		bagg.ScoreBatch(packed, out)
	})

	// The map-based Score paths are allocation-free today too; pinning
	// them keeps the parity baseline honest (a regression there would
	// silently widen the packed speedup).
	assertZeroAllocs(t, "RSVMIE.Score", func() {
		rsvm.Score(docs[i%len(docs)])
		i++
	})
	assertZeroAllocs(t, "BAggIE.Score", func() {
		bagg.Score(docs[i%len(docs)])
		i++
	})
}

// TestMarginPackedAllocBudget pins the Weights dense-mirror margin at
// zero steady-state allocations, including across a mutation epoch: only
// the first call after a mutation may allocate (the mirror rebuild), and
// even that reuses capacity when the support did not grow.
func TestMarginPackedAllocBudget(t *testing.T) {
	docs := allocDocs(64)
	w := vector.NewWeights()
	for i, d := range docs {
		w.AddSparse(0.1*float64(i%5), d)
	}
	x := docs[0].Packed()
	assertZeroAllocs(t, "Weights.MarginPacked", func() {
		w.MarginPacked(x, 0.5)
	})

	// Mutate without growing the support: the rebuild on the next call
	// reuses the stale mirror's capacity, so even the rebuild itself
	// stays allocation-free (beyond the snapshot header).
	w.Scale(0.99)
	w.MarginPacked(x, 0) // rebuild
	assertZeroAllocs(t, "Weights.MarginPacked after mutation", func() {
		w.MarginPacked(x, 0)
	})
}
