package tokenize

import "sync"

// Vocab interns feature strings to dense int32 ids. It is safe for
// concurrent use; ids are assigned in first-seen order, so a Vocab shared
// by deterministic single-goroutine code assigns deterministic ids.
type Vocab struct {
	mu    sync.RWMutex
	ids   map[string]int32
	names []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]int32)}
}

// ID returns the id for feature s, assigning the next free id when s is new.
func (v *Vocab) ID(s string) int32 {
	v.mu.RLock()
	id, ok := v.ids[s]
	v.mu.RUnlock()
	if ok {
		return id
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok = v.ids[s]; ok {
		return id
	}
	id = int32(len(v.names))
	v.ids[s] = id
	v.names = append(v.names, s)
	return id
}

// Lookup returns the id for s without assigning one; ok is false if s has
// never been interned.
func (v *Vocab) Lookup(s string) (id int32, ok bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok = v.ids[s]
	return id, ok
}

// Name returns the feature string for an id; it panics on out-of-range ids,
// which always indicate a bug (ids only come from the same Vocab).
func (v *Vocab) Name(id int32) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.names[id]
}

// Len reports how many distinct features have been interned.
func (v *Vocab) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.names)
}
