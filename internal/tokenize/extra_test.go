package tokenize

import (
	"reflect"
	"testing"
)

func TestWordsUnicode(t *testing.T) {
	got := Words("Simões visited São Paulo")
	want := []string{"simões", "visited", "são", "paulo"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestWordsEmptyAndPunctuationOnly(t *testing.T) {
	if got := Words(""); len(got) != 0 {
		t.Errorf("Words(\"\") = %v", got)
	}
	if got := Words("... --- !!!"); len(got) != 0 {
		t.Errorf("Words(punct) = %v", got)
	}
}

func TestSentencesMultiplePunct(t *testing.T) {
	got := Sentences("Really?! Yes. Done")
	// "?!" — the '?' ends a sentence only when followed by space/EOT;
	// '!' then also terminates. Accept any split that keeps the words.
	var joined string
	for _, s := range got {
		joined += s + " "
	}
	for _, w := range []string{"Really", "Yes", "Done"} {
		if !contains(joined, w) {
			t.Errorf("lost %q in %v", w, got)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestContentWordsDropsSingleChars(t *testing.T) {
	got := ContentWords("a b earthquake c")
	if len(got) != 1 || got[0] != "earthquake" {
		t.Errorf("ContentWords = %v", got)
	}
}

func TestWordsCasedPreservesCase(t *testing.T) {
	got := WordsCased("James SMITH arrived")
	want := []string{"James", "SMITH", "arrived"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WordsCased = %v, want %v", got, want)
	}
}
