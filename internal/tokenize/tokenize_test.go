package tokenize

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestWordsBasic(t *testing.T) {
	got := Words("A tsunami swept the coast of Hawaii.")
	want := []string{"a", "tsunami", "swept", "the", "coast", "of", "hawaii"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestWordsApostropheAndHyphen(t *testing.T) {
	got := Words("O'Brien's man-made plan")
	want := []string{"o'brien's", "man-made", "plan"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestWordsTrimsDanglingPunctuation(t *testing.T) {
	got := Words("well- 'quoted'")
	for _, w := range got {
		if strings.HasPrefix(w, "'") || strings.HasSuffix(w, "-") || w == "" {
			t.Errorf("token %q not trimmed", w)
		}
	}
}

func TestWordsKeepsNumbers(t *testing.T) {
	got := Words("magnitude 7.8 quake in 1989")
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "7") || !strings.Contains(joined, "1989") {
		t.Errorf("numbers lost: %v", got)
	}
}

func TestWordsCasedMatchesWordsLowered(t *testing.T) {
	f := func(s string) bool {
		cased := WordsCased(s)
		lowered := Words(s)
		if len(cased) != len(lowered) {
			return false
		}
		for i := range cased {
			if strings.ToLower(cased[i]) != lowered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("First one. Second here! Third? Last")
	want := []string{"First one.", "Second here!", "Third?", "Last"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Sentences = %v, want %v", got, want)
	}
}

func TestSentencesKeepsInitials(t *testing.T) {
	got := Sentences("Mr. J. Smith arrived. He left.")
	// "J." must not end a sentence; "Mr." is a single-capital-preceded
	// period under our heuristic? "Mr." ends with lowercase r, so it does
	// split — accept either 2 or 3 sentences but never a split after "J."
	for _, s := range got {
		if s == "J." {
			t.Errorf("split after initial: %v", got)
		}
	}
}

func TestSentencesNewline(t *testing.T) {
	got := Sentences("line one\nline two")
	if len(got) != 2 {
		t.Errorf("Sentences = %v, want 2 sentences", got)
	}
}

func TestSentencesEmpty(t *testing.T) {
	if got := Sentences("   "); len(got) != 0 {
		t.Errorf("Sentences(blank) = %v, want none", got)
	}
}

func TestContentWordsDropsStopwords(t *testing.T) {
	got := ContentWords("The quake and the tsunami")
	want := []string{"quake", "tsunami"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentWords = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") {
		t.Error("'the' must be a stopword")
	}
	if IsStopword("earthquake") {
		t.Error("'earthquake' must not be a stopword")
	}
}

func TestBigrams(t *testing.T) {
	got := Bigrams([]string{"a", "b", "c"})
	want := []string{"a_b", "b_c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Bigrams = %v, want %v", got, want)
	}
	if Bigrams([]string{"solo"}) != nil {
		t.Error("Bigrams of one token must be nil")
	}
}

func TestVocabAssignsStableIDs(t *testing.T) {
	v := NewVocab()
	a := v.ID("alpha")
	b := v.ID("beta")
	if a == b {
		t.Fatal("distinct features must get distinct ids")
	}
	if v.ID("alpha") != a {
		t.Error("repeated ID lookup must be stable")
	}
	if v.Name(a) != "alpha" || v.Name(b) != "beta" {
		t.Error("Name must invert ID")
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Error("Lookup must not intern")
	}
	if id, ok := v.Lookup("alpha"); !ok || id != a {
		t.Error("Lookup must find interned features")
	}
}

func TestVocabConcurrent(t *testing.T) {
	v := NewVocab()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v.ID("tok" + string(rune('a'+i%26)))
			}
		}(g)
	}
	wg.Wait()
	if v.Len() != 26 {
		t.Errorf("Len = %d, want 26 distinct tokens", v.Len())
	}
}
