// Package tokenize implements the text-processing substrate the paper
// obtains from OpenNLP: word tokenization, sentence segmentation, stopword
// filtering, and a concurrency-safe vocabulary that interns feature strings
// to dense integer ids for the learners.
package tokenize

import (
	"strings"
	"unicode"
)

// Words splits text into lowercase word tokens. A token is a maximal run of
// letters, digits, or internal apostrophes/hyphens; everything else is a
// separator. Purely numeric tokens are kept (they matter for relations such
// as Election–Winner).
func Words(text string) []string {
	tokens := make([]string, 0, len(text)/6)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	prevLetter := false
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevLetter = true
		case (r == '\'' || r == '-') && prevLetter:
			// Keep intra-word apostrophes and hyphens ("o'brien",
			// "man-made"); a trailing one is trimmed below.
			b.WriteRune(r)
		default:
			prevLetter = false
			flush()
		}
	}
	flush()
	for i, t := range tokens {
		tokens[i] = strings.Trim(t, "'-")
	}
	// Remove tokens that became empty after trimming.
	w := 0
	for _, t := range tokens {
		if t != "" {
			tokens[w] = t
			w++
		}
	}
	return tokens[:w]
}

// WordsCased splits text exactly like Words but preserves letter case,
// which the named entity recognizers rely on (capitalization features).
func WordsCased(text string) []string {
	tokens := make([]string, 0, len(text)/6)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	prevLetter := false
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
			prevLetter = true
		case (r == '\'' || r == '-') && prevLetter:
			b.WriteRune(r)
		default:
			prevLetter = false
			flush()
		}
	}
	flush()
	w := 0
	for _, t := range tokens {
		if t = strings.Trim(t, "'-"); t != "" {
			tokens[w] = t
			w++
		}
	}
	return tokens[:w]
}

// Sentences splits text into sentences on '.', '!', '?' boundaries followed
// by whitespace or end of text, and on newlines. Abbreviation handling is
// intentionally simple: a period after a single uppercase letter (middle
// initials, "U.S.") does not end a sentence.
func Sentences(text string) []string {
	var out []string
	start := 0
	runes := []rune(text)
	emit := func(end int) {
		s := strings.TrimSpace(string(runes[start:end]))
		if s != "" {
			out = append(out, s)
		}
		start = end
	}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '\n' {
			emit(i)
			start = i + 1
			continue
		}
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		// Lookbehind: single uppercase letter before a period is an
		// initial or abbreviation.
		if r == '.' && i >= 1 && unicode.IsUpper(runes[i-1]) &&
			(i < 2 || !unicode.IsLetter(runes[i-2])) {
			continue
		}
		// Lookahead: end of text or whitespace terminates a sentence.
		if i+1 >= len(runes) || unicode.IsSpace(runes[i+1]) {
			emit(i + 1)
		}
	}
	if start < len(runes) {
		emit(len(runes))
	}
	return out
}

// stopwords is a compact English stopword list; the ranking models exclude
// these from the word feature space, as stopwords carry no extraction-task
// signal and only slow the learners down.
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`a an and are as at be been but by for
		from had has have he her his i in is it its of on or s said she
		that the their there they this to was were which who will with
		would t not no we you your our us him them do does did so if than
		then when what where how all also into over under after before
		about more most other some such only just can could may might
		must shall out up down his hers mr mrs ms dr per am pm new one
		two three its it's were being both any each because while during
		between against again once here very own same too these those`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether the (lowercase) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// ContentWords tokenizes text and removes stopwords and single-character
// tokens, yielding the word feature stream used by the ranking models.
func ContentWords(text string) []string {
	toks := Words(text)
	w := 0
	for _, t := range toks {
		if len(t) > 1 && !stopwords[t] {
			toks[w] = t
			w++
		}
	}
	return toks[:w]
}

// Bigrams returns the adjacent-pair phrases of toks joined by '_'.
func Bigrams(toks []string) []string {
	if len(toks) < 2 {
		return nil
	}
	out := make([]string, 0, len(toks)-1)
	for i := 0; i+1 < len(toks); i++ {
		out = append(out, toks[i]+"_"+toks[i+1])
	}
	return out
}
