// Package factcrawl implements the FactCrawl baseline (Boden et al.,
// WebDB 2011) as described in Section 2, and the strengthened Adaptive
// FactCrawl (A-FC) variant the paper introduces in Section 4. FactCrawl
// scores a document proportionally to the number and quality of the
// learned queries that retrieve it:
//
//	S(d) = sum_{q in Qd} F_beta(q) * F_beta_avg(method(q))
//
// where each query's F-measure is estimated once from labelled documents,
// and A-FC re-estimates query quality (and learns new queries) as the
// extraction process progresses.
package factcrawl

import (
	"sort"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/index"
	"adaptiverank/internal/sampling"
)

// Options configures FactCrawl.
type Options struct {
	// Beta weights precision against recall in the query F-measure
	// (default 1).
	Beta float64
	// RetrieveK is the result-list depth that defines "query q retrieves
	// document d" (default 300, matching the paper's Lucene anecdote).
	RetrieveK int
	// NewQueryEvery makes A-FC learn new queries from the documents
	// processed so far every this many documents (default 250).
	NewQueryEvery int
	// MaxNewQueries caps the queries added per learning round (default 5).
	MaxNewQueries int
	// MaxTotalQueries bounds the total query set (default 60): FactCrawl
	// "relies on a small number of features" (Section 5), which is what
	// limits A-FC when new vocabulary emerges.
	MaxTotalQueries int
	// Seed drives A-FC's query learning.
	Seed int64
}

func (o *Options) defaults() {
	if o.Beta == 0 {
		o.Beta = 1
	}
	if o.RetrieveK == 0 {
		o.RetrieveK = 300
	}
	if o.NewQueryEvery == 0 {
		o.NewQueryEvery = 250
	}
	if o.MaxNewQueries == 0 {
		o.MaxNewQueries = 5
	}
	if o.MaxTotalQueries == 0 {
		o.MaxTotalQueries = 60
	}
}

// queryInfo is one learned query with its retrieval set and quality stats.
type queryInfo struct {
	text      string
	method    string
	retrieved map[corpus.DocID]bool
	// tp/fp/fn accumulate labelled evidence (sample + processed docs).
	tp, fp, fn float64
	f          float64
}

// FC is the FactCrawl scorer. The zero value is not usable; call New.
type FC struct {
	opts      Options
	idx       *index.Index
	queries   []*queryInfo
	byDoc     map[corpus.DocID][]int // doc -> indices of queries retrieving it
	methodAvg map[string]float64
	haveQuery map[string]bool

	adaptive      bool
	seenDocs      []*corpus.Document
	seenUseful    map[corpus.DocID]bool
	sinceNewQuery int
}

// New builds a FactCrawl scorer over the search index with the given
// learned query lists. adaptive selects the A-FC behaviour.
func New(idx *index.Index, lists []sampling.QueryList, opts Options, adaptive bool) *FC {
	opts.defaults()
	fc := &FC{
		opts:       opts,
		idx:        idx,
		byDoc:      make(map[corpus.DocID][]int),
		methodAvg:  make(map[string]float64),
		haveQuery:  make(map[string]bool),
		adaptive:   adaptive,
		seenUseful: make(map[corpus.DocID]bool),
	}
	for _, l := range lists {
		for _, q := range l.Queries {
			fc.addQuery(q, l.Method)
		}
	}
	return fc
}

// Name identifies the strategy.
func (fc *FC) Name() string {
	if fc.adaptive {
		return "A-FC"
	}
	return "FC"
}

func (fc *FC) addQuery(text, method string) {
	norm := sampling.NormalizeQuery(text)
	if norm == "" || fc.haveQuery[norm] {
		return
	}
	fc.haveQuery[norm] = true
	qi := &queryInfo{text: norm, method: method, retrieved: make(map[corpus.DocID]bool)}
	i := len(fc.queries)
	fc.queries = append(fc.queries, qi)
	for _, h := range fc.idx.Search(norm, fc.opts.RetrieveK) {
		qi.retrieved[h.Doc] = true
		fc.byDoc[h.Doc] = append(fc.byDoc[h.Doc], i)
	}
}

// Prime estimates initial query quality from the labelled sample, exactly
// once, as FactCrawl does (Section 2).
func (fc *FC) Prime(sample []*corpus.Document, useful func(corpus.DocID) bool) {
	for _, d := range sample {
		fc.account(d, useful(d.ID))
		if fc.adaptive {
			fc.seenDocs = append(fc.seenDocs, d)
			fc.seenUseful[d.ID] = useful(d.ID)
		}
	}
	fc.recompute()
}

// account attributes one labelled document to every query retrieving it.
func (fc *FC) account(d *corpus.Document, useful bool) {
	qs := fc.byDoc[d.ID]
	in := make(map[int]bool, len(qs))
	for _, qi := range qs {
		in[qi] = true
		if useful {
			fc.queries[qi].tp++
		} else {
			fc.queries[qi].fp++
		}
	}
	if useful {
		for i := range fc.queries {
			if !in[i] {
				fc.queries[i].fn++
			}
		}
	}
}

// recompute refreshes per-query F-measures and per-method averages.
func (fc *FC) recompute() {
	beta2 := fc.opts.Beta * fc.opts.Beta
	sums := make(map[string]float64)
	counts := make(map[string]float64)
	for _, q := range fc.queries {
		q.f = 0
		if q.tp > 0 {
			p := q.tp / (q.tp + q.fp)
			r := q.tp / (q.tp + q.fn)
			q.f = (1 + beta2) * p * r / (beta2*p + r)
		}
		sums[q.method] += q.f
		counts[q.method]++
	}
	for m := range sums {
		fc.methodAvg[m] = sums[m] / counts[m]
	}
}

// Score returns S(d) under the current query-quality estimates.
func (fc *FC) Score(d *corpus.Document) float64 {
	var s float64
	for _, qi := range fc.byDoc[d.ID] {
		q := fc.queries[qi]
		s += q.f * fc.methodAvg[q.method]
	}
	return s
}

// Observe records one processed document. For base FC it is a no-op and
// returns false. For A-FC it updates query quality, periodically learns
// new queries from all processed documents, and returns true so the caller
// re-ranks the pending documents.
func (fc *FC) Observe(d *corpus.Document, useful bool) bool {
	if !fc.adaptive {
		return false
	}
	fc.account(d, useful)
	fc.seenDocs = append(fc.seenDocs, d)
	fc.seenUseful[d.ID] = useful
	fc.sinceNewQuery++
	if fc.sinceNewQuery >= fc.opts.NewQueryEvery && len(fc.queries) < fc.opts.MaxTotalQueries {
		fc.sinceNewQuery = 0
		fc.learnNewQueries()
	}
	fc.recompute()
	return true
}

// afcLearnWindow bounds the training set of A-FC's periodic query
// learning to the most recent processed documents: re-training over every
// processed document grows quadratically over a run, and a recency window
// is both tractable and closer to "adapting to what the extraction is
// finding now".
const afcLearnWindow = 1500

// learnNewQueries trains a QXtract-style classifier on the recently
// processed documents and adds the strongest unseen terms as new queries
// with method tag "a-fc". New queries start with the evidence of
// already-seen docs.
func (fc *FC) learnNewQueries() {
	docs := fc.seenDocs
	if len(docs) > afcLearnWindow {
		docs = docs[len(docs)-afcLearnWindow:]
	}
	sub := &subCollection{docs: docs}
	terms := sampling.LearnQueries(sub.collection(), func(d *corpus.Document) bool {
		return fc.seenUseful[d.ID]
	}, fc.opts.MaxNewQueries*2, fc.opts.Seed+int64(len(fc.queries)))
	added := 0
	for _, t := range terms {
		if fc.haveQuery[sampling.NormalizeQuery(t)] {
			continue
		}
		before := len(fc.queries)
		fc.addQuery(t, "a-fc")
		if len(fc.queries) == before {
			continue
		}
		// Retroactively account the labels we already know for the new
		// query's retrieved set.
		q := fc.queries[len(fc.queries)-1]
		for id, u := range fc.seenUseful {
			switch {
			case q.retrieved[id] && u:
				q.tp++
			case q.retrieved[id] && !u:
				q.fp++
			case u:
				q.fn++
			}
		}
		added++
		if added >= fc.opts.MaxNewQueries {
			break
		}
	}
}

// QueryCount reports how many queries the scorer currently uses.
func (fc *FC) QueryCount() int { return len(fc.queries) }

// QueryF returns the current F-measure estimates by query text, for
// diagnostics and tests.
func (fc *FC) QueryF() map[string]float64 {
	out := make(map[string]float64, len(fc.queries))
	for _, q := range fc.queries {
		out[q.text] = q.f
	}
	return out
}

// subCollection adapts a document slice to the corpus.Collection API that
// sampling.LearnQueries expects, *without* renumbering the documents
// (corpus.NewCollection reassigns ids, which must not happen here).
type subCollection struct {
	docs []*corpus.Document
}

func (s *subCollection) collection() *corpus.Collection {
	// Sort by id for determinism; LearnQueries only iterates Docs().
	docs := append([]*corpus.Document(nil), s.docs...)
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	return corpus.FromDocs(docs)
}
