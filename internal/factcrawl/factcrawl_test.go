package factcrawl

import (
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/index"
	"adaptiverank/internal/sampling"
)

// fixture: docs 0..9 contain "lava" (0..4 also "ash"), docs 10..14 contain
// "garlic" only.
func fixture() (*corpus.Collection, *index.Index) {
	var docs []*corpus.Document
	for i := 0; i < 10; i++ {
		text := "lava flows near the crater"
		if i < 5 {
			text += " ash plume"
		}
		docs = append(docs, &corpus.Document{Text: text})
	}
	for i := 0; i < 5; i++ {
		docs = append(docs, &corpus.Document{Text: "garlic recipe simmer"})
	}
	coll := corpus.NewCollection(docs)
	return coll, index.Build(coll)
}

func lists() []sampling.QueryList {
	return []sampling.QueryList{{Method: "m1", Queries: []string{"lava", "ash"}}}
}

func TestFCScoreSumsOverRetrievingQueries(t *testing.T) {
	coll, idx := fixture()
	fc := New(idx, lists(), Options{RetrieveK: 50}, false)
	useful := func(id corpus.DocID) bool { return id < 5 } // ash docs useful
	fc.Prime(coll.Docs(), useful)

	both := fc.Score(coll.Doc(0))     // retrieved by [lava] and [ash]
	lavaOnly := fc.Score(coll.Doc(7)) // retrieved by [lava] only
	neither := fc.Score(coll.Doc(12))
	if !(both > lavaOnly && lavaOnly >= 0 && neither == 0) {
		t.Errorf("scores both=%g lavaOnly=%g neither=%g violate S(d) structure",
			both, lavaOnly, neither)
	}
}

func TestFCQueryFMeasures(t *testing.T) {
	coll, idx := fixture()
	fc := New(idx, lists(), Options{RetrieveK: 50}, false)
	useful := func(id corpus.DocID) bool { return id < 5 }
	fc.Prime(coll.Docs(), useful)
	qf := fc.QueryF()
	// [ash] retrieves exactly the useful docs: F = 1.
	if qf["ash"] < 0.99 {
		t.Errorf("F(ash) = %g, want 1", qf["ash"])
	}
	// [lava] has precision 0.5, recall 1: F = 2/3.
	if qf["lava"] < 0.6 || qf["lava"] > 0.72 {
		t.Errorf("F(lava) = %g, want ~0.667", qf["lava"])
	}
}

func TestBaseFCObserveIsNoop(t *testing.T) {
	coll, idx := fixture()
	fc := New(idx, lists(), Options{}, false)
	fc.Prime(coll.Docs()[:5], func(id corpus.DocID) bool { return true })
	if fc.Observe(coll.Doc(7), true) {
		t.Error("base FC Observe must return false")
	}
}

func TestAFCUpdatesQualityAndReRanks(t *testing.T) {
	coll, idx := fixture()
	fc := New(idx, lists(), Options{RetrieveK: 50, NewQueryEvery: 1000}, true)
	// Prime with a misleading sample: only lava-only docs, all useless.
	fc.Prime(coll.Docs()[5:10], func(corpus.DocID) bool { return false })
	before := fc.Score(coll.Doc(0))
	// Observing a useful ash document must raise ash's quality.
	if !fc.Observe(coll.Doc(1), true) {
		t.Fatal("A-FC Observe must request a re-rank")
	}
	if after := fc.Score(coll.Doc(0)); after <= before {
		t.Errorf("score did not improve after positive evidence: %g -> %g", before, after)
	}
}

func TestAFCLearnsNewQueries(t *testing.T) {
	coll, idx := fixture()
	fc := New(idx, []sampling.QueryList{{Method: "m1", Queries: []string{"lava"}}},
		Options{RetrieveK: 50, NewQueryEvery: 2, MaxNewQueries: 3}, true)
	fc.Prime(coll.Docs()[5:8], func(corpus.DocID) bool { return false })
	start := fc.QueryCount()
	for i := 0; i < 10; i++ {
		fc.Observe(coll.Doc(corpus.DocID(i)), i < 5)
	}
	if fc.QueryCount() <= start {
		t.Errorf("A-FC query count stayed at %d; expected new learned queries", start)
	}
}

func TestAFCQueryCap(t *testing.T) {
	coll, idx := fixture()
	fc := New(idx, []sampling.QueryList{{Method: "m1", Queries: []string{"lava"}}},
		Options{RetrieveK: 50, NewQueryEvery: 1, MaxNewQueries: 5, MaxTotalQueries: 3}, true)
	fc.Prime(nil, func(corpus.DocID) bool { return false })
	for i := 0; i < 15; i++ {
		fc.Observe(coll.Doc(corpus.DocID(i)), i%3 == 0)
	}
	if fc.QueryCount() > 3+5 {
		t.Errorf("query count %d exceeded the cap by more than one round", fc.QueryCount())
	}
}

func TestDuplicateQueriesIgnored(t *testing.T) {
	_, idx := fixture()
	fc := New(idx, []sampling.QueryList{
		{Method: "m1", Queries: []string{"lava", "LAVA", " lava "}},
	}, Options{}, false)
	if fc.QueryCount() != 1 {
		t.Errorf("QueryCount = %d, want 1 after normalization", fc.QueryCount())
	}
}

func TestNames(t *testing.T) {
	_, idx := fixture()
	if New(idx, nil, Options{}, false).Name() != "FC" {
		t.Error("FC name")
	}
	if New(idx, nil, Options{}, true).Name() != "A-FC" {
		t.Error("A-FC name")
	}
}
