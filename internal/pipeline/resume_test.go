package pipeline

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/extract"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/update"
)

// learnedOpts builds a fresh learned-strategy Options over env, wired to
// the env's precomputed labels unless an oracle override is given.
func learnedOpts(env *testEnv, seed int64) Options {
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: seed})
	return Options{
		Rel: relation.PH, Coll: env.coll, Labels: env.labels, Sample: env.sample,
		Strategy: NewLearned(r, feat), Detector: update.NewModC(r, 0.1, 5, 2),
		Featurizer: feat,
	}
}

func sameResults(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Order) != len(b.Order) {
		t.Fatalf("Order length differs: %d vs %d", len(a.Order), len(b.Order))
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("Order diverges at %d: doc %d vs %d", i, a.Order[i], b.Order[i])
		}
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("tuple sets differ: %d vs %d", len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatalf("tuple %d differs: %v vs %v", i, a.Tuples[i], b.Tuples[i])
		}
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("recall curve diverges at %d%%: %g vs %g", i, a.Curve[i], b.Curve[i])
		}
	}
}

// TestRunContextCancellationDrains: cancelling mid-run returns a partial,
// Interrupted result instead of an error, with Order consistent.
func TestRunContextCancellationDrains(t *testing.T) {
	env := newTestEnv(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	opts := learnedOpts(env, 5)
	stop := len(env.sample) + 40
	calls := 0
	opts.Labels = &cancellingOracle{inner: env.labels, after: stop, calls: &calls, cancel: cancel}
	res, err := RunContext(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if len(res.Order) >= env.coll.Len()-res.SampleSize {
		t.Fatal("cancelled run processed the whole collection")
	}
	if len(res.Order) != len(res.OrderLabels) {
		t.Fatal("partial result lost Order/OrderLabels parallelism")
	}
}

// cancellingOracle cancels the run context after `after` labelling calls.
type cancellingOracle struct {
	inner  Oracle
	after  int
	calls  *int
	cancel context.CancelFunc
}

func (c *cancellingOracle) Label(d *corpus.Document) (bool, []relation.Tuple) {
	u, ts, _ := c.LabelContext(context.Background(), d)
	return u, ts
}
func (c *cancellingOracle) TotalUseful() (int, bool) { return c.inner.TotalUseful() }
func (c *cancellingOracle) LabelContext(ctx context.Context, d *corpus.Document) (bool, []relation.Tuple, error) {
	*c.calls++
	if *c.calls == c.after {
		c.cancel()
	}
	if err := ctx.Err(); err != nil {
		return false, nil, err
	}
	u, ts := c.inner.Label(d)
	return u, ts, nil
}

// TestRunJournalResumeReproducesRun is the tentpole acceptance test: a
// run interrupted partway and resumed against its journal produces the
// same Order, tuple set, and recall curve as an uninterrupted run.
func TestRunJournalResumeReproducesRun(t *testing.T) {
	env := newTestEnv(t, 7)

	// Reference: uninterrupted, journal-less run.
	ref, err := RunContext(context.Background(), learnedOpts(env, 7))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run with a journal: cancel after ~60 ranked docs.
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path, "resume-test")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := learnedOpts(env, 7)
	opts.Journal = j
	calls := 0
	opts.Labels = &cancellingOracle{inner: env.labels, after: len(env.sample) + 60, calls: &calls, cancel: cancel}
	part, err := RunContext(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Interrupted || len(part.Order) == 0 {
		t.Fatalf("setup: want a non-empty interrupted run, got interrupted=%v order=%d",
			part.Interrupted, len(part.Order))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: fresh strategy/detector state, same seed, journal replay.
	j2, err := OpenJournal(path, "resume-test")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Entries() == 0 {
		t.Fatal("journal empty after interrupted run")
	}
	opts2 := learnedOpts(env, 7)
	opts2.Journal = j2
	res, err := RunContext(context.Background(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("resumed run reported Interrupted")
	}
	sameResults(t, ref, res)

	// The resumed prefix must match the interrupted run's order exactly.
	for i, id := range part.Order {
		if res.Order[i] != id {
			t.Fatalf("resume order diverges from interrupted run at %d: %d vs %d", i, res.Order[i], id)
		}
	}
}

// TestRunJournalResumeDivergenceDetected: resuming a journal against a
// different configuration (different seed => different model evolution)
// must fail loudly at a snapshot check, not silently produce garbage.
func TestRunJournalResumeDivergenceDetected(t *testing.T) {
	env := newTestEnv(t, 9)
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path, "div-test")
	if err != nil {
		t.Fatal(err)
	}
	opts := learnedOpts(env, 9)
	opts.Journal = j
	if _, err := RunContext(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "div-test")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	opts2 := learnedOpts(env, 1234) // different model seed
	opts2.Journal = j2
	_, err = RunContext(context.Background(), opts2)
	if err == nil || !errors.Is(err, ErrResumeDiverged) {
		t.Fatalf("err = %v, want snapshot divergence", err)
	}
}

// TestRunWithFlakyExtractorCompletes is the ISSUE acceptance scenario at
// the pipeline level: a live resilient oracle over a 10% transient + 1%
// panic flaky extractor completes with zero crashes; non-poisoned docs
// get correct labels and poisoned ones are skipped and counted.
func TestRunWithFlakyExtractorCompletes(t *testing.T) {
	env := newTestEnv(t, 11)
	reg := obs.NewRegistry()
	fl := extract.NewFlaky(extract.Get(relation.PH), extract.FlakyOptions{
		Seed: 11, ErrorRate: 0.10, PanicRate: 0.01, PoisonRate: 0.01, MaxFaultyAttempts: 2,
	})
	r := NewResilient(&ExtractorOracle{Ex: fl}, ResilientOptions{
		MaxAttempts: 4, Sleep: func(time.Duration) {},
	})
	opts := learnedOpts(env, 11)
	opts.Labels = r
	opts.Metrics = reg
	res, err := RunContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("fault-injected run reported Interrupted")
	}
	// Every non-poisoned document must carry its true label.
	for i, id := range res.Order {
		if res.OrderLabels[i] != env.labels.Useful(id) {
			t.Fatalf("doc %d labelled %v, oracle says %v", id, res.OrderLabels[i], env.labels.Useful(id))
		}
	}
	// Skipped docs are exactly the poisoned ones (no breaker trips at
	// these rates), and the counters surface them.
	if len(res.Skipped) == 0 {
		t.Fatal("schedule poisoned no documents; scenario degenerate")
	}
	for _, id := range res.Skipped {
		if !fl.Poisoned(id) {
			t.Fatalf("doc %d skipped but not poisoned", id)
		}
	}
	if got := reg.CounterValue("pipeline.docs_skipped"); got != int64(len(res.Skipped)) {
		t.Fatalf("docs_skipped counter = %d, want %d", got, len(res.Skipped))
	}
	if reg.CounterValue("resilience.faults") == 0 {
		t.Fatal("resilience.faults counter empty: oracle not instrumented through pipeline")
	}
	if res.SampleSize+len(res.Order)+len(res.Skipped) != env.coll.Len() {
		t.Fatalf("sample %d + ranked %d + skipped %d != collection %d",
			res.SampleSize, len(res.Order), len(res.Skipped), env.coll.Len())
	}
}

// TestRunRequeuesOnOpenBreaker: breaker-open fast-fails push docs back
// to the pending pool; once over the requeue limit they are skipped.
func TestRunRequeuesOnOpenBreaker(t *testing.T) {
	env := newTestEnv(t, 13)
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}
	// An oracle that fails hard for a stretch of calls after the sample,
	// tripping the breaker, then recovers.
	calls := 0
	inner := env.labels
	failFrom, failTo := len(env.sample)+10, len(env.sample)+30
	flaky := oracleFunc{
		label: func(ctx context.Context, d *corpus.Document) (bool, []relation.Tuple, error) {
			calls++
			if calls >= failFrom && calls < failTo {
				return false, nil, errors.New("backend down")
			}
			u, ts := inner.Label(d)
			return u, ts, nil
		},
		total: inner.TotalUseful,
	}
	r := NewResilient(flaky, ResilientOptions{
		MaxAttempts: 2, BreakerThreshold: 4, BreakerCooldown: 2,
		Sleep: func(time.Duration) {},
	})
	opts := learnedOpts(env, 13)
	opts.Labels = r
	opts.Metrics = reg
	opts.Recorder = rec
	res, err := RunContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeued == 0 {
		t.Fatal("open breaker produced no requeues")
	}
	if got := reg.CounterValue("pipeline.docs_requeued"); got != int64(res.Requeued) {
		t.Fatalf("docs_requeued counter = %d, want %d", got, res.Requeued)
	}
	if len(kindEvents(rec, obs.KindDocRequeued)) != res.Requeued {
		t.Fatal("requeue events do not match Result.Requeued")
	}
	// The outage is transient, so requeued docs are eventually labelled:
	// everything is accounted as sample + ranked + skipped.
	if res.SampleSize+len(res.Order)+len(res.Skipped) != env.coll.Len() {
		t.Fatalf("sample %d + ranked %d + skipped %d != collection %d",
			res.SampleSize, len(res.Order), len(res.Skipped), env.coll.Len())
	}
}

// oracleFunc adapts closures to ContextOracle.
type oracleFunc struct {
	label func(ctx context.Context, d *corpus.Document) (bool, []relation.Tuple, error)
	total func() (int, bool)
}

func (o oracleFunc) Label(d *corpus.Document) (bool, []relation.Tuple) {
	u, ts, _ := o.label(context.Background(), d)
	return u, ts
}
func (o oracleFunc) TotalUseful() (int, bool) { return o.total() }
func (o oracleFunc) LabelContext(ctx context.Context, d *corpus.Document) (bool, []relation.Tuple, error) {
	return o.label(ctx, d)
}

// TestRunScoreWorkerPanicIsRecovered: a strategy whose Score panics on
// one document must not crash the run; the doc is ranked last and the
// panic is attributed in the obs stream.
func TestRunScoreWorkerPanicIsRecovered(t *testing.T) {
	env := newTestEnv(t, 15)
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}
	var bomb corpus.DocID = env.coll.Docs()[len(env.sample)+5].ID
	opts := learnedOpts(env, 15)
	opts.Strategy = &panickyStrategy{inner: opts.Strategy, bomb: bomb}
	opts.Metrics = reg
	opts.Recorder = rec
	opts.Workers = 4
	res, err := RunContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) == 0 {
		t.Fatal("run produced no order")
	}
	if reg.CounterValue("pipeline.worker_panics") == 0 {
		t.Fatal("score panic not counted")
	}
	evs := kindEvents(rec, obs.KindWorkerPanic)
	if len(evs) == 0 || evs[0].Name != "score" || corpus.DocID(evs[0].Doc) != bomb {
		t.Fatalf("worker-panic events = %+v, want doc %d at site score", evs, bomb)
	}
}

// panickyStrategy panics in Score for one specific document.
type panickyStrategy struct {
	inner Strategy
	bomb  corpus.DocID
}

func (p *panickyStrategy) Name() string          { return p.inner.Name() }
func (p *panickyStrategy) Init(s []LabeledDoc)   { p.inner.Init(s) }
func (p *panickyStrategy) Update(b []LabeledDoc) { p.inner.Update(b) }
func (p *panickyStrategy) Observe(ld LabeledDoc) bool {
	return p.inner.Observe(ld)
}
func (p *panickyStrategy) Score(d *corpus.Document) float64 {
	if d.ID == p.bomb {
		panic("score bomb")
	}
	return p.inner.Score(d)
}

// TestComputeLabelsContextPanicAttribution: an extractor panic inside the
// parallel labelling fan-out is converted into an error naming the doc.
func TestComputeLabelsContextPanicAttribution(t *testing.T) {
	env := newTestEnv(t, 17)
	_, err := ComputeLabelsContext(context.Background(), panicOnDocExtractor{bomb: 3}, env.coll)
	if err == nil {
		t.Fatal("extractor panic not surfaced")
	}
	if want := "doc 3"; !containsStr(err.Error(), want) {
		t.Fatalf("err %q does not attribute %q", err, want)
	}
	// Cancellation propagates.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeLabelsContext(ctx, extract.Get(relation.PH), env.coll); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

type panicOnDocExtractor struct{ bomb corpus.DocID }

func (panicOnDocExtractor) Relation() relation.Relation  { return relation.PH }
func (panicOnDocExtractor) SimulatedCost() time.Duration { return time.Millisecond }
func (e panicOnDocExtractor) Extract(d *corpus.Document) []relation.Tuple {
	if d.ID == e.bomb {
		panic("extractor bomb")
	}
	return nil
}
