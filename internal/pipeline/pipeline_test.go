package pipeline

import (
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/extract"
	"adaptiverank/internal/index"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/sampling"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/update"
)

// testEnv builds a small corpus with a boosted PH density so every run has
// signal, plus labels and a sample.
type testEnv struct {
	coll   *corpus.Collection
	labels *Labels
	sample []*corpus.Document
}

func newTestEnv(t *testing.T, seed int64) *testEnv {
	t.Helper()
	cfg := textgen.DefaultConfig(seed, 1200)
	cfg.DensityOverride = map[relation.Relation]float64{relation.PH: 0.05}
	coll, _ := textgen.Generate(cfg)
	labels := ComputeLabels(extract.Get(relation.PH), coll)
	if labels.NumUseful() < 10 {
		t.Fatalf("test corpus too sparse: %d useful", labels.NumUseful())
	}
	return &testEnv{coll: coll, labels: labels, sample: sampling.SRS(coll, 150, seed)}
}

func (e *testEnv) run(t *testing.T, strat Strategy, det update.Detector, feat *ranking.Featurizer) *Result {
	t.Helper()
	res, err := Run(Options{
		Rel: relation.PH, Coll: e.coll, Labels: e.labels, Sample: e.sample,
		Strategy: strat, Detector: det, Featurizer: feat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunResultInvariants(t *testing.T) {
	env := newTestEnv(t, 1)
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 1})
	res := env.run(t, NewLearned(r, feat), update.NewModC(r, 0.1, 5, 2), feat)

	if len(res.Order) != len(res.OrderLabels) {
		t.Fatal("Order and OrderLabels must be parallel")
	}
	if res.SampleSize+len(res.Order) != env.coll.Len() {
		t.Errorf("sample (%d) + ranked (%d) != collection (%d)",
			res.SampleSize, len(res.Order), env.coll.Len())
	}
	seen := map[corpus.DocID]bool{}
	for _, d := range env.sample {
		seen[d.ID] = true
	}
	for i, id := range res.Order {
		if seen[id] {
			t.Fatalf("document %d processed twice (position %d)", id, i)
		}
		seen[id] = true
		if res.OrderLabels[i] != env.labels.Useful(id) {
			t.Fatalf("label mismatch at position %d", i)
		}
	}
	if res.AUC < 0 || res.AUC > 1 || res.AP < 0 || res.AP > 1 {
		t.Errorf("metrics out of range: AP=%g AUC=%g", res.AP, res.AUC)
	}
	if res.Curve[100] < 0.999 {
		t.Errorf("final recall = %g, want 1 (everything processed)", res.Curve[100])
	}
	if res.Time.Extraction <= 0 {
		t.Error("extraction time must accumulate")
	}
}

func TestPerfectBeatsRandom(t *testing.T) {
	env := newTestEnv(t, 2)
	feat := ranking.NewFeaturizer()
	perfect := env.run(t, &Perfect{L: env.labels}, nil, feat)
	random := env.run(t, NewLearned(ranking.NewRandomRanker(3), feat), nil, feat)
	if perfect.AUC < 0.999 {
		t.Errorf("perfect AUC = %g, want 1", perfect.AUC)
	}
	if perfect.AP < 0.999 {
		t.Errorf("perfect AP = %g, want 1", perfect.AP)
	}
	if random.AUC > 0.75 {
		t.Errorf("random AUC = %g, suspiciously high", random.AUC)
	}
}

func TestLearnedBeatsRandom(t *testing.T) {
	env := newTestEnv(t, 4)
	featA := ranking.NewFeaturizer()
	learned := env.run(t, NewLearned(ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 4}), featA), nil, featA)
	featB := ranking.NewFeaturizer()
	random := env.run(t, NewLearned(ranking.NewRandomRanker(4), featB), nil, featB)
	if learned.AUC <= random.AUC {
		t.Errorf("RSVM-IE AUC %.3f <= random AUC %.3f", learned.AUC, random.AUC)
	}
}

func TestAdaptiveTriggersUpdates(t *testing.T) {
	env := newTestEnv(t, 5)
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 5})
	res := env.run(t, NewLearned(r, feat), update.NewWindF(100), feat)
	if len(res.UpdatePositions) == 0 {
		t.Fatal("Wind-F produced no updates")
	}
	want := (env.coll.Len() - 150) / 100
	if got := len(res.UpdatePositions); got < want-1 || got > want+1 {
		t.Errorf("updates = %d, want ~%d", got, want)
	}
	if res.DetectorObservations != len(res.Order) {
		t.Errorf("detector observations = %d, want %d", res.DetectorObservations, len(res.Order))
	}
	if len(res.Churn) != len(res.UpdatePositions) {
		t.Errorf("churn records = %d, want one per update", len(res.Churn))
	}
}

func TestDeterministicRuns(t *testing.T) {
	env := newTestEnv(t, 6)
	mk := func() *Result {
		feat := ranking.NewFeaturizer()
		r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 6})
		return env.run(t, NewLearned(r, feat), update.NewModC(r, 0.1, 5, 7), feat)
	}
	a, b := mk(), mk()
	if len(a.Order) != len(b.Order) {
		t.Fatal("orders differ in length")
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("processing order diverged at %d", i)
		}
	}
}

func TestMaxDocsStopsEarly(t *testing.T) {
	env := newTestEnv(t, 7)
	feat := ranking.NewFeaturizer()
	res, err := Run(Options{
		Rel: relation.PH, Coll: env.coll, Labels: env.labels, Sample: env.sample,
		Strategy:   NewLearned(ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 7}), feat),
		Featurizer: feat, MaxDocs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 100 {
		t.Errorf("processed %d ranked docs, want 100", len(res.Order))
	}
}

func TestSearchInterfacePoolGrowth(t *testing.T) {
	env := newTestEnv(t, 8)
	idx := index.Build(env.coll)
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 8})
	res, err := Run(Options{
		Rel: relation.PH, Coll: env.coll, Labels: env.labels,
		Sample:   sampling.CQS(idx, []string{"charged", "fraud"}, 100, 10),
		Strategy: NewLearned(r, feat), Detector: update.NewWindF(50),
		Featurizer: feat,
		SearchIface: &SearchIfaceOptions{
			Index:          idx,
			InitialQueries: []string{"charged", "fraud", "indicted"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) >= env.coll.Len() {
		t.Error("search-interface pool must not cover the whole collection")
	}
	if len(res.Order) == 0 {
		t.Fatal("empty pool")
	}
	// The pool must contain a useful-doc fraction above the base rate
	// (queries target useful docs).
	useful := 0
	for _, u := range res.OrderLabels {
		if u {
			useful++
		}
	}
	baseRate := float64(env.labels.NumUseful()) / float64(env.coll.Len())
	if rate := float64(useful+res.SampleUseful) / float64(len(res.Order)+res.SampleSize); rate <= baseRate {
		t.Errorf("pool useful rate %.3f <= base rate %.3f", rate, baseRate)
	}
}

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("Run with empty options must fail")
	}
}

func TestLabelsRestrict(t *testing.T) {
	env := newTestEnv(t, 9)
	r := env.labels.Restrict(300)
	if r.Len() != 300 {
		t.Errorf("restricted Len = %d, want 300", r.Len())
	}
	count := 0
	for i := 0; i < 300; i++ {
		if env.labels.Useful(corpus.DocID(i)) {
			count++
		}
	}
	if r.NumUseful() != count {
		t.Errorf("restricted NumUseful = %d, want %d", r.NumUseful(), count)
	}
	if env.labels.Restrict(1<<20) != env.labels {
		t.Error("oversized Restrict must return the original labels")
	}
}

func TestLabelsForCaches(t *testing.T) {
	coll, _ := textgen.Generate(textgen.DefaultConfig(10, 100))
	a := LabelsFor(relation.EW, coll)
	b := LabelsFor(relation.EW, coll)
	if a != b {
		t.Error("LabelsFor must cache per (relation, collection)")
	}
}

func TestFCStrategyRerankBatching(t *testing.T) {
	s := &FCStrategy{RerankEvery: 3}
	// Without a backing FC this only exercises the batching logic via a
	// nil-safe path, so construct with the real helper instead.
	_ = s
	if NewFCStrategy(nil, 0).RerankEvery != 1 {
		t.Error("RerankEvery must default to 1")
	}
}

func TestParallelRankingMatchesSequential(t *testing.T) {
	env := newTestEnv(t, 12)
	mk := func(workers int) *Result {
		feat := ranking.NewFeaturizer()
		r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 12})
		res, err := Run(Options{
			Rel: relation.PH, Coll: env.coll, Labels: env.labels, Sample: env.sample,
			Strategy: NewLearned(r, feat), Detector: update.NewWindF(200),
			Featurizer: feat, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := mk(1)
	par := mk(8)
	if len(seq.Order) != len(par.Order) {
		t.Fatal("order lengths differ")
	}
	for i := range seq.Order {
		if seq.Order[i] != par.Order[i] {
			t.Fatalf("parallel ranking diverged from sequential at position %d", i)
		}
	}
}
