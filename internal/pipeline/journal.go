package pipeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
)

// journalVersion is bumped when the record format changes incompatibly.
const journalVersion = 1

// ErrResumeDiverged marks a resumed run whose replayed model state does
// not match the journal's snapshot: the result would silently differ
// from the interrupted run, so the pipeline aborts instead.
var ErrResumeDiverged = errors.New("pipeline: resume diverged")

// journalRecord is the JSONL wire format of one run-journal line. The
// journal is an append-only account of everything a run learned the hard
// way — per-document extraction outcomes, permanent skips, and model
// snapshots at updates — written record-at-a-time so a SIGKILL at any
// instant loses at most the final, partially written line (which the
// lenient loader drops, mirroring obs.ReadEventsPartial).
type journalRecord struct {
	// Kind is "header", "doc", "skip", or "snap".
	Kind string `json:"kind"`
	// V and FP are carried by the header: format version and the run
	// fingerprint the journal belongs to.
	V  int    `json:"v,omitempty"`
	FP string `json:"fp,omitempty"`
	// Doc, Useful, and Tuples describe one extraction outcome ("doc"),
	// or the skipped document and reason ("skip").
	Doc    int64          `json:"doc,omitempty"`
	Useful bool           `json:"useful,omitempty"`
	Tuples []journalTuple `json:"tuples,omitempty"`
	Reason string         `json:"reason,omitempty"`
	// Pos, NNZ, and Sum describe one model snapshot ("snap"): the
	// ranked-document position of the update, the model support size,
	// and an order-independent hash of the weight vector.
	Pos int    `json:"pos,omitempty"`
	NNZ int    `json:"nnz,omitempty"`
	Sum uint64 `json:"csum,omitempty"`
}

type journalTuple struct {
	Rel  string `json:"rel"`
	Arg1 string `json:"a1"`
	Arg2 string `json:"a2"`
}

func toJournalTuples(ts []relation.Tuple) []journalTuple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]journalTuple, len(ts))
	for i, t := range ts {
		out[i] = journalTuple{Rel: t.Rel.Code(), Arg1: t.Arg1, Arg2: t.Arg2}
	}
	return out
}

func fromJournalTuples(ts []journalTuple) ([]relation.Tuple, error) {
	if len(ts) == 0 {
		return nil, nil
	}
	out := make([]relation.Tuple, len(ts))
	for i, t := range ts {
		rel, err := relation.Parse(t.Rel)
		if err != nil {
			return nil, err
		}
		out[i] = relation.Tuple{Rel: rel, Arg1: t.Arg1, Arg2: t.Arg2}
	}
	return out, nil
}

// JournalEntry is the recorded final outcome for one document.
type JournalEntry struct {
	// Useful and Tuples are the extraction outcome (Skipped == false).
	Useful bool
	Tuples []relation.Tuple
	// Skipped marks a document the run permanently dropped, with the
	// reason ("poisoned", "requeue-limit", ...).
	Skipped bool
	Reason  string
}

type snapshotRecord struct {
	NNZ int
	Sum uint64
}

// Journal is the crash-safe run journal backing -checkpoint/-resume.
// Every Record* call appends one JSON line and flushes it to the kernel
// before returning, so a killed process loses at most the line being
// written. Records are deduplicated per document: replaying a resumed
// run over already-journaled documents appends nothing.
//
// All methods are safe on a nil *Journal (they no-op), so the pipeline
// can thread an optional journal without nil checks, in the style of
// obs.Registry.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	docs  map[corpus.DocID]JournalEntry
	snaps map[int]snapshotRecord
	// checked marks snapshot positions that this session recorded or
	// verified via CheckSnapshot: a completed resume that leaves loaded
	// snapshots unchecked took a different path than the original run.
	checked map[int]bool
	path    string
	err     error
}

// CreateJournal creates (truncating) a fresh journal at path for the run
// identified by fingerprint.
func CreateJournal(path, fingerprint string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: create journal: %w", err)
	}
	j := &Journal{
		f: f, w: bufio.NewWriter(f), path: path,
		docs:    make(map[corpus.DocID]JournalEntry),
		snaps:   make(map[int]snapshotRecord),
		checked: make(map[int]bool),
	}
	if err := j.append(journalRecord{Kind: "header", V: journalVersion, FP: fingerprint}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournal opens the journal at path for resuming: existing records
// are loaded leniently (a truncated final line — the signature of a
// killed writer — is dropped and the file is repaired by truncating to
// the last complete record), the header fingerprint is validated against
// the resuming run's, and the file is positioned for appending. A
// missing file starts a fresh journal, so -resume also works on the
// first run.
func OpenJournal(path, fingerprint string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return CreateJournal(path, fingerprint)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: open journal: %w", err)
	}
	j := &Journal{
		f: f, path: path,
		docs:    make(map[corpus.DocID]JournalEntry),
		snaps:   make(map[int]snapshotRecord),
		checked: make(map[int]bool),
	}
	goodEnd, err := j.load(fingerprint)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Repair a torn tail before appending: anything past the last
	// complete record is the debris of the killed write.
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("pipeline: repair journal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("pipeline: seek journal: %w", err)
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load parses the journal leniently and returns the byte offset just
// past the last complete record. A malformed or kind-less final line is
// truncation and is dropped; a malformed record with complete records
// after it is corruption and is an error.
func (j *Journal) load(fingerprint string) (int64, error) {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return 0, fmt.Errorf("pipeline: read journal: %w", err)
	}
	var (
		offset     int64
		goodEnd    int64
		pendingErr error
		line       int
		sawHeader  bool
	)
	for len(data) > 0 {
		line++
		raw := data
		consumed := len(data)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw = data[:i]
			consumed = i + 1
		}
		data = data[consumed:]
		offset += int64(consumed)
		if len(raw) > 0 && raw[len(raw)-1] == '\r' {
			raw = raw[:len(raw)-1]
		}
		if len(raw) == 0 {
			goodEnd = offset
			continue
		}
		if pendingErr != nil {
			return 0, pendingErr // complete records follow a bad one
		}
		var r journalRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			pendingErr = fmt.Errorf("pipeline: journal record %d: %w", line, err)
			continue
		}
		if r.Kind == "" {
			pendingErr = fmt.Errorf("pipeline: journal record %d: missing kind", line)
			continue
		}
		if !sawHeader {
			if r.Kind != "header" {
				return 0, fmt.Errorf("pipeline: journal record %d: want header, got %q", line, r.Kind)
			}
			if r.V != journalVersion {
				return 0, fmt.Errorf("pipeline: journal version %d, want %d", r.V, journalVersion)
			}
			if r.FP != fingerprint {
				return 0, fmt.Errorf("pipeline: journal fingerprint mismatch: journal is for %q, run is %q", r.FP, fingerprint)
			}
			sawHeader = true
			goodEnd = offset
			continue
		}
		switch r.Kind {
		case "doc":
			ts, err := fromJournalTuples(r.Tuples)
			if err != nil {
				pendingErr = fmt.Errorf("pipeline: journal record %d: %w", line, err)
				continue
			}
			j.docs[corpus.DocID(r.Doc)] = JournalEntry{Useful: r.Useful, Tuples: ts}
		case "skip":
			j.docs[corpus.DocID(r.Doc)] = JournalEntry{Skipped: true, Reason: r.Reason}
		case "snap":
			j.snaps[r.Pos] = snapshotRecord{NNZ: r.NNZ, Sum: r.Sum}
		default:
			// Unknown record kinds from a newer writer are skipped, not
			// fatal: the journal only ever gains record kinds.
		}
		goodEnd = offset
	}
	if !sawHeader {
		if pendingErr != nil || line > 0 {
			// Only a torn header line (or nothing valid at all): the
			// journal recorded no work; restart it from scratch.
			return 0, fmt.Errorf("pipeline: journal has no complete header (torn first write?): delete %s to start over", j.path)
		}
		// Empty file: write a fresh header.
		if _, err := j.f.Seek(0, io.SeekStart); err != nil {
			return 0, fmt.Errorf("pipeline: seek journal: %w", err)
		}
		j.w = bufio.NewWriter(j.f)
		if err := j.append(journalRecord{Kind: "header", V: journalVersion, FP: fingerprint}); err != nil {
			return 0, err
		}
		end, err := j.f.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, fmt.Errorf("pipeline: seek journal: %w", err)
		}
		return end, nil
	}
	// pendingErr on the final line is truncation: drop the partial record.
	return goodEnd, nil
}

// append encodes one record and flushes it through to the kernel.
func (j *Journal) append(r journalRecord) error {
	if j.err != nil {
		return j.err
	}
	b, err := json.Marshal(r)
	if err == nil {
		b = append(b, '\n')
		_, err = j.w.Write(b)
	}
	if err == nil {
		err = j.w.Flush()
	}
	if err != nil {
		j.err = fmt.Errorf("pipeline: write journal: %w", err)
	}
	return j.err
}

// Lookup returns the recorded outcome for id, if any.
func (j *Journal) Lookup(id corpus.DocID) (JournalEntry, bool) {
	if j == nil {
		return JournalEntry{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.docs[id]
	return e, ok
}

// RecordDoc journals one extraction outcome. Re-recording a document
// (the replay path of a resumed run) is a no-op.
func (j *Journal) RecordDoc(id corpus.DocID, useful bool, tuples []relation.Tuple) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.docs[id]; ok {
		return
	}
	j.docs[id] = JournalEntry{Useful: useful, Tuples: tuples}
	j.append(journalRecord{Kind: "doc", Doc: int64(id), Useful: useful, Tuples: toJournalTuples(tuples)})
}

// RecordSkip journals one permanently dropped document.
func (j *Journal) RecordSkip(id corpus.DocID, reason string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.docs[id]; ok {
		return
	}
	j.docs[id] = JournalEntry{Skipped: true, Reason: reason}
	j.append(journalRecord{Kind: "skip", Doc: int64(id), Reason: reason})
}

// CheckSnapshot journals a model snapshot at a ranked-document position,
// or — when the position was already journaled by the interrupted run —
// verifies the replayed model against it. A mismatch means the resumed
// run diverged from the original (different code, corpus, or fault
// outcomes) and the result would silently differ; the pipeline aborts
// instead.
func (j *Journal) CheckSnapshot(pos, nnz int, sum uint64) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, ok := j.snaps[pos]; ok {
		if prev.NNZ != nnz || prev.Sum != sum {
			return fmt.Errorf("%w at position %d: journal snapshot nnz=%d csum=%x, replay nnz=%d csum=%x",
				ErrResumeDiverged, pos, prev.NNZ, prev.Sum, nnz, sum)
		}
		j.checked[pos] = true
		return nil
	}
	j.snaps[pos] = snapshotRecord{NNZ: nnz, Sum: sum}
	j.checked[pos] = true
	return j.append(journalRecord{Kind: "snap", Pos: pos, NNZ: nnz, Sum: sum})
}

// UncheckedSnapshots returns journaled snapshot positions at or below
// maxPos that this session neither verified nor recorded: a completed
// resume that skipped past one updated its model at different positions
// than the interrupted run, which is divergence even if no colliding
// snapshot caught it.
func (j *Journal) UncheckedSnapshots(maxPos int) []int {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []int
	//lint:allow detrand collection order is erased by the sort below
	for pos := range j.snaps {
		if pos <= maxPos && !j.checked[pos] {
			out = append(out, pos)
		}
	}
	sort.Ints(out)
	return out
}

// Entries reports how many documents the journal has outcomes for.
func (j *Journal) Entries() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.docs)
}

// Path returns the journal's file path ("" on a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close syncs the journal to stable storage and closes the file.
// Repeated calls are no-ops.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	err := j.err
	if ferr := j.w.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("pipeline: flush journal: %w", ferr)
	}
	if serr := j.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("pipeline: sync journal: %w", serr)
	}
	if cerr := j.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("pipeline: close journal: %w", cerr)
	}
	j.f = nil
	return err
}

// SaveLabels persists precomputed oracle labels as a journal file (the
// same header + doc-record format the run journal uses), so expensive
// whole-collection label computations survive process restarts — the
// experiments suite's checkpoint.
func SaveLabels(path, fingerprint string, l *Labels) error {
	j, err := CreateJournal(path, fingerprint)
	if err != nil {
		return err
	}
	for id := 0; id < l.Len(); id++ {
		did := corpus.DocID(id)
		if l.Useful(did) {
			j.RecordDoc(did, true, l.Tuples(did))
		}
	}
	return j.Close()
}

// LoadLabels restores labels saved by SaveLabels, validating the
// fingerprint. Documents without a journal record are useless (only
// useful documents are persisted); collLen sizes the label table. A
// missing file is an error — unlike a -resume journal, a label cache
// must never silently start empty, or every document would read as
// useless.
func LoadLabels(path, fingerprint string, rel relation.Relation, collLen int) (*Labels, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("pipeline: load labels: %w", err)
	}
	j, err := OpenJournal(path, fingerprint)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	l := &Labels{
		rel:    rel,
		useful: make([]bool, collLen),
		tuples: make(map[corpus.DocID][]relation.Tuple),
	}
	for id, e := range j.docs {
		if e.Skipped || !e.Useful {
			continue
		}
		if int(id) < 0 || int(id) >= collLen {
			return nil, fmt.Errorf("pipeline: label journal doc %d out of range [0,%d)", id, collLen)
		}
		l.useful[id] = true
		l.tuples[id] = e.Tuples
		l.numUseful++
	}
	return l, nil
}
