package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/durable"
	"adaptiverank/internal/relation"
)

// journalVersion is bumped when the record format changes incompatibly.
const journalVersion = 1

// journalLabel names the journal artifact in durable kill points and
// error messages ("journal:append-torn" is the chaos harness's favourite
// place to die).
const journalLabel = "journal"

// ErrResumeDiverged marks a resumed run whose replayed model state does
// not match the journal's snapshot: the result would silently differ
// from the interrupted run, so the pipeline aborts instead.
var ErrResumeDiverged = errors.New("pipeline: resume diverged")

// journalRecord is the JSONL wire format of one run-journal line. The
// journal is an append-only account of everything a run learned the hard
// way — per-document extraction outcomes, permanent skips, and model
// snapshots at updates — written record-at-a-time through durable.JSONL
// so a SIGKILL at any instant loses at most the final, partially written
// line (which the lenient loader drops, per durable.ScanTornTail).
type journalRecord struct {
	// Kind is "header", "doc", "skip", or "snap".
	Kind string `json:"kind"`
	// V and FP are carried by the header: format version and the run
	// fingerprint the journal belongs to.
	V  int    `json:"v,omitempty"`
	FP string `json:"fp,omitempty"`
	// Doc, Useful, and Tuples describe one extraction outcome ("doc"),
	// or the skipped document and reason ("skip").
	Doc    int64          `json:"doc,omitempty"`
	Useful bool           `json:"useful,omitempty"`
	Tuples []journalTuple `json:"tuples,omitempty"`
	Reason string         `json:"reason,omitempty"`
	// Pos, NNZ, and Sum describe one model snapshot ("snap"): the
	// ranked-document position of the update, the model support size,
	// and an order-independent hash of the weight vector.
	Pos int    `json:"pos,omitempty"`
	NNZ int    `json:"nnz,omitempty"`
	Sum uint64 `json:"csum,omitempty"`
}

type journalTuple struct {
	Rel  string `json:"rel"`
	Arg1 string `json:"a1"`
	Arg2 string `json:"a2"`
}

func toJournalTuples(ts []relation.Tuple) []journalTuple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]journalTuple, len(ts))
	for i, t := range ts {
		out[i] = journalTuple{Rel: t.Rel.Code(), Arg1: t.Arg1, Arg2: t.Arg2}
	}
	return out
}

func fromJournalTuples(ts []journalTuple) ([]relation.Tuple, error) {
	if len(ts) == 0 {
		return nil, nil
	}
	out := make([]relation.Tuple, len(ts))
	for i, t := range ts {
		rel, err := relation.Parse(t.Rel)
		if err != nil {
			return nil, err
		}
		out[i] = relation.Tuple{Rel: rel, Arg1: t.Arg1, Arg2: t.Arg2}
	}
	return out, nil
}

// JournalEntry is the recorded final outcome for one document.
type JournalEntry struct {
	// Useful and Tuples are the extraction outcome (Skipped == false).
	Useful bool
	Tuples []relation.Tuple
	// Skipped marks a document the run permanently dropped, with the
	// reason ("poisoned", "requeue-limit", ...).
	Skipped bool
	Reason  string
}

type snapshotRecord struct {
	NNZ int
	Sum uint64
}

// Journal is the crash-safe run journal backing -checkpoint/-resume,
// built on durable.JSONL: every Record* call appends one JSON line and
// flushes it to the kernel before returning, so a killed process loses
// at most the line being written. Records are deduplicated per document:
// replaying a resumed run over already-journaled documents appends
// nothing.
//
// All methods are safe on a nil *Journal (they no-op), so the pipeline
// can thread an optional journal without nil checks, in the style of
// obs.Registry.
type Journal struct {
	mu    sync.Mutex
	jl    *durable.JSONL
	docs  map[corpus.DocID]JournalEntry
	snaps map[int]snapshotRecord
	// checked marks snapshot positions that this session recorded or
	// verified via CheckSnapshot: a completed resume that leaves loaded
	// snapshots unchecked took a different path than the original run.
	checked map[int]bool
	path    string
}

func newJournal(path string) *Journal {
	return &Journal{
		path:    path,
		docs:    make(map[corpus.DocID]JournalEntry),
		snaps:   make(map[int]snapshotRecord),
		checked: make(map[int]bool),
	}
}

// CreateJournal creates (truncating) a fresh journal at path for the run
// identified by fingerprint.
func CreateJournal(path, fingerprint string) (*Journal, error) {
	jl, err := durable.CreateJSONL(nil, path, journalLabel)
	if err != nil {
		return nil, fmt.Errorf("pipeline: create journal: %w", err)
	}
	j := newJournal(path)
	j.jl = jl
	if err := j.append(journalRecord{Kind: "header", V: journalVersion, FP: fingerprint}); err != nil {
		jl.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournal opens the journal at path for resuming: existing records
// are loaded leniently (a truncated final line — the signature of a
// killed writer — is dropped and the file is repaired by truncating to
// the last complete record), the header fingerprint is validated against
// the resuming run's, and the file is positioned for appending. A
// missing file starts a fresh journal, so -resume also works on the
// first run.
func OpenJournal(path, fingerprint string) (*Journal, error) {
	f, err := durable.OS.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return CreateJournal(path, fingerprint)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: open journal: %w", err)
	}
	j := newJournal(path)
	goodEnd, empty, err := j.load(f, fingerprint)
	if err != nil {
		f.Close()
		return nil, err
	}
	if empty {
		// An existing zero-byte file: the truncating create path writes
		// the fresh header for us.
		f.Close()
		return CreateJournal(path, fingerprint)
	}
	// Repair a torn tail before appending: anything past the last
	// complete record is the debris of the killed write.
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("pipeline: repair journal tail: %w", err)
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("pipeline: seek journal: %w", err)
	}
	j.jl = durable.Adopt(f, journalLabel)
	return j, nil
}

// load parses the journal under the durable.ScanTornTail contract and
// returns the byte offset just past the last complete record. A
// malformed final line is truncation and is dropped; a malformed record
// with complete records after it is corruption and is an error; a wrong
// header (version or fingerprint) is fatal wherever it sits.
func (j *Journal) load(f durable.File, fingerprint string) (goodEnd int64, empty bool, err error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, false, fmt.Errorf("pipeline: read journal: %w", err)
	}
	if len(data) == 0 {
		return 0, true, nil
	}
	sawHeader := false
	goodEnd, err = durable.ScanTornTail(data, func(line int, raw []byte) error {
		var r journalRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("pipeline: journal record %d: %w", line, err)
		}
		if r.Kind == "" {
			return fmt.Errorf("pipeline: journal record %d: missing kind", line)
		}
		if !sawHeader {
			if r.Kind != "header" {
				return durable.Fatal(fmt.Errorf("pipeline: journal record %d: want header, got %q", line, r.Kind))
			}
			if r.V != journalVersion {
				return durable.Fatal(fmt.Errorf("pipeline: journal version %d, want %d", r.V, journalVersion))
			}
			if r.FP != fingerprint {
				return durable.Fatal(fmt.Errorf("pipeline: journal fingerprint mismatch: journal is for %q, run is %q", r.FP, fingerprint))
			}
			sawHeader = true
			return nil
		}
		switch r.Kind {
		case "doc":
			ts, terr := fromJournalTuples(r.Tuples)
			if terr != nil {
				return fmt.Errorf("pipeline: journal record %d: %w", line, terr)
			}
			j.docs[corpus.DocID(r.Doc)] = JournalEntry{Useful: r.Useful, Tuples: ts}
		case "skip":
			j.docs[corpus.DocID(r.Doc)] = JournalEntry{Skipped: true, Reason: r.Reason}
		case "snap":
			j.snaps[r.Pos] = snapshotRecord{NNZ: r.NNZ, Sum: r.Sum}
		default:
			// Unknown record kinds from a newer writer are skipped, not
			// fatal: the journal only ever gains record kinds.
		}
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	if !sawHeader {
		// Only a torn header line, blank lines, or dropped debris: the
		// journal recorded no work and cannot be trusted to resume.
		return 0, false, fmt.Errorf("pipeline: journal has no complete header (torn first write?): delete %s to start over", j.path)
	}
	return goodEnd, false, nil
}

// append journals one record, flushed through to the kernel.
func (j *Journal) append(r journalRecord) error {
	return j.jl.Append(r)
}

// Lookup returns the recorded outcome for id, if any.
func (j *Journal) Lookup(id corpus.DocID) (JournalEntry, bool) {
	if j == nil {
		return JournalEntry{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.docs[id]
	return e, ok
}

// RecordDoc journals one extraction outcome. Re-recording a document
// (the replay path of a resumed run) is a no-op.
func (j *Journal) RecordDoc(id corpus.DocID, useful bool, tuples []relation.Tuple) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.docs[id]; ok {
		return
	}
	j.docs[id] = JournalEntry{Useful: useful, Tuples: tuples}
	j.append(journalRecord{Kind: "doc", Doc: int64(id), Useful: useful, Tuples: toJournalTuples(tuples)})
}

// RecordSkip journals one permanently dropped document.
func (j *Journal) RecordSkip(id corpus.DocID, reason string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.docs[id]; ok {
		return
	}
	j.docs[id] = JournalEntry{Skipped: true, Reason: reason}
	j.append(journalRecord{Kind: "skip", Doc: int64(id), Reason: reason})
}

// CheckSnapshot journals a model snapshot at a ranked-document position,
// or — when the position was already journaled by the interrupted run —
// verifies the replayed model against it. A mismatch means the resumed
// run diverged from the original (different code, corpus, or fault
// outcomes) and the result would silently differ; the pipeline aborts
// instead.
func (j *Journal) CheckSnapshot(pos, nnz int, sum uint64) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, ok := j.snaps[pos]; ok {
		if prev.NNZ != nnz || prev.Sum != sum {
			return fmt.Errorf("%w at position %d: journal snapshot nnz=%d csum=%x, replay nnz=%d csum=%x",
				ErrResumeDiverged, pos, prev.NNZ, prev.Sum, nnz, sum)
		}
		j.checked[pos] = true
		return nil
	}
	j.snaps[pos] = snapshotRecord{NNZ: nnz, Sum: sum}
	j.checked[pos] = true
	return j.append(journalRecord{Kind: "snap", Pos: pos, NNZ: nnz, Sum: sum})
}

// UncheckedSnapshots returns journaled snapshot positions at or below
// maxPos that this session neither verified nor recorded: a completed
// resume that skipped past one updated its model at different positions
// than the interrupted run, which is divergence even if no colliding
// snapshot caught it.
func (j *Journal) UncheckedSnapshots(maxPos int) []int {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []int
	//lint:allow detrand collection order is erased by the sort below
	for pos := range j.snaps {
		if pos <= maxPos && !j.checked[pos] {
			out = append(out, pos)
		}
	}
	sort.Ints(out)
	return out
}

// Entries reports how many documents the journal has outcomes for.
func (j *Journal) Entries() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.docs)
}

// Path returns the journal's file path ("" on a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	return j.jl.Err()
}

// Close syncs the journal to stable storage and closes the file,
// returning the first error seen over the journal's lifetime. Repeated
// calls are no-ops.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.jl.Close()
}

// SaveLabels persists precomputed oracle labels as a journal file (the
// same header + doc-record format the run journal uses), so expensive
// whole-collection label computations survive process restarts — the
// experiments suite's checkpoint.
func SaveLabels(path, fingerprint string, l *Labels) error {
	j, err := CreateJournal(path, fingerprint)
	if err != nil {
		return err
	}
	for id := 0; id < l.Len(); id++ {
		did := corpus.DocID(id)
		if l.Useful(did) {
			j.RecordDoc(did, true, l.Tuples(did))
		}
	}
	return j.Close()
}

// LoadLabels restores labels saved by SaveLabels, validating the
// fingerprint. Documents without a journal record are useless (only
// useful documents are persisted); collLen sizes the label table. A
// missing file is an error — unlike a -resume journal, a label cache
// must never silently start empty, or every document would read as
// useless.
func LoadLabels(path, fingerprint string, rel relation.Relation, collLen int) (*Labels, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("pipeline: load labels: %w", err)
	}
	j, err := OpenJournal(path, fingerprint)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	l := &Labels{
		rel:    rel,
		useful: make([]bool, collLen),
		tuples: make(map[corpus.DocID][]relation.Tuple),
	}
	for id, e := range j.docs {
		if e.Skipped || !e.Useful {
			continue
		}
		if int(id) < 0 || int(id) >= collLen {
			return nil, fmt.Errorf("pipeline: label journal doc %d out of range [0,%d)", id, collLen)
		}
		l.useful[id] = true
		l.tuples[id] = e.Tuples
		l.numUseful++
	}
	return l, nil
}
