package pipeline

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenJournal asserts the lenient journal loader never panics on
// arbitrary file contents — torn tails, binary garbage, corrupted JSON —
// and that its truncation repair is idempotent: whatever OpenJournal
// accepts once (and repairs), it must accept again with the same
// records. Seed inputs live in testdata/fuzz/FuzzOpenJournal.
func FuzzOpenJournal(f *testing.F) {
	header := `{"kind":"header","v":1,"fp":"fuzz"}` + "\n"
	f.Add([]byte(header))
	f.Add([]byte(header + `{"kind":"doc","doc":1,"useful":true,"tuples":[{"rel":"PO","a1":"a","a2":"b"}]}` + "\n"))
	f.Add([]byte(header + `{"kind":"skip","doc":2,"reason":"poisoned"}` + "\n" +
		`{"kind":"snap","pos":10,"nnz":3,"csum":123}` + "\n"))
	f.Add([]byte(header + `{"kind":"doc","doc":3,"use`)) // torn tail
	f.Add([]byte(header + `{"kind":"doc","doc":4}` + "\r\n"))
	f.Add([]byte(header + `{"kind":"future-kind","x":1}` + "\n"))
	f.Add([]byte(header + `{"kind":"doc","doc":5,"tuples":[{"rel":"XX","a1":"","a2":""}]}` + "\n"))
	f.Add([]byte(`{"kind":"header","v":9,"fp":"fuzz"}` + "\n")) // wrong version
	f.Add([]byte(`{"kind":"doc","doc":1}` + "\n"))              // no header
	f.Add([]byte("not json"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path, "fuzz")
		if err != nil {
			return
		}
		entries := j.Entries()
		if err := j.Close(); err != nil {
			t.Fatalf("close after accepting input: %v", err)
		}
		// Idempotence: the repaired file must load again, unchanged.
		j2, err := OpenJournal(path, "fuzz")
		if err != nil {
			t.Fatalf("repaired journal rejected on reopen: %v", err)
		}
		if j2.Entries() != entries {
			t.Fatalf("reopen changed entries: %d -> %d", entries, j2.Entries())
		}
		j2.Close()
	})
}
