package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/index"
	"adaptiverank/internal/metrics"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/explain"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/update"
	"adaptiverank/internal/vector"
)

// SearchIfaceOptions configures the search-interface access scenario: the
// pending pool starts from keyword-query retrieval instead of the full
// collection, and each model update issues the top model features as new
// queries to grow the pool (Section 4, Document Access).
type SearchIfaceOptions struct {
	// Index is the search interface over the full collection.
	Index *index.Index
	// InitialQueries seed the document pool.
	InitialQueries []string
	// RetrieveK is the per-query result depth (default 300).
	RetrieveK int
	// TopFeatures is how many top model features become queries after
	// each update (default 100 per the paper).
	TopFeatures int
	// PerFeatureK is the result depth per feature query (default 50).
	PerFeatureK int
}

func (o *SearchIfaceOptions) defaults() {
	if o.RetrieveK == 0 {
		o.RetrieveK = 300
	}
	if o.TopFeatures == 0 {
		o.TopFeatures = 100
	}
	if o.PerFeatureK == 0 {
		o.PerFeatureK = 50
	}
}

// Options configures one pipeline execution.
type Options struct {
	// Rel is the extraction task.
	Rel relation.Relation
	// ExtractionCost overrides the simulated per-document extraction
	// cost (default: Rel.ExtractionCost()).
	ExtractionCost time.Duration
	// Coll is the document collection (the ranking pool in the
	// full-access scenario).
	Coll *corpus.Collection
	// Labels is the labelling oracle for Coll: precomputed Labels for
	// experiments (see LabelsFor), or a live extractor-backed oracle.
	Labels Oracle
	// Sample is the initial document sample (SRS or CQS); it is labelled
	// and used to train the initial model, and counts as processed.
	Sample []*corpus.Document
	// Strategy is the prioritization approach.
	Strategy Strategy
	// Detector, when non-nil, makes the run adaptive: buffered documents
	// are folded into the model whenever the detector fires.
	Detector update.Detector
	// Featurizer is the shared document featurizer (required when
	// Detector needs document features or Strategy is Learned).
	Featurizer *ranking.Featurizer
	// SearchIface switches to the search-interface access scenario.
	SearchIface *SearchIfaceOptions
	// MaxDocs stops the run after this many processed documents
	// (0 = process everything).
	MaxDocs int
	// Workers sets the number of goroutines used to score pending
	// documents during (re-)ranking (0 or 1 = sequential). Scores do not
	// depend on evaluation order, so the resulting ranking is identical
	// to the sequential one; each pending document is scored by exactly
	// one worker, which keeps the per-document caches race-free.
	Workers int
	// Metrics, when non-nil, receives the run's counters, gauges, and
	// latency histograms (see internal/obs). A nil registry costs the hot
	// path nothing beyond writes to shared no-op instruments.
	Metrics *obs.Registry
	// Recorder, when non-nil and enabled, receives the run's structured
	// event trace. The default is the no-op recorder, which keeps the
	// per-document path allocation-free.
	Recorder obs.Recorder
	// Explain, when non-nil, arms the model-introspection substrate: the
	// pipeline snapshots the model weight vector at train-init and every
	// train-update (weight-drift timeline) and attributes the scores of
	// the top-ranked documents after each (re-)ranking. Tee
	// Explain.Recorder() into Recorder to also persist detector decision
	// evidence. A nil Explain takes none of these paths, so a disabled
	// run is byte-identical to an uninstrumented one.
	Explain *explain.Explainer
	// Journal, when non-nil, makes the run crash-safe: every labelling
	// outcome is appended (and flushed) before the document affects the
	// model, and on resume journaled outcomes short-circuit extraction.
	// Because the rest of the pipeline is deterministic given the same
	// oracle answers, a resumed run reproduces the interrupted one
	// exactly; model snapshots recorded at each update verify that.
	Journal *Journal
	// RequeueLimit caps how many times one document is requeued after a
	// breaker-open fast-fail before it is skipped instead (default 3).
	RequeueLimit int
}

// ChurnRecord reports the feature turnover of one model update.
type ChurnRecord struct {
	// Position is the number of processed documents at the update.
	Position int
	// Added and Removed count features entering/leaving the model's
	// non-zero support.
	Added, Removed int
	// Size is the model support size after the update.
	Size int
}

// Result is the outcome of one pipeline execution.
type Result struct {
	// Strategy names the approach.
	Strategy string
	// Order is the ranked-phase processing order. The initial sample is
	// processed (and costed) before the ranked phase but excluded from
	// Order and the quality metrics: at laptop scale the sample is a
	// much larger *fraction* of the collection than in the paper, and
	// including it would let the (strategy-independent) sample prefix
	// dominate AP/AUC. Metrics therefore measure how well each strategy
	// ranks the documents it actually gets to choose among.
	Order []corpus.DocID
	// OrderLabels are the usefulness labels along Order.
	OrderLabels []bool
	// SampleSize and SampleUseful describe the processed initial sample.
	SampleSize, SampleUseful int
	// Curve is the recall-vs-%processed curve (101 points).
	Curve []float64
	// AP and AUC are the ranking-quality metrics of Section 4.
	AP, AUC float64
	// Time is the CPU-time account (simulated extraction + measured
	// overheads).
	Time metrics.TimeAccount
	// UpdatePositions lists the processed-document counts at which model
	// updates happened.
	UpdatePositions []int
	// Churn records per-update feature turnover (learned strategies).
	Churn []ChurnRecord
	// PoolSize is the final pending-pool size (differs from len(Order)
	// in the search-interface scenario or with MaxDocs).
	PoolSize int
	// ScoredDocs counts individual document-scoring operations across all
	// (re-)rankings of the run: each rank pass scores the whole pending
	// pool once. It is deterministic for a given configuration and is the
	// denominator of the benchmark suite's ns/score metric.
	ScoredDocs int
	// Tuples are the distinct tuples discovered, in discovery order
	// (sample first, then the ranked phase).
	Tuples []relation.Tuple
	// Skipped lists documents abandoned by the resilience policy:
	// poisoned (every attempt failed) or over the requeue limit. They are
	// excluded from Order and the quality metrics.
	Skipped []corpus.DocID
	// Requeued counts breaker-open fast-fails that sent a document back
	// to the end of the pending pool.
	Requeued int
	// Interrupted reports that the run stopped early because its context
	// was cancelled (signal or timeout). The partial result — including
	// any journal written so far — is valid and resumable.
	Interrupted bool
	// DetectorObservations counts detector invocations, and
	// DetectorTime their total measured cost (Table 3).
	DetectorObservations int
	DetectorTime         time.Duration
}

// RecallAt evaluates the run's recall after processing pct% of the pool.
func (r *Result) RecallAt(pct float64) float64 { return metrics.RecallAt(r.Curve, pct) }

// primer interfaces let detectors consume the initial sample.
type labeledPrimer interface {
	Prime(xs []vector.Sparse, useful []bool)
}

type unlabeledPrimer interface {
	Prime(xs []vector.Sparse)
}

// Run executes the Figure 2 loop and returns the instrumented result.
func Run(opts Options) (*Result, error) {
	//lint:allow ctxflow compat shim: Run is the documented non-cancellable entry point
	return RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: when ctx is cancelled the loop
// drains gracefully — the in-flight document finishes (or aborts), the
// journal and trace stay flushed, and the partial result is returned
// with Interrupted set rather than an error, so callers can checkpoint
// what was done.
func RunContext(ctx context.Context, opts Options) (*Result, error) {
	if opts.Coll == nil || opts.Labels == nil || opts.Strategy == nil {
		return nil, fmt.Errorf("pipeline: Coll, Labels, and Strategy are required")
	}
	if ctx == nil {
		//lint:allow ctxflow nil-ctx guard: callers passing nil get the non-cancellable default
		ctx = context.Background()
	}
	if opts.SearchIface != nil {
		opts.SearchIface.defaults()
	}
	if opts.RequeueLimit <= 0 {
		opts.RequeueLimit = 3
	}
	res := &Result{Strategy: opts.Strategy.Name()}
	if opts.ExtractionCost == 0 {
		opts.ExtractionCost = opts.Rel.ExtractionCost()
	}

	// --- Observability setup -----------------------------------------
	// A nil registry hands out shared no-op instruments and the no-op
	// recorder reports Enabled() == false, so the un-instrumented path
	// stays allocation-free.
	reg := opts.Metrics
	rec := opts.Recorder
	if rec == nil {
		rec = obs.Nop()
	}
	if reg != nil || rec.Enabled() {
		if in, ok := opts.Strategy.(obs.Instrumentable); ok {
			in.Instrument(reg, rec)
		}
		if in, ok := opts.Detector.(obs.Instrumentable); ok {
			in.Instrument(reg, rec)
		}
		if in, ok := opts.Labels.(obs.Instrumentable); ok {
			in.Instrument(reg, rec) // e.g. a Resilient live-extraction oracle
		}
	}
	// Span tracing: tr is nil when the recorder is disabled, and every
	// tracer/span method no-ops (and allocates nothing) on nil, so the
	// span plumbing below costs the untraced hot path nothing. The same
	// tracer is handed to the strategy and detector so their spans and
	// span-linked events nest under the pipeline's current scope.
	tr := obs.NewTracer(rec)
	if tr.Enabled() {
		if in, ok := opts.Strategy.(obs.TraceInstrumentable); ok {
			in.InstrumentTracer(tr)
		}
		if in, ok := opts.Detector.(obs.TraceInstrumentable); ok {
			in.InstrumentTracer(tr)
		}
	}
	// Model introspection (internal/obs/explain): ex is nil on
	// un-explained runs, and every capture path below is gated on it, so
	// a disabled run takes exactly the uninstrumented code path (the
	// byte-identity tests at the root pin this down).
	ex := opts.Explain
	var featName func(int32) string
	if ex != nil && opts.Featurizer != nil {
		featName = opts.Featurizer.FeatureName
	}
	explainSnapshot := func(stage string, span int64, added, removed int) {
		if ex == nil {
			return
		}
		m, ok := opts.Strategy.(Modeler)
		if !ok {
			return
		}
		ex.RecordSnapshot(stage, span, len(res.Order), m.Model(), featName, added, removed)
	}
	var (
		cSample     = reg.Counter(obs.MetricPipelineSampleDocs)
		cDocs       = reg.Counter(obs.MetricPipelineDocsProcessed)
		cUseful     = reg.Counter(obs.MetricPipelineDocsUseful)
		cReranks    = reg.Counter(obs.MetricPipelineReranks)
		cUpdates    = reg.Counter(obs.MetricPipelineUpdates)
		cFired      = reg.Counter(obs.MetricPipelineDetectorFired)
		cSuppressed = reg.Counter(obs.MetricPipelineDetectorSuppressed)
		hRank       = reg.Histogram(obs.MetricPipelineRankSeconds, nil)
		hUpdate     = reg.Histogram(obs.MetricPipelineUpdateSeconds, nil)
		hDetect     = reg.Histogram(obs.MetricPipelineDetectSeconds, nil)
	)
	// Per-document strategy-observation and detection times are flushed
	// as aggregate phase events at the end of the run, keeping the trace
	// compact while preserving the phase-sum identity with Result.Time.
	var accObserve, accDetect time.Duration
	// The run-started event carries the collection size and — when the
	// oracle knows it — the total useful count (Val), so post-hoc trace
	// analysis can reconstruct recall without the collection.
	startEv := obs.Event{Kind: obs.KindRunStarted, Name: opts.Strategy.Name(), N: opts.Coll.Len()}
	if total, known := opts.Labels.TotalUseful(); known {
		startEv.Val = float64(total)
	}
	rec.Record(startEv)
	spRun := tr.Start(obs.SpanRun).SetAttr("strategy", opts.Strategy.Name()).
		SetNum("collection", float64(opts.Coll.Len()))

	// pending/cursor are declared ahead of the epilogue closure so an
	// interrupted run can share the same exit path as a completed one.
	var pending []*corpus.Document
	cursor := 0

	// epilogue computes the quality metrics, flushes the aggregate phase
	// events, and closes the trace. Every exit path — completion,
	// MaxDocs, cancellation — funnels through it so partial results are
	// always fully accounted.
	epilogue := func() (*Result, error) {
		res.PoolSize = len(res.Order) + (len(pending) - cursor)
		if total, known := opts.Labels.TotalUseful(); known && !res.Interrupted {
			if denom := total - res.SampleUseful; denom <= 0 {
				// Degenerate corner: the sample already covered every useful
				// document; any order of the (useless) rest is perfect.
				res.Curve = make([]float64, 101)
				for i := range res.Curve {
					res.Curve[i] = 1
				}
				res.AP, res.AUC = 1, 0.5
			} else {
				res.Curve = metrics.RecallCurve(res.OrderLabels, denom)
				res.AP = metrics.AveragePrecision(res.OrderLabels)
				res.AUC = metrics.AUC(res.OrderLabels)
			}
		}
		reg.Gauge(obs.MetricPipelinePoolSize).Set(float64(res.PoolSize))
		res.Time.Record(reg)
		if rec.Enabled() {
			if accObserve > 0 {
				rec.Record(obs.Event{Kind: obs.KindPhase, Name: obs.PhaseStrategyObserve, Dur: accObserve})
			}
			if accDetect > 0 {
				rec.Record(obs.Event{Kind: obs.KindPhase, Name: obs.PhaseDetection, Dur: accDetect})
			}
			if opts.Journal != nil {
				rec.Record(obs.Event{Kind: obs.KindCheckpoint,
					Name: opts.Journal.Path(), N: opts.Journal.Entries()})
			}
			nUseful := 0
			for _, u := range res.OrderLabels {
				if u {
					nUseful++
				}
			}
			sp := spRun.SetNum("docs", float64(len(res.Order))).
				SetNum("useful", float64(nUseful))
			if res.Interrupted {
				sp.SetAttr("interrupted", "true")
			}
			sp.End()
			rec.Record(obs.Event{Kind: obs.KindRunFinished, N: len(res.Order), Dur: res.Time.Total()})
		}
		if err := opts.Journal.Err(); err != nil {
			return res, fmt.Errorf("pipeline: journal write failed: %w", err)
		}
		// A completed resume must have reproduced every journaled model
		// snapshot it passed; skipping one means the replay updated its
		// model at different positions than the interrupted run.
		if !res.Interrupted {
			if ps := opts.Journal.UncheckedSnapshots(len(res.Order)); len(ps) > 0 {
				return res, fmt.Errorf("%w: journal snapshots at positions %v never reproduced",
					ErrResumeDiverged, ps)
			}
		}
		return res, nil
	}

	// --- Fault-tolerant labelling -------------------------------------
	// labelDoc is the single path every extraction outcome flows through:
	// journal replay first, then the (possibly resilient) live oracle.
	// Successful outcomes are journaled — and flushed — before they can
	// affect the model, so a crash never loses acknowledged work.
	const (
		outcomeOK = iota
		outcomeSkip
		outcomeRequeue
		outcomeCancelled
	)
	cSkipped := reg.Counter(obs.MetricPipelineDocsSkipped)
	cRequeued := reg.Counter(obs.MetricPipelineDocsRequeued)
	seenTuples := make(map[relation.Tuple]bool)
	collect := func(tuples []relation.Tuple) {
		for _, t := range tuples {
			if !seenTuples[t] {
				seenTuples[t] = true
				res.Tuples = append(res.Tuples, t)
			}
		}
	}
	markSkipped := func(id corpus.DocID, reason string) {
		// RecordSkip dedupes, so re-marking a journal-replayed skip is a
		// no-op on disk.
		opts.Journal.RecordSkip(id, reason)
		res.Skipped = append(res.Skipped, id)
		cSkipped.Inc()
		if rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.KindDocSkipped, Doc: int64(id), Name: reason})
		}
	}
	labelDoc := func(d *corpus.Document) (LabeledDoc, int, string) {
		if e, ok := opts.Journal.Lookup(d.ID); ok {
			if e.Skipped {
				return LabeledDoc{Doc: d}, outcomeSkip, e.Reason
			}
			return LabeledDoc{Doc: d, Useful: e.Useful, Tuples: e.Tuples}, outcomeOK, ""
		}
		useful, tuples, err := labelWithContext(ctx, opts.Labels, d)
		if err == nil {
			opts.Journal.RecordDoc(d.ID, useful, tuples)
			return LabeledDoc{Doc: d, Useful: useful, Tuples: tuples}, outcomeOK, ""
		}
		if ctx.Err() != nil {
			return LabeledDoc{Doc: d}, outcomeCancelled, ""
		}
		if errors.Is(err, ErrBreakerOpen) {
			return LabeledDoc{Doc: d}, outcomeRequeue, ""
		}
		reason := obs.ReasonPoisoned
		if !errors.Is(err, ErrDocPoisoned) {
			reason = obs.ReasonError
		}
		return LabeledDoc{Doc: d}, outcomeSkip, reason
	}

	// --- Initial sampling & labelling -------------------------------
	spSample := tr.Start(obs.SpanSample)
	sample := make([]LabeledDoc, 0, len(opts.Sample))
	processed := make(map[corpus.DocID]bool, opts.Coll.Len())
	for _, d := range opts.Sample {
		ld, outcome, reason := labelDoc(d)
		switch outcome {
		case outcomeCancelled:
			res.Interrupted = true
			spSample.SetNum("docs", float64(res.SampleSize)).End()
			return epilogue()
		case outcomeSkip, outcomeRequeue:
			// The sample is an unordered batch, so a breaker-open
			// fast-fail is a skip here too: there is no "later" position
			// to requeue to before initial training needs the doc.
			if outcome == outcomeRequeue {
				reason = obs.ReasonBreakerOpen
			}
			if !processed[d.ID] {
				processed[d.ID] = true
				markSkipped(d.ID, reason)
			}
			continue
		}
		// Duplicates (sampling with replacement) train with their
		// multiplicity but are counted and costed once.
		sample = append(sample, ld)
		if processed[d.ID] {
			continue
		}
		processed[d.ID] = true
		res.SampleSize++
		if ld.Useful {
			res.SampleUseful++
		}
		collect(ld.Tuples)
		res.Time.Extraction += opts.ExtractionCost
		cSample.Inc()
		if rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.KindSampleLabelled, Doc: int64(d.ID),
				Useful: ld.Useful, Dur: opts.ExtractionCost})
		}
	}

	spSample.SetNum("docs", float64(res.SampleSize)).
		SetNum("useful", float64(res.SampleUseful)).End()

	// --- Ranking generation ------------------------------------------
	spInit := tr.Start(obs.SpanTrainInit)
	t0 := time.Now()
	opts.Strategy.Init(sample)
	initDur := time.Since(t0)
	res.Time.Training += initDur
	spInit.SetNum("docs", float64(len(sample))).End()
	rec.Record(obs.Event{Kind: obs.KindPhase, Name: obs.PhaseInitTrain, N: len(sample), Dur: initDur})
	explainSnapshot(explain.StageTrainInit, spInit.ID(), 0, 0)

	feats := func(d *corpus.Document) vector.Sparse {
		if opts.Featurizer == nil {
			return vector.Sparse{}
		}
		return opts.Featurizer.Features(d)
	}
	if opts.Detector != nil {
		spPrime := tr.Start(obs.SpanDetectorPrime)
		t0 = time.Now()
		switch p := opts.Detector.(type) {
		case labeledPrimer:
			xs := make([]vector.Sparse, len(sample))
			ys := make([]bool, len(sample))
			for i, ld := range sample {
				xs[i] = feats(ld.Doc)
				ys[i] = ld.Useful
			}
			p.Prime(xs, ys)
		case unlabeledPrimer:
			xs := make([]vector.Sparse, len(sample))
			for i, ld := range sample {
				xs[i] = feats(ld.Doc)
			}
			p.Prime(xs)
		}
		primeDur := time.Since(t0)
		res.Time.Detection += primeDur
		spPrime.SetNum("docs", float64(len(sample))).End()
		rec.Record(obs.Event{Kind: obs.KindPhase, Name: obs.PhaseDetectorPrime, N: len(sample), Dur: primeDur})
	}

	// --- Build the pending pool --------------------------------------
	if opts.SearchIface == nil {
		for _, d := range opts.Coll.Docs() {
			if !processed[d.ID] {
				pending = append(pending, d)
			}
		}
	} else {
		pool := make(map[corpus.DocID]bool)
		for _, q := range opts.SearchIface.InitialQueries {
			for _, h := range opts.SearchIface.Index.Search(q, opts.SearchIface.RetrieveK) {
				pool[h.Doc] = true
			}
		}
		ids := make([]corpus.DocID, 0, len(pool))
		//lint:allow detrand collection order is erased by the sort below
		for id := range pool {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if !processed[id] {
				pending = append(pending, opts.Coll.Doc(id))
			}
		}
	}

	// --- Initial ranking ----------------------------------------------
	scores := make(map[corpus.DocID]float64, len(pending))
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	// score wraps Strategy.Score with panic recovery so one bad feature
	// vector cannot take down a worker goroutine (which would crash the
	// whole process): the document is attributed, counted, and ranked
	// last instead.
	cWorkerPanics := reg.Counter(obs.MetricPipelineWorkerPanics)
	score := func(d *corpus.Document) (s float64) {
		defer func() {
			if p := recover(); p != nil {
				s = math.Inf(-1)
				cWorkerPanics.Inc()
				if rec.Enabled() {
					rec.Record(obs.Event{Kind: obs.KindWorkerPanic,
						Doc: int64(d.ID), Name: obs.PanicSiteScore})
				}
			}
		}()
		return opts.Strategy.Score(d)
	}
	// scoreChunk scores one contiguous slice of pending documents into the
	// matching out slice. Strategies with a batch fast path (BatchScorer)
	// score the whole chunk through pooled buffers; a panic inside the
	// batch path — or a strategy without one — falls back to per-document
	// score, whose own recovery attributes the offending document. Both
	// paths produce bitwise-identical scores (the BatchScorer contract),
	// so chunk boundaries and fallbacks never change the ranking.
	batcher, _ := opts.Strategy.(BatchScorer)
	scoreChunk := func(docs []*corpus.Document, out []float64) {
		if batcher != nil {
			ok := func() (ok bool) {
				defer func() {
					if p := recover(); p != nil {
						ok = false
						if rec.Enabled() {
							rec.Record(obs.Event{Kind: obs.KindWorkerPanic,
								Name: obs.PanicSiteScoreBatch})
						}
					}
				}()
				return batcher.ScoreBatch(docs, out)
			}()
			if ok {
				return
			}
		}
		for i, d := range docs {
			out[i] = score(d)
		}
	}
	// scoreRange walks [lo, hi) in fixed sub-chunks so batch scoring,
	// cancellation checks, and worker partitioning all share one shape:
	// the values written to out depend only on the model state, never on
	// chunk or worker boundaries (worker-count invariance).
	const scoreChunkSize = 256
	scoreRange := func(lo, hi int, out []float64) {
		for a := lo; a < hi; a += scoreChunkSize {
			if ctx.Err() != nil {
				return // cancelled: the main loop exits right after
			}
			b := a + scoreChunkSize
			if b > hi {
				b = hi
			}
			scoreChunk(pending[a:b], out[a:b])
		}
	}
	rank := func() {
		spRank := tr.Start(obs.SpanRank)
		if rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.KindRankStarted, N: len(pending)})
		}
		t := time.Now()
		out := make([]float64, len(pending))
		if workers == 1 || len(pending) < 256 {
			scoreRange(0, len(pending), out)
		} else {
			var wg sync.WaitGroup
			chunk := (len(pending) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > len(pending) {
					hi = len(pending)
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					scoreRange(lo, hi, out)
				}(lo, hi)
			}
			wg.Wait()
		}
		for i, d := range pending {
			scores[d.ID] = out[i]
		}
		res.ScoredDocs += len(pending)
		sort.SliceStable(pending, func(i, j int) bool {
			si, sj := scores[pending[i].ID], scores[pending[j].ID]
			if si != sj {
				return si > sj
			}
			return pending[i].ID < pending[j].ID
		})
		dt := time.Since(t)
		res.Time.Ranking += dt
		cReranks.Inc()
		hRank.ObserveDuration(dt)
		spRank.SetNum("pool", float64(len(pending))).SetNum("workers", float64(workers)).End()
		if rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.KindRankFinished, N: len(pending), Dur: dt})
		}
		// Score attribution: decompose the freshly top-ranked documents'
		// scores into exact per-feature contributions. This happens after
		// the timing account closes — attribution is introspection
		// overhead, not ranking work — and re-uses the per-document
		// feature cache the scoring pass just filled.
		if ex != nil {
			if da, ok := opts.Strategy.(DocAttributor); ok {
				n := ex.AttribTopN()
				if n > len(pending) {
					n = len(pending)
				}
				for i := 0; i < n; i++ {
					d := pending[i]
					a, ok := da.Attribute(d)
					if !ok {
						break
					}
					ex.RecordAttribution(explain.Record{
						Doc: int64(d.ID), Rank: i,
						Span: spRank.ID(), Pos: len(res.Order),
						Score: a.Score, Logistic: a.Logistic,
						Members: explainMembers(a, featName),
					})
				}
			}
		}
	}
	rank()

	modelSupport := func() map[int32]bool {
		m, ok := opts.Strategy.(Modeler)
		if !ok || m.Model() == nil {
			return nil
		}
		sup := make(map[int32]bool, m.Model().NNZ())
		m.Model().Range(func(i int32, v float64) { sup[i] = true })
		return sup
	}
	prevSupport := modelSupport()

	// modelHash is an order-independent fingerprint of the model weights
	// (XOR-combined per-feature hashes: Weights.Range order must not
	// matter). Snapshots recorded in the journal at each update verify
	// that a resumed run's model evolves identically to the original.
	modelHash := func() (nnz int, sum uint64, ok bool) {
		m, k := opts.Strategy.(Modeler)
		if !k || m.Model() == nil {
			return 0, 0, false
		}
		w := m.Model()
		w.Range(func(i int32, v float64) {
			h := uint64(i)*0x9e3779b97f4a7c15 ^ math.Float64bits(v)
			// splitmix64 finalizer: decorrelate before XOR-combining.
			h ^= h >> 30
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
			h *= 0x94d049bb133111eb
			h ^= h >> 31
			sum ^= h
		})
		return w.NNZ(), sum, true
	}

	// --- Extraction loop ----------------------------------------------
	// Batch spans group the documents processed between two consecutive
	// (re-)rankings; doc spans nest under them, giving the trace its
	// run -> batch -> doc causal spine.
	var buffer []LabeledDoc
	batchDocs := 0
	requeues := make(map[corpus.DocID]int)
	spBatch := tr.Start(obs.SpanBatch)
	for cursor < len(pending) {
		if opts.MaxDocs > 0 && len(res.Order) >= opts.MaxDocs {
			break
		}
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		d := pending[cursor]
		cursor++
		if processed[d.ID] {
			continue // duplicates can enter via search-interface growth
		}

		// Tuple extraction (simulated cost for precomputed oracles; real
		// extraction work for live oracles). A document is marked
		// processed only at a final outcome — success or skip — so a
		// breaker-open requeue can re-enter it later.
		ld, outcome, reason := labelDoc(d)
		switch outcome {
		case outcomeCancelled:
			res.Interrupted = true
		case outcomeRequeue:
			requeues[d.ID]++
			res.Requeued++
			cRequeued.Inc()
			if rec.Enabled() {
				rec.Record(obs.Event{Kind: obs.KindDocRequeued,
					Doc: int64(d.ID), N: requeues[d.ID]})
			}
			if requeues[d.ID] > opts.RequeueLimit {
				processed[d.ID] = true
				markSkipped(d.ID, obs.ReasonRequeueLimit)
			} else {
				pending = append(pending, d)
			}
			continue
		case outcomeSkip:
			processed[d.ID] = true
			markSkipped(d.ID, reason)
			continue
		}
		if res.Interrupted {
			break
		}
		processed[d.ID] = true
		spDoc := tr.Start(obs.SpanDoc)
		batchDocs++
		collect(ld.Tuples)
		res.Order = append(res.Order, d.ID)
		res.OrderLabels = append(res.OrderLabels, ld.Useful)
		res.Time.Extraction += opts.ExtractionCost
		buffer = append(buffer, ld)
		cDocs.Inc()
		if ld.Useful {
			cUseful.Inc()
		}
		spDoc.SetNum("doc", float64(d.ID)).SetNum("cost_ns", float64(opts.ExtractionCost))
		if ld.Useful {
			spDoc.SetAttr("useful", "true")
		}
		if rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.KindDocExtracted, Doc: int64(d.ID),
				Useful: ld.Useful, Dur: opts.ExtractionCost, Span: spDoc.ID()})
		}

		// Keep the explain logical clock on the ranked-phase position, so
		// detector decision records made below carry the position they
		// were decided at.
		ex.Advance(len(res.Order))

		// Strategy self-observation (A-FC re-ranks continuously).
		t := time.Now()
		selfRerank := opts.Strategy.Observe(ld)
		od := time.Since(t)
		res.Time.Ranking += od
		accObserve += od

		// Update detection.
		trigger := false
		if opts.Detector != nil {
			spDet := tr.Start(obs.SpanDetect)
			t = time.Now()
			trigger = opts.Detector.Observe(feats(d), ld.Useful)
			dt := time.Since(t)
			spDet.End()
			res.Time.Detection += dt
			res.DetectorTime += dt
			res.DetectorObservations++
			accDetect += dt
			hDetect.ObserveDuration(dt)
			if trigger {
				cFired.Inc()
			} else {
				cSuppressed.Inc()
			}
		}

		if trigger {
			// Model update: fold the buffered documents in (online —
			// no retraining from scratch).
			bufN := len(buffer)
			if rec.Enabled() {
				rec.Record(obs.Event{Kind: obs.KindDetectorFired,
					Name: opts.Detector.Name(), N: bufN})
			}
			spTrain := tr.Start(obs.SpanTrainUpdate)
			t = time.Now()
			opts.Strategy.Update(buffer)
			updateDur := time.Since(t)
			spTrain.SetNum("buffered", float64(bufN)).End()
			res.Time.Training += updateDur
			cUpdates.Inc()
			hUpdate.ObserveDuration(updateDur)
			buffer = buffer[:0]
			res.UpdatePositions = append(res.UpdatePositions, len(res.Order))
			opts.Detector.Reset()

			// Feature churn bookkeeping.
			var added, removed, size int
			haveChurn := false
			if cur := modelSupport(); cur != nil {
				haveChurn = true
				for f := range cur {
					if !prevSupport[f] {
						added++
					}
				}
				for f := range prevSupport {
					if !cur[f] {
						removed++
					}
				}
				size = len(cur)
				res.Churn = append(res.Churn, ChurnRecord{
					Position: len(res.Order), Added: added, Removed: removed, Size: size,
				})
				prevSupport = cur
				reg.Gauge(obs.MetricPipelineModelSupport).Set(float64(size))
				reg.Counter(obs.MetricPipelineFeaturesAdded).Add(int64(added))
				reg.Counter(obs.MetricPipelineFeaturesRemoved).Add(int64(removed))
			}
			if rec.Enabled() {
				ev := obs.Event{Kind: obs.KindModelUpdated, N: bufN, Dur: updateDur}
				if haveChurn {
					ev.Added, ev.Removed, ev.Val = added, removed, float64(size)
				}
				rec.Record(ev)
			}
			explainSnapshot(explain.StageTrainUpdate, spTrain.ID(), added, removed)

			// Journal a model snapshot at this update position; on resume
			// this verifies (rather than re-records) and aborts on
			// divergence instead of silently producing different results.
			if opts.Journal != nil {
				if nnz, sum, ok := modelHash(); ok {
					if err := opts.Journal.CheckSnapshot(len(res.Order), nnz, sum); err != nil {
						return nil, fmt.Errorf("pipeline: resume diverged from journal: %w", err)
					}
				}
			}

			// Search-interface scenario: issue the top model features as
			// fresh queries and grow the pool.
			if opts.SearchIface != nil {
				pending = append(pending, retrieveByTopFeatures(opts, processed)...)
			}
		}

		spDoc.End()
		if trigger || selfRerank {
			spBatch.SetNum("docs", float64(batchDocs)).End()
			pending = pending[cursor:]
			cursor = 0
			rank()
			spBatch = tr.Start(obs.SpanBatch)
			batchDocs = 0
		}
	}
	spBatch.SetNum("docs", float64(batchDocs)).End()
	return epilogue()
}

// explainMembers converts a ranking attribution into explain log
// members, resolving feature indices to names. Contribution order — and
// therefore the bitwise score-reconstruction contract — is preserved.
func explainMembers(a ranking.Attribution, name func(int32) string) []explain.Member {
	out := make([]explain.Member, len(a.Members))
	for i, m := range a.Members {
		em := explain.Member{Bias: m.Bias, Margin: m.Margin}
		if len(m.Contribs) > 0 {
			em.Contribs = make([]explain.Feature, len(m.Contribs))
			for j, c := range m.Contribs {
				em.Contribs[j] = explain.Feature{Index: c.Index, Weight: c.Value}
				if name != nil {
					em.Contribs[j].Name = name(c.Index)
				}
			}
		}
		out[i] = em
	}
	return out
}

// retrieveByTopFeatures turns the strategy's strongest positive model
// features into keyword queries and returns the unseen retrieved documents.
func retrieveByTopFeatures(opts Options, processed map[corpus.DocID]bool) []*corpus.Document {
	m, ok := opts.Strategy.(Modeler)
	if !ok || m.Model() == nil || opts.Featurizer == nil {
		return nil
	}
	var out []*corpus.Document
	seen := make(map[corpus.DocID]bool)
	top := m.Model().TopK(opts.SearchIface.TopFeatures)
	for _, f := range top {
		if f.Weight <= 0 {
			continue
		}
		name := opts.Featurizer.FeatureName(f.Index)
		term := strings.TrimPrefix(name, "w=")
		for _, h := range opts.SearchIface.Index.Search(term, opts.SearchIface.PerFeatureK) {
			if !processed[h.Doc] && !seen[h.Doc] {
				seen[h.Doc] = true
				out = append(out, opts.Coll.Doc(h.Doc))
			}
		}
	}
	return out
}
