package pipeline

// Race-focused tests: these are the primary targets of the CI
// `go test -race ./internal/pipeline/...` job. They exercise the
// parallel scoring path against the sequential one and shared
// observability state across concurrent runs.

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/update"
)

// orderBytes serializes a processing order so runs can be compared
// byte-for-byte.
func orderBytes(t *testing.T, order []corpus.DocID) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, id := range order {
		if err := binary.Write(&buf, binary.LittleEndian, int64(id)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestWorkersByteIdenticalOrder runs the same configuration with 1 and 8
// scoring workers — with observability attached, since instrument writes
// from worker goroutines are exactly what -race should see — and asserts
// the serialized processing orders are byte-identical.
func TestWorkersByteIdenticalOrder(t *testing.T) {
	env := newTestEnv(t, 31)
	mk := func(workers int) *Result {
		feat := ranking.NewFeaturizer()
		r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 31})
		res, err := Run(Options{
			Rel: relation.PH, Coll: env.coll, Labels: env.labels, Sample: env.sample,
			Strategy: NewLearned(r, feat), Detector: update.NewWindF(150),
			Featurizer: feat, Workers: workers,
			Metrics: obs.NewRegistry(), Recorder: &obs.MemRecorder{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := mk(1)
	par := mk(8)
	if !bytes.Equal(orderBytes(t, seq.Order), orderBytes(t, par.Order)) {
		t.Fatal("parallel scoring produced a different processing order than sequential")
	}
	if seq.AP != par.AP || seq.AUC != par.AUC {
		t.Errorf("quality metrics diverged: AP %g vs %g, AUC %g vs %g",
			seq.AP, par.AP, seq.AUC, par.AUC)
	}
}

// TestConcurrentRunsSharedObservability runs several pipelines
// concurrently against one shared registry and recorder, then checks the
// aggregate counters equal the per-run sums. Under -race this doubles as
// a data-race check on obs.Registry, obs.MemRecorder, and the
// per-collection label cache.
func TestConcurrentRunsSharedObservability(t *testing.T) {
	env := newTestEnv(t, 32)
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}

	const runs = 4
	results := make([]*Result, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			feat := ranking.NewFeaturizer()
			r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: int64(32 + i)})
			res, err := Run(Options{
				Rel: relation.PH, Coll: env.coll, Labels: env.labels, Sample: env.sample,
				Strategy: NewLearned(r, feat), Detector: update.NewWindF(200),
				Featurizer: feat, Workers: 4,
				Metrics: reg, Recorder: rec,
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	var wantDocs, wantSample, wantUpdates int64
	for _, res := range results {
		if res == nil {
			t.Fatal("a concurrent run failed")
		}
		wantDocs += int64(len(res.Order))
		wantSample += int64(res.SampleSize)
		wantUpdates += int64(len(res.UpdatePositions))
	}
	if got := reg.CounterValue("pipeline.docs_processed"); got != wantDocs {
		t.Errorf("docs_processed = %d, want %d", got, wantDocs)
	}
	if got := reg.CounterValue("pipeline.sample_docs"); got != wantSample {
		t.Errorf("sample_docs = %d, want %d", got, wantSample)
	}
	if got := reg.CounterValue("pipeline.updates"); got != wantUpdates {
		t.Errorf("updates = %d, want %d", got, wantUpdates)
	}

	// The shared recorder interleaves events from all runs but must keep
	// its sequence numbers strictly increasing and complete.
	events := rec.Events()
	var starts, finishes int
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		switch e.Kind {
		case obs.KindRunStarted:
			starts++
		case obs.KindRunFinished:
			finishes++
		}
	}
	if starts != runs || finishes != runs {
		t.Errorf("run-started=%d run-finished=%d, want %d each", starts, finishes, runs)
	}
}
