package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/extract"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/relation"
)

// fixedExtractor returns one tuple per document; the base of every
// fault-injection chain below.
type fixedExtractor struct{}

func (fixedExtractor) Relation() relation.Relation  { return relation.PO }
func (fixedExtractor) SimulatedCost() time.Duration { return time.Millisecond }
func (fixedExtractor) Extract(d *corpus.Document) []relation.Tuple {
	return []relation.Tuple{{Rel: relation.PO, Arg1: "x", Arg2: fmt.Sprint(d.ID)}}
}

// scriptedOracle fails per a fixed schedule keyed by call count; used
// where Flaky's hashed schedule is too coarse to steer a scenario.
type scriptedOracle struct {
	calls int
	// fail reports whether call i (0-based) should fail, and how.
	fail func(call int) error
}

func (s *scriptedOracle) Label(d *corpus.Document) (bool, []relation.Tuple) {
	u, ts, _ := s.LabelContext(context.Background(), d)
	return u, ts
}
func (s *scriptedOracle) TotalUseful() (int, bool) { return 0, false }
func (s *scriptedOracle) LabelContext(ctx context.Context, d *corpus.Document) (bool, []relation.Tuple, error) {
	call := s.calls
	s.calls++
	if err := s.fail(call); err != nil {
		if err.Error() == "panic" {
			panic("scripted panic")
		}
		return false, nil, err
	}
	return true, []relation.Tuple{{Rel: relation.PO, Arg1: "a", Arg2: "b"}}, nil
}

func resilientDoc(id int) *corpus.Document {
	return &corpus.Document{ID: corpus.DocID(id), Title: "t", Text: "x"}
}

// resilientOver builds the canonical chain: Resilient(ExtractorOracle(
// Flaky(fixedExtractor))), instrumented into reg/rec.
func resilientOver(fopts extract.FlakyOptions, ropts ResilientOptions, reg *obs.Registry, rec obs.Recorder) (*Resilient, *extract.Flaky) {
	fl := extract.NewFlaky(fixedExtractor{}, fopts)
	r := NewResilient(&ExtractorOracle{Ex: fl}, ropts)
	r.Instrument(reg, rec)
	return r, fl
}

func kindEvents(rec *obs.MemRecorder, kind obs.Kind) []obs.Event {
	var out []obs.Event
	for _, e := range rec.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// TestResilientErrorOnlySchedule: transient errors only — every
// non-poisoned doc must label successfully; faults and retries must show
// up in the obs stream and counters.
func TestResilientErrorOnlySchedule(t *testing.T) {
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}
	var slept []time.Duration
	r, fl := resilientOver(
		extract.FlakyOptions{Seed: 7, ErrorRate: 0.3, MaxFaultyAttempts: 2},
		ResilientOptions{MaxAttempts: 4, Sleep: func(d time.Duration) { slept = append(slept, d) }},
		reg, rec)
	for i := 0; i < 100; i++ {
		d := resilientDoc(i)
		useful, tuples, err := r.LabelContext(context.Background(), d)
		if fl.Poisoned(d.ID) {
			t.Fatalf("error-only schedule poisoned doc %d", i)
		}
		if err != nil || !useful || len(tuples) != 1 {
			t.Fatalf("doc %d: useful=%v tuples=%v err=%v", i, useful, tuples, err)
		}
	}
	faults := reg.CounterValue("resilience.faults")
	if faults == 0 {
		t.Fatal("no faults injected; schedule degenerate")
	}
	if got := int64(len(kindEvents(rec, obs.KindExtractFault))); got != faults {
		t.Fatalf("fault events = %d, counter = %d", got, faults)
	}
	retries := reg.CounterValue("resilience.retries")
	if retries != faults {
		// every fault here is followed by a retry (MaxAttempts > MaxFaultyAttempts)
		t.Fatalf("retries = %d, want %d (one per fault)", retries, faults)
	}
	if int64(len(slept)) != retries {
		t.Fatalf("Sleep called %d times, want %d", len(slept), retries)
	}
	for _, e := range kindEvents(rec, obs.KindExtractFault) {
		if e.Name != "error" {
			t.Fatalf("error-only schedule produced fault class %q", e.Name)
		}
	}
	if reg.CounterValue("resilience.panics_recovered") != 0 ||
		reg.CounterValue("resilience.timeouts") != 0 ||
		reg.CounterValue("resilience.docs_poisoned") != 0 {
		t.Fatal("error-only schedule incremented unrelated counters")
	}
}

// TestResilientLatencyOnlySchedule: latency spikes are not faults — no
// retries, no fault events, correct answers.
func TestResilientLatencyOnlySchedule(t *testing.T) {
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}
	r, _ := resilientOver(
		extract.FlakyOptions{Seed: 2, LatencyRate: 0.5, Latency: time.Millisecond},
		ResilientOptions{AttemptTimeout: 5 * time.Second},
		reg, rec)
	for i := 0; i < 40; i++ {
		useful, _, err := r.LabelContext(context.Background(), resilientDoc(i))
		if err != nil || !useful {
			t.Fatalf("doc %d: useful=%v err=%v", i, useful, err)
		}
	}
	if n := reg.CounterValue("resilience.faults"); n != 0 {
		t.Fatalf("latency-only schedule recorded %d faults", n)
	}
	if evs := kindEvents(rec, obs.KindExtractFault); len(evs) != 0 {
		t.Fatalf("latency-only schedule emitted %d fault events", len(evs))
	}
}

// TestResilientHangSchedule: a hanging extractor is cut off by the
// per-attempt timeout, classified "timeout", retried, and recovers once
// the flaky schedule stops hanging.
func TestResilientHangSchedule(t *testing.T) {
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}
	r, _ := resilientOver(
		extract.FlakyOptions{Seed: 1, HangRate: 1, HangDur: time.Minute, MaxFaultyAttempts: 1},
		ResilientOptions{
			AttemptTimeout: 10 * time.Millisecond,
			Sleep:          func(time.Duration) {},
		},
		reg, rec)
	start := time.Now()
	useful, _, err := r.LabelContext(context.Background(), resilientDoc(0))
	if err != nil || !useful {
		t.Fatalf("useful=%v err=%v", useful, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang was not bounded by the attempt timeout: %v", elapsed)
	}
	if n := reg.CounterValue("resilience.timeouts"); n == 0 {
		t.Fatal("hang not classified as a timeout")
	}
	evs := kindEvents(rec, obs.KindExtractFault)
	if len(evs) == 0 || evs[0].Name != "timeout" {
		t.Fatalf("fault events = %+v, want timeout class", evs)
	}
}

// TestResilientPanicSchedule: panics are recovered, classified, retried,
// and never escape LabelContext.
func TestResilientPanicSchedule(t *testing.T) {
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}
	r, fl := resilientOver(
		extract.FlakyOptions{Seed: 4, PanicRate: 0.4, MaxFaultyAttempts: 2},
		ResilientOptions{MaxAttempts: 4, Sleep: func(time.Duration) {}},
		reg, rec)
	for i := 0; i < 60; i++ {
		d := resilientDoc(i)
		useful, _, err := r.LabelContext(context.Background(), d)
		if fl.Poisoned(d.ID) {
			continue
		}
		if err != nil || !useful {
			t.Fatalf("doc %d: useful=%v err=%v", i, useful, err)
		}
	}
	if reg.CounterValue("resilience.panics_recovered") == 0 {
		t.Fatal("no panics recovered; schedule degenerate")
	}
	sawPanicClass := false
	for _, e := range kindEvents(rec, obs.KindExtractFault) {
		if e.Name == "panic" {
			sawPanicClass = true
		}
	}
	if !sawPanicClass {
		t.Fatal("no fault event carried the panic class")
	}
}

// TestResilientMixedScheduleConverges is the acceptance scenario: 10%
// transient errors + 1% panics over a corpus; the run completes with no
// crash, labels every non-poisoned doc correctly, and surfaces the
// injected faults in /metrics counters.
func TestResilientMixedScheduleConverges(t *testing.T) {
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}
	r, fl := resilientOver(
		extract.FlakyOptions{Seed: 42, ErrorRate: 0.10, PanicRate: 0.01, PoisonRate: 0.01, MaxFaultyAttempts: 2},
		ResilientOptions{MaxAttempts: 4, Sleep: func(time.Duration) {}},
		reg, rec)
	poisoned := 0
	for i := 0; i < 500; i++ {
		d := resilientDoc(i)
		useful, tuples, err := r.LabelContext(context.Background(), d)
		if fl.Poisoned(d.ID) {
			poisoned++
			if !errors.Is(err, ErrDocPoisoned) {
				t.Fatalf("poisoned doc %d: err = %v, want ErrDocPoisoned", i, err)
			}
			continue
		}
		if err != nil || !useful || len(tuples) != 1 {
			t.Fatalf("doc %d: useful=%v tuples=%v err=%v", i, useful, tuples, err)
		}
	}
	if poisoned == 0 {
		t.Fatal("schedule poisoned no documents; acceptance scenario degenerate")
	}
	if got := reg.CounterValue("resilience.docs_poisoned"); got != int64(poisoned) {
		t.Fatalf("docs_poisoned counter = %d, want %d", got, poisoned)
	}
	if reg.CounterValue("resilience.faults") == 0 || reg.CounterValue("resilience.panics_recovered") == 0 {
		t.Fatal("mixed schedule left fault counters at zero")
	}
}

// TestResilientBackoffSequence: delays grow exponentially from
// BaseBackoff, stay within the jitter envelope [d/2, d], and are capped
// at MaxBackoff.
func TestResilientBackoffSequence(t *testing.T) {
	var slept []time.Duration
	r := NewResilient(&scriptedOracle{fail: func(int) error { return errors.New("down") }},
		ResilientOptions{
			MaxAttempts: 6,
			BaseBackoff: 8 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		})
	_, _, err := r.LabelContext(context.Background(), resilientDoc(0))
	if !errors.Is(err, ErrDocPoisoned) {
		t.Fatalf("err = %v, want ErrDocPoisoned", err)
	}
	want := []time.Duration{8, 16, 20, 20, 20} // ms, pre-jitter, capped
	if len(slept) != len(want) {
		t.Fatalf("slept %d times, want %d", len(slept), len(want))
	}
	for i, d := range slept {
		lo, hi := want[i]*time.Millisecond/2, want[i]*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("backoff %d = %v, want in [%v, %v]", i, d, lo, hi)
		}
	}
}

// TestResilientBreakerTripsAndRecovers drives the full breaker cycle:
// closed -> open after BreakerThreshold consecutive failures, fast-fail
// with ErrBreakerOpen while open, half-open probe after BreakerCooldown
// calls, and closed again on a successful probe — all visible in the
// obs event stream.
func TestResilientBreakerTripsAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	rec := &obs.MemRecorder{}
	down := true
	or := &scriptedOracle{fail: func(int) error {
		if down {
			return errors.New("backend down")
		}
		return nil
	}}
	r := NewResilient(or, ResilientOptions{
		MaxAttempts:      2,
		BreakerThreshold: 4,
		BreakerCooldown:  3,
		Sleep:            func(time.Duration) {},
	})
	r.Instrument(reg, rec)

	// Two docs x 2 attempts = 4 consecutive failures: trips the breaker.
	for i := 0; i < 2; i++ {
		if _, _, err := r.LabelContext(context.Background(), resilientDoc(i)); !errors.Is(err, ErrDocPoisoned) {
			t.Fatalf("doc %d err = %v, want ErrDocPoisoned", i, err)
		}
	}
	if st := r.BreakerState(); st != "open" {
		t.Fatalf("breaker state = %q, want open", st)
	}
	if n := reg.CounterValue("resilience.breaker_trips"); n != 1 {
		t.Fatalf("breaker_trips = %d, want 1", n)
	}
	// While open, calls fast-fail with ErrBreakerOpen (requeue signal)
	// without touching the oracle.
	callsBefore := or.calls
	for i := 0; i < 2; i++ { // cooldown is 3; these two stay fast-failed
		if _, _, err := r.LabelContext(context.Background(), resilientDoc(10+i)); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open-breaker err = %v, want ErrBreakerOpen", err)
		}
	}
	if or.calls != callsBefore {
		t.Fatal("open breaker still called the oracle")
	}
	if n := reg.CounterValue("resilience.breaker_fastfails"); n != 2 {
		t.Fatalf("breaker_fastfails = %d, want 2", n)
	}

	// Backend recovers; the third call since opening is the half-open
	// probe, succeeds, and closes the breaker.
	down = false
	useful, _, err := r.LabelContext(context.Background(), resilientDoc(20))
	if err != nil || !useful {
		t.Fatalf("probe call: useful=%v err=%v", useful, err)
	}
	if st := r.BreakerState(); st != "closed" {
		t.Fatalf("breaker state after probe = %q, want closed", st)
	}

	var states []string
	for _, e := range kindEvents(rec, obs.KindBreaker) {
		states = append(states, e.Name)
	}
	want := []string{"open", "half-open", "closed"}
	if len(states) != len(want) {
		t.Fatalf("breaker transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("breaker transitions = %v, want %v", states, want)
		}
	}
}

// TestResilientBreakerFailedProbeReopens: a failed half-open probe goes
// straight back to open without a fresh threshold count.
func TestResilientBreakerFailedProbeReopens(t *testing.T) {
	or := &scriptedOracle{fail: func(int) error { return errors.New("still down") }}
	r := NewResilient(or, ResilientOptions{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  2,
		Sleep:            func(time.Duration) {},
	})
	for i := 0; i < 2; i++ { // trip
		r.LabelContext(context.Background(), resilientDoc(i))
	}
	if st := r.BreakerState(); st != "open" {
		t.Fatalf("state = %q, want open", st)
	}
	r.LabelContext(context.Background(), resilientDoc(10)) // fast-fail 1
	_, _, err := r.LabelContext(context.Background(), resilientDoc(11))
	// fast-fail 2 reaches the cooldown: this call was the probe and failed.
	if errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe call fast-failed instead of probing: %v", err)
	}
	if st := r.BreakerState(); st != "open" {
		t.Fatalf("state after failed probe = %q, want open", st)
	}
}

// TestResilientContextCancellation: cancelling the run context stops
// retrying immediately and surfaces ctx.Err, not a fault classification.
func TestResilientContextCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	attempts := 0
	r := NewResilient(&scriptedOracle{fail: func(int) error { attempts++; return errors.New("x") }},
		ResilientOptions{MaxAttempts: 10, Sleep: func(time.Duration) {}})
	r.Instrument(reg, obs.Nop())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := r.LabelContext(ctx, resilientDoc(0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 0 {
		t.Fatalf("cancelled call still made %d attempts", attempts)
	}
}

// TestResilientFallbackForPlainOracle: a context-unaware Oracle still
// works through the resilience layer (Label path), including panic
// recovery around it.
func TestResilientFallbackForPlainOracle(t *testing.T) {
	r := NewResilient(&panickyPlainOracle{}, ResilientOptions{
		MaxAttempts: 3, Sleep: func(time.Duration) {},
	})
	useful, tuples, err := r.LabelContext(context.Background(), resilientDoc(0))
	if err != nil || !useful || len(tuples) != 1 {
		t.Fatalf("useful=%v tuples=%v err=%v", useful, tuples, err)
	}
}

// panickyPlainOracle implements only Oracle and panics on its first call.
type panickyPlainOracle struct{ calls int }

func (p *panickyPlainOracle) Label(d *corpus.Document) (bool, []relation.Tuple) {
	p.calls++
	if p.calls == 1 {
		panic("first call boom")
	}
	return true, []relation.Tuple{{Rel: relation.PO, Arg1: "a", Arg2: "b"}}
}
func (p *panickyPlainOracle) TotalUseful() (int, bool) { return 0, false }
