package pipeline

import (
	"testing"

	"adaptiverank/internal/obs"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/update"
)

// TestRunEmitsBalancedSpanTree runs a real adaptive pipeline with a
// tracing recorder attached and validates the causal span tree: every
// span start has exactly one end, parentage follows
// run -> {sample, train-init, detector-prime, rank, batch} and
// batch -> doc -> {detect, train-update}, and per-document events are
// stamped with their doc span.
func TestRunEmitsBalancedSpanTree(t *testing.T) {
	env := newTestEnv(t, 21)
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 21})
	mem := &obs.MemRecorder{}
	res, err := Run(Options{
		Rel: relation.PH, Coll: env.coll, Labels: env.labels, Sample: env.sample,
		Strategy: NewLearned(r, feat), Detector: update.NewModC(r, 0.1, 5, 21),
		Featurizer: feat, Recorder: mem,
	})
	if err != nil {
		t.Fatal(err)
	}

	type spanInfo struct {
		name   string
		parent int64
		ended  bool
	}
	spans := map[int64]*spanInfo{}
	var order []int64 // start order, for tree walks
	for _, e := range mem.Events() {
		switch e.Kind {
		case obs.KindSpanStart:
			if _, dup := spans[e.Span]; dup {
				t.Fatalf("span %d started twice", e.Span)
			}
			spans[e.Span] = &spanInfo{name: e.Name, parent: e.Parent}
			order = append(order, e.Span)
		case obs.KindSpanEnd:
			s, ok := spans[e.Span]
			if !ok {
				t.Fatalf("span %d (%s) ended without a start", e.Span, e.Name)
			}
			if s.ended {
				t.Fatalf("span %d (%s) ended twice", e.Span, e.Name)
			}
			s.ended = true
		}
	}
	if len(spans) == 0 {
		t.Fatal("tracing run emitted no spans")
	}
	for id, s := range spans {
		if !s.ended {
			t.Errorf("span %d (%s) never ended", id, s.name)
		}
	}

	// Exactly one root: the run span.
	var rootID int64
	for _, id := range order {
		if spans[id].parent == 0 {
			if rootID != 0 {
				t.Fatalf("multiple root spans: %d (%s) and %d (%s)",
					rootID, spans[rootID].name, id, spans[id].name)
			}
			rootID = id
		}
	}
	if rootID == 0 || spans[rootID].name != "run" {
		t.Fatalf("root span must be \"run\", got %d", rootID)
	}

	// Parentage rules for the phases the pipeline opens.
	wantParent := map[string]string{
		"run":            "",
		"sample":         "run",
		"train-init":     "run",
		"detector-prime": "run",
		"rank":           "run",
		"batch":          "run",
		"doc":            "batch",
		"detect":         "doc",
		"train-update":   "doc",
		"rsvm-learn":     "", // nested under whatever training phase ran it
	}
	counts := map[string]int{}
	for _, id := range order {
		s := spans[id]
		counts[s.name]++
		want, known := wantParent[s.name]
		if !known {
			t.Errorf("unexpected span name %q", s.name)
			continue
		}
		if want == "" {
			continue
		}
		p, ok := spans[s.parent]
		if !ok {
			t.Errorf("span %s has unknown parent %d", s.name, s.parent)
			continue
		}
		if p.name != want {
			t.Errorf("span %s parented under %s, want %s", s.name, p.name, want)
		}
	}
	if counts["doc"] != len(res.Order) {
		t.Errorf("doc spans = %d, want one per ranked document (%d)", counts["doc"], len(res.Order))
	}
	if counts["rank"] < 1 || counts["batch"] < 1 || counts["sample"] != 1 || counts["train-init"] != 1 {
		t.Errorf("phase span counts wrong: %v", counts)
	}
	// RSVM-IE learns during init and at every update, each under a span.
	if counts["rsvm-learn"] < 1 {
		t.Errorf("ranker train spans = %d, want >= 1", counts["rsvm-learn"])
	}

	// Detector decisions are stamped with their enclosing detect span.
	decisions := 0
	for _, e := range mem.Events() {
		if e.Kind != obs.KindDetectorDecision {
			continue
		}
		decisions++
		s, ok := spans[e.Span]
		if !ok || s.name != "detect" {
			t.Fatalf("decision stamped with span %d, want an open detect span", e.Span)
		}
	}
	if decisions == 0 {
		t.Error("adaptive run recorded no detector decisions")
	}

	// Doc-extracted events are stamped with their doc span.
	for _, e := range mem.Events() {
		if e.Kind != obs.KindDocExtracted {
			continue
		}
		s, ok := spans[e.Span]
		if !ok || s.name != "doc" {
			t.Fatalf("doc-extracted stamped with span %d, want a doc span", e.Span)
		}
	}
}

// TestRunWithoutRecorderEmitsNoSpans guards the disabled path end to
// end: a run with no recorder must behave identically (determinism is
// covered elsewhere) and a run with a disabled recorder must record
// nothing.
func TestRunWithoutRecorderEmitsNoSpans(t *testing.T) {
	env := newTestEnv(t, 22)
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 22})
	_, err := Run(Options{
		Rel: relation.PH, Coll: env.coll, Labels: env.labels, Sample: env.sample,
		Strategy: NewLearned(r, feat), Detector: update.NewModC(r, 0.1, 5, 22),
		Featurizer: feat, Recorder: obs.Nop(),
	})
	if err != nil {
		t.Fatal(err)
	}
}
