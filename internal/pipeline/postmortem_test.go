package pipeline

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/blackbox"
)

// TestWorkerPanicWritesPostmortemBundle drives the real pipeline with a
// black-box flight recorder attached and a strategy that panics on one
// specific document. The worker-panic recovery path must flush a
// postmortem bundle, and — because the dump runs synchronously inside
// the panicking goroutine's deferred recovery — the bundle's goroutine
// dump must still name the panicking site, frames and all.
func TestWorkerPanicWritesPostmortemBundle(t *testing.T) {
	env := newTestEnv(t, 21)
	crashDir := t.TempDir()
	reg := obs.NewRegistry()
	box, err := blackbox.New(blackbox.Options{
		Dir: crashDir, RunID: "postmortem-test", Fingerprint: "pipeline/panic-test",
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var bomb corpus.DocID = env.coll.Docs()[len(env.sample)+5].ID
	opts := learnedOpts(env, 21)
	opts.Strategy = &panickyStrategy{inner: opts.Strategy, bomb: bomb}
	opts.Metrics = reg
	opts.Recorder = obs.Tee(box)
	opts.Workers = 4
	res, err := RunContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) == 0 {
		t.Fatal("run produced no order")
	}

	bundles, err := blackbox.Bundles(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	// The bomb document is re-scored at every reranking, so the run can
	// panic (and dump) several times; every dump must carry the reason.
	if len(bundles) == 0 {
		t.Fatal("worker panic produced no postmortem bundle")
	}
	bdir := filepath.Join(crashDir, bundles[0])
	if !strings.Contains(filepath.Base(bdir), obs.DumpReasonWorkerPanic) {
		t.Fatalf("bundle dir %q does not carry reason %q", bdir, obs.DumpReasonWorkerPanic)
	}

	meta, err := blackbox.ReadMeta(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Reason != obs.DumpReasonWorkerPanic {
		t.Fatalf("meta reason = %q, want %q", meta.Reason, obs.DumpReasonWorkerPanic)
	}
	if meta.Trigger == nil || meta.Trigger.Kind != obs.KindWorkerPanic {
		t.Fatalf("meta trigger = %+v, want a worker-panic event", meta.Trigger)
	}
	if meta.Trigger.Name != obs.PanicSiteScore || corpus.DocID(meta.Trigger.Doc) != bomb {
		t.Fatalf("trigger attributes site %q doc %d, want site %q doc %d",
			meta.Trigger.Name, meta.Trigger.Doc, obs.PanicSiteScore, bomb)
	}

	// The goroutine dump was captured while the panicking worker was still
	// unwinding through its deferred recovery, so the stack it shows leads
	// from the pipeline's score wrapper down into the strategy method that
	// actually blew up.
	gs, err := os.ReadFile(filepath.Join(bdir, "goroutines.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range []string{"panickyStrategy", "internal/pipeline", "panic"} {
		if !strings.Contains(string(gs), frame) {
			t.Errorf("goroutine dump missing %q — panicking site not named", frame)
		}
	}

	// The ring replay in the bundle ends at the trigger: its last events
	// are the run leading up to the panic, and the trigger itself is in it.
	evs, err := os.ReadFile(filepath.Join(bdir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := obs.ReadEventsPartial(strings.NewReader(string(evs)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ring {
		if e.Kind == obs.KindWorkerPanic && corpus.DocID(e.Doc) == bomb {
			found = true
		}
	}
	if !found {
		t.Fatal("ring replay does not contain the triggering worker-panic event")
	}
}
