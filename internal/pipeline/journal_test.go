package pipeline

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "run.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	tuples := []relation.Tuple{
		{Rel: relation.PO, Arg1: "alice", Arg2: "acme"},
		{Rel: relation.PO, Arg1: "bob", Arg2: "globex"},
	}
	j.RecordDoc(0, true, tuples)
	j.RecordDoc(1, false, nil)
	j.RecordSkip(7, "poisoned")
	if err := j.CheckSnapshot(42, 13, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenJournal(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Entries(); n != 3 {
		t.Fatalf("Entries = %d, want 3", n)
	}
	e, ok := r.Lookup(0)
	if !ok || !e.Useful || len(e.Tuples) != 2 || e.Tuples[1].Arg1 != "bob" {
		t.Fatalf("doc 0 entry = %+v ok=%v", e, ok)
	}
	if e, ok := r.Lookup(1); !ok || e.Useful || e.Skipped {
		t.Fatalf("doc 1 entry = %+v ok=%v", e, ok)
	}
	if e, ok := r.Lookup(7); !ok || !e.Skipped || e.Reason != "poisoned" {
		t.Fatalf("doc 7 entry = %+v ok=%v", e, ok)
	}
	// Matching replayed snapshot passes; a diverging one is an error.
	if err := r.CheckSnapshot(42, 13, 0xdeadbeef); err != nil {
		t.Fatalf("matching snapshot rejected: %v", err)
	}
	if err := r.CheckSnapshot(42, 13, 0xbadf00d); err == nil {
		t.Fatal("diverging snapshot accepted")
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	j.RecordDoc(3, true, nil)
	j.Close()
	if _, err := OpenJournal(path, "fp-b"); err == nil ||
		!strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}

func TestJournalTornTailIsRepaired(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	j.RecordDoc(0, true, []relation.Tuple{{Rel: relation.ND, Arg1: "quake", Arg2: "lima"}})
	j.RecordDoc(1, false, nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a SIGKILL mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := `{"kind":"doc","doc":2,"use`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	r, err := OpenJournal(path, "fp")
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if n := r.Entries(); n != 2 {
		t.Fatalf("Entries = %d, want 2 (torn record dropped)", n)
	}
	// The tail must have been physically truncated so appends are clean.
	r.RecordDoc(2, true, nil)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size()+int64(len(torn)) {
		t.Fatalf("torn bytes not removed: size %d -> %d", before.Size(), after.Size())
	}
	r2, err := OpenJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if e, ok := r2.Lookup(2); !ok || !e.Useful {
		t.Fatalf("record appended after repair not readable: %+v ok=%v", e, ok)
	}
}

func TestJournalMidFileCorruptionIsFatal(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	j.RecordDoc(0, true, nil)
	j.Close()
	data, _ := os.ReadFile(path)
	corrupted := strings.Replace(string(data), `"kind":"doc"`, `"kind":"doc`, 1) +
		`{"kind":"doc","doc":9}` + "\n"
	os.WriteFile(path, []byte(corrupted), 0o644)
	if _, err := OpenJournal(path, "fp"); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestJournalDedupesRereplayedRecords(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		j.RecordDoc(0, true, nil) // replay writes the same doc repeatedly
		j.RecordSkip(0, "poisoned")
	}
	j.Close()
	data, _ := os.ReadFile(path)
	if n := strings.Count(string(data), "\n"); n != 2 { // header + one doc
		t.Fatalf("journal lines = %d, want 2", n)
	}
}

func TestJournalResumeMissingFileStartsFresh(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	j.RecordDoc(1, true, nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Lookup(1); !ok {
		t.Fatal("record lost across fresh-start journal")
	}
}

func TestSaveLoadLabels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.journal")
	src := &Labels{
		rel:    relation.DO,
		useful: make([]bool, 10),
		tuples: make(map[corpus.DocID][]relation.Tuple),
	}
	src.useful[2] = true
	src.tuples[2] = []relation.Tuple{{Rel: relation.DO, Arg1: "flu", Arg2: "2009"}}
	src.useful[5] = true
	src.tuples[5] = []relation.Tuple{{Rel: relation.DO, Arg1: "ebola", Arg2: "2014"}}
	src.numUseful = 2

	if err := SaveLabels(path, "labels-fp", src); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLabels(path, "labels-fp", relation.DO, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUseful() != 2 || !got.Useful(2) || !got.Useful(5) || got.Useful(3) {
		t.Fatalf("loaded labels wrong: numUseful=%d", got.NumUseful())
	}
	if ts := got.Tuples(5); len(ts) != 1 || ts[0].Arg1 != "ebola" {
		t.Fatalf("tuples for doc 5 = %v", ts)
	}
	if _, err := LoadLabels(path, "other-fp", relation.DO, 10); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
}

// LoadLabels on a missing file must error, not inherit OpenJournal's
// create-on-missing resume semantics: an empty label cache would mark
// every document useless.
func TestLoadLabelsMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.journal")
	if _, err := LoadLabels(path, "labels-fp", relation.DO, 10); err == nil {
		t.Fatal("missing label cache loaded as empty labels")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed load left a file behind")
	}
}
