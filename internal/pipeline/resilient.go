package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/extract"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/relation"
)

// ContextOracle is the fault-aware extension of Oracle: labelling that
// can be cancelled, time out, or fail. The pipeline prefers it when the
// configured oracle implements it; errors from LabelContext drive the
// skip-and-requeue policy of the extraction loop.
type ContextOracle interface {
	Oracle
	// LabelContext labels d, honouring ctx. The returned error is nil
	// for a final answer; ErrBreakerOpen-wrapped errors mean "try again
	// later" (the pipeline requeues the document), any other error is
	// permanent for this run (the pipeline skips the document).
	LabelContext(ctx context.Context, d *corpus.Document) (useful bool, tuples []relation.Tuple, err error)
}

// Sentinel errors of the resilience layer.
var (
	// ErrDocPoisoned marks a document whose extraction failed on every
	// allowed attempt: retrying cannot help within this run.
	ErrDocPoisoned = errors.New("pipeline: document poisoned")
	// ErrBreakerOpen marks a fast-failed labelling call while the
	// circuit breaker is open: the document itself was never tried and
	// should be requeued.
	ErrBreakerOpen = errors.New("pipeline: circuit breaker open")
)

// labelWithContext routes one labelling call through the fault-aware
// path when the oracle supports it.
func labelWithContext(ctx context.Context, o Oracle, d *corpus.Document) (bool, []relation.Tuple, error) {
	if co, ok := o.(ContextOracle); ok {
		return co.LabelContext(ctx, d)
	}
	if err := ctx.Err(); err != nil {
		return false, nil, err
	}
	useful, tuples := o.Label(d)
	return useful, tuples, nil
}

// ResilientOptions tunes the retry/backoff/breaker behaviour of a
// Resilient oracle. The defaults favour determinism and fast tests;
// production deployments against a remote extraction service would raise
// the timeout and backoff caps.
type ResilientOptions struct {
	// MaxAttempts bounds the extraction attempts per document per
	// labelling call (default 4). When all fail, the call returns an
	// ErrDocPoisoned-wrapped error and the pipeline skips the document.
	MaxAttempts int
	// AttemptTimeout bounds one extraction attempt (default 2s; <0
	// disables). A hung extractor attempt is abandoned when it expires —
	// note that an attempt which ignores its context then leaks a
	// goroutine until it returns on its own; bounded-hang fault models
	// (extract.Flaky) always return.
	AttemptTimeout time.Duration
	// BaseBackoff is the delay before the second attempt; each further
	// retry doubles it, capped at MaxBackoff, with ±50% deterministic
	// jitter from JitterSeed. Defaults: 5ms base, 500ms cap.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter (default 1).
	JitterSeed int64
	// BreakerThreshold is the number of consecutive failed attempts that
	// opens the circuit breaker (default 8; <0 disables the breaker).
	// While open, labelling calls fail fast with ErrBreakerOpen instead
	// of hammering a down backend.
	BreakerThreshold int
	// BreakerCooldown is how many fast-failed calls the open breaker
	// absorbs before letting one probe through (half-open); a successful
	// probe closes the breaker, a failed one re-opens it (default 16).
	// Counting calls instead of wall-clock time keeps runs depending
	// only on the event sequence, never on scheduling.
	BreakerCooldown int
	// Sleep replaces time.Sleep between retries (tests capture backoffs
	// with it); nil uses time.Sleep.
	Sleep func(time.Duration)
}

func (o *ResilientOptions) defaults() {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.AttemptTimeout == 0 {
		o.AttemptTimeout = 2 * time.Second
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 5 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 500 * time.Millisecond
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 8
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 16
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Resilient wraps a labelling oracle with the fault-tolerance stack a
// black-box extraction system needs in production: per-attempt timeout,
// capped exponential backoff with seeded jitter, panic recovery, and a
// consecutive-failure circuit breaker with call-counted half-open
// probing. Every fault, retry, and breaker transition is published as
// obs counters and trace events, so the SLO watchdog's fault-rate rule
// (obs.RuleFaultRate) sees the extractor degrading in real time.
type Resilient struct {
	inner Oracle
	opts  ResilientOptions

	mu          sync.Mutex
	rng         *rand.Rand
	state       int
	consecFails int
	openCalls   int

	rec       obs.Recorder
	cFaults   *obs.Counter
	cPanics   *obs.Counter
	cTimeouts *obs.Counter
	cRetries  *obs.Counter
	cPoisoned *obs.Counter
	cTrips    *obs.Counter
	cFastFail *obs.Counter
}

// NewResilient wraps inner. Instrument attaches metrics and tracing; an
// un-instrumented Resilient pays only no-op instrument writes.
func NewResilient(inner Oracle, opts ResilientOptions) *Resilient {
	opts.defaults()
	r := &Resilient{
		inner: inner, opts: opts,
		rng: rand.New(rand.NewSource(opts.JitterSeed)),
	}
	r.Instrument(nil, obs.Nop())
	return r
}

// Instrument implements obs.Instrumentable.
func (r *Resilient) Instrument(reg *obs.Registry, rec obs.Recorder) {
	r.rec = rec
	r.cFaults = reg.Counter(obs.MetricResilienceFaults)
	r.cPanics = reg.Counter(obs.MetricResiliencePanicsRecovered)
	r.cTimeouts = reg.Counter(obs.MetricResilienceTimeouts)
	r.cRetries = reg.Counter(obs.MetricResilienceRetries)
	r.cPoisoned = reg.Counter(obs.MetricResilienceDocsPoisoned)
	r.cTrips = reg.Counter(obs.MetricResilienceBreakerTrips)
	r.cFastFail = reg.Counter(obs.MetricResilienceBreakerFastFails)
	// Forward to the wrapped oracle so a whole chain instruments with
	// one call.
	if in, ok := r.inner.(obs.Instrumentable); ok {
		in.Instrument(reg, rec)
	}
}

// Label implements Oracle for fault-unaware callers.
func (r *Resilient) Label(d *corpus.Document) (bool, []relation.Tuple) {
	//lint:allow ctxflow compat shim: the Oracle interface has no ctx to thread
	useful, tuples, _ := r.LabelContext(context.Background(), d)
	return useful, tuples
}

// TotalUseful implements Oracle.
func (r *Resilient) TotalUseful() (int, bool) { return r.inner.TotalUseful() }

// LabelContext implements ContextOracle: it retries transient extractor
// failures with backoff, converts panics and timeouts into retryable
// errors, and fails fast while the circuit breaker is open.
func (r *Resilient) LabelContext(ctx context.Context, d *corpus.Document) (bool, []relation.Tuple, error) {
	if !r.breakerAllow() {
		r.cFastFail.Inc()
		if r.rec.Enabled() {
			r.rec.Record(obs.Event{Kind: obs.KindExtractFault, Doc: int64(d.ID), Name: obs.FaultBreakerOpen})
		}
		return false, nil, fmt.Errorf("doc %d: %w", d.ID, ErrBreakerOpen)
	}
	var lastErr error
	for attempt := 1; attempt <= r.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return false, nil, err
		}
		useful, tuples, err := r.attempt(ctx, d)
		if err == nil {
			r.breakerSuccess()
			return useful, tuples, nil
		}
		if ctx.Err() != nil {
			// The run is being cancelled: surface the cancellation, not
			// the attempt failure, and do not count it against the doc.
			return false, nil, ctx.Err()
		}
		lastErr = err
		class := obs.FaultError
		switch {
		case errors.Is(err, errAttemptPanic):
			class = obs.FaultPanic
			r.cPanics.Inc()
		case errors.Is(err, context.DeadlineExceeded):
			class = obs.FaultTimeout
			r.cTimeouts.Inc()
		}
		r.cFaults.Inc()
		if r.rec.Enabled() {
			r.rec.Record(obs.Event{Kind: obs.KindExtractFault, Doc: int64(d.ID), Name: class, N: attempt})
		}
		r.breakerFailure(d)
		if attempt < r.opts.MaxAttempts {
			backoff := r.backoff(attempt)
			r.cRetries.Inc()
			if r.rec.Enabled() {
				r.rec.Record(obs.Event{Kind: obs.KindExtractRetry, Doc: int64(d.ID), N: attempt, Dur: backoff})
			}
			r.opts.Sleep(backoff)
		}
	}
	r.cPoisoned.Inc()
	return false, nil, fmt.Errorf("doc %d: %d attempts failed, last: %v: %w",
		d.ID, r.opts.MaxAttempts, lastErr, ErrDocPoisoned)
}

// errAttemptPanic marks an attempt error that originated as a panic.
var errAttemptPanic = errors.New("extractor panicked")

// attempt runs one labelling attempt with panic recovery and the
// per-attempt timeout.
func (r *Resilient) attempt(ctx context.Context, d *corpus.Document) (useful bool, tuples []relation.Tuple, err error) {
	if r.opts.AttemptTimeout <= 0 {
		return r.guarded(ctx, d)
	}
	actx, cancel := context.WithTimeout(ctx, r.opts.AttemptTimeout)
	defer cancel()
	type outcome struct {
		useful bool
		tuples []relation.Tuple
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		u, ts, err := r.guarded(actx, d)
		ch <- outcome{u, ts, err}
	}()
	select {
	case o := <-ch:
		// An attempt that failed because its own deadline fired reports
		// DeadlineExceeded, which LabelContext classifies as a timeout.
		return o.useful, o.tuples, o.err
	case <-actx.Done():
		// The attempt is still running: abandon it. If it ignores its
		// context it leaks a goroutine until it returns on its own.
		return false, nil, actx.Err()
	}
}

// guarded is one labelling call with panic recovery.
func (r *Resilient) guarded(ctx context.Context, d *corpus.Document) (useful bool, tuples []relation.Tuple, err error) {
	defer func() {
		if p := recover(); p != nil {
			useful, tuples = false, nil
			err = fmt.Errorf("doc %d: %w: %v", d.ID, errAttemptPanic, p)
		}
	}()
	return labelWithContext(ctx, r.inner, d)
}

// backoff computes the capped, jittered exponential delay after attempt.
func (r *Resilient) backoff(attempt int) time.Duration {
	d := r.opts.BaseBackoff << (attempt - 1)
	if d > r.opts.MaxBackoff || d <= 0 {
		d = r.opts.MaxBackoff
	}
	// ±50% jitter: [d/2, d), deterministic from JitterSeed.
	r.mu.Lock()
	j := r.rng.Int63n(int64(d)/2 + 1)
	r.mu.Unlock()
	return d/2 + time.Duration(j)
}

// breakerAllow reports whether a labelling call may proceed, advancing
// the open breaker toward its half-open probe.
func (r *Resilient) breakerAllow() bool {
	if r.opts.BreakerThreshold < 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case breakerClosed:
		return true
	case breakerOpen:
		r.openCalls++
		if r.openCalls >= r.opts.BreakerCooldown {
			r.state = breakerHalfOpen
			r.transitionLocked(obs.BreakerHalfOpen)
			return true // this call is the probe
		}
		return false
	default: // half-open: one probe in flight
		return false
	}
}

func (r *Resilient) breakerSuccess() {
	if r.opts.BreakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails = 0
	if r.state != breakerClosed {
		r.state = breakerClosed
		r.transitionLocked(obs.BreakerClosed)
	}
}

func (r *Resilient) breakerFailure(d *corpus.Document) {
	if r.opts.BreakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails++
	switch {
	case r.state == breakerHalfOpen:
		// Failed probe: straight back to open.
		r.state = breakerOpen
		r.openCalls = 0
		r.transitionLocked(obs.BreakerOpen)
	case r.state == breakerClosed && r.consecFails >= r.opts.BreakerThreshold:
		r.state = breakerOpen
		r.openCalls = 0
		r.cTrips.Inc()
		r.transitionLocked(obs.BreakerOpen)
	}
}

// transitionLocked publishes a breaker state change (mu held).
func (r *Resilient) transitionLocked(state string) {
	if r.rec.Enabled() {
		r.rec.Record(obs.Event{Kind: obs.KindBreaker, Name: state, N: r.consecFails})
	}
}

// BreakerState reports the current breaker state for tests and health
// endpoints: "closed", "open", or "half-open".
func (r *Resilient) BreakerState() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case breakerOpen:
		return obs.BreakerOpen
	case breakerHalfOpen:
		return obs.BreakerHalfOpen
	}
	return obs.BreakerClosed
}

// ExtractorOracle adapts a black-box extract.Extractor to the
// (Context)Oracle interfaces: the base of the live labelling chain.
// TotalUseful is unknown for live extraction, so recall-based metrics
// are skipped unless labels are precomputed.
type ExtractorOracle struct {
	Ex extract.Extractor
}

// Label implements Oracle.
func (o *ExtractorOracle) Label(d *corpus.Document) (bool, []relation.Tuple) {
	ts := o.Ex.Extract(d)
	return len(ts) > 0, ts
}

// LabelContext implements ContextOracle through the extractor's
// fault-aware path when it has one.
func (o *ExtractorOracle) LabelContext(ctx context.Context, d *corpus.Document) (bool, []relation.Tuple, error) {
	ts, err := extract.ExtractContext(ctx, o.Ex, d)
	if err != nil {
		return false, nil, err
	}
	return len(ts) > 0, ts, nil
}

// TotalUseful implements Oracle.
func (o *ExtractorOracle) TotalUseful() (int, bool) { return 0, false }
