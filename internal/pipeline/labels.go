// Package pipeline implements the end-to-end adaptive extraction loop of
// Figure 2: initial sampling and labelling, ranking generation, in-order
// tuple extraction, update detection, and periodic model updates with
// document re-ranking — over both document-access scenarios (full access
// and search-interface access).
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/extract"
	"adaptiverank/internal/relation"
)

// Oracle supplies extraction outcomes for documents as the pipeline
// processes them. Labels (precomputed, for experiments) and live
// extractor-backed implementations (the public API) both satisfy it.
type Oracle interface {
	// Label returns whether the document yields tuples, and the tuples.
	Label(d *corpus.Document) (useful bool, tuples []relation.Tuple)
	// TotalUseful returns the number of useful documents in the whole
	// collection when known (precomputed labels); ok=false otherwise,
	// in which case recall-based metrics are skipped.
	TotalUseful() (n int, ok bool)
}

// Labels holds the oracle extraction outcome for every document of a
// collection: whether the extraction system produces tuples for it, and
// which tuples. The pipeline consults it when a document is "processed"
// (the extraction itself is deterministic, so precomputing it once per
// (relation, collection) pair is equivalent to re-running the extractor,
// at a fraction of the wall-clock cost; the extraction CPU cost is
// accounted separately via the simulated cost model).
type Labels struct {
	rel       relation.Relation
	useful    []bool
	tuples    map[corpus.DocID][]relation.Tuple
	numUseful int
}

// ComputeLabels runs the extraction system over every document. Documents
// are processed in parallel: the built-in extractors are read-only at
// inference time, and each document is handled by exactly one goroutine.
// It panics if the extractor fails on any document; use
// ComputeLabelsContext for the error-returning, cancellable form.
func ComputeLabels(e extract.Extractor, coll *corpus.Collection) *Labels {
	//lint:allow ctxflow compat shim: the panicking legacy entry point has no ctx to thread
	l, err := ComputeLabelsContext(context.Background(), e, coll)
	if err != nil {
		panic(err)
	}
	return l
}

// ComputeLabelsContext is ComputeLabels with cancellation and fault
// attribution: a panic inside the extractor is recovered in the worker
// goroutine (where it would otherwise kill the whole process) and
// reported as an error naming the offending document; cancelling ctx
// stops the remaining work and returns ctx.Err().
func ComputeLabelsContext(ctx context.Context, e extract.Extractor, coll *corpus.Collection) (*Labels, error) {
	l := &Labels{
		rel:    e.Relation(),
		useful: make([]bool, coll.Len()),
		tuples: make(map[corpus.DocID][]relation.Tuple),
	}
	docs := coll.Docs()
	results := make([][]relation.Tuple, len(docs))
	errs := make([]error, len(docs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers < 1 {
		workers = 1
	}
	extractOne := func(i int) (ts []relation.Tuple, err error) {
		defer func() {
			if p := recover(); p != nil {
				ts, err = nil, fmt.Errorf("pipeline: extractor panicked on doc %d: %v", docs[i].ID, p)
			}
		}()
		return extract.ExtractContext(ctx, e, docs[i])
	}
	var wg sync.WaitGroup
	chunk := (len(docs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(docs) {
			hi = len(docs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					return
				}
				results[i], errs[i] = extractOne(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: labelling doc %d: %w", docs[i].ID, err)
		}
	}
	for i, ts := range results {
		if len(ts) > 0 {
			id := docs[i].ID
			l.useful[id] = true
			l.tuples[id] = ts
			l.numUseful++
		}
	}
	return l, nil
}

// Useful reports the oracle usefulness of a document.
func (l *Labels) Useful(id corpus.DocID) bool { return l.useful[id] }

// Tuples returns the tuples extracted from a document (nil when useless).
func (l *Labels) Tuples(id corpus.DocID) []relation.Tuple { return l.tuples[id] }

// NumUseful is the number of useful documents in the collection — the
// denominator of the recall metric.
func (l *Labels) NumUseful() int { return l.numUseful }

// Len is the collection size.
func (l *Labels) Len() int { return len(l.useful) }

// Relation identifies the extraction task.
func (l *Labels) Relation() relation.Relation { return l.rel }

// Label implements Oracle.
func (l *Labels) Label(d *corpus.Document) (bool, []relation.Tuple) {
	return l.useful[d.ID], l.tuples[d.ID]
}

// TotalUseful implements Oracle.
func (l *Labels) TotalUseful() (int, bool) { return l.numUseful, true }

type labelKey struct {
	rel  relation.Relation
	coll *corpus.Collection
}

var labelCache sync.Map // labelKey -> *Labels

// LabelsFor returns cached labels for (rel, coll), computing them on first
// use. The cache is keyed by collection identity, so prefix views must
// pass the *same* underlying collection and restrict afterwards.
func LabelsFor(rel relation.Relation, coll *corpus.Collection) *Labels {
	key := labelKey{rel, coll}
	if v, ok := labelCache.Load(key); ok {
		return v.(*Labels)
	}
	l := ComputeLabels(extract.Get(rel), coll)
	v, _ := labelCache.LoadOrStore(key, l)
	return v.(*Labels)
}

// Restrict returns a view of l limited to the first n documents (for the
// scalability experiments over growing collection prefixes).
func (l *Labels) Restrict(n int) *Labels {
	if n >= len(l.useful) {
		return l
	}
	r := &Labels{rel: l.rel, useful: l.useful[:n], tuples: l.tuples}
	for i := 0; i < n; i++ {
		if l.useful[i] {
			r.numUseful++
		}
	}
	return r
}
