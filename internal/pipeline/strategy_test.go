package pipeline

import (
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
)

func ld(text string, useful bool, tuples ...relation.Tuple) LabeledDoc {
	return LabeledDoc{
		Doc:    &corpus.Document{ID: corpus.DocID(len(text)), Text: text},
		Useful: useful,
		Tuples: tuples,
	}
}

func TestLearnedInitTrainsRanker(t *testing.T) {
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 1})
	s := NewLearned(r, feat)
	sample := []LabeledDoc{
		ld("lava ash crater eruption", true,
			relation.Tuple{Rel: relation.ND, Arg1: "eruption", Arg2: "Hilo"}),
		ld("recipe garlic simmer oven", false),
	}
	s.Init(sample)
	if r.Steps() == 0 {
		t.Fatal("Init must train the ranker")
	}
	useful := &corpus.Document{ID: 50, Text: "lava ash eruption plume"}
	useless := &corpus.Document{ID: 51, Text: "recipe garlic broth oven"}
	if s.Score(useful) <= s.Score(useless) {
		t.Error("trained strategy must prefer the useful-looking document")
	}
}

func TestLearnedPlainTrainingSkipsBoost(t *testing.T) {
	// With PlainTraining, tuple attributes must not enter training
	// features: two strategies trained on the same docs but different
	// tuple lists must have identical models.
	mk := func(tuples []relation.Tuple) *ranking.RSVMIE {
		feat := ranking.NewFeaturizer()
		r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 2})
		s := NewLearned(r, feat)
		s.PlainTraining = true
		s.Init([]LabeledDoc{
			ld("lava ash crater", true, tuples...),
			ld("recipe garlic simmer", false),
		})
		return r
	}
	a := mk(nil)
	b := mk([]relation.Tuple{{Rel: relation.ND, Arg1: "lava", Arg2: "Hilo"}})
	if !a.Model().ToSparse().Equal(b.Model().ToSparse()) {
		t.Error("PlainTraining must ignore tuple attributes")
	}
}

func TestLearnedObserveNeverSelfReranks(t *testing.T) {
	s := NewLearned(ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 3}), ranking.NewFeaturizer())
	if s.Observe(ld("anything", true)) {
		t.Error("learned strategies only change at detector-triggered updates")
	}
}

func TestLearnedUpdateFoldsBuffer(t *testing.T) {
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 4})
	s := NewLearned(r, feat)
	s.Init([]LabeledDoc{ld("seed text useful", true), ld("seed text useless", false)})
	before := r.Steps()
	s.Update([]LabeledDoc{ld("fresh evidence words", true), ld("other words", false)})
	if r.Steps() <= before {
		t.Error("Update must perform online steps")
	}
}

func TestPerfectStrategyScores(t *testing.T) {
	l := &Labels{useful: []bool{true, false}, tuples: map[corpus.DocID][]relation.Tuple{}}
	l.numUseful = 1
	p := &Perfect{L: l}
	if p.Score(&corpus.Document{ID: 0}) != 1 || p.Score(&corpus.Document{ID: 1}) != 0 {
		t.Error("Perfect must score by oracle usefulness")
	}
	if p.Name() != "Perfect" {
		t.Error("name")
	}
	if p.Observe(LabeledDoc{}) {
		t.Error("Perfect never reranks")
	}
}

func TestModelerExposure(t *testing.T) {
	s := NewLearned(ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 5}), ranking.NewFeaturizer())
	var m Modeler = s
	if m.Model() == nil {
		t.Error("learned strategy must expose its model")
	}
	var _ Strategy = s
	var _ Strategy = &Perfect{}
	var _ Strategy = &FCStrategy{}
}
