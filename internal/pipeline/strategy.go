package pipeline

import (
	"sync"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/factcrawl"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/vector"
)

// LabeledDoc is a processed document together with its extraction outcome.
type LabeledDoc struct {
	Doc    *corpus.Document
	Useful bool
	Tuples []relation.Tuple
}

// Strategy is a document-prioritization approach the pipeline can execute:
// the learned rankers (BAgg-IE, RSVM-IE), the FactCrawl baselines, and the
// Random/Perfect references all implement it.
type Strategy interface {
	// Name identifies the approach in results.
	Name() string
	// Init trains the initial model from the labelled document sample.
	Init(sample []LabeledDoc)
	// Score predicts the usefulness of a pending document.
	Score(d *corpus.Document) float64
	// Observe records a freshly processed document. It returns true when
	// the strategy changed its scores on its own and the pending
	// documents should be re-ranked now (A-FC re-ranks continuously;
	// learned strategies only change at detector-triggered updates).
	Observe(ld LabeledDoc) bool
	// Update folds the buffered documents processed since the last update
	// into the model; the pipeline calls it when the update detector
	// fires.
	Update(buffered []LabeledDoc)
}

// Modeler is implemented by strategies whose ranking is defined by a
// linear weight vector; update detection (Mod-C) and the search-interface
// query generation read it.
type Modeler interface {
	Model() *vector.Weights
}

// DocAttributor is implemented by strategies that can decompose a
// document's score into exact per-feature contributions (see
// ranking.Attribution); the explain substrate samples it for the
// top-ranked documents after each (re-)ranking.
type DocAttributor interface {
	Attribute(d *corpus.Document) (ranking.Attribution, bool)
}

// Learned wraps a ranking.Ranker (plus the shared featurizer) as a
// Strategy. This is the paper's approach: the ranker learns online from
// each labelled document presented to it; the pipeline decides *when* to
// present the buffered documents (the Update Detection step).
type Learned struct {
	R ranking.Ranker
	F *ranking.Featurizer
	// PlainTraining disables the tuple-attribute feature boost during
	// training (an ablation of the paper's "words as well as the
	// attribute values of tuples" feature design).
	PlainTraining bool
}

// NewLearned builds the strategy.
func NewLearned(r ranking.Ranker, f *ranking.Featurizer) *Learned {
	return &Learned{R: r, F: f}
}

// Name implements Strategy.
func (s *Learned) Name() string { return s.R.Name() }

// trainFeatures picks the training representation.
func (s *Learned) trainFeatures(ld LabeledDoc) vector.Sparse {
	if s.PlainTraining {
		return s.F.Features(ld.Doc)
	}
	return s.F.TrainingFeatures(ld.Doc, ld.Tuples)
}

// Init implements Strategy: the initial ranking model is trained on the
// sample, using tuple-attribute-boosted training features.
func (s *Learned) Init(sample []LabeledDoc) {
	for _, ld := range sample {
		s.R.Learn(s.trainFeatures(ld), ld.Useful)
	}
}

// Score implements Strategy. Rankers with a packed fast path
// (ranking.PackedScorer) are scored through it on the zero-copy packed
// view of the cached feature vector; the result is bitwise identical to
// the map-based Score, so per-document scoring (the batch panic
// fallback) and batch scoring are interchangeable mid-run.
func (s *Learned) Score(d *corpus.Document) float64 {
	if ps, ok := s.R.(ranking.PackedScorer); ok {
		return ps.ScorePacked(s.F.FeaturesPacked(d))
	}
	return s.R.Score(s.F.Features(d))
}

// BatchScorer is implemented by strategies with an allocation-free batch
// scoring fast path. ScoreBatch reports false when the strategy cannot
// batch-score (e.g. a Learned wrapping a ranker without a packed path);
// the caller then falls back to per-document Score. When it reports
// true, out[i] holds the score of docs[i] and is bitwise identical to
// Score(docs[i]).
type BatchScorer interface {
	ScoreBatch(docs []*corpus.Document, out []float64) bool
}

// packedScratch is the reusable per-batch buffer of packed feature views;
// a sync.Pool recycles it across the pipeline's score workers so
// steady-state batch scoring allocates nothing per chunk.
type packedScratch struct {
	xs []vector.Packed
}

// The pooled scratch holds only per-batch views, fully overwritten
// before each use; the detrand allow directives at the Get/Put sites
// below carry the determinism argument.
var scratchPool = sync.Pool{New: func() any { return new(packedScratch) }}

// ScoreBatch implements BatchScorer: featurize docs into a pooled slice
// of packed views and score them through the ranker's batch fast path.
// The scratch is cleared before being returned to the pool so it does not
// retain references to a finished run's feature cache.
func (s *Learned) ScoreBatch(docs []*corpus.Document, out []float64) bool {
	ps, ok := s.R.(ranking.PackedScorer)
	if !ok {
		return false
	}
	//lint:allow detrand pool reuse only affects buffer identity, never score values
	sc := scratchPool.Get().(*packedScratch)
	xs := sc.xs[:0]
	for _, d := range docs {
		xs = append(xs, s.F.FeaturesPacked(d))
	}
	ps.ScoreBatch(xs, out)
	clear(xs)
	sc.xs = xs[:0]
	//lint:allow detrand pool reuse only affects buffer identity, never score values
	scratchPool.Put(sc)
	return true
}

// Observe implements Strategy: learned models only change at updates.
func (s *Learned) Observe(LabeledDoc) bool { return false }

// Update implements Strategy: feed the buffered documents to the online
// learner (no retraining from scratch).
func (s *Learned) Update(buffered []LabeledDoc) {
	for _, ld := range buffered {
		s.R.Learn(s.trainFeatures(ld), ld.Useful)
	}
}

// Model implements Modeler.
func (s *Learned) Model() *vector.Weights { return s.R.Model() }

// Attribute implements DocAttributor: decompose the document's score
// into exact per-feature contributions through the ranker's attribution
// path. It reports false when the wrapped ranker cannot attribute
// (no linear members). The packed feature view is the same one scoring
// uses, so Attribution.Score is bitwise identical to Score(d).
func (s *Learned) Attribute(d *corpus.Document) (ranking.Attribution, bool) {
	at, ok := s.R.(ranking.Attributor)
	if !ok {
		return ranking.Attribution{}, false
	}
	return at.Attribute(s.F.FeaturesPacked(d)), true
}

// Instrument implements obs.Instrumentable by forwarding to the wrapped
// ranker when it is itself instrumentable.
func (s *Learned) Instrument(reg *obs.Registry, rec obs.Recorder) {
	if in, ok := s.R.(obs.Instrumentable); ok {
		in.Instrument(reg, rec)
	}
}

// InstrumentTracer implements obs.TraceInstrumentable by forwarding the
// span tracer to the wrapped ranker.
func (s *Learned) InstrumentTracer(tr *obs.Tracer) {
	if in, ok := s.R.(obs.TraceInstrumentable); ok {
		in.InstrumentTracer(tr)
	}
}

// Perfect is the perfect-ordering reference: it scores documents by their
// oracle usefulness.
type Perfect struct {
	L *Labels
}

// Name implements Strategy.
func (p *Perfect) Name() string { return "Perfect" }

// Init implements Strategy (no-op).
func (p *Perfect) Init([]LabeledDoc) {}

// Score implements Strategy.
func (p *Perfect) Score(d *corpus.Document) float64 {
	if p.L.Useful(d.ID) {
		return 1
	}
	return 0
}

// Observe implements Strategy (no-op).
func (p *Perfect) Observe(LabeledDoc) bool { return false }

// Update implements Strategy (no-op).
func (p *Perfect) Update([]LabeledDoc) {}

// FCStrategy adapts the FactCrawl scorer (base or adaptive) to the
// Strategy interface.
type FCStrategy struct {
	FC *factcrawl.FC
	// RerankEvery batches A-FC's re-ranking to every n-th document
	// (1 = the paper's literal per-document behaviour).
	RerankEvery int
	sinceRerank int
}

// NewFCStrategy wraps fc.
func NewFCStrategy(fc *factcrawl.FC, rerankEvery int) *FCStrategy {
	if rerankEvery < 1 {
		rerankEvery = 1
	}
	return &FCStrategy{FC: fc, RerankEvery: rerankEvery}
}

// Name implements Strategy.
func (s *FCStrategy) Name() string { return s.FC.Name() }

// Init implements Strategy: estimate initial query quality from the sample.
func (s *FCStrategy) Init(sample []LabeledDoc) {
	docs := make([]*corpus.Document, len(sample))
	useful := make(map[corpus.DocID]bool, len(sample))
	for i, ld := range sample {
		docs[i] = ld.Doc
		useful[ld.Doc.ID] = ld.Useful
	}
	s.FC.Prime(docs, func(id corpus.DocID) bool { return useful[id] })
}

// Score implements Strategy.
func (s *FCStrategy) Score(d *corpus.Document) float64 { return s.FC.Score(d) }

// Observe implements Strategy.
func (s *FCStrategy) Observe(ld LabeledDoc) bool {
	changed := s.FC.Observe(ld.Doc, ld.Useful)
	if !changed {
		return false
	}
	s.sinceRerank++
	if s.sinceRerank >= s.RerankEvery {
		s.sinceRerank = 0
		return true
	}
	return false
}

// Update implements Strategy: A-FC updates itself in Observe.
func (s *FCStrategy) Update([]LabeledDoc) {}
