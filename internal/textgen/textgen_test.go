package textgen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"adaptiverank/internal/relation"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(42, 200)
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Docs()[i].Text != b.Docs()[i].Text {
			t.Fatalf("document %d differs between identical configs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(DefaultConfig(1, 50))
	b, _ := Generate(DefaultConfig(2, 50))
	same := 0
	for i := 0; i < 50; i++ {
		if a.Docs()[i].Text == b.Docs()[i].Text {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical corpora")
	}
}

func TestPlantedDensitiesTrackTargets(t *testing.T) {
	cfg := DefaultConfig(7, 8000)
	_, gt := Generate(cfg)
	for _, r := range relation.All() {
		want := r.Density() * cfg.PlantBoost
		if o, ok := cfg.DensityOverride[r]; ok {
			want = o * cfg.PlantBoost
		}
		got := float64(len(gt.Planted[r])) / 8000
		// Allow 3.5 standard deviations of binomial noise.
		sd := math.Sqrt(want * (1 - want) / 8000)
		if math.Abs(got-want) > 3.5*sd+1e-9 {
			t.Errorf("%s planted density = %.4f, want %.4f ± %.4f", r.Code(), got, want, 3.5*sd)
		}
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	_, gt := Generate(DefaultConfig(3, 2000))
	for _, r := range relation.All() {
		seen := map[int32]bool{}
		for _, id := range gt.Planted[r] {
			if seen[int32(id)] {
				t.Errorf("%s: document %d planted twice", r.Code(), id)
			}
			seen[int32(id)] = true
			if gt.SubTopics[r][id] == "" {
				t.Errorf("%s: planted document %d has no sub-topic", r.Code(), id)
			}
		}
		for id := range gt.EasyPlanted[r] {
			if !seen[int32(id)] {
				t.Errorf("%s: easy-planted document %d not in Planted", r.Code(), id)
			}
		}
	}
}

func TestPlantedTuplesAppearInText(t *testing.T) {
	coll, gt := Generate(DefaultConfig(5, 1500))
	checked := 0
	for id, tuples := range gt.Tuples {
		text := strings.ToLower(coll.Doc(id).Text)
		for _, tu := range tuples {
			checked++
			if !strings.Contains(text, strings.ToLower(tu.Arg1)) {
				t.Errorf("doc %d: planted arg1 %q not in text", id, tu.Arg1)
			}
			if !strings.Contains(text, strings.ToLower(tu.Arg2)) {
				t.Errorf("doc %d: planted arg2 %q not in text", id, tu.Arg2)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no planted tuples generated")
	}
}

func TestSubTopicSkewAndReversal(t *testing.T) {
	count := func(reverse bool) map[string]int {
		cfg := DefaultConfig(11, 12000)
		cfg.SubTopicReverse = reverse
		// Boost ND so the histogram has mass.
		cfg.DensityOverride = map[relation.Relation]float64{relation.ND: 0.2}
		_, gt := Generate(cfg)
		hist := map[string]int{}
		for _, st := range gt.SubTopics[relation.ND] {
			hist[st]++
		}
		return hist
	}
	fwd := count(false)
	rev := count(true)
	first := NDSubTopics[0].Name
	last := NDSubTopics[len(NDSubTopics)-1].Name
	if fwd[first] <= fwd[last] {
		t.Errorf("forward skew: %s=%d should dominate %s=%d", first, fwd[first], last, fwd[last])
	}
	if rev[last] <= rev[first] {
		t.Errorf("reversed skew: %s=%d should dominate %s=%d", last, rev[last], first, rev[first])
	}
}

func TestGenerateSplitsShapes(t *testing.T) {
	sizes := SplitSizes{Train: 50, Dev: 60, Test: 70, TRECLike: 80}
	s := GenerateSplits(1, sizes, DefaultConfig(0, 0))
	if s.Train.Len() != 50 || s.Dev.Len() != 60 || s.Test.Len() != 70 || s.TRECLike.Len() != 80 {
		t.Errorf("split sizes = %d/%d/%d/%d", s.Train.Len(), s.Dev.Len(), s.Test.Len(), s.TRECLike.Len())
	}
	// Splits must differ from each other (different derived seeds).
	if s.Train.Doc(0).Text == s.Dev.Doc(0).Text {
		t.Error("train and dev splits appear identical")
	}
}

func TestSyntheticVocabularyUnique(t *testing.T) {
	coll, _ := Generate(DefaultConfig(1, 10))
	_ = coll
	// Directly exercise the vocabulary builder.
	words := syntheticVocabulary(500, newTestRand())
	seen := map[string]bool{}
	for _, w := range words {
		if seen[w] {
			t.Fatalf("duplicate synthetic word %q", w)
		}
		if len(w) < 4 {
			t.Fatalf("synthetic word %q too short", w)
		}
		seen[w] = true
	}
}

func TestDistractorSentencesCoverAllRelations(t *testing.T) {
	g := &generator{cfg: DefaultConfig(1, 1), rng: newTestRand()}
	for _, r := range relation.All() {
		s := g.distractorSentence(r)
		if len(s) < 10 || !strings.HasSuffix(s, ".") {
			t.Errorf("%s distractor %q malformed", r.Code(), s)
		}
	}
}

func TestRelationSentenceProducesTuple(t *testing.T) {
	g := &generator{cfg: DefaultConfig(2, 1), rng: newTestRand()}
	for _, r := range relation.All() {
		sts := relationSubTopics(r)
		sent, tuple := g.relationSentence(r, sts[0], false)
		if tuple.Rel != r {
			t.Errorf("%s: tuple relation = %v", r.Code(), tuple.Rel)
		}
		low := strings.ToLower(sent)
		if !strings.Contains(low, strings.ToLower(tuple.Arg1)) {
			t.Errorf("%s: sentence %q lacks arg1 %q", r.Code(), sent, tuple.Arg1)
		}
	}
}

func TestGatewordsDeduplicated(t *testing.T) {
	gates := GateWords(PHConstructions)
	seen := map[string]bool{}
	for _, g := range gates {
		if seen[g] {
			t.Errorf("duplicate gate %q", g)
		}
		seen[g] = true
	}
	if len(gates) < 5 {
		t.Errorf("PH gates = %v, want >= 5 distinct triggers", gates)
	}
}

func TestGenerateZeroDocsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NumDocs=0")
		}
	}()
	Generate(Config{NumDocs: 0})
}

// newTestRand returns a deterministic rng for generator-internals tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
