package textgen

// Construction is one surface form that expresses a relation between two
// arguments. The generator instantiates Format with entity strings; the
// extraction systems build their subsequence-kernel exemplars from
// Exemplar and gate on the trigger token. Having one table per relation,
// shared by generator and extractor, models a real extractor whose
// competence covers many constructions — which is exactly what makes
// single-keyword queries low-recall: no individual trigger word appears in
// more than a fraction of the useful documents.
type Construction struct {
	// Format is a fmt template; %[1]s is the relation-specific first
	// entity (person for PH/EW/PC/PO), %[2]s the second (charge,
	// election, career, organization).
	Format string
	// Exemplar is the pair-context pattern for the kernel classifier,
	// with <arg1>/<arg2> denoting the *tuple* argument roles.
	Exemplar string
	// Gate is the trigger token that must appear in a matching context.
	Gate string
}

// PHConstructions are the Person–Charge surface forms (tuple: <person,
// charge>; %[1]s person, %[2]s charge).
var PHConstructions = []Construction{
	{"%[1]s was charged with %[2]s yesterday.", "<arg1> was charged with <arg2> yesterday", "charged"},
	{"%[1]s was indicted on %[2]s charges.", "<arg1> was indicted on <arg2> charges", "indicted"},
	{"Prosecutors accused %[1]s of %[2]s.", "prosecutors accused <arg1> of <arg2>", "accused"},
	{"%[1]s was convicted of %[2]s in court.", "<arg1> was convicted of <arg2> in", "convicted"},
	{"%[1]s was arraigned on %[2]s charges Monday.", "<arg1> was arraigned on <arg2> charges", "arraigned"},
	{"%[1]s pleaded guilty to %[2]s in court.", "<arg1> pleaded guilty to <arg2> in", "pleaded"},
	{"%[1]s faces trial for %[2]s this term.", "<arg1> faces trial for <arg2> this", "faces"},
	{"A jury found %[1]s guilty of %[2]s.", "a jury found <arg1> guilty of <arg2>", "guilty"},
	{"%[1]s was sentenced for %[2]s on Monday.", "<arg1> was sentenced for <arg2> on", "sentenced"},
	{"%[1]s stood trial on %[2]s counts.", "<arg1> stood trial on <arg2> counts", "trial"},
}

// EWConstructions are the Election–Winner surface forms (tuple: <election,
// winner>; %[1]s person, %[2]s election kind).
var EWConstructions = []Construction{
	{"%[1]s won the %[2]s by a wide margin.", "<arg2> won the <arg1> by", "won"},
	{"%[1]s was declared the winner of the %[2]s.", "<arg2> was declared the winner of the <arg1>", "winner"},
	{"Voters chose %[1]s as the winner of the %[2]s.", "voters chose <arg2> as the winner of the <arg1>", "chose"},
	{"%[1]s prevailed in the %[2]s on Tuesday.", "<arg2> prevailed in the <arg1> on", "prevailed"},
	{"%[1]s captured the %[2]s with ease.", "<arg2> captured the <arg1> with", "captured"},
	{"%[1]s clinched the %[2]s late Sunday.", "<arg2> clinched the <arg1> late", "clinched"},
	{"%[1]s triumphed in the %[2]s.", "<arg2> triumphed in the <arg1>", "triumphed"},
	{"%[1]s secured victory in the %[2]s.", "<arg2> secured victory in the <arg1>", "victory"},
}

// PCConstructions are the Person–Career surface forms (tuple: <person,
// career>).
var PCConstructions = []Construction{
	{"%[1]s, a veteran %[2]s, spoke at the event.", "<arg1> a veteran <arg2> spoke", "veteran"},
	{"%[1]s works as a %[2]s in the city.", "<arg1> works as a <arg2> in", "works"},
	{"%[1]s serves as %[2]s for the region.", "<arg1> serves as <arg2> for", "serves"},
	{"%[1]s, the longtime %[2]s, retired quietly.", "<arg1> the longtime <arg2> retired", "longtime"},
	{"%[1]s began a career as a %[2]s.", "<arg1> began a career as a <arg2>", "career"},
	{"%[1]s was appointed %[2]s this spring.", "<arg1> was appointed <arg2> this", "appointed"},
	{"%[1]s earned renown as a %[2]s.", "<arg1> earned renown as a <arg2>", "renown"},
	{"%[1]s, formerly a %[2]s, returned home.", "<arg1> formerly a <arg2> returned", "formerly"},
}

// POPositive and PONegative are the Person–Organization surface forms the
// linear-SVM relation classifier is trained on (%[1]s person, %[2]s
// organization). The generator uses the same tables.
var POPositive = []Construction{
	{"%[1]s joined %[2]s as a senior manager.", "", "joined"},
	{"%[2]s named %[1]s its new director.", "", "named"},
	{"%[1]s works for %[2]s downtown.", "", "works"},
	{"%[2]s hired %[1]s in March.", "", "hired"},
	{"%[1]s was appointed by %[2]s last spring.", "", "appointed"},
	{"%[1]s is a spokesman for %[2]s.", "", "spokesman"},
	{"%[1]s was promoted at %[2]s twice.", "", "promoted"},
	{"%[1]s leads the research team at %[2]s.", "", "leads"},
	{"%[1]s heads the planning office at %[2]s.", "", "heads"},
	{"%[1]s is employed by %[2]s as an analyst.", "", "employed"},
}

// PONegative are person–organization co-occurrences that express no
// affiliation; the classifier learns to reject them.
var PONegative = []Construction{
	{"%[1]s criticized %[2]s at the hearing.", "", "criticized"},
	{"%[1]s toured the offices of %[2]s on Friday.", "", "toured"},
	{"%[1]s walked past %[2]s headquarters yesterday.", "", "walked"},
	{"%[2]s denied claims made by %[1]s last week.", "", "denied"},
	{"%[1]s sued %[2]s over the contract.", "", "sued"},
	{"%[1]s photographed the %[2]s building downtown.", "", "photographed"},
}

// DOTemplates are the Disease–Outbreak surface forms: %[1]s disease,
// %[2]s temporal expression, with the two mentions close enough for the
// distance-based relation predictor.
var DOTemplates = []string{
	"An outbreak of %[1]s was reported %[2]s.",
	"Health officials confirmed %[1]s cases %[2]s.",
	"The %[1]s outbreak began %[2]s, officials said.",
	"Cases of %[1]s surged %[2]s.",
	"An epidemic of %[1]s erupted %[2]s.",
	"Clinics traced new %[1]s infections %[2]s.",
}

// GateWords returns the trigger vocabulary of a construction table, used
// by the distractor generator so that every trigger also appears in
// useless documents.
func GateWords(cs []Construction) []string {
	out := make([]string, 0, len(cs))
	seen := map[string]bool{}
	for _, c := range cs {
		if !seen[c.Gate] {
			seen[c.Gate] = true
			out = append(out, c.Gate)
		}
	}
	return out
}
