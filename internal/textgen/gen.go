// Package textgen generates the synthetic news-style corpus that stands in
// for the NYT Annotated Corpus (and the TREC side collection) of the paper.
// The generator reproduces the statistics the ranking algorithms actually
// consume: per-relation useful-document densities from Table 1, multiple
// vocabulary sub-topics per relation so that small samples miss rare
// sub-topics, a Zipf-distributed shared background vocabulary, and planted
// relation-bearing sentences of varying extractability. See DESIGN.md §2.
package textgen

import (
	"fmt"
	"math/rand"
	"strings"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
)

// Config controls corpus generation. The zero value is not usable; call
// DefaultConfig and adjust.
type Config struct {
	// Seed drives all randomness; equal configs generate equal corpora.
	Seed int64
	// NumDocs is the number of documents to generate.
	NumDocs int
	// PlantBoost multiplies the Table 1 densities to compensate for
	// planted documents whose relation sentences the extractor misses
	// (hard templates), so that the *extracted* useful fraction lands
	// near the Table 1 target.
	PlantBoost float64
	// HardFraction is the probability that a planted relation sentence
	// uses a construction outside the extractor's competence.
	HardFraction float64
	// NoiseTopicProb is the probability that a useless document borrows
	// vocabulary from a relation sub-topic (topical but not useful).
	NoiseTopicProb float64
	// DistractorProb is the per-relation probability that a document
	// carries a distractor sentence: relation trigger/domain vocabulary
	// in a context that yields no tuples. Distractors are what makes
	// keyword retrieval imprecise for extraction (Section 1).
	DistractorProb float64
	// DensityOverride, when non-nil, replaces the Table 1 density for
	// the listed relations (used by small-scale tests).
	DensityOverride map[relation.Relation]float64
	// VocabSize is the size of the synthetic Zipf background vocabulary.
	VocabSize int
	// SubTopicReverse inverts each relation's sub-topic popularity order.
	// The TREC-like side collection sets it so that the sub-topics
	// common there are rare in the test corpus and vice versa —
	// modelling the corpus transfer gap that makes queries learned on
	// one collection miss useful documents in another (Section 1's
	// volcano example).
	SubTopicReverse bool
}

// DefaultConfig returns the configuration used by the experiments.
//
// The DO density is scaled 10x above Table 1: the paper's 0.08% of 1.09M
// test documents is 847 useful documents, while 0.08% of a laptop-scale
// 10k-document collection would be 8 — below any statistical floor. The
// 10x scaling keeps DO the sparsest relation by a wide margin while giving
// the curves enough useful documents to be meaningful (see DESIGN.md §2).
func DefaultConfig(seed int64, numDocs int) Config {
	return Config{
		Seed:           seed,
		NumDocs:        numDocs,
		PlantBoost:     1.15,
		HardFraction:   0.20,
		NoiseTopicProb: 0.12,
		DistractorProb: 0.15,
		VocabSize:      4000,
		DensityOverride: map[relation.Relation]float64{
			relation.DO: 0.008,
		},
	}
}

// GroundTruth records what the generator planted. The pipeline never reads
// it — usefulness is defined by what the extractor finds, as in the paper —
// but tests and diagnostics do.
type GroundTruth struct {
	// Planted maps each relation to the documents that carry planted
	// relation sentences for it.
	Planted map[relation.Relation][]corpus.DocID
	// Tuples maps documents to the tuples their planted sentences express.
	Tuples map[corpus.DocID][]relation.Tuple
	// SubTopics maps (relation, document) to the sub-topic name used.
	SubTopics map[relation.Relation]map[corpus.DocID]string
	// EasyPlanted maps each relation to documents with at least one
	// extractor-friendly planted sentence (the expected useful set).
	EasyPlanted map[relation.Relation]map[corpus.DocID]bool
}

func newGroundTruth() *GroundTruth {
	gt := &GroundTruth{
		Planted:     make(map[relation.Relation][]corpus.DocID),
		Tuples:      make(map[corpus.DocID][]relation.Tuple),
		SubTopics:   make(map[relation.Relation]map[corpus.DocID]string),
		EasyPlanted: make(map[relation.Relation]map[corpus.DocID]bool),
	}
	for _, r := range relation.All() {
		gt.SubTopics[r] = make(map[corpus.DocID]string)
		gt.EasyPlanted[r] = make(map[corpus.DocID]bool)
	}
	return gt
}

// relationSubTopics maps each relation to its sub-topic clusters.
func relationSubTopics(r relation.Relation) []SubTopic {
	switch r {
	case relation.PO:
		return POSubTopics
	case relation.DO:
		return DOSubTopics
	case relation.PC:
		return PCSubTopics
	case relation.ND:
		return NDSubTopics
	case relation.MD:
		return MDSubTopics
	case relation.PH:
		return PHSubTopics
	case relation.EW:
		return EWSubTopics
	}
	panic(fmt.Sprintf("textgen: no sub-topics for relation %v", r))
}

// generator carries the mutable state of one Generate call.
type generator struct {
	cfg   Config
	rng   *rand.Rand
	zipf  *rand.Zipf
	vocab []string
	gt    *GroundTruth
}

// Generate builds a document collection and its ground truth.
func Generate(cfg Config) (*corpus.Collection, *GroundTruth) {
	if cfg.NumDocs <= 0 {
		panic("textgen: Config.NumDocs must be positive")
	}
	if cfg.VocabSize <= 0 {
		cfg.VocabSize = 4000
	}
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		gt:  newGroundTruth(),
	}
	g.vocab = syntheticVocabulary(cfg.VocabSize, g.rng)
	g.zipf = rand.NewZipf(g.rng, 1.07, 1, uint64(cfg.VocabSize-1))

	docs := make([]*corpus.Document, 0, cfg.NumDocs)
	for i := 0; i < cfg.NumDocs; i++ {
		docs = append(docs, g.genDoc(corpus.DocID(i)))
	}
	return corpus.NewCollection(docs), g.gt
}

// density returns the plant probability target for r.
func (g *generator) density(r relation.Relation) float64 {
	d := r.Density()
	if g.cfg.DensityOverride != nil {
		if o, ok := g.cfg.DensityOverride[r]; ok {
			d = o
		}
	}
	return d * g.cfg.PlantBoost
}

// pickSubTopic samples a sub-topic with a skewed (approximately Zipfian)
// distribution so some sub-topics are rare and likely missing from small
// document samples.
func (g *generator) pickSubTopic(sts []SubTopic) int {
	weights := make([]float64, len(sts))
	var total float64
	for i := range sts {
		j := i
		if g.cfg.SubTopicReverse {
			j = len(sts) - 1 - i
		}
		weights[i] = 1 / float64(j+1)
		total += weights[i]
	}
	x := g.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(sts) - 1
}

func (g *generator) zipfWord() string { return g.vocab[g.zipf.Uint64()] }

func (g *generator) pick(list []string) string { return list[g.rng.Intn(len(list))] }

func (g *generator) person() string {
	return g.pick(FirstNames) + " " + g.pick(LastNames)
}

func (g *generator) org() string {
	return g.pick(OrgCores) + " " + g.pick(OrgSuffixes)
}

var months = []string{"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December"}

var weekdays = []string{"Monday", "Tuesday", "Wednesday", "Thursday",
	"Friday", "Saturday", "Sunday"}

// temporal produces a temporal expression recognized by the DO extractor.
func (g *generator) temporal() string {
	switch g.rng.Intn(3) {
	case 0:
		return "in " + g.pick(months)
	case 1:
		return "last " + g.pick(weekdays)
	default:
		return "in early " + g.pick(months)
	}
}

// fillerSentence builds a background prose sentence mixing topic lexicon
// words with Zipf vocabulary.
func (g *generator) fillerSentence(topic SubTopic) string {
	w := func() string {
		if g.rng.Float64() < 0.55 {
			return g.pick(topic.Words)
		}
		return g.zipfWord()
	}
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%s %s the %s and the %s near the %s.",
			capitalize(g.pick(FillerNouns)), g.pick(FillerVerbs), w(), w(), w())
	case 1:
		return fmt.Sprintf("The %s %s a %s of %s on %s.",
			w(), g.pick(FillerVerbs), w(), w(), g.pick(weekdays))
	case 2:
		return fmt.Sprintf("%s %s that the %s was %s despite the %s.",
			capitalize(g.pick(FillerNouns)), g.pick(FillerVerbs), w(), w(), w())
	case 3:
		return fmt.Sprintf("A %s about the %s drew %s from %s.",
			w(), w(), w(), g.pick(FillerNouns))
	default:
		return fmt.Sprintf("In %s, the %s %s the %s again.",
			g.pick(months), w(), g.pick(FillerVerbs), w())
	}
}

// topicSentence emits a sentence dominated by the sub-topic lexicon — the
// discriminative vocabulary the ranking models must learn.
func (g *generator) topicSentence(topic SubTopic) string {
	tw := func() string { return g.pick(topic.Words) }
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s %s %s and %s across the %s.",
			capitalize(g.pick(FillerNouns)), g.pick(FillerVerbs), tw(), tw(), tw())
	case 1:
		return fmt.Sprintf("The %s left %s and %s behind.", tw(), tw(), tw())
	case 2:
		return fmt.Sprintf("Reports of %s and %s reached %s by %s.",
			tw(), tw(), g.pick(FillerNouns), g.pick(weekdays))
	default:
		return fmt.Sprintf("The %s and the %s dominated the %s coverage.",
			tw(), tw(), tw())
	}
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// genDoc builds one document, planting relations per the density targets.
func (g *generator) genDoc(id corpus.DocID) *corpus.Document {
	bg1 := backgroundTopics[g.rng.Intn(len(backgroundTopics))]
	bg2 := backgroundTopics[g.rng.Intn(len(backgroundTopics))]

	var sentences []string
	nBackground := 5 + g.rng.Intn(6)
	for i := 0; i < nBackground; i++ {
		t := bg1
		if i%2 == 1 {
			t = bg2
		}
		sentences = append(sentences, g.fillerSentence(t))
	}
	// Incidental person/organization mentions keep entity recognition
	// honest: names appear outside relation contexts too.
	if g.rng.Float64() < 0.30 {
		sentences = append(sentences, fmt.Sprintf(
			"%s attended the gathering with %s.", g.person(), g.person()))
	}
	if g.rng.Float64() < 0.15 {
		sentences = append(sentences, fmt.Sprintf(
			"%s sponsored the event downtown.", g.org()))
	}

	planted := false
	for _, r := range relation.All() {
		if g.rng.Float64() < g.cfg.DistractorProb {
			sentences = append(sentences, g.distractorSentence(r))
		}
		if g.rng.Float64() >= g.density(r) {
			continue
		}
		planted = true
		g.plantRelation(id, r, &sentences)
	}
	if !planted && g.rng.Float64() < g.cfg.NoiseTopicProb {
		// Topical-but-useless document: relation vocabulary with no
		// extractable relation sentence. These are the documents that
		// depress keyword-search precision in the paper.
		r := relation.All()[g.rng.Intn(len(relation.All()))]
		sts := relationSubTopics(r)
		st := sts[g.pickSubTopic(sts)]
		sentences = append(sentences, g.topicSentence(st))
	}

	g.rng.Shuffle(len(sentences), func(i, j int) {
		sentences[i], sentences[j] = sentences[j], sentences[i]
	})
	title := fmt.Sprintf("%s %s %s",
		capitalize(g.pick(bg1.Words)), g.pick(FillerVerbs), g.pick(bg2.Words))
	text := title + ". " + strings.Join(sentences, " ")
	return &corpus.Document{ID: id, Title: title, Text: text}
}

// plantRelation adds topic sentences and relation sentences for r to the
// document under construction and records ground truth.
func (g *generator) plantRelation(id corpus.DocID, r relation.Relation, sentences *[]string) {
	sts := relationSubTopics(r)
	sti := g.pickSubTopic(sts)
	st := sts[sti]

	g.gt.Planted[r] = append(g.gt.Planted[r], id)
	g.gt.SubTopics[r][id] = st.Name

	nTopic := 1 + g.rng.Intn(2)
	for i := 0; i < nTopic; i++ {
		*sentences = append(*sentences, g.topicSentence(st))
	}

	nRel := 1
	switch x := g.rng.Float64(); {
	case x < 0.45:
		nRel = 2
	case x < 0.65:
		nRel = 3
	}
	anyEasy := false
	for i := 0; i < nRel; i++ {
		hard := g.rng.Float64() < g.cfg.HardFraction
		sent, tuple := g.relationSentence(r, st, hard)
		*sentences = append(*sentences, sent)
		g.gt.Tuples[id] = append(g.gt.Tuples[id], tuple)
		if !hard {
			anyEasy = true
		}
	}
	if anyEasy {
		g.gt.EasyPlanted[r][id] = true
	}
}
