package textgen

import (
	"fmt"
	"math/rand"

	"adaptiverank/internal/relation"
)

// relationSentence produces one relation-bearing sentence for r under
// sub-topic st, plus the tuple it expresses. Easy sentences use the trigger
// constructions the corresponding extractor was trained on; hard sentences
// express the relation in ways outside the extractor's competence (the
// extractor, a black box, will miss them — mirroring real recall limits).
func (g *generator) relationSentence(r relation.Relation, st SubTopic, hard bool) (string, relation.Tuple) {
	switch r {
	case relation.ND:
		return g.disasterSentence(relation.ND, st, hard)
	case relation.MD:
		return g.disasterSentence(relation.MD, st, hard)
	case relation.DO:
		return g.diseaseSentence(hard)
	case relation.PH:
		return g.chargeSentence(hard)
	case relation.EW:
		return g.electionSentence(hard)
	case relation.PO:
		return g.affiliationSentence(hard)
	case relation.PC:
		return g.careerSentence(hard)
	}
	panic(fmt.Sprintf("textgen: no sentence template for relation %v", r))
}

// NDTriggers are the verbs the ND/MD kernel exemplars are built around.
var NDTriggers = []string{"struck", "hit", "devastated", "swept", "ravaged",
	"battered", "rocked", "pounded", "flattened", "lashed", "scarred"}

// MDTriggers are the man-made disaster trigger verbs. They are disjoint
// from NDTriggers so the two disaster extraction systems do not fire on
// each other's sentences.
var MDTriggers = []string{"destroyed", "leveled", "engulfed", "crippled",
	"demolished", "wrecked", "gutted", "shattered", "mangled", "charred"}

func (g *generator) disasterSentence(r relation.Relation, st SubTopic, hard bool) (string, relation.Tuple) {
	mention := g.pick(st.Mentions)
	loc := g.pick(Locations)
	tuple := relation.Tuple{Rel: r, Arg1: mention, Arg2: loc}
	triggers := NDTriggers
	if r == relation.MD {
		triggers = MDTriggers
	}
	if hard {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("Residents of %s remembered the %s from years past.", loc, mention), tuple
		case 1:
			return fmt.Sprintf("%s has endured more than one %s over the decades.", loc, mention), tuple
		default:
			return fmt.Sprintf("A memorial in %s honors victims of the %s.", loc, mention), tuple
		}
	}
	trig := g.pick(triggers)
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("A %s %s %s on %s.", mention, trig, loc, g.pick(weekdays)), tuple
	case 1:
		return fmt.Sprintf("The %s %s parts of %s overnight.", mention, trig, loc), tuple
	case 2:
		return fmt.Sprintf("A powerful %s %s %s early yesterday.", mention, trig, loc), tuple
	default:
		return fmt.Sprintf("A %s %s the coast of %s.", mention, trig, loc), tuple
	}
}

func (g *generator) diseaseSentence(hard bool) (string, relation.Tuple) {
	disease := g.pick(Diseases)
	when := g.temporal()
	tuple := relation.Tuple{Rel: relation.DO, Arg1: disease, Arg2: when}
	if hard {
		// The temporal expression sits far from the disease mention, so
		// the distance-based relation predictor does not link them.
		return fmt.Sprintf(
			"Doctors have studied %s for decades, and clinics across the region reported steady improvements in testing capacity %s.",
			disease, when), tuple
	}
	return fmt.Sprintf(g.pick(DOTemplates), disease, when), tuple
}

func (g *generator) chargeSentence(hard bool) (string, relation.Tuple) {
	person := g.person()
	charge := g.pick(Charges)
	tuple := relation.Tuple{Rel: relation.PH, Arg1: person, Arg2: charge}
	if hard {
		switch g.rng.Intn(2) {
		case 0:
			return fmt.Sprintf("%s denied any role in the %s scandal.", person, charge), tuple
		default:
			return fmt.Sprintf("Rumors about %s and the alleged %s circulated widely.", person, charge), tuple
		}
	}
	c := PHConstructions[g.rng.Intn(len(PHConstructions))]
	return fmt.Sprintf(c.Format, person, charge), tuple
}

func (g *generator) electionSentence(hard bool) (string, relation.Tuple) {
	person := g.person()
	election := g.pick(ElectionKinds)
	tuple := relation.Tuple{Rel: relation.EW, Arg1: election, Arg2: person}
	if hard {
		switch g.rng.Intn(2) {
		case 0:
			return fmt.Sprintf("%s conceded defeat in the %s.", person, election), tuple
		default:
			return fmt.Sprintf("%s campaigned tirelessly before the %s.", person, election), tuple
		}
	}
	c := EWConstructions[g.rng.Intn(len(EWConstructions))]
	return fmt.Sprintf(c.Format, person, election), tuple
}

func (g *generator) affiliationSentence(hard bool) (string, relation.Tuple) {
	person := g.person()
	org := g.org()
	tuple := relation.Tuple{Rel: relation.PO, Arg1: person, Arg2: org}
	if hard {
		switch g.rng.Intn(2) {
		case 0:
			return fmt.Sprintf("%s criticized %s at the hearing.", person, org), tuple
		default:
			return fmt.Sprintf("%s toured the offices of %s on %s.", person, org, g.pick(weekdays)), tuple
		}
	}
	c := POPositive[g.rng.Intn(len(POPositive))]
	return fmt.Sprintf(c.Format, person, org), tuple
}

func (g *generator) careerSentence(hard bool) (string, relation.Tuple) {
	person := g.person()
	career := g.pick(Careers)
	tuple := relation.Tuple{Rel: relation.PC, Arg1: person, Arg2: career}
	if hard {
		switch g.rng.Intn(2) {
		case 0:
			return fmt.Sprintf("%s once dreamed of becoming a %s.", person, career), tuple
		default:
			return fmt.Sprintf("Friends say %s admired every %s in town.", person, career), tuple
		}
	}
	c := PCConstructions[g.rng.Intn(len(PCConstructions))]
	return fmt.Sprintf(c.Format, person, career), tuple
}

// distractorSentence produces a sentence that contains trigger or domain
// vocabulary of relation r in a context the extraction system (correctly)
// rejects — no extractable entity pair. These sentences are what makes
// plain keyword retrieval imprecise for extraction: a query like [accused]
// or [fraud] matches them although they yield no tuples, reproducing the
// precision limitation of query-based document selection the paper
// describes for QXtract/FactCrawl.
func (g *generator) distractorSentence(r relation.Relation) string {
	trigger, domain := g.distractorVocab(r)
	// Generic non-entity frames: the trigger verb (or domain noun) in a
	// sentence with no recognizable entity pair. Every trigger and domain
	// word of every relation flows through here, so no single word is a
	// clean marker of usefulness.
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("The committee %s the proposal over the %s debate.", trigger, domain)
	case 1:
		return fmt.Sprintf("Commentators said the panel %s nothing despite the %s coverage.", trigger, domain)
	case 2:
		return fmt.Sprintf("A seminar on %s history drew crowds before the vote was %s.", domain, trigger)
	case 3:
		return fmt.Sprintf("The editorial %s that the %s figures were misleading.", trigger, domain)
	default:
		return fmt.Sprintf("Reviews %s the %s exhibit within days.", trigger, domain)
	}
}

// distractorVocab samples a trigger word and a domain word for relation r,
// covering the full trigger set and argument gazetteer of each extraction
// system.
func (g *generator) distractorVocab(r relation.Relation) (trigger, domain string) {
	switch r {
	case relation.ND:
		st := NDSubTopics[g.rng.Intn(len(NDSubTopics))]
		// Half the time the domain word is a disaster mention itself
		// (metaphorical or historical use), so mention words are not
		// clean usefulness markers either.
		if g.rng.Intn(2) == 0 {
			return g.pick(NDTriggers), g.pick(st.Mentions)
		}
		return g.pick(NDTriggers), g.pick(st.Words)
	case relation.MD:
		st := MDSubTopics[g.rng.Intn(len(MDSubTopics))]
		if g.rng.Intn(2) == 0 {
			return g.pick(MDTriggers), g.pick(st.Mentions)
		}
		return g.pick(MDTriggers), g.pick(st.Words)
	case relation.DO:
		return g.pick([]string{"outbreak", "cases", "epidemic", "infections",
			"reported", "confirmed", "surged", "erupted", "traced"}), g.pick(Diseases)
	case relation.PH:
		return g.pick(GateWords(PHConstructions)), g.pick(Charges)
	case relation.EW:
		return g.pick(GateWords(EWConstructions)), g.pick([]string{
			"ballots", "margin", "voters", "presidential", "mayoral",
			"senate", "gubernatorial", "parliamentary", "runoff"})
	case relation.PO:
		return g.pick(GateWords(POPositive)), g.pick([]string{
			"director", "manager", "offices", "staff", "executives", "downtown"})
	case relation.PC:
		return g.pick(GateWords(PCConstructions)), g.pick(Careers)
	}
	panic(fmt.Sprintf("textgen: no distractor vocabulary for relation %v", r))
}

// syntheticVocabulary builds n unique pronounceable pseudo-words that form
// the shared Zipf-distributed background vocabulary.
func syntheticVocabulary(n int, rng *rand.Rand) []string {
	onsets := []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r",
		"s", "t", "v", "z", "br", "st", "tr", "kl", "pr", "gr", "dr", "sk"}
	vowels := []string{"a", "e", "i", "o", "u", "ai", "ou", "ea"}
	codas := []string{"", "n", "r", "s", "l", "t", "m", "x"}
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	syllable := func() string {
		return onsets[rng.Intn(len(onsets))] + vowels[rng.Intn(len(vowels))]
	}
	for len(out) < n {
		w := syllable() + syllable() + codas[rng.Intn(len(codas))]
		if rng.Intn(3) == 0 {
			w = syllable() + w
		}
		if len(w) < 4 || seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}
