package textgen

import "adaptiverank/internal/corpus"

// Splits mirrors the paper's corpus partition: a training split (used to
// train/configure the extraction systems), a development split (technique
// and parameter selection), a test split (final evaluation), and a
// TREC-like side collection (query learning for CQS sampling).
type Splits struct {
	Train, Dev, Test, TRECLike                 *corpus.Collection
	TruthTrain, TruthDev, TruthTest, TruthTREC *GroundTruth
}

// SplitSizes configures the number of documents per split.
type SplitSizes struct {
	Train, Dev, Test, TRECLike int
}

// ScaleTest is the tiny scale used by unit and integration tests.
func ScaleTest() SplitSizes { return SplitSizes{Train: 250, Dev: 700, Test: 1000, TRECLike: 500} }

// ScaleBench is the scale used by the benchmark harness; it preserves the
// paper's 5%/35%/60% train/dev/test proportions at laptop-feasible size.
func ScaleBench() SplitSizes { return SplitSizes{Train: 1000, Dev: 8000, Test: 12000, TRECLike: 2500} }

// GenerateSplits generates the four collections with seeds derived from
// seed, using cfg as the per-split template (its Seed and NumDocs fields
// are overridden per split).
func GenerateSplits(seed int64, sizes SplitSizes, cfg Config) *Splits {
	gen := func(offset int64, n int) (*corpus.Collection, *GroundTruth) {
		c := cfg
		c.Seed = seed + offset
		c.NumDocs = n
		return Generate(c)
	}
	s := &Splits{}
	s.Train, s.TruthTrain = gen(1, sizes.Train)
	s.Dev, s.TruthDev = gen(2, sizes.Dev)
	s.Test, s.TruthTest = gen(3, sizes.Test)
	// The TREC-like collection is distributionally shifted: sub-topics
	// common there are rare in dev/test (see Config.SubTopicShift).
	trecCfg := cfg
	trecCfg.Seed = seed + 4
	trecCfg.NumDocs = sizes.TRECLike
	trecCfg.SubTopicReverse = true
	s.TRECLike, s.TruthTREC = Generate(trecCfg)
	return s
}
