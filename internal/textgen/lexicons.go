package textgen

// This file holds the hand-curated lexical resources of the generator:
// entity gazetteers (shared with the extractors, which train their taggers
// and dictionaries from the same pools, as real systems train from labelled
// data drawn from the same distribution) and per-sub-topic content lexicons
// that give useful documents their distinctive vocabulary — the signal the
// ranking models must discover.

// FirstNames and LastNames form the person gazetteer; persons are rendered
// as "First Last".
var FirstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Daniel",
	"Nancy", "Matthew", "Lisa", "Anthony", "Margaret", "Mark", "Betty",
	"Donald", "Sandra", "Steven", "Ashley", "Paul", "Dorothy", "Andrew",
	"Kimberly", "Joshua", "Emily", "Kenneth", "Donna", "Kevin", "Michelle",
	"Brian", "Carol", "George", "Amanda", "Edward", "Melissa", "Ronald",
	"Deborah", "Timothy", "Stephanie", "Jason", "Rebecca", "Jeffrey",
	"Laura", "Ryan", "Sharon", "Jacob", "Cynthia", "Gary", "Kathleen",
	"Nicholas", "Amy", "Eric", "Shirley", "Jonathan", "Angela", "Stephen",
	"Helen", "Larry", "Anna", "Justin", "Brenda", "Scott", "Pamela",
	"Brandon", "Nicole", "Benjamin", "Samantha",
}

// LastNames is the surname pool of the person gazetteer.
var LastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
	"Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
	"Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
	"Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
	"Kim", "Cox", "Ward", "Richardson",
}

// Locations is the location gazetteer (cities, regions, islands).
var Locations = []string{
	"Hawaii", "California", "Tokyo", "Manila", "Jakarta", "Lisbon",
	"Istanbul", "Mexico City", "San Francisco", "Los Angeles", "Santiago",
	"Kathmandu", "Port-au-Prince", "Anchorage", "Naples", "Reykjavik",
	"Quito", "Bogota", "Lima", "Caracas", "Havana", "Miami", "New Orleans",
	"Houston", "Galveston", "Charleston", "Savannah", "Tampa", "Wilmington",
	"Dhaka", "Calcutta", "Mumbai", "Karachi", "Shanghai", "Wuhan",
	"Bangkok", "Hanoi", "Saigon", "Phuket", "Sumatra", "Java", "Luzon",
	"Mindanao", "Okinawa", "Kobe", "Osaka", "Sendai", "Valparaiso",
	"Concepcion", "Mendoza", "Asuncion", "Montevideo", "Recife", "Salvador",
	"Fortaleza", "Managua", "Tegucigalpa", "Guatemala City", "San Salvador",
	"Kingston", "Santo Domingo", "Nairobi", "Lagos", "Accra", "Dakar",
	"Casablanca", "Algiers", "Tunis", "Cairo", "Khartoum", "Addis Ababa",
	"Mogadishu", "Kampala", "Harare", "Maputo", "Johannesburg", "Cape Town",
	"Perth", "Darwin", "Brisbane", "Wellington", "Auckland", "Suva",
	"Honolulu", "Hilo", "Pasadena", "Fresno", "Oakland", "Seattle",
	"Portland", "Denver", "Boulder", "Memphis", "Nashville", "Tulsa",
	"Wichita", "Topeka", "Omaha", "Fargo", "Duluth", "Buffalo", "Rochester",
	"Scranton", "Trenton", "Camden", "Norfolk", "Richmond", "Raleigh",
	"Columbia", "Augusta", "Mobile", "Biloxi", "Shreveport", "Baton Rouge",
}

// OrgCores and OrgSuffixes compose organization names ("Meridian Corp").
var OrgCores = []string{
	"Meridian", "Apex", "Summit", "Pinnacle", "Vanguard", "Horizon",
	"Keystone", "Frontier", "Liberty", "Sterling", "Cascade", "Granite",
	"Titan", "Atlas", "Orion", "Nova", "Zenith", "Crown", "Empire",
	"Pacific", "Atlantic", "Continental", "National", "Global", "United",
	"Allied", "Consolidated", "Integrated", "Dynamic", "Premier",
	"Paramount", "Sovereign", "Regent", "Monarch", "Imperial", "Cardinal",
	"Falcon", "Griffin", "Phoenix", "Sentinel", "Beacon", "Harbor",
	"Redwood", "Ironwood", "Silverlake", "Stonebridge", "Fairmont",
	"Lakeshore", "Northgate", "Eastfield",
}

// OrgSuffixes complete organization names; the pattern recognizer keys on
// these.
var OrgSuffixes = []string{
	"Corp", "Inc", "Industries", "Group", "Holdings", "Partners",
	"Systems", "Technologies", "Laboratories", "Enterprises", "Capital",
	"University", "Institute", "Foundation", "Authority", "Commission",
	"Association", "Bank", "Airlines", "Energy",
}

// Diseases is the disease gazetteer for the DO relation.
var Diseases = []string{
	"cholera", "measles", "influenza", "malaria", "dengue", "typhoid",
	"diphtheria", "polio", "smallpox", "tuberculosis", "meningitis",
	"hepatitis", "salmonella", "botulism", "anthrax", "rabies", "plague",
	"yellow fever", "whooping cough", "encephalitis", "legionnaires",
	"norovirus", "rotavirus", "shigella", "listeria",
}

// Charges is the criminal-charge gazetteer for the PH relation.
var Charges = []string{
	"fraud", "murder", "bribery", "embezzlement", "racketeering",
	"extortion", "perjury", "arson", "burglary", "kidnapping",
	"manslaughter", "larceny", "forgery", "smuggling", "conspiracy",
	"assault", "robbery", "counterfeiting", "obstruction", "tax evasion",
}

// Careers is the career/position gazetteer for the PC relation.
var Careers = []string{
	"senator", "governor", "mayor", "congressman", "ambassador",
	"secretary", "chancellor", "minister", "judge", "prosecutor",
	"chief executive", "chairman", "treasurer", "economist", "surgeon",
	"cardiologist", "architect", "novelist", "playwright", "composer",
	"conductor", "sculptor", "quarterback", "goalkeeper", "shortstop",
	"midfielder", "sprinter", "physicist", "biologist", "astronomer",
	"geologist", "historian", "linguist", "philosopher", "violinist",
	"soprano", "director", "producer", "editor", "columnist",
}

// ElectionKinds parameterize the EW relation's election mentions.
var ElectionKinds = []string{
	"presidential election", "senate race", "mayoral election",
	"gubernatorial race", "parliamentary election", "congressional race",
	"primary election", "runoff election", "council election",
	"referendum vote",
}

// SubTopic is a coherent vocabulary cluster within a relation's domain
// (e.g. volcano eruptions within Natural Disaster–Location). Useful
// documents draw their distinctive words from exactly one sub-topic, so a
// small initial document sample typically misses the rare sub-topics —
// the heterogeneity that motivates adaptive ranking in the paper.
type SubTopic struct {
	Name  string
	Words []string
	// Mentions lists the surface forms of the relation's first argument
	// generated under this sub-topic (e.g. "earthquake", "tremor").
	// Empty for relations whose argument comes from a global gazetteer.
	Mentions []string
}

// NDSubTopics covers natural-disaster domains.
var NDSubTopics = []SubTopic{
	{Name: "earthquake",
		Words:    []string{"richter", "hypocenter", "epicenter", "aftershock", "magnitude", "seismic", "seismologists", "fault", "tremors", "rubble"},
		Mentions: []string{"earthquake", "tremor", "quake"}},
	{Name: "hurricane",
		Words:    []string{"landfall", "evacuation", "storm", "surge", "gusts", "barometric", "meteorologists", "levee", "shelters", "windspeed"},
		Mentions: []string{"hurricane", "cyclone", "typhoon"}},
	{Name: "flood",
		Words:    []string{"floodwaters", "riverbanks", "monsoon", "inundated", "sandbags", "rainfall", "overflow", "submerged", "dikes", "torrential"},
		Mentions: []string{"flood", "flash flood", "deluge"}},
	{Name: "volcano",
		Words:    []string{"lava", "eruption", "ash", "crater", "magma", "sulfuric", "volcanic", "plume", "pyroclastic", "vents"},
		Mentions: []string{"volcanic eruption", "eruption"}},
	{Name: "tornado",
		Words:    []string{"funnel", "twister", "debris", "sirens", "touchdown", "supercell", "windstorm", "trailer", "flattened", "warning"},
		Mentions: []string{"tornado", "twister"}},
	{Name: "wildfire",
		Words:    []string{"blaze", "acres", "firefighters", "containment", "brush", "embers", "smoke", "scorched", "drought", "canyon"},
		Mentions: []string{"wildfire", "brush fire"}},
	{Name: "tsunami",
		Words:    []string{"wave", "coastline", "undersea", "receded", "warning", "buoys", "swept", "harbor", "seawall", "offshore"},
		Mentions: []string{"tsunami", "tidal wave"}},
	{Name: "blizzard",
		Words:    []string{"snowfall", "whiteout", "drifts", "plows", "frostbite", "subzero", "stranded", "icy", "snowstorm", "avalanche"},
		Mentions: []string{"blizzard", "snowstorm", "ice storm"}},
}

// MDSubTopics covers man-made-disaster domains.
var MDSubTopics = []SubTopic{
	{Name: "explosion",
		Words:    []string{"blast", "shrapnel", "detonation", "gas", "pipeline", "ignited", "fireball", "debris", "windows", "shockwave"},
		Mentions: []string{"explosion", "blast"}},
	{Name: "planecrash",
		Words:    []string{"fuselage", "cockpit", "runway", "altitude", "wreckage", "aviation", "flight", "descent", "blackbox", "mayday"},
		Mentions: []string{"plane crash", "jet crash"}},
	{Name: "derailment",
		Words:    []string{"locomotive", "railcars", "tracks", "freight", "conductor", "crossing", "coupling", "switchyard", "overturned", "commuter"},
		Mentions: []string{"train derailment", "derailment", "train wreck"}},
	{Name: "oilspill",
		Words:    []string{"tanker", "slick", "barrels", "crude", "booms", "cleanup", "shoreline", "leaking", "hull", "contamination"},
		Mentions: []string{"oil spill", "chemical spill"}},
	{Name: "collapse",
		Words:    []string{"scaffolding", "girders", "concrete", "masonry", "trapped", "excavators", "inspection", "structural", "foundation", "crane"},
		Mentions: []string{"building collapse", "bridge collapse", "collapse"}},
	{Name: "mine",
		Words:    []string{"shaft", "miners", "colliery", "methane", "tunnel", "rescuers", "underground", "cave-in", "ventilation", "coal"},
		Mentions: []string{"mine accident", "mine collapse", "cave-in"}},
}

// DOSubTopics covers disease-outbreak domains.
var DOSubTopics = []SubTopic{
	{Name: "waterborne",
		Words: []string{"contaminated", "wells", "sanitation", "sewage", "rehydration", "chlorination", "latrines", "boiling", "diarrheal", "aquifer"}},
	{Name: "respiratory",
		Words: []string{"quarantine", "ventilators", "respiratory", "vaccination", "strain", "pandemic", "masks", "wards", "coughing", "virologists"}},
	{Name: "foodborne",
		Words: []string{"recall", "processing", "lettuce", "poultry", "refrigeration", "inspection", "packaging", "hygiene", "kitchens", "contamination"}},
	{Name: "vectorborne",
		Words: []string{"mosquitoes", "larvae", "netting", "spraying", "stagnant", "repellent", "fumigation", "swamps", "insecticide", "parasites"}},
}

// PHSubTopics covers criminal-charge domains.
var PHSubTopics = []SubTopic{
	{Name: "whitecollar",
		Words: []string{"indictment", "subpoena", "auditors", "ledgers", "offshore", "shell", "investors", "securities", "regulators", "kickbacks"}},
	{Name: "violent",
		Words: []string{"detectives", "homicide", "arraigned", "testimony", "forensic", "weapon", "motive", "jury", "sentencing", "custody"}},
	{Name: "corruption",
		Words: []string{"lobbyist", "contracts", "payoffs", "wiretaps", "prosecutors", "grand", "probe", "resignation", "ethics", "favors"}},
	{Name: "trafficking",
		Words: []string{"cartel", "seizure", "contraband", "smugglers", "border", "narcotics", "informant", "stash", "couriers", "laundering"}},
}

// EWSubTopics covers election domains.
var EWSubTopics = []SubTopic{
	{Name: "national",
		Words: []string{"ballots", "precincts", "turnout", "incumbent", "concession", "landslide", "electorate", "polling", "margin", "inauguration"}},
	{Name: "local",
		Words: []string{"council", "wards", "canvassing", "recount", "absentee", "registrar", "municipal", "precinct", "runoff", "tally"}},
	{Name: "international",
		Words: []string{"observers", "coalition", "parliament", "opposition", "monitors", "electoral", "commission", "provisional", "constituencies", "exiles"}},
}

// POSubTopics covers person-organization affiliation domains.
var POSubTopics = []SubTopic{
	{Name: "corporate",
		Words: []string{"shareholders", "quarterly", "earnings", "merger", "boardroom", "executives", "dividend", "restructuring", "acquisition", "payroll"}},
	{Name: "academic",
		Words: []string{"faculty", "tenure", "endowment", "campus", "dean", "research", "fellowship", "laboratory", "curriculum", "provost"}},
	{Name: "sports",
		Words: []string{"roster", "franchise", "playoffs", "contract", "trade", "season", "locker", "scouts", "draft", "clubhouse"}},
	{Name: "public",
		Words: []string{"agency", "bureau", "budget", "oversight", "appointees", "directive", "taxpayers", "mandate", "department", "commissioners"}},
}

// PCSubTopics covers person-career domains.
var PCSubTopics = []SubTopic{
	{Name: "politics",
		Words: []string{"campaign", "legislation", "caucus", "constituents", "statehouse", "veto", "filibuster", "delegation", "platform", "capitol"}},
	{Name: "business",
		Words: []string{"startup", "venture", "revenue", "portfolio", "markets", "trading", "valuation", "profits", "commerce", "entrepreneurs"}},
	{Name: "sports",
		Words: []string{"championship", "tournament", "standings", "stadium", "innings", "halftime", "referee", "medal", "league", "training"}},
	{Name: "arts",
		Words: []string{"gallery", "premiere", "orchestra", "repertoire", "exhibition", "manuscript", "critics", "audition", "ensemble", "studio"}},
	{Name: "science",
		Words: []string{"hypothesis", "experiment", "journal", "telescope", "genome", "particle", "specimen", "grant", "symposium", "peer-reviewed"}},
}

// backgroundTopics supply vocabulary for useless documents (and filler in
// useful ones), modelling the bulk of a news corpus.
var backgroundTopics = []SubTopic{
	{Name: "cooking", Words: []string{"recipe", "simmer", "garlic", "saute", "oven", "broth", "seasoning", "skillet", "marinade", "pastry", "whisk", "zest"}},
	{Name: "travel", Words: []string{"itinerary", "passport", "resort", "sightseeing", "museum", "cruise", "luggage", "souvenirs", "vineyard", "boutique", "cathedral", "plaza"}},
	{Name: "fashion", Words: []string{"runway", "couture", "fabric", "silhouette", "designer", "hemline", "tailoring", "accessories", "collection", "chiffon", "tweed", "vogue"}},
	{Name: "music", Words: []string{"album", "melody", "chorus", "acoustic", "vinyl", "lyrics", "bassline", "encore", "harmony", "tempo", "ballad", "quartet"}},
	{Name: "film", Words: []string{"screenplay", "box office", "sequel", "casting", "cinematography", "trailer", "matinee", "script", "documentary", "animation", "premiere", "reel"}},
	{Name: "gardening", Words: []string{"perennials", "mulch", "pruning", "seedlings", "compost", "trellis", "blossoms", "fertilizer", "hedges", "greenhouse", "tulips", "soil"}},
	{Name: "technology", Words: []string{"software", "gadget", "processor", "bandwidth", "prototype", "interface", "silicon", "circuit", "modem", "pixels", "database", "encryption"}},
	{Name: "markets", Words: []string{"index", "futures", "bonds", "commodities", "inflation", "yield", "brokers", "rally", "session", "benchmark", "bulls", "hedging"}},
	{Name: "education", Words: []string{"classroom", "tuition", "syllabus", "homework", "grading", "scholarship", "enrollment", "textbook", "semester", "lecture", "principal", "recess"}},
	{Name: "weather", Words: []string{"forecast", "humidity", "breeze", "sunshine", "overcast", "drizzle", "frost", "thermometer", "seasonal", "clouds", "mild", "chilly"}},
	{Name: "dining", Words: []string{"bistro", "entree", "sommelier", "reservation", "brasserie", "appetizer", "dessert", "patio", "chef", "tasting", "menu", "decor"}},
	{Name: "realestate", Words: []string{"brownstone", "mortgage", "listing", "renovation", "appraisal", "tenants", "zoning", "condominium", "brokerage", "skyline", "lofts", "landlord"}},
}

// FillerVerbs and FillerNouns give generated sentences a news-prose rhythm.
var FillerVerbs = []string{
	"reported", "announced", "described", "noted", "observed", "recalled",
	"confirmed", "discussed", "examined", "reviewed", "considered",
	"highlighted", "mentioned", "suggested", "outlined", "emphasized",
}

// FillerNouns are the subject nouns of generated news-prose sentences.
var FillerNouns = []string{
	"officials", "residents", "reporters", "analysts", "witnesses",
	"neighbors", "visitors", "experts", "organizers", "spokespeople",
	"commuters", "volunteers", "critics", "observers", "authorities",
	"correspondents",
}
