// Package escape turns the Go compiler's escape-analysis and inlining
// diagnostics (go build -gcflags='-m=2') into structured facts and gates
// them against a committed budget. It is the compile-time half of the
// hot-path performance contract: cmd/benchgate catches a regression
// after the benchmark has already paid for it, while cmd/escapegate —
// built on this package — catches the *cause* (a value boxed to the
// heap, a kernel function pushed past the inlining budget) at build
// time, before a single benchmark runs.
//
// The flow is: Collect compiles the hot-path packages with -m=2,
// Parse structures the diagnostic stream, the parsed sites are
// attributed to their enclosing declared functions, and Diff compares
// the resulting per-function facts against the committed
// ESCAPE_baseline.json.
package escape

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Kind classifies one compiler diagnostic line.
type Kind int

const (
	// KindOther is an unclassified diagnostic (capturing-by-value notes,
	// leak details, and whatever future compilers add). Parse keeps the
	// raw text so nothing is silently dropped.
	KindOther Kind = iota
	// KindCanInline is "can inline F with cost N as: ...".
	KindCanInline
	// KindCannotInline is "cannot inline F: reason".
	KindCannotInline
	// KindInliningCall is "inlining call to F".
	KindInliningCall
	// KindEscape is "EXPR escapes to heap" (the -m=2 stream emits each
	// site twice, once with a trailing colon introducing the flow trace
	// and once bare; Parse folds the pair into one Diag carrying the
	// trace).
	KindEscape
	// KindMovedToHeap is "moved to heap: NAME" — a local variable whose
	// storage was forced off the stack.
	KindMovedToHeap
	// KindNoEscape is "EXPR does not escape".
	KindNoEscape
	// KindLeakingParam is the "leaking param: NAME" family. Leaks are
	// informational (a leaking parameter is not itself an allocation)
	// and are not gated, but the parser understands them so traces stay
	// attached to the right site.
	KindLeakingParam
	// KindTrace is an indented flow line belonging to the preceding
	// escape diagnostic ("flow: {heap} = ..." / "from ... at ...").
	KindTrace
)

// Diag is one structured compiler diagnostic.
type Diag struct {
	File string
	Line int
	Col  int // 0 when the compiler omitted the column
	Kind Kind
	// Func is the function named by inline diagnostics
	// (e.g. "(*Weights).MarginPacked", "Packed.Dot", "NewSparse").
	Func string
	// Expr is the escaping expression or variable name for
	// KindEscape/KindMovedToHeap/KindNoEscape/KindLeakingParam.
	Expr string
	// Reason is the compiler's explanation for KindCannotInline
	// ("function too complex: cost 112 exceeds budget 80").
	Reason string
	// Flow holds the nested -m=2 escape trace lines, outermost first.
	Flow []string
	// Text is the raw message after the position prefix.
	Text string
}

// ParseLine classifies a single diagnostic line. It reports false for
// lines that carry no position ("# package" headers, blank lines) or
// that do not look like compiler output at all. Indented trace lines
// parse as KindTrace; Parse attaches them to the previous site.
func ParseLine(line string) (Diag, bool) {
	line = strings.TrimRight(line, "\r\n")
	if line == "" || strings.HasPrefix(line, "#") {
		return Diag{}, false
	}
	file, lineNo, col, msg, ok := splitPos(line)
	if !ok {
		return Diag{}, false
	}
	d := Diag{File: file, Line: lineNo, Col: col, Text: msg}
	// Trace lines keep their leading indentation after the position
	// prefix: "  flow: ..." / "    from ... at ...".
	if strings.HasPrefix(msg, " ") {
		d.Kind = KindTrace
		d.Text = strings.TrimSpace(msg)
		return d, true
	}
	switch {
	case strings.HasPrefix(msg, "can inline "):
		d.Kind = KindCanInline
		rest := strings.TrimPrefix(msg, "can inline ")
		if i := strings.Index(rest, " with cost "); i >= 0 {
			d.Func = rest[:i]
		} else {
			d.Func = strings.TrimSuffix(rest, ":")
		}
	case strings.HasPrefix(msg, "cannot inline "):
		d.Kind = KindCannotInline
		rest := strings.TrimPrefix(msg, "cannot inline ")
		if name, reason, found := strings.Cut(rest, ": "); found {
			d.Func, d.Reason = name, reason
		} else {
			d.Func = rest
		}
	case strings.HasPrefix(msg, "inlining call to "):
		d.Kind = KindInliningCall
		d.Func = strings.TrimPrefix(msg, "inlining call to ")
	case strings.HasPrefix(msg, "moved to heap: "):
		d.Kind = KindMovedToHeap
		d.Expr = strings.TrimPrefix(msg, "moved to heap: ")
	case strings.HasSuffix(msg, " escapes to heap:"):
		d.Kind = KindEscape
		d.Expr = strings.TrimSuffix(msg, " escapes to heap:")
	case strings.HasSuffix(msg, " escapes to heap"):
		d.Kind = KindEscape
		d.Expr = strings.TrimSuffix(msg, " escapes to heap")
	case strings.HasSuffix(msg, " does not escape"):
		d.Kind = KindNoEscape
		d.Expr = strings.TrimSuffix(msg, " does not escape")
	case strings.HasPrefix(msg, "leaking param"):
		d.Kind = KindLeakingParam
		if _, name, found := strings.Cut(msg, ": "); found {
			d.Expr = name
		}
	case strings.HasPrefix(msg, "parameter ") && strings.Contains(msg, " leaks to "):
		// "-m=2" detail form of a leak; treat as the leak family so the
		// aggregator dedupes it against the bare "leaking param" line.
		d.Kind = KindLeakingParam
		rest := strings.TrimPrefix(msg, "parameter ")
		if i := strings.Index(rest, " leaks to "); i >= 0 {
			d.Expr = rest[:i]
		}
	default:
		d.Kind = KindOther
	}
	// An inline diagnostic that names no function is not one the
	// compiler emits; degrade to KindOther rather than inventing an
	// anonymous inline fact.
	switch d.Kind {
	case KindCanInline, KindCannotInline, KindInliningCall:
		if d.Func == "" {
			d.Kind, d.Reason = KindOther, ""
		}
	}
	return d, true
}

// splitPos splits "file:line[:col]: message". The column is optional
// because synthetic positions ("<autogenerated>:1: ...") omit it. File
// names containing colons are not produced by the gc toolchain on the
// platforms this project targets, so the first colon ends the file part.
func splitPos(line string) (file string, lineNo, col int, msg string, ok bool) {
	i := strings.Index(line, ":")
	if i <= 0 {
		return "", 0, 0, "", false
	}
	file = line[:i]
	tail := line[i+1:]
	j := strings.Index(tail, ":")
	if j < 0 {
		return "", 0, 0, "", false
	}
	n, err := strconv.Atoi(tail[:j])
	if err != nil || n < 0 {
		return "", 0, 0, "", false
	}
	lineNo = n
	after := tail[j+1:]
	// Optional column: "col: msg" vs " msg".
	if k := strings.Index(after, ":"); k > 0 {
		if c, err := strconv.Atoi(after[:k]); err == nil && c >= 0 {
			col = c
			msg = strings.TrimPrefix(after[k+1:], " ")
			return file, lineNo, col, msg, true
		}
	}
	msg = strings.TrimPrefix(after, " ")
	return file, lineNo, 0, msg, true
}

// Parse structures a whole -m=2 diagnostic stream: trace lines attach to
// the escape/leak diagnostic they follow, and the duplicated
// traced+bare forms of one site fold into a single Diag. The relative
// order of distinct diagnostics is preserved.
func Parse(r io.Reader) ([]Diag, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Diag
	// seen maps a site key to its index in out so the bare duplicate of
	// a traced escape site merges instead of double-counting.
	seen := make(map[string]int)
	last := -1 // index of the diagnostic open for trace attachment
	for sc.Scan() {
		d, ok := ParseLine(sc.Text())
		if !ok {
			continue
		}
		if d.Kind == KindTrace {
			if last >= 0 {
				out[last].Flow = append(out[last].Flow, d.Text)
			}
			continue
		}
		switch d.Kind {
		case KindEscape, KindMovedToHeap, KindLeakingParam:
			key := siteKey(d)
			if i, dup := seen[key]; dup {
				last = i
				continue
			}
			seen[key] = len(out)
		}
		last = len(out)
		out = append(out, d)
	}
	return out, sc.Err()
}

func siteKey(d Diag) string {
	return d.File + ":" + strconv.Itoa(d.Line) + ":" + strconv.Itoa(d.Col) +
		"|" + strconv.Itoa(int(d.Kind)) + "|" + d.Expr
}
