package escape

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// FuncBudget is one function's committed escape/inline budget: whether
// it must stay inlinable and which heap escapes are allowed. Escapes are
// recorded as the escaping expressions (a multiset, sorted), not source
// positions, so unrelated edits that move lines do not churn the
// baseline while a genuinely new escape always shows up.
type FuncBudget struct {
	Name string `json:"name"`
	// CanInline records whether the compiler could inline the function
	// when the baseline was committed. A true here is a guarantee the
	// gate enforces; a false is simply the recorded state.
	CanInline bool `json:"can_inline"`
	// Escapes lists the allowed heap-escape expressions, sorted.
	Escapes []string `json:"escapes,omitempty"`
}

// PackageBudget is the budget for every function of one hot-path package.
type PackageBudget struct {
	Path      string       `json:"path"`
	Functions []FuncBudget `json:"functions"`
}

// Baseline is the committed ESCAPE_baseline.json document.
type Baseline struct {
	// Go is the toolchain the baseline was generated with. Inlining
	// costs shift between compiler releases, so a mismatch is reported
	// as a warning alongside any findings.
	Go       string          `json:"go"`
	Packages []PackageBudget `json:"packages"`
}

// Lookup finds a package budget by import path.
func (b *Baseline) Lookup(path string) (PackageBudget, bool) {
	for _, p := range b.Packages {
		if p.Path == path {
			return p, true
		}
	}
	return PackageBudget{}, false
}

// FromFacts snapshots collected facts as a baseline, deterministically
// sorted by package path, function name, and escape expression.
func FromFacts(goVersion string, facts []*PackageFacts) *Baseline {
	b := &Baseline{Go: goVersion}
	for _, pf := range facts {
		pb := PackageBudget{Path: pf.Path}
		for _, name := range pf.FuncNames() {
			ff := pf.Funcs[name]
			fb := FuncBudget{Name: name, CanInline: ff.CanInline}
			for _, s := range ff.Escapes {
				fb.Escapes = append(fb.Escapes, s.What)
			}
			sort.Strings(fb.Escapes)
			pb.Functions = append(pb.Functions, fb)
		}
		b.Packages = append(b.Packages, pb)
	}
	sort.Slice(b.Packages, func(i, j int) bool { return b.Packages[i].Path < b.Packages[j].Path })
	return b
}

// Load reads and validates a baseline file. An empty package list is an
// error: a gate that compares nothing would pass forever.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("escapegate: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("escapegate: %s: %w", path, err)
	}
	if len(b.Packages) == 0 {
		return nil, fmt.Errorf("escapegate: %s: no package budgets", path)
	}
	for _, p := range b.Packages {
		if p.Path == "" {
			return nil, fmt.Errorf("escapegate: %s: package budget with empty path", path)
		}
	}
	return &b, nil
}

// Save writes the baseline with stable formatting (sorted two-space
// indented JSON, trailing newline) so -update is byte-deterministic for
// a given tree and toolchain.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FindingKind classifies one budget violation.
type FindingKind string

const (
	// FindingNewEscape is a heap escape not covered by the function's
	// committed budget.
	FindingNewEscape FindingKind = "new-escape"
	// FindingNotInlinable is a function the baseline guarantees
	// inlinable that the compiler can no longer inline.
	FindingNotInlinable FindingKind = "not-inlinable"
	// FindingMissingPackage is a baseline package absent from the
	// current collection — the gate must not silently lose coverage.
	FindingMissingPackage FindingKind = "missing-package"
)

// Finding is one violation of the committed budget.
type Finding struct {
	Kind    FindingKind
	Package string
	Func    string
	// What is the escaping expression (new-escape) or the compiler's
	// reason (not-inlinable).
	What string
	// Site positions the violation for new-escape findings.
	Site Site
}

func (f Finding) String() string {
	switch f.Kind {
	case FindingNewEscape:
		pos := f.Site.File
		if f.Site.Line > 0 {
			pos = fmt.Sprintf("%s:%d", f.Site.File, f.Site.Line)
			if f.Site.Col > 0 {
				pos += fmt.Sprintf(":%d", f.Site.Col)
			}
		}
		return fmt.Sprintf("%s: %s: new heap escape: %s (%s)", f.Package, f.Func, f.What, pos)
	case FindingNotInlinable:
		return fmt.Sprintf("%s: %s: no longer inlinable: %s", f.Package, f.Func, f.What)
	case FindingMissingPackage:
		return fmt.Sprintf("%s: package missing from current collection", f.Package)
	}
	return fmt.Sprintf("%s: %s: %s", f.Package, f.Func, f.What)
}

// Render writes the human-readable "who escaped and why" report for one
// finding, including the compiler's escape-flow trace when recorded.
func (f Finding) Render(w *strings.Builder) {
	w.WriteString(f.String())
	w.WriteByte('\n')
	for _, fl := range f.Site.Flow {
		w.WriteString("    ")
		w.WriteString(fl)
		w.WriteByte('\n')
	}
}

// Diff gates current facts against the committed baseline:
//
//   - a baseline package absent from current is a finding (coverage
//     must not silently shrink);
//   - a function whose current escape multiset exceeds its budget
//     yields one finding per uncovered site, carrying the compiler's
//     flow trace;
//   - a function recorded CanInline that the compiler now cannot
//     inline yields a finding with the compiler's reason.
//
// Functions absent from the baseline fail only when they have escapes:
// a clean new helper needs no ceremony, and the moment it gains an
// escape the gate names it. Functions that disappeared (renamed or
// deleted) are not findings — their budget is moot, and any escape in
// the successor is caught by the unknown-function rule.
func Diff(base *Baseline, facts []*PackageFacts) []Finding {
	var out []Finding
	seen := make(map[string]*PackageFacts, len(facts))
	for _, pf := range facts {
		seen[pf.Path] = pf
	}
	for _, pb := range base.Packages {
		pf, ok := seen[pb.Path]
		if !ok {
			out = append(out, Finding{Kind: FindingMissingPackage, Package: pb.Path})
			continue
		}
		budgets := make(map[string]FuncBudget, len(pb.Functions))
		for _, fb := range pb.Functions {
			budgets[fb.Name] = fb
		}
		for _, name := range pf.FuncNames() {
			ff := pf.Funcs[name]
			fb, known := budgets[name]
			if known && fb.CanInline && !ff.CanInline {
				reason := ff.InlineReason
				if reason == "" {
					reason = "no inline diagnostic for this function"
				}
				out = append(out, Finding{
					Kind: FindingNotInlinable, Package: pb.Path, Func: name, What: reason,
				})
			}
			// Multiset difference: each allowed expression covers one
			// occurrence; everything uncovered is a new escape.
			allowed := make(map[string]int, len(fb.Escapes))
			for _, e := range fb.Escapes {
				allowed[e]++
			}
			for _, s := range ff.Escapes {
				if allowed[s.What] > 0 {
					allowed[s.What]--
					continue
				}
				out = append(out, Finding{
					Kind: FindingNewEscape, Package: pb.Path, Func: name,
					What: s.What, Site: s,
				})
			}
		}
	}
	return out
}
