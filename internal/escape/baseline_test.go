package escape

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func factsFixture() []*PackageFacts {
	return []*PackageFacts{
		{
			Path: "example.com/internal/vector",
			Funcs: map[string]*FuncFacts{
				"Packed.Dot": {Name: "Packed.Dot", CanInline: false},
				"Sparse.At":  {Name: "Sparse.At", CanInline: true},
				"NewSparse": {Name: "NewSparse", CanInline: false, Escapes: []Site{
					{File: "internal/vector/vector.go", Line: 31, Col: 15, What: "make([]pair, 0, len(idx))"},
				}},
			},
		},
	}
}

func TestDiffClean(t *testing.T) {
	facts := factsFixture()
	base := FromFacts("go1.24.0", facts)
	if findings := Diff(base, facts); len(findings) != 0 {
		t.Fatalf("identical facts produced findings: %v", findings)
	}
}

func TestDiffNewEscape(t *testing.T) {
	base := FromFacts("go1.24.0", factsFixture())
	cur := factsFixture()
	cur[0].Funcs["Packed.Dot"].Escapes = []Site{{
		File: "internal/vector/packed.go", Line: 40, Col: 9, What: "&acc",
		Flow: []string{"flow: {heap} = &acc:", "from &acc (address-of) at internal/vector/packed.go:40:9"},
	}}
	findings := Diff(base, cur)
	if len(findings) != 1 {
		t.Fatalf("got %d findings %v, want 1", len(findings), findings)
	}
	f := findings[0]
	if f.Kind != FindingNewEscape || f.Func != "Packed.Dot" || f.What != "&acc" {
		t.Errorf("finding = %+v, want new-escape on Packed.Dot of &acc", f)
	}
	var b strings.Builder
	f.Render(&b)
	for _, frag := range []string{"Packed.Dot", "new heap escape", "&acc", "packed.go:40:9", "flow: {heap}"} {
		if !strings.Contains(b.String(), frag) {
			t.Errorf("rendered report missing %q:\n%s", frag, b.String())
		}
	}
}

// A second occurrence of a budgeted expression is still a finding: the
// budget is a multiset, not a set.
func TestDiffMultisetBudget(t *testing.T) {
	base := FromFacts("go1.24.0", factsFixture())
	cur := factsFixture()
	ns := cur[0].Funcs["NewSparse"]
	ns.Escapes = append(ns.Escapes, Site{
		File: "internal/vector/vector.go", Line: 44, Col: 15, What: "make([]pair, 0, len(idx))",
	})
	findings := Diff(base, cur)
	if len(findings) != 1 || findings[0].Kind != FindingNewEscape {
		t.Fatalf("duplicate of budgeted escape: got %v, want one new-escape finding", findings)
	}
}

func TestDiffNotInlinable(t *testing.T) {
	base := FromFacts("go1.24.0", factsFixture())
	cur := factsFixture()
	cur[0].Funcs["Sparse.At"].CanInline = false
	cur[0].Funcs["Sparse.At"].InlineReason = "function too complex: cost 112 exceeds budget 80"
	findings := Diff(base, cur)
	if len(findings) != 1 {
		t.Fatalf("got %d findings %v, want 1", len(findings), findings)
	}
	f := findings[0]
	if f.Kind != FindingNotInlinable || f.Func != "Sparse.At" {
		t.Errorf("finding = %+v, want not-inlinable on Sparse.At", f)
	}
	if !strings.Contains(f.String(), "cost 112 exceeds budget 80") {
		t.Errorf("finding %q lost the compiler reason", f.String())
	}
	// The reverse transition — a function becoming inlinable — is an
	// improvement, not a violation.
	cur2 := factsFixture()
	cur2[0].Funcs["Packed.Dot"].CanInline = true
	if fs := Diff(base, cur2); len(fs) != 0 {
		t.Errorf("newly-inlinable function produced findings: %v", fs)
	}
}

func TestDiffMissingPackage(t *testing.T) {
	base := FromFacts("go1.24.0", factsFixture())
	findings := Diff(base, nil)
	if len(findings) != 1 || findings[0].Kind != FindingMissingPackage {
		t.Fatalf("got %v, want one missing-package finding", findings)
	}
}

// Unknown functions are budgetless: clean ones pass without ceremony,
// and the moment one gains an escape the gate names it.
func TestDiffUnknownFunction(t *testing.T) {
	base := FromFacts("go1.24.0", factsFixture())
	cur := factsFixture()
	cur[0].Funcs["NewHelper"] = &FuncFacts{Name: "NewHelper", CanInline: true}
	if fs := Diff(base, cur); len(fs) != 0 {
		t.Errorf("clean unknown function produced findings: %v", fs)
	}
	cur[0].Funcs["NewHelper"].Escapes = []Site{{File: "f.go", Line: 3, What: "new(big)"}}
	fs := Diff(base, cur)
	if len(fs) != 1 || fs[0].Kind != FindingNewEscape || fs[0].Func != "NewHelper" {
		t.Errorf("escaping unknown function: got %v, want one new-escape on NewHelper", fs)
	}
	// Deleted functions carry no obligation.
	cur2 := factsFixture()
	delete(cur2[0].Funcs, "Sparse.At")
	if fs := Diff(base, cur2); len(fs) != 0 {
		t.Errorf("deleted function produced findings: %v", fs)
	}
}

func TestBaselineSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ESCAPE_baseline.json")
	base := FromFacts("go1.24.0", factsFixture())
	if err := base.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Go != "go1.24.0" || len(loaded.Packages) != 1 {
		t.Fatalf("round trip lost data: %+v", loaded)
	}
	if fs := Diff(loaded, factsFixture()); len(fs) != 0 {
		t.Errorf("round-tripped baseline diffs against its own facts: %v", fs)
	}
	// Saving twice is byte-identical: -update must be deterministic.
	path2 := filepath.Join(dir, "again.json")
	if err := base.Save(path2); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if string(a) != string(b) {
		t.Error("two saves of the same baseline differ byte-wise")
	}
}

func TestLoadRejectsBadBaselines(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.json":     `{"go":"go1.24.0","packages":[]}`,
		"nopath.json":    `{"go":"go1.24.0","packages":[{"path":"","functions":[]}]}`,
		"malformed.json": `{"go":`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("Load(%s) accepted a bad baseline", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("Load of a missing file succeeded")
	}
}
