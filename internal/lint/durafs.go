package lint

import (
	"go/ast"
)

// DuraFS enforces the artifact-durability boundary established by
// internal/durable: the packages that write crash-recoverable artifacts
// (the pipeline journal, explain logs, profile manifests, blackbox
// bundles, corpus dumps) must create those files through the durable
// writers, never with bare os calls. A bare os.Create has no fsync, no
// atomic rename, and no torn-tail contract — a crash mid-write leaves a
// half-file the recovery path cannot distinguish from corruption.
//
// Flagged in scope: os.Create, os.OpenFile, os.WriteFile. Reads
// (os.Open, os.ReadFile, os.Stat, os.ReadDir) and directory calls
// (os.MkdirAll, os.Remove) are deliberately not flagged: reads cannot
// tear an artifact, and directory creation/removal has no payload to
// lose. Deliberately non-durable sites (dev-only dumps, files owned by a
// durable.Dir bundle mid-build) carry a reasoned //lint:allow durafs
// directive.
var DuraFS = &Analyzer{
	Name: "durafs",
	Doc:  "artifact packages must create files through internal/durable, not bare os calls",
	Run:  runDuraFS,
}

// duraFSScope lists the artifact-writing packages. internal/obs covers
// its subpackages (explain, prof, blackbox) via pathMatches; the durable
// package itself is out of scope — it is the one place the raw os calls
// are supposed to live.
var duraFSScope = []string{
	"internal/pipeline",
	"internal/obs",
	"internal/corpus",
}

// duraFSFuncs maps each flagged os function to the durable replacement
// named in the diagnostic.
var duraFSFuncs = []struct{ name, fix string }{
	{"Create", "durable.OpenTrunc + durable.SyncClose for streams, or durable.WriteFileAtomic"},
	{"OpenFile", "durable.CreateJSONL/AppendJSONL for logs, or durable.OS.OpenFile behind a durable writer"},
	{"WriteFile", "durable.WriteFileAtomic (or Dir.WriteFile inside a bundle)"},
}

func runDuraFS(p *Pass) {
	if !pathMatches(p.ImportPath, duraFSScope...) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range duraFSFuncs {
				if isPkgFunc(p, call, "os", fn.name) {
					p.Reportf(call.Pos(), "os.%s in an artifact package bypasses the durability layer (no fsync, no atomic rename, no torn-tail contract): use %s", fn.name, fn.fix)
					return true
				}
			}
			return true
		})
	}
}
