package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicSafe enforces a single protection regime per struct field: any
// field that is ever accessed through a package-level sync/atomic
// function (atomic.AddUint64(&s.gen, 1), atomic.LoadInt64(&s.n), ...)
// must be accessed that way everywhere. A plain read or write of such a
// field races with the atomic sites — the race detector only catches it
// when the schedule cooperates — and a mutex-guarded plain access is no
// better, because the atomic sites do not take the mutex. The typed
// atomics (atomic.Int64, atomic.Pointer[T]) are immune by construction
// — their values are unexported — which is why the repo's gen counters
// and snapshot pointers use them; this analyzer pins down the old-style
// address-taken pattern so it cannot creep back in half-converted form.
//
// The check runs in every package: unsynchronized state is a bug
// wherever it lives.
var AtomicSafe = &Analyzer{
	Name: "atomicsafe",
	Doc:  "forbid plain or mutex-mixed access to struct fields that are accessed via sync/atomic",
	Run:  runAtomicSafe,
}

func runAtomicSafe(p *Pass) {
	// Pass 1: every field whose address is taken in a sync/atomic call,
	// with the first such site for the report text, plus the selector
	// nodes that are themselves part of an atomic call.
	atomicAt := make(map[types.Object]token.Position)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v, ok := p.ObjectOf(sel.Sel).(*types.Var)
				if !ok || !v.IsField() {
					continue
				}
				if _, seen := atomicAt[v]; !seen {
					atomicAt[v] = p.Fset.Position(call.Pos())
				}
				inAtomicCall[sel] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: any other selector of those fields is a violation. The
	// message distinguishes mutex-mixed accesses (the enclosing function
	// also locks a mutex) from bare plain accesses.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			locked := isFunc && fd.Body != nil && locksMutex(p, fd.Body)
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || inAtomicCall[sel] {
					return true
				}
				v, ok := p.ObjectOf(sel.Sel).(*types.Var)
				if !ok {
					return true
				}
				at, isAtomic := atomicAt[v]
				if !isAtomic {
					return true
				}
				if locked {
					p.Reportf(sel.Pos(), "field %s is accessed via sync/atomic (%s) but plainly under a mutex here: the atomic sites do not take the lock, so this still races; pick one protection regime", v.Name(), at)
				} else {
					p.Reportf(sel.Pos(), "plain access to field %s, which is accessed via sync/atomic (%s): every read and write must go through sync/atomic", v.Name(), at)
				}
				return true
			})
		}
	}
}

// isAtomicPkgCall reports whether call invokes a package-level function
// of sync/atomic. Methods of the typed atomics also live in that
// package but take their value through the receiver, not an address
// argument, so the receiver check keeps them out.
func isAtomicPkgCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// locksMutex reports whether the block contains a Lock or RLock call on
// a sync.Mutex or sync.RWMutex.
func locksMutex(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, method := range []string{"Lock", "RLock"} {
			if receiverNamed(p, call, "sync", "Mutex", method) ||
				receiverNamed(p, call, "sync", "RWMutex", method) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
