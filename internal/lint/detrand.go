package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// DetRand enforces determinism in the packages whose outputs must be
// bit-reproducible across runs: the ranking strategies, the update
// detectors, the sparse-vector kernels, and the pipeline's journal/replay
// path. Three families of nondeterminism are flagged:
//
//  1. wall-clock reads (time.Now, time.Since) — results must depend only
//     on inputs and seeds, never on when the run happened;
//  2. the global math/rand source (rand.Intn, rand.Float64, ...) — all
//     randomness must flow from an explicitly seeded *rand.Rand;
//  3. order-dependent folds over map iteration — a float accumulation or
//     slice append inside `for ... range m` where m is a map leaks Go's
//     randomized iteration order into the result (float addition is not
//     associative; appended order is observable);
//  4. sync.Pool Get/Put — which buffer Get returns depends on GC timing
//     and goroutine scheduling, so any value read from a pooled object
//     before it is overwritten is nondeterministic. Pooled-buffer reuse
//     in the scoring fast paths is legitimate precisely because the
//     buffers are fully overwritten before use; each site must say so
//     with a reasoned //lint:allow directive.
//
// Per-key map writes, integer counters, and commutative integer folds
// (XOR hashing) are order-independent and deliberately not flagged.
// Telemetry-only timing carries //lint:allow detrand directives.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock, global rand, and order-dependent map folds in determinism-critical packages",
	Run:  runDetRand,
}

// detRandScope lists the determinism-critical packages. The explain
// substrate is in scope because its artifacts (drift statistics,
// attribution folds) are compared byte-for-byte across runs by the
// determinism tests, so a map-order or wall-clock leak there is as
// observable as one in the detectors.
// internal/durable and internal/escape are in scope because crash
// recovery and the escape-budget baseline must be byte-reproducible;
// cmd/crashtest drives deterministic fault trajectories, so its
// scheduling decisions must not depend on wall-clock or global rand
// (its elapsed-time telemetry carries reasoned allows).
var detRandScope = []string{
	"internal/ranking",
	"internal/update",
	"internal/vector",
	"internal/pipeline",
	"internal/obs/explain",
	"internal/durable",
	"internal/escape",
	"cmd/crashtest",
}

// globalRandFuncs are the package-level math/rand functions that draw
// from the process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Intn": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true, "N": true, "IntN": true, "Int32N": true, "Int64N": true,
}

func runDetRand(p *Pass) {
	if !pathMatches(p.ImportPath, detRandScope...) {
		return
	}
	pipelinePkg := pathMatches(p.ImportPath, "internal/pipeline")
	for _, f := range p.Files {
		// In the pipeline package only the journal/replay path is
		// determinism-critical; pipeline.go measures real wall-clock
		// phase durations by design. The map-fold rule still applies
		// package-wide (ranking order must not depend on map order).
		base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		clockRules := !pipelinePkg || strings.Contains(base, "journal") || strings.Contains(base, "checkpoint")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// The pool rule applies package-wide (like the map-fold
				// rule): a pooled buffer is as nondeterministic in
				// pipeline.go as anywhere else.
				detRandPool(p, n)
				if !clockRules {
					return true
				}
				if isPkgFunc(p, n, "time", "Now") {
					p.Reportf(n.Pos(), "time.Now in determinism-critical package: results must depend only on inputs and seeds")
				}
				if isPkgFunc(p, n, "time", "Since") {
					p.Reportf(n.Pos(), "time.Since reads the wall clock in a determinism-critical package")
				}
			case *ast.SelectorExpr:
				if !clockRules {
					return true
				}
				detRandGlobalRand(p, n)
			case *ast.RangeStmt:
				detRandMapFold(p, n)
			}
			return true
		})
	}
}

// detRandGlobalRand flags any use of a package-level math/rand function
// that draws from the global source. Methods on an explicitly seeded
// *rand.Rand are fine; rand.New and rand.NewSource are the approved way
// to build one.
func detRandGlobalRand(p *Pass, sel *ast.SelectorExpr) {
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	if globalRandFuncs[fn.Name()] {
		p.Reportf(sel.Pos(), "global math/rand source (rand.%s): use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Name())
	}
}

// detRandPool flags sync.Pool Get and Put calls: pool contents survive
// (or vanish) across GC cycles and goroutine handoffs, so any state that
// leaks out of a recycled buffer is scheduling-dependent. Fast paths that
// fully overwrite pooled buffers before use are exempt via a reasoned
// //lint:allow directive at the call site.
func detRandPool(p *Pass, call *ast.CallExpr) {
	for _, method := range []string{"Get", "Put"} {
		if receiverNamed(p, call, "sync", "Pool", method) {
			p.Reportf(call.Pos(), "sync.Pool.%s in determinism-critical package: pooled-buffer identity depends on GC and scheduling; allow only if the buffer is fully overwritten before use", method)
			return
		}
	}
}

// detRandMapFold flags order-dependent folds inside a range over a map:
// compound float accumulation into, or append onto, a variable declared
// outside the loop. Reports anchor at the range statement so a single
// //lint:allow line above the loop covers the whole fold.
func detRandMapFold(p *Pass, rng *ast.RangeStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	declaredOutside := func(id *ast.Ident) bool {
		obj := p.ObjectOf(id)
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}
	reported := false
	report := func(format string, args ...any) {
		if !reported {
			p.Reportf(rng.For, format, args...)
			reported = true
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 {
			return true
		}
		id, ok := asg.Lhs[0].(*ast.Ident)
		if !ok || !declaredOutside(id) {
			return true
		}
		switch asg.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if tid := p.TypeOf(id); tid != nil {
				if bt, ok := tid.Underlying().(*types.Basic); ok && bt.Info()&types.IsFloat != 0 {
					report("float accumulation into %s over unordered map iteration: float addition is not associative, so the result depends on map order", id.Name)
				}
			}
		case token.ASSIGN:
			if call, ok := asg.Rhs[0].(*ast.CallExpr); ok {
				if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
					if _, isBuiltin := p.ObjectOf(fid).(*types.Builtin); isBuiltin {
						report("append to %s over unordered map iteration leaks map order into the slice: collect then sort", id.Name)
					}
				}
			}
		}
		return true
	})
}
