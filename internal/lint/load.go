package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The loader type-checks packages without golang.org/x/tools: it asks the
// go command for compiled export data ("go list -export -deps") and feeds
// the resulting .a files to the standard gc importer, while the packages
// under analysis themselves are parsed and checked from source. This
// gives full types.Info resolution using only the standard library.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Name       string
	Standard   bool
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// goList runs `go list -export -deps -json` for patterns in dir and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Name,Standard,GoFiles,Module,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportResolver maps import paths to compiled export-data files,
// populating itself lazily through `go list -export -deps`.
type exportResolver struct {
	dir     string
	exports map[string]string
}

func newExportResolver(dir string) *exportResolver {
	return &exportResolver{dir: dir, exports: make(map[string]string)}
}

// ensure loads export-data locations for the given import paths (and all
// their transitive dependencies) if not already known.
func (r *exportResolver) ensure(paths []string) error {
	var missing []string
	for _, p := range paths {
		if _, ok := r.exports[p]; !ok && p != "unsafe" {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	pkgs, err := goList(r.dir, missing)
	if err != nil {
		return err
	}
	r.add(pkgs)
	return nil
}

func (r *exportResolver) add(pkgs []*listedPackage) {
	for _, p := range pkgs {
		if p.Export != "" {
			r.exports[p.ImportPath] = p.Export
		}
	}
}

// lookup implements the importer.Lookup contract: an io.ReadCloser over
// the export data for one import path.
func (r *exportResolver) lookup(path string) (io.ReadCloser, error) {
	file, ok := r.exports[path]
	if !ok {
		// Fall back to a one-off go list for paths discovered only
		// inside export data (rare, but cheap to handle).
		if err := r.ensure([]string{path}); err != nil {
			return nil, fmt.Errorf("no export data for %q: %v", path, err)
		}
		if file, ok = r.exports[path]; !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// memImporter resolves imports from an in-memory package map first (used
// for fixture packages that only exist in testdata), then from compiled
// export data.
type memImporter struct {
	mem   map[string]*types.Package
	inner types.Importer
}

func (m memImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mem[path]; ok {
		return p, nil
	}
	return m.inner.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// parseFiles parses the named files (paths relative to dir) with comments.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package from source, resolving imports through
// imp. Soft type errors are collected, not fatal.
func check(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) *Package {
	pkg := &Package{ImportPath: importPath, Fset: fset, Files: files, Info: newInfo()}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tp, err := conf.Check(importPath, fset, files, pkg.Info)
	pkg.Types = tp
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	return pkg
}

// Load lists the packages matching patterns in the module rooted at (or
// containing) dir and returns the main-module packages type-checked from
// source, ready for analysis. Dependencies — standard library and
// in-module alike — are resolved from compiled export data, so loading
// is fast and requires only the go toolchain.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	resolver := newExportResolver(dir)
	resolver.add(listed)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", resolver.lookup)

	var targets []*listedPackage
	for _, p := range listed {
		if p.Standard || p.Module == nil || !p.Module.Main || len(p.GoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, check(fset, t.ImportPath, files, imp))
	}
	return pkgs, nil
}

// Fixture names one testdata package: the directory holding its sources
// and the import path to type-check it under. Fixtures are loaded in
// order, so a fixture may import an earlier one by its Path.
type Fixture struct {
	Path string
	Dir  string
}

// LoadFixtures type-checks testdata packages that live outside any
// module. Imports of real packages (standard library or this module's)
// resolve through export data produced by the go command in moduleDir;
// imports of earlier fixtures resolve in memory.
func LoadFixtures(moduleDir string, fixtures []Fixture) ([]*Package, error) {
	fset := token.NewFileSet()
	resolver := newExportResolver(moduleDir)
	mem := make(map[string]*types.Package)
	imp := memImporter{mem: mem, inner: importer.ForCompiler(fset, "gc", resolver.lookup)}

	var pkgs []*Package
	for _, fx := range fixtures {
		entries, err := os.ReadDir(fx.Dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range entries {
			if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		files, err := parseFiles(fset, fx.Dir, names)
		if err != nil {
			return nil, fmt.Errorf("fixture %s: %v", fx.Path, err)
		}
		// Resolve external imports up front in one go list call.
		var external []string
		for _, f := range files {
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if _, ok := mem[p]; !ok {
					external = append(external, p)
				}
			}
		}
		if err := resolver.ensure(external); err != nil {
			return nil, fmt.Errorf("fixture %s: %v", fx.Path, err)
		}
		pkg := check(fset, fx.Path, files, imp)
		if pkg.Types != nil {
			mem[fx.Path] = pkg.Types
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
