package lint

import (
	"fmt"
	"io"
)

// All is the project analyzer suite, in the order diagnostics are
// documented in DESIGN.md.
var All = []*Analyzer{
	DetRand,
	ObsEvent,
	CtxFlow,
	LockSafe,
	ErrPath,
	DuraFS,
	HotAlloc,
	AtomicSafe,
}

// Main loads the packages matching patterns from dir, runs every
// analyzer in suite, and prints diagnostics to w. It returns the process
// exit code: 0 for a clean tree, 1 when diagnostics were reported, 2 on
// load failure.
func Main(w io.Writer, dir string, suite []*Analyzer, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(w, "adaptlint: %v\n", err)
		return 2
	}
	hardFailed := false
	for _, pkg := range pkgs {
		// Type errors degrade resolution, which can hide findings; be
		// loud but still report what was found.
		if pkg.Types == nil {
			fmt.Fprintf(w, "adaptlint: package %s failed to type-check: %v\n", pkg.ImportPath, pkg.TypeErrors[0])
			hardFailed = true
		}
	}
	diags := Run(suite, pkgs)
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if hardFailed {
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(w, "adaptlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
