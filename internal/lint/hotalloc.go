package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// HotAlloc bans the allocation patterns that would quietly re-introduce
// per-score heap traffic into the packed scoring hot path — the invariant
// the AllocsPerRun budgets, benchgate, and escapegate enforce from the
// runtime and compiler sides. Four families are flagged in the declared
// hot-path files:
//
//  1. interface boxing — a concrete value passed to an interface-typed
//     parameter (sort.Slice's any, fmt's ...any) allocates when it
//     escapes, which for stdlib callees it almost always does;
//  2. fmt.* calls and string concatenation — formatting goes through
//     heap buffers and reflection; hot-path rendering uses strconv and
//     strings.Builder instead;
//  3. capturing closures passed outside the package — escape analysis
//     cannot prove a closure handed to another package stays on the
//     stack, so its captured frame is heap-allocated;
//  4. unpooled slice growth — append inside a loop onto a slice declared
//     with no capacity reallocates O(log n) times; hot code sizes the
//     slice up front or reuses a scratch buffer.
//
// Cold paths inside hot files (panic guards, debug String methods)
// carry reasoned //lint:allow hotalloc directives.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid interface boxing, fmt/concat, escaping closures, and unpooled slice growth in hot-path packages",
	Run:  runHotAlloc,
}

// hotAllocPackages are the packages that are hot-path in their entirety.
var hotAllocPackages = []string{
	"internal/vector",
}

// hotAllocFiles names the hot files of packages that mix hot kernels
// with cold training/strategy code.
var hotAllocFiles = map[string][]string{
	"internal/ranking": {"packed.go"},
}

func hotAllocInScope(p *Pass, f *ast.File) bool {
	if pathMatches(p.ImportPath, hotAllocPackages...) {
		return true
	}
	base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
	for frag, files := range hotAllocFiles {
		if !pathMatches(p.ImportPath, frag) {
			continue
		}
		for _, name := range files {
			if base == name {
				return true
			}
		}
	}
	return false
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		if !hotAllocInScope(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				hotAllocFmt(p, n)
				hotAllocBoxing(p, n)
				hotAllocClosure(p, n)
			case *ast.BinaryExpr:
				hotAllocConcat(p, n)
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(p.TypeOf(n.Lhs[0])) {
					p.Reportf(n.Pos(), "string concatenation allocates in a hot path: use strings.Builder or strconv")
				}
			case *ast.ForStmt:
				hotAllocGrowth(p, n.Body, n.Pos(), n.End())
			case *ast.RangeStmt:
				hotAllocGrowth(p, n.Body, n.Pos(), n.End())
			}
			return true
		})
	}
}

// hotAllocConcat flags runtime string concatenation. A chain like
// a+":"+b parses as nested ADDs; only the leftmost ADD (whose own left
// operand is not a string ADD) reports, so each chain yields one
// finding. Constant-folded concatenation is free and exempt.
func hotAllocConcat(p *Pass, be *ast.BinaryExpr) {
	if be.Op != token.ADD || !isString(p.TypeOf(be)) {
		return
	}
	if tv, ok := p.TypesInfo.Types[be]; ok && tv.Value != nil {
		return
	}
	if x, ok := ast.Unparen(be.X).(*ast.BinaryExpr); ok && x.Op == token.ADD && isString(p.TypeOf(x)) {
		return
	}
	p.Reportf(be.Pos(), "string concatenation allocates in a hot path: use strings.Builder or strconv")
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// hotAllocFmt flags calls into package fmt: every formatter boxes its
// operands and formats through heap buffers.
func hotAllocFmt(p *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	p.Reportf(call.Pos(), "fmt.%s in a hot path: formatting allocates; use strconv or strings.Builder", obj.Name())
}

// hotAllocBoxing flags concrete values passed to interface-typed
// parameters. The signature comes from the type info, so instantiated
// generics (slices.SortFunc and friends) are seen with their concrete
// parameter types and do not trip the rule.
func hotAllocBoxing(p *Pass, call *ast.CallExpr) {
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion, builtin, or unresolved
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice itself, no boxing
			}
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		p.Reportf(arg.Pos(), "boxing %s into %s allocates in a hot path", at, pt)
	}
}

// hotAllocClosure flags function literals that capture enclosing
// variables and are passed to another package: the callee is opaque to
// local escape reasoning, so the captured frame is heap-allocated.
// Capture-free literals (pure comparators) are plain code pointers and
// stay exempt.
func hotAllocClosure(p *Pass, call *ast.CallExpr) {
	var callee types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		callee = p.ObjectOf(fun.Sel)
	case *ast.Ident:
		callee = p.ObjectOf(fun)
	}
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == p.Pkg {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		if name := capturedVar(p, lit); name != "" {
			p.Reportf(lit.Pos(), "closure capturing %s passed to %s.%s in a hot path: the captured frame escapes; pass state explicitly or open-code the loop",
				name, callee.Pkg().Name(), callee.Name())
		}
	}
}

// capturedVar names one variable of the enclosing function the literal
// captures, or "" when it captures nothing.
func capturedVar(p *Pass, lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() || v.Pkg() != p.Pkg {
			return true
		}
		// Package-level variables are referenced, not captured.
		if p.Pkg != nil && v.Parent() == p.Pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
		}
		return true
	})
	return captured
}

// hotAllocGrowth flags `s = append(s, ...)` inside a loop when s was
// declared outside the loop with provably zero capacity (var s []T,
// s := []T{}, s := make([]T, 0)). Appends to capacity-sized or
// unknown-origin slices are left alone. Each append is attributed to its
// innermost enclosing loop, so nested loops are skipped here and get
// their own visit.
func hotAllocGrowth(p *Pass, body *ast.BlockStmt, loopPos, loopEnd token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fid.Name != "append" {
				return true
			}
			if _, isBuiltin := p.ObjectOf(fid).(*types.Builtin); !isBuiltin {
				return true
			}
			first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok || p.ObjectOf(first) != p.ObjectOf(id) {
				return true
			}
			obj := p.ObjectOf(id)
			if obj == nil || (obj.Pos() >= loopPos && obj.Pos() <= loopEnd) {
				return true
			}
			init, known := declInit(p, obj)
			if known && zeroCapInit(p, init) {
				p.Reportf(n.Pos(), "append grows %s inside a loop without preallocated capacity in a hot path: size it with make(_, 0, n) or reuse a scratch buffer", id.Name)
			}
		}
		return true
	})
}

// declInit locates obj's declaration and returns its initializer
// expression (nil for `var s []T`). known is false when the declaration
// is not in the analyzed files or has an unanalyzable shape
// (multi-value assignment, function parameter).
func declInit(p *Pass, obj types.Object) (init ast.Expr, known bool) {
	for _, f := range p.Files {
		if obj.Pos() < f.Pos() || obj.Pos() > f.End() {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if known {
				return false
			}
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if name.Pos() != obj.Pos() {
						continue
					}
					if len(n.Values) == 0 {
						known = true // var s []T
					} else if len(n.Values) == len(n.Names) {
						init, known = n.Values[i], true
					}
					return false
				}
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Pos() != obj.Pos() {
						continue
					}
					if len(n.Rhs) == len(n.Lhs) {
						init, known = n.Rhs[i], true
					}
					return false
				}
			}
			return true
		})
		break
	}
	return init, known
}

// zeroCapInit reports whether init provably yields a zero-capacity
// slice: no initializer, an empty composite literal, or a two-argument
// make with constant length 0.
func zeroCapInit(p *Pass, init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case nil:
		return true
	case *ast.CompositeLit:
		if _, ok := p.TypeOf(e).Underlying().(*types.Slice); ok {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr:
		fid, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || fid.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if _, isBuiltin := p.ObjectOf(fid).(*types.Builtin); !isBuiltin {
			return false
		}
		if tv, ok := p.TypesInfo.Types[e.Args[1]]; ok && tv.Value != nil {
			return tv.Value.String() == "0"
		}
	}
	return false
}
