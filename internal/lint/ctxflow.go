package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow guards context propagation in the cancellable core (the
// pipeline and the extractors). Two mistakes are flagged:
//
//  1. minting a fresh context with context.Background() or context.TODO()
//     — inside these packages a context always arrives from the caller;
//     a fresh root silently detaches the work from cancellation,
//     deadlines, and the kill-and-resume machinery. The documented
//     compat shims (Run, ComputeLabels, interface adapters with no ctx
//     parameter) carry //lint:allow ctxflow directives.
//
//  2. a function that receives a context.Context but calls a
//     *Context-suffixed variant without passing any context — the classic
//     refactoring slip where FooContext(...) is introduced and a caller
//     keeps invoking it with everything except the ctx it already holds.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must flow: no fresh Background/TODO roots, no dropped ctx on *Context calls",
	Run:  runCtxFlow,
}

var ctxFlowScope = []string{"internal/pipeline", "internal/extract"}

func runCtxFlow(p *Pass) {
	if !pathMatches(p.ImportPath, ctxFlowScope...) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hasCtx := funcReceivesContext(p, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isPkgFunc(p, call, "context", "Background"):
					ctxFlowReportFresh(p, call, hasCtx, "context.Background()")
				case isPkgFunc(p, call, "context", "TODO"):
					ctxFlowReportFresh(p, call, hasCtx, "context.TODO()")
				default:
					if hasCtx {
						ctxFlowCheckDropped(p, call)
					}
				}
				return true
			})
		}
	}
}

func ctxFlowReportFresh(p *Pass, call *ast.CallExpr, hasCtx bool, what string) {
	if hasCtx {
		p.Reportf(call.Pos(), "%s in a function that already receives a context: pass the received ctx instead", what)
		return
	}
	p.Reportf(call.Pos(), "%s mints a fresh context root inside the cancellable core: accept a ctx parameter or use a documented compat shim", what)
}

// ctxFlowCheckDropped flags calls to *Context-suffixed functions that
// receive no context-typed argument even though the caller holds one.
func ctxFlowCheckDropped(p *Pass, call *ast.CallExpr) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return
	}
	if name == "Context" || !strings.HasSuffix(name, "Context") {
		return
	}
	for _, arg := range call.Args {
		if isContextType(p.TypeOf(arg)) {
			return
		}
	}
	p.Reportf(call.Pos(), "call to %s drops the context this function already receives", name)
}

// funcReceivesContext reports whether any parameter of fn has type
// context.Context.
func funcReceivesContext(p *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if isContextType(p.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
