// Package lint is a small, dependency-free static-analysis framework in
// the spirit of golang.org/x/tools/go/analysis, built on the standard
// library's go/ast, go/types, and go/importer. It exists because this
// repository enforces project-specific invariants — determinism of the
// ranking pipeline, a closed registry of observability names, context
// propagation, lock hygiene, and CLI exit-path discipline — that generic
// linters cannot know about, and because the module deliberately has no
// third-party dependencies.
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics. Findings can be suppressed at the source line
// with a directive comment:
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the flagged line or on the line immediately above it.
// The reason is mandatory: a bare allow is itself a diagnostic, and so
// is a stale allow that no longer suppresses anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package via the Pass
// and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass)
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed non-test sources of the package.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the resolution results (Types, Defs, Uses,
	// Selections) for Files.
	TypesInfo *types.Info
	// ImportPath is the path the package was loaded under. Analyzers
	// scope themselves by matching against it.
	ImportPath string

	allows map[string][]allowDirective // filename -> directives
	diags  *[]Diagnostic
}

type allowDirective struct {
	line     int    // line the directive comment starts on
	analyzer string // analyzer name it suppresses
	reason   string // justification text (may be empty — flagged elsewhere)
	used     bool
}

// Reportf records a diagnostic at pos unless an allow directive for this
// analyzer covers the line (same line or the line immediately above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for i := range p.allows[position.Filename] {
		d := &p.allows[position.Filename][i]
		if d.analyzer != p.Analyzer.Name {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			d.used = true
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe shorthand for TypesInfo.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (nil when unresolved).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects soft type-check errors; analysis proceeds on a
	// best-effort basis when non-empty.
	TypeErrors []error
}

// Run applies each analyzer to each package and returns all diagnostics
// sorted by position. Directive hygiene is checked once per package:
// an //lint:allow with no reason, or naming an unknown analyzer, is
// itself reported.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		allows, bad := collectAllows(pkg.Fset, pkg.Files, known)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ImportPath: pkg.ImportPath,
				allows:     allows,
				diags:      &diags,
			}
			a.Run(pass)
		}
		// Stale-directive sweep: a well-formed allow whose analyzer ran
		// here yet suppressed nothing is dead weight — the code it
		// excused was fixed, moved, or was never in the analyzer's
		// scope. Left in place it documents an exemption that does not
		// exist and would silently mask a future regression on its line.
		for filename, ds := range allows {
			for i := range ds {
				if d := &ds[i]; !d.used && known[d.analyzer] {
					diags = append(diags, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      token.Position{Filename: filename, Line: d.line},
						Message:  fmt.Sprintf("stale //lint:allow %s: it suppresses no diagnostic; remove it", d.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

const allowPrefix = "//lint:allow"

// collectAllows scans the comments of every file for allow directives and
// reports malformed ones (missing reason, unknown analyzer name).
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (map[string][]allowDirective, []Diagnostic) {
	allows := make(map[string][]allowDirective)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					bad = append(bad, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "malformed //lint:allow: missing analyzer name",
					})
					continue
				case !known[name]:
					bad = append(bad, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", name),
					})
					continue
				case reason == "":
					bad = append(bad, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow %s needs a reason", name),
					})
					continue
				}
				allows[pos.Filename] = append(allows[pos.Filename], allowDirective{
					line:     pos.Line,
					analyzer: name,
					reason:   reason,
				})
			}
		}
	}
	return allows, bad
}

// pathMatches reports whether an import path is, or is under, any of the
// given package path fragments. A fragment matches when the path equals
// it, ends with "/"+fragment, or contains "/"+fragment+"/". This lets
// analyzers scope to "internal/ranking" and match both the real module
// path and fixture paths used in tests.
func pathMatches(importPath string, fragments ...string) bool {
	for _, frag := range fragments {
		if importPath == frag ||
			strings.HasSuffix(importPath, "/"+frag) ||
			strings.Contains(importPath, "/"+frag+"/") ||
			strings.HasPrefix(importPath, frag+"/") {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether call is a call of the package-level function
// pkgPath.name (e.g. "time".Now), resolved through the type info.
func isPkgFunc(p *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// receiverNamed reports whether call is a method call whose receiver's
// (possibly pointer) named type is typeName declared in a package whose
// path matches pkgFragment, and whether the method name is methodName.
func receiverNamed(p *Pass, call *ast.CallExpr, pkgFragment, typeName, methodName string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != methodName {
		return false
	}
	tv := p.TypeOf(sel.X)
	if tv == nil {
		return false
	}
	if ptr, ok := tv.(*types.Pointer); ok {
		tv = ptr.Elem()
	}
	named, ok := tv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return pathMatches(obj.Pkg().Path(), pkgFragment)
}
