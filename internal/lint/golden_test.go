package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"adaptiverank/internal/lint"
)

// The golden harness mirrors analysistest's convention: fixture sources
// under testdata/ carry `// want "regexp"` comments (double- or
// back-quoted, several per line allowed) on the lines where the analyzer
// under test must report, and the test fails on any unexpected or
// missing diagnostic.

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, path string) map[int][]*expectation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wants := make(map[int][]*expectation)
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		for _, q := range quotedRe.FindAllString(m[1], -1) {
			var pat string
			if q[0] == '`' {
				pat = q[1 : len(q)-1]
			} else {
				pat, err = strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", path, line, q, err)
				}
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, pat, err)
			}
			wants[line] = append(wants[line], &expectation{re: re})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return wants
}

// runGolden loads the fixtures, runs one analyzer, and checks its
// diagnostics against the want comments in every fixture file.
func runGolden(t *testing.T, a *lint.Analyzer, fixtures []lint.Fixture) {
	t.Helper()
	pkgs, err := lint.LoadFixtures(".", fixtures)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", p.ImportPath, e)
		}
	}
	wants := make(map[string]map[int][]*expectation)
	for _, fx := range fixtures {
		entries, err := os.ReadDir(fx.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				path := filepath.Join(fx.Dir, e.Name())
				wants[path] = parseWants(t, path)
			}
		}
	}
	diags := lint.Run([]*lint.Analyzer{a}, pkgs)
	for _, d := range diags {
		var hit *expectation
		for _, exp := range wants[d.Pos.Filename][d.Pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				hit = exp
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		hit.matched = true
	}
	for path, byLine := range wants {
		for line, exps := range byLine {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s:%d: no diagnostic matched %q", path, line, exp.re)
				}
			}
		}
	}
}

func TestDetRandGolden(t *testing.T) {
	runGolden(t, lint.DetRand, []lint.Fixture{
		{Path: "fixture.example/internal/ranking", Dir: "testdata/detrand/ranking"},
		{Path: "fixture.example/internal/pipeline", Dir: "testdata/detrand/pipeline"},
		{Path: "fixture.example/internal/learn", Dir: "testdata/detrand/learn"},
	})
}

func TestObsEventGolden(t *testing.T) {
	runGolden(t, lint.ObsEvent, []lint.Fixture{
		{Path: "fixture.example/internal/obs", Dir: "testdata/obsevent/obs"},
		{Path: "fixture.example/internal/pipeline", Dir: "testdata/obsevent/client"},
	})
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, lint.CtxFlow, []lint.Fixture{
		{Path: "fixture.example/internal/pipeline", Dir: "testdata/ctxflow/pipeline"},
		{Path: "fixture.example/internal/ranking", Dir: "testdata/ctxflow/ranking"},
	})
}

func TestLockSafeGolden(t *testing.T) {
	runGolden(t, lint.LockSafe, []lint.Fixture{
		{Path: "fixture.example/internal/obs", Dir: "testdata/locksafe/obs"},
	})
}

func TestErrPathGolden(t *testing.T) {
	runGolden(t, lint.ErrPath, []lint.Fixture{
		{Path: "fixture.example/cmd/badcli", Dir: "testdata/errpath/badcli"},
		{Path: "fixture.example/tools/demo", Dir: "testdata/errpath/demo"},
	})
}

func TestDuraFSGolden(t *testing.T) {
	runGolden(t, lint.DuraFS, []lint.Fixture{
		{Path: "fixture.example/internal/obs", Dir: "testdata/durafs/obs"},
		{Path: "fixture.example/internal/extract", Dir: "testdata/durafs/extract"},
	})
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, lint.HotAlloc, []lint.Fixture{
		{Path: "fixture.example/internal/vector", Dir: "testdata/hotalloc/vector"},
		{Path: "fixture.example/internal/ranking", Dir: "testdata/hotalloc/ranking"},
		{Path: "fixture.example/internal/extract", Dir: "testdata/hotalloc/extract"},
	})
}

func TestAtomicSafeGolden(t *testing.T) {
	runGolden(t, lint.AtomicSafe, []lint.Fixture{
		{Path: "fixture.example/internal/obs", Dir: "testdata/atomicsafe/obs"},
	})
}

// TestDirectiveHygiene checks that malformed //lint:allow directives are
// themselves diagnostics: a missing reason, an unknown analyzer name,
// and a stale directive that suppresses nothing must all be reported,
// while a well-formed directive doing its job must not be.
func TestDirectiveHygiene(t *testing.T) {
	pkgs, err := lint.LoadFixtures(".", []lint.Fixture{
		{Path: "fixture.example/internal/ranking", Dir: "testdata/directive/pkg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Analyzer{lint.DetRand}, pkgs)
	var msgs []string
	for _, d := range diags {
		if d.Analyzer != "lintdirective" {
			t.Errorf("unexpected non-directive diagnostic: %s", d)
			continue
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d directive diagnostics %v, want 3", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "needs a reason") {
		t.Errorf("first diagnostic %q should flag the missing reason", msgs[0])
	}
	if !strings.Contains(msgs[1], "unknown analyzer") {
		t.Errorf("second diagnostic %q should flag the unknown analyzer", msgs[1])
	}
	if !strings.Contains(msgs[2], "stale") {
		t.Errorf("third diagnostic %q should flag the stale directive", msgs[2])
	}
}
