package lint

import (
	"go/ast"
	"go/types"
)

// LockSafe polices critical sections in the observability layer and the
// pipeline: while a sync.Mutex or sync.RWMutex is held, code must not
// perform operations that can block indefinitely or re-enter the
// recording fan-out. Flagged inside a critical section:
//
//   - calls to a method named Record — the recorder fan-out can reach
//     subscribers, the watchdog, and file sinks, any of which may take
//     their own locks (lock-order inversion) or block;
//   - channel sends outside a select with a default clause — a slow
//     subscriber would wedge every caller of the lock;
//   - time.Sleep — sleeping under a lock turns one slow path into a
//     convoy.
//
// The analysis is intra-procedural and syntactic: a section opens at
// x.Lock()/x.RLock() and closes at the matching x.Unlock()/x.RUnlock()
// in the same block structure; `defer x.Unlock()` holds the lock for the
// rest of the function. Deliberate holds (the tee recorder's ordered
// fan-out) carry //lint:allow locksafe directives explaining why they
// are safe.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "no blocking operations (Record fan-out, bare channel send, Sleep) while holding a mutex",
	Run:  runLockSafe,
}

var lockSafeScope = []string{"internal/obs", "internal/pipeline"}

func runLockSafe(p *Pass) {
	if !pathMatches(p.ImportPath, lockSafeScope...) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				scanBlock(p, fn.Body.List, map[string]bool{})
			}
		}
	}
}

// scanBlock walks one statement list, tracking which mutexes are held.
// Nested blocks get a copy of the held set, so an unlock on one branch
// does not leak out of it.
func scanBlock(p *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, op := lockOp(p, call); key != "" {
					switch op {
					case "lock":
						held[key] = true
						continue
					case "unlock":
						delete(held, key)
						continue
					}
				}
			}
		case *ast.DeferStmt:
			if key, op := lockOp(p, s.Call); key != "" && op == "unlock" {
				held[key] = true // held until function return
				continue
			}
		}
		if len(held) > 0 {
			checkHeld(p, stmt, held)
		} else {
			// Recurse into nested blocks that may open their own
			// critical sections.
			switch s := stmt.(type) {
			case *ast.BlockStmt:
				scanBlock(p, s.List, copyHeld(held))
			case *ast.IfStmt:
				scanBlock(p, s.Body.List, copyHeld(held))
				if s.Else != nil {
					scanBlock(p, []ast.Stmt{s.Else}, copyHeld(held))
				}
			case *ast.ForStmt:
				scanBlock(p, s.Body.List, copyHeld(held))
			case *ast.RangeStmt:
				scanBlock(p, s.Body.List, copyHeld(held))
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scanBlock(p, cc.Body, copyHeld(held))
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						scanBlock(p, cc.Body, copyHeld(held))
					}
				}
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					scanBlock(p, lit.Body.List, map[string]bool{})
				}
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k := range held {
		c[k] = true
	}
	return c
}

// checkHeld reports blocking operations anywhere inside stmt while the
// locks in held are taken. Goroutine bodies start lock-free; sends that
// sit directly in a select with a default clause are non-blocking.
func checkHeld(p *Pass, stmt ast.Stmt, held map[string]bool) {
	lockName := func() string { return anyKey(held) }
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal called inline still runs under the lock, but a
			// `go func(){...}()` body does not; being conservative
			// either way, only goroutine bodies are skipped (handled
			// below via GoStmt).
			return true
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				// A send/receive comm op in a select with default is
				// non-blocking; the case bodies still run under the
				// lock, so walk them.
				if !hasDefault && cc.Comm != nil {
					ast.Inspect(cc.Comm, walk)
				}
				for _, b := range cc.Body {
					ast.Inspect(b, walk)
				}
			}
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				p.Reportf(n.Pos(), "channel send while holding %s: a slow receiver blocks every caller of the lock; use a select with default or send after unlocking", lockName())
			}
		case *ast.CallExpr:
			if key, op := lockOp(p, n); key != "" && op == "unlock" {
				delete(held, key)
				return true
			}
			if len(held) == 0 {
				return true
			}
			if isPkgFunc(p, n, "time", "Sleep") {
				p.Reportf(n.Pos(), "time.Sleep while holding %s", lockName())
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Record" {
				p.Reportf(n.Pos(), "Record call while holding %s: the recorder fan-out may take other locks or block on sinks", lockName())
			}
		}
		return true
	}
	ast.Inspect(stmt, walk)
}

func anyKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockOp classifies a call as a lock or unlock on a sync.Mutex or
// sync.RWMutex and returns a stable key for the receiver expression.
func lockOp(p *Pass, call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", ""
	}
	return types.ExprString(sel.X), op
}
