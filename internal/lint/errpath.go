package lint

import (
	"go/ast"
	"strings"
)

// ErrPath enforces the exit-code discipline of the CLIs: every command
// under cmd/ is structured as
//
//	func main() { os.Exit(run()) }
//	func run() int { ... deferred flushes run ... }
//
// so that deferred trace closes, checkpoint flushes, and journal syncs
// execute before the process exits. os.Exit anywhere else skips every
// deferred function, silently truncating traces and corrupting resumable
// state; log.Fatal and friends are os.Exit in disguise. ErrPath flags
// both: os.Exit is legal only as main's single os.Exit(run()) statement,
// and log.Fatal/log.Panic are never legal in a CLI.
var ErrPath = &Analyzer{
	Name: "errpath",
	Doc:  "CLIs must exit through os.Exit(run()) so deferred flushes run",
	Run:  runErrPath,
}

var errPathFatal = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

func runErrPath(p *Pass) {
	if p.Pkg == nil || p.Pkg.Name() != "main" || !strings.Contains(p.ImportPath+"/", "/cmd/") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inMain := fn.Name.Name == "main" && fn.Recv == nil
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgFunc(p, call, "os", "Exit") {
					if !(inMain && isExitRun(call)) {
						p.Reportf(call.Pos(), "os.Exit skips deferred trace/checkpoint flushes: return an exit code to run() and let main call os.Exit(run())")
					}
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && errPathFatal[sel.Sel.Name] {
					if obj := p.ObjectOf(sel.Sel); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "log" {
						p.Reportf(call.Pos(), "log.%s exits without running deferred flushes: report the error and return a code from run()", sel.Sel.Name)
					}
				}
				return true
			})
		}
	}
}

// isExitRun matches the blessed exit statement os.Exit(run()).
func isExitRun(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(inner.Fun).(*ast.Ident)
	return ok && id.Name == "run"
}
