// Fixture: a package outside the ctxflow scope; fresh roots are not
// flagged here.
package ranking

import "context"

func Root() context.Context { return context.Background() }
