// Fixture for the ctxflow analyzer: contexts must flow through the
// cancellable core, not be minted or dropped inside it.
package pipeline

import "context"

// RunContext is the cancellable entry point.
func RunContext(ctx context.Context, n int) { _, _ = ctx, n }

func helperContext(n int) { _ = n }

func helperWithCtxContext(ctx context.Context, n int) { _, _ = ctx, n }

// Run mints a fresh root: flagged.
func Run(n int) {
	RunContext(context.Background(), n) // want `context.Background\(\) mints a fresh context root`
}

// Process already receives a context yet mints and drops: both flagged.
func Process(ctx context.Context, n int) {
	_ = context.TODO() // want `context.TODO\(\) in a function that already receives a context`
	helperContext(n)   // want `call to helperContext drops the context`
	helperWithCtxContext(ctx, n)
}

// Derive builds a child context from the received one: not flagged.
func Derive(ctx context.Context, n int) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	RunContext(child, n)
}

// Shim is the documented compat pattern, suppressed with a reason.
func Shim(n int) {
	//lint:allow ctxflow compat shim: documented non-cancellable entry point
	RunContext(context.Background(), n)
}
