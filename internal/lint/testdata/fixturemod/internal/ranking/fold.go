// Package ranking exercises the adaptlint determinism rules from an
// external module.
package ranking

// Sum folds floats over a map range; adaptlint must flag the loop.
func Sum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
