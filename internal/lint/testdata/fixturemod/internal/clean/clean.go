// Package clean has no findings; adaptlint must exit 0 on it.
package clean

// Add is deterministic arithmetic.
func Add(a, b int) int { return a + b }
