// Command badcli violates the errpath exit discipline twice.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatal("bad")
	}
	os.Exit(3)
}
