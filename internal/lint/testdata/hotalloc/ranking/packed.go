// Fixture: in internal/ranking only packed.go is declared hot; the rule
// families apply here.
package ranking

import "fmt"

func hotRender(score float64) string {
	return fmt.Sprint(score) // want "fmt.Sprint" "boxing"
}
