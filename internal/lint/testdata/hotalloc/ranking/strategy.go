// Fixture: cold strategy code in the same package is out of scope —
// the identical pattern draws no finding here.
package ranking

import "fmt"

func coldRender(score float64) string {
	return fmt.Sprint(score)
}
