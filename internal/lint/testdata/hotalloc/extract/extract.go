// Fixture: a package outside the hot-path scope. Allocation-heavy code
// is fine here; the analyzer must stay silent.
package extract

import (
	"fmt"
	"sort"
)

func Describe(names []string) string {
	sort.Slice(names, func(a, b int) bool { return names[a] < names[b] })
	out := ""
	for _, n := range names {
		out += n + ","
	}
	return fmt.Sprintf("[%s]", out)
}
