// Fixture: hot-path allocation patterns in a package that is hot in its
// entirety. Every banned family appears once, with clean counterparts.
package vector

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

type weights struct{ w map[int32]float64 }

// Interface boxing: sort.Slice takes any, and the comparator captures
// idx — two findings on one line.
func sortedBad(w *weights) []int32 {
	idx := make([]int32, 0, len(w.w))
	for i := range w.w {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] }) // want "boxing" "closure capturing idx"
	return idx
}

// fmt in a hot path: the call is flagged, and its variadic operands box.
func renderBad(i int32, v float64) string {
	return fmt.Sprintf("%d:%g", i, v) // want "fmt.Sprintf" "boxing" "boxing"
}

// The strconv/Builder equivalent is clean.
func renderGood(i int32, v float64) string {
	var b strings.Builder
	b.WriteString(strconv.FormatInt(int64(i), 10))
	b.WriteByte(':')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	return b.String()
}

// String concatenation allocates per +.
func concatBad(a, b string) string {
	return a + ":" + b // want "string concatenation"
}

func concatAssignBad(a, b string) string {
	a += b // want "string concatenation"
	return a
}

// Constant folding is not concatenation.
const greeting = "hello" + " " + "world"

// Capture-free comparators passed to instantiated generics are plain
// code pointers: no boxing, no capture, no finding.
func capturefree(xs []int32) {
	sortFunc(xs, func(a, b int32) int { return int(a) - int(b) })
}

// sortFunc stands in for slices.SortFunc so the fixture does not need
// the real generic instantiation machinery.
func sortFunc[S ~[]E, E any](x S, cmp func(a, b E) int) {}

// A capturing closure to a same-package callee stays: local escape
// analysis can see through it.
func localClosure(w *weights) float64 {
	var sum float64
	eachLocal(func(v float64) { sum += v })
	return sum
}

func eachLocal(f func(float64)) {}

// A capturing closure handed to another package escapes.
func searchBad(idx []int32, i int32) int {
	return sort.Search(len(idx), func(k int) bool { return idx[k] >= i }) // want "closure capturing"
}

// A capture-free literal crossing the package boundary is still a plain
// code pointer: no finding.
func searchFree() int {
	return sort.Search(10, func(k int) bool { return k > 5 })
}

// Unpooled growth: a nil slice grown inside a loop.
func growBad(xs []int32) []int32 {
	var out []int32
	for _, x := range xs {
		out = append(out, x*2) // want "without preallocated capacity"
	}
	return out
}

// Growth with preallocated capacity is the approved shape.
func growGood(xs []int32) []int32 {
	out := make([]int32, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// A slice declared inside the loop body is per-iteration scratch, not
// cross-iteration growth.
func growInner(xs []int32) int {
	n := 0
	for range xs {
		var scratch []int32
		scratch = append(scratch, 1)
		n += len(scratch)
	}
	return n
}

// Cold paths inside hot files opt out with a reasoned directive.
func guarded(n int) {
	if n < 0 {
		//lint:allow hotalloc cold panic path guarding a caller bug
		panic(fmt.Sprintf("negative count %d", n))
	}
}
