// Fixture: mixed protection regimes on struct fields. The gen field is
// accessed via sync/atomic, so every plain touch of it is a race.
package obs

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	gen  uint64
	hits int64
	name string
}

// The atomic sites themselves establish the regime and are clean.
func (c *counter) bump() {
	atomic.AddUint64(&c.gen, 1)
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) snapshot() (uint64, int64) {
	return atomic.LoadUint64(&c.gen), atomic.LoadInt64(&c.hits)
}

// A bare plain read races with bump.
func (c *counter) stale() uint64 {
	return c.gen // want "plain access to field gen"
}

// A plain write under the mutex is no better: bump does not take mu.
func (c *counter) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen = 0 // want "plainly under a mutex"
}

// Increment through the field races too, even mid-expression.
func (c *counter) drift() {
	c.gen++ // want "plain access to field gen"
}

// Fields never touched by sync/atomic are out of scope.
func (c *counter) rename(n string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.name = n
}

// Typed atomics are immune by construction and draw no findings.
type typed struct {
	v atomic.Int64
}

func (t *typed) load() int64 { return t.v.Load() }
func (t *typed) add() int64  { return t.v.Add(1) }

// Single-threaded setup may opt out with a reasoned directive.
func newCounter() *counter {
	c := &counter{}
	//lint:allow atomicsafe constructor runs before the counter is shared
	c.gen = 1
	return c
}
