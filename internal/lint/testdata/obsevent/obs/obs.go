// Fixture: a miniature obs package giving the obsevent analyzer the
// shapes it matches on — the Registry, the Tracer, the Event — plus the
// name registry constants.
package obs

// Event is one recorded observability event.
type Event struct {
	Kind string
	Name string
	Num  float64
}

// Counter is a monotone metric handle.
type Counter struct{ n int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) { c.n += d }

// Registry hands out metric handles by name.
type Registry struct{}

// Counter returns the counter registered under name.
func (r *Registry) Counter(name string) *Counter { _ = name; return &Counter{} }

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Counter { _ = name; return &Counter{} }

// Histogram returns the histogram registered under name.
func (r *Registry) Histogram(name string, bounds []float64) *Counter {
	_, _ = name, bounds
	return &Counter{}
}

// Span is one traced operation.
type Span struct{}

// End closes the span.
func (s *Span) End() {}

// Tracer starts named spans.
type Tracer struct{}

// Start opens a span with the given name.
func (t *Tracer) Start(name string) *Span { _ = name; return &Span{} }
