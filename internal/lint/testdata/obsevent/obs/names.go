package obs

// The name registry: the only place observability names may be spelled
// as literals.
const (
	MetricDocs = "pipeline.docs"
	SpanRun    = "run"
	KindMetric = "metric"
)
