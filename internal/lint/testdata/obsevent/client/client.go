// Fixture for the obsevent analyzer: metric, span, and event names must
// come from the obs name registry.
package pipeline

import "fixture.example/internal/obs"

const localName = "pipeline.local"

// BadLiteral spells metric names inline: flagged.
func BadLiteral(reg *obs.Registry) {
	reg.Counter("pipeline.docs").Add(1)           // want `metric name in Registry.Counter is a string literal "pipeline.docs"`
	reg.Gauge("pipeline.pool").Add(1)             // want `metric name in Registry.Gauge is a string literal`
	reg.Histogram("pipeline.seconds", nil).Add(1) // want `metric name in Registry.Histogram is a string literal`
}

// BadLocalConst routes around the registry with a local constant: flagged.
func BadLocalConst(reg *obs.Registry) {
	reg.Counter(localName).Add(1) // want `constant localName declared outside the obs name registry`
}

// GoodRegistry uses registry constants: not flagged.
func GoodRegistry(reg *obs.Registry) {
	reg.Counter(obs.MetricDocs).Add(1)
}

// GoodDynamic builds the name at run time (how per-strategy names are
// made): not flagged.
func GoodDynamic(reg *obs.Registry, strategy string) {
	reg.Counter("prefix." + strategy).Add(1)
}

// BadSpan names a span inline: flagged.
func BadSpan(tr *obs.Tracer) {
	tr.Start("run").End() // want `span name in Tracer.Start is a string literal`
	tr.Start(obs.SpanRun).End()
}

// BadEvent carries literal Kind and Name: both flagged.
func BadEvent() obs.Event {
	return obs.Event{Kind: "metric", Name: "pipeline.docs"} // want `Event.Kind is a string literal` `Event.Name is a string literal`
}

// GoodEvent uses registry constants: not flagged.
func GoodEvent() obs.Event {
	return obs.Event{Kind: obs.KindMetric, Name: obs.MetricDocs}
}

// Allowed keeps a legacy literal under a reasoned directive.
func Allowed(reg *obs.Registry) {
	//lint:allow obsevent legacy dashboard still matches this exact string
	reg.Counter("legacy.docs.count").Add(1)
}
