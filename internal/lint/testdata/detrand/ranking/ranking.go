// Fixture for the detrand analyzer: a determinism-critical package
// exercising the wall-clock, global-rand, and map-fold rules.
package ranking

import (
	"math/rand"
	"sort"
	"time"
)

// SumValues folds floats over a map range: flagged, float addition is
// not associative.
func SumValues(m map[int32]float64) float64 {
	var sum float64
	for _, v := range m { // want `float accumulation into sum over unordered map iteration`
		sum += v
	}
	return sum
}

// CollectKeys appends over a map range without sorting: flagged.
func CollectKeys(m map[int32]float64) []int32 {
	var idx []int32
	for i := range m { // want `append to idx over unordered map iteration`
		idx = append(idx, i)
	}
	return idx
}

// SortedKeys is the approved collect-then-sort idiom, suppressed with a
// reasoned directive.
func SortedKeys(m map[int32]float64) []int32 {
	var idx []int32
	//lint:allow detrand collection order is erased by the sort below
	for i := range m {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

// CountEntries folds an int counter: order-independent, not flagged.
func CountEntries(m map[int32]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// ScaleInPlace writes per key: order-independent, not flagged.
func ScaleInPlace(m map[int32]float64, a float64) {
	for i := range m {
		m[i] *= a
	}
}

// HashKeys XORs an integer accumulator: commutative, not flagged.
func HashKeys(m map[int32]float64) uint64 {
	var h uint64
	for i := range m {
		h ^= uint64(uint32(i))
	}
	return h
}

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	t := time.Now() // want `time.Now in determinism-critical package`
	return t.Unix()
}

// Elapsed reads the wall clock through time.Since: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

// Draw uses the process-global rand source: flagged.
func Draw() int {
	return rand.Intn(10) // want `global math/rand source \(rand.Intn\)`
}

// SeededDraw draws from an explicitly seeded generator: not flagged.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
