// Fixture: in the pipeline package the clock rules apply only to the
// journal/replay path; measuring wall-clock phase durations elsewhere is
// by design.
package pipeline

import "time"

// Measure reads the clock outside the journal path: not flagged.
func Measure() time.Time { return time.Now() }
