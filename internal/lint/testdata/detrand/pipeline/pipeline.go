// Fixture: in the pipeline package the clock rules apply only to the
// journal/replay path; measuring wall-clock phase durations elsewhere is
// by design. The sync.Pool rule, like the map-fold rule, applies
// package-wide.
package pipeline

import (
	"sync"
	"time"
)

// Measure reads the clock outside the journal path: not flagged.
func Measure() time.Time { return time.Now() }

var bufPool = sync.Pool{New: func() any { s := make([]float64, 0, 8); return &s }}

// Recycle uses the pool bare: both the Get and the Put are flagged even
// though this file is outside the journal path.
func Recycle() {
	b := bufPool.Get().(*[]float64) // want `sync\.Pool\.Get in determinism-critical package`
	bufPool.Put(b)                  // want `sync\.Pool\.Put in determinism-critical package`
}

// RecycleAllowed carries the reasoned directives the real fast paths use:
// a fully-overwritten pooled buffer never leaks stale state.
func RecycleAllowed() {
	//lint:allow detrand buffer fully overwritten before every use
	b := bufPool.Get().(*[]float64)
	*b = append((*b)[:0], 1, 2, 3)
	//lint:allow detrand buffer cleared before recycling
	bufPool.Put(b)
}
