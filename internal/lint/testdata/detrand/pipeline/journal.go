package pipeline

import "time"

// JournalStamp reads the clock on the replay path: flagged.
func JournalStamp() time.Time {
	return time.Now() // want `time.Now in determinism-critical package`
}
