// Fixture: a package outside the detrand scope; nothing is flagged even
// though it reads the wall clock and folds over maps.
package learn

import "time"

func Stamp() time.Time { return time.Now() }

func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
