// Fixture for the locksafe analyzer: no blocking operations while
// holding a mutex in the recording fan-out.
package obs

import (
	"sync"
	"time"
)

// Event is a recorded observability event.
type Event struct{ Name string }

type sink struct{}

// Record forwards one event.
func (s *sink) Record(e Event) { _ = e }

// Reg guards a recording fan-out with a mutex.
type Reg struct {
	mu   sync.Mutex
	ch   chan Event
	next *sink
}

// Bad performs all three blocking operations inside the critical
// section: each is flagged.
func (r *Reg) Bad(e Event) {
	r.mu.Lock()
	r.next.Record(e)             // want `Record call while holding r.mu`
	r.ch <- e                    // want `channel send while holding r.mu`
	time.Sleep(time.Millisecond) // want `time.Sleep while holding r.mu`
	r.mu.Unlock()
}

// BadDefer holds the lock for the whole function via defer: flagged.
func (r *Reg) BadDefer(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next.Record(e) // want `Record call while holding r.mu`
}

// Good snapshots under the lock and blocks only after releasing it: not
// flagged.
func (r *Reg) Good(e Event) {
	r.mu.Lock()
	n := r.next
	r.mu.Unlock()
	n.Record(e)
	r.ch <- e
}

// GoodSelect sends under the lock through a select with a default
// clause, which cannot block: not flagged.
func (r *Reg) GoodSelect(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- e:
	default:
	}
}

// BadSelect has no default clause, so the send can block: flagged.
func (r *Reg) BadSelect(e Event, done chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- e: // want `channel send while holding r.mu`
	case <-done:
	}
}

// Allowed documents an intentional hold with a reasoned directive.
func (r *Reg) Allowed(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	//lint:allow locksafe ordered fan-out under the lock is what serializes Seq
	r.next.Record(e)
}
