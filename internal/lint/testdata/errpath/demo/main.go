// Fixture: a main package outside cmd/; the errpath discipline applies
// only to the shipped CLIs.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatal("demo only")
	}
	os.Exit(0)
}
