// Fixture for the errpath analyzer: CLIs must exit through
// os.Exit(run()) so deferred flushes execute.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 9 {
		os.Exit(2) // want `os.Exit skips deferred trace/checkpoint flushes`
	}
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 3 {
		log.Fatalf("boom: %d args", len(os.Args)) // want `log.Fatalf exits without running deferred flushes`
	}
	if len(os.Args) > 4 {
		os.Exit(1) // want `os.Exit skips deferred trace/checkpoint flushes`
	}
	return 0
}
