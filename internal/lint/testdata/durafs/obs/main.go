// Fixture for the durafs analyzer: artifact packages must create files
// through internal/durable, never with bare os calls.
package obs

import "os"

// writeArtifact trips all three flagged creation calls.
func writeArtifact(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want `os.WriteFile in an artifact package bypasses the durability layer`
		return err
	}
	f, err := os.Create(path) // want `os.Create in an artifact package bypasses the durability layer`
	if err != nil {
		return err
	}
	f.Close()
	g, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // want `os.OpenFile in an artifact package bypasses the durability layer`
	if err != nil {
		return err
	}
	return g.Close()
}

// readArtifact shows that reads and stats are out of scope: they cannot
// tear an artifact.
func readArtifact(path string) ([]byte, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// makeDirs shows that directory calls are out of scope: no payload to
// lose.
func makeDirs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.Remove(dir)
}

// debugDump is deliberately non-durable and says so.
func debugDump(path string, data []byte) error {
	//lint:allow durafs dev-only scratch dump, not a recovery artifact
	return os.WriteFile(path, data, 0o644)
}
