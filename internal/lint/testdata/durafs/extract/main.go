// Fixture proving the durafs scope gate: internal/extract is not an
// artifact package, so bare os calls are fine here.
package extract

import "os"

func scratchFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
