// Fixture for directive hygiene: malformed //lint:allow comments are
// themselves diagnostics.
package ranking

//lint:allow detrand
func MissingReason() {}

//lint:allow nosuchcheck because reasons
func UnknownAnalyzer() {}

// wellFormed shows a valid directive (nothing reported for it even when
// it suppresses nothing).
func wellFormed(m map[int]float64) []int {
	var keys []int
	//lint:allow detrand collection order is erased by the caller's sort
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
