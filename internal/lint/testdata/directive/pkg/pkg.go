// Fixture for directive hygiene: malformed //lint:allow comments are
// themselves diagnostics, and so are well-formed ones that no longer
// suppress anything.
package ranking

//lint:allow detrand
func MissingReason() {}

//lint:allow nosuchcheck because reasons
func UnknownAnalyzer() {}

// wellFormed shows a valid directive doing its job: it suppresses the
// map-fold finding on the loop below and draws no report.
func wellFormed(m map[int]float64) []int {
	var keys []int
	//lint:allow detrand collection order is erased by the caller's sort
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// staleDirective carries a well-formed allow for code that stopped
// triggering the analyzer: the sweep reports it as stale.
func staleDirective(xs []int) int {
	n := 0
	//lint:allow detrand this loop ranges a slice, nothing to suppress
	for _, x := range xs {
		n += x
	}
	return n
}
