package lint

import (
	"go/ast"
	"go/types"
)

// ObsEvent closes the observability name space: every metric name handed
// to Registry.Counter/Gauge/Histogram, every span name handed to
// Tracer.Start, and every Name or Kind carried by an obs.Event composite
// literal must be a named constant declared in the obs package (the
// registry file internal/obs/names.go). String literals at these call
// sites — and constants declared in other packages — fragment the schema:
// trace consumers, the SLO watchdog, and the report renderer all match on
// these strings, so a typo in one producer silently breaks every
// consumer. Dynamically computed names (variables, function results) are
// allowed; they are how per-strategy and per-detector names are built.
var ObsEvent = &Analyzer{
	Name: "obsevent",
	Doc:  "metric, span, and event names must be constants from the obs name registry",
	Run:  runObsEvent,
}

func runObsEvent(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, m := range [...]string{"Counter", "Gauge", "Histogram"} {
					if receiverNamed(p, n, "internal/obs", "Registry", m) && len(n.Args) > 0 {
						obsEventCheckName(p, n.Args[0], "metric name in Registry."+m)
					}
				}
				if receiverNamed(p, n, "internal/obs", "Tracer", "Start") && len(n.Args) > 0 {
					obsEventCheckName(p, n.Args[0], "span name in Tracer.Start")
				}
			case *ast.CompositeLit:
				if !namedFromPkg(p.TypeOf(n), "internal/obs", "Event") {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && (key.Name == "Name" || key.Name == "Kind") {
						obsEventCheckName(p, kv.Value, "Event."+key.Name)
					}
				}
			}
			return true
		})
	}
}

// namedFromPkg reports whether t (possibly a pointer) is the named type
// pkgFragment.typeName.
func namedFromPkg(t types.Type, pkgFragment, typeName string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && pathMatches(obj.Pkg().Path(), "internal/obs")
}

// obsEventCheckName enforces the registry rule on one name expression:
// no string literals, and named constants must come from the obs package.
func obsEventCheckName(p *Pass, e ast.Expr, what string) {
	e = ast.Unparen(e)
	if lit, ok := e.(*ast.BasicLit); ok {
		p.Reportf(e.Pos(), "%s is a string literal %s: declare it as a constant in the obs name registry (internal/obs/names.go)", what, lit.Value)
		return
	}
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return // dynamic expression: allowed
	}
	obj := p.ObjectOf(id)
	cst, ok := obj.(*types.Const)
	if !ok {
		return // variable or other dynamic source: allowed
	}
	if cst.Pkg() == nil || !pathMatches(cst.Pkg().Path(), "internal/obs") {
		p.Reportf(e.Pos(), "%s uses constant %s declared outside the obs name registry: move it to internal/obs/names.go", what, id.Name)
	}
}
