package metrics

import "adaptiverank/internal/relation"

// This file implements the tuple-level measures sketched in the paper's
// future work (Section 6): characterizing document ranking approaches by
// the tuples they produce — how fast distinct tuples accumulate along the
// processing order, and how diverse they are.

// TupleYieldCurve returns the fraction of all distinct tuples discovered
// after each prefix of the processing order, sampled on the 0..100% grid.
// tuplesPerDoc[i] holds the tuples extracted from the i-th processed
// document.
func TupleYieldCurve(tuplesPerDoc [][]relation.Tuple) []float64 {
	n := len(tuplesPerDoc)
	curve := make([]float64, 101)
	if n == 0 {
		return curve
	}
	seen := make(map[relation.Tuple]bool)
	distinctAt := make([]int, n+1)
	for i, ts := range tuplesPerDoc {
		for _, t := range ts {
			seen[t] = true
		}
		distinctAt[i+1] = len(seen)
	}
	total := len(seen)
	if total == 0 {
		return curve
	}
	for p := 0; p <= 100; p++ {
		k := p * n / 100
		curve[p] = float64(distinctAt[k]) / float64(total)
	}
	return curve
}

// TupleDiversity measures the attribute-value diversity of a tuple set as
// the mean type–token ratio of the two argument positions: 1 means every
// tuple contributes fresh attribute values, values near 0 mean the same
// few entities repeat.
func TupleDiversity(tuples []relation.Tuple) float64 {
	if len(tuples) == 0 {
		return 0
	}
	arg1 := make(map[string]bool, len(tuples))
	arg2 := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		arg1[t.Arg1] = true
		arg2[t.Arg2] = true
	}
	n := float64(len(tuples))
	return (float64(len(arg1))/n + float64(len(arg2))/n) / 2
}

// DistinctTuples deduplicates a tuple stream preserving first-seen order.
func DistinctTuples(tuples []relation.Tuple) []relation.Tuple {
	seen := make(map[relation.Tuple]bool, len(tuples))
	out := make([]relation.Tuple, 0, len(tuples))
	for _, t := range tuples {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
