// Package metrics implements the paper's evaluation measures (Section 4):
// average recall curves over the fraction of processed documents, average
// precision, area under the ROC curve, mean±stddev aggregation across
// repeated executions, and the CPU-time accounting that combines measured
// ranking overhead with the simulated extraction cost.
package metrics

import (
	"fmt"
	"math"
	"time"

	"adaptiverank/internal/obs"
)

// RecallCurve computes recall after each prefix of the processing order,
// sampled on a 0..100% grid (101 points). labels[i] is the usefulness of
// the i-th processed document; totalUseful is the number of useful
// documents in the whole collection (the recall denominator).
func RecallCurve(labels []bool, totalUseful int) []float64 {
	curve := make([]float64, 101)
	if totalUseful == 0 || len(labels) == 0 {
		return curve
	}
	n := len(labels)
	cum := make([]int, n+1)
	for i, u := range labels {
		cum[i+1] = cum[i]
		if u {
			cum[i+1]++
		}
	}
	for p := 0; p <= 100; p++ {
		k := p * n / 100
		curve[p] = float64(cum[k]) / float64(totalUseful)
	}
	return curve
}

// RecallAt interpolates a recall curve at a percentage in [0,100].
func RecallAt(curve []float64, pct float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	if pct <= 0 {
		return curve[0]
	}
	if pct >= 100 {
		return curve[len(curve)-1]
	}
	lo := int(pct)
	frac := pct - float64(lo)
	return curve[lo]*(1-frac) + curve[lo+1]*frac
}

// AveragePrecision computes the standard average precision of a ranking:
// the mean, over the useful documents, of the precision at each useful
// document's position.
func AveragePrecision(labels []bool) float64 {
	var hits, sum float64
	for i, u := range labels {
		if u {
			hits++
			sum += hits / float64(i+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / hits
}

// AUC computes the area under the ROC curve of the ranking via the
// Mann–Whitney statistic: the probability that a uniformly random useful
// document is ranked before a uniformly random useless one. Ties are
// impossible because a ranking is a total order.
func AUC(labels []bool) float64 {
	var pos, neg, before float64
	for _, u := range labels {
		if u {
			pos++
			continue
		}
		neg++
		before += pos // useful docs ranked before this useless one
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return before / (pos * neg)
}

// Stat is a mean ± standard deviation pair aggregated over repeated runs.
type Stat struct {
	Mean, Std float64
	N         int
}

// Aggregate computes mean and (population) standard deviation.
func Aggregate(values []float64) Stat {
	n := len(values)
	if n == 0 {
		return Stat{}
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return Stat{Mean: mean, Std: math.Sqrt(ss / float64(n)), N: n}
}

// String renders the stat the way the paper's tables do ("45.7±0.3%",
// values already in percent).
func (s Stat) String() string {
	return fmt.Sprintf("%.1f±%.1f%%", s.Mean, s.Std)
}

// AggregateCurves averages per-run recall curves pointwise.
func AggregateCurves(curves [][]float64) []float64 {
	if len(curves) == 0 {
		return nil
	}
	out := make([]float64, len(curves[0]))
	for _, c := range curves {
		for i, v := range c {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(curves))
	}
	return out
}

// TimeAccount combines the simulated extraction CPU time with the measured
// ranking and update-detection overheads (see DESIGN.md §2 for the
// substitution rationale).
type TimeAccount struct {
	// Extraction is simulated: documents processed × per-document cost
	// of the extraction system.
	Extraction time.Duration
	// Ranking is the measured CPU time spent scoring and ordering
	// documents.
	Ranking time.Duration
	// Detection is the measured CPU time spent in update detection.
	Detection time.Duration
	// Training is the measured CPU time spent in model training/updates.
	Training time.Duration
}

// Total returns the combined CPU time.
func (t TimeAccount) Total() time.Duration {
	return t.Extraction + t.Ranking + t.Detection + t.Training
}

// Overhead returns the non-extraction share.
func (t TimeAccount) Overhead() time.Duration {
	return t.Ranking + t.Detection + t.Training
}

// Add accumulates another account.
func (t *TimeAccount) Add(o TimeAccount) {
	t.Extraction += o.Extraction
	t.Ranking += o.Ranking
	t.Detection += o.Detection
	t.Training += o.Training
}

// Record publishes the account as gauges in an observability registry
// (nil-safe, like all registry accessors), one gauge per component plus
// the total — the Section 4 time-accounting breakdown as live metrics.
func (t TimeAccount) Record(reg *obs.Registry) {
	reg.Gauge(obs.MetricTimeExtractionSeconds).Set(t.Extraction.Seconds())
	reg.Gauge(obs.MetricTimeRankingSeconds).Set(t.Ranking.Seconds())
	reg.Gauge(obs.MetricTimeDetectionSeconds).Set(t.Detection.Seconds())
	reg.Gauge(obs.MetricTimeTrainingSeconds).Set(t.Training.Seconds())
	reg.Gauge(obs.MetricTimeTotalSeconds).Set(t.Total().Seconds())
}

// Minutes renders a duration in the paper's CPU-minute unit.
func Minutes(d time.Duration) float64 { return d.Minutes() }
