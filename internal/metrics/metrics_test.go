package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRecallCurveEndpoints(t *testing.T) {
	labels := []bool{true, false, true, false}
	c := RecallCurve(labels, 4)
	if c[0] != 0 {
		t.Errorf("curve[0] = %g, want 0", c[0])
	}
	if c[100] != 0.5 {
		t.Errorf("curve[100] = %g, want 0.5 (2 of 4 useful processed)", c[100])
	}
}

func TestRecallCurveMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		labels := make([]bool, n)
		useful := 0
		for i := range labels {
			labels[i] = r.Intn(3) == 0
			if labels[i] {
				useful++
			}
		}
		c := RecallCurve(labels, useful+r.Intn(5))
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1] {
				return false
			}
		}
		return c[0] >= 0 && c[len(c)-1] <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecallCurveZeroTotal(t *testing.T) {
	c := RecallCurve([]bool{true}, 0)
	for _, v := range c {
		if v != 0 {
			t.Fatal("zero-total curve must be all zeros")
		}
	}
}

func TestRecallAtInterpolates(t *testing.T) {
	curve := make([]float64, 101)
	for i := range curve {
		curve[i] = float64(i) / 100
	}
	if got := RecallAt(curve, 50.5); math.Abs(got-0.505) > 1e-9 {
		t.Errorf("RecallAt(50.5) = %g, want 0.505", got)
	}
	if RecallAt(curve, -5) != 0 || RecallAt(curve, 200) != 1 {
		t.Error("RecallAt must clamp to the curve ends")
	}
	if RecallAt(nil, 50) != 0 {
		t.Error("RecallAt(nil) must be 0")
	}
}

func TestAveragePrecisionKnownValues(t *testing.T) {
	// Useful docs at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
	got := AveragePrecision([]bool{true, false, true})
	if math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("AP = %g, want 5/6", got)
	}
	if AveragePrecision([]bool{false, false}) != 0 {
		t.Error("AP with no useful docs must be 0")
	}
	if AveragePrecision([]bool{true, true}) != 1 {
		t.Error("AP of a perfect ranking must be 1")
	}
}

func TestAUCKnownValues(t *testing.T) {
	if got := AUC([]bool{true, true, false, false}); got != 1 {
		t.Errorf("AUC perfect = %g, want 1", got)
	}
	if got := AUC([]bool{false, false, true, true}); got != 0 {
		t.Errorf("AUC inverted = %g, want 0", got)
	}
	if got := AUC([]bool{true, false, true, false}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %g, want 0.75", got)
	}
	if got := AUC([]bool{true, true}); got != 0.5 {
		t.Errorf("AUC single-class = %g, want 0.5", got)
	}
}

func TestQuickAUCInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		labels := make([]bool, 1+r.Intn(40))
		for i := range labels {
			labels[i] = r.Intn(2) == 0
		}
		a := AUC(labels)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAUCReversalSymmetry(t *testing.T) {
	// Reversing a ranking with both classes present maps AUC -> 1-AUC.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		labels := make([]bool, 2+r.Intn(30))
		pos := 0
		for i := range labels {
			labels[i] = r.Intn(2) == 0
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == len(labels) {
			return true
		}
		rev := make([]bool, len(labels))
		for i := range labels {
			rev[i] = labels[len(labels)-1-i]
		}
		return math.Abs(AUC(labels)+AUC(rev)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	s := Aggregate([]float64{1, 3})
	if s.Mean != 2 || s.Std != 1 || s.N != 2 {
		t.Errorf("Aggregate = %+v, want mean 2 std 1", s)
	}
	if z := Aggregate(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("Aggregate(nil) = %+v", z)
	}
	if got := s.String(); got != "2.0±1.0%" {
		t.Errorf("String = %q", got)
	}
}

func TestAggregateCurves(t *testing.T) {
	avg := AggregateCurves([][]float64{{0, 1}, {1, 0}})
	if avg[0] != 0.5 || avg[1] != 0.5 {
		t.Errorf("AggregateCurves = %v, want [0.5 0.5]", avg)
	}
	if AggregateCurves(nil) != nil {
		t.Error("AggregateCurves(nil) must be nil")
	}
}

func TestTimeAccount(t *testing.T) {
	a := TimeAccount{Extraction: time.Second, Ranking: 100 * time.Millisecond,
		Detection: 50 * time.Millisecond, Training: 25 * time.Millisecond}
	if a.Total() != 1175*time.Millisecond {
		t.Errorf("Total = %v", a.Total())
	}
	if a.Overhead() != 175*time.Millisecond {
		t.Errorf("Overhead = %v", a.Overhead())
	}
	var b TimeAccount
	b.Add(a)
	b.Add(a)
	if b.Extraction != 2*time.Second {
		t.Errorf("Add accumulated %v", b.Extraction)
	}
	if Minutes(90*time.Second) != 1.5 {
		t.Error("Minutes conversion")
	}
}

func TestRecallCurveSmallN(t *testing.T) {
	// A single-document order: the curve must jump from 0 to 1.
	c := RecallCurve([]bool{true}, 1)
	if c[0] != 0 || c[100] != 1 {
		t.Errorf("curve endpoints = %g, %g", c[0], c[100])
	}
	// Denominator larger than the processed useful count caps below 1.
	c2 := RecallCurve([]bool{true}, 4)
	if c2[100] != 0.25 {
		t.Errorf("partial curve end = %g, want 0.25", c2[100])
	}
}

func TestStatStringFormatting(t *testing.T) {
	s := Stat{Mean: 45.666, Std: 0.04}
	if got := s.String(); got != "45.7±0.0%" {
		t.Errorf("String = %q", got)
	}
}
