package metrics

import (
	"testing"

	"adaptiverank/internal/relation"
)

func tup(a, b string) relation.Tuple {
	return relation.Tuple{Rel: relation.ND, Arg1: a, Arg2: b}
}

func TestTupleYieldCurve(t *testing.T) {
	perDoc := [][]relation.Tuple{
		{tup("a", "x")},
		{},
		{tup("a", "x"), tup("b", "y")}, // one repeat, one new
		{},
	}
	c := TupleYieldCurve(perDoc)
	if c[0] != 0 {
		t.Errorf("curve[0] = %g, want 0", c[0])
	}
	if c[100] != 1 {
		t.Errorf("curve[100] = %g, want 1", c[100])
	}
	if c[50] != 0.5 { // after 2 of 4 docs: 1 of 2 distinct tuples
		t.Errorf("curve[50] = %g, want 0.5", c[50])
	}
	// Monotone.
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1] {
			t.Fatal("yield curve must be monotone")
		}
	}
}

func TestTupleYieldCurveEmpty(t *testing.T) {
	for _, in := range [][][]relation.Tuple{nil, {{}, {}}} {
		c := TupleYieldCurve(in)
		for _, v := range c {
			if v != 0 {
				t.Fatal("empty input must give a zero curve")
			}
		}
	}
}

func TestTupleDiversity(t *testing.T) {
	if d := TupleDiversity(nil); d != 0 {
		t.Errorf("diversity of empty = %g", d)
	}
	all := []relation.Tuple{tup("a", "x"), tup("b", "y")}
	if d := TupleDiversity(all); d != 1 {
		t.Errorf("all-distinct diversity = %g, want 1", d)
	}
	repeats := []relation.Tuple{tup("a", "x"), tup("a", "y"), tup("a", "z"), tup("a", "w")}
	if d := TupleDiversity(repeats); d != (0.25+1)/2 {
		t.Errorf("diversity = %g, want 0.625 (arg1 TTR 0.25, arg2 TTR 1)", d)
	}
}

func TestDistinctTuples(t *testing.T) {
	in := []relation.Tuple{tup("a", "x"), tup("b", "y"), tup("a", "x")}
	out := DistinctTuples(in)
	if len(out) != 2 || out[0] != tup("a", "x") || out[1] != tup("b", "y") {
		t.Errorf("DistinctTuples = %v", out)
	}
}
