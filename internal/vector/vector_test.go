package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sparseFromMap(m map[int32]float64) Sparse { return FromCounts(m) }

func TestNewSparseSortsAndMerges(t *testing.T) {
	s := NewSparse([]int32{5, 1, 5, 3}, []float64{2, 1, 3, 4})
	if got := s.At(5); got != 5 {
		t.Errorf("At(5) = %g, want 5 (duplicates summed)", got)
	}
	if got := s.At(1); got != 1 {
		t.Errorf("At(1) = %g, want 1", got)
	}
	if got := s.At(2); got != 0 {
		t.Errorf("At(2) = %g, want 0 (absent)", got)
	}
	if s.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", s.NNZ())
	}
	// Indices must be strictly increasing.
	prev := int32(-1)
	s.Range(func(i int32, v float64) {
		if i <= prev {
			t.Errorf("indices not strictly increasing: %d after %d", i, prev)
		}
		prev = i
	})
}

func TestNewSparseDropsCancellation(t *testing.T) {
	s := NewSparse([]int32{2, 2}, []float64{1, -1})
	if s.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0 after exact cancellation", s.NNZ())
	}
}

func TestNewSparseLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewSparse([]int32{1}, []float64{1, 2})
}

func TestDotKnownValue(t *testing.T) {
	a := sparseFromMap(map[int32]float64{0: 1, 2: 2, 5: 3})
	b := sparseFromMap(map[int32]float64{2: 4, 5: -1, 7: 10})
	if got, want := a.Dot(b), 2.0*4-3.0; got != want {
		t.Errorf("Dot = %g, want %g", got, want)
	}
}

func TestSubKnownValue(t *testing.T) {
	a := sparseFromMap(map[int32]float64{1: 5, 3: 2})
	b := sparseFromMap(map[int32]float64{1: 5, 2: 7})
	d := a.Sub(b)
	if d.At(1) != 0 || d.At(2) != -7 || d.At(3) != 2 {
		t.Errorf("Sub = %v, want {2:-7, 3:2}", d)
	}
}

func TestNormalize(t *testing.T) {
	a := sparseFromMap(map[int32]float64{0: 3, 1: 4})
	n := a.Normalize()
	if math.Abs(n.L2()-1) > 1e-12 {
		t.Errorf("L2 after Normalize = %g, want 1", n.L2())
	}
	var zero Sparse
	if !zero.Normalize().Equal(zero) {
		t.Error("Normalize of zero vector must be a no-op")
	}
}

func TestCosineBoundsAndSelf(t *testing.T) {
	a := sparseFromMap(map[int32]float64{0: 1, 4: 2})
	if got := a.Cosine(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self-cosine = %g, want 1", got)
	}
	var zero Sparse
	if got := a.Cosine(zero); got != 0 {
		t.Errorf("cosine with zero = %g, want 0", got)
	}
}

func TestScale(t *testing.T) {
	a := sparseFromMap(map[int32]float64{1: 2, 2: -3})
	if got := a.Scale(2).At(2); got != -6 {
		t.Errorf("Scale(2).At(2) = %g, want -6", got)
	}
	if a.Scale(0).NNZ() != 0 {
		t.Error("Scale(0) must be the zero vector")
	}
	if a.At(1) != 2 {
		t.Error("Scale must not mutate the receiver")
	}
}

// randomSparse generates arbitrary sparse vectors for property tests.
func randomSparse(r *rand.Rand) Sparse {
	n := r.Intn(12)
	m := make(map[int32]float64, n)
	for i := 0; i < n; i++ {
		m[int32(r.Intn(30))] = float64(r.Intn(21) - 10)
	}
	return FromCounts(m)
}

func TestQuickDotSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSparse(r), randomSparse(r)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubConsistentWithDot(t *testing.T) {
	// (a-b)·c == a·c - b·c
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomSparse(r), randomSparse(r), randomSparse(r)
		lhs := a.Sub(b).Dot(c)
		rhs := a.Dot(c) - b.Dot(c)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSparse(r), randomSparse(r)
		return math.Abs(a.Dot(b)) <= a.L2()*b.L2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSparse(r), randomSparse(r)
		// ||a - b|| >= | ||a|| - ||b|| |
		return a.Sub(b).L2() >= math.Abs(a.L2()-b.L2())-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubRoundTrip(t *testing.T) {
	// a - (a - b) == b
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSparse(r), randomSparse(r)
		return a.Sub(a.Sub(b)).Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxIndex(t *testing.T) {
	var zero Sparse
	if zero.MaxIndex() != -1 {
		t.Errorf("MaxIndex of empty = %d, want -1", zero.MaxIndex())
	}
	s := sparseFromMap(map[int32]float64{3: 1, 17: 2})
	if s.MaxIndex() != 17 {
		t.Errorf("MaxIndex = %d, want 17", s.MaxIndex())
	}
}

func TestString(t *testing.T) {
	s := sparseFromMap(map[int32]float64{1: 2})
	if got := s.String(); got != "{1:2}" {
		t.Errorf("String = %q, want {1:2}", got)
	}
}
