package vector

// Model-introspection primitives for the explain substrate
// (internal/obs/explain): exact per-feature score attribution and
// snapshot-to-snapshot drift statistics. Everything here folds in
// sorted index order — these numbers end up in explain artifacts that
// the byte-identity tests compare across runs, so they are held to the
// same determinism bar as the detector statistics (PR5 detrand rule).

import (
	"math"
	"slices"
)

// ContributionsPacked returns w·x + bias through the same dense-mirror
// walk as MarginPacked — same ascending-index fold, bitwise-identical
// result — while reporting each nonzero per-feature contribution
// w_i·x_i to f in fold order. The products it does not report are exact
// IEEE zeros (features absent from the model), and the running sum can
// never be −0 (it starts at +0 and cancellation yields +0 under
// round-to-nearest), so folding the reported contributions in call
// order and adding bias reconstructs the returned margin bit for bit.
func (w *Weights) ContributionsPacked(x Packed, bias float64, f func(i int32, c float64)) float64 {
	d := w.denseVals()
	n := int32(len(d))
	var sum float64
	idx := x.Idx
	val := x.Val
	for k, i := range idx {
		if i >= n {
			break
		}
		c := d[i] * val[k]
		sum += c
		if c != 0 && f != nil {
			f(i, c)
		}
	}
	return sum + bias
}

// DriftStats summarizes how a weight vector moved between two training
// snapshots: norms of the difference vector, directional similarity,
// and support churn. All folds run in sorted index order.
type DriftStats struct {
	// L1 and L2 are the norms of (cur − prev).
	L1 float64 `json:"l1"`
	L2 float64 `json:"l2"`
	// Cosine is the cosine similarity between prev and cur (0 when
	// either is the zero vector) — the same statistic Mod-C thresholds.
	Cosine float64 `json:"cosine"`
	// Entered and Left count features present in cur but not prev, and
	// vice versa: the support churn of the step.
	Entered int `json:"entered"`
	Left    int `json:"left"`
}

// Drift computes the movement from prev to cur.
func Drift(prev, cur *Weights) DriftStats {
	var l1, l2 float64
	var entered, left int
	for _, i := range unionSortedIndices(prev, cur) {
		pv, pok := prev.w[i]
		cv, cok := cur.w[i]
		if cok && !pok {
			entered++
		}
		if pok && !cok {
			left++
		}
		d := cv - pv
		l1 += math.Abs(d)
		l2 += d * d
	}
	return DriftStats{
		L1:      l1,
		L2:      math.Sqrt(l2),
		Cosine:  prev.Cosine(cur),
		Entered: entered,
		Left:    left,
	}
}

// TopMovers returns the k features whose weight changed most between
// prev and cur, ordered by decreasing |Δweight| with index as
// tiebreaker; Weight carries the signed delta cur−prev.
func TopMovers(prev, cur *Weights, k int) []WeightedFeature {
	idx := unionSortedIndices(prev, cur)
	movers := make([]WeightedFeature, 0, len(idx))
	for _, i := range idx {
		if d := cur.w[i] - prev.w[i]; d != 0 {
			movers = append(movers, WeightedFeature{Index: i, Weight: d})
		}
	}
	slices.SortFunc(movers, absDescByIndex)
	if k < len(movers) {
		movers = movers[:k]
	}
	return movers
}

// unionSortedIndices returns the union of both support sets in
// increasing index order.
func unionSortedIndices(a, b *Weights) []int32 {
	idx := make([]int32, 0, len(a.w)+len(b.w))
	//lint:allow detrand index collection is sorted immediately below
	for i := range a.w {
		idx = append(idx, i)
	}
	//lint:allow detrand index collection is sorted immediately below
	for i := range b.w {
		if _, ok := a.w[i]; !ok {
			idx = append(idx, i)
		}
	}
	slices.Sort(idx)
	return idx
}
