package vector

// Randomized property tests over the sparse linear-algebra invariants the
// learners depend on: dot-product commutativity, scaling linearity,
// subtraction/cancellation, normalization, duplicate folding, and the
// Weights/Sparse correspondence. A fixed seed keeps the suite
// deterministic across runs.

import (
	"math"
	"math/rand"
	"testing"
)

const propertyTrials = 200

// randSparse draws a sparse vector with up to maxNNZ entries over a
// feature space of width; duplicate indices are allowed on purpose so
// NewSparse's folding path is exercised.
func randSparse(rng *rand.Rand, maxNNZ int, width int32) Sparse {
	n := rng.Intn(maxNNZ + 1)
	idx := make([]int32, n)
	val := make([]float64, n)
	for k := 0; k < n; k++ {
		idx[k] = rng.Int31n(width)
		val[k] = rng.NormFloat64()
	}
	return NewSparse(idx, val)
}

func approxEq(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

func TestPropertySparseInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < propertyTrials; trial++ {
		s := randSparse(rng, 30, 64)
		u := randSparse(rng, 30, 64)
		a := rng.NormFloat64()

		// Sortedness and no stored zeros.
		s.Range(func(i int32, v float64) {
			if v == 0 {
				t.Fatalf("trial %d: stored zero at %d in %v", trial, i, s)
			}
		})
		for k := 1; k < s.NNZ(); k++ {
			if s.At(s.idx[k-1]) == 0 || s.idx[k-1] >= s.idx[k] {
				t.Fatalf("trial %d: indices not strictly increasing: %v", trial, s)
			}
		}

		// Dot commutativity and Cauchy–Schwarz.
		if d1, d2 := s.Dot(u), u.Dot(s); d1 != d2 {
			t.Fatalf("trial %d: dot not commutative: %g vs %g", trial, d1, d2)
		}
		if d := math.Abs(s.Dot(u)); d > s.L2()*u.L2()*(1+1e-12)+1e-12 {
			t.Fatalf("trial %d: |s·u| = %g violates Cauchy–Schwarz (%g)",
				trial, d, s.L2()*u.L2())
		}

		// Scaling linearity: (a·s)·u == a·(s·u), ||a·s|| == |a|·||s||.
		if got, want := s.Scale(a).Dot(u), a*s.Dot(u); !approxEq(got, want) {
			t.Fatalf("trial %d: scale linearity: %g != %g", trial, got, want)
		}
		if got, want := s.Scale(a).L2(), math.Abs(a)*s.L2(); !approxEq(got, want) {
			t.Fatalf("trial %d: scale norm: %g != %g", trial, got, want)
		}
		if s.Scale(0).NNZ() != 0 {
			t.Fatalf("trial %d: scaling by 0 must empty the vector", trial)
		}

		// Subtraction: (s-u)·x == s·x - u·x against a probe vector, and
		// self-subtraction cancels to the empty vector.
		x := randSparse(rng, 30, 64)
		if got, want := s.Sub(u).Dot(x), s.Dot(x)-u.Dot(x); !approxEq(got, want) {
			t.Fatalf("trial %d: sub linearity: %g != %g", trial, got, want)
		}
		if d := s.Sub(s); d.NNZ() != 0 {
			t.Fatalf("trial %d: s - s = %v, want empty", trial, d)
		}
		if !s.Sub(Sparse{}).Equal(s) {
			t.Fatalf("trial %d: s - 0 != s", trial)
		}

		// Normalization: unit norm for non-zero vectors, zero unchanged.
		if s.NNZ() > 0 {
			if n := s.Normalize().L2(); !approxEq(n, 1) {
				t.Fatalf("trial %d: normalized L2 = %g", trial, n)
			}
			// Direction is preserved.
			if c := s.Cosine(s.Normalize()); !approxEq(c, 1) {
				t.Fatalf("trial %d: cos(s, normalize(s)) = %g", trial, c)
			}
		}
		var zero Sparse
		if zero.Normalize().NNZ() != 0 || zero.L2() != 0 {
			t.Fatal("zero vector must survive Normalize unchanged")
		}
		if c := s.Cosine(zero); c != 0 {
			t.Fatalf("trial %d: cosine with zero vector = %g", trial, c)
		}
	}
}

func TestPropertyNewSparseFoldsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < propertyTrials; trial++ {
		n := rng.Intn(40)
		idx := make([]int32, n)
		val := make([]float64, n)
		counts := make(map[int32]float64)
		for k := 0; k < n; k++ {
			idx[k] = rng.Int31n(16) // narrow space forces duplicates
			val[k] = float64(rng.Intn(7) - 3)
			counts[idx[k]] += val[k]
		}
		got := NewSparse(idx, val)
		want := FromCounts(counts)
		if !got.Equal(want) {
			t.Fatalf("trial %d: NewSparse %v != FromCounts %v", trial, got, want)
		}
	}
}

func TestPropertyWeightsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < propertyTrials; trial++ {
		// Model a Weights vector against a plain dense reference.
		const width = 48
		w := NewWeights()
		dense := make([]float64, width)
		for op := 0; op < 60; op++ {
			switch rng.Intn(4) {
			case 0:
				i := rng.Int31n(width)
				v := float64(rng.Intn(9) - 4)
				w.Set(i, v)
				dense[i] = v
			case 1:
				i := rng.Int31n(width)
				v := float64(rng.Intn(9) - 4)
				w.Add(i, v)
				dense[i] += v
			case 2:
				a := float64(rng.Intn(5) - 2)
				x := randSparse(rng, 10, width)
				w.AddSparse(a, x)
				x.Range(func(i int32, v float64) { dense[i] += a * v })
			case 3:
				a := float64(rng.Intn(3))
				w.Scale(a)
				for i := range dense {
					dense[i] *= a
				}
			}
		}

		nnz := 0
		var l1, l2 float64
		for i, v := range dense {
			if got := w.At(int32(i)); !approxEq(got, v) {
				t.Fatalf("trial %d: At(%d) = %g, dense %g", trial, i, got, v)
			}
			if v != 0 {
				nnz++
			}
			l1 += math.Abs(v)
			l2 += v * v
		}
		// Integer-valued ops keep everything exact, so NNZ must agree
		// (Set/Add delete exact zeros).
		if w.NNZ() != nnz {
			t.Fatalf("trial %d: NNZ = %d, dense %d", trial, w.NNZ(), nnz)
		}
		if !approxEq(w.L1(), l1) || !approxEq(w.L2(), math.Sqrt(l2)) {
			t.Fatalf("trial %d: norms L1=%g/%g L2=%g/%g",
				trial, w.L1(), l1, w.L2(), math.Sqrt(l2))
		}

		// Dot against a random probe.
		x := randSparse(rng, 12, width)
		var want float64
		x.Range(func(i int32, v float64) { want += dense[i] * v })
		if got := w.Dot(x); !approxEq(got, want) {
			t.Fatalf("trial %d: Dot = %g, dense %g", trial, got, want)
		}

		// ToSparse round-trips through FromCounts semantics.
		sp := w.ToSparse()
		if sp.NNZ() != w.NNZ() {
			t.Fatalf("trial %d: ToSparse NNZ %d != %d", trial, sp.NNZ(), w.NNZ())
		}
		sp.Range(func(i int32, v float64) {
			if v != w.At(i) {
				t.Fatalf("trial %d: ToSparse[%d] = %g, want %g", trial, i, v, w.At(i))
			}
		})

		// Clone independence.
		c := w.Clone()
		c.Add(0, 1)
		if approxEq(c.At(0), w.At(0)) {
			t.Fatalf("trial %d: Clone shares storage", trial)
		}

		// TopK ordering: decreasing |weight|, index tiebreak, k-bounded.
		top := w.TopK(5)
		if len(top) > 5 || len(top) > w.NNZ() {
			t.Fatalf("trial %d: TopK returned %d entries", trial, len(top))
		}
		for k := 1; k < len(top); k++ {
			pa, pb := math.Abs(top[k-1].Weight), math.Abs(top[k].Weight)
			if pa < pb || (pa == pb && top[k-1].Index >= top[k].Index) {
				t.Fatalf("trial %d: TopK misordered at %d: %v", trial, k, top)
			}
		}

		// Cosine symmetry and bounds against an independent vector.
		o := NewWeights()
		o.AddSparse(1, randSparse(rng, 12, width))
		c1, c2 := w.Cosine(o), o.Cosine(w)
		if !approxEq(c1, c2) {
			t.Fatalf("trial %d: cosine asymmetric: %g vs %g", trial, c1, c2)
		}
		if c1 < -1-1e-12 || c1 > 1+1e-12 {
			t.Fatalf("trial %d: cosine out of range: %g", trial, c1)
		}
	}
}
