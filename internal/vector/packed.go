package vector

import "math"

// Packed is the scoring hot path's sparse-vector representation: parallel
// index/value slices sorted by strictly increasing feature index, exposed
// directly so the inner loops compile down to straight slice walks with no
// closure calls, map lookups, or bounds-check surprises. Unlike Sparse it
// is mutable and its storage is caller-owned, which is what lets batch
// scorers and pooled buffers reuse one allocation across documents.
//
// Ownership contract: a Packed obtained from Sparse.Packed is a zero-copy
// view of the immutable Sparse storage and must be treated as read-only
// (mutating it would corrupt every other holder of the same Sparse, such
// as the featurizer cache). A Packed built by PackInto or Sub owns its
// slices and may be mutated and reused freely.
type Packed struct {
	Idx []int32
	Val []float64
}

// Packed returns a zero-copy read-only view of s. The view shares s's
// backing arrays: callers must not modify Idx or Val through it.
func (s Sparse) Packed() Packed { return Packed{Idx: s.idx, Val: s.val} }

// PackInto copies s into dst, reusing dst's capacity when possible, and
// returns the filled Packed. The result is owned by the caller.
func PackInto(dst Packed, s Sparse) Packed {
	dst.Idx = append(dst.Idx[:0], s.idx...)
	dst.Val = append(dst.Val[:0], s.val...)
	return dst
}

// ToSparse snapshots p as an immutable Sparse vector (copying storage).
// p must honour the Packed invariant (strictly increasing indices, no
// stored zeros), which every constructor in this package maintains.
func (p Packed) ToSparse() Sparse {
	idx := make([]int32, len(p.Idx))
	val := make([]float64, len(p.Val))
	copy(idx, p.Idx)
	copy(val, p.Val)
	return Sparse{idx: idx, val: val}
}

// NNZ reports the number of stored (non-zero) entries.
func (p Packed) NNZ() int { return len(p.Idx) }

// At returns the value at feature index i (0 when absent), by binary
// search over the sorted index slice.
func (p Packed) At(i int32) float64 {
	lo, hi := 0, len(p.Idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.Idx[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.Idx) && p.Idx[lo] == i {
		return p.Val[lo]
	}
	return 0
}

// L1 returns the L1 norm.
func (p Packed) L1() float64 {
	var sum float64
	for _, v := range p.Val {
		sum += math.Abs(v)
	}
	return sum
}

// L2 returns the Euclidean norm.
func (p Packed) L2() float64 {
	var sum float64
	for _, v := range p.Val {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Dot returns the inner product of two packed vectors with a merge-style
// walk over the sorted index slices. The non-matching sides advance in
// tight inner loops (rather than re-entering a three-way branch per
// element), which keeps the comparisons the branch predictor sees
// overwhelmingly uniform on the skewed model-vs-document shapes the
// rankers produce. Matching index pairs accumulate in ascending index
// order — the same order as Sparse.Dot — so both paths agree bitwise.
func (p Packed) Dot(q Packed) float64 {
	var sum float64
	i, j := 0, 0
	na, nb := len(p.Idx), len(q.Idx)
	for i < na && j < nb {
		ia, jb := p.Idx[i], q.Idx[j]
		switch {
		case ia == jb:
			sum += p.Val[i] * q.Val[j]
			i++
			j++
		case ia < jb:
			for i++; i < na && p.Idx[i] < jb; i++ {
			}
		default:
			for j++; j < nb && q.Idx[j] < ia; j++ {
			}
		}
	}
	return sum
}

// Scale multiplies every value by a in place. Scaling by 0 empties the
// vector (mirroring Sparse.Scale, which drops exact zeros).
func (p *Packed) Scale(a float64) {
	if a == 0 {
		p.Idx = p.Idx[:0]
		p.Val = p.Val[:0]
		return
	}
	for k, v := range p.Val {
		p.Val[k] = v * a
	}
}

// Normalize scales p to unit L2 norm in place (zero vectors are left
// unchanged), using the same multiply-by-reciprocal arithmetic as
// Sparse.Normalize.
func (p *Packed) Normalize() {
	n := p.L2()
	if n == 0 {
		return
	}
	p.Scale(1 / n)
}

// Sub computes p - q into dst (reusing its capacity) and returns the
// filled Packed. Exact-zero differences are dropped, mirroring
// Sparse.Sub. dst must not alias p or q.
func (p Packed) Sub(q Packed, dst Packed) Packed {
	idx := dst.Idx[:0]
	val := dst.Val[:0]
	i, j := 0, 0
	na, nb := len(p.Idx), len(q.Idx)
	for i < na && j < nb {
		switch {
		case p.Idx[i] < q.Idx[j]:
			idx = append(idx, p.Idx[i])
			val = append(val, p.Val[i])
			i++
		case p.Idx[i] > q.Idx[j]:
			idx = append(idx, q.Idx[j])
			val = append(val, -q.Val[j])
			j++
		default:
			if d := p.Val[i] - q.Val[j]; d != 0 {
				idx = append(idx, p.Idx[i])
				val = append(val, d)
			}
			i++
			j++
		}
	}
	for ; i < na; i++ {
		idx = append(idx, p.Idx[i])
		val = append(val, p.Val[i])
	}
	for ; j < nb; j++ {
		idx = append(idx, q.Idx[j])
		val = append(val, -q.Val[j])
	}
	return Packed{Idx: idx, Val: val}
}
