package vector

import (
	"math"
	"sort"
)

// Weights is a mutable sparse weight vector backed by a map. It is the
// representation of linear-model parameters whose feature space grows as
// the extraction process observes new documents.
type Weights struct {
	w map[int32]float64
}

// NewWeights returns an empty weight vector.
func NewWeights() *Weights { return &Weights{w: make(map[int32]float64)} }

// Clone returns a deep copy of w.
func (w *Weights) Clone() *Weights {
	c := &Weights{w: make(map[int32]float64, len(w.w))}
	for i, v := range w.w {
		c.w[i] = v
	}
	return c
}

// sortedIndices returns the stored feature indices in increasing order.
// The norm and similarity folds below iterate in this order because
// float addition is not associative: summing in Go's randomized map
// order would make L1/L2/Cosine — and every detector trigger decision
// derived from them — differ in the last ulps between identical runs.
func (w *Weights) sortedIndices() []int32 {
	idx := make([]int32, 0, len(w.w))
	//lint:allow detrand index collection is sorted immediately below
	for i := range w.w {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

// At returns the weight of feature i (0 when absent).
func (w *Weights) At(i int32) float64 { return w.w[i] }

// Set assigns the weight of feature i; setting 0 removes the entry so that
// the model stays sparse (the basis of in-training feature selection).
func (w *Weights) Set(i int32, v float64) {
	if v == 0 {
		delete(w.w, i)
		return
	}
	w.w[i] = v
}

// Add accumulates v into feature i.
func (w *Weights) Add(i int32, v float64) { w.Set(i, w.w[i]+v) }

// NNZ reports the number of features with non-zero weight.
func (w *Weights) NNZ() int { return len(w.w) }

// Scale multiplies every weight by a. Scaling by 0 clears the vector.
func (w *Weights) Scale(a float64) {
	if a == 1 {
		return
	}
	if a == 0 {
		w.w = make(map[int32]float64)
		return
	}
	for i, v := range w.w {
		w.w[i] = v * a
	}
}

// AddSparse accumulates a*x into w.
func (w *Weights) AddSparse(a float64, x Sparse) {
	if a == 0 {
		return
	}
	x.Range(func(i int32, v float64) {
		w.Add(i, a*v)
	})
}

// Dot returns the inner product of w with a sparse vector.
func (w *Weights) Dot(x Sparse) float64 {
	var sum float64
	x.Range(func(i int32, v float64) {
		if wi, ok := w.w[i]; ok {
			sum += wi * v
		}
	})
	return sum
}

// L2 returns the Euclidean norm of the weight vector. The fold runs in
// sorted index order so the result is identical across runs.
func (w *Weights) L2() float64 {
	var sum float64
	for _, i := range w.sortedIndices() {
		v := w.w[i]
		sum += v * v
	}
	return math.Sqrt(sum)
}

// L1 returns the L1 norm of the weight vector, folded in sorted index
// order for run-to-run determinism.
func (w *Weights) L1() float64 {
	var sum float64
	for _, i := range w.sortedIndices() {
		sum += math.Abs(w.w[i])
	}
	return sum
}

// Cosine returns the cosine similarity between two weight vectors, and 0
// when either is a zero vector.
func (w *Weights) Cosine(o *Weights) float64 {
	nw, no := w.L2(), o.L2()
	if nw == 0 || no == 0 {
		return 0
	}
	var dot float64
	// Iterate over the smaller map, in sorted index order: the dot
	// product feeds Mod-C's trigger angle, where ulp-level drift from
	// randomized iteration order could flip a threshold decision.
	a, b := w, o
	if len(b.w) < len(a.w) {
		a, b = b, a
	}
	for _, i := range a.sortedIndices() {
		if u, ok := b.w[i]; ok {
			dot += a.w[i] * u
		}
	}
	return dot / (nw * no)
}

// Range calls f for every stored (index, weight) pair in unspecified order.
func (w *Weights) Range(f func(i int32, v float64)) {
	for i, v := range w.w {
		f(i, v)
	}
}

// ToSparse snapshots the weight vector as an immutable sparse vector.
func (w *Weights) ToSparse() Sparse {
	return FromCounts(w.w)
}

// WeightedFeature pairs a feature index with a weight for ranking reports.
type WeightedFeature struct {
	Index  int32
	Weight float64
}

// TopK returns the k features with largest absolute weight, ordered by
// decreasing |weight| with index as tiebreaker for determinism.
func (w *Weights) TopK(k int) []WeightedFeature {
	all := make([]WeightedFeature, 0, len(w.w))
	//lint:allow detrand collection order is erased by the sort below
	for i, v := range w.w {
		all = append(all, WeightedFeature{Index: i, Weight: v})
	}
	sort.Slice(all, func(a, b int) bool {
		av, bv := math.Abs(all[a].Weight), math.Abs(all[b].Weight)
		if av != bv {
			return av > bv
		}
		return all[a].Index < all[b].Index
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}
