package vector

import (
	"cmp"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// Weights is a mutable sparse weight vector backed by a map. It is the
// representation of linear-model parameters whose feature space grows as
// the extraction process observes new documents.
//
// For the scoring hot path, Weights additionally maintains a lazily built
// dense mirror of the map (see MarginPacked): a flat []float64 indexed by
// feature id that turns the per-feature map probe of Dot into one array
// load. The mirror is invalidated by a generation counter bumped on every
// mutation and rebuilt — reusing its previous capacity — on the next
// MarginPacked call, so training pays one O(support) rebuild per update
// epoch instead of a per-step maintenance cost, and steady-state scoring
// allocates nothing.
//
// Concurrency: mutation (Set/Add/Scale/AddSparse) is single-threaded, as
// before. MarginPacked may be called from many goroutines concurrently
// with each other (the pipeline's score workers do), but never
// concurrently with a mutation — the same contract the underlying map
// already imposes.
type Weights struct {
	w map[int32]float64

	// gen counts mutations; mirror is fresh while its gen matches.
	gen      uint64
	mirror   atomic.Pointer[denseMirror]
	mirrorMu sync.Mutex
}

// denseMirror is one immutable-once-published dense snapshot of the map.
type denseMirror struct {
	gen  uint64
	vals []float64
}

// NewWeights returns an empty weight vector.
func NewWeights() *Weights { return &Weights{w: make(map[int32]float64)} }

// Clone returns a deep copy of w. The clone starts without a dense
// mirror; it is rebuilt on the clone's first MarginPacked call.
func (w *Weights) Clone() *Weights {
	c := &Weights{w: make(map[int32]float64, len(w.w))}
	for i, v := range w.w {
		c.w[i] = v
	}
	return c
}

// sortedIndices returns the stored feature indices in increasing order.
// The norm and similarity folds below iterate in this order because
// float addition is not associative: summing in Go's randomized map
// order would make L1/L2/Cosine — and every detector trigger decision
// derived from them — differ in the last ulps between identical runs.
func (w *Weights) sortedIndices() []int32 {
	idx := make([]int32, 0, len(w.w))
	//lint:allow detrand index collection is sorted immediately below
	for i := range w.w {
		idx = append(idx, i)
	}
	slices.Sort(idx)
	return idx
}

// At returns the weight of feature i (0 when absent).
func (w *Weights) At(i int32) float64 { return w.w[i] }

// Set assigns the weight of feature i; setting 0 removes the entry so that
// the model stays sparse (the basis of in-training feature selection).
func (w *Weights) Set(i int32, v float64) {
	w.gen++
	if v == 0 {
		delete(w.w, i)
		return
	}
	w.w[i] = v
}

// Add accumulates v into feature i.
func (w *Weights) Add(i int32, v float64) { w.Set(i, w.w[i]+v) }

// NNZ reports the number of features with non-zero weight.
func (w *Weights) NNZ() int { return len(w.w) }

// Scale multiplies every weight by a. Scaling by 0 clears the vector.
func (w *Weights) Scale(a float64) {
	if a == 1 {
		return
	}
	w.gen++
	if a == 0 {
		w.w = make(map[int32]float64)
		return
	}
	for i, v := range w.w {
		w.w[i] = v * a
	}
}

// AddSparse accumulates a*x into w.
func (w *Weights) AddSparse(a float64, x Sparse) {
	if a == 0 {
		return
	}
	for k, i := range x.idx {
		w.Add(i, a*x.val[k])
	}
}

// Dot returns the inner product of w with a sparse vector.
func (w *Weights) Dot(x Sparse) float64 {
	var sum float64
	for k, i := range x.idx {
		if wi, ok := w.w[i]; ok {
			sum += wi * x.val[k]
		}
	}
	return sum
}

// L2 returns the Euclidean norm of the weight vector. The fold runs in
// sorted index order so the result is identical across runs.
func (w *Weights) L2() float64 {
	var sum float64
	for _, i := range w.sortedIndices() {
		v := w.w[i]
		sum += v * v
	}
	return math.Sqrt(sum)
}

// L1 returns the L1 norm of the weight vector, folded in sorted index
// order for run-to-run determinism.
func (w *Weights) L1() float64 {
	var sum float64
	for _, i := range w.sortedIndices() {
		sum += math.Abs(w.w[i])
	}
	return sum
}

// Cosine returns the cosine similarity between two weight vectors, and 0
// when either is a zero vector.
func (w *Weights) Cosine(o *Weights) float64 {
	nw, no := w.L2(), o.L2()
	if nw == 0 || no == 0 {
		return 0
	}
	var dot float64
	// Iterate over the smaller map, in sorted index order: the dot
	// product feeds Mod-C's trigger angle, where ulp-level drift from
	// randomized iteration order could flip a threshold decision.
	a, b := w, o
	if len(b.w) < len(a.w) {
		a, b = b, a
	}
	for _, i := range a.sortedIndices() {
		if u, ok := b.w[i]; ok {
			dot += a.w[i] * u
		}
	}
	return dot / (nw * no)
}

// MarginPacked returns w·x + bias through the dense-accumulator fast
// path: one array load per stored document feature instead of one map
// probe. Because x's indices are sorted ascending, the loop breaks at the
// first index beyond the mirror (every later index is absent from the
// model too), so the per-element branch is uniformly predictable.
//
// The result is bitwise identical to Dot(x)+bias: both fold the matching
// features in ascending index order, and the extra terms the dense path
// adds for absent features are exact zeros (0·v), which cannot perturb an
// IEEE sum.
func (w *Weights) MarginPacked(x Packed, bias float64) float64 {
	d := w.denseVals()
	n := int32(len(d))
	var sum float64
	idx := x.Idx
	val := x.Val
	for k, i := range idx {
		if i >= n {
			break
		}
		sum += d[i] * val[k]
	}
	return sum + bias
}

// denseVals returns a dense snapshot of the map, rebuilding it only when
// a mutation has happened since the last build. The double-checked
// atomic/mutex dance makes concurrent first calls after an update race-
// free; the steady-state path is one atomic load and one comparison.
func (w *Weights) denseVals() []float64 {
	gen := w.gen
	if m := w.mirror.Load(); m != nil && m.gen == gen {
		return m.vals
	}
	w.mirrorMu.Lock()
	defer w.mirrorMu.Unlock()
	if m := w.mirror.Load(); m != nil && m.gen == gen {
		return m.vals
	}
	// Reusing the stale mirror's capacity is safe: a stale mirror implies
	// a mutation happened, and mutations are never concurrent with
	// readers, so no goroutine can still be walking the old snapshot.
	var vals []float64
	if old := w.mirror.Load(); old != nil {
		vals = old.vals
	}
	need := 0
	for i := range w.w {
		if int(i) >= need {
			need = int(i) + 1
		}
	}
	if cap(vals) < need {
		vals = make([]float64, need)
	} else {
		vals = vals[:need]
		clear(vals)
	}
	for i, v := range w.w {
		vals[i] = v
	}
	w.mirror.Store(&denseMirror{gen: gen, vals: vals})
	return vals
}

// Range calls f for every stored (index, weight) pair in unspecified order.
func (w *Weights) Range(f func(i int32, v float64)) {
	for i, v := range w.w {
		f(i, v)
	}
}

// ToSparse snapshots the weight vector as an immutable sparse vector.
func (w *Weights) ToSparse() Sparse {
	return FromCounts(w.w)
}

// WeightedFeature pairs a feature index with a weight for ranking reports.
type WeightedFeature struct {
	Index  int32
	Weight float64
}

// TopK returns the k features with largest absolute weight, ordered by
// decreasing |weight| with index as tiebreaker for determinism.
func (w *Weights) TopK(k int) []WeightedFeature {
	all := make([]WeightedFeature, 0, len(w.w))
	//lint:allow detrand collection order is erased by the sort below
	for i, v := range w.w {
		all = append(all, WeightedFeature{Index: i, Weight: v})
	}
	slices.SortFunc(all, absDescByIndex)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// absDescByIndex orders WeightedFeatures by decreasing |weight| with
// index as tiebreaker — a total order, so the result is deterministic
// under any (even unstable) sort.
func absDescByIndex(a, b WeightedFeature) int {
	av, bv := math.Abs(a.Weight), math.Abs(b.Weight)
	if av != bv {
		if av > bv {
			return -1
		}
		return 1
	}
	return cmp.Compare(a.Index, b.Index)
}
