package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightsSetZeroDeletes(t *testing.T) {
	w := NewWeights()
	w.Set(3, 1.5)
	if w.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", w.NNZ())
	}
	w.Set(3, 0)
	if w.NNZ() != 0 {
		t.Errorf("NNZ = %d after Set(3,0), want 0 (sparsity invariant)", w.NNZ())
	}
}

func TestWeightsAddCancellationDeletes(t *testing.T) {
	w := NewWeights()
	w.Add(7, 2)
	w.Add(7, -2)
	if w.NNZ() != 0 {
		t.Errorf("NNZ = %d after cancellation, want 0", w.NNZ())
	}
}

func TestWeightsCloneIndependence(t *testing.T) {
	w := NewWeights()
	w.Set(1, 1)
	c := w.Clone()
	c.Set(1, 9)
	c.Set(2, 5)
	if w.At(1) != 1 || w.At(2) != 0 {
		t.Error("mutating a clone must not affect the original")
	}
}

func TestWeightsScale(t *testing.T) {
	w := NewWeights()
	w.Set(1, 4)
	w.Scale(0.5)
	if w.At(1) != 2 {
		t.Errorf("At(1) = %g after Scale(0.5), want 2", w.At(1))
	}
	w.Scale(0)
	if w.NNZ() != 0 {
		t.Error("Scale(0) must clear the vector")
	}
}

func TestWeightsDotMatchesSparseDot(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSparse(r), randomSparse(r)
		w := NewWeights()
		a.Range(func(i int32, v float64) { w.Set(i, v) })
		return math.Abs(w.Dot(b)-a.Dot(b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightsCosineMatchesSparseCosine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSparse(r), randomSparse(r)
		wa, wb := NewWeights(), NewWeights()
		a.Range(func(i int32, v float64) { wa.Set(i, v) })
		b.Range(func(i int32, v float64) { wb.Set(i, v) })
		return math.Abs(wa.Cosine(wb)-a.Cosine(b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightsToSparseRoundTrip(t *testing.T) {
	w := NewWeights()
	w.Set(2, 1)
	w.Set(9, -4)
	s := w.ToSparse()
	if s.At(2) != 1 || s.At(9) != -4 || s.NNZ() != 2 {
		t.Errorf("ToSparse = %v, want {2:1, 9:-4}", s)
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	w := NewWeights()
	w.Set(1, -5)
	w.Set(2, 3)
	w.Set(3, 5) // |w| ties with feature 1; lower index first
	w.Set(4, 0.1)
	top := w.TopK(3)
	if len(top) != 3 {
		t.Fatalf("len(TopK) = %d, want 3", len(top))
	}
	if top[0].Index != 1 || top[1].Index != 3 || top[2].Index != 2 {
		t.Errorf("TopK order = %v, want indices [1 3 2]", top)
	}
}

func TestTopKLargerThanSize(t *testing.T) {
	w := NewWeights()
	w.Set(1, 1)
	if got := len(w.TopK(10)); got != 1 {
		t.Errorf("len(TopK(10)) = %d, want 1", got)
	}
}

func TestAddSparse(t *testing.T) {
	w := NewWeights()
	w.Set(1, 1)
	w.AddSparse(2, sparseFromMap(map[int32]float64{1: 1, 2: 3}))
	if w.At(1) != 3 || w.At(2) != 6 {
		t.Errorf("AddSparse result = {1:%g, 2:%g}, want {1:3, 2:6}", w.At(1), w.At(2))
	}
	w.AddSparse(0, sparseFromMap(map[int32]float64{5: 9}))
	if w.At(5) != 0 {
		t.Error("AddSparse with factor 0 must be a no-op")
	}
}

func TestWeightsL1L2(t *testing.T) {
	w := NewWeights()
	w.Set(0, 3)
	w.Set(1, -4)
	if w.L1() != 7 {
		t.Errorf("L1 = %g, want 7", w.L1())
	}
	if math.Abs(w.L2()-5) > 1e-12 {
		t.Errorf("L2 = %g, want 5", w.L2())
	}
}
