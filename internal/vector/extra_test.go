package vector

import "testing"

func TestFromCountsDropsZeros(t *testing.T) {
	s := FromCounts(map[int32]float64{1: 0, 2: 3})
	if s.NNZ() != 1 || s.At(2) != 3 {
		t.Errorf("FromCounts = %v", s)
	}
}

func TestRangeOrder(t *testing.T) {
	s := FromCounts(map[int32]float64{9: 1, 1: 1, 5: 1})
	var got []int32
	s.Range(func(i int32, _ float64) { got = append(got, i) })
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("Range order = %v, want ascending", got)
		}
	}
}

func TestSubWithEmpty(t *testing.T) {
	a := FromCounts(map[int32]float64{1: 2})
	var zero Sparse
	if !a.Sub(zero).Equal(a) {
		t.Error("a - 0 must equal a")
	}
	neg := zero.Sub(a)
	if neg.At(1) != -2 {
		t.Error("0 - a must negate a")
	}
}

func TestWeightsRangeVisitsAll(t *testing.T) {
	w := NewWeights()
	w.Set(1, 1)
	w.Set(2, 2)
	sum := 0.0
	w.Range(func(_ int32, v float64) { sum += v })
	if sum != 3 {
		t.Errorf("Range sum = %g", sum)
	}
}
