// Package vector provides the sparse linear algebra used by the online
// learners and ranking models: immutable sorted sparse vectors for document
// feature representations, and a mutable map-backed vector for model
// weights whose feature space grows during extraction.
package vector

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
)

// Sparse is an immutable sparse vector stored as parallel slices sorted by
// feature index. It is the representation of a featurized document.
type Sparse struct {
	idx []int32
	val []float64
}

// NewSparse builds a Sparse vector from unordered (index, value) pairs.
// Duplicate indices are summed; zero values are dropped.
func NewSparse(idx []int32, val []float64) Sparse {
	if len(idx) != len(val) {
		//lint:allow hotalloc cold panic path guarding a caller bug, never taken while scoring
		panic(fmt.Sprintf("vector: NewSparse length mismatch: %d indices, %d values", len(idx), len(val)))
	}
	type pair struct {
		i int32
		v float64
	}
	pairs := make([]pair, 0, len(idx))
	for k := range idx {
		pairs = append(pairs, pair{idx[k], val[k]})
	}
	// Total order (index, then value) so duplicate indices sum in a
	// deterministic order regardless of the sort's stability.
	slices.SortFunc(pairs, func(a, b pair) int {
		if c := cmp.Compare(a.i, b.i); c != 0 {
			return c
		}
		return cmp.Compare(a.v, b.v)
	})
	outIdx := make([]int32, 0, len(pairs))
	outVal := make([]float64, 0, len(pairs))
	for _, p := range pairs {
		n := len(outIdx)
		if n > 0 && outIdx[n-1] == p.i {
			outVal[n-1] += p.v
			continue
		}
		outIdx = append(outIdx, p.i)
		outVal = append(outVal, p.v)
	}
	// Drop exact zeros (possibly created by cancellation).
	w := 0
	for k := range outIdx {
		if outVal[k] != 0 {
			outIdx[w], outVal[w] = outIdx[k], outVal[k]
			w++
		}
	}
	return Sparse{idx: outIdx[:w], val: outVal[:w]}
}

// FromCounts builds a Sparse vector from a feature-count map.
func FromCounts(counts map[int32]float64) Sparse {
	idx := make([]int32, 0, len(counts))
	//lint:allow detrand collection order is erased by the sort below
	for i := range counts {
		idx = append(idx, i)
	}
	slices.Sort(idx)
	val := make([]float64, 0, len(idx))
	outIdx := make([]int32, 0, len(idx))
	for _, i := range idx {
		if v := counts[i]; v != 0 {
			outIdx = append(outIdx, i)
			val = append(val, v)
		}
	}
	return Sparse{idx: outIdx, val: val}
}

// NNZ reports the number of stored (non-zero) entries.
func (s Sparse) NNZ() int { return len(s.idx) }

// MaxIndex returns the largest feature index, or -1 for an empty vector.
func (s Sparse) MaxIndex() int32 {
	if len(s.idx) == 0 {
		return -1
	}
	return s.idx[len(s.idx)-1]
}

// At returns the value at feature index i (0 when absent). The lower
// bound is searched with an open-coded loop (same semantics as
// sort.Search) so the probe stays closure- and allocation-free.
func (s Sparse) At(i int32) float64 {
	lo, hi := 0, len(s.idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.idx[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.idx) && s.idx[lo] == i {
		return s.val[lo]
	}
	return 0
}

// Range calls f for every stored (index, value) pair in index order.
func (s Sparse) Range(f func(i int32, v float64)) {
	for k := range s.idx {
		f(s.idx[k], s.val[k])
	}
}

// L1 returns the L1 norm.
func (s Sparse) L1() float64 {
	var sum float64
	for _, v := range s.val {
		sum += math.Abs(v)
	}
	return sum
}

// L2 returns the Euclidean norm.
func (s Sparse) L2() float64 {
	var sum float64
	for _, v := range s.val {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Scale returns a copy of s with every value multiplied by a.
func (s Sparse) Scale(a float64) Sparse {
	if a == 0 {
		return Sparse{}
	}
	idx := make([]int32, len(s.idx))
	val := make([]float64, len(s.val))
	copy(idx, s.idx)
	for k, v := range s.val {
		val[k] = v * a
	}
	return Sparse{idx: idx, val: val}
}

// Sub returns s - t as a new sparse vector.
func (s Sparse) Sub(t Sparse) Sparse {
	idx := make([]int32, 0, len(s.idx)+len(t.idx))
	val := make([]float64, 0, len(s.idx)+len(t.idx))
	i, j := 0, 0
	for i < len(s.idx) && j < len(t.idx) {
		switch {
		case s.idx[i] < t.idx[j]:
			idx = append(idx, s.idx[i])
			val = append(val, s.val[i])
			i++
		case s.idx[i] > t.idx[j]:
			idx = append(idx, t.idx[j])
			val = append(val, -t.val[j])
			j++
		default:
			if d := s.val[i] - t.val[j]; d != 0 {
				idx = append(idx, s.idx[i])
				val = append(val, d)
			}
			i++
			j++
		}
	}
	for ; i < len(s.idx); i++ {
		idx = append(idx, s.idx[i])
		val = append(val, s.val[i])
	}
	for ; j < len(t.idx); j++ {
		idx = append(idx, t.idx[j])
		val = append(val, -t.val[j])
	}
	return Sparse{idx: idx, val: val}
}

// Dot returns the inner product of two sparse vectors.
func (s Sparse) Dot(t Sparse) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(s.idx) && j < len(t.idx) {
		switch {
		case s.idx[i] < t.idx[j]:
			i++
		case s.idx[i] > t.idx[j]:
			j++
		default:
			sum += s.val[i] * t.val[j]
			i++
			j++
		}
	}
	return sum
}

// Cosine returns the cosine similarity of two sparse vectors, and 0 when
// either is a zero vector.
func (s Sparse) Cosine(t Sparse) float64 {
	ns, nt := s.L2(), t.L2()
	if ns == 0 || nt == 0 {
		return 0
	}
	return s.Dot(t) / (ns * nt)
}

// String renders the vector as {i:v, ...} for debugging.
func (s Sparse) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for k := range s.idx {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatInt(int64(s.idx[k]), 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(s.val[k], 'g', -1, 64))
	}
	b.WriteByte('}')
	return b.String()
}

// Normalize returns s scaled to unit L2 norm (zero vectors are returned
// unchanged).
func (s Sparse) Normalize() Sparse {
	n := s.L2()
	if n == 0 {
		return s
	}
	return s.Scale(1 / n)
}

// Equal reports whether two sparse vectors have identical stored entries.
func (s Sparse) Equal(t Sparse) bool {
	if len(s.idx) != len(t.idx) {
		return false
	}
	for k := range s.idx {
		if s.idx[k] != t.idx[k] || s.val[k] != t.val[k] {
			return false
		}
	}
	return true
}
