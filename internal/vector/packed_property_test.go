package vector

// Fixed-seed property tests pinning the Packed fast-path kernels to the
// map/Sparse reference implementations: dot, scale, sub, normalize, and
// the Weights.MarginPacked dense accumulator must agree with their Sparse
// counterparts to within 1e-12 across 1k random vectors, including the
// empty, single-element, and duplicate-index corners. A divergence means
// the zero-alloc scoring path no longer computes the same ranking as the
// representation every parity oracle is written against.

import (
	"math"
	"math/rand"
	"testing"
)

const packedTrials = 1000

// packedTolerance is the satellite budget: the fast path replicates the
// Sparse arithmetic order, so in practice deltas are exactly zero and the
// bound only absorbs benign compiler-level reassociation.
const packedTolerance = 1e-12

func packedEq(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= packedTolerance*scale
}

// packedCase draws one input vector: mostly random sparse vectors (with
// duplicate indices folded by NewSparse), plus forced empty,
// single-element, and heavily duplicated-index corners early in the
// trial sequence so they always run.
func packedCase(t *testing.T, rng *rand.Rand, trial int) Sparse {
	t.Helper()
	switch trial {
	case 0:
		return Sparse{} // empty
	case 1:
		return NewSparse([]int32{7}, []float64{3.5}) // single element
	case 2:
		// Duplicate indices: NewSparse folds them; the packed view must
		// see the folded result.
		return NewSparse([]int32{4, 4, 4, 9, 9}, []float64{1, 2, -3, 0.5, 0.25})
	case 3:
		// Duplicates that cancel to zero exactly drop out entirely.
		return NewSparse([]int32{2, 2, 5}, []float64{1, -1, 2})
	}
	return randSparse(rng, 40, 128)
}

func TestPropertyPackedMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < packedTrials; trial++ {
		s := packedCase(t, rng, trial)
		u := packedCase(t, rng, packedTrials-1-trial)
		ps, pu := s.Packed(), u.Packed()

		// The view is exact: same entries, same order.
		if ps.NNZ() != s.NNZ() {
			t.Fatalf("trial %d: Packed NNZ %d != Sparse %d", trial, ps.NNZ(), s.NNZ())
		}
		s.Range(func(i int32, v float64) {
			if ps.At(i) != v {
				t.Fatalf("trial %d: Packed.At(%d) = %g, Sparse %g", trial, i, ps.At(i), v)
			}
		})
		if !ps.ToSparse().Equal(s) {
			t.Fatalf("trial %d: ToSparse round-trip lost entries", trial)
		}

		// Dot agrees both ways (merge loop is not symmetric in code path).
		if got, want := ps.Dot(pu), s.Dot(u); !packedEq(got, want) {
			t.Fatalf("trial %d: Packed dot %g != Sparse %g", trial, got, want)
		}
		if got, want := pu.Dot(ps), u.Dot(s); !packedEq(got, want) {
			t.Fatalf("trial %d: reversed Packed dot %g != Sparse %g", trial, got, want)
		}

		// Norms.
		if !packedEq(ps.L1(), s.L1()) || !packedEq(ps.L2(), s.L2()) {
			t.Fatalf("trial %d: norms L1 %g/%g L2 %g/%g",
				trial, ps.L1(), s.L1(), ps.L2(), s.L2())
		}

		// Scale on an owned copy against Sparse.Scale.
		a := rng.NormFloat64()
		if trial%17 == 0 {
			a = 0 // the empty-the-vector corner
		}
		sc := PackInto(Packed{}, s)
		sc.Scale(a)
		want := s.Scale(a)
		if sc.NNZ() != want.NNZ() {
			t.Fatalf("trial %d: scaled NNZ %d != %d", trial, sc.NNZ(), want.NNZ())
		}
		want.Range(func(i int32, v float64) {
			if got := sc.At(i); !packedEq(got, v) {
				t.Fatalf("trial %d: scaled At(%d) = %g, want %g", trial, i, got, v)
			}
		})

		// Sub into a reused destination against Sparse.Sub.
		dst := Packed{Idx: make([]int32, 0, 4), Val: make([]float64, 0, 4)}
		diff := ps.Sub(pu, dst)
		wantDiff := s.Sub(u)
		if !diff.ToSparse().Equal(wantDiff) {
			t.Fatalf("trial %d: Packed sub %v != Sparse %v", trial, diff.ToSparse(), wantDiff)
		}
		if self := ps.Sub(ps, Packed{}); self.NNZ() != 0 {
			t.Fatalf("trial %d: p - p = %v, want empty", trial, self.ToSparse())
		}

		// Normalize on an owned copy against Sparse.Normalize.
		nc := PackInto(Packed{}, s)
		nc.Normalize()
		wantN := s.Normalize()
		wantN.Range(func(i int32, v float64) {
			if got := nc.At(i); !packedEq(got, v) {
				t.Fatalf("trial %d: normalized At(%d) = %g, want %g", trial, i, got, v)
			}
		})
		if s.NNZ() > 0 && !packedEq(nc.L2(), 1) {
			t.Fatalf("trial %d: normalized L2 = %g", trial, nc.L2())
		}
	}
}

// TestPropertyMarginPackedMatchesDot pins the dense-accumulator margin to
// the map-based Weights.Dot across random models and documents, through
// mutation/rebuild cycles.
func TestPropertyMarginPackedMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	w := NewWeights()
	for trial := 0; trial < packedTrials; trial++ {
		// Mutate the model a little each trial so the mirror is rebuilt
		// across many generations, including shrinks back to empty.
		switch rng.Intn(5) {
		case 0:
			w.Scale(0)
		case 1:
			w.Scale(float64(rng.Intn(3)))
		default:
			w.AddSparse(rng.NormFloat64(), randSparse(rng, 20, 256))
		}
		x := packedCase(t, rng, trial)
		got := w.MarginPacked(x.Packed(), 0)
		want := w.Dot(x)
		if got != want && !packedEq(got, want) {
			t.Fatalf("trial %d: MarginPacked %g != Dot %g (support %d)",
				trial, got, want, w.NNZ())
		}
		bias := rng.NormFloat64()
		if got, want := w.MarginPacked(x.Packed(), bias), w.Dot(x)+bias; !packedEq(got, want) {
			t.Fatalf("trial %d: biased margin %g != %g", trial, got, want)
		}
		// A second call with no interleaved mutation hits the cached
		// mirror and must return the identical bits.
		if again := w.MarginPacked(x.Packed(), 0); again != got {
			t.Fatalf("trial %d: cached-mirror margin %g != first call %g", trial, again, got)
		}
	}
}
