package report_test

// Acceptance test of ISSUE 2: a report built from a run's JSONL trace
// must reproduce the run's final recall and Result.Time phase totals
// EXACTLY — the trace carries the same measured durations and the same
// labels the pipeline itself used, so no tolerance is needed.

import (
	"bytes"
	"testing"

	"adaptiverank/internal/extract"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/obs/report"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/sampling"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/update"
)

func tracedRun(t *testing.T, seed int64) (*pipeline.Result, *report.Report, *obs.Registry) {
	t.Helper()
	cfg := textgen.DefaultConfig(seed, 1200)
	cfg.DensityOverride = map[relation.Relation]float64{relation.PH: 0.05}
	coll, _ := textgen.Generate(cfg)
	labels := pipeline.ComputeLabels(extract.Get(relation.PH), coll)
	if labels.NumUseful() < 10 {
		t.Fatalf("test corpus too sparse: %d useful", labels.NumUseful())
	}

	var buf bytes.Buffer
	rec := obs.NewJSONLRecorder(&buf)
	reg := obs.NewRegistry()
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: seed})
	res, err := pipeline.Run(pipeline.Options{
		Rel: relation.PH, Coll: coll, Labels: labels,
		Sample:   sampling.SRS(coll, 150, seed),
		Strategy: pipeline.NewLearned(r, feat),
		Detector: update.NewWindF(100), Featurizer: feat,
		Metrics: reg, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := report.FromReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, rep, reg
}

func TestReportReproducesRunExactly(t *testing.T) {
	res, rep, reg := tracedRun(t, 31)
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(rep.Runs))
	}
	r := rep.Runs[0]

	// Structure.
	if !r.Complete {
		t.Error("run must be complete")
	}
	if r.SampleDocs != res.SampleSize || r.SampleUseful != res.SampleUseful {
		t.Errorf("sample: report %d/%d, pipeline %d/%d",
			r.SampleDocs, r.SampleUseful, res.SampleSize, res.SampleUseful)
	}
	if r.Docs != len(res.Order) {
		t.Errorf("docs: report %d, pipeline %d", r.Docs, len(res.Order))
	}
	if len(r.Updates) != len(res.UpdatePositions) {
		t.Errorf("updates: report %d, pipeline %d", len(r.Updates), len(res.UpdatePositions))
	}
	for i, u := range r.Updates {
		if u.Position != res.UpdatePositions[i] {
			t.Errorf("update %d position: report %d, pipeline %d", i, u.Position, res.UpdatePositions[i])
		}
	}
	for i, c := range res.Churn {
		u := r.Updates[i]
		if u.Added != c.Added || u.Removed != c.Removed || u.Size != c.Size {
			t.Errorf("churn %d: report %+v, pipeline %+v", i, u, c)
		}
	}

	// Final recall and the whole curve: EXACT equality.
	if len(r.Curve) != len(res.Curve) {
		t.Fatalf("curve lengths: report %d, pipeline %d", len(r.Curve), len(res.Curve))
	}
	for p := range res.Curve {
		if r.Curve[p] != res.Curve[p] {
			t.Fatalf("curve[%d]: report %v != pipeline %v", p, r.Curve[p], res.Curve[p])
		}
	}
	if r.FinalRecall != res.Curve[100] {
		t.Errorf("final recall: report %v != pipeline %v", r.FinalRecall, res.Curve[100])
	}

	// Phase totals: EXACT equality with Result.Time (the pipeline feeds
	// the identical measured durations to both sides).
	if r.Phases["extraction"] != res.Time.Extraction {
		t.Errorf("extraction: report %v != pipeline %v", r.Phases["extraction"], res.Time.Extraction)
	}
	if r.Phases["ranking"] != res.Time.Ranking {
		t.Errorf("ranking: report %v != pipeline %v", r.Phases["ranking"], res.Time.Ranking)
	}
	if r.Phases["detection"] != res.Time.Detection {
		t.Errorf("detection: report %v != pipeline %v", r.Phases["detection"], res.Time.Detection)
	}
	if r.Phases["training"] != res.Time.Training {
		t.Errorf("training: report %v != pipeline %v", r.Phases["training"], res.Time.Training)
	}
	if r.Phases["total"] != res.Time.Total() || r.TotalCPU != res.Time.Total() {
		t.Errorf("total: report %v/%v != pipeline %v", r.Phases["total"], r.TotalCPU, res.Time.Total())
	}

	// And the registry's published gauges agree with the same account
	// (the pipeline's own `metrics` output).
	snap := reg.Snapshot()
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if got, want := gauges["time.total_seconds"], res.Time.Total().Seconds(); got != want {
		t.Errorf("time.total_seconds gauge %v != %v", got, want)
	}
	if got, want := gauges["time.extraction_seconds"], res.Time.Extraction.Seconds(); got != want {
		t.Errorf("time.extraction_seconds gauge %v != %v", got, want)
	}
}

// TestReportTwoTraceComparison drives the A/B path end-to-end over two
// real runs with different seeds.
func TestReportTwoTraceComparison(t *testing.T) {
	_, repA, _ := tracedRun(t, 41)
	_, repB, _ := tracedRun(t, 42)
	c := report.Compare(&repA.Runs[0], &repB.Runs[0])
	if c.RecallDelta == nil {
		t.Fatal("comparison of two labelled runs must include recall deltas")
	}
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty comparison rendering")
	}
}
