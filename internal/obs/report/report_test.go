package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"adaptiverank/internal/obs"
)

// syntheticTrace builds a hand-written two-run trace with known totals.
func syntheticTrace() []obs.Event {
	return []obs.Event{
		{Seq: 1, T: 100, Kind: obs.KindRunStarted, Name: "RSVM-IE", N: 10, Val: 4},
		{Seq: 2, T: 110, Kind: obs.KindSampleLabelled, Doc: 1, Useful: true, Dur: time.Millisecond},
		{Seq: 3, T: 120, Kind: obs.KindSampleLabelled, Doc: 2, Useful: false, Dur: time.Millisecond},
		{Seq: 4, T: 130, Kind: obs.KindPhase, Name: "init-train", Dur: 2 * time.Millisecond},
		{Seq: 5, T: 140, Kind: obs.KindRankStarted, N: 8},
		{Seq: 6, T: 150, Kind: obs.KindRankFinished, N: 8, Dur: 3 * time.Millisecond},
		{Seq: 7, T: 160, Kind: obs.KindDocExtracted, Doc: 3, Useful: true, Dur: time.Millisecond},
		{Seq: 8, T: 170, Kind: obs.KindDetectorDecision, Name: "Mod-C", Val: 3.5, Fired: false},
		{Seq: 9, T: 180, Kind: obs.KindDocExtracted, Doc: 4, Useful: true, Dur: time.Millisecond},
		{Seq: 10, T: 190, Kind: obs.KindDetectorDecision, Name: "Mod-C", Val: 9.25, Fired: true},
		{Seq: 11, T: 200, Kind: obs.KindDetectorFired, Name: "Mod-C", N: 2},
		{Seq: 12, T: 210, Kind: obs.KindModelUpdated, N: 2, Dur: 4 * time.Millisecond, Added: 5, Removed: 2, Val: 40},
		{Seq: 13, T: 220, Kind: obs.KindDocExtracted, Doc: 5, Useful: true, Dur: time.Millisecond},
		{Seq: 14, T: 230, Kind: obs.KindDocExtracted, Doc: 6, Useful: false, Dur: time.Millisecond},
		{Seq: 15, T: 240, Kind: obs.KindRunFinished, N: 4, Dur: 13 * time.Millisecond},
		// Second run, no total-useful count (live oracle).
		{Seq: 16, T: 300, Kind: obs.KindRunStarted, Name: "BAgg-IE", N: 10},
		{Seq: 17, T: 310, Kind: obs.KindDocExtracted, Doc: 7, Useful: false, Dur: time.Millisecond},
		{Seq: 18, T: 320, Kind: obs.KindRunFinished, N: 1, Dur: time.Millisecond},
	}
}

func TestParseSplitsRuns(t *testing.T) {
	rep, err := Parse(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(rep.Runs))
	}
	a, b := rep.Runs[0], rep.Runs[1]

	if a.Strategy != "RSVM-IE" || a.CollectionSize != 10 || a.TotalUseful != 4 {
		t.Errorf("run 0 header: %+v", a)
	}
	if a.SampleDocs != 2 || a.SampleUseful != 1 {
		t.Errorf("run 0 sample: %+v", a)
	}
	if a.Docs != 4 || a.Useful != 3 || a.Reranks != 1 {
		t.Errorf("run 0 ranked phase: docs=%d useful=%d reranks=%d", a.Docs, a.Useful, a.Reranks)
	}
	if !a.Complete || a.TotalCPU != 13*time.Millisecond {
		t.Errorf("run 0 completion: %+v", a)
	}
	if a.WallClock != 140 { // T 240 - 100 nanoseconds
		t.Errorf("run 0 wall clock = %d, want 140", a.WallClock)
	}

	// Decisions carry ranked-phase positions.
	if len(a.Decisions) != 2 {
		t.Fatalf("decisions = %d, want 2", len(a.Decisions))
	}
	if d := a.Decisions[0]; d.Position != 1 || d.Fired || d.Value != 3.5 || d.Detector != "Mod-C" {
		t.Errorf("decision 0: %+v", d)
	}
	if d := a.Decisions[1]; d.Position != 2 || !d.Fired {
		t.Errorf("decision 1: %+v", d)
	}
	if a.FireCount() != 1 {
		t.Errorf("fire count = %d, want 1", a.FireCount())
	}

	if len(a.Updates) != 1 {
		t.Fatalf("updates = %d, want 1", len(a.Updates))
	}
	if u := a.Updates[0]; u.Position != 2 || u.Buffered != 2 || u.Added != 5 || u.Removed != 2 || u.Size != 40 ||
		u.Dur != 4*time.Millisecond {
		t.Errorf("update: %+v", u)
	}

	// Recall: denom = 4 total - 1 sample = 3; labels T,T,T,F.
	if a.FinalRecall != 1 {
		t.Errorf("final recall = %g, want 1", a.FinalRecall)
	}
	if got := a.RecallAt(50); got != 2.0/3 {
		t.Errorf("recall@50%% = %g, want %g", got, 2.0/3)
	}

	// Phase totals follow obs.PhaseTotals semantics.
	wantPhases := map[string]time.Duration{
		"extraction": 6 * time.Millisecond, // 2 sample + 4 ranked
		"ranking":    3 * time.Millisecond,
		"training":   6 * time.Millisecond, // init-train 2 + update 4
		"detection":  0,
		"total":      15 * time.Millisecond,
	}
	for k, w := range wantPhases {
		if a.Phases[k] != w {
			t.Errorf("phase %s = %v, want %v", k, a.Phases[k], w)
		}
	}

	// Run 1: no total-useful → no curve, but counts still reconstruct.
	if b.TotalUseful != 0 || b.Curve != nil || b.FinalRecall != 0 {
		t.Errorf("run 1 must have no recall curve: %+v", b)
	}
	if b.Docs != 1 || b.Useful != 0 || !b.Complete {
		t.Errorf("run 1 counts: %+v", b)
	}
}

func TestParseTruncatedAndImplicitRuns(t *testing.T) {
	// Trace cut off mid-run: no run-finished.
	ev := syntheticTrace()[:9]
	rep, err := Parse(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Complete {
		t.Fatalf("truncated trace: %+v", rep.Runs)
	}
	if rep.Runs[0].Docs != 2 {
		t.Errorf("truncated docs = %d, want 2", rep.Runs[0].Docs)
	}

	// Trace joined mid-run (no run-started): implicit run.
	rep, err = Parse([]obs.Event{
		{Seq: 5, T: 10, Kind: obs.KindDocExtracted, Doc: 1, Useful: true},
		{Seq: 6, T: 20, Kind: obs.KindRunFinished, N: 1, Dur: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Strategy != "" || rep.Runs[0].Docs != 1 || !rep.Runs[0].Complete {
		t.Fatalf("implicit run: %+v", rep.Runs)
	}

	// An empty trace is not an error: a run that died before its first
	// event still yields a (zero-run) report.
	rep, err = Parse(nil)
	if err != nil {
		t.Errorf("empty trace must parse gracefully, got %v", err)
	}
	if rep == nil || len(rep.Runs) != 0 {
		t.Errorf("empty trace report = %+v, want zero runs", rep)
	}
}

func TestFromReaderEmptyAndTruncated(t *testing.T) {
	full := func() string {
		var buf bytes.Buffer
		rec := obs.NewJSONLRecorder(&buf)
		for _, e := range syntheticTrace() {
			rec.Record(e)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	tests := []struct {
		name    string
		input   string
		runs    int
		wantErr bool
	}{
		{name: "zero events", input: "", runs: 0},
		{name: "only blank lines", input: "\n\n\n", runs: 0},
		{name: "mid-run truncation drops the partial final line",
			// Cut the trace mid-way through the last run's final record:
			// the partial line is dropped, everything before it survives.
			input: full[:len(full)-10], runs: 2},
		{name: "corrupt middle line is an error",
			input:   "{\"kind\":\"run-started\"}\nnot json\n{\"kind\":\"run-finished\"}\n",
			wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rep, err := FromReader(strings.NewReader(tt.input))
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error for corrupt (non-final) line")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Runs) != tt.runs {
				t.Fatalf("runs = %d, want %d", len(rep.Runs), tt.runs)
			}
			// A graceful report must always render.
			var buf bytes.Buffer
			if err := rep.WriteText(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if tt.runs == 0 && !strings.Contains(buf.String(), "empty trace") {
				t.Errorf("zero-run render = %q, want empty-trace notice", buf.String())
			}
		})
	}
}

func TestParseDegenerateSampleCoversAllUseful(t *testing.T) {
	rep, err := Parse([]obs.Event{
		{Kind: obs.KindRunStarted, Name: "X", N: 3, Val: 1},
		{Kind: obs.KindSampleLabelled, Doc: 1, Useful: true},
		{Kind: obs.KindDocExtracted, Doc: 2, Useful: false},
		{Kind: obs.KindRunFinished, N: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Runs[0]
	if r.FinalRecall != 1 {
		t.Errorf("degenerate denom: final recall = %g, want 1", r.FinalRecall)
	}
	for p, v := range r.Curve {
		if v != 1 {
			t.Fatalf("degenerate curve[%d] = %g, want 1", p, v)
		}
	}
}

func TestFromReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewJSONLRecorder(&buf)
	for _, e := range syntheticTrace() {
		rec.Record(e)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := FromReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 || rep.Runs[0].Docs != 4 {
		t.Fatalf("JSONL round-trip lost structure: %+v", rep.Runs)
	}
}

func TestTextRendering(t *testing.T) {
	rep, err := Parse(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"run 0: RSVM-IE over 10 documents",
		"useful in collection: 4",
		"sample phase: 2 docs, 1 useful",
		"ranked phase: 4 docs, 3 useful, 1 re-ranks, 1 model updates",
		"final=1.0000",
		"2 decisions, 1 fired",
		"fired at doc 2: Mod-C statistic=9.2500",
		"model updates (feature churn):",
		"CPU time:",
		"run 1: BAgg-IE over 10 documents",
		"recall: unavailable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONRendering(t *testing.T) {
	rep, err := Parse(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if len(back.Runs) != 2 || back.Runs[0].Strategy != "RSVM-IE" ||
		back.Runs[0].FinalRecall != 1 || len(back.Runs[0].Updates) != 1 {
		t.Errorf("JSON round-trip mismatch: %+v", back.Runs)
	}
}

func TestCompare(t *testing.T) {
	rep, err := Parse(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	a := &rep.Runs[0]
	c := Compare(a, a)
	if c.RecallDelta["100%"] != 0 {
		t.Errorf("self-comparison delta = %g, want 0", c.RecallDelta["100%"])
	}
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"A/B comparison", "recall@50%", "cpu total", "useful found"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q in:\n%s", want, out)
		}
	}

	// Comparing against the curve-less run drops recall deltas.
	c2 := Compare(a, &rep.Runs[1])
	if c2.RecallDelta != nil {
		t.Error("comparison with curve-less run must omit recall deltas")
	}
	buf.Reset()
	if err := c2.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSparklineAndTimelineBounds(t *testing.T) {
	if s := sparkline(nil); !strings.Contains(s, "no curve") {
		t.Errorf("nil curve sparkline = %q", s)
	}
	curve := make([]float64, 101)
	for i := range curve {
		curve[i] = float64(i) / 100
	}
	s := sparkline(curve)
	if len([]rune(s)) != 52 { // 50 glyphs + brackets
		t.Errorf("sparkline width = %d, want 52: %q", len([]rune(s)), s)
	}
	tl := timeline([]Decision{{Position: 1}, {Position: 100, Fired: true}}, 100, 10)
	if len(tl) != 12 {
		t.Errorf("timeline width = %d: %q", len(tl), tl)
	}
	if !strings.HasPrefix(tl, "[.") || !strings.HasSuffix(tl, "!]") {
		t.Errorf("timeline markers wrong: %q", tl)
	}
	// Degenerate inputs must not panic or index out of range.
	_ = timeline([]Decision{{Position: 0}}, 0, 0)
}
