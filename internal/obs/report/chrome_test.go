package report

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"adaptiverank/internal/obs"
)

// chromeDoc decodes the exporter's output for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func exportChrome(t *testing.T, events []obs.Event) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestChromeTraceSpans(t *testing.T) {
	base := int64(1_000_000_000)
	events := []obs.Event{
		{Seq: 1, T: base, Kind: obs.KindRunStarted, Name: "RSVM-IE", N: 10},
		{Seq: 2, T: base + 1000, Kind: obs.KindSpanStart, Name: "run", Span: 1},
		{Seq: 3, T: base + 2000, Kind: obs.KindSpanStart, Name: "doc", Span: 2, Parent: 1},
		{Seq: 4, T: base + 5000, Kind: obs.KindSpanEnd, Name: "doc", Span: 2, Parent: 1,
			Dur: 3 * time.Microsecond, Attrs: []obs.Attr{{Key: "doc", Num: 7}}},
		{Seq: 5, T: base + 9000, Kind: obs.KindSpanEnd, Name: "run", Span: 1, Dur: 8 * time.Microsecond},
		{Seq: 6, T: base + 9500, Kind: obs.KindRunFinished, N: 1},
	}
	doc := exportChrome(t, events)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var slices, instants, metas int
	var docSlice, runSlice *float64
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			d := e.Ts
			switch e.Name {
			case "doc":
				docSlice = &d
				if e.Dur != 3 {
					t.Errorf("doc dur = %g us, want 3", e.Dur)
				}
				if e.Args["parent"].(float64) != 1 || e.Args["doc"].(float64) != 7 {
					t.Errorf("doc slice args = %v", e.Args)
				}
			case "run":
				runSlice = &d
				if e.Dur != 8 {
					t.Errorf("run dur = %g us, want 8", e.Dur)
				}
			}
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	if slices != 2 {
		t.Fatalf("X slices = %d, want 2", slices)
	}
	if instants != 2 { // run-started + run-finished
		t.Errorf("instants = %d, want 2", instants)
	}
	if metas < 2 { // pre-run track + run track
		t.Errorf("thread metas = %d, want >= 2", metas)
	}
	// Nesting: the child slice must start at or after its parent's start
	// and its extent must lie within the parent's.
	if docSlice == nil || runSlice == nil {
		t.Fatal("missing doc/run slices")
	}
	if *docSlice < *runSlice {
		t.Errorf("child starts (%g us) before parent (%g us)", *docSlice, *runSlice)
	}
}

func TestChromeTraceUnfinishedSpan(t *testing.T) {
	base := int64(1_000_000_000)
	events := []obs.Event{
		{Seq: 1, T: base, Kind: obs.KindRunStarted, Name: "X", N: 1},
		{Seq: 2, T: base + 1000, Kind: obs.KindSpanStart, Name: "run", Span: 9},
		// Trace cut here: no span-end, but a later stamp bounds the trace.
		{Seq: 3, T: base + 4000, Kind: obs.KindDocExtracted, Doc: 1},
	}
	doc := exportChrome(t, events)
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "run" {
			found = true
			if e.Args["unfinished"] != true {
				t.Errorf("unfinished span must be flagged: %v", e.Args)
			}
			if e.Dur != 3 { // (base+4000)-(base+1000) = 3000ns = 3us
				t.Errorf("synthesized dur = %g us, want 3", e.Dur)
			}
		}
	}
	if !found {
		t.Fatal("unfinished span missing from export")
	}
}

func TestChromeTraceHeadlessEnd(t *testing.T) {
	// A span-end whose start was truncated off the head of the trace is
	// reconstructed backwards from its own duration.
	base := int64(1_000_000_000)
	events := []obs.Event{
		{Seq: 10, T: base, Kind: obs.KindDocExtracted, Doc: 3},
		{Seq: 11, T: base + 5000, Kind: obs.KindSpanEnd, Name: "batch", Span: 4, Dur: 4 * time.Microsecond},
	}
	doc := exportChrome(t, events)
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "batch" {
			if e.Dur != 4 {
				t.Errorf("dur = %g us, want 4", e.Dur)
			}
			if e.Ts != 1 { // (base+5000-4000) - base = 1000ns = 1us
				t.Errorf("reconstructed ts = %g us, want 1", e.Ts)
			}
			return
		}
	}
	t.Fatal("headless span-end missing from export")
}

func TestChromeTraceEmpty(t *testing.T) {
	doc := exportChrome(t, nil)
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty trace must export an empty traceEvents array, got %d", len(doc.TraceEvents))
	}
}

func TestChromeTracePerRunTracks(t *testing.T) {
	events := []obs.Event{
		{Seq: 1, T: 100, Kind: obs.KindRunStarted, Name: "RSVM-IE"},
		{Seq: 2, T: 110, Kind: obs.KindSpanStart, Name: "run", Span: 1},
		{Seq: 3, T: 120, Kind: obs.KindSpanEnd, Name: "run", Span: 1, Dur: 10},
		{Seq: 4, T: 130, Kind: obs.KindRunFinished},
		{Seq: 5, T: 200, Kind: obs.KindRunStarted, Name: "BAgg-IE"},
		{Seq: 6, T: 210, Kind: obs.KindSpanStart, Name: "run", Span: 2},
		{Seq: 7, T: 220, Kind: obs.KindSpanEnd, Name: "run", Span: 2, Dur: 10},
		{Seq: 8, T: 230, Kind: obs.KindRunFinished},
	}
	doc := exportChrome(t, events)
	tids := map[int64]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			span := int64(e.Args["span"].(float64))
			tids[span] = e.Tid
		}
	}
	if tids[1] == tids[2] {
		t.Errorf("runs must land on distinct tracks, both on tid %d", tids[1])
	}
	if tids[1] != 1 || tids[2] != 2 {
		t.Errorf("tids = %v, want span1->1 span2->2", tids)
	}
}
