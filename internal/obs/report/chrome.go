package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"adaptiverank/internal/obs"
)

// The Chrome trace-event exporter turns a raw JSONL event trace into
// the Trace Event Format JSON consumed by Perfetto (ui.perfetto.dev)
// and chrome://tracing, so a whole adaptive-ranking run can be
// inspected as a flame timeline: the span tree becomes nested duration
// ("X") slices, and every non-span event becomes a thread-scoped
// instant ("i") marker laid over them. Each pipeline run gets its own
// track (tid), named after its strategy.

// chromeEvent is one record of the Trace Event Format "traceEvents"
// array. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// openSpan tracks a span between its start and end events.
type openSpan struct {
	name   string
	id     int64
	parent int64
	ts     int64 // start stamp, unix ns
	tid    int
}

// WriteChromeTrace converts events into Chrome trace-event JSON. The
// trace need not be complete: spans still open when the trace ends are
// emitted with a synthesized duration running to the last stamp in the
// trace (and an "unfinished" arg), and an end without a matched start
// (a trace truncated at the head, or an out-of-order child end) is
// reconstructed backwards from its own duration.
func WriteChromeTrace(w io.Writer, events []obs.Event) error {
	if len(events) == 0 {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	base := events[0].T
	last := base
	for _, e := range events {
		if base == 0 || (e.T != 0 && e.T < base) {
			base = e.T
		}
		if e.T > last {
			last = e.T
		}
	}
	us := func(t int64) float64 { return float64(t-base) / 1e3 }

	var out []chromeEvent
	meta := func(tid int, name string) {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	open := map[int64]openSpan{}
	tid := 0
	meta(0, "pre-run")
	for _, e := range events {
		switch e.Kind {
		case obs.KindRunStarted:
			tid++
			name := e.Name
			if name == "" {
				name = "(unnamed)"
			}
			meta(tid, fmt.Sprintf("run %d: %s", tid-1, name))
			out = append(out, instant(e, us(e.T), tid))
		case obs.KindSpanStart:
			open[e.Span] = openSpan{name: e.Name, id: e.Span, parent: e.Parent, ts: e.T, tid: tid}
		case obs.KindSpanEnd:
			sp, ok := open[e.Span]
			if !ok {
				// Headless end (truncated trace head): reconstruct the
				// start from the end stamp and the span's own duration.
				sp = openSpan{name: e.Name, id: e.Span, parent: e.Parent,
					ts: e.T - e.Dur.Nanoseconds(), tid: tid}
			}
			delete(open, e.Span)
			out = append(out, chromeEvent{
				Name: sp.name, Ph: "X", Ts: us(sp.ts), Dur: float64(e.Dur.Nanoseconds()) / 1e3,
				Pid: 1, Tid: sp.tid, Args: spanArgs(e, false),
			})
		default:
			out = append(out, instant(e, us(e.T), tid))
		}
	}
	// Unfinished spans: synthesize an end at the last trace stamp.
	for _, sp := range open {
		dur := float64(last-sp.ts) / 1e3
		if dur < 0 {
			dur = 0
		}
		out = append(out, chromeEvent{
			Name: sp.name, Ph: "X", Ts: us(sp.ts), Dur: dur,
			Pid: 1, Tid: sp.tid,
			Args: map[string]any{"span": sp.id, "parent": sp.parent, "unfinished": true},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}

// instant renders a non-span event as a thread-scoped instant marker.
func instant(e obs.Event, ts float64, tid int) chromeEvent {
	name := string(e.Kind)
	if e.Name != "" {
		name += ": " + e.Name
	}
	args := map[string]any{}
	if e.Doc != 0 {
		args["doc"] = e.Doc
	}
	if e.N != 0 {
		args["n"] = e.N
	}
	if e.Val != 0 {
		args["val"] = e.Val
	}
	if e.Limit != 0 {
		args["limit"] = e.Limit
	}
	if e.Kind == obs.KindDocExtracted || e.Kind == obs.KindSampleLabelled {
		args["useful"] = e.Useful
	}
	if e.Kind == obs.KindDetectorDecision {
		args["fired"] = e.Fired
	}
	if e.Dur != 0 {
		args["dur_ns"] = e.Dur.Nanoseconds()
	}
	if e.Span != 0 {
		args["span"] = e.Span
	}
	if len(args) == 0 {
		args = nil
	}
	return chromeEvent{Name: name, Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t", Args: args}
}

// spanArgs builds the args of a duration slice from a span-end event.
func spanArgs(e obs.Event, unfinished bool) map[string]any {
	args := map[string]any{"span": e.Span}
	if e.Parent != 0 {
		args["parent"] = e.Parent
	}
	if unfinished {
		args["unfinished"] = true
	}
	for _, a := range e.Attrs {
		if a.Str != "" {
			args[a.Key] = a.Str
		} else {
			args[a.Key] = a.Num
		}
	}
	return args
}

// ChromeFromFile converts the JSONL trace at path into Chrome
// trace-event JSON on w, tolerating truncated traces.
func ChromeFromFile(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	events, err := obs.ReadEventsPartial(f)
	if err != nil {
		return fmt.Errorf("report: %s: %w", path, err)
	}
	return WriteChromeTrace(w, events)
}
