// Package report turns JSONL event traces (internal/obs) into per-run
// analytics: the recall-vs-documents-processed curve the paper's
// evaluation revolves around, detector decision timelines with
// fire/suppress markers, model-update feature-churn summaries, the
// Section 4 per-phase CPU-time accounts, and side-by-side A/B
// comparison of two traces. cmd/obsreport is the CLI front end.
package report

import (
	"fmt"
	"io"
	"os"
	"time"

	"adaptiverank/internal/metrics"
	"adaptiverank/internal/obs"
)

// Update is one model update reconstructed from the trace.
type Update struct {
	// Position is the ranked-phase document count at the update.
	Position int `json:"position"`
	// Buffered is the number of documents folded into the model.
	Buffered int `json:"buffered"`
	// Dur is the measured training time.
	Dur time.Duration `json:"dur_ns"`
	// Added/Removed/Size describe feature churn (learned strategies).
	Added   int `json:"added"`
	Removed int `json:"removed"`
	Size    int `json:"size"`
}

// Decision is one update-detector decision.
type Decision struct {
	// Position is the ranked-phase document count at the decision.
	Position int `json:"position"`
	// Detector names the policy (Mod-C, Top-K, ...).
	Detector string `json:"detector"`
	// Value is the decision statistic (angle, footrule, shift fraction).
	Value float64 `json:"value"`
	// Fired reports whether the statistic crossed the trigger threshold.
	Fired bool `json:"fired"`
}

// Run is the reconstructed analytics of one pipeline run.
type Run struct {
	// Index numbers runs in trace order (0-based).
	Index int `json:"index"`
	// Strategy is the ranking strategy name from run-started.
	Strategy string `json:"strategy"`
	// CollectionSize is the document-collection size.
	CollectionSize int `json:"collection_size"`
	// TotalUseful is the collection's useful-document count when the
	// trace carries it (run-started Val), 0 otherwise.
	TotalUseful int `json:"total_useful,omitempty"`
	// SampleDocs/SampleUseful describe the initial sample phase.
	SampleDocs   int `json:"sample_docs"`
	SampleUseful int `json:"sample_useful"`
	// Docs/Useful count ranked-phase documents.
	Docs   int `json:"docs"`
	Useful int `json:"useful"`
	// Reranks counts (re-)rankings of the pending pool.
	Reranks int `json:"reranks"`
	// Labels is the ranked-phase usefulness sequence in processing
	// order — the raw material of every ranking-quality measure.
	Labels []bool `json:"-"`
	// Curve is the recall-vs-%processed curve (101 points, mirroring
	// pipeline.Result.Curve exactly), present when TotalUseful is known.
	Curve []float64 `json:"curve,omitempty"`
	// FinalRecall is Curve's endpoint (ranked-phase recall).
	FinalRecall float64 `json:"final_recall,omitempty"`
	// Decisions is the detector decision timeline.
	Decisions []Decision `json:"decisions,omitempty"`
	// Updates lists the model updates with feature churn.
	Updates []Update `json:"updates,omitempty"`
	// Phases are the Section 4 CPU-time accounts ("extraction",
	// "ranking", "detection", "training", "total") folded from the
	// trace — identical to the run's Result.Time by construction.
	Phases map[string]time.Duration `json:"phases_ns"`
	// TotalCPU is the run-finished total (equals Phases["total"]).
	TotalCPU time.Duration `json:"total_cpu_ns"`
	// WallClock is the run's wall-time span (last minus first stamp).
	WallClock time.Duration `json:"wall_clock_ns"`
	// Complete reports whether the trace contains the run-finished
	// event (false for truncated traces).
	Complete bool `json:"complete"`
}

// RecallAt interpolates the run's recall curve at pct% processed.
func (r *Run) RecallAt(pct float64) float64 { return metrics.RecallAt(r.Curve, pct) }

// FireCount returns the number of fired detector decisions.
func (r *Run) FireCount() int {
	n := 0
	for _, d := range r.Decisions {
		if d.Fired {
			n++
		}
	}
	return n
}

// Report is the analysis of one trace (one run per pipeline execution;
// cmd/experiments traces concatenate many runs).
type Report struct {
	Runs []Run `json:"runs"`
}

// Parse reconstructs per-run analytics from a trace's events. It never
// assumes a complete run: events before the first run-started record
// open an implicit unnamed run, a run missing its run-finished event is
// reported with Complete == false, and an empty trace yields an empty
// report rather than an error — a live or killed run's partial trace is
// a normal input, not a corrupt one.
func Parse(events []obs.Event) (*Report, error) {
	rep := &Report{}
	if len(events) == 0 {
		return rep, nil
	}
	var cur *Run
	var curEvents []obs.Event
	var firstT, lastT int64
	finish := func() {
		if cur == nil {
			return
		}
		cur.Phases = obs.PhaseTotals(curEvents)
		if lastT >= firstT {
			cur.WallClock = time.Duration(lastT - firstT)
		}
		if cur.TotalUseful > 0 {
			// Mirror pipeline.Run's curve semantics: the sample phase is
			// excluded, and a sample that already covered every useful
			// document makes any remaining order perfect.
			if denom := cur.TotalUseful - cur.SampleUseful; denom <= 0 {
				cur.Curve = make([]float64, 101)
				for i := range cur.Curve {
					cur.Curve[i] = 1
				}
			} else {
				cur.Curve = metrics.RecallCurve(cur.Labels, denom)
			}
			cur.FinalRecall = cur.Curve[len(cur.Curve)-1]
		}
		rep.Runs = append(rep.Runs, *cur)
		cur, curEvents = nil, nil
	}
	open := func(e obs.Event) {
		cur = &Run{
			Index:          len(rep.Runs),
			Strategy:       e.Name,
			CollectionSize: e.N,
			TotalUseful:    int(e.Val),
		}
		firstT, lastT = e.T, e.T
	}
	for _, e := range events {
		if e.Kind == obs.KindRunStarted {
			finish()
			open(e)
			continue
		}
		if cur == nil {
			open(obs.Event{T: e.T})
		}
		if e.T > lastT {
			lastT = e.T
		}
		curEvents = append(curEvents, e)
		switch e.Kind {
		case obs.KindSampleLabelled:
			cur.SampleDocs++
			if e.Useful {
				cur.SampleUseful++
			}
		case obs.KindDocExtracted:
			cur.Docs++
			cur.Labels = append(cur.Labels, e.Useful)
			if e.Useful {
				cur.Useful++
			}
		case obs.KindRankFinished:
			cur.Reranks++
		case obs.KindDetectorDecision:
			cur.Decisions = append(cur.Decisions, Decision{
				Position: cur.Docs, Detector: e.Name, Value: e.Val, Fired: e.Fired,
			})
		case obs.KindModelUpdated:
			cur.Updates = append(cur.Updates, Update{
				Position: cur.Docs, Buffered: e.N, Dur: e.Dur,
				Added: e.Added, Removed: e.Removed, Size: int(e.Val),
			})
		case obs.KindRunFinished:
			cur.TotalCPU = e.Dur
			cur.Complete = true
		}
	}
	finish()
	return rep, nil
}

// FromReader parses a JSONL trace stream into a Report. The stream is
// read tolerantly (obs.ReadEventsPartial): a final record truncated by
// a killed writer is dropped rather than failing the whole analysis.
func FromReader(r io.Reader) (*Report, error) {
	events, err := obs.ReadEventsPartial(r)
	if err != nil {
		return nil, err
	}
	return Parse(events)
}

// FromFile parses the JSONL trace at path into a Report.
func FromFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	rep, err := FromReader(f)
	if err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return rep, nil
}
