package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"adaptiverank/internal/obs"
)

// curveGlyphs are the recall-curve sparkline levels, lowest to highest.
var curveGlyphs = []rune(" .:-=+*#%@")

// sparkline renders a recall curve as a fixed-width strip, one glyph
// per 2% of processed documents.
func sparkline(curve []float64) string {
	if len(curve) == 0 {
		return "(no curve: trace carries no total-useful count)"
	}
	var b strings.Builder
	for p := 2; p <= 100; p += 2 {
		v := curve[p]
		i := int(v * float64(len(curveGlyphs)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(curveGlyphs) {
			i = len(curveGlyphs) - 1
		}
		b.WriteRune(curveGlyphs[i])
	}
	return "[" + b.String() + "]"
}

// timeline renders the detector decision sequence as a width-bucketed
// strip: '!' marks a bucket with at least one fired decision, '.' one
// with only suppressed decisions, ' ' no decisions.
func timeline(decisions []Decision, docs, width int) string {
	if width < 1 {
		width = 60
	}
	if docs < 1 {
		docs = 1
	}
	cells := make([]rune, width)
	for i := range cells {
		cells[i] = ' '
	}
	for _, d := range decisions {
		i := (d.Position - 1) * width / docs
		if i < 0 {
			i = 0
		}
		if i >= width {
			i = width - 1
		}
		if d.Fired {
			cells[i] = '!'
		} else if cells[i] == ' ' {
			cells[i] = '.'
		}
	}
	return "[" + string(cells) + "]"
}

func fdur(d time.Duration) string { return d.Round(time.Microsecond).String() }

// WriteText renders every run of the report as human-readable text.
func (rep *Report) WriteText(w io.Writer) error {
	if len(rep.Runs) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace: no runs)")
		return err
	}
	for i := range rep.Runs {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := rep.Runs[i].WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders one run.
func (r *Run) WriteText(w io.Writer) error {
	name := r.Strategy
	if name == "" {
		name = "(unnamed)"
	}
	status := ""
	if !r.Complete {
		status = "  [truncated trace]"
	}
	fmt.Fprintf(w, "run %d: %s over %d documents%s\n", r.Index, name, r.CollectionSize, status)
	if r.TotalUseful > 0 {
		fmt.Fprintf(w, "  useful in collection: %d\n", r.TotalUseful)
	}
	fmt.Fprintf(w, "  sample phase: %d docs, %d useful\n", r.SampleDocs, r.SampleUseful)
	fmt.Fprintf(w, "  ranked phase: %d docs, %d useful, %d re-ranks, %d model updates\n",
		r.Docs, r.Useful, r.Reranks, len(r.Updates))

	if len(r.Curve) > 0 {
		fmt.Fprintf(w, "  recall vs %%processed: %s final=%.4f\n", sparkline(r.Curve), r.FinalRecall)
		fmt.Fprintf(w, "    checkpoints: 10%%=%.3f  25%%=%.3f  50%%=%.3f  75%%=%.3f  100%%=%.3f\n",
			r.RecallAt(10), r.RecallAt(25), r.RecallAt(50), r.RecallAt(75), r.RecallAt(100))
	} else {
		fmt.Fprintf(w, "  recall: unavailable (trace carries no total-useful count)\n")
	}

	if len(r.Decisions) > 0 {
		fmt.Fprintf(w, "  detector: %d decisions, %d fired  %s\n",
			len(r.Decisions), r.FireCount(), timeline(r.Decisions, r.Docs, 50))
		for _, d := range r.Decisions {
			if d.Fired {
				fmt.Fprintf(w, "    fired at doc %d: %s statistic=%.4f\n", d.Position, d.Detector, d.Value)
			}
		}
	}

	if len(r.Updates) > 0 {
		fmt.Fprintf(w, "  model updates (feature churn):\n")
		fmt.Fprintf(w, "    %8s %9s %12s %7s %7s %8s\n", "doc", "buffered", "train", "added", "removed", "support")
		for _, u := range r.Updates {
			fmt.Fprintf(w, "    %8d %9d %12s %7d %7d %8d\n",
				u.Position, u.Buffered, fdur(u.Dur), u.Added, u.Removed, u.Size)
		}
	}

	fmt.Fprintf(w, "  CPU time: extraction=%s ranking=%s detection=%s training=%s total=%s\n",
		fdur(r.Phases[obs.AccountExtraction]), fdur(r.Phases[obs.AccountRanking]),
		fdur(r.Phases[obs.AccountDetection]), fdur(r.Phases[obs.AccountTraining]), fdur(r.Phases[obs.AccountTotal]))
	if r.WallClock > 0 {
		fmt.Fprintf(w, "  wall clock: %s\n", fdur(r.WallClock))
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Comparison is a side-by-side A/B view of two runs (e.g.
// BAgg-IE+Mod-C vs RSVM-IE+Top-K on the same corpus).
type Comparison struct {
	A *Run `json:"a"`
	B *Run `json:"b"`
	// RecallDelta is B minus A at the 10/25/50/75/100% checkpoints
	// (positive: B found useful documents earlier).
	RecallDelta map[string]float64 `json:"recall_delta,omitempty"`
}

// Compare builds the A/B comparison of two runs.
func Compare(a, b *Run) *Comparison {
	c := &Comparison{A: a, B: b}
	if len(a.Curve) > 0 && len(b.Curve) > 0 {
		c.RecallDelta = map[string]float64{}
		for _, pct := range []float64{10, 25, 50, 75, 100} {
			c.RecallDelta[fmt.Sprintf("%g%%", pct)] = b.RecallAt(pct) - a.RecallAt(pct)
		}
	}
	return c
}

// WriteText renders the comparison as an aligned two-column table.
func (c *Comparison) WriteText(w io.Writer) error {
	a, b := c.A, c.B
	nameA, nameB := a.Strategy, b.Strategy
	if nameA == "" {
		nameA = "A"
	}
	if nameB == "" {
		nameB = "B"
	}
	row := func(label, va, vb string) {
		fmt.Fprintf(w, "  %-22s %18s %18s\n", label, va, vb)
	}
	fmt.Fprintf(w, "A/B comparison\n")
	row("", nameA, nameB)
	row("documents ranked", fmt.Sprintf("%d", a.Docs), fmt.Sprintf("%d", b.Docs))
	row("useful found", fmt.Sprintf("%d", a.Useful), fmt.Sprintf("%d", b.Useful))
	row("re-ranks", fmt.Sprintf("%d", a.Reranks), fmt.Sprintf("%d", b.Reranks))
	row("model updates", fmt.Sprintf("%d", len(a.Updates)), fmt.Sprintf("%d", len(b.Updates)))
	row("detector decisions", fmt.Sprintf("%d", len(a.Decisions)), fmt.Sprintf("%d", len(b.Decisions)))
	row("detector fired", fmt.Sprintf("%d", a.FireCount()), fmt.Sprintf("%d", b.FireCount()))
	if len(a.Curve) > 0 && len(b.Curve) > 0 {
		for _, pct := range []float64{10, 25, 50, 75, 100} {
			ra, rb := a.RecallAt(pct), b.RecallAt(pct)
			label := fmt.Sprintf("recall@%g%%", pct)
			row(label, fmt.Sprintf("%.4f", ra), fmt.Sprintf("%.4f (%+.4f)", rb, rb-ra))
		}
	}
	for _, phase := range []string{obs.AccountExtraction, obs.AccountRanking, obs.AccountDetection, obs.AccountTraining, obs.AccountTotal} {
		row("cpu "+phase, fdur(a.Phases[phase]), fdur(b.Phases[phase]))
	}
	return nil
}

// WriteJSON renders the comparison as indented JSON.
func (c *Comparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
