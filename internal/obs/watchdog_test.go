package obs

import (
	"testing"
	"time"
)

// feedDocs pushes n doc-extracted events with the given usefulness and
// per-document duration through the watchdog.
func feedDocs(w *Watchdog, n int, useful bool, dur time.Duration) {
	for i := 0; i < n; i++ {
		w.Record(Event{Kind: KindDocExtracted, Useful: useful, Dur: dur})
	}
}

func alertEvents(mem *MemRecorder) []Event {
	var out []Event
	for _, e := range mem.Events() {
		if e.Kind == KindAlert {
			out = append(out, e)
		}
	}
	return out
}

func TestWatchdogRecallSlopeRule(t *testing.T) {
	mem := &MemRecorder{}
	w := Watch(mem, WatchdogOptions{MinRecallSlope: 0.2, RecallWindow: 10})
	w.Record(Event{Kind: KindRunStarted})

	// Window not yet full: no alert even though recall is zero.
	feedDocs(w, 9, false, 0)
	if n := len(w.Alerts()); n != 0 {
		t.Fatalf("alerts before the window fills = %d, want 0", n)
	}
	// Tenth useless doc fills the window with slope 0 < 0.2.
	feedDocs(w, 1, false, 0)
	alerts := w.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Rule != RuleRecallSlope || a.Value != 0 || a.Threshold != 0.2 || a.Docs != 10 || a.Run != 0 {
		t.Errorf("alert fields wrong: %+v", a)
	}
	if a.Message == "" || a.T == 0 {
		t.Errorf("alert must carry message and timestamp: %+v", a)
	}

	// The alert must also have been emitted downstream as a KindAlert
	// event, after its triggering doc event.
	evs := alertEvents(mem)
	if len(evs) != 1 {
		t.Fatalf("alert events downstream = %d, want 1", len(evs))
	}
	if evs[0].Name != RuleRecallSlope || evs[0].Limit != 0.2 || evs[0].N != 10 {
		t.Errorf("alert event wrong: %+v", evs[0])
	}

	// A healthy window (all useful) must not alert.
	feedDocs(w, 10, true, 0)
	if n := len(w.Alerts()); n != 1 {
		t.Errorf("healthy window alerted: %d alerts", n)
	}
}

func TestWatchdogFireRateRule(t *testing.T) {
	mem := &MemRecorder{}
	w := Watch(mem, WatchdogOptions{MaxFireRate: 0.5, FireWindow: 4})
	w.Record(Event{Kind: KindRunStarted})

	for i := 0; i < 4; i++ {
		w.Record(Event{Kind: KindDetectorDecision, Fired: i%2 == 1})
	}
	// Window [f,t,f,t]: 2/4 fired = 0.5, not above the ceiling.
	if n := len(w.Alerts()); n != 0 {
		t.Fatalf("rate at the ceiling alerted: %d", n)
	}
	w.Record(Event{Kind: KindDetectorDecision, Fired: true})
	// Sliding drops the head: [t,f,t,t] = 3/4 fired.
	alerts := w.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != RuleFireRate {
		t.Fatalf("alerts = %+v, want one fire-rate alert", alerts)
	}
	if alerts[0].Value != 0.75 {
		t.Errorf("rate = %g, want 0.75", alerts[0].Value)
	}
}

func TestWatchdogLatencyRule(t *testing.T) {
	mem := &MemRecorder{}
	w := Watch(mem, WatchdogOptions{MaxStepP99: 10 * time.Millisecond, LatencyWindow: 10})
	w.Record(Event{Kind: KindRunStarted})

	feedDocs(w, 9, false, time.Millisecond)
	feedDocs(w, 1, false, 50*time.Millisecond) // p99 over the 10-doc window = 50ms
	alerts := w.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != RuleStepLatency {
		t.Fatalf("alerts = %+v, want one latency alert", alerts)
	}
	if alerts[0].Value != (50 * time.Millisecond).Seconds() {
		t.Errorf("p99 = %g s, want 0.05", alerts[0].Value)
	}
}

func TestWatchdogCooldown(t *testing.T) {
	w := Watch(&MemRecorder{}, WatchdogOptions{MinRecallSlope: 0.5, RecallWindow: 4, Cooldown: 6})
	w.Record(Event{Kind: KindRunStarted})
	feedDocs(w, 12, false, 0)
	// Violations at docs 4..12, but after the doc-4 alert the rule cools
	// down for 6 docs: next eligible at doc 10.
	alerts := w.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d, want 2 (cooldown must suppress the rest)", len(alerts))
	}
	if alerts[0].Docs != 4 || alerts[1].Docs != 10 {
		t.Errorf("alert positions = %d,%d, want 4,10", alerts[0].Docs, alerts[1].Docs)
	}
}

func TestWatchdogRunReset(t *testing.T) {
	w := Watch(&MemRecorder{}, WatchdogOptions{MinRecallSlope: 0.5, RecallWindow: 4})
	w.Record(Event{Kind: KindRunStarted})
	feedDocs(w, 3, false, 0)
	// New run: the window and cooldowns restart; 3 more useless docs must
	// not complete a window across the boundary.
	w.Record(Event{Kind: KindRunStarted})
	feedDocs(w, 3, false, 0)
	if n := len(w.Alerts()); n != 0 {
		t.Fatalf("window leaked across runs: %d alerts", n)
	}
	feedDocs(w, 1, false, 0)
	alerts := w.Alerts()
	if len(alerts) != 1 || alerts[0].Run != 1 || alerts[0].Docs != 4 {
		t.Fatalf("alerts = %+v, want one alert in run 1 at doc 4", alerts)
	}
}

func TestWatchdogForwardsAllEvents(t *testing.T) {
	mem := &MemRecorder{}
	w := Watch(mem, WatchdogOptions{MinRecallSlope: 0.5, RecallWindow: 2})
	w.Record(Event{Kind: KindRunStarted})
	feedDocs(w, 2, false, 0)
	w.Record(Event{Kind: KindRunFinished})

	evs := mem.Events()
	// 4 forwarded + 1 alert, with the alert immediately after its trigger.
	if len(evs) != 5 {
		t.Fatalf("downstream events = %d, want 5", len(evs))
	}
	if evs[2].Kind != KindDocExtracted || evs[3].Kind != KindAlert || evs[4].Kind != KindRunFinished {
		t.Errorf("alert must directly follow its trigger: %v %v %v", evs[2].Kind, evs[3].Kind, evs[4].Kind)
	}
}

func TestWatchdogDisabledRulesAndNilNext(t *testing.T) {
	var o WatchdogOptions
	if o.Enabled() {
		t.Error("zero options must be disabled")
	}
	// Watch with nil next must not panic on Record.
	w := Watch(nil, WatchdogOptions{MaxFireRate: 0.1, FireWindow: 1})
	w.Record(Event{Kind: KindRunStarted})
	w.Record(Event{Kind: KindDetectorDecision, Fired: true})
	if len(w.Alerts()) != 1 {
		t.Error("watchdog must work without a downstream recorder")
	}
}

func TestWatchdogFaultRateRule(t *testing.T) {
	mem := &MemRecorder{}
	w := Watch(mem, WatchdogOptions{MaxFaultRate: 0.3, FaultWindow: 10})
	w.Record(Event{Kind: KindRunStarted})

	// 7 clean docs + 3 faults: rate 0.3 == ceiling, no alert yet.
	feedDocs(w, 7, true, 0)
	for i := 0; i < 3; i++ {
		w.Record(Event{Kind: KindExtractFault, Doc: int64(i), Name: "error"})
	}
	if n := len(w.Alerts()); n != 0 {
		t.Fatalf("alerts at rate == ceiling = %d, want 0", n)
	}
	// One more fault slides a clean outcome out: rate 0.4 > 0.3.
	w.Record(Event{Kind: KindExtractFault, Doc: 9, Name: "panic"})
	alerts := w.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Rule != RuleFaultRate || a.Threshold != 0.3 {
		t.Errorf("alert fields wrong: %+v", a)
	}
	if a.Value <= 0.3 || a.Value > 1 {
		t.Errorf("alert value = %v, want in (0.3, 1]", a.Value)
	}
	if evs := alertEvents(mem); len(evs) != 1 || evs[0].Name != RuleFaultRate {
		t.Errorf("downstream alert events wrong: %+v", evs)
	}

	// A run of clean extractions flushes the faults out of the window
	// (and the cooldown keyed on doc position expires): healthy again.
	feedDocs(w, 20, true, 0)
	if n := len(w.Alerts()); n != 1 {
		t.Fatalf("alerts after recovery = %d, want still 1", n)
	}
}
