package obs_test

// Acceptance test for the trace/time-account identity: a pipeline run
// traced through a JSONLRecorder must produce a parseable trace whose
// per-phase durations (PhaseTotals) sum to within 5% of the run's
// Result.Time. Lives in package obs_test because internal/pipeline
// imports internal/obs.

import (
	"bytes"
	"math"
	"testing"
	"time"

	"adaptiverank/internal/extract"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/sampling"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/update"
)

func tracedRun(t *testing.T, seed int64) (*pipeline.Result, []obs.Event, *obs.Registry) {
	t.Helper()
	cfg := textgen.DefaultConfig(seed, 1200)
	cfg.DensityOverride = map[relation.Relation]float64{relation.PH: 0.05}
	coll, _ := textgen.Generate(cfg)
	labels := pipeline.ComputeLabels(extract.Get(relation.PH), coll)
	if labels.NumUseful() < 10 {
		t.Fatalf("test corpus too sparse: %d useful", labels.NumUseful())
	}

	var buf bytes.Buffer
	rec := obs.NewJSONLRecorder(&buf)
	reg := obs.NewRegistry()
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: seed})
	res, err := pipeline.Run(pipeline.Options{
		Rel: relation.PH, Coll: coll, Labels: labels,
		Sample:   sampling.SRS(coll, 150, seed),
		Strategy: pipeline.NewLearned(r, feat),
		Detector: update.NewWindF(100), Featurizer: feat,
		Metrics: reg, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	return res, events, reg
}

// within5 fails the test unless got is within 5% of want (the ISSUE
// acceptance tolerance; in practice the identity is exact because the
// pipeline reuses the same measured durations for both sides).
func within5(t *testing.T, phase string, got, want time.Duration) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s: trace total %v, Result.Time 0", phase, got)
		}
		return
	}
	if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.05 {
		t.Errorf("%s: trace total %v vs Result.Time %v (off by %.1f%%)",
			phase, got, want, 100*rel)
	}
}

func TestTracePhaseTotalsMatchResultTime(t *testing.T) {
	res, events, _ := tracedRun(t, 21)
	totals := obs.PhaseTotals(events)
	within5(t, "extraction", totals["extraction"], res.Time.Extraction)
	within5(t, "ranking", totals["ranking"], res.Time.Ranking)
	within5(t, "detection", totals["detection"], res.Time.Detection)
	within5(t, "training", totals["training"], res.Time.Training)
	within5(t, "total", totals["total"], res.Time.Total())
	if totals["total"] == 0 {
		t.Fatal("trace accounted zero CPU time")
	}
}

func TestTraceEventStreamShape(t *testing.T) {
	res, events, reg := tracedRun(t, 22)
	if events[0].Kind != obs.KindRunStarted {
		t.Errorf("first event = %s, want run-started", events[0].Kind)
	}
	if last := events[len(events)-1]; last.Kind != obs.KindRunFinished {
		t.Errorf("last event = %s, want run-finished", last.Kind)
	} else if last.Dur != res.Time.Total() {
		t.Errorf("run-finished Dur = %v, want %v", last.Dur, res.Time.Total())
	}
	var prev int64
	counts := map[obs.Kind]int{}
	for i, e := range events {
		if e.Seq <= prev {
			t.Fatalf("event %d: seq %d not increasing (prev %d)", i, e.Seq, prev)
		}
		prev = e.Seq
		counts[e.Kind]++
	}
	if counts[obs.KindSampleLabelled] != res.SampleSize {
		t.Errorf("sample-labelled events = %d, want %d",
			counts[obs.KindSampleLabelled], res.SampleSize)
	}
	if counts[obs.KindDocExtracted] != len(res.Order) {
		t.Errorf("doc-extracted events = %d, want %d",
			counts[obs.KindDocExtracted], len(res.Order))
	}
	if counts[obs.KindModelUpdated] != len(res.UpdatePositions) {
		t.Errorf("model-updated events = %d, want %d",
			counts[obs.KindModelUpdated], len(res.UpdatePositions))
	}
	if counts[obs.KindDetectorFired] != len(res.UpdatePositions) {
		t.Errorf("detector-fired events = %d, want %d",
			counts[obs.KindDetectorFired], len(res.UpdatePositions))
	}
	if counts[obs.KindRankStarted] != counts[obs.KindRankFinished] {
		t.Errorf("rank-started (%d) != rank-finished (%d)",
			counts[obs.KindRankStarted], counts[obs.KindRankFinished])
	}
	// Wind-F triggers several updates on a 1200-doc corpus, so the trace
	// must show re-ranks beyond the initial one.
	if counts[obs.KindRankFinished] < 2 {
		t.Errorf("rank-finished events = %d, want >= 2", counts[obs.KindRankFinished])
	}

	// The registry's counters must agree with the result and the trace.
	checks := map[string]int64{
		"pipeline.sample_docs":    int64(res.SampleSize),
		"pipeline.docs_processed": int64(len(res.Order)),
		"pipeline.updates":        int64(len(res.UpdatePositions)),
		"pipeline.detector_fired": int64(len(res.UpdatePositions)),
		"pipeline.reranks":        int64(counts[obs.KindRankFinished]),
	}
	for name, want := range checks {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.CounterValue("pipeline.detector_fired") +
		reg.CounterValue("pipeline.detector_suppressed"); got != int64(res.DetectorObservations) {
		t.Errorf("fired+suppressed = %d, want %d observations", got, res.DetectorObservations)
	}
}

func TestNopRecorderRunMatchesTracedRun(t *testing.T) {
	// The same seeds must yield the same processing order with and
	// without observability attached — instrumentation must not affect
	// behaviour.
	res1, events, _ := tracedRun(t, 23)
	_ = events

	cfg := textgen.DefaultConfig(23, 1200)
	cfg.DensityOverride = map[relation.Relation]float64{relation.PH: 0.05}
	coll, _ := textgen.Generate(cfg)
	labels := pipeline.ComputeLabels(extract.Get(relation.PH), coll)
	feat := ranking.NewFeaturizer()
	r := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 23})
	res2, err := pipeline.Run(pipeline.Options{
		Rel: relation.PH, Coll: coll, Labels: labels,
		Sample:   sampling.SRS(coll, 150, 23),
		Strategy: pipeline.NewLearned(r, feat),
		Detector: update.NewWindF(100), Featurizer: feat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Order) != len(res2.Order) {
		t.Fatalf("order lengths differ: %d vs %d", len(res1.Order), len(res2.Order))
	}
	for i := range res1.Order {
		if res1.Order[i] != res2.Order[i] {
			t.Fatalf("instrumented run diverged from plain run at position %d", i)
		}
	}
}
