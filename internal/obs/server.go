package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// RunStatus is the live state of one pipeline run as reconstructed from
// its event stream by a RunTracker, served as JSON on /runs.
type RunStatus struct {
	// ID numbers runs in trace order (0-based).
	ID int `json:"id"`
	// Strategy is the run's ranking strategy name.
	Strategy string `json:"strategy"`
	// CollectionSize is the document-collection size.
	CollectionSize int `json:"collection_size"`
	// TotalUseful is the collection's useful-document count when the
	// labelling oracle knows it (0 otherwise).
	TotalUseful int `json:"total_useful,omitempty"`
	// SampleDocs/SampleUseful describe the processed initial sample.
	SampleDocs   int `json:"sample_docs"`
	SampleUseful int `json:"sample_useful"`
	// DocsProcessed/UsefulFound count ranked-phase documents.
	DocsProcessed int `json:"docs_processed"`
	UsefulFound   int `json:"useful_found"`
	// Updates and Reranks count model updates and (re-)rankings so far.
	Updates int `json:"updates"`
	Reranks int `json:"reranks"`
	// Recall is UsefulFound over the ranked-phase denominator
	// (TotalUseful - SampleUseful), when TotalUseful is known.
	Recall float64 `json:"recall,omitempty"`
	// Running is true until the run-finished event arrives.
	Running bool `json:"running"`
	// StartedAt/FinishedAt are Unix-nanosecond wall-clock stamps.
	StartedAt  int64 `json:"started_at_unix_ns"`
	FinishedAt int64 `json:"finished_at_unix_ns,omitempty"`
}

// RunTracker is a Recorder that folds the event stream into per-run
// status records: the /runs endpoint's data source. The zero value is
// ready to use.
type RunTracker struct {
	mu   sync.Mutex
	runs []RunStatus
}

// Enabled implements Recorder.
func (t *RunTracker) Enabled() bool { return true }

// Record implements Recorder.
func (t *RunTracker) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e.Kind == KindRunStarted {
		t.runs = append(t.runs, RunStatus{
			ID:             len(t.runs),
			Strategy:       e.Name,
			CollectionSize: e.N,
			TotalUseful:    int(e.Val),
			Running:        true,
			StartedAt:      e.T,
		})
		return
	}
	if len(t.runs) == 0 {
		// Tolerate a stream joined mid-run: open an implicit run.
		t.runs = append(t.runs, RunStatus{Running: true, StartedAt: e.T})
	}
	r := &t.runs[len(t.runs)-1]
	switch e.Kind {
	case KindSampleLabelled:
		r.SampleDocs++
		if e.Useful {
			r.SampleUseful++
		}
	case KindDocExtracted:
		r.DocsProcessed++
		if e.Useful {
			r.UsefulFound++
		}
	case KindRankFinished:
		r.Reranks++
	case KindModelUpdated:
		r.Updates++
	case KindRunFinished:
		r.Running = false
		r.FinishedAt = e.T
	}
	if r.TotalUseful > 0 {
		if denom := r.TotalUseful - r.SampleUseful; denom > 0 {
			r.Recall = float64(r.UsefulFound) / float64(denom)
		} else {
			r.Recall = 1
		}
	}
}

// Runs returns a snapshot of all tracked runs in trace order.
func (t *RunTracker) Runs() []RunStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RunStatus, len(t.runs))
	copy(out, t.runs)
	return out
}

// ServerOptions configures an observability Server. All fields are
// optional: a nil Registry serves an empty /metrics page, a nil Stream
// turns /events into a 404, a nil Runs turns /runs into an empty list,
// a nil Watchdog makes /alerts an empty list.
type ServerOptions struct {
	// Registry backs /metrics (Prometheus text format v0.0.4).
	Registry *Registry
	// Stream backs /events (Server-Sent Events).
	Stream *StreamRecorder
	// Runs backs /runs (JSON run status).
	Runs *RunTracker
	// Watchdog backs /alerts (JSON SLO-alert list).
	Watchdog *Watchdog
	// RuntimeInterval is the runtime health sampler's period: with a
	// non-nil Registry, Start launches a RuntimeSampler publishing GC
	// pause, heap, and goroutine gauges every interval (0 selects 1s);
	// a negative interval disables the sampler. Close stops it.
	RuntimeInterval time.Duration
	// Blackbox backs /debug/blackbox (flight-recorder state and the
	// manual-dump trigger). Handlers rather than concrete types, because
	// obs cannot import its own subpackages: pass blackbox.Ring.Handler()
	// and prof.DirHandler(dir). Nil turns the route into a 404.
	Blackbox http.Handler
	// Profiles backs /profiles/ (profile-directory manifest listing and
	// artifact download).
	Profiles http.Handler
	// Explain backs /model/ (live model snapshots, drift timeline,
	// detector decisions) and /explain (score attributions): pass
	// explain.Explainer.Handler(). Nil turns the routes into 404s.
	Explain http.Handler
}

// Server serves the observability endpoints of a live run:
//
//	/metrics       Prometheus text-format exposition of the registry
//	/healthz       liveness JSON (status, uptime, subscriber count)
//	/runs          per-run status JSON (RunTracker)
//	/events        Server-Sent Events stream of trace events
//	/alerts        SLO watchdog alert list (JSON)
//	/debug/pprof/  the standard runtime profiles
//	/debug/blackbox  flight-recorder state + POST /dump (when wired)
//	/profiles/     profile-directory listing and artifacts (when wired)
//	/model/        live model snapshots, drift, decisions (when wired)
//	/explain       live score attributions, ?doc=N (when wired)
//
// It replaces the ad-hoc net/http/pprof DefaultServeMux listeners the
// CLIs used to spin up: everything is mounted on one private mux.
type Server struct {
	opts    ServerOptions
	started time.Time
	http    *http.Server
	sampler *RuntimeSampler
	// sse tracks in-flight /events handlers so Close can wait for their
	// goroutines (and their stream subscriptions) to wind down instead
	// of leaking them past shutdown.
	sse sync.WaitGroup
}

// NewServer returns an unstarted server.
func NewServer(opts ServerOptions) *Server {
	return &Server{opts: opts, started: time.Now()}
}

// Handler returns the server's full route table as an http.Handler
// (also usable under a test server or an existing mux).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/alerts", s.handleAlerts)
	if s.opts.Blackbox != nil {
		mux.Handle("/debug/blackbox", http.StripPrefix("/debug/blackbox", s.opts.Blackbox))
		mux.Handle("/debug/blackbox/", http.StripPrefix("/debug/blackbox", s.opts.Blackbox))
	}
	if s.opts.Profiles != nil {
		mux.Handle("/profiles", http.StripPrefix("/profiles", s.opts.Profiles))
		mux.Handle("/profiles/", http.StripPrefix("/profiles", s.opts.Profiles))
	}
	if s.opts.Explain != nil {
		mux.Handle("/model", http.StripPrefix("/model", s.opts.Explain))
		mux.Handle("/model/", http.StripPrefix("/model", s.opts.Explain))
		// The explain handler routes by cleaned sub-path, so mounting it
		// unstripped at /explain serves the attribution endpoint.
		mux.Handle("/explain", s.opts.Explain)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine, returning the bound address. With a non-nil
// Registry (and a non-negative RuntimeInterval) it also starts the
// runtime health sampler feeding /metrics.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: serve: %w", err)
	}
	if s.opts.Registry != nil && s.opts.RuntimeInterval >= 0 {
		s.sampler = StartRuntimeSampler(s.opts.Registry, s.opts.RuntimeInterval)
	}
	s.http = &http.Server{Handler: s.Handler()}
	go s.http.Serve(ln) // error is http.ErrServerClosed after Close
	return ln.Addr().String(), nil
}

// Close shuts the server down: the listener and all open connections
// (including SSE streams) are closed, and Close blocks until every
// /events handler goroutine and the runtime sampler have exited — no
// goroutine started on the server's behalf survives it.
func (s *Server) Close() error {
	var err error
	if s.http != nil {
		err = s.http.Close()
	}
	s.sampler.Close()
	s.sse.Wait()
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.opts.Registry.Snapshot()); err != nil {
		// Headers are gone; nothing useful left to do for this request.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	subs := 0
	if s.opts.Stream != nil {
		subs = s.opts.Stream.Subscribers()
	}
	running := 0
	if s.opts.Runs != nil {
		for _, r := range s.opts.Runs.Runs() {
			if r.Running {
				running++
			}
		}
	}
	alerts := 0
	if s.opts.Watchdog != nil {
		alerts = len(s.opts.Watchdog.Alerts())
	}
	writeJSON(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"subscribers":    subs,
		"runs_active":    running,
		"alerts":         alerts,
	})
}

// handleAlerts serves the SLO watchdog's alert list (empty when no
// watchdog is attached or nothing has fired).
func (s *Server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	alerts := []Alert{}
	if s.opts.Watchdog != nil {
		alerts = s.opts.Watchdog.Alerts()
	}
	writeJSON(w, alerts)
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs := []RunStatus{}
	if s.opts.Runs != nil {
		runs = s.opts.Runs.Runs()
	}
	writeJSON(w, runs)
}

// handleEvents serves the trace as Server-Sent Events: the ring buffer
// is replayed first (in Seq order), then live events stream until the
// client disconnects. Event ids carry Seq, event names carry Kind.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Stream == nil {
		http.Error(w, "event streaming not enabled", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	s.sse.Add(1)
	defer s.sse.Done()
	ch, cancel := s.opts.Stream.Subscribe(1024)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // best effort; the response is already committed
}
