package obs

import (
	"sync"
)

// teeRecorder fans every event out to several sinks with one shared
// sequence numbering (see Tee).
type teeRecorder struct {
	mu    sync.Mutex
	seq   int64
	sinks []Recorder
}

// Tee returns a Recorder that forwards every event to all enabled
// sinks. It assigns Seq and T once, centrally, before forwarding, so
// every sink sees the identical event — a JSONL trace file and a live
// event stream fed by the same tee agree line for line. Disabled sinks
// are dropped at construction; with no enabled sink, Tee degenerates to
// the no-op recorder.
func Tee(sinks ...Recorder) Recorder {
	enabled := make([]Recorder, 0, len(sinks))
	for _, s := range sinks {
		if s != nil && s.Enabled() {
			enabled = append(enabled, s)
		}
	}
	switch len(enabled) {
	case 0:
		return Nop()
	case 1:
		return enabled[0]
	}
	return &teeRecorder{sinks: enabled}
}

// Enabled implements Recorder.
func (t *teeRecorder) Enabled() bool { return true }

// Record implements Recorder: it stamps the event and forwards it to
// every sink while holding the tee mutex, so sinks receive events in
// one globally consistent Seq order.
func (t *teeRecorder) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e.Seq = t.seq
	e.T = nowUnixNano()
	for _, s := range t.sinks {
		//lint:allow locksafe forwarding under the tee mutex is the point: it is what gives all sinks one Seq order
		s.Record(e)
	}
}

// streamSub is one live subscriber of a StreamRecorder.
type streamSub struct {
	ch      chan Event
	dropped int64
}

// StreamRecorder retains the most recent events in a bounded ring
// buffer and fans them out to live subscribers (e.g. SSE connections).
// Both sides apply drop-oldest backpressure: the ring overwrites its
// oldest event when full, and a subscriber whose channel is full loses
// its oldest undelivered event rather than blocking Record — a slow
// dashboard can never stall the extraction hot path.
type StreamRecorder struct {
	mu      sync.Mutex
	seq     int64
	ring    []Event // circular, len == cap once full
	cap     int
	head    int // index of the oldest retained event
	n       int // retained event count
	subs    map[int]*streamSub
	nextSub int
}

// NewStreamRecorder returns a stream retaining up to capacity events
// (minimum 1; a non-positive capacity selects 4096).
func NewStreamRecorder(capacity int) *StreamRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &StreamRecorder{
		ring: make([]Event, 0, capacity),
		cap:  capacity,
		subs: make(map[int]*streamSub),
	}
}

// Enabled implements Recorder.
func (s *StreamRecorder) Enabled() bool { return true }

// Record implements Recorder: the event is stamped (unless an upstream
// Tee already stamped it), appended to the ring, and offered to every
// subscriber without ever blocking.
func (s *StreamRecorder) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Seq == 0 {
		s.seq++
		e.Seq = s.seq
	} else if e.Seq > s.seq {
		s.seq = e.Seq
	}
	if e.T == 0 {
		e.T = nowUnixNano()
	}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, e)
		s.n++
	} else {
		// Full: overwrite the oldest slot.
		s.ring[s.head] = e
		s.head = (s.head + 1) % s.cap
	}
	for _, sub := range s.subs {
		select {
		case sub.ch <- e:
		default:
			// Subscriber full: drop its oldest undelivered event to make
			// room. All sends happen under s.mu, so after draining one
			// slot the second send can only fail if the consumer raced a
			// receive in between — in which case there is room anyway.
			select {
			case <-sub.ch:
				sub.dropped++
			default:
			}
			select {
			case sub.ch <- e:
			default:
				sub.dropped++
			}
		}
	}
}

// Events returns the retained ring contents, oldest first (Seq order).
func (s *StreamRecorder) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *StreamRecorder) snapshotLocked() []Event {
	out := make([]Event, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(s.head+i)%len(s.ring)])
	}
	return out
}

// Subscribe registers a live subscriber: the returned channel first
// replays every ring-buffered event in Seq order, then delivers live
// events as they are recorded. buf bounds the undelivered backlog
// (drop-oldest once exceeded); the replay always fits regardless of
// buf. cancel unregisters the subscriber and closes the channel.
func (s *StreamRecorder) Subscribe(buf int) (events <-chan Event, cancel func()) {
	if buf < 1 {
		buf = 1
	}
	s.mu.Lock()
	replay := s.snapshotLocked()
	if buf < len(replay) {
		buf = len(replay)
	}
	sub := &streamSub{ch: make(chan Event, buf)}
	for _, e := range replay {
		//lint:allow locksafe provably non-blocking: the channel was just made with buf >= len(replay)
		sub.ch <- e
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = sub
	s.mu.Unlock()

	var once sync.Once
	return sub.ch, func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.subs, id)
			s.mu.Unlock()
			close(sub.ch)
		})
	}
}

// Subscribers reports the number of live subscribers.
func (s *StreamRecorder) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}
