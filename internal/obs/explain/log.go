package explain

// The explain log: one JSONL file keying every introspection record to
// run id, fingerprint, span id, and ranked-document position — the same
// join vocabulary the event trace and the profile manifest use, so
// model snapshots, attributions, and detector decisions line up against
// spans and profiles. The first record is a header carrying the run
// identity and environment; every subsequent record is one snapshot,
// attribution, or decision.
//
// The writer appends and flushes per record and fsyncs on close — the
// crash-safety contract of the trace and the profile manifest — and the
// reader tolerates a truncated final line, so a log cut off by a crash
// still yields every completed record.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"adaptiverank/internal/durable"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/vector"
)

// LogName is the explain log's file name inside an explain directory.
const LogName = "explain.jsonl"

// Record kinds.
const (
	RecordHeader      = "header"
	RecordSnapshot    = "snapshot"
	RecordAttribution = "attribution"
	RecordDecision    = "decision"
)

// Snapshot stages, matching the pipeline's training span names.
const (
	StageTrainInit   = "train-init"
	StageTrainUpdate = "train-update"
)

// Feature is one named model feature with a weight — or, in a mover
// list, a signed weight delta; in a contribution list, a per-feature
// score contribution.
type Feature struct {
	Index  int32   `json:"index"`
	Name   string  `json:"name,omitempty"`
	Weight float64 `json:"weight"`
}

// Member is one linear member of an attributed score: summing Contribs
// in order and adding Bias reproduces Margin bitwise (see
// ranking.MemberAttribution, whose contract this serializes).
type Member struct {
	Bias     float64   `json:"bias,omitempty"`
	Margin   float64   `json:"margin"`
	Contribs []Feature `json:"contribs,omitempty"`
}

// Record is one line of the explain log.
type Record struct {
	Kind string `json:"kind"`

	// Header fields: run identity and capture environment.
	RunID       string `json:"run_id,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Go          string `json:"go,omitempty"`
	GOOS        string `json:"goos,omitempty"`
	GOARCH      string `json:"goarch,omitempty"`
	GOMAXPROCS  int    `json:"gomaxprocs,omitempty"`

	// Join keys shared across record kinds: Span is the id of the
	// enclosing span (train-init/train-update for snapshots, rank for
	// attributions, detect for decisions); Pos is the number of ranked
	// documents processed when the record was captured; Seq/T carry the
	// originating event's trace stamp on decision records.
	Span int64 `json:"span,omitempty"`
	Pos  int   `json:"pos,omitempty"`
	Seq  int64 `json:"seq,omitempty"`
	T    int64 `json:"t,omitempty"`

	// Snapshot fields: one weight-vector snapshot per train-init /
	// train-update span. Update is the snapshot ordinal (0 = init);
	// DriftPrev/DriftInit compare against the previous and the initial
	// snapshot (DriftPrev is nil on the init record); Movers are the
	// top weight deltas vs the previous snapshot; Added/Removed are the
	// pipeline's support-churn counts for the update.
	Stage     string             `json:"stage,omitempty"`
	Update    int                `json:"update,omitempty"`
	NNZ       int                `json:"nnz,omitempty"`
	L1        float64            `json:"l1,omitempty"`
	L2        float64            `json:"l2,omitempty"`
	Top       []Feature          `json:"top,omitempty"`
	DriftPrev *vector.DriftStats `json:"drift_prev,omitempty"`
	DriftInit *vector.DriftStats `json:"drift_init,omitempty"`
	Movers    []Feature          `json:"movers,omitempty"`
	Added     int                `json:"added,omitempty"`
	Removed   int                `json:"removed,omitempty"`

	// Attribution fields: one sampled document's exact score
	// decomposition at rank time. Rank is the document's position in
	// the ranking that sampled it; folding Members per the ranking
	// attribution contract reconstructs Score bitwise.
	Doc      int64    `json:"doc,omitempty"`
	Rank     int      `json:"rank,omitempty"`
	Score    float64  `json:"score,omitempty"`
	Logistic bool     `json:"logistic,omitempty"`
	Members  []Member `json:"members,omitempty"`

	// Decision fields: one detector fire/no-fire decision with the
	// structured evidence behind it, persisted from the event stream.
	Detector string     `json:"detector,omitempty"`
	Val      float64    `json:"val,omitempty"`
	Fired    bool       `json:"fired,omitempty"`
	Evidence []obs.Attr `json:"evidence,omitempty"`
}

// EvidenceNum returns the numeric evidence value for key (0, false when
// absent).
func (r *Record) EvidenceNum(key string) (float64, bool) {
	for _, a := range r.Evidence {
		if a.Key == key {
			return a.Num, true
		}
	}
	return 0, false
}

// EvidenceStr returns the string evidence value for key.
func (r *Record) EvidenceStr(key string) string {
	for _, a := range r.Evidence {
		if a.Key == key {
			return a.Str
		}
	}
	return ""
}

// Log is the decoded form of one explain directory's log.
type Log struct {
	Header       Record
	Snapshots    []Record
	Attributions []Record
	Decisions    []Record
}

// Records reports the total number of non-header records.
func (l *Log) Records() int {
	return len(l.Snapshots) + len(l.Attributions) + len(l.Decisions)
}

// Attribution returns the last attribution captured for doc, if any
// (later rankings re-attribute the same document at fresher model
// states, and the freshest explanation is the useful one).
func (l *Log) Attribution(doc int64) (Record, bool) {
	for i := len(l.Attributions) - 1; i >= 0; i-- {
		if l.Attributions[i].Doc == doc {
			return l.Attributions[i], true
		}
	}
	return Record{}, false
}

// ReadLog loads dir's explain log under the durable.ScanTornTail
// contract: a truncated final line (crash while appending) is ignored; a
// malformed line elsewhere — or a well-formed record of unknown kind
// anywhere — is an error.
func ReadLog(dir string) (*Log, error) {
	data, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		return nil, err
	}
	l := &Log{}
	if _, err := durable.ScanTornTail(data, func(line int, raw []byte) error {
		var r Record
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("explain: log line %d: %w", line, err)
		}
		switch r.Kind {
		case RecordHeader:
			if l.Header.Kind == "" {
				l.Header = r
			}
		case RecordSnapshot:
			l.Snapshots = append(l.Snapshots, r)
		case RecordAttribution:
			l.Attributions = append(l.Attributions, r)
		case RecordDecision:
			l.Decisions = append(l.Decisions, r)
		default:
			// An unknown kind decoded fine, so it is not truncation
			// debris: reject it even on the final line.
			return durable.Fatal(fmt.Errorf("explain: log line %d: unknown kind %q", line, r.Kind))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if l.Header.Kind == "" {
		return nil, fmt.Errorf("explain: log in %s has no header record", dir)
	}
	return l, nil
}

// newLogWriter opens dir's explain log for appending via durable.JSONL
// (every record flushed to the kernel, fsync on close, a torn tail from
// a previous crash repaired away) and writes the header record.
func newLogWriter(fsys durable.FS, dir string, header Record) (*durable.JSONL, error) {
	jl, err := durable.AppendJSONL(fsys, filepath.Join(dir, LogName), "explain")
	if err != nil {
		return nil, err
	}
	header.Kind = RecordHeader
	if err := jl.Append(header); err != nil {
		jl.Close()
		return nil, err
	}
	return jl, nil
}
