package explain

import (
	"encoding/json"
	"net/http"
	"path"
	"strconv"
	"strings"
)

// Handler serves the live introspection state:
//
//	/           summary: run identity and retained record counts
//	/weights    the latest model snapshot (top weights, norms, drift)
//	/drift      the retained snapshot timeline, oldest first
//	/decisions  retained detector decisions (?fired=1 filters to fires,
//	            ?n=K keeps the most recent K)
//	/explain    retained attributions (?doc=N selects one document)
//
// The obs server mounts it under /model (and /explain at the root), so
// the live endpoints of the issue are /model/weights, /model/drift, and
// /explain?doc=N. All responses are copies taken under the lock and
// encoded after releasing it, so a slow client never stalls capture.
func (e *Explainer) Handler() http.Handler {
	if e == nil {
		return http.NotFoundHandler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := path.Clean("/" + strings.Trim(r.URL.Path, "/"))
		switch p {
		case "/":
			e.serveSummary(w)
		case "/weights":
			e.serveWeights(w)
		case "/drift":
			e.serveDrift(w)
		case "/decisions":
			e.serveDecisions(w, r)
		case "/explain":
			e.serveExplain(w, r)
		default:
			http.NotFound(w, r)
		}
	})
}

func (e *Explainer) serveSummary(w http.ResponseWriter) {
	snaps, attribs, decs := e.State()
	writeJSON(w, map[string]any{
		"run_id":       e.opts.RunID,
		"fingerprint":  e.opts.Fingerprint,
		"pos":          e.pos.Load(),
		"snapshots":    snaps,
		"attributions": attribs,
		"decisions":    decs,
	})
}

func (e *Explainer) serveWeights(w http.ResponseWriter) {
	e.mu.Lock()
	var latest *Record
	if n := len(e.snapshots); n > 0 {
		r := e.snapshots[n-1]
		latest = &r
	}
	e.mu.Unlock()
	if latest == nil {
		http.Error(w, "no model snapshot captured yet", http.StatusNotFound)
		return
	}
	writeJSON(w, latest)
}

func (e *Explainer) serveDrift(w http.ResponseWriter) {
	e.mu.Lock()
	out := make([]Record, len(e.snapshots))
	copy(out, e.snapshots)
	e.mu.Unlock()
	writeJSON(w, out)
}

func (e *Explainer) serveDecisions(w http.ResponseWriter, r *http.Request) {
	firedOnly := r.URL.Query().Get("fired") == "1"
	limit := 0
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	e.mu.Lock()
	out := make([]Record, 0, len(e.decisions))
	for _, d := range e.decisions {
		if firedOnly && !d.Fired {
			continue
		}
		out = append(out, d)
	}
	e.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	writeJSON(w, out)
}

func (e *Explainer) serveExplain(w http.ResponseWriter, r *http.Request) {
	docParam := r.URL.Query().Get("doc")
	e.mu.Lock()
	out := make([]Record, len(e.attribs))
	copy(out, e.attribs)
	e.mu.Unlock()
	if docParam == "" {
		writeJSON(w, out)
		return
	}
	doc, err := strconv.ParseInt(docParam, 10, 64)
	if err != nil {
		http.Error(w, "doc must be an integer document id", http.StatusBadRequest)
		return
	}
	// Latest attribution wins: later rankings re-attribute at fresher
	// model states.
	for i := len(out) - 1; i >= 0; i-- {
		if out[i].Doc == doc {
			writeJSON(w, out[i])
			return
		}
	}
	http.Error(w, "no attribution retained for document "+docParam, http.StatusNotFound)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
