package explain

import (
	"os"
	"path/filepath"
	"testing"

	"adaptiverank/internal/durable"
)

// FuzzReadExplainLog asserts the explain-log reader never panics on
// arbitrary file contents — torn tails, binary garbage, corrupted JSON,
// unknown record kinds — and that its torn-tail tolerance composes with
// the append-side repair: whatever ReadLog accepts, it must decode
// identically after the durable.RepairTail truncation a restarted
// appender would perform. Seed inputs live in
// testdata/fuzz/FuzzReadExplainLog.
func FuzzReadExplainLog(f *testing.F) {
	header := `{"kind":"header","run_id":"fuzz","fingerprint":"abc","go":"go1.22"}` + "\n"
	snap := `{"kind":"snapshot","stage":"train-init","update":0,"nnz":3,"l1":1.5,"top":[{"index":1,"name":"w","weight":0.5}]}` + "\n"
	attr := `{"kind":"attribution","doc":7,"rank":0,"score":1.25,"members":[{"margin":1.25,"contribs":[{"index":1,"weight":1.25}]}]}` + "\n"
	dec := `{"kind":"decision","detector":"drift","val":0.9,"fired":true,"evidence":[{"key":"z","num":2.5}]}` + "\n"
	f.Add([]byte(header))
	f.Add([]byte(header + snap + attr + dec))
	f.Add([]byte(header + snap + `{"kind":"attribution","doc":9,"sc`)) // torn tail
	f.Add([]byte(header + "not json\n" + dec))                        // corrupt middle
	f.Add([]byte(snap))                                               // no header
	f.Add([]byte(header + `{"kind":"future-kind","x":1}` + "\n"))     // unknown kind: fatal
	f.Add([]byte(header + dec + "\r\n"))
	f.Add([]byte("not json"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, LogName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := ReadLog(dir)
		if err != nil {
			return
		}
		if l.Header.Kind != RecordHeader {
			t.Fatalf("accepted log with header kind %q", l.Header.Kind)
		}
		// Determinism: the same bytes must decode the same way twice.
		l2, err := ReadLog(dir)
		if err != nil || l2.Records() != l.Records() {
			t.Fatalf("re-read diverged: %d vs %d records, err=%v",
				l2.Records(), l.Records(), err)
		}
		// Repair closure: cutting the uncommitted tail (everything past
		// the last newline) must not change what the reader sees.
		if err := os.WriteFile(path, data[:durable.RepairTail(data)], 0o644); err != nil {
			t.Fatal(err)
		}
		l3, err := ReadLog(dir)
		if err != nil {
			t.Fatalf("repaired log rejected: %v", err)
		}
		if l3.Records() != l.Records() ||
			len(l3.Snapshots) != len(l.Snapshots) ||
			len(l3.Attributions) != len(l.Attributions) ||
			len(l3.Decisions) != len(l.Decisions) {
			t.Fatalf("repair changed the decoded log: %d vs %d records",
				l3.Records(), l.Records())
		}
	})
}
