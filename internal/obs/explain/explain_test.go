package explain

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptiverank/internal/obs"
	"adaptiverank/internal/vector"
)

func testWeights(vals map[int32]float64) *vector.Weights {
	w := vector.NewWeights()
	for i := int32(0); i < 64; i++ {
		if v, ok := vals[i]; ok {
			w.Set(i, v)
		}
	}
	return w
}

func newTestExplainer(t *testing.T, opts Options) (*Explainer, string) {
	t.Helper()
	dir := t.TempDir()
	opts.Dir = dir
	if opts.RunID == "" {
		opts.RunID = "test-run"
	}
	if opts.Fingerprint == "" {
		opts.Fingerprint = "fp-test"
	}
	e, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, dir
}

func TestExplainerRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	e, dir := newTestExplainer(t, Options{Registry: reg})

	name := func(i int32) string {
		return "feat" + string(rune('A'+i))
	}
	w0 := testWeights(map[int32]float64{0: 1, 1: -2, 2: 0.5})
	e.RecordSnapshot("train-init", 10, 0, w0, name, 0, 0)
	w1 := testWeights(map[int32]float64{0: 1.5, 2: 0.25, 3: 4})
	e.RecordSnapshot("train-update", 20, 100, w1, name, 1, 1)

	e.Advance(150)
	rec := e.Recorder()
	if !rec.Enabled() {
		t.Fatal("explain sink should be enabled")
	}
	rec.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: "Mod-C",
		Val: 7.5, Fired: true, Span: 30, Seq: 41, T: 99,
		Attrs: []obs.Attr{{Key: obs.EvidenceThreshold, Num: 5}}})
	// Non-decision events must be ignored by the sink.
	rec.Record(obs.Event{Kind: obs.KindModelUpdated, Name: "Mod-C"})

	e.RecordAttribution(Record{
		Doc: 77, Rank: 0, Span: 40, Pos: 150, Score: 1.25,
		Members: []Member{{Margin: 1.25, Contribs: []Feature{
			{Index: 0, Name: "featA", Weight: 0.75},
			{Index: 3, Name: "featD", Weight: 0.5},
		}}},
	})

	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	l, err := ReadLog(dir)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if l.Header.RunID != "test-run" || l.Header.Fingerprint != "fp-test" {
		t.Fatalf("header = %+v", l.Header)
	}
	if l.Header.Go == "" || l.Header.GOMAXPROCS == 0 {
		t.Fatalf("header missing environment: %+v", l.Header)
	}
	if got := l.Records(); got != 4 {
		t.Fatalf("Records() = %d, want 4", got)
	}

	if len(l.Snapshots) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(l.Snapshots))
	}
	s0, s1 := l.Snapshots[0], l.Snapshots[1]
	if s0.Stage != "train-init" || s0.Update != 0 || s0.NNZ != 3 || s0.Span != 10 {
		t.Fatalf("init snapshot = %+v", s0)
	}
	if s0.DriftPrev != nil || s0.DriftInit != nil {
		t.Fatalf("init snapshot should carry no drift: %+v", s0)
	}
	if len(s0.Top) != 3 || s0.Top[0].Index != 1 || s0.Top[0].Name != "featB" {
		t.Fatalf("init top weights = %+v", s0.Top)
	}
	if s1.Stage != "train-update" || s1.Update != 1 || s1.Pos != 100 {
		t.Fatalf("update snapshot = %+v", s1)
	}
	if s1.DriftPrev == nil || s1.DriftInit == nil {
		t.Fatalf("update snapshot must carry drift: %+v", s1)
	}
	// w0 -> w1: feature 1 left (-2), feature 3 entered (+4),
	// deltas (0.5, 2, 0.25, 4) => L1 = 6.75.
	if got := s1.DriftPrev.L1; got != 6.75 {
		t.Fatalf("drift L1 = %v, want 6.75", got)
	}
	if s1.DriftPrev.Entered != 1 || s1.DriftPrev.Left != 1 {
		t.Fatalf("drift churn = %+v", s1.DriftPrev)
	}
	if s1.Added != 1 || s1.Removed != 1 {
		t.Fatalf("snapshot churn = %+v", s1)
	}
	if len(s1.Movers) == 0 || s1.Movers[0].Index != 3 || s1.Movers[0].Weight != 4 {
		t.Fatalf("movers = %+v", s1.Movers)
	}

	if len(l.Decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(l.Decisions))
	}
	d := l.Decisions[0]
	if d.Detector != "Mod-C" || !d.Fired || d.Val != 7.5 || d.Span != 30 ||
		d.Seq != 41 || d.T != 99 || d.Pos != 150 {
		t.Fatalf("decision = %+v", d)
	}
	if th, ok := d.EvidenceNum(obs.EvidenceThreshold); !ok || th != 5 {
		t.Fatalf("decision evidence = %+v", d.Evidence)
	}

	a, ok := l.Attribution(77)
	if !ok || a.Score != 1.25 || len(a.Members) != 1 {
		t.Fatalf("attribution = %+v ok=%v", a, ok)
	}

	if got := reg.CounterValue(obs.MetricExplainSnapshots); got != 2 {
		t.Fatalf("snapshot counter = %d", got)
	}
	if got := reg.CounterValue(obs.MetricExplainDecisions); got != 1 {
		t.Fatalf("decision counter = %d", got)
	}
	if got := reg.CounterValue(obs.MetricExplainAttributions); got != 1 {
		t.Fatalf("attribution counter = %d", got)
	}
	if got := reg.CounterValue(obs.MetricExplainErrors); got != 0 {
		t.Fatalf("error counter = %d", got)
	}
}

func TestReadLogTornTail(t *testing.T) {
	e, dir := newTestExplainer(t, Options{})
	e.RecordSnapshot("train-init", 1, 0, testWeights(map[int32]float64{0: 1}), nil, 0, 0)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p := filepath.Join(dir, LogName)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unterminated final line.
	torn := append(data, []byte(`{"kind":"snapshot","nnz"`)...)
	if err := os.WriteFile(p, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLog(dir)
	if err != nil {
		t.Fatalf("ReadLog with torn tail: %v", err)
	}
	if len(l.Snapshots) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(l.Snapshots))
	}

	// A malformed line in the middle is corruption, not a torn tail.
	bad := append(append([]byte{}, data...), []byte("not json\n")...)
	bad = append(bad, data...)
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(dir); err == nil {
		t.Fatal("ReadLog should reject mid-file corruption")
	}

	// A log with no header is unusable.
	if err := os.WriteFile(p, []byte(`{"kind":"snapshot"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(dir); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("ReadLog without header: %v", err)
	}
}

// TestExplainerTimelineReset: one Explainer across several pipeline
// runs (an experiments suite, a benchmark loop). Each train-init starts
// a fresh timeline segment — drift baselines and the update counter
// reset, and the new run's snapshot must never resolve feature indices
// through the previous run's name function (the feature index spaces
// are unrelated; crossing them is an out-of-range lookup).
func TestExplainerTimelineReset(t *testing.T) {
	e, dir := newTestExplainer(t, Options{})

	nameA := func(i int32) string { return "runA" }
	e.RecordSnapshot(StageTrainInit, 10, 0, testWeights(map[int32]float64{0: 1, 40: 2}), nameA, 0, 0)
	e.RecordSnapshot(StageTrainUpdate, 20, 50, testWeights(map[int32]float64{0: 2, 40: -1}), nameA, 1, 0)

	// Second run: a tiny feature space whose name function rejects the
	// first run's high indices outright.
	nameB := func(i int32) string {
		if i > 1 {
			t.Fatalf("second run resolved feature %d from the first run's index space", i)
		}
		return "runB"
	}
	e.RecordSnapshot(StageTrainInit, 30, 0, testWeights(map[int32]float64{1: 3}), nameB, 0, 0)
	e.RecordSnapshot(StageTrainUpdate, 40, 25, testWeights(map[int32]float64{1: 4}), nameB, 0, 0)

	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l, err := ReadLog(dir)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(l.Snapshots) != 4 {
		t.Fatalf("got %d snapshots, want 4", len(l.Snapshots))
	}
	reinit := l.Snapshots[2]
	if reinit.Stage != StageTrainInit || reinit.Update != 0 {
		t.Fatalf("second train-init did not restart the segment: %+v", reinit)
	}
	if reinit.DriftPrev != nil || reinit.DriftInit != nil || len(reinit.Movers) != 0 {
		t.Fatalf("second train-init carries drift across the run boundary: %+v", reinit)
	}
	upd := l.Snapshots[3]
	if upd.Update != 1 || upd.DriftPrev == nil || upd.DriftInit == nil {
		t.Fatalf("second segment's update lost its within-run drift: %+v", upd)
	}
}

func TestExplainerBounds(t *testing.T) {
	e, _ := newTestExplainer(t, Options{KeepDecisions: 3})
	rec := e.Recorder()
	for i := 0; i < 10; i++ {
		rec.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: "Wind-F",
			Val: float64(i), Fired: i == 9})
	}
	_, _, decs := e.State()
	if decs != 3 {
		t.Fatalf("retained decisions = %d, want 3", decs)
	}
	e.mu.Lock()
	last := e.decisions[len(e.decisions)-1]
	e.mu.Unlock()
	if last.Val != 9 || !last.Fired {
		t.Fatalf("retention must keep the newest records: %+v", last)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestNilExplainerInert(t *testing.T) {
	var e *Explainer
	e.RecordSnapshot("train-init", 0, 0, testWeights(nil), nil, 0, 0)
	e.RecordAttribution(Record{Doc: 1})
	e.Advance(5)
	if e.Recorder() != nil {
		t.Fatal("nil explainer must yield a nil recorder (dropped by obs.Tee)")
	}
	if n := e.AttribTopN(); n != 0 {
		t.Fatalf("nil AttribTopN = %d", n)
	}
	if s, a, d := e.State(); s+a+d != 0 {
		t.Fatal("nil state must be empty")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/weights", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("nil handler status = %d", rr.Code)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	e, _ := newTestExplainer(t, Options{})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	get := func(t *testing.T, path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return buf[:n]
	}

	// Empty state: summary works, weights 404s.
	body := get(t, "/", http.StatusOK)
	var summary map[string]any
	if err := json.Unmarshal(body, &summary); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if summary["run_id"] != "test-run" {
		t.Fatalf("summary = %v", summary)
	}
	get(t, "/weights", http.StatusNotFound)

	e.RecordSnapshot("train-init", 1, 0, testWeights(map[int32]float64{0: 2, 5: -1}), nil, 0, 0)
	e.RecordSnapshot("train-update", 2, 50, testWeights(map[int32]float64{0: 3}), nil, 0, 1)
	rec := e.Recorder()
	rec.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: "Top-K", Val: 0.1})
	rec.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: "Top-K", Val: 0.4, Fired: true})
	e.RecordAttribution(Record{Doc: 42, Score: 3,
		Members: []Member{{Margin: 3, Contribs: []Feature{{Index: 0, Weight: 3}}}}})

	var latest Record
	if err := json.Unmarshal(get(t, "/weights", http.StatusOK), &latest); err != nil {
		t.Fatal(err)
	}
	if latest.Stage != "train-update" || latest.NNZ != 1 {
		t.Fatalf("latest snapshot = %+v", latest)
	}

	var timeline []Record
	if err := json.Unmarshal(get(t, "/drift", http.StatusOK), &timeline); err != nil {
		t.Fatal(err)
	}
	if len(timeline) != 2 || timeline[1].DriftPrev == nil {
		t.Fatalf("drift timeline = %+v", timeline)
	}

	var fired []Record
	if err := json.Unmarshal(get(t, "/decisions?fired=1", http.StatusOK), &fired); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0].Val != 0.4 {
		t.Fatalf("fired decisions = %+v", fired)
	}
	get(t, "/decisions?n=bogus", http.StatusBadRequest)

	var attrib Record
	if err := json.Unmarshal(get(t, "/explain?doc=42", http.StatusOK), &attrib); err != nil {
		t.Fatal(err)
	}
	if attrib.Doc != 42 || attrib.Score != 3 {
		t.Fatalf("attribution = %+v", attrib)
	}
	get(t, "/explain?doc=999", http.StatusNotFound)
	get(t, "/explain?doc=abc", http.StatusBadRequest)
	get(t, "/nope", http.StatusNotFound)

	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
