// Package explain is the model-introspection substrate: it captures
// *why* the ranking behaved as it did — exact per-feature score
// attributions for sampled documents, a weight-drift timeline across
// model updates, and the structured evidence behind every detector
// fire/no-fire decision — into a crash-safe JSONL artifact and a
// bounded in-memory state served live over HTTP.
//
// Like the profiler and the flight recorder, the package is a passive
// tee: the pipeline owns the schedule and calls in; when no Explainer
// is configured the pipeline takes none of these paths, so a disabled
// run is byte-identical to an uninstrumented one (the root
// TestRunByteIdenticalExplained suite proves it). The package performs
// no wall-clock reads of its own — records are ordered by the
// documents-processed position and by upstream-stamped event times — so
// two runs of the same configuration produce logs that differ only in
// those stamps.
package explain

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"adaptiverank/internal/durable"
	"adaptiverank/internal/obs"
	"adaptiverank/internal/vector"
)

// Options configures an Explainer.
type Options struct {
	// Dir is the directory the explain log is written into. Required;
	// created if absent.
	Dir string
	// RunID identifies the run in the log header. The Explainer never
	// reads the clock, so there is no timestamp default: callers pass
	// their suite id, or "run" is used.
	RunID string
	// Fingerprint is the configuration fingerprint recorded in the
	// header, joining the artifact to traces and profiles of the same
	// configuration.
	Fingerprint string
	// Registry receives the explain.* health counters; nil is fine.
	Registry *obs.Registry
	// FS is the filesystem the log is written through; nil selects the
	// real one. Tests inject fault schedules (durable/faultfs) here.
	FS durable.FS

	// TopFeatures bounds the top-weight and top-mover lists on each
	// snapshot (default 15).
	TopFeatures int
	// AttribTopN is how many top-ranked documents the pipeline
	// attributes per ranking pass (default 8). The Explainer only
	// carries the knob; the pipeline applies it.
	AttribTopN int

	// Live-state bounds for the HTTP handler; the log keeps everything.
	// Defaults: 512 snapshots, 512 attributions, 2048 decisions.
	KeepSnapshots    int
	KeepAttributions int
	KeepDecisions    int
}

// Explainer owns one run's introspection state: the JSONL log and the
// bounded live views behind Handler. All methods are safe for
// concurrent use; nil *Explainer is inert for every method, so callers
// can thread an unconfigured explainer without guards.
type Explainer struct {
	opts Options

	cSnaps   *obs.Counter
	cAttribs *obs.Counter
	cDecs    *obs.Counter
	cErrs    *obs.Counter

	// pos is the documents-processed logical clock, advanced by the
	// pipeline; decision records are stamped from it outside any lock.
	pos atomic.Int64

	lw *durable.JSONL

	mu        sync.Mutex
	closed    bool
	updates   int
	initW     *vector.Weights
	prevW     *vector.Weights
	snapshots []Record
	attribs   []Record
	decisions []Record
}

// New creates the explain directory, opens the log, and writes the
// header record.
func New(opts Options) (*Explainer, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("explain: Options.Dir is required")
	}
	if opts.RunID == "" {
		opts.RunID = "run"
	}
	if opts.TopFeatures <= 0 {
		opts.TopFeatures = 15
	}
	if opts.AttribTopN <= 0 {
		opts.AttribTopN = 8
	}
	if opts.KeepSnapshots <= 0 {
		opts.KeepSnapshots = 512
	}
	if opts.KeepAttributions <= 0 {
		opts.KeepAttributions = 512
	}
	if opts.KeepDecisions <= 0 {
		opts.KeepDecisions = 2048
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("explain: %w", err)
	}
	lw, err := newLogWriter(opts.FS, opts.Dir, Record{
		RunID:       opts.RunID,
		Fingerprint: opts.Fingerprint,
		Go:          runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	})
	if err != nil {
		return nil, fmt.Errorf("explain: %w", err)
	}
	return &Explainer{
		opts:     opts,
		lw:       lw,
		cSnaps:   opts.Registry.Counter(obs.MetricExplainSnapshots),
		cAttribs: opts.Registry.Counter(obs.MetricExplainAttributions),
		cDecs:    opts.Registry.Counter(obs.MetricExplainDecisions),
		cErrs:    opts.Registry.Counter(obs.MetricExplainErrors),
	}, nil
}

// AttribTopN reports how many top-ranked documents the pipeline should
// attribute per ranking pass (0 for a nil Explainer, disabling
// attribution).
func (e *Explainer) AttribTopN() int {
	if e == nil {
		return 0
	}
	return e.opts.AttribTopN
}

// Advance moves the documents-processed logical clock; the pipeline
// calls it once per processed document so decision records carry the
// position they were made at.
func (e *Explainer) Advance(pos int) {
	if e == nil {
		return
	}
	e.pos.Store(int64(pos))
}

// Recorder returns a passive event sink that persists detector-decision
// events — with their evidence attributes — into the explain log. Tee
// it with the run's other sinks; all other event kinds pass through
// untouched (i.e. are ignored here and handled by those sinks).
func (e *Explainer) Recorder() obs.Recorder {
	if e == nil {
		return nil
	}
	return sink{e}
}

type sink struct{ e *Explainer }

// Enabled implements obs.Recorder.
func (s sink) Enabled() bool { return true }

// Record implements obs.Recorder.
func (s sink) Record(ev obs.Event) {
	if ev.Kind != obs.KindDetectorDecision {
		return
	}
	s.e.recordDecision(ev)
}

func (e *Explainer) recordDecision(ev obs.Event) {
	evidence := make([]obs.Attr, len(ev.Attrs))
	copy(evidence, ev.Attrs)
	r := Record{
		Kind:     RecordDecision,
		Detector: ev.Name,
		Val:      ev.Val,
		Fired:    ev.Fired,
		Span:     ev.Span,
		Seq:      ev.Seq,
		T:        ev.T,
		Pos:      int(e.pos.Load()),
		Evidence: evidence,
	}
	e.append(r)
	e.mu.Lock()
	e.decisions = appendBounded(e.decisions, r, e.opts.KeepDecisions)
	e.mu.Unlock()
	e.cDecs.Inc()
}

// RecordSnapshot captures the model weight vector at a train-init or
// train-update span: support size, norms, the top-weighted features
// (resolved to names via name, which may be nil), drift vs the previous
// and the initial snapshot, the top weight movers, and the pipeline's
// support-churn counts. The vector is cloned; callers may keep
// mutating w.
//
// A train-init snapshot starts a fresh timeline segment: a long-lived
// Explainer (an experiments suite, a benchmark loop) observes many
// pipeline runs, each with its own feature index space, so drift or
// movers computed across that boundary would resolve one run's indices
// against another run's featurizer.
func (e *Explainer) RecordSnapshot(stage string, span int64, pos int, w *vector.Weights, name func(int32) string, added, removed int) {
	if e == nil || w == nil {
		return
	}
	cur := w.Clone()

	// Swap the drift baselines under the lock, then resolve names and
	// compute drift outside it: name reaches into the caller's
	// featurizer, and the baselines are never mutated once swapped out.
	e.mu.Lock()
	if stage == StageTrainInit {
		e.initW, e.prevW, e.updates = nil, nil, 0
	}
	prev, init := e.prevW, e.initW
	update := e.updates
	e.updates++
	if init == nil {
		e.initW = cur.Clone()
	}
	e.prevW = cur
	e.mu.Unlock()

	r := Record{
		Kind:    RecordSnapshot,
		Stage:   stage,
		Span:    span,
		Pos:     pos,
		Update:  update,
		NNZ:     cur.NNZ(),
		L1:      cur.L1(),
		L2:      cur.L2(),
		Top:     toFeatures(cur.TopK(e.opts.TopFeatures), name),
		Added:   added,
		Removed: removed,
	}
	if prev != nil {
		d := vector.Drift(prev, cur)
		r.DriftPrev = &d
		r.Movers = toFeatures(vector.TopMovers(prev, cur, e.opts.TopFeatures), name)
	}
	if init != nil {
		d := vector.Drift(init, cur)
		r.DriftInit = &d
	}
	e.append(r)
	e.mu.Lock()
	e.snapshots = appendBounded(e.snapshots, r, e.opts.KeepSnapshots)
	e.mu.Unlock()
	e.cSnaps.Inc()
}

// RecordAttribution persists one document's score attribution. The
// caller (the pipeline) fills the attribution fields — Doc, Rank, Span,
// Pos, Score, Logistic, Members — having already resolved feature names;
// Kind is set here.
func (e *Explainer) RecordAttribution(r Record) {
	if e == nil {
		return
	}
	r.Kind = RecordAttribution
	e.append(r)
	e.mu.Lock()
	e.attribs = appendBounded(e.attribs, r, e.opts.KeepAttributions)
	e.mu.Unlock()
	e.cAttribs.Inc()
}

// append writes r to the log, counting (but otherwise swallowing)
// write errors: introspection must never fail the run. The first error
// is still surfaced by Close.
func (e *Explainer) append(r Record) {
	if err := e.lw.Append(r); err != nil {
		e.cErrs.Inc()
	}
}

// State reports the live record counts (snapshots, attributions,
// decisions) — retained, i.e. after the Keep bounds; used by tests and
// the HTTP root.
func (e *Explainer) State() (snapshots, attributions, decisions int) {
	if e == nil {
		return 0, 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.snapshots), len(e.attribs), len(e.decisions)
}

// Close flushes and fsyncs the log. Idempotent; returns the first
// write error seen over the Explainer's lifetime.
func (e *Explainer) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	return e.lw.Close()
}

// toFeatures resolves a weighted-feature list to named log features.
func toFeatures(fs []vector.WeightedFeature, name func(int32) string) []Feature {
	if len(fs) == 0 {
		return nil
	}
	out := make([]Feature, len(fs))
	for i, f := range fs {
		out[i] = Feature{Index: f.Index, Weight: f.Weight}
		if name != nil {
			out[i].Name = name(f.Index)
		}
	}
	return out
}

// appendBounded appends r, dropping the oldest entries beyond keep.
func appendBounded(s []Record, r Record, keep int) []Record {
	s = append(s, r)
	if len(s) > keep {
		// Shift rather than reslice so the backing array does not pin
		// every record ever captured.
		n := copy(s, s[len(s)-keep:])
		s = s[:n]
	}
	return s
}
