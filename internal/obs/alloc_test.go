package obs

import "testing"

// The disabled observability paths must be literally free: zero
// allocations per instrument write on a nil registry, and zero
// allocations per guarded Record on the no-op recorder. These are the
// hard budgets behind the "a nil registry costs the hot path nothing"
// contract in the package documentation.

func TestNilRegistryInstrumentWritesAllocateNothing(t *testing.T) {
	var reg *Registry
	c := reg.Counter("alloc.counter")
	g := reg.Gauge("alloc.gauge")
	h := reg.Histogram("alloc.hist", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(2.5)
		h.ObserveDuration(1000)
	}); n != 0 {
		t.Errorf("nil-registry instrument writes allocate %.1f bytes-ops per run, want 0", n)
	}
}

func TestNopRecorderGuardedRecordAllocatesNothing(t *testing.T) {
	rec := Nop()
	if n := testing.AllocsPerRun(1000, func() {
		// The call-site idiom: Enabled guards event construction, so the
		// disabled path never materializes an Event on the heap.
		if rec.Enabled() {
			rec.Record(Event{Kind: KindDocExtracted, Doc: 1, Useful: true})
		}
	}); n != 0 {
		t.Errorf("guarded no-op Record allocates %.1f per run, want 0", n)
	}
}

func TestDisabledTracerAllocatesNothing(t *testing.T) {
	tr := NewTracer(Nop()) // disabled recorder -> nil tracer
	if tr != nil {
		t.Fatal("tracer over a disabled recorder must be nil")
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("doc")
		sp.SetAttr("k", "v")
		sp.SetNum("n", 1)
		_ = tr.Scope()
		_ = tr.ScopeID()
		_ = sp.ID()
		sp.End()
	}); n != 0 {
		t.Errorf("disabled span path allocates %.1f per run, want 0", n)
	}
}

func TestNilRegistryAccessorsAllocateNothing(t *testing.T) {
	var reg *Registry
	if n := testing.AllocsPerRun(1000, func() {
		_ = reg.Counter("a")
		_ = reg.Gauge("b")
		_ = reg.Histogram("c", nil)
		_ = reg.CounterValue("a")
	}); n != 0 {
		t.Errorf("nil-registry accessors allocate %.1f per run, want 0", n)
	}
}
