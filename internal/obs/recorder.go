package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"adaptiverank/internal/durable"
)

// Kind names one structured trace event type.
type Kind string

// The event vocabulary of one pipeline run. Per-phase durations are
// carried on the events themselves (Dur); PhaseTotals maps them back to
// the four CPU-time accounts of metrics.TimeAccount.
const (
	// KindRunStarted opens a run (Name = strategy, N = collection size,
	// Val = total useful documents when the labelling oracle knows it —
	// the recall denominator post-hoc trace analysis needs).
	KindRunStarted Kind = "run-started"
	// KindRunFinished closes a run (N = ranked docs, Dur = total CPU time).
	KindRunFinished Kind = "run-finished"
	// KindSampleLabelled reports one labelled initial-sample document
	// (Doc, Useful, Dur = simulated extraction cost).
	KindSampleLabelled Kind = "sample-labelled"
	// KindRankStarted opens one (re-)ranking of the pending pool (N = pool).
	KindRankStarted Kind = "rank-started"
	// KindRankFinished closes it (N = pool, Dur = measured scoring+sorting).
	KindRankFinished Kind = "rank-finished"
	// KindDocExtracted reports one ranked-phase document (Doc, Useful,
	// Dur = simulated extraction cost).
	KindDocExtracted Kind = "doc-extracted"
	// KindDetectorDecision is emitted by the update detectors themselves:
	// Name = detector, Val = its decision statistic (Mod-C cosine angle in
	// degrees, Top-K weighted footrule, Feat-S shift fraction, Wind-F
	// window progress), Fired = whether the statistic crossed the trigger
	// threshold, Attrs = the structured evidence behind the decision (the
	// Evidence* keys in names.go: thresholds, model support sizes,
	// displaced features, window state).
	KindDetectorDecision Kind = "detector-decision"
	// KindDetectorFired reports a pipeline-level update trigger
	// (N = buffered documents folded into the model).
	KindDetectorFired Kind = "detector-fired"
	// KindModelUpdated reports one model update (N = buffered docs,
	// Dur = measured training time, Added/Removed = feature churn,
	// Val = model support size after the update).
	KindModelUpdated Kind = "model-updated"
	// KindPhase carries a named aggregate duration ("init-train",
	// "detector-prime", "detection", "strategy-observe").
	KindPhase Kind = "phase"
	// KindSpanStart opens a span (Name = span name, Span = id, Parent =
	// enclosing span id or 0 for a root). See span.go.
	KindSpanStart Kind = "span-start"
	// KindSpanEnd closes a span (Span/Parent as on the start event, Dur =
	// measured span duration, Attrs = the span's typed attributes).
	KindSpanEnd Kind = "span-end"
	// KindAlert is an SLO watchdog alert (Name = rule, Val = observed
	// value, Limit = configured threshold, N = ranked-document position).
	// See watchdog.go.
	KindAlert Kind = "alert"
	// KindExtractFault reports one failed extraction attempt absorbed by
	// the resilience layer (Doc, Name = fault class "error" | "panic" |
	// "timeout", N = attempt number). See pipeline/resilient.go.
	KindExtractFault Kind = "extract-fault"
	// KindExtractRetry reports one scheduled retry after a fault (Doc,
	// N = failed attempt number, Dur = backoff before the next attempt).
	KindExtractRetry Kind = "extract-retry"
	// KindBreaker reports a circuit-breaker state transition (Name = new
	// state "open" | "half-open" | "closed", N = consecutive failures at
	// the transition).
	KindBreaker Kind = "breaker"
	// KindDocSkipped reports a document permanently dropped from the run
	// (Doc, Name = reason, e.g. "poisoned" or "requeue-limit").
	KindDocSkipped Kind = "doc-skipped"
	// KindDocRequeued reports a document pushed back to the end of the
	// pending pool after a transient failure (Doc, N = requeue count).
	KindDocRequeued Kind = "doc-requeued"
	// KindWorkerPanic reports a panic recovered inside a pipeline worker
	// (Doc, Name = site, e.g. "score" or "compute-labels").
	KindWorkerPanic Kind = "worker-panic"
	// KindCheckpoint reports run-journal progress (Name = journal path,
	// N = recorded documents). Emitted once when a resumed run finishes
	// replaying its journal.
	KindCheckpoint Kind = "checkpoint"
)

// Attr is one typed span attribute: a key plus either a string or a
// numeric value (never both).
type Attr struct {
	Key string  `json:"k"`
	Str string  `json:"s,omitempty"`
	Num float64 `json:"n,omitempty"`
}

// Event is one structured trace record. Unused fields are omitted from
// the JSONL encoding; Seq and T are assigned by the recorder.
type Event struct {
	// Seq is the 1-based record sequence number within the trace.
	Seq int64 `json:"seq,omitempty"`
	// T is the wall-clock record time in Unix nanoseconds.
	T int64 `json:"t,omitempty"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Name qualifies the event (strategy, detector, or phase name).
	Name string `json:"name,omitempty"`
	// Doc is the document id for per-document events.
	Doc int64 `json:"doc,omitempty"`
	// N is an event-specific count (pool size, buffered docs, ...).
	N int `json:"n,omitempty"`
	// Useful is the extraction outcome of per-document events.
	Useful bool `json:"useful,omitempty"`
	// Fired reports whether a detector decision crossed its threshold.
	Fired bool `json:"fired,omitempty"`
	// Val is an event-specific statistic (angle, footrule, support size).
	Val float64 `json:"val,omitempty"`
	// Dur is the event's duration in nanoseconds (simulated for
	// extraction events, measured for everything else).
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Added/Removed are the feature-churn counts of model updates.
	Added   int `json:"added,omitempty"`
	Removed int `json:"removed,omitempty"`
	// Span and Parent tie the event into the span tree: on span-start /
	// span-end events they are the span's own id and its parent's; on
	// other events a non-zero Span names the causally enclosing span.
	Span   int64 `json:"span,omitempty"`
	Parent int64 `json:"parent,omitempty"`
	// Attrs carries typed attributes: a span's attributes on span-end
	// events, decision evidence on detector-decision events.
	Attrs []Attr `json:"attrs,omitempty"`
	// Limit is the configured threshold an alert event was judged
	// against (alert events only).
	Limit float64 `json:"limit,omitempty"`
}

// Recorder receives the structured event trace of a run. Implementations
// must be safe for concurrent use. Hot paths should guard event
// construction with Enabled() so a disabled recorder costs nothing.
type Recorder interface {
	// Enabled reports whether Record does anything; call sites use it to
	// skip building events on the disabled path.
	Enabled() bool
	// Record appends one event to the trace.
	Record(Event)
}

type nopRecorder struct{}

func (nopRecorder) Enabled() bool { return false }
func (nopRecorder) Record(Event)  {}

// Nop returns the shared no-op recorder (the default when tracing is
// disabled).
func Nop() Recorder { return nopRecorder{} }

// JSONLRecorder writes one JSON object per event to an io.Writer. Writes
// are buffered; call Flush before reading the output. The first write
// error is retained (and reported by Flush); later events are dropped.
type JSONLRecorder struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	seq int64
	err error
}

// NewJSONLRecorder wraps w.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder {
	bw := bufio.NewWriter(w)
	return &JSONLRecorder{bw: bw, enc: json.NewEncoder(bw)}
}

// Enabled implements Recorder.
func (r *JSONLRecorder) Enabled() bool { return true }

// Record implements Recorder. Events arriving without a sequence number
// are stamped with the recorder's own numbering; events already stamped
// upstream (by a Tee fanning one run out to several sinks) keep their
// Seq and T, so all sinks agree on the numbering.
func (r *JSONLRecorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if e.Seq == 0 {
		r.seq++
		e.Seq = r.seq
	} else if e.Seq > r.seq {
		r.seq = e.Seq
	}
	if e.T == 0 {
		e.T = nowUnixNano()
	}
	r.err = r.enc.Encode(e)
}

// Flush drains the buffer and returns the first error seen.
func (r *JSONLRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.bw.Flush()
}

// MemRecorder retains events in memory; tests and in-process consumers
// use it instead of parsing JSONL output.
type MemRecorder struct {
	mu     sync.Mutex
	seq    int64
	events []Event
}

// Enabled implements Recorder.
func (r *MemRecorder) Enabled() bool { return true }

// Record implements Recorder. Like JSONLRecorder.Record, it preserves
// Seq/T stamps assigned upstream by a Tee.
func (r *MemRecorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.Seq == 0 {
		r.seq++
		e.Seq = r.seq
	} else if e.Seq > r.seq {
		r.seq = e.Seq
	}
	if e.T == 0 {
		e.T = nowUnixNano()
	}
	r.events = append(r.events, e)
}

// Events returns a snapshot of the recorded events.
func (r *MemRecorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// nowUnixNano is the single wall-clock read of the recorder layer.
func nowUnixNano() int64 { return time.Now().UnixNano() }

// FileRecorder is a JSONLRecorder bound to a file it owns: Close
// flushes the trace and closes the file, returning the first error
// seen, so CLIs get a single lifecycle call that is correct on every
// exit path (success, pipeline error, or trace-write failure).
type FileRecorder struct {
	*JSONLRecorder
	f      durable.File
	closed bool
}

// CreateTrace creates (truncating) the trace file at path and returns a
// recorder writing to it.
func CreateTrace(path string) (*FileRecorder, error) {
	return CreateTraceFS(nil, path)
}

// CreateTraceFS is CreateTrace through an injectable filesystem, so the
// chaos harness and fault-injection tests can attack the trace's write
// path; a nil FS selects the real one.
func CreateTraceFS(fsys durable.FS, path string) (*FileRecorder, error) {
	f, err := durable.OpenTrunc(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace: %w", err)
	}
	return &FileRecorder{JSONLRecorder: NewJSONLRecorder(f), f: f}, nil
}

// Close flushes buffered events, syncs the file to stable storage, and
// closes it. The fsync matters on the postmortem exit paths (SIGQUIT,
// watchdog-triggered dumps): the trace a crash bundle will be joined
// against must survive the exit that produced the bundle. Repeated
// calls are no-ops.
func (r *FileRecorder) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.Flush()
	if scErr := durable.SyncClose(r.f); err == nil {
		err = scErr
	}
	return err
}

// ReadEvents parses a JSONL trace back into events.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: trace record %d: %w", len(out)+1, err)
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("obs: trace record %d: missing kind", len(out)+1)
		}
		out = append(out, e)
	}
}

// ReadEventsPartial parses a JSONL trace like ReadEvents, but tolerates
// a truncated final record — the usual shape of a trace whose writer was
// killed mid-run (or mid-write). A final line that is malformed JSON or
// lacks a kind is dropped; a malformed record with complete records
// after it is still an error, because that is corruption, not
// truncation.
func ReadEventsPartial(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	var out []Event
	if _, err := durable.ScanTornTail(data, func(line int, raw []byte) error {
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("obs: trace record %d: %w", line, err)
		}
		if e.Kind == "" {
			return fmt.Errorf("obs: trace record %d: missing kind", line)
		}
		out = append(out, e)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// PhaseTotals folds a trace's per-event durations into the four CPU-time
// accounts of metrics.TimeAccount — "extraction", "ranking",
// "detection", "training" — plus their sum under "total". Run-finished
// events are excluded (their Dur is already the whole-run total).
func PhaseTotals(events []Event) map[string]time.Duration {
	totals := map[string]time.Duration{
		AccountExtraction: 0, AccountRanking: 0, AccountDetection: 0, AccountTraining: 0,
	}
	for _, e := range events {
		switch e.Kind {
		case KindSampleLabelled, KindDocExtracted:
			totals[AccountExtraction] += e.Dur
		case KindRankFinished:
			totals[AccountRanking] += e.Dur
		case KindModelUpdated:
			totals[AccountTraining] += e.Dur
		case KindPhase:
			switch e.Name {
			case PhaseInitTrain:
				totals[AccountTraining] += e.Dur
			case PhaseDetectorPrime, PhaseDetection:
				totals[AccountDetection] += e.Dur
			case PhaseStrategyObserve:
				totals[AccountRanking] += e.Dur
			}
		}
	}
	totals[AccountTotal] = totals[AccountExtraction] + totals[AccountRanking] +
		totals[AccountDetection] + totals[AccountTraining]
	return totals
}

// Instrumentable is implemented by components (rankers, update
// detectors) that can attach themselves to a registry and a recorder.
// The pipeline instruments its strategy and detector when observation is
// requested; un-instrumented components pay nothing.
type Instrumentable interface {
	Instrument(reg *Registry, rec Recorder)
}
