package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTeeAssignsOneNumbering(t *testing.T) {
	mem1 := &MemRecorder{}
	mem2 := &MemRecorder{}
	stream := NewStreamRecorder(16)
	tee := Tee(mem1, Nop(), mem2, stream, nil)
	if !tee.Enabled() {
		t.Fatal("tee with enabled sinks must be enabled")
	}
	for i := 0; i < 5; i++ {
		tee.Record(Event{Kind: KindDocExtracted, Doc: int64(i)})
	}
	e1, e2, e3 := mem1.Events(), mem2.Events(), stream.Events()
	if len(e1) != 5 || len(e2) != 5 || len(e3) != 5 {
		t.Fatalf("sink lengths = %d/%d/%d, want 5 each", len(e1), len(e2), len(e3))
	}
	for i := range e1 {
		if e1[i].Seq != int64(i+1) || e2[i].Seq != e1[i].Seq || e3[i].Seq != e1[i].Seq {
			t.Fatalf("event %d: seq diverged across sinks: %d/%d/%d",
				i, e1[i].Seq, e2[i].Seq, e3[i].Seq)
		}
		if e1[i].T == 0 || e1[i].T != e2[i].T || e1[i].T != e3[i].T {
			t.Fatalf("event %d: timestamps diverged across sinks", i)
		}
	}
}

func TestTeeDegenerateCases(t *testing.T) {
	if Tee().Enabled() {
		t.Error("empty tee must be the no-op recorder")
	}
	if Tee(Nop(), nil).Enabled() {
		t.Error("tee of disabled sinks must be the no-op recorder")
	}
	mem := &MemRecorder{}
	if got := Tee(mem, Nop()); got != mem {
		t.Error("tee with one enabled sink must return it directly")
	}
}

func TestStreamRingDropOldest(t *testing.T) {
	s := NewStreamRecorder(4)
	for i := 1; i <= 10; i++ {
		s.Record(Event{Kind: KindDocExtracted, Doc: int64(i)})
	}
	got := s.Events()
	if len(got) != 4 {
		t.Fatalf("ring length = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(7 + i); e.Doc != want || e.Seq != want {
			t.Errorf("ring[%d] = doc %d seq %d, want %d (drop-oldest)", i, e.Doc, e.Seq, want)
		}
	}
}

// TestStreamSubscribeReplaysInSeqOrder drives a stream from several
// concurrent writers while a subscriber joins mid-stream; the
// subscriber must see the ring replay followed by live events, all in
// strictly increasing Seq order. Run with -race.
func TestStreamSubscribeReplaysInSeqOrder(t *testing.T) {
	const (
		writers  = 8
		perWrite = 200
	)
	s := NewStreamRecorder(writers * perWrite)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWrite; i++ {
				s.Record(Event{Kind: KindDocExtracted, Doc: int64(w*perWrite + i)})
			}
		}(w)
	}
	close(start)

	// Subscribe while writers are racing: the replay prefix and the live
	// suffix must form one strictly increasing Seq sequence.
	ch, cancel := s.Subscribe(writers * perWrite)
	defer cancel()
	wg.Wait()

	var prev int64
	seen := 0
	total := writers * perWrite
	deadline := time.After(10 * time.Second)
	for seen < total {
		select {
		case e := <-ch:
			if e.Seq <= prev {
				t.Fatalf("event %d: seq %d not increasing (prev %d)", seen, e.Seq, prev)
			}
			prev = e.Seq
			seen++
		case <-deadline:
			t.Fatalf("timed out after %d/%d events", seen, total)
		}
	}
	if prev != int64(total) {
		t.Errorf("last seq = %d, want %d", prev, total)
	}
}

// TestStreamSlowSubscriberNeverBlocks pins the backpressure contract: a
// subscriber that never drains loses oldest events but Record returns
// promptly, and the events it does eventually read are still in order.
func TestStreamSlowSubscriberNeverBlocks(t *testing.T) {
	s := NewStreamRecorder(8)
	ch, cancel := s.Subscribe(4)
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 1000; i++ {
			s.Record(Event{Kind: KindDocExtracted, Doc: int64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a slow subscriber")
	}

	var prev int64
	n := 0
	for {
		select {
		case e := <-ch:
			if e.Seq <= prev {
				t.Fatalf("seq %d not increasing (prev %d)", e.Seq, prev)
			}
			prev = e.Seq
			n++
		default:
			if n == 0 {
				t.Fatal("slow subscriber received nothing")
			}
			if prev != 1000 {
				t.Errorf("drop-oldest must keep the newest event; last seq = %d", prev)
			}
			return
		}
	}
}

func TestStreamSubscribeCancelIdempotent(t *testing.T) {
	s := NewStreamRecorder(4)
	s.Record(Event{Kind: KindRunStarted})
	ch, cancel := s.Subscribe(2)
	if s.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", s.Subscribers())
	}
	cancel()
	cancel() // must not panic (double close)
	if s.Subscribers() != 0 {
		t.Fatalf("subscribers = %d, want 0", s.Subscribers())
	}
	// Channel drains the replay then closes.
	if e, ok := <-ch; !ok || e.Kind != KindRunStarted {
		t.Errorf("replay before close lost: %v %v", e, ok)
	}
	if _, ok := <-ch; ok {
		t.Error("channel must be closed after cancel")
	}
	s.Record(Event{Kind: KindRunFinished}) // must not panic on closed channel
}

func TestRecordersPreserveUpstreamStamps(t *testing.T) {
	mem := &MemRecorder{}
	mem.Record(Event{Kind: KindPhase, Seq: 41, T: 99})
	mem.Record(Event{Kind: KindPhase}) // unstamped: continues from 41
	ev := mem.Events()
	if ev[0].Seq != 41 || ev[0].T != 99 {
		t.Errorf("stamped event rewritten: %+v", ev[0])
	}
	if ev[1].Seq != 42 || ev[1].T == 0 {
		t.Errorf("unstamped event not stamped after preserved seq: %+v", ev[1])
	}
}
