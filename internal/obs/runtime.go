package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSampler periodically publishes Go runtime health gauges into a
// Registry, so /metrics exposes the process's memory and scheduler
// state next to the pipeline's own instruments:
//
//	runtime.goroutines            live goroutine count
//	runtime.heap_alloc_bytes      bytes of allocated heap objects
//	runtime.heap_sys_bytes        heap memory obtained from the OS
//	runtime.heap_objects          live heap object count
//	runtime.next_gc_bytes         heap size that triggers the next GC
//	runtime.gc_count              completed GC cycles
//	runtime.gc_pause_last_seconds duration of the most recent GC pause
//	runtime.gc_pause_total_seconds cumulative GC stop-the-world pause
//
// The sampler takes one sample synchronously at start (so gauges are
// never absent from an exposition) and then samples on its interval in
// a background goroutine until Close, which blocks until that
// goroutine has exited — the no-leak guarantee the server shutdown
// audit relies on.
type RuntimeSampler struct {
	reg      *Registry
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// StartRuntimeSampler begins sampling reg every interval (a
// non-positive interval selects 1s). A nil registry returns a nil
// sampler; Close is safe on it.
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	s := &RuntimeSampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.sample()
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.sample()
		}
	}
}

func (s *RuntimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge(MetricRuntimeGoroutines).Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge(MetricRuntimeHeapAllocBytes).Set(float64(ms.HeapAlloc))
	s.reg.Gauge(MetricRuntimeHeapSysBytes).Set(float64(ms.HeapSys))
	s.reg.Gauge(MetricRuntimeHeapObjects).Set(float64(ms.HeapObjects))
	s.reg.Gauge(MetricRuntimeNextGCBytes).Set(float64(ms.NextGC))
	s.reg.Gauge(MetricRuntimeGCCount).Set(float64(ms.NumGC))
	if ms.NumGC > 0 {
		last := ms.PauseNs[(ms.NumGC+255)%256]
		s.reg.Gauge(MetricRuntimeGCPauseLastSeconds).Set(time.Duration(last).Seconds())
	}
	s.reg.Gauge(MetricRuntimeGCPauseTotalSecs).Set(time.Duration(ms.PauseTotalNs).Seconds())
}

// Close stops the sampler and waits for its goroutine to exit.
// Repeated calls (and calls on a nil sampler) are no-ops.
func (s *RuntimeSampler) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		close(s.stop)
		<-s.done
	})
}
